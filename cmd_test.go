package repro

// CLI integration tests: build each command once and exercise its main
// paths. These catch flag-wiring regressions the package tests cannot.

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "repro-bins")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"smtsim", "adts-sweep", "mixgen", "dtasm"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("building %s: %s", cmd, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build command binaries: %v", buildErr)
	}
	return binDir
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binaries(t), name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIMixgen(t *testing.T) {
	out := run(t, "mixgen", "-list")
	if !strings.Contains(out, "kitchen-sink") {
		t.Fatalf("mixgen -list missing mixes:\n%s", out)
	}
	out = run(t, "mixgen", "-profiles")
	if !strings.Contains(out, "mcf") {
		t.Fatalf("mixgen -profiles missing catalogue:\n%s", out)
	}
	out = run(t, "mixgen", "-sample", "gzip", "-n", "50000")
	if !strings.Contains(out, "dynamic instruction mix") {
		t.Fatalf("mixgen -sample broken:\n%s", out)
	}
}

func TestCLISmtsim(t *testing.T) {
	out := run(t, "smtsim", "-mix", "int-compute", "-quanta", "4", "-fastforward", "2048")
	if !strings.Contains(out, "aggregate IPC") {
		t.Fatalf("smtsim fixed run broken:\n%s", out)
	}
	out = run(t, "smtsim", "-mix", "int-memory", "-mode", "adts", "-m", "4",
		"-quanta", "4", "-fastforward", "2048", "-timeline")
	if !strings.Contains(out, "detector:") || !strings.Contains(out, "quantum timeline") {
		t.Fatalf("smtsim adts run broken:\n%s", out)
	}
}

func TestCLISmtsimKernelAndMachine(t *testing.T) {
	dir := t.TempDir()
	kernel := filepath.Join(dir, "k.dt")
	src := run(t, "dtasm", "-dump", "type1")
	if err := os.WriteFile(kernel, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	machine := filepath.Join(dir, "m.json")
	if err := os.WriteFile(machine, []byte(`{"FetchThreads": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "smtsim", "-mix", "int-memory", "-mode", "adts",
		"-kernel", kernel, "-machine", machine, "-quanta", "4", "-fastforward", "2048")
	if !strings.Contains(out, "detector kernel:") {
		t.Fatalf("kernel-driven smtsim broken:\n%s", out)
	}
}

func TestCLIDtasm(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t3.dt")
	src := run(t, "dtasm", "-dump", "type3")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "dtasm", "-check", path)
	if !strings.Contains(out, "OK") {
		t.Fatalf("dtasm -check broken:\n%s", out)
	}
	out = run(t, "dtasm", "-run", path, "-ipc", "0.5", "-l1miss", "0.4")
	if !strings.Contains(out, "switch ICOUNT -> L1MISSCOUNT") {
		t.Fatalf("dtasm -run routing wrong:\n%s", out)
	}
}

func TestCLIAdtsSweepCalibrate(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI run")
	}
	out := run(t, "adts-sweep", "-calibrate", "-quanta", "4", "-intervals", "1",
		"-mixes", "int-compute")
	if !strings.Contains(out, "paper threshold") {
		t.Fatalf("adts-sweep -calibrate broken:\n%s", out)
	}
}

func TestCLISmtsimCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "run.csv")
	run(t, "smtsim", "-mix", "int-compute", "-quanta", "3", "-fastforward", "1024", "-csv", csv)
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 || lines[0] != "quantum,policy,ipc" {
		t.Fatalf("bad CSV:\n%s", data)
	}
	if !strings.HasPrefix(lines[1], "0,ICOUNT,") {
		t.Fatalf("bad CSV row: %s", lines[1])
	}
}

// runStdout runs a binary capturing stdout only: adts-sweep's progress
// and resume hints tick on stderr and vary run to run, while stdout is
// deterministic.
func runStdout(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", name, args, err, stderr.String())
	}
	return stdout.String()
}

// Regression: -mixes with spaces around the commas used to reject the
// trimmed-away names as unknown mixes.
func TestCLIAdtsSweepMixesTrimmed(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI run")
	}
	out := run(t, "adts-sweep", "-calibrate", "-quanta", "2", "-intervals", "1",
		"-mixes", "int-compute, mixed-lowipc ,")
	if !strings.Contains(out, "paper threshold") {
		t.Fatalf("adts-sweep with spaced -mixes broken:\n%s", out)
	}
}

func TestCLIAdtsSweepJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI run")
	}
	out := runStdout(t, "adts-sweep", "-table1", "-json", "-quanta", "2", "-intervals", "1",
		"-mixes", "int-compute")
	var doc struct {
		Table1 *struct {
			MeanIPC map[string]float64 `json:"MeanIPC"`
		} `json:"table1"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if doc.Table1 == nil || len(doc.Table1.MeanIPC) != 10 {
		t.Fatalf("-json table1 export incomplete:\n%s", out)
	}
	if strings.Contains(out, "### ") {
		t.Fatalf("-json mode still printed markdown tables:\n%s", out)
	}
}

// TestCLIAdtsSweepCheckpointResume is the acceptance flow: interrupt a
// checkpointed -fig8 sweep mid-run, resume it, and require output
// byte-identical to an uninterrupted run.
func TestCLIAdtsSweepCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI run")
	}
	ck := filepath.Join(t.TempDir(), "s.jsonl")
	args := []string{"-fig8", "-quanta", "2", "-intervals", "1",
		"-mixes", "int-compute,mixed-lowipc", "-workers", "1"}
	fresh := runStdout(t, "adts-sweep", args...)

	cmd := exec.Command(filepath.Join(binaries(t), "adts-sweep"),
		append(args, "-checkpoint", ck)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Interrupt once at least one run has been checkpointed.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(ck); err == nil && fi.Size() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		// The conventional interrupted status; a nil error means the
		// sweep won the race and finished first, which is also fine.
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 130 {
			t.Fatalf("interrupted sweep: %v\nstderr:\n%s", err, stderr.String())
		}
		if !strings.Contains(stderr.String(), "-resume") {
			t.Fatalf("interrupt did not print a resume hint:\n%s", stderr.String())
		}
	}

	resumed := runStdout(t, "adts-sweep", append(args, "-resume", ck)...)
	if resumed != fresh {
		t.Fatalf("resumed output differs from uninterrupted run:\nfresh:\n%s\nresumed:\n%s",
			fresh, resumed)
	}
}
