# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short check chaos bench bench-json golden-multicore golden-adaptive train experiments tools clean

all: build vet test

# PR gate: vet + full build + race-checked tests for the concurrent
# runner, the simulation service, the tiered result store, the fleet
# client, the multi-core system (parallel per-quantum core loop), and
# their callers, plus the chaos fault-injection e2e suite.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/runner ./internal/stats ./internal/simrun ./internal/resultstore ./internal/simserver ./internal/fleet ./internal/multicore
	$(MAKE) chaos

# Chaos suite: deterministic fault injection end to end (docs/chaos.md).
# Build-tagged so `go test ./...` stays fast.
chaos:
	$(GO) test -race -tags chaos ./internal/chaos/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Reduced-scale regeneration of every table/figure plus ablations and
# microbenchmarks (minutes). Full-scale runs: see `experiments`.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed perf snapshot (docs/perf.md). Full iteration
# counts: a few minutes on an idle machine. Baselines chain: each PR's
# file embeds the previous PR's under "baseline", so the committed file
# reads as the whole trajectory.
bench-json: tools
	./bin/simbench -out BENCH_PR9.json -baseline BENCH_PR8.json

# Regenerate (or, in CI, verify — see .github/workflows/ci.yml) the
# committed golden multi-core experiment: a quick 2-core allocation
# comparison whose JSON must be byte-identical on every machine.
golden-multicore: tools
	./bin/adts-sweep -multicore -cores 2 -mixes kitchen-sink,int-memory,mixed-lowipc -quanta 8 -intervals 1 -json > docs/results/multicore-golden.json

# Regenerate (or, in CI, verify) the committed golden adaptive-selector
# experiment: a quick bandit/UCB/learned-vs-static comparison whose JSON
# must be byte-identical on every machine (docs/adaptive.md).
golden-adaptive: tools
	./bin/adts-sweep -adaptive -adaptive-threads 4 -adaptive-cores 1,2 -mixes kitchen-sink,int-memory,mixed-lowipc -quanta 8 -intervals 1 -json > docs/results/adaptive-golden.json

# Retrain the committed learned-selector table from a fixed-policy sweep
# (docs/adaptive.md). Deterministic: same flags, byte-identical table.
train: tools
	./bin/adts-train -out internal/adaptive/learned_table.json

# Full-scale experiment suite (tens of minutes single-core); writes the
# tables EXPERIMENTS.md is based on to stdout.
experiments: tools
	./bin/adts-sweep -all -quanta 64 -intervals 3

tools:
	mkdir -p bin
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
