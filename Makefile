# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short check chaos bench bench-json experiments tools clean

all: build vet test

# PR gate: vet + full build + race-checked tests for the concurrent
# runner, the simulation service, the fleet client, and their callers,
# plus the chaos fault-injection e2e suite.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/runner ./internal/stats ./internal/simrun ./internal/simserver ./internal/fleet
	$(MAKE) chaos

# Chaos suite: deterministic fault injection end to end (docs/chaos.md).
# Build-tagged so `go test ./...` stays fast.
chaos:
	$(GO) test -race -tags chaos ./internal/chaos/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Reduced-scale regeneration of every table/figure plus ablations and
# microbenchmarks (minutes). Full-scale runs: see `experiments`.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed perf snapshot (docs/perf.md). Full iteration
# counts: a few minutes on an idle machine. The pre-PR numbers ride
# along under "baseline" so the file reads as a trajectory.
bench-json: tools
	./bin/simbench -out BENCH_PR6.json -baseline docs/bench-baseline-pr6.json

# Full-scale experiment suite (tens of minutes single-core); writes the
# tables EXPERIMENTS.md is based on to stdout.
experiments: tools
	./bin/adts-sweep -all -quanta 64 -intervals 3

tools:
	mkdir -p bin
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
