package repro

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index) plus the
// ablations of DESIGN.md §5 and microbenchmarks of the substrates.
//
// Experiment benchmarks report their scientific result as custom
// metrics (IPC, switches/run, benign-probability, gain%) alongside the
// usual ns/op, so `go test -bench .` both exercises and regenerates the
// results at reduced scale. cmd/adts-sweep runs the full-scale versions.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/trace"
)

// benchOpts are reduced-scale options so the whole suite completes in
// minutes; EXPERIMENTS.md records the full-scale runs.
func benchOpts() experiments.Options {
	o := experiments.DefaultOptions()
	o.Mixes = []string{"int-compute", "mixed-lowipc", "kitchen-sink"}
	o.Quanta = 16
	o.Intervals = 2
	return o
}

// ---------------------------------------------------------------------
// Table 1: the ten fetch policies, run fixed.

func BenchmarkTable1FixedPolicies(b *testing.B) {
	for _, p := range policy.All() {
		b.Run(p.String(), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				o := benchOpts()
				res, err := experiments.RunTable1Policy(context.Background(), o, p)
				if err != nil {
					b.Fatal(err)
				}
				ipc = res
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// ---------------------------------------------------------------------
// Figures 7 and 8: the threshold x heuristic grid. One sub-benchmark
// per (heuristic, threshold) cell; switches and benign-probability are
// Figure 7's y-axes, IPC is Figure 8's.

func BenchmarkFig7Fig8Grid(b *testing.B) {
	for _, h := range detector.AllHeuristics() {
		for _, m := range []float64{1, 2, 3} {
			b.Run(fmt.Sprintf("%s/m=%g", h, m), func(b *testing.B) {
				var cell experiments.Cell
				var base float64
				for i := 0; i < b.N; i++ {
					s, err := experiments.RunSweep(context.Background(), benchOpts(), []float64{m}, []detector.Heuristic{h})
					if err != nil {
						b.Fatal(err)
					}
					cell = s.Cells[0][0]
					base = s.BaselineIPC
				}
				b.ReportMetric(cell.IPC, "IPC")
				b.ReportMetric(cell.Switches, "switches/run")
				b.ReportMetric(cell.BenignP, "P(benign)")
				b.ReportMetric(100*(cell.IPC/base-1), "gain%")
			})
		}
	}
}

// ---------------------------------------------------------------------
// §1/§7: the oracle-scheduled upper bound over fixed ICOUNT.

func BenchmarkOracleHeadroom(b *testing.B) {
	var head float64
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		res, err := experiments.RunOracle(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		head = res.Headroom()
	}
	b.ReportMetric(100*head, "headroom%")
}

// ---------------------------------------------------------------------
// §7: thread-count saturation, fixed vs adaptive.

func BenchmarkSaturation(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			var fixed, adaptive float64
			for i := 0; i < b.N; i++ {
				o := benchOpts()
				res, err := experiments.RunSaturation(context.Background(), o, []int{n})
				if err != nil {
					b.Fatal(err)
				}
				fixed, adaptive = res.FixedIPC[0], res.AdaptiveIPC[0]
			}
			b.ReportMetric(fixed, "fixedIPC")
			b.ReportMetric(adaptive, "adtsIPC")
		})
	}
}

// ---------------------------------------------------------------------
// §4.3.2: condition-threshold calibration methodology.

func BenchmarkCalibration(b *testing.B) {
	var cal *experiments.Calibration
	for i := 0; i < b.N; i++ {
		var err error
		cal, err = experiments.RunCalibration(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cal.L1MissRate, "L1miss/cyc")
	b.ReportMetric(cal.MispredRate, "misp/cyc")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationWrongPath compares throughput with and without
// wrong-path injection: disabling it idealises the front end and
// overstates throughput, which is why the model injects wrong paths.
func BenchmarkAblationWrongPath(b *testing.B) {
	for _, wp := range []bool{true, false} {
		b.Run(fmt.Sprintf("wrongpath=%t", wp), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig("int-branchy")
				cfg.Quanta = 16
				cfg.Machine.WrongPath = wp
				sim, err := core.NewSimulator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ipc = sim.Run().AggregateIPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationFetchRule compares ICOUNT.2.8's cache-block-boundary
// rule with unrestricted 8-from-one-thread fetch (the fetch-fragmentation
// observation of Burns & Gaudiot the paper cites in §5).
func BenchmarkAblationFetchRule(b *testing.B) {
	for _, block := range []int{8, 1 << 20} {
		name := "block-boundary"
		if block > 8 {
			name = "fetch-8-unrestricted"
		}
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig("kitchen-sink")
				cfg.Quanta = 16
				cfg.Machine.FetchBlock = block
				sim, err := core.NewSimulator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ipc = sim.Run().AggregateIPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationPhases removes the workloads' phase behaviour
// (profiles flattened to their average mix). Phase variation is the
// signal the detector reacts to; flattening isolates the *stationary*
// component of each policy's effect — including L1MISSCOUNT's
// winner-takes-all feedback (a cache-resident thread never misses,
// keeps top priority, and monopolises the machine), which this
// ablation makes starkly visible in the fixed-vs-ADTS gap.
func BenchmarkAblationPhases(b *testing.B) {
	for _, flat := range []bool{false, true} {
		name := "phased"
		if flat {
			name = "flattened"
		}
		b.Run(name, func(b *testing.B) {
			var fixedIPC, adtsIPC float64
			for i := 0; i < b.N; i++ {
				mix, _ := trace.MixByName("mixed-lowipc")
				run := func(mode core.Mode) float64 {
					var progs []*trace.Program
					var err error
					if flat {
						progs, err = mix.FlattenedPrograms(8, 1)
					} else {
						progs, err = mix.Programs(8, 1)
					}
					if err != nil {
						b.Fatal(err)
					}
					cfg := core.DefaultConfig(mix.Name)
					cfg.Programs = progs
					cfg.Quanta = 16
					cfg.Mode = mode
					sim, err := core.NewSimulator(cfg)
					if err != nil {
						b.Fatal(err)
					}
					return sim.Run().AggregateIPC
				}
				fixedIPC = run(core.ModeFixed)
				adtsIPC = run(core.ModeADTS)
			}
			b.ReportMetric(fixedIPC, "fixedIPC")
			b.ReportMetric(adtsIPC, "adtsIPC")
			b.ReportMetric(100*(adtsIPC/fixedIPC-1), "gain%")
		})
	}
}

// BenchmarkAblationPredictor swaps the direction predictor: worse
// prediction means more wrong-path traffic, which is the regime
// BRCOUNT-style policies target.
func BenchmarkAblationPredictor(b *testing.B) {
	for _, kind := range []branch.Kind{branch.KindHybrid, branch.KindGShare,
		branch.KindLocal, branch.KindBimodal, branch.KindTaken} {
		b.Run(string(kind), func(b *testing.B) {
			var ipc, wrong float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig("int-branchy")
				cfg.Quanta = 16
				cfg.Machine.PredictorKind = kind
				sim, err := core.NewSimulator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := sim.Run()
				ipc = res.AggregateIPC
				wrong = res.WrongPathFrac
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(100*wrong, "wrongPath%")
		})
	}
}

// BenchmarkJobScheduler compares the job-scheduling policies of §3/§7.
func BenchmarkJobScheduler(b *testing.B) {
	var res *experiments.JobschedResult
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Intervals = 1
		var err error
		res, err = experiments.RunJobsched(context.Background(), o, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, p := range res.Policies {
		b.ReportMetric(res.IPC[i], p.String()+"-IPC")
	}
}

// BenchmarkAblationMSHR sweeps the miss-status-register pool: limited
// memory-level parallelism throttles memory-bound mixes and shifts the
// balance between fetch policies.
func BenchmarkAblationMSHR(b *testing.B) {
	for _, mshrs := range []int{0, 4, 8, 16} {
		name := fmt.Sprintf("mshrs=%d", mshrs)
		if mshrs == 0 {
			name = "mshrs=unlimited"
		}
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig("mixed-lowipc")
				cfg.Quanta = 16
				cfg.Machine.MSHRs = mshrs
				sim, err := core.NewSimulator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ipc = sim.Run().AggregateIPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationDetectorCost compares ADTS with the modelled
// detector-thread cost (switches wait for leftover-slot execution)
// against free, instantaneous switching — bounding what the DT cost
// model itself costs.
func BenchmarkAblationDetectorCost(b *testing.B) {
	for _, work := range []int{1, 1024, 16384} {
		b.Run(fmt.Sprintf("decideWork=%d", work), func(b *testing.B) {
			var ipc float64
			var late uint64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig("mixed-lowipc")
				cfg.Quanta = 16
				cfg.Mode = core.ModeADTS
				cfg.Machine.DTDecideWork = work
				sim, err := core.NewSimulator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sim.Detector().SetWorkModel(256, 512, work)
				res := sim.Run()
				ipc = res.AggregateIPC
				late = res.DT.JobsPreempted
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(float64(late), "jobsPreempted")
		})
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks.

func BenchmarkPipelineCycles(b *testing.B) {
	mix, _ := trace.MixByName("kitchen-sink")
	progs, err := mix.Programs(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := pipeline.New(pipeline.DefaultConfig(), progs, 1)
	m.Run(8192) // warm
	b.ResetTimer()
	m.Run(int64(b.N))
	b.StopTimer()
	b.ReportMetric(m.AggregateIPC(), "simIPC")
}

func BenchmarkMachineClone(b *testing.B) {
	mix, _ := trace.MixByName("kitchen-sink")
	progs, _ := mix.Programs(8, 1)
	m := pipeline.New(pipeline.DefaultConfig(), progs, 1)
	m.Run(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	prof, _ := trace.ProfileByName("gcc")
	p := trace.NewProgram(prof, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Next()
	}
}

func BenchmarkPredictor(b *testing.B) {
	h := branch.NewHybrid(4096, 8192, 4096, 12, 8)
	prof, _ := trace.ProfileByName("gcc")
	p := trace.NewProgram(prof, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := p.Next()
		if in.Class.IsCtrl() {
			h.Predict(0, in.PC)
			h.Update(0, in.PC, in.Taken)
		}
	}
}

func BenchmarkCacheHierarchy(b *testing.B) {
	hier := cache.NewHierarchy(cache.DefaultHierarchyConfig(), 8)
	prof, _ := trace.ProfileByName("mcf")
	p := trace.NewProgram(prof, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := p.Next()
		if in.Class.IsMem() {
			hier.L1D.Access(0, in.Addr, false)
		}
	}
}

func BenchmarkSelectorOrder(b *testing.B) {
	mix, _ := trace.MixByName("kitchen-sink")
	progs, _ := mix.Programs(8, 1)
	m := pipeline.New(pipeline.DefaultConfig(), progs, 1)
	m.Run(4096)
	sel := policy.NewSelector(policy.ICOUNT, 8)
	buf := make([]int, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Order(m.States(), buf)
		sel.Advance()
	}
}
