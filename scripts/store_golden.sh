#!/usr/bin/env bash
# store_golden.sh — the warm-store acceptance check (docs/resultstore.md).
#
# Starts one smtsimd with a temp -store-dir, runs the same quick sweep
# against it twice (batch-dispatched, peer lookup on), and asserts:
#
#   1. the two sweep outputs are byte-identical,
#   2. the second pass performed ZERO simulations — every result came
#      out of the tiered store, and
#   3. a background scrub pass over the warm store is a no-op: every
#      entry re-verifies, nothing is quarantined, and a third sweep
#      after the scrub is still byte-identical with zero simulations.
#
# Run from the repo root: ./scripts/store_golden.sh
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18470"
STORE_DIR="$(mktemp -d)"
OUT_DIR="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; wait "$DAEMON_PID" 2>/dev/null || true; rm -rf "$STORE_DIR" "$OUT_DIR"' EXIT

go build -o "$OUT_DIR/smtsimd" ./cmd/smtsimd/
go build -o "$OUT_DIR/adts-sweep" ./cmd/adts-sweep/

# -scrub-interval 2s so the integrity scrubber provably runs over the
# warm store within the test's lifetime.
"$OUT_DIR/smtsimd" -addr "$ADDR" -store-dir "$STORE_DIR" -scrub-interval 2s &
DAEMON_PID=$!

for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    [ "$i" = 50 ] && { echo "smtsimd never came up" >&2; exit 1; }
    sleep 0.2
done

sims() {
    curl -sf "http://$ADDR/metrics" | awk '$1 == "smtsimd_simulations_total" {print $2}'
}

sweep() {
    "$OUT_DIR/adts-sweep" -table1 -quanta 4 -intervals 1 \
        -mixes kitchen-sink,int-memory,mixed-lowipc \
        -backends "$ADDR" -batch -peer-lookup -json
}

echo "== pass 1 (cold store) =="
sweep > "$OUT_DIR/pass1.json"
AFTER1="$(sims)"
echo "pass 1 done: smtsimd_simulations_total=$AFTER1"
if [ "$AFTER1" -eq 0 ]; then
    echo "FAIL: cold pass ran no simulations — the sweep never reached the daemon" >&2
    exit 1
fi

echo "== pass 2 (warm store) =="
sweep > "$OUT_DIR/pass2.json"
AFTER2="$(sims)"
echo "pass 2 done: smtsimd_simulations_total=$AFTER2"

if ! diff -u "$OUT_DIR/pass1.json" "$OUT_DIR/pass2.json"; then
    echo "FAIL: warm-store sweep output diverges from the cold run" >&2
    exit 1
fi
if [ "$AFTER2" -ne "$AFTER1" ]; then
    echo "FAIL: warm pass performed $((AFTER2 - AFTER1)) simulation(s); the store should have served all of them" >&2
    exit 1
fi
echo "OK: second pass byte-identical with zero simulations"

metric() {
    curl -sf "http://$ADDR/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

echo "== scrub pass over the warm store =="
# Wait for at least one full scrub pass to start after the store warmed.
BASE_PASSES="$(metric smtsimd_scrub_passes_total)"
for i in $(seq 1 50); do
    PASSES="$(metric smtsimd_scrub_passes_total)"
    [ "$PASSES" -gt "$BASE_PASSES" ] && break
    [ "$i" = 50 ] && { echo "FAIL: scrubber never ran a pass" >&2; exit 1; }
    sleep 0.2
done
sleep 1 # let the in-progress pass finish its (tiny) scan
CORRUPT="$(metric smtsimd_scrub_corrupt_total)"
QUARANTINED="$(metric smtsimd_store_disk_quarantines_total)"
SCANNED="$(metric smtsimd_scrub_scanned_total)"
echo "scrub: passes=$PASSES scanned=$SCANNED corrupt=$CORRUPT quarantined=$QUARANTINED"
if [ "$CORRUPT" -ne 0 ] || [ "$QUARANTINED" -ne 0 ]; then
    echo "FAIL: scrubbing a warm, healthy store flagged $CORRUPT corrupt / $QUARANTINED quarantined entries; a scrub over intact data must be a no-op" >&2
    exit 1
fi

echo "== pass 3 (post-scrub) =="
sweep > "$OUT_DIR/pass3.json"
AFTER3="$(sims)"
if ! diff -u "$OUT_DIR/pass1.json" "$OUT_DIR/pass3.json"; then
    echo "FAIL: post-scrub sweep output diverges from the cold run" >&2
    exit 1
fi
if [ "$AFTER3" -ne "$AFTER1" ]; then
    echo "FAIL: post-scrub pass performed $((AFTER3 - AFTER1)) simulation(s); the scrub must not evict or perturb the store" >&2
    exit 1
fi
echo "OK: scrub over the warm store was a no-op; third pass byte-identical with zero simulations"
