// Quickstart: run an 8-thread SPEC-like workload mix on the SMT
// simulator under the fixed ICOUNT fetch policy and print throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	// Pick a workload: the "kitchen-sink" mix co-schedules eight
	// applications spanning every behavioural corner of the catalogue.
	mix, _ := trace.MixByName("kitchen-sink")
	fmt.Printf("workload: %s — %s\n", mix.Name, mix.Description)
	fmt.Printf("applications: %v\n\n", mix.Apps)

	// Default configuration: the paper-matched machine (8-wide
	// ICOUNT.2.8 SMT core), 8 hardware contexts, fixed ICOUNT.
	cfg := core.DefaultConfig(mix.Name)
	cfg.Quanta = 32 // 32 scheduling quanta of 8K cycles each

	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := sim.Run()

	fmt.Printf("simulated %d cycles, committed %d instructions\n", res.Cycles, res.Committed)
	fmt.Printf("aggregate throughput: %.3f IPC\n\n", res.AggregateIPC)

	progs, _ := mix.Programs(cfg.Threads, cfg.Seed)
	fmt.Println("per-thread committed IPC:")
	for i, ipc := range res.PerThreadIPC {
		fmt.Printf("  thread %d (%-7s): %.3f\n", i, progs[i].Profile().Name, ipc)
	}

	fmt.Printf("\nworkload character: %.1f%% of fetched instructions were wrong-path;\n", 100*res.WrongPathFrac)
	fmt.Printf("per-cycle rates: %.3f L1 misses, %.4f mispredicts, %.3f conditional branches\n",
		res.L1MissRate, res.MispredRate, res.CondBrRate)
}
