// Saturation study: throughput versus thread count under fixed ICOUNT
// and under ADTS — the §7 claim that adaptive scheduling "can
// significantly extend the saturation point in terms of number of
// threads". Prior SMT studies (Tullsen et al.) found throughput
// saturates, and sometimes degrades, beyond four-ish threads.
//
//	go run ./examples/saturation
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	o := experiments.DefaultOptions()
	o.Quanta = 32
	o.Intervals = 2
	o.Mixes = []string{"kitchen-sink", "mixed-lowipc", "int-compute", "fp-stream"}

	threads := []int{1, 2, 4, 6, 8}
	res, err := experiments.RunSaturation(context.Background(), o, threads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("IPC vs hardware contexts (mean over 4 mixes x 2 intervals)")
	fmt.Println()
	fmt.Println("threads  fixed-ICOUNT  ADTS(T3,m=2)")
	for i, n := range threads {
		fbar, abar := "", ""
		for j := 0; j < int(res.FixedIPC[i]*12); j++ {
			fbar += "#"
		}
		for j := 0; j < int(res.AdaptiveIPC[i]*12); j++ {
			abar += "#"
		}
		fmt.Printf("%4d     %.3f  %-28s\n", n, res.FixedIPC[i], fbar)
		fmt.Printf("         %.3f  %-28s (adaptive)\n", res.AdaptiveIPC[i], abar)
	}

	// Where does each curve stop improving meaningfully (< 5% per step)?
	sat := func(ipc []float64) int {
		for i := 1; i < len(ipc); i++ {
			if ipc[i] < ipc[i-1]*1.05 {
				return threads[i-1]
			}
		}
		return threads[len(threads)-1]
	}
	fmt.Printf("\nsaturation point (first <5%% step gain): fixed at %d threads, adaptive at %d threads\n",
		sat(res.FixedIPC), sat(res.AdaptiveIPC))
}
