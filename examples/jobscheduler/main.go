// Job-scheduler interplay (paper §3/§7): sixteen jobs multiplexed onto
// eight hardware contexts by an OS-level scheduler, comparing oblivious
// round-robin against the detector-thread-assisted clog-aware policy —
// which both evicts the right threads and spends far less time making
// the decision, because the DT pre-computed the analysis in idle
// pipeline slots.
//
//	go run ./examples/jobscheduler
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/detector"
	"repro/internal/jobsched"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func main() {
	const slices = 12

	for _, pol := range []jobsched.Policy{jobsched.RoundRobin, jobsched.Random,
		jobsched.IPCSensitive, jobsched.ClogAware} {
		s := build(pol)
		for i := 0; i < slices; i++ {
			s.RunSlice()
		}
		st := s.Stats()
		total := s.TotalCommitted()
		cycles := s.Machine().Now()
		fmt.Printf("%-14s  throughput %.3f IPC   switches %-3d  clog-evictions %-3d  scheduler stall %d cycles\n",
			pol, float64(total)/float64(cycles), st.Switches, st.ClogEvictions, st.DecisionStall)

		if pol == jobsched.ClogAware {
			fmt.Println("\n  per-job progress under clog-aware scheduling:")
			jobs := append([]*jobsched.Job(nil), s.Jobs()...)
			sort.Slice(jobs, func(i, j int) bool { return jobs[i].Committed > jobs[j].Committed })
			for _, j := range jobs {
				fmt.Printf("    %-8s %9d instructions in %d slices\n", j.Name, j.Committed, j.Slices)
			}
		}
	}
}

func build(pol jobsched.Policy) *jobsched.Scheduler {
	mix, _ := trace.MixByName("kitchen-sink")
	progs, err := mix.Programs(8, 1)
	if err != nil {
		log.Fatal(err)
	}
	m := pipeline.New(pipeline.DefaultConfig(), progs, 1)

	// A 16-job pool spanning the profile catalogue.
	var jobs []*jobsched.Job
	for i, p := range trace.Profiles() {
		jobs = append(jobs, &jobsched.Job{
			Name: p.Name,
			Prog: trace.NewProgram(p, i%8, 100+uint64(i)),
		})
	}

	cfg := jobsched.DefaultConfig()
	cfg.Slice = 65536
	cfg.Policy = pol
	det := detector.New(detector.DefaultConfig(8)) // drives clogging flags + ADTS
	s, err := jobsched.New(cfg, m, det, jobs)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
