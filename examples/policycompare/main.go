// Policy shootout: every fixed fetch policy of Table 1 on a chosen mix,
// averaged over several measurement intervals — the companion experiment
// to the paper's Table 1.
//
//	go run ./examples/policycompare [mix]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	mixName := "kitchen-sink"
	if len(os.Args) > 1 {
		mixName = os.Args[1]
	}
	mix, ok := trace.MixByName(mixName)
	if !ok {
		log.Fatalf("unknown mix %q (see `mixgen -list`)", mixName)
	}

	const intervals = 3
	var jobs []stats.Job
	for _, p := range policy.All() {
		for it := 0; it < intervals; it++ {
			cfg := core.DefaultConfig(mix.Name)
			cfg.Quanta = 32
			cfg.FixedPolicy = p
			cfg.Seed = uint64(1 + it*7919)
			cfg.FastForward = int64(16384 + it*24576)
			jobs = append(jobs, stats.Job{Name: p.String(), Config: cfg})
		}
	}
	results, err := stats.RunAll(jobs, 0)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		p   policy.Policy
		ipc float64
	}
	var rows []row
	for i, p := range policy.All() {
		var vals []float64
		for it := 0; it < intervals; it++ {
			vals = append(vals, results[i*intervals+it].AggregateIPC)
		}
		rows = append(rows, row{p, stats.Mean(vals)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ipc > rows[j].ipc })

	fmt.Printf("fixed-policy comparison on %q (%d intervals averaged)\n\n", mix.Name, intervals)
	best := rows[0].ipc
	for rank, r := range rows {
		bar := ""
		for j := 0; j < int(r.ipc/best*40); j++ {
			bar += "#"
		}
		fmt.Printf("%2d. %-12s %.3f IPC  %s\n", rank+1, r.p, r.ipc, bar)
	}
	fmt.Println("\npaper context: ICOUNT is the best fixed policy on average (Tullsen et al.,")
	fmt.Println("confirmed here); the specialised policies win only in their symptom regimes,")
	fmt.Println("which is what makes adaptive switching between them attractive.")
}
