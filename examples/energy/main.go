// Energy analysis: the activity-based power model (ALPSS-style) applied
// to fixed versus adaptive scheduling. Wrong-path instructions burn
// front-end and execution energy without retiring work; a scheduler that
// wastes fewer slots is more efficient per instruction even at equal
// throughput.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/policy"
	"repro/internal/power"
)

func main() {
	model := power.DefaultModel()

	for _, setup := range []struct {
		name string
		mode core.Mode
		pol  policy.Policy
	}{
		{"fixed ICOUNT", core.ModeFixed, policy.ICOUNT},
		{"fixed RR", core.ModeFixed, policy.RR},
		{"ADTS Type 3 m=2", core.ModeADTS, policy.ICOUNT},
	} {
		cfg := core.DefaultConfig("int-branchy")
		cfg.Quanta = 24
		cfg.Mode = setup.mode
		cfg.FixedPolicy = setup.pol
		cfg.Detector.Heuristic = detector.Type3
		cfg.Detector.IPCThreshold = 2
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run()
		rep := model.Analyze(sim.Machine())

		fmt.Printf("=== %s ===\n", setup.name)
		fmt.Printf("throughput %.3f IPC, fairness (Jain) %.2f\n", res.AggregateIPC, res.FairnessJain)
		fmt.Print(rep)
		fmt.Println()
	}

	fmt.Println("reading: RR wastes fetch slots on clogged threads (higher EPI at lower IPC);")
	fmt.Println("the wrong-path share of energy tracks each scheduler's mispredict exposure.")
}
