// Adaptive scheduling walkthrough: run the same workload under fixed
// ICOUNT and under ADTS (detector thread, Type 3 heuristic, IPC
// threshold m = 2), and show the per-quantum policy timeline the
// detector produced — the paper's Figure 2/3 software loop in action.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/policy"
)

func main() {
	const mix = "mixed-lowipc" // memory-bound, the regime ADTS exploits best

	fixed := run(mix, core.ModeFixed)
	adts := run(mix, core.ModeADTS)

	fmt.Printf("workload %q, 8 threads, 48 quanta of 8K cycles\n\n", mix)
	fmt.Printf("fixed ICOUNT: %.3f IPC\n", fixed.AggregateIPC)
	fmt.Printf("ADTS Type 3, m=2: %.3f IPC (%+.1f%% vs fixed)\n\n",
		adts.AggregateIPC, 100*(adts.AggregateIPC/fixed.AggregateIPC-1))

	d := adts.Detector
	fmt.Printf("detector activity: %d/%d quanta low-throughput, %d policy switches\n",
		d.LowQuanta, d.Quanta, d.Switches)
	fmt.Printf("switch quality: %d benign, %d malignant (P(benign) = %.2f)\n",
		d.Benign, d.Malignant, d.BenignProbability())
	fmt.Printf("detector-thread cost: %d jobs run in %d leftover fetch slots (%d preempted)\n\n",
		adts.DT.JobsScheduled, adts.DT.FetchSlotsUsed, adts.DT.JobsPreempted)

	fmt.Println("policy timeline (one row per scheduling quantum):")
	fmt.Println("  quantum  engaged-policy  quantum-IPC   (* = below threshold m=2)")
	for i, p := range adts.PolicyTimeline {
		mark := " "
		if adts.QuantumIPC[i] < 2 {
			mark = "*"
		}
		bar := ""
		for j := 0; j < int(adts.QuantumIPC[i]*10); j++ {
			bar += "#"
		}
		fmt.Printf("  q%02d  %-12s  %.3f %s %s\n", i, p, adts.QuantumIPC[i], mark, bar)
	}
}

func run(mix string, mode core.Mode) core.Result {
	cfg := core.DefaultConfig(mix)
	cfg.Quanta = 48
	cfg.Mode = mode
	cfg.FixedPolicy = policy.ICOUNT
	cfg.Detector.Heuristic = detector.Type3
	cfg.Detector.IPCThreshold = 2
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sim.Run()
}
