// Programmable detector thread (paper §3): "thread scheduling can be
// manipulated even after the chip has been produced because the
// detector thread is programmable." This example writes a NEW policy-
// determination kernel — one the paper never evaluated — in the
// detector-thread VM's assembly, and runs it against the shipped
// Type 1 and Type 3 kernels on the same workload.
//
// The custom kernel ("lsq-guard") watches the load/store-queue pressure
// directly: LSQ-full spikes switch fetch to MEMCOUNT, mispredict spikes
// to BRCOUNT, otherwise it returns to ICOUNT.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dtvm"
)

const lsqGuard = `
; lsq-guard: a custom ADTS kernel (not in the paper)
east:
    loadc r1, ipc
    loadi r2, 2000          ; m = 2.0
    bge   r1, r2, ok
; LSQ pressure first: it is the scarcest shared resource here
    loadc r3, lsqfull
    loadi r4, 300           ; 0.3 LSQ-full events/cycle
    bge   r3, r4, gomem
; then branch trouble
    loadc r3, mispred
    loadi r4, 20            ; 0.02 mispredicts/cycle
    bge   r3, r4, gobr
    setpol ICOUNT           ; no symptom: the all-rounder
    halt
gomem:
    setpol MEMCOUNT
    halt
gobr:
    setpol BRCOUNT
    halt
ok:
    keep
    halt
`

func main() {
	kernels := []struct {
		name string
		src  string
	}{
		{"Type 1 (paper)", dtvm.Type1Source(2)},
		{"Type 3 (paper)", dtvm.Type3Source(detector.DefaultConfig(8), 24)},
		{"lsq-guard (custom)", lsqGuard},
	}

	fmt.Println("same machine, same workload, three detector-thread programs:")
	fmt.Println()
	for _, k := range kernels {
		prog, err := dtvm.Assemble(k.src)
		if err != nil {
			log.Fatalf("%s: %v", k.name, err)
		}
		cfg := core.DefaultConfig("mixed-lowipc")
		cfg.Quanta = 32
		cfg.Mode = core.ModeADTS
		cfg.Kernel = prog
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run()
		fmt.Printf("%-20s IPC %.3f, %d switches, %d VM instructions executed\n",
			k.name, res.AggregateIPC, res.Detector.Switches, res.KernelSteps)
		fmt.Printf("%20s timeline: ", "")
		for _, p := range res.PolicyTimeline {
			fmt.Printf("%c", p.String()[0])
		}
		fmt.Println("   (I=ICOUNT B=BRCOUNT L=L1MISSCOUNT M=MEMCOUNT R=RR)")
	}
	fmt.Println()
	fmt.Println("the kernel is data: edit the assembly above and re-run — no simulator")
	fmt.Println("(i.e. 'hardware') change needed, which is the ADTS deployment story.")
}
