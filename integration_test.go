package repro

// Cross-module integration tests: these exercise the full stack
// (trace -> pipeline -> detector/oracle -> core -> experiments) the way
// the experiment drivers do, and pin the end-to-end properties the
// reproduction rests on.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/jobsched"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
)

// TestEndToEndDeterminism: the full ADTS stack is bit-deterministic.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() core.Result {
		cfg := core.DefaultConfig("kitchen-sink")
		cfg.Mode = core.ModeADTS
		cfg.Quanta = 10
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.Committed != b.Committed || a.Detector.Switches != b.Detector.Switches {
		t.Fatalf("nondeterministic end-to-end run: %d/%d vs %d/%d",
			a.Committed, a.Detector.Switches, b.Committed, b.Detector.Switches)
	}
	for i := range a.PolicyTimeline {
		if a.PolicyTimeline[i] != b.PolicyTimeline[i] {
			t.Fatal("policy timelines diverged")
		}
	}
}

// TestSMTBeatsSingleThread: the premise of the whole field.
func TestSMTBeatsSingleThread(t *testing.T) {
	ipc := func(threads int) float64 {
		cfg := core.DefaultConfig("mixed-ilp")
		cfg.Threads = threads
		cfg.Quanta = 12
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run().AggregateIPC
	}
	one, eight := ipc(1), ipc(8)
	if eight < one*1.5 {
		t.Fatalf("8-thread SMT (%.2f) should beat single-thread (%.2f) by >50%%", eight, one)
	}
}

// TestICOUNTBeatsRREndToEnd: Tullsen's headline result must hold in
// this substrate, or nothing downstream is meaningful.
func TestICOUNTBeatsRREndToEnd(t *testing.T) {
	ipc := func(p policy.Policy) float64 {
		cfg := core.DefaultConfig("kitchen-sink")
		cfg.FixedPolicy = p
		cfg.Quanta = 16
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run().AggregateIPC
	}
	ic, rr := ipc(policy.ICOUNT), ipc(policy.RR)
	if ic <= rr {
		t.Fatalf("ICOUNT (%.3f) must beat round-robin (%.3f)", ic, rr)
	}
}

// TestDetectorTimelineMatchesSwitches: every engaged-policy change in
// the timeline corresponds to detector switches having been decided.
func TestDetectorTimelineMatchesSwitches(t *testing.T) {
	cfg := core.DefaultConfig("int-memory")
	cfg.Mode = core.ModeADTS
	cfg.Detector.Heuristic = detector.Type1
	cfg.Detector.IPCThreshold = 4 // permanently low: switches every quantum
	cfg.Quanta = 10
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	changes := 0
	prev := policy.ICOUNT
	for _, p := range res.PolicyTimeline {
		if p != prev {
			changes++
		}
		prev = p
	}
	if changes == 0 {
		t.Fatal("no engaged-policy changes despite permanent low throughput")
	}
	if uint64(changes) > res.Detector.Switches {
		t.Fatalf("%d engaged changes but only %d decided switches", changes, res.Detector.Switches)
	}
}

// TestJobschedOverADTSMachine: the full stack including the job
// scheduler and the power model runs consistently.
func TestJobschedOverADTSMachine(t *testing.T) {
	mix, _ := trace.MixByName("kitchen-sink")
	progs, err := mix.Programs(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := pipeline.New(pipeline.DefaultConfig(), progs, 1)
	var jobs []*jobsched.Job
	for i, p := range trace.Profiles() {
		jobs = append(jobs, &jobsched.Job{Name: p.Name, Prog: trace.NewProgram(p, i%8, uint64(i))})
	}
	cfg := jobsched.DefaultConfig()
	cfg.Slice = 16384
	cfg.Policy = jobsched.ClogAware
	s, err := jobsched.New(cfg, m, detector.New(detector.DefaultConfig(8)), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s.RunSlice()
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rep := power.DefaultModel().Analyze(m)
	if rep.Total <= 0 || rep.EPI <= 0 {
		t.Fatalf("power analysis degenerate over jobsched run: %+v", rep)
	}
}

// TestOracleNeverBelowWorstCandidate: across a few quanta, the oracle's
// choice each quantum is at least the per-quantum best, so its total
// must be >= the total of always picking the per-quantum WORST.
func TestOracleNeverBelowWorstCandidate(t *testing.T) {
	cfg := core.DefaultConfig("mixed-lowipc")
	cfg.Mode = core.ModeOracle
	cfg.Quanta = 4
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracleRes := sim.Run()

	worst := func(p policy.Policy) float64 {
		c := core.DefaultConfig("mixed-lowipc")
		c.FixedPolicy = p
		c.Quanta = 4
		s, _ := core.NewSimulator(c)
		return s.Run().AggregateIPC
	}
	lo := worst(policy.ICOUNT)
	for _, p := range []policy.Policy{policy.BRCOUNT, policy.L1MISSCOUNT} {
		if v := worst(p); v < lo {
			lo = v
		}
	}
	if oracleRes.AggregateIPC < lo*0.95 {
		t.Fatalf("oracle (%.3f) fell below the worst fixed candidate (%.3f)", oracleRes.AggregateIPC, lo)
	}
}
