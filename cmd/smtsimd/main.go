// Command smtsimd serves SMT simulations over HTTP: the same knobs as
// cmd/smtsim, behind a tiered result store and admission control
// (see internal/simserver, internal/resultstore, docs/simserver.md,
// and docs/resultstore.md).
//
// Usage:
//
//	smtsimd -addr :8080 -workers 4 -queue 16 -cache 256 \
//	    -store-dir /var/lib/smtsimd -store-max-bytes 268435456
//
//	curl -s localhost:8080/v1/mixes
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"mix":"int-memory","mode":"adts","heuristic":"Type 3","m":2}'
//	curl -s localhost:8080/metrics
//
// -store-dir enables the content-addressed disk tier: results survive
// restarts, and a warm daemon answers repeated sweeps without running a
// single simulation. -peers names the rest of the fleet and turns on
// the self-healing machinery: anti-entropy replication (every result
// kept at -replicas copies fleet-wide) and peer repair for the
// background integrity scrubber (-scrub-interval), which re-verifies
// every stored entry and quarantines bit rot. Classified disk faults
// (full, read-only, permission, I/O) degrade the store to readonly or
// memory-only instead of failing requests; /healthz reports store_state
// so fleet dispatch weights away from degraded daemons.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the
// listener stops, active requests and in-flight simulations drain
// (bounded by -drain), then the disk store's index is fsynced and
// closed before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/fleet"
	"repro/internal/resultstore"
	"repro/internal/simserver"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 16, "admission queue depth beyond running simulations (-1 = none)")
		cache    = flag.Int("cache", 256, "result cache entries (LRU)")
		timeout  = flag.Duration("timeout", 120*time.Second, "per-simulation timeout")
		retry    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		storeDir = flag.String("store-dir", "", "content-addressed disk store directory (empty = memory only)")
		storeMax = flag.Int64("store-max-bytes", 256<<20, "disk store size bound before oldest-access eviction")
		quarMax  = flag.Int64("quarantine-max-bytes", resultstore.DefaultQuarantineMaxBytes, "quarantine directory size bound; oldest quarantined files age out past it")

		peersF      = flag.String("peers", "", "comma-separated peer smtsimd base URLs for anti-entropy replication and scrub repair")
		peerTimeout = flag.Duration("peer-timeout", resultstore.DefaultPeerTimeout, "budget for one whole peer lookup across all peers")
		replicas    = flag.Int("replicas", resultstore.DefaultReplicas, "with -peers: target fleet-wide copies per result, counting this daemon's")
		syncEvery   = flag.Duration("sync-interval", resultstore.DefaultReplicateInterval, "with -peers: anti-entropy replication round period")
		scrubEvery  = flag.Duration("scrub-interval", resultstore.DefaultScrubInterval, "with -store-dir: background integrity scrub period (0 disables)")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("smtsimd"))
		return
	}

	qd := *queue
	if qd == 0 {
		qd = -1 // flag 0 means "no queue"; Config 0 means "default"
	}
	var store *resultstore.Tiered
	if *storeDir != "" {
		disk, err := resultstore.OpenDisk(*storeDir, resultstore.DiskOptions{
			MaxBytes:           *storeMax,
			QuarantineMaxBytes: *quarMax,
			Log:                os.Stderr,
		})
		if err != nil {
			fatal(fmt.Errorf("opening -store-dir: %w", err))
		}
		store = resultstore.NewTiered(resultstore.NewMemory(*cache), disk, nil)
	}

	// Self-healing machinery. -peers names the rest of the fleet: the
	// replicator keeps every result at -replicas copies fleet-wide, and
	// gives the scrubber somewhere to repair bit-rotted entries from.
	// The daemon's own request path never fans out to peers (that would
	// recurse across the fleet); replication converges the stores in the
	// background instead.
	var (
		peerSrc    resultstore.PeerLookup
		scrubber   *resultstore.Scrubber
		replicator *resultstore.Replicator
		cfgTimeout time.Duration
	)
	if *peersF != "" {
		src, err := fleet.NewPeerLookup(strings.Split(*peersF, ","), *peerTimeout)
		if err != nil {
			fatal(fmt.Errorf("parsing -peers: %w", err))
		}
		peerSrc = src
		cfgTimeout = *peerTimeout
		if store == nil {
			store = resultstore.NewTiered(resultstore.NewMemory(*cache), nil, nil)
		}
		replicator = resultstore.NewReplicator(store, resultstore.ReplicateConfig{
			Peers:    src.(*resultstore.PeerClient).Peers(),
			Replicas: *replicas,
			Interval: *syncEvery,
			Log:      os.Stderr,
		})
	}
	if *storeDir != "" && *scrubEvery > 0 {
		scrubber = resultstore.NewScrubber(store, resultstore.ScrubConfig{
			Interval: *scrubEvery,
			Source:   peerSrc, // nil without -peers: detect + quarantine, no repair
			Log:      os.Stderr,
		})
	}

	srv := simserver.New(simserver.Config{
		Workers:      *workers,
		QueueDepth:   qd,
		CacheEntries: *cache,
		RunTimeout:   *timeout,
		RetryAfter:   *retry,
		Store:        store,
		PeerTimeout:  cfgTimeout,
		Scrubber:     scrubber,
		Replicator:   replicator,
	})
	scrubber.Start()
	replicator.Start()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "smtsimd: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "smtsimd: shutting down, draining in-flight runs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "smtsimd: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "smtsimd: drain: %v\n", err)
		os.Exit(1)
	}
	// Background maintenance stops before the store closes: a scrub or
	// sync round mid-transfer aborts at its next pacing point.
	replicator.Stop()
	scrubber.Stop()
	// Only after the drain: every settled flight has written its entry,
	// so closing now fsyncs a complete disk index.
	if store != nil {
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "smtsimd: closing store: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, "smtsimd: drained, bye")
}

func fatal(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "smtsimd:", err)
		os.Exit(1)
	}
}
