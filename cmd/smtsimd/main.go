// Command smtsimd serves SMT simulations over HTTP: the same knobs as
// cmd/smtsim, behind a deduplicating result cache and admission control
// (see internal/simserver and docs/simserver.md).
//
// Usage:
//
//	smtsimd -addr :8080 -workers 4 -queue 16 -cache 256
//
//	curl -s localhost:8080/v1/mixes
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"mix":"int-memory","mode":"adts","heuristic":"Type 3","m":2}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, active
// requests and in-flight simulations drain (bounded by -drain), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/simserver"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 16, "admission queue depth beyond running simulations (-1 = none)")
		cache   = flag.Int("cache", 256, "result cache entries (LRU)")
		timeout = flag.Duration("timeout", 120*time.Second, "per-simulation timeout")
		retry   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drain   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("smtsimd"))
		return
	}

	qd := *queue
	if qd == 0 {
		qd = -1 // flag 0 means "no queue"; Config 0 means "default"
	}
	srv := simserver.New(simserver.Config{
		Workers:      *workers,
		QueueDepth:   qd,
		CacheEntries: *cache,
		RunTimeout:   *timeout,
		RetryAfter:   *retry,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "smtsimd: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "smtsimd: shutting down, draining in-flight runs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "smtsimd: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "smtsimd: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "smtsimd: drained, bye")
}

func fatal(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "smtsimd:", err)
		os.Exit(1)
	}
}
