// Command adts-train fits the learned-FSM transition table that the
// "learned" ADTS heuristic executes at runtime (internal/adaptive).
//
// The primary mode runs a training sweep in-process: for every arm
// policy (ICOUNT, BRCOUNT, L1MISSCOUNT), each selected mix × interval
// is simulated under that fixed policy through the core stepping seam,
// and every quantum boundary yields one sample — the quantized context
// of quantum t paired with the arm and the IPC of quantum t+1. Fit
// then picks, per context, the arm with the highest mean next-quantum
// IPC. The sweep is deterministic (same flags → byte-identical table),
// so the committed artifact internal/adaptive/learned_table.json is
// regenerable with:
//
//	adts-train -out internal/adaptive/learned_table.json
//
// Alternatively -from-checkpoint replays a runner checkpoint file
// (adts-sweep -checkpoint) instead of simulating: per-run policy
// timelines and quantum IPC series become samples keyed by the run's
// aggregate counter signature. That context is coarser than the
// per-quantum one (run-level rates stand in for quantum rates), but it
// trains from data a sweep already paid for.
//
// Usage:
//
//	adts-train -out learned_table.json
//	adts-train -mixes kitchen-sink,int-memory -quanta 32 -intervals 2
//	adts-train -from-checkpoint sweep.jsonl -out learned_table.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	var (
		out        = flag.String("out", "learned_table.json", "path for the trained table artifact")
		mixesF     = flag.String("mixes", "", "comma-separated mixes (default: all)")
		threads    = flag.Int("threads", 8, "hardware contexts per run")
		quanta     = flag.Int("quanta", 64, "measured quanta per run")
		intervals  = flag.Int("intervals", 3, "measurement intervals per mix")
		seed       = flag.Uint64("seed", 1, "base RNG seed")
		m          = flag.Float64("m", 2, "detector IPC threshold used for context quantization")
		checkpoint = flag.String("from-checkpoint", "", "replay a runner checkpoint file instead of simulating")
		verbose    = flag.Bool("v", false, "print per-context training summary")
		versionF   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *versionF {
		fmt.Println(buildinfo.String("adts-train"))
		return
	}

	var (
		samples   []adaptive.Sample
		trainedOn string
		err       error
	)
	if *checkpoint != "" {
		samples, err = replaySamples(*checkpoint, *m)
		trainedOn = fmt.Sprintf("checkpoint replay of %s (run-level contexts, m=%g)", *checkpoint, *m)
	} else {
		var mixes []string
		if *mixesF != "" {
			mixes = splitList(*mixesF)
		} else {
			for _, mx := range trace.Mixes() {
				mixes = append(mixes, mx.Name)
			}
		}
		samples, err = sweepSamples(mixes, *threads, *quanta, *intervals, *seed, *m)
		trainedOn = fmt.Sprintf("fixed-policy sweep: %d mixes × %d intervals × %d threads × %d quanta, m=%g, seed %d",
			len(mixes), *intervals, *threads, *quanta, *m, *seed)
	}
	if err != nil {
		fatal(err)
	}

	table, err := adaptive.Fit(samples, trainedOn)
	if err != nil {
		fatal(err)
	}
	blob, err := adaptive.EncodeTable(table)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("adts-train: %d samples → %d/%d contexts trained → %s\n",
		len(samples), table.Trained(), adaptive.NumContexts, *out)
	if *verbose {
		for c := 0; c < adaptive.NumContexts; c++ {
			p := table.Policy[c]
			if p == "" {
				p = "(untrained — Type 3 fallback)"
			}
			fmt.Printf("  context %2d: %-12s %5d samples, mean IPC %.3f\n",
				c, p, table.Samples[c], table.MeanIPC[c])
		}
	}
}

// sweepSamples runs every mix × interval under each arm policy through
// the stepping seam and emits one sample per quantum transition.
func sweepSamples(mixes []string, threads, quanta, intervals int, seed uint64, m float64) ([]adaptive.Sample, error) {
	o := experiments.DefaultOptions()
	o.Mixes = mixes
	o.Threads = threads
	o.Quanta = quanta
	o.Intervals = intervals
	o.Seed = seed

	// Context keys must quantize against the same thresholds the
	// runtime selectors will use.
	dcfg := detector.DefaultConfig(threads)
	dcfg.IPCThreshold = m

	var samples []adaptive.Sample
	for _, arm := range adaptive.Arms {
		for _, mix := range mixes {
			for it := 0; it < intervals; it++ {
				cfg := o.FixedConfig(mix, arm, it)
				sim, err := core.NewSimulator(cfg)
				if err != nil {
					return nil, fmt.Errorf("adts-train: %s under %s: %w", mix, arm, err)
				}
				sim.Start()
				prev := false
				var prevCtx uint8
				for q := 0; q < cfg.Quanta; q++ {
					ipc := sim.StepQuantum()
					if prev {
						samples = append(samples, adaptive.Sample{
							Context: prevCtx,
							Policy:  arm.String(),
							IPC:     ipc,
						})
					}
					prevCtx = adaptive.QuantizeQuantum(dcfg, sim.LastQuantum())
					prev = true
				}
				sim.Finish()
				sim.Close()
			}
		}
	}
	return samples, nil
}

// replaySamples derives training samples from a recorded runner
// checkpoint: each entry's policy timeline and quantum IPC series,
// keyed by the run's aggregate counter signature.
func replaySamples(path string, m float64) ([]adaptive.Sample, error) {
	entries, err := runner.ReadEntries(path)
	if err != nil {
		return nil, err
	}
	var samples []adaptive.Sample
	for _, e := range entries {
		var res core.Result
		if err := json.Unmarshal(e.Result, &res); err != nil {
			// Checkpoints can hold non-Result payloads; skip them.
			continue
		}
		if len(res.PolicyTimeline) != len(res.QuantumIPC) || len(res.QuantumIPC) < 2 {
			continue
		}
		dcfg := detector.DefaultConfig(res.Threads)
		dcfg.IPCThreshold = m
		if res.Threshold > 0 {
			dcfg.IPCThreshold = res.Threshold
		}
		// One coarse context per run: the aggregate rates stand in for
		// the per-quantum signature the primary mode measures.
		ctx := adaptive.Quantize(dcfg, res.AggregateIPC, res.L1MissRate, res.LSQFullRate, res.MispredRate, res.CondBrRate)
		// PolicyTimeline[t] is the policy engaged at the END of quantum
		// t, so quantum t+1 ran under it.
		for t := 0; t+1 < len(res.QuantumIPC); t++ {
			samples = append(samples, adaptive.Sample{
				Context: ctx,
				Policy:  res.PolicyTimeline[t].String(),
				IPC:     res.QuantumIPC[t+1],
			})
		}
	}
	return samples, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adts-train: %v\n", err)
	os.Exit(1)
}
