package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/simrun"
)

// A tiny training sweep must be deterministic end to end: same flags,
// byte-identical table.
func TestSweepSamplesDeterministic(t *testing.T) {
	run := func() []adaptive.Sample {
		s, err := sweepSamples([]string{"int-memory"}, 4, 6, 1, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("sweep produced no samples")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("training sweep not deterministic")
	}
	// Each arm × (quanta-1) transitions per mix/interval.
	want := len(adaptive.Arms) * (6 - 1)
	if len(a) != want {
		t.Fatalf("got %d samples, want %d", len(a), want)
	}
	tb, err := adaptive.Fit(a, "test")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Trained() == 0 {
		t.Fatal("tiny sweep trained no contexts")
	}
}

// Checkpoint replay turns recorded ADTS runs into samples.
func TestReplaySamples(t *testing.T) {
	cfg, err := simrun.Request{Mix: "int-memory", Mode: "adts", Threads: 4, Quanta: 6, FastForward: -1}.Config()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()

	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cp, err := runner.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("job#"+simrun.Key(cfg), res); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	samples, err := replaySamples(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(res.QuantumIPC) - 1; len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	for i, s := range samples {
		if s.Policy != res.PolicyTimeline[i].String() || s.IPC != res.QuantumIPC[i+1] {
			t.Fatalf("sample %d mismatches timeline: %+v", i, s)
		}
	}
}
