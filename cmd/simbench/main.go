// Command simbench measures the pipeline core's throughput and writes
// the result as JSON — the generator behind the committed
// BENCH_PR6.json (see `make bench-json` and docs/perf.md).
//
// Two measurements per (mix, thread-count) cell:
//
//   - core: a warm machine advancing cycles, the steady-state inner
//     loop. Reports ns/cycle, cycles/sec, allocs per 1k cycles (the
//     allocation regression gate expects exactly 0), and the simulated
//     IPC as a determinism fingerprint.
//   - single_run: one short simulation end to end — construct, run,
//     read counters — the unit of work every sweep and every smtsimd
//     request pays. Measured both unpooled (pipeline.New each run) and
//     pooled (pipeline.Acquire/Release recycling one shell), so the
//     JSON records what machine reuse is worth.
//
// A prior snapshot passed via -baseline is embedded verbatim, making
// the committed file a before/after trajectory rather than a single
// point.
//
// Usage:
//
//	simbench -out BENCH_PR6.json -baseline docs/bench-baseline-pr6.json
//	simbench -quick          # reduced iterations for CI smoke
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/multicore"
	"repro/internal/pipeline"
	"repro/internal/resultstore"
	"repro/internal/simserver"
	"repro/internal/trace"
)

// cell is one (mix, threads) measurement.
type cell struct {
	Mix     string    `json:"mix"`
	Threads int       `json:"threads"`
	Core    coreStats `json:"core"`
	Run     runStats  `json:"single_run"`
}

type coreStats struct {
	NsPerCycle     float64 `json:"ns_per_cycle"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerKCyc  float64 `json:"allocs_per_kcycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	SimIPC         float64 `json:"sim_ipc"`
	MeasuredCycles int64   `json:"measured_cycles"`
}

type runStats struct {
	CyclesPerRun  int64   `json:"cycles_per_run"`
	UnpooledNs    float64 `json:"unpooled_ns_per_run"`
	UnpooledAlloc int64   `json:"unpooled_allocs_per_run"`
	PooledNs      float64 `json:"pooled_ns_per_run"`
	PooledAlloc   int64   `json:"pooled_allocs_per_run"`
	PooledSpeedup float64 `json:"pooled_speedup"`
}

// multicoreStats compares the same total workload run as one 8-thread
// core versus two 4-thread cores in parallel goroutines: wall ns per
// simulated system cycle for each, and the wall-clock speedup the
// parallel cores buy. Simulated IPCs ride along as fingerprints.
type multicoreStats struct {
	Mix     string `json:"mix"`
	Threads int    `json:"threads"`
	// GOMAXPROCS contextualizes WallSpeedup: the dual-core run
	// simulates twice the core-cycles, so on one OS CPU the expected
	// speedup is below 1 (it still shows the per-core-cycle win); real
	// parallel speedup needs GOMAXPROCS >= cores.
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CyclesPerRun  int64   `json:"cycles_per_run"`
	SingleNsCycle float64 `json:"single_core_ns_per_cycle"`
	DualNsCycle   float64 `json:"dual_core_ns_per_cycle"`
	WallSpeedup   float64 `json:"wall_speedup"`
	SingleSimIPC  float64 `json:"single_core_sim_ipc"`
	DualSimIPC    float64 `json:"dual_core_sim_ipc"`
}

// batchStats times the same batch sweep twice against one smtsimd
// instance with a disk-backed result store: the cold pass simulates
// every item, the warm pass must be pure store reads (zero
// simulations). The ratio is what the tiered store is worth to a
// repeated sweep.
type batchStats struct {
	Mix             string  `json:"mix"`
	Threads         int     `json:"threads"`
	Items           int     `json:"items"`
	ColdNs          float64 `json:"cold_ns_per_item"`
	WarmNs          float64 `json:"warm_ns_per_item"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	WarmCached      int     `json:"warm_cached"`
	WarmSimulations int     `json:"warm_simulations"`
}

// adaptiveStats times an identical ADTS run under the Type 3 heuristic
// and the epsilon-greedy bandit selector: wall ns per run for each and
// the bandit's relative overhead (its Select/Reward bookkeeping versus
// the FSM's switch statement). Simulated IPCs ride along as
// fingerprints.
type adaptiveStats struct {
	Mix          string  `json:"mix"`
	Threads      int     `json:"threads"`
	CyclesPerRun int64   `json:"cycles_per_run"`
	Type3Ns      float64 `json:"type3_ns_per_run"`
	BanditNs     float64 `json:"bandit_ns_per_run"`
	// Overhead is bandit_ns/type3_ns - 1 (positive = bandit slower).
	Overhead     float64 `json:"bandit_overhead"`
	Type3SimIPC  float64 `json:"type3_sim_ipc"`
	BanditSimIPC float64 `json:"bandit_sim_ipc"`
}

type report struct {
	Version    string          `json:"version"`
	Go         string          `json:"go"`
	GOARCH     string          `json:"goarch"`
	Command    string          `json:"command"`
	Cells      []cell          `json:"cells"`
	Multicore  *multicoreStats `json:"multicore,omitempty"`
	BatchSweep *batchStats     `json:"batch_sweep,omitempty"`
	Adaptive   *adaptiveStats  `json:"adaptive,omitempty"`
	Baseline   json.RawMessage `json:"baseline,omitempty"`
}

func main() {
	testing.Init() // registers -test.benchtime, which drives testing.Benchmark
	var (
		out      = flag.String("out", "", "write JSON here instead of stdout")
		baseline = flag.String("baseline", "", "embed this prior snapshot JSON under \"baseline\"")
		mixesF   = flag.String("mixes", "kitchen-sink,mixed-lowipc,fp-stream", "comma-separated mix names")
		threadsF = flag.String("threads", "4,8", "comma-separated thread counts")
		runCyc   = flag.Int64("runcycles", 20000, "cycles per single_run measurement")
		quick    = flag.Bool("quick", false, "reduced iteration counts (CI smoke)")
	)
	flag.Parse()

	coreIters, runIters := "1000000x", "50x"
	if *quick {
		coreIters, runIters = "50000x", "5x"
	}

	var threads []int
	for _, s := range strings.Split(*threadsF, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 || n > 8 {
			fatalf("bad -threads entry %q", s)
		}
		threads = append(threads, n)
	}

	rep := report{
		Version: buildinfo.Version(),
		Go:      runtime.Version(),
		GOARCH:  runtime.GOARCH,
		Command: strings.Join(os.Args, " "),
	}
	for _, mixName := range strings.Split(*mixesF, ",") {
		mixName = strings.TrimSpace(mixName)
		if _, ok := trace.MixByName(mixName); !ok {
			fatalf("unknown mix %q", mixName)
		}
		for _, n := range threads {
			fmt.Fprintf(os.Stderr, "simbench: %s x %d threads\n", mixName, n)
			c := cell{Mix: mixName, Threads: n}
			c.Core = measureCore(mixName, n, coreIters)
			c.Run = measureSingleRun(mixName, n, *runCyc, runIters)
			rep.Cells = append(rep.Cells, c)
		}
	}

	fmt.Fprintf(os.Stderr, "simbench: multi-core scaling (1 vs 2 cores)\n")
	mc := measureMultiCore("kitchen-sink", 8, runIters)
	rep.Multicore = &mc

	fmt.Fprintf(os.Stderr, "simbench: batch sweep, cold vs warm store\n")
	bs := measureBatchSweep("kitchen-sink", 4, *quick)
	rep.BatchSweep = &bs

	fmt.Fprintf(os.Stderr, "simbench: adaptive selector overhead (bandit vs Type 3)\n")
	as := measureAdaptive("kitchen-sink", 8, runIters)
	rep.Adaptive = &as

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatalf("%v", err)
		}
		if !json.Valid(raw) {
			fatalf("baseline %s is not valid JSON", *baseline)
		}
		rep.Baseline = json.RawMessage(raw)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "simbench: wrote %s\n", *out)
}

// measureCore times the warm steady-state cycle loop: b.N cycles on one
// machine, exactly the regime the allocation regression test pins.
func measureCore(mixName string, threads int, iters string) coreStats {
	setBenchtime(iters)
	var ipc float64
	var cycles int64
	res := testing.Benchmark(func(b *testing.B) {
		mix, _ := trace.MixByName(mixName)
		progs, err := mix.Programs(threads, 1)
		if err != nil {
			b.Fatal(err)
		}
		m := pipeline.New(pipeline.DefaultConfig(), progs, 1)
		m.Run(8192) // warm: queues full, caches and predictors populated
		b.ReportAllocs()
		b.ResetTimer()
		m.Run(int64(b.N))
		b.StopTimer()
		ipc = m.AggregateIPC()
		cycles = int64(b.N)
	})
	ns := float64(res.NsPerOp())
	return coreStats{
		NsPerCycle:     ns,
		CyclesPerSec:   1e9 / ns,
		AllocsPerKCyc:  1000 * float64(res.MemAllocs) / float64(res.N),
		BytesPerCycle:  float64(res.MemBytes) / float64(res.N),
		SimIPC:         ipc,
		MeasuredCycles: cycles,
	}
}

// measureSingleRun times one simulation end to end, construction
// included. Programs are regenerated every iteration in both variants —
// a machine consumes the programs it runs — so the generator cost
// cancels out of the pooled/unpooled comparison.
func measureSingleRun(mixName string, threads int, cycles int64, iters string) runStats {
	mix, _ := trace.MixByName(mixName)
	cfg := pipeline.DefaultConfig()

	setBenchtime(iters)
	unpooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			progs, err := mix.Programs(threads, 1)
			if err != nil {
				b.Fatal(err)
			}
			m := pipeline.New(cfg, progs, 1)
			m.Run(cycles)
			if m.TotalCommitted() == 0 {
				b.Fatal("no instructions committed")
			}
		}
	})

	// The pooled variant is the batch path as a sweep uses it: machine
	// shells recycled through pipeline.RunMany, instruction streams
	// replayed from the shared trace cache. Recording the trace is a
	// one-time cost paid before the timed region — a sweep pays it on
	// its first run and never again — so the cell reports steady state.
	if _, err := trace.CachedPrograms(mixName, threads, 1, int(cycles)); err != nil {
		fatalf("%v", err)
	}
	setBenchtime(iters)
	pooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			progs, err := trace.CachedPrograms(mixName, threads, 1, int(cycles))
			if err != nil {
				b.Fatal(err)
			}
			work := []pipeline.Workload{{Programs: progs, Seed: 1, Cycles: cycles}}
			pipeline.RunMany(cfg, work, func(_ int, m *pipeline.Machine) {
				if m.TotalCommitted() == 0 {
					b.Fatal("no instructions committed")
				}
			})
		}
	})

	up, pn := float64(unpooled.NsPerOp()), float64(pooled.NsPerOp())
	return runStats{
		CyclesPerRun:  cycles,
		UnpooledNs:    up,
		UnpooledAlloc: int64(unpooled.AllocsPerOp()),
		PooledNs:      pn,
		PooledAlloc:   int64(pooled.AllocsPerOp()),
		PooledSpeedup: up / pn,
	}
}

// measureMultiCore times an identical total workload as one core of N
// threads versus two cores of N/2 threads under a random allocation
// (no profiling pass, so both variants simulate the same cycle count).
// Both report wall ns per simulated system cycle; their ratio is what
// the parallel per-quantum core loop buys in wall clock.
func measureMultiCore(mixName string, threads int, iters string) multicoreStats {
	mk := func(cores int) core.Config {
		cfg := core.DefaultConfig(mixName)
		cfg.Threads = threads
		cfg.Quanta = 8
		cfg.FastForward = 8192
		if cores > 1 {
			cfg.Cores = cores
			cfg.Allocation = "random"
		}
		return cfg
	}

	var singleIPC, dualIPC float64
	var cycles int64
	setBenchtime(iters)
	single := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := mk(1)
			sim, err := core.NewSimulator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res := sim.Run()
			sim.Close()
			singleIPC = res.AggregateIPC
			cycles = cfg.FastForward + res.Cycles
		}
	})
	setBenchtime(iters)
	dual := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := multicore.RunConfig(mk(2))
			if err != nil {
				b.Fatal(err)
			}
			dualIPC = res.AggregateIPC
		}
	})

	sn := float64(single.NsPerOp()) / float64(cycles)
	dn := float64(dual.NsPerOp()) / float64(cycles)
	return multicoreStats{
		Mix:           mixName,
		Threads:       threads,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		CyclesPerRun:  cycles,
		SingleNsCycle: sn,
		DualNsCycle:   dn,
		WallSpeedup:   sn / dn,
		SingleSimIPC:  singleIPC,
		DualSimIPC:    dualIPC,
	}
}

// measureAdaptive times one ADTS run end to end under the Type 3 FSM
// and then the epsilon-greedy bandit selector: identical config apart
// from the heuristic, so the delta is the selector's own cost (context
// quantization plus reward bookkeeping per quantum) on top of the
// shared detector/DT machinery.
func measureAdaptive(mixName string, threads int, iters string) adaptiveStats {
	mk := func(h detector.Heuristic) core.Config {
		cfg := core.DefaultConfig(mixName)
		cfg.Threads = threads
		cfg.Mode = core.ModeADTS
		cfg.Detector.Heuristic = h
		cfg.Quanta = 8
		cfg.FastForward = 8192
		return cfg
	}
	run := func(h detector.Heuristic) (float64, float64, int64) {
		var ipc float64
		var cycles int64
		setBenchtime(iters)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := mk(h)
				sim, err := core.NewSimulator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r := sim.Run()
				sim.Close()
				ipc = r.AggregateIPC
				cycles = cfg.FastForward + r.Cycles
			}
		})
		return float64(res.NsPerOp()), ipc, cycles
	}
	t3ns, t3ipc, cycles := run(detector.Type3)
	bns, bipc, _ := run(detector.Bandit)
	return adaptiveStats{
		Mix:          mixName,
		Threads:      threads,
		CyclesPerRun: cycles,
		Type3Ns:      t3ns,
		BanditNs:     bns,
		Overhead:     bns/t3ns - 1,
		Type3SimIPC:  t3ipc,
		BanditSimIPC: bipc,
	}
}

// measureBatchSweep runs one POST /v1/batch sweep twice against an
// in-process smtsimd with a temp-dir disk store. The cold pass
// simulates every config; the warm pass must come back entirely from
// the store (the trailer's cached count is recorded so a regression
// shows up in the committed JSON, not just in wall clock).
func measureBatchSweep(mixName string, threads int, quick bool) batchStats {
	items, quanta := 8, 8
	if quick {
		items, quanta = 4, 2
	}
	dir, err := os.MkdirTemp("", "simbench-store-*")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(dir)
	disk, err := resultstore.OpenDisk(dir, resultstore.DiskOptions{})
	if err != nil {
		fatalf("%v", err)
	}
	srv := simserver.New(simserver.Config{
		Store: resultstore.NewTiered(resultstore.NewMemory(2*items), disk, nil),
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown(context.Background())
	}()

	cfgs := make([]core.Config, items)
	for i := range cfgs {
		cfg := core.DefaultConfig(mixName)
		cfg.Threads = threads
		cfg.Quanta = quanta
		cfg.Seed = uint64(i + 1)
		cfgs[i] = cfg
	}
	body, err := json.Marshal(map[string]any{"configs": cfgs})
	if err != nil {
		fatalf("%v", err)
	}

	pass := func() (time.Duration, int) {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			fatalf("batch sweep: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatalf("batch sweep: status %d", resp.StatusCode)
		}
		var cached int
		dec := json.NewDecoder(resp.Body)
		for {
			var line struct {
				Trailer bool   `json:"trailer"`
				Error   string `json:"error"`
				Cached  int    `json:"cached_total"`
			}
			if err := dec.Decode(&line); err != nil {
				fatalf("batch sweep: truncated stream: %v", err)
			}
			if line.Error != "" {
				fatalf("batch sweep: item failed: %s", line.Error)
			}
			if line.Trailer {
				cached = line.Cached
				break
			}
		}
		return time.Since(start), cached
	}

	coldDur, coldCached := pass()
	if coldCached != 0 {
		fatalf("batch sweep: cold pass reported %d cached items", coldCached)
	}
	// Drop the memory tier so the warm pass exercises the disk store,
	// not just the LRU.
	srv.Store().Memory().Clear()
	warmDur, warmCached := pass()

	cold := float64(coldDur.Nanoseconds()) / float64(items)
	warm := float64(warmDur.Nanoseconds()) / float64(items)
	return batchStats{
		Mix:             mixName,
		Threads:         threads,
		Items:           items,
		ColdNs:          cold,
		WarmNs:          warm,
		WarmSpeedup:     cold / warm,
		WarmCached:      warmCached,
		WarmSimulations: items - warmCached,
	}
}

// setBenchtime points testing.Benchmark at a fixed iteration count so
// wall time is bounded and the simulated work is reproducible.
func setBenchtime(iters string) {
	if err := flag.Set("test.benchtime", iters); err != nil {
		fatalf("set benchtime: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simbench: "+format+"\n", args...)
	os.Exit(1)
}
