// Command adts-sweep regenerates the paper's evaluation: the Table 1
// fixed-policy comparison, the Figure 7 switch-count/switch-quality
// grids, the Figure 8 throughput grids, the §6 headline, the oracle
// upper bound, the homogeneous-vs-diverse comparison, the thread-count
// saturation experiment, and the §4.3.2 condition-threshold calibration
// — plus the beyond-the-paper studies: thread-to-core allocation on
// multi-core systems (-multicore) and learned dynamic policy selection
// (-adaptive, comparing the bandit/ucb/learned heuristics against
// Type 3/3'/4; see docs/adaptive.md).
//
// Runs go through the resilient runner (internal/runner): progress ticks
// on stderr, Ctrl-C drains in-flight simulations and flushes them to the
// checkpoint file, and -resume continues an interrupted sweep without
// recomputing finished runs.
//
// Usage:
//
//	adts-sweep -all
//	adts-sweep -fig7 -fig8 -quanta 64 -intervals 3
//	adts-sweep -table1 -mixes kitchen-sink,int-memory
//	adts-sweep -fig8 -checkpoint sweep.jsonl     # interruptible
//	adts-sweep -fig8 -resume sweep.jsonl         # continue after Ctrl-C
//	adts-sweep -table1 -json > table1.json       # machine-readable
//	adts-sweep -all -backends sim1:8080,sim2:8080,sim3:8080   # distributed
//	adts-sweep -all -backends sim1:8080,sim2:8080 -batch -peer-lookup
//
// With -backends, each simulation is dispatched to a pool of smtsimd
// servers (least-loaded, with health probing, retries, and circuit
// breakers — see docs/fleet.md); results are byte-identical to a local
// run, and -checkpoint/-resume work unchanged. -batch ships runs as
// chunked POST /v1/batch streams (one request per chunk instead of per
// run), and -peer-lookup consults every backend's result store before
// dispatching, so a fleet that has seen a config anywhere never
// re-simulates it (see docs/resultstore.md).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/buildinfo"
	"repro/internal/detector"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/profiling"
	"repro/internal/resultstore"
	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		fig7       = flag.Bool("fig7", false, "Figure 7: switch counts and benign-switch probability")
		fig8       = flag.Bool("fig8", false, "Figure 8: throughput vs threshold and heuristic")
		table1     = flag.Bool("table1", false, "Table 1: fixed-policy comparison")
		oracleF    = flag.Bool("oracle", false, "oracle-scheduled upper bound")
		saturation = flag.Bool("saturation", false, "thread-count scaling, fixed vs adaptive")
		calibrate  = flag.Bool("calibrate", false, "condition-threshold calibration (§4.3.2)")
		jobschedF  = flag.Bool("jobsched", false, "job-scheduler interplay: oblivious vs DT-assisted (§3/§7)")
		headline   = flag.Bool("headline", false, "§6 headline: best configuration vs fixed ICOUNT")
		similarity = flag.Bool("similarity", false, "homogeneous vs diverse mix gains (§6)")
		multicoreF = flag.Bool("multicore", false, "thread-to-core allocation policies on N SMT cores")
		adaptiveF  = flag.Bool("adaptive", false, "learned policy selection (bandit, ucb, learned FSM) vs Type 3/3'/4")

		coresF           = flag.String("cores", "2,4", "with -multicore: comma-separated core counts")
		adaptiveThreadsF = flag.String("adaptive-threads", "4,8", "with -adaptive: comma-separated thread counts")
		adaptiveCoresF   = flag.String("adaptive-cores", "1,2", "with -adaptive: comma-separated core counts (1 = single core)")

		quanta      = flag.Int("quanta", 64, "measured scheduling quanta per run")
		intervals   = flag.Int("intervals", 3, "measurement intervals per mix (paper used 10)")
		threads     = flag.Int("threads", 8, "hardware contexts")
		seed        = flag.Uint64("seed", 1, "base seed")
		workers     = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		mixesFlag   = flag.String("mixes", "", "comma-separated mix subset (default: all 13)")
		checkpointF = flag.String("checkpoint", "", "record completed runs to this JSONL file (overwrites)")
		resumeF     = flag.String("resume", "", "resume from (and keep appending to) this checkpoint file")
		jsonF       = flag.Bool("json", false, "emit machine-readable JSON results to stdout instead of tables")

		backendsF     = flag.String("backends", "", "comma-separated smtsimd backends (host:port or URL) to shard runs across")
		batchF        = flag.Bool("batch", false, "with -backends: ship runs in chunked POST /v1/batch streams instead of one request per run")
		batchSizeF    = flag.Int("batch-size", 0, "with -batch: configs per batch chunk (0 = default 64)")
		peerLookupF   = flag.Bool("peer-lookup", false, "with -backends: ask every backend's result store before dispatching a run")
		peerTimeoutF  = flag.Duration("peer-timeout", resultstore.DefaultPeerTimeout, "with -peer-lookup: budget for one whole peer lookup across all backends")
		hedgeF        = flag.Bool("hedge", false, "with -backends: hedge slow requests to a second backend")
		maxRetriesF   = flag.Int("max-retries", 3, "with -backends: re-dispatches per run after a failure (-1 disables)")
		fleetMetricsF = flag.Bool("fleet-metrics", false, "with -backends: print fleet client metrics to stderr on exit")
		auditRateF    = flag.Float64("audit-rate", 0, "with -backends: fraction of runs (0..1) re-checked on a second backend; disagreements are majority-voted and byzantine backends quarantined")
		auditSeedF    = flag.Uint64("audit-seed", 1, "with -backends: seed for the audit sampler (deterministic sampling)")
		versionF      = flag.Bool("version", false, "print version and exit")
		cpuProf       = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf       = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	if *versionF {
		fmt.Println(buildinfo.String("adts-sweep"))
		return
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adts-sweep:", err)
		os.Exit(1)
	}
	defer stopProf()

	o := experiments.DefaultOptions()
	o.Quanta = *quanta
	o.Intervals = *intervals
	o.Threads = *threads
	o.Seed = *seed
	o.Workers = *workers
	o.Progress = os.Stderr
	if *mixesFlag != "" {
		o.Mixes = splitMixes(*mixesFlag)
		if len(o.Mixes) == 0 {
			fatalf("-mixes %q selects no mixes", *mixesFlag)
		}
		for _, m := range o.Mixes {
			if _, ok := trace.MixByName(m); !ok {
				fatalf("unknown mix %q", m)
			}
		}
	}

	// -resume implies checkpointing to the same file without truncating.
	ckPath, ckResume := *checkpointF, false
	if *resumeF != "" {
		if ckPath != "" && ckPath != *resumeF {
			fatalf("-checkpoint %q and -resume %q name different files", ckPath, *resumeF)
		}
		ckPath, ckResume = *resumeF, true
	}
	if ckPath != "" {
		cp, err := runner.Open(ckPath, ckResume)
		if err != nil {
			fatalf("%v", err)
		}
		defer cp.Close()
		if n := cp.Skipped(); n > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d unreadable checkpoint line(s) in %s dropped (torn tail from an interrupt); those runs will be recomputed\n", n, ckPath)
		}
		if ckResume && cp.Len() > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d runs already checkpointed in %s\n", cp.Len(), ckPath)
		}
		o.Checkpoint = cp
	}

	// -backends shards runs across a pool of smtsimd servers. Results
	// are byte-identical to local execution, so checkpoints written
	// locally resume remotely and vice versa.
	if *backendsF != "" {
		backends := splitMixes(*backendsF) // same comma-list parsing
		var peers resultstore.PeerLookup
		if *peerLookupF {
			var err error
			peers, err = fleet.NewPeerLookup(backends, *peerTimeoutF)
			if err != nil {
				fatalf("fleet: %v", err)
			}
		}
		fc, err := fleet.New(fleet.Config{
			Backends:   backends,
			MaxRetries: *maxRetriesF,
			Hedge:      *hedgeF,
			AuditRate:  *auditRateF,
			AuditSeed:  *auditSeedF,
			BatchSize:  *batchSizeF,
			PeerLookup: peers,
			Log:        os.Stderr,
		})
		if err != nil {
			fatalf("fleet: %v", err)
		}
		defer fc.Close()
		if *batchF {
			o.Executor = fc.BatchExecutor()
			fmt.Fprintf(os.Stderr, "batch-dispatching runs across %d backend(s)\n", fc.Backends())
		} else {
			o.Executor = fc.Executor()
			fmt.Fprintf(os.Stderr, "dispatching runs across %d backend(s)\n", fc.Backends())
		}
		if *fleetMetricsF {
			defer fc.WriteMetrics(os.Stderr)
		}
	} else if *hedgeF || *fleetMetricsF || *auditRateF != 0 || *batchF || *peerLookupF {
		fatalf("-batch, -peer-lookup, -hedge, -fleet-metrics, and -audit-rate require -backends")
	}

	// Ctrl-C / SIGTERM cancels the sweep context: in-flight runs drain
	// and flush to the checkpoint before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *all {
		*fig7, *fig8, *table1, *oracleF, *saturation, *calibrate, *headline, *similarity, *jobschedF, *multicoreF, *adaptiveF =
			true, true, true, true, true, true, true, true, true, true, true
	}
	if !(*fig7 || *fig8 || *table1 || *oracleF || *saturation || *calibrate || *headline || *similarity || *jobschedF || *multicoreF || *adaptiveF) {
		flag.Usage()
		os.Exit(2)
	}

	// out collects the machine-readable export for -json.
	var out struct {
		Sweep      *experiments.Sweep            `json:"sweep,omitempty"`
		Table1     *experiments.Table1Result     `json:"table1,omitempty"`
		Oracle     *experiments.OracleResult     `json:"oracle,omitempty"`
		Envelope   *experiments.EnvelopeResult   `json:"envelope,omitempty"`
		Saturation *experiments.SaturationResult `json:"saturation,omitempty"`
		Calibrate  *experiments.Calibration      `json:"calibrate,omitempty"`
		Jobsched   *experiments.JobschedResult   `json:"jobsched,omitempty"`
		Multicore  *experiments.MultiCoreResult  `json:"multicore,omitempty"`
		Adaptive   *experiments.AdaptiveResult   `json:"adaptive,omitempty"`
	}
	emit := func(s fmt.Stringer) {
		if !*jsonF {
			fmt.Println(s)
		}
	}

	var sweep *experiments.Sweep
	needSweep := *fig7 || *fig8 || *headline || *similarity
	if needSweep {
		fmt.Fprintf(os.Stderr, "running threshold x heuristic sweep (%d mixes x %d intervals x 25 configs + baseline)...\n",
			len(o.MixNames()), o.Intervals)
		var err error
		sweep, err = experiments.RunSweep(ctx, o, nil, nil)
		if err != nil {
			sweepFatal("sweep", err, ckPath)
		}
		out.Sweep = sweep
	}

	if *table1 {
		res, err := experiments.RunTable1(ctx, o)
		if err != nil {
			sweepFatal("table1", err, ckPath)
		}
		out.Table1 = res
		emit(res.Table())
		emit(res.PerMixTable())
	}
	if *fig7 {
		emit(sweep.Figure7Switches())
		emit(sweep.Figure7Benign())
	}
	if *fig8 {
		emit(sweep.Figure8IPC())
		emit(sweep.Figure8Improvement())
		emit(sweep.Figure8Chart())
	}
	if *headline && !*jsonF {
		fmt.Println(sweep.Headline())
		fmt.Println()
	}
	if *similarity && !*jsonF {
		homo := map[string]bool{}
		for _, m := range trace.Mixes() {
			homo[m.Name] = m.Homogeneous
		}
		hg, dg, err := sweep.Similarity(2, detector.Type3, homo)
		if err != nil {
			fatalf("similarity: %v", err)
		}
		fmt.Printf("similarity (Type 3, m=2): homogeneous mixes %+.1f%%, diverse mixes %+.1f%% over fixed ICOUNT (paper: homogeneous benefit more)\n\n",
			100*hg, 100*dg)
	}
	if *oracleF {
		res, err := experiments.RunOracle(ctx, o)
		if err != nil {
			sweepFatal("oracle", err, ckPath)
		}
		out.Oracle = res
		emit(res.Table())
		env, err := experiments.RunEnvelope(ctx, o, nil)
		if err != nil {
			sweepFatal("envelope", err, ckPath)
		}
		out.Envelope = env
		emit(env.Table())
	}
	if *saturation {
		res, err := experiments.RunSaturation(ctx, o, nil)
		if err != nil {
			sweepFatal("saturation", err, ckPath)
		}
		out.Saturation = res
		emit(res.Table())
	}
	if *calibrate {
		res, err := experiments.RunCalibration(ctx, o)
		if err != nil {
			sweepFatal("calibrate", err, ckPath)
		}
		out.Calibrate = res
		emit(res.Table())
	}
	if *jobschedF {
		res, err := experiments.RunJobsched(ctx, o, 12)
		if err != nil {
			sweepFatal("jobsched", err, ckPath)
		}
		out.Jobsched = res
		emit(res.Table())
	}
	if *multicoreF {
		cores, err := parseCores(*coresF, o.Threads)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := experiments.RunMultiCore(ctx, o, cores)
		if err != nil {
			sweepFatal("multicore", err, ckPath)
		}
		out.Multicore = res
		for _, tb := range res.Tables() {
			emit(tb)
		}
	}
	if *adaptiveF {
		ths, cores, err := parseAdaptiveGrid(*adaptiveThreadsF, *adaptiveCoresF)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := experiments.RunAdaptive(ctx, o, ths, cores)
		if err != nil {
			sweepFatal("adaptive", err, ckPath)
		}
		out.Adaptive = res
		for _, tb := range res.Tables() {
			emit(tb)
		}
	}

	if *jsonF {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("json: %v", err)
		}
	}
}

// parseCores parses the -cores list and checks each count divides the
// thread count (the same constraint core.Config.Validate enforces),
// so a bad flag fails before any simulation runs.
func parseCores(s string, threads int) ([]int, error) {
	var cores []int
	for _, part := range splitMixes(s) {
		var c int
		if _, err := fmt.Sscanf(part, "%d", &c); err != nil || c < 2 || c > 8 {
			return nil, fmt.Errorf("-cores: want counts in 2..8, got %q", part)
		}
		if threads%c != 0 {
			return nil, fmt.Errorf("-cores: %d does not divide -threads %d", c, threads)
		}
		cores = append(cores, c)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("-cores: empty list")
	}
	return cores, nil
}

// parseAdaptiveGrid parses the -adaptive-threads and -adaptive-cores
// lists and checks every core count divides every thread count, so a
// bad grid fails before any simulation runs. Unlike -multicore's
// -cores, core count 1 is valid here (the single-core grid points).
func parseAdaptiveGrid(threadsList, coresList string) (threads, cores []int, err error) {
	for _, part := range splitMixes(threadsList) {
		var t int
		if _, err := fmt.Sscanf(part, "%d", &t); err != nil || t < 1 || t > 8 {
			return nil, nil, fmt.Errorf("-adaptive-threads: want counts in 1..8, got %q", part)
		}
		threads = append(threads, t)
	}
	for _, part := range splitMixes(coresList) {
		var c int
		if _, err := fmt.Sscanf(part, "%d", &c); err != nil || c < 1 || c > 8 {
			return nil, nil, fmt.Errorf("-adaptive-cores: want counts in 1..8, got %q", part)
		}
		for _, t := range threads {
			if t%c != 0 {
				return nil, nil, fmt.Errorf("-adaptive-cores: %d does not divide thread count %d", c, t)
			}
		}
		cores = append(cores, c)
	}
	if len(threads) == 0 || len(cores) == 0 {
		return nil, nil, fmt.Errorf("-adaptive-threads/-adaptive-cores: empty list")
	}
	return threads, cores, nil
}

// splitMixes parses the -mixes value: comma-separated names with
// whitespace trimmed and empty entries dropped, so
// "kitchen-sink, int-memory" or a trailing comma both work.
func splitMixes(s string) []string {
	var mixes []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			mixes = append(mixes, m)
		}
	}
	return mixes
}

// sweepFatal reports an experiment failure; an interrupt with an active
// checkpoint exits with the conventional SIGINT status and a resume
// hint instead of a bare error.
func sweepFatal(what string, err error, ckPath string) {
	if errors.Is(err, context.Canceled) {
		if ckPath != "" {
			fmt.Fprintf(os.Stderr, "adts-sweep: %s interrupted; completed runs are in %s — re-run with -resume %s to continue\n",
				what, ckPath, ckPath)
		} else {
			fmt.Fprintf(os.Stderr, "adts-sweep: %s interrupted (no -checkpoint; completed runs were discarded)\n", what)
		}
		os.Exit(130)
	}
	fatalf("%s: %v", what, err)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adts-sweep: "+format+"\n", args...)
	os.Exit(1)
}
