// Command adts-sweep regenerates the paper's evaluation: the Table 1
// fixed-policy comparison, the Figure 7 switch-count/switch-quality
// grids, the Figure 8 throughput grids, the §6 headline, the oracle
// upper bound, the homogeneous-vs-diverse comparison, the thread-count
// saturation experiment, and the §4.3.2 condition-threshold calibration.
//
// Usage:
//
//	adts-sweep -all
//	adts-sweep -fig7 -fig8 -quanta 64 -intervals 3
//	adts-sweep -table1 -mixes kitchen-sink,int-memory
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/detector"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		fig7       = flag.Bool("fig7", false, "Figure 7: switch counts and benign-switch probability")
		fig8       = flag.Bool("fig8", false, "Figure 8: throughput vs threshold and heuristic")
		table1     = flag.Bool("table1", false, "Table 1: fixed-policy comparison")
		oracleF    = flag.Bool("oracle", false, "oracle-scheduled upper bound")
		saturation = flag.Bool("saturation", false, "thread-count scaling, fixed vs adaptive")
		calibrate  = flag.Bool("calibrate", false, "condition-threshold calibration (§4.3.2)")
		jobschedF  = flag.Bool("jobsched", false, "job-scheduler interplay: oblivious vs DT-assisted (§3/§7)")
		headline   = flag.Bool("headline", false, "§6 headline: best configuration vs fixed ICOUNT")
		similarity = flag.Bool("similarity", false, "homogeneous vs diverse mix gains (§6)")

		quanta    = flag.Int("quanta", 64, "measured scheduling quanta per run")
		intervals = flag.Int("intervals", 3, "measurement intervals per mix (paper used 10)")
		threads   = flag.Int("threads", 8, "hardware contexts")
		seed      = flag.Uint64("seed", 1, "base seed")
		workers   = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		mixesFlag = flag.String("mixes", "", "comma-separated mix subset (default: all 13)")
	)
	flag.Parse()

	o := experiments.DefaultOptions()
	o.Quanta = *quanta
	o.Intervals = *intervals
	o.Threads = *threads
	o.Seed = *seed
	o.Workers = *workers
	if *mixesFlag != "" {
		o.Mixes = strings.Split(*mixesFlag, ",")
		for _, m := range o.Mixes {
			if _, ok := trace.MixByName(m); !ok {
				fatalf("unknown mix %q", m)
			}
		}
	}

	if *all {
		*fig7, *fig8, *table1, *oracleF, *saturation, *calibrate, *headline, *similarity, *jobschedF =
			true, true, true, true, true, true, true, true, true
	}
	if !(*fig7 || *fig8 || *table1 || *oracleF || *saturation || *calibrate || *headline || *similarity || *jobschedF) {
		flag.Usage()
		os.Exit(2)
	}

	var sweep *experiments.Sweep
	needSweep := *fig7 || *fig8 || *headline || *similarity
	if needSweep {
		fmt.Fprintf(os.Stderr, "running threshold x heuristic sweep (%d mixes x %d intervals x 25 configs + baseline)...\n",
			len(o.MixNames()), o.Intervals)
		var err error
		sweep, err = experiments.RunSweep(o, nil, nil)
		if err != nil {
			fatalf("sweep: %v", err)
		}
	}

	if *table1 {
		res, err := experiments.RunTable1(o)
		if err != nil {
			fatalf("table1: %v", err)
		}
		fmt.Println(res.Table())
		fmt.Println(res.PerMixTable())
	}
	if *fig7 {
		fmt.Println(sweep.Figure7Switches())
		fmt.Println(sweep.Figure7Benign())
	}
	if *fig8 {
		fmt.Println(sweep.Figure8IPC())
		fmt.Println(sweep.Figure8Improvement())
		fmt.Println(sweep.Figure8Chart())
	}
	if *headline {
		fmt.Println(sweep.Headline())
		fmt.Println()
	}
	if *similarity {
		homo := map[string]bool{}
		for _, m := range trace.Mixes() {
			homo[m.Name] = m.Homogeneous
		}
		hg, dg, err := sweep.Similarity(2, detector.Type3, homo)
		if err != nil {
			fatalf("similarity: %v", err)
		}
		fmt.Printf("similarity (Type 3, m=2): homogeneous mixes %+.1f%%, diverse mixes %+.1f%% over fixed ICOUNT (paper: homogeneous benefit more)\n\n",
			100*hg, 100*dg)
	}
	if *oracleF {
		res, err := experiments.RunOracle(o)
		if err != nil {
			fatalf("oracle: %v", err)
		}
		fmt.Println(res.Table())
		env, err := experiments.RunEnvelope(o, nil)
		if err != nil {
			fatalf("envelope: %v", err)
		}
		fmt.Println(env.Table())
	}
	if *saturation {
		res, err := experiments.RunSaturation(o, nil)
		if err != nil {
			fatalf("saturation: %v", err)
		}
		fmt.Println(res.Table())
	}
	if *calibrate {
		res, err := experiments.RunCalibration(o)
		if err != nil {
			fatalf("calibrate: %v", err)
		}
		fmt.Println(res.Table())
	}
	if *jobschedF {
		res, err := experiments.RunJobsched(o, 12)
		if err != nil {
			fatalf("jobsched: %v", err)
		}
		fmt.Println(res.Table())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adts-sweep: "+format+"\n", args...)
	os.Exit(1)
}
