package main

import (
	"reflect"
	"testing"
)

// Regression: -mixes used to split on "," without trimming, so
// "kitchen-sink, int-memory" rejected " int-memory" as unknown.
func TestSplitMixes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"kitchen-sink", []string{"kitchen-sink"}},
		{"kitchen-sink,int-memory", []string{"kitchen-sink", "int-memory"}},
		{"kitchen-sink, int-memory", []string{"kitchen-sink", "int-memory"}},
		{"  kitchen-sink ,\tint-memory ", []string{"kitchen-sink", "int-memory"}},
		{"kitchen-sink,,int-memory,", []string{"kitchen-sink", "int-memory"}},
		{" , ", nil},
		{"", nil},
	} {
		if got := splitMixes(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitMixes(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
