// Command dtasm works with detector-thread kernels (internal/dtvm): it
// assembles and checks kernel files, dumps the built-in paper kernels,
// and dry-runs a kernel against a synthetic quantum snapshot so the
// decision logic can be debugged without a simulation.
//
// Usage:
//
//	dtasm -dump type1 > type1.dt        # the paper's Figure 4 kernel
//	dtasm -dump type3 > type3.dt        # the Figure 3/6 kernel
//	dtasm -check mykernel.dt
//	dtasm -run mykernel.dt -ipc 0.8 -l1miss 0.3 -incumbent ICOUNT
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/detector"
	"repro/internal/dtvm"
	"repro/internal/policy"
)

func main() {
	var (
		dump      = flag.String("dump", "", "print a built-in kernel: type1 | type3")
		check     = flag.String("check", "", "assemble a kernel file and report statistics")
		run       = flag.String("run", "", "assemble and dry-run a kernel file against the -ipc/-l1miss/... snapshot")
		m         = flag.Float64("m", 2, "IPC threshold baked into dumped kernels")
		clogLimit = flag.Int("cloglimit", 24, "clogging pre-issue limit baked into the type3 kernel")

		ipc       = flag.Float64("ipc", 1.0, "dry-run: quantum IPC")
		l1miss    = flag.Float64("l1miss", 0, "dry-run: L1 misses/cycle")
		lsqfull   = flag.Float64("lsqfull", 0, "dry-run: LSQ-full events/cycle")
		mispred   = flag.Float64("mispred", 0, "dry-run: mispredicts/cycle")
		condbr    = flag.Float64("condbr", 0, "dry-run: conditional branches/cycle")
		previpc   = flag.Float64("previpc", 0, "dry-run: previous quantum IPC")
		incumbent = flag.String("incumbent", "ICOUNT", "dry-run: engaged policy")
	)
	flag.Parse()

	switch {
	case *dump != "":
		switch *dump {
		case "type1":
			fmt.Print(dtvm.Type1Source(*m))
		case "type3":
			cfg := detector.DefaultConfig(8)
			cfg.IPCThreshold = *m
			fmt.Print(dtvm.Type3Source(cfg, *clogLimit))
		default:
			fatalf("unknown built-in kernel %q (type1 | type3)", *dump)
		}
	case *check != "":
		prog := mustAssemble(*check)
		fmt.Printf("%s: OK — %d instructions, %d labels\n", *check, len(prog.Insts), countLabels(prog))
	case *run != "":
		prog := mustAssemble(*run)
		inc, err := policy.Parse(*incumbent)
		if err != nil {
			fatalf("%v", err)
		}
		q := detector.QuantumStats{
			Cycles:      8192,
			IPC:         *ipc,
			L1MissRate:  *l1miss,
			LSQFullRate: *lsqfull,
			MispredRate: *mispred,
			CondBrRate:  *condbr,
			PerThread:   make([]detector.ThreadQuantum, 8),
		}
		out, err := prog.Exec(q, inc, *previpc)
		if err != nil {
			fatalf("execution failed: %v", err)
		}
		fmt.Printf("executed %d VM instructions\n", out.Steps)
		switch {
		case out.Switch:
			fmt.Printf("decision: switch %v -> %v\n", inc, out.NewPolicy)
		case out.Keep:
			fmt.Printf("decision: keep %v\n", inc)
		default:
			fmt.Println("decision: none (kernel halted without setpol/keep)")
		}
		for tid, clog := range out.Clogging {
			if clog {
				fmt.Printf("clogging: thread %d\n", tid)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func mustAssemble(path string) *dtvm.Program {
	src, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := dtvm.Assemble(string(src))
	if err != nil {
		fatalf("%v", err)
	}
	return prog
}

func countLabels(p *dtvm.Program) int {
	n := 0
	for _, in := range p.Insts {
		if in.Op == dtvm.OpJmp || in.Op == dtvm.OpBlt || in.Op == dtvm.OpBge || in.Op == dtvm.OpBeq {
			n++
		}
	}
	return n
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dtasm: "+format+"\n", args...)
	os.Exit(1)
}
