// Command dtasm works with detector-thread kernels (internal/dtvm): it
// assembles and checks kernel files, dumps the built-in paper kernels,
// and dry-runs a kernel against a synthetic quantum snapshot so the
// decision logic can be debugged without a simulation.
//
// Usage:
//
//	dtasm -dump type1 > type1.dt        # the paper's Figure 4 kernel
//	dtasm -dump type3 > type3.dt        # the Figure 3/6 kernel
//	dtasm -check mykernel.dt
//	dtasm -run mykernel.dt -ipc 0.8 -l1miss 0.3 -incumbent ICOUNT
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/detector"
	"repro/internal/dtvm"
	"repro/internal/policy"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code injectable for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dtasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dump      = fs.String("dump", "", "print a built-in kernel: type1 | type3")
		check     = fs.String("check", "", "assemble a kernel file and report statistics")
		runF      = fs.String("run", "", "assemble and dry-run a kernel file against the -ipc/-l1miss/... snapshot")
		m         = fs.Float64("m", 2, "IPC threshold baked into dumped kernels")
		clogLimit = fs.Int("cloglimit", 24, "clogging pre-issue limit baked into the type3 kernel")

		ipc       = fs.Float64("ipc", 1.0, "dry-run: quantum IPC")
		l1miss    = fs.Float64("l1miss", 0, "dry-run: L1 misses/cycle")
		lsqfull   = fs.Float64("lsqfull", 0, "dry-run: LSQ-full events/cycle")
		mispred   = fs.Float64("mispred", 0, "dry-run: mispredicts/cycle")
		condbr    = fs.Float64("condbr", 0, "dry-run: conditional branches/cycle")
		previpc   = fs.Float64("previpc", 0, "dry-run: previous quantum IPC")
		incumbent = fs.String("incumbent", "ICOUNT", "dry-run: engaged policy")
		version   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("dtasm"))
		return 0
	}

	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "dtasm: "+format+"\n", a...)
		return 1
	}

	switch {
	case *dump != "":
		switch *dump {
		case "type1":
			fmt.Fprint(stdout, dtvm.Type1Source(*m))
		case "type3":
			cfg := detector.DefaultConfig(8)
			cfg.IPCThreshold = *m
			fmt.Fprint(stdout, dtvm.Type3Source(cfg, *clogLimit))
		default:
			return fail("unknown built-in kernel %q (type1 | type3)", *dump)
		}
	case *check != "":
		prog, err := assembleFile(*check)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "%s: OK — %d instructions, %d labels\n", *check, len(prog.Insts), countLabels(prog))
	case *runF != "":
		prog, err := assembleFile(*runF)
		if err != nil {
			return fail("%v", err)
		}
		inc, err := policy.Parse(*incumbent)
		if err != nil {
			return fail("%v", err)
		}
		q := detector.QuantumStats{
			Cycles:      8192,
			IPC:         *ipc,
			L1MissRate:  *l1miss,
			LSQFullRate: *lsqfull,
			MispredRate: *mispred,
			CondBrRate:  *condbr,
			PerThread:   make([]detector.ThreadQuantum, 8),
		}
		out, err := prog.Exec(q, inc, *previpc)
		if err != nil {
			return fail("execution failed: %v", err)
		}
		fmt.Fprintf(stdout, "executed %d VM instructions\n", out.Steps)
		switch {
		case out.Switch:
			fmt.Fprintf(stdout, "decision: switch %v -> %v\n", inc, out.NewPolicy)
		case out.Keep:
			fmt.Fprintf(stdout, "decision: keep %v\n", inc)
		default:
			fmt.Fprintln(stdout, "decision: none (kernel halted without setpol/keep)")
		}
		for tid, clog := range out.Clogging {
			if clog {
				fmt.Fprintf(stdout, "clogging: thread %d\n", tid)
			}
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}

func assembleFile(path string) (*dtvm.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return dtvm.Assemble(string(src))
}

func countLabels(p *dtvm.Program) int {
	n := 0
	for _, in := range p.Insts {
		if in.Op == dtvm.OpJmp || in.Op == dtvm.OpBlt || in.Op == dtvm.OpBge || in.Op == dtvm.OpBeq {
			n++
		}
	}
	return n
}
