package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDumpAssembleRoundTrip: the dumped built-in kernels must assemble,
// and -check must report the encoded instruction count — the smoke path
// of dtasm -dump | dtasm -check.
func TestDumpAssembleRoundTrip(t *testing.T) {
	for _, kernel := range []string{"type1", "type3"} {
		var out, errb strings.Builder
		if code := run([]string{"-dump", kernel}, &out, &errb); code != 0 {
			t.Fatalf("-dump %s: exit %d, stderr %s", kernel, code, errb.String())
		}
		src := out.String()
		if src == "" {
			t.Fatalf("-dump %s produced no source", kernel)
		}

		path := filepath.Join(t.TempDir(), kernel+".dt")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		out.Reset()
		if code := run([]string{"-check", path}, &out, &errb); code != 0 {
			t.Fatalf("-check %s: exit %d, stderr %s", kernel, code, errb.String())
		}
		if !strings.Contains(out.String(), "OK — ") || !strings.Contains(out.String(), "instructions") {
			t.Fatalf("-check output unexpected: %s", out.String())
		}
	}
}

// TestDumpIsStable: -dump is deterministic, so kernels can be diffed and
// committed.
func TestDumpIsStable(t *testing.T) {
	var a, b strings.Builder
	run([]string{"-dump", "type1", "-m", "2.5"}, &a, &b)
	var c strings.Builder
	run([]string{"-dump", "type1", "-m", "2.5"}, &c, &b)
	if a.String() != c.String() {
		t.Fatal("-dump type1 output is not stable across invocations")
	}
	if !strings.Contains(a.String(), "2500") { // 2.5 in the VM's fixed-point
		t.Fatalf("-m 2.5 not baked into the kernel:\n%s", a.String())
	}
}

// TestDryRunDecision: a dumped type1 kernel dry-run against a low-IPC
// snapshot must reach a decision.
func TestDryRunDecision(t *testing.T) {
	var out, errb strings.Builder
	run([]string{"-dump", "type1"}, &out, &errb)
	path := filepath.Join(t.TempDir(), "k.dt")
	if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-run", path, "-ipc", "0.5", "-l1miss", "0.4"}, &out, &errb); code != 0 {
		t.Fatalf("-run: exit %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "decision: ") {
		t.Fatalf("dry run reached no decision:\n%s", out.String())
	}
}

// TestErrorsExitNonzero covers the failure paths.
func TestErrorsExitNonzero(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.dt")
	if err := os.WriteFile(bad, []byte("@@ not a kernel"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-dump", "type9"},
		{"-check", "/no/such/file.dt"},
		{"-check", bad},
		{},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("args %v: exit 0, want nonzero", args)
		}
	}
}
