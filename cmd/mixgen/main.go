// Command mixgen inspects the synthetic workload substrate: it lists the
// application profiles and mixes, and can sample a program stream to
// report its measured dynamic characteristics (instruction mix, branch
// behaviour, working set), which is how the profiles were validated
// against their SPEC CPU2000 targets.
//
// Usage:
//
//	mixgen -list
//	mixgen -profiles
//	mixgen -sample gcc -n 500000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/branch"
	"repro/internal/buildinfo"
	"repro/internal/isa"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code injectable for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mixgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list workload mixes")
		profiles = fs.Bool("profiles", false, "list application profiles")
		sample   = fs.String("sample", "", "sample a profile's stream and report measured characteristics")
		n        = fs.Int("n", 400000, "instructions to sample")
		seed     = fs.Uint64("seed", 1, "seed")
		version  = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("mixgen"))
		return 0
	}

	switch {
	case *list:
		fmt.Fprintln(stdout, "workload mixes (8 applications each):")
		for _, m := range trace.Mixes() {
			kind := "diverse"
			if m.Homogeneous {
				kind = "homogeneous"
			}
			fmt.Fprintf(stdout, "  %-14s %-11s %s\n", m.Name, kind, m.Description)
			fmt.Fprintf(stdout, "  %14s apps: %v\n", "", m.Apps)
		}
	case *profiles:
		fmt.Fprintln(stdout, "application profiles (modelled on SPEC CPU2000 behaviour classes):")
		for _, p := range trace.Profiles() {
			fmt.Fprintf(stdout, "  %-8s [%s] %s\n", p.Name, p.Class, p.Description)
			for _, ph := range p.Phases {
				fmt.Fprintf(stdout, "  %8s   phase %-10s ~%d insts: br=%.0f%% ld=%.0f%% st=%.0f%% data=%dKB code=%d words\n",
					"", ph.Name, ph.MeanLen, 100*ph.BranchFrac, 100*ph.LoadFrac, 100*ph.StoreFrac,
					ph.DataFootprint>>10, ph.CodeWords)
			}
		}
	case *sample != "":
		prof, ok := trace.ProfileByName(*sample)
		if !ok {
			fmt.Fprintf(stderr, "mixgen: unknown profile %q\n", *sample)
			return 1
		}
		sampleProfile(stdout, prof, *n, *seed)
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// sampleProfile reports a profile's measured stream characteristics
// plus its intrinsic mispredict rate under a standalone predictor.
func sampleProfile(w io.Writer, prof *trace.Profile, n int, seed uint64) {
	st := trace.Sample(prof, n, seed)

	// Mispredict rate needs the predictor loop (Sample is predictor-free).
	p := trace.NewProgram(prof, 0, seed)
	pred := branch.NewHybrid(4096, 8192, 4096, 12, 1)
	btb := branch.NewBTB(256, 4)
	misp := 0
	for i := 0; i < n; i++ {
		in := p.Next()
		if in.Class != isa.Branch {
			continue
		}
		pt := pred.Predict(0, in.PC)
		var tgt uint64
		if pt {
			t2, hit := btb.Lookup(0, in.PC)
			if hit {
				tgt = t2
			} else {
				pt = false
			}
		}
		if pt != in.Taken || (pt && tgt != in.Target) {
			misp++
		}
		pred.Update(0, in.PC, in.Taken)
		if in.Taken {
			btb.Insert(0, in.PC, in.Target)
		}
	}

	fmt.Fprintf(w, "profile %s (%s): %d instructions sampled\n", prof.Name, prof.Class, n)
	fmt.Fprintln(w, "dynamic instruction mix:")
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if st.ClassCounts[c] > 0 {
			fmt.Fprintf(w, "  %-8v %6.2f%%\n", c, 100*st.ClassFrac(c))
		}
	}
	if st.Branches > 0 {
		fmt.Fprintf(w, "branches: %.2f%% of stream, %.0f%% taken, %.1f%% mispredicted (standalone hybrid predictor)\n",
			100*st.ClassFrac(isa.Branch), 100*st.TakenFrac(),
			100*float64(misp)/float64(st.Branches))
	}
	fmt.Fprintf(w, "data blocks touched: %d (~%d KB); %d static PCs; %d phase changes\n",
		st.BlocksTouched, st.WorkingSetBytes()>>10, st.StaticPCs, st.PhaseChanges)
}
