package main

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestListStableAndComplete: -list output is deterministic, non-empty,
// and names every mix in the catalogue.
func TestListStableAndComplete(t *testing.T) {
	var a, errb strings.Builder
	if code := run([]string{"-list"}, &a, &errb); code != 0 {
		t.Fatalf("-list: exit %d, stderr %s", code, errb.String())
	}
	if a.Len() == 0 {
		t.Fatal("-list produced no output")
	}
	for _, m := range trace.Mixes() {
		if !strings.Contains(a.String(), m.Name) {
			t.Errorf("-list missing mix %q", m.Name)
		}
	}
	var b strings.Builder
	run([]string{"-list"}, &b, &errb)
	if a.String() != b.String() {
		t.Fatal("-list output is not stable across invocations")
	}
}

func TestProfilesListsCatalogue(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-profiles"}, &out, &errb); code != 0 {
		t.Fatalf("-profiles: exit %d, stderr %s", code, errb.String())
	}
	for _, p := range trace.Profiles() {
		if !strings.Contains(out.String(), p.Name) {
			t.Errorf("-profiles missing profile %q", p.Name)
		}
	}
}

func TestSampleReportsCharacteristics(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-sample", "gzip", "-n", "20000"}, &out, &errb); code != 0 {
		t.Fatalf("-sample: exit %d, stderr %s", code, errb.String())
	}
	for _, want := range []string{"profile gzip", "dynamic instruction mix:", "data blocks touched:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-sample output missing %q:\n%s", want, out.String())
		}
	}
}

func TestErrorsExitNonzero(t *testing.T) {
	for _, args := range [][]string{
		{"-sample", "no-such-profile"},
		{},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("args %v: exit 0, want nonzero", args)
		}
	}
}
