// Command smtsim runs one SMT simulation — a workload mix under a fixed
// fetch policy, adaptive dynamic thread scheduling, or the oracle — and
// prints aggregate and per-thread statistics plus the per-quantum policy
// timeline.
//
// Usage:
//
//	smtsim -mix kitchen-sink -mode fixed -policy ICOUNT
//	smtsim -mix int-memory -mode adts -heuristic "Type 3" -m 2
//	smtsim -mix fp-stream -mode oracle -quanta 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dtvm"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/trace"
)

func main() {
	var (
		mix       = flag.String("mix", "kitchen-sink", "workload mix (see mixgen -list)")
		mode      = flag.String("mode", "fixed", "scheduling mode: fixed | adts | oracle")
		polName   = flag.String("policy", "ICOUNT", "fetch policy for -mode fixed")
		heuristic = flag.String("heuristic", "Type 3", "ADTS heuristic: Type 1..Type 4, Type 3'")
		kernelF   = flag.String("kernel", "", "ADTS: drive the detector with an assembled DT kernel from this file instead of the built-in heuristic")
		m         = flag.Float64("m", 2, "ADTS IPC threshold")
		threads   = flag.Int("threads", 8, "hardware contexts (1..8)")
		quanta    = flag.Int("quanta", 64, "measured scheduling quanta")
		ff        = flag.Int64("fastforward", 16384, "cycles to fast-forward before measuring")
		seed      = flag.Uint64("seed", 1, "workload seed")
		machineF  = flag.String("machine", "", "load machine configuration from a JSON file (see pipeline.SaveConfig)")
		timeline  = flag.Bool("timeline", false, "print the per-quantum policy/IPC timeline")
		csvPath   = flag.String("csv", "", "write the per-quantum series (quantum, policy, IPC) as CSV to this file")
		verbose   = flag.Bool("v", false, "print per-thread detail")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*mix)
	if *machineF != "" {
		mc, err := pipeline.LoadConfig(*machineF)
		if err != nil {
			fatal(err)
		}
		cfg.Machine = mc
	}
	cfg.Threads = *threads
	cfg.Quanta = *quanta
	cfg.FastForward = *ff
	cfg.Seed = *seed

	switch *mode {
	case "fixed":
		cfg.Mode = core.ModeFixed
		p, err := policy.Parse(*polName)
		if err != nil {
			fatal(err)
		}
		cfg.FixedPolicy = p
	case "adts":
		cfg.Mode = core.ModeADTS
		h, err := detector.ParseHeuristic(*heuristic)
		if err != nil {
			fatal(err)
		}
		cfg.Detector.Heuristic = h
		cfg.Detector.IPCThreshold = *m
		if *kernelF != "" {
			src, err := os.ReadFile(*kernelF)
			if err != nil {
				fatal(err)
			}
			prog, err := dtvm.Assemble(string(src))
			if err != nil {
				fatal(err)
			}
			cfg.Kernel = prog
		}
	case "oracle":
		cfg.Mode = core.ModeOracle
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	sim, err := core.NewSimulator(cfg)
	if err != nil {
		fatal(err)
	}
	res := sim.Run()

	mx, _ := trace.MixByName(*mix)
	fmt.Printf("mix %s (%s), %d threads, %s mode\n", mx.Name, mx.Description, res.Threads, res.Mode)
	fmt.Printf("cycles %d, committed %d, aggregate IPC %.3f\n", res.Cycles, res.Committed, res.AggregateIPC)
	fmt.Printf("rates/cycle: mispred %.4f, L1 miss %.4f, LSQ-full %.4f, cond-br %.4f; wrong-path fetch %.1f%%\n",
		res.MispredRate, res.L1MissRate, res.LSQFullRate, res.CondBrRate, 100*res.WrongPathFrac)

	if cfg.Mode == core.ModeADTS {
		d := res.Detector
		fmt.Printf("detector: %v m=%g — %d low quanta, %d switches (benign %d / malignant %d, P=%.2f)\n",
			res.Heuristic, res.Threshold, d.LowQuanta, d.Switches, d.Benign, d.Malignant, d.BenignProbability())
		fmt.Printf("DT cost model: %d jobs, %d completed, %d preempted, %d fetch slots, %d issue slots\n",
			res.DT.JobsScheduled, res.DT.JobsCompleted, res.DT.JobsPreempted,
			res.DT.FetchSlotsUsed, res.DT.IssueSlotsUsed)
		if res.KernelSteps > 0 {
			fmt.Printf("detector kernel: %d VM instructions executed\n", res.KernelSteps)
		}
	}
	if cfg.Mode == core.ModeOracle {
		fmt.Printf("oracle: %d policy switches\n", res.OracleSwitches)
	}

	if *verbose {
		progs, _ := mx.Programs(*threads, *seed)
		for i, ipc := range res.PerThreadIPC {
			fmt.Printf("  thread %d (%s): IPC %.3f\n", i, progs[i].Profile().Name, ipc)
		}
	}
	if *timeline {
		fmt.Println("quantum timeline (policy engaged at quantum end, quantum IPC):")
		for i, p := range res.PolicyTimeline {
			fmt.Printf("  q%03d %-12s %.3f\n", i, p, res.QuantumIPC[i])
		}
	}
	if *csvPath != "" {
		var b strings.Builder
		b.WriteString("quantum,policy,ipc\n")
		for i, p := range res.PolicyTimeline {
			fmt.Fprintf(&b, "%d,%s,%.6f\n", i, p, res.QuantumIPC[i])
		}
		if err := os.WriteFile(*csvPath, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d quanta to %s\n", len(res.PolicyTimeline), *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
