// Command smtsim runs one SMT simulation — a workload mix under a fixed
// fetch policy, adaptive dynamic thread scheduling, or the oracle — and
// prints aggregate and per-thread statistics plus the per-quantum policy
// timeline.
//
// Usage:
//
//	smtsim -mix kitchen-sink -mode fixed -policy ICOUNT
//	smtsim -mix int-memory -mode adts -heuristic "Type 3" -m 2
//	smtsim -mix fp-stream -mode oracle -quanta 32
//
// Request assembly, execution, and report rendering live in
// internal/simrun, shared with the smtsimd HTTP service so the two can
// never drift.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/pipeline"
	"repro/internal/profiling"
	"repro/internal/simrun"
)

func main() {
	var (
		mix       = flag.String("mix", "kitchen-sink", "workload mix (see mixgen -list)")
		mode      = flag.String("mode", "fixed", "scheduling mode: fixed | adts | oracle")
		polName   = flag.String("policy", "ICOUNT", "fetch policy for -mode fixed")
		heuristic = flag.String("heuristic", "Type 3", "ADTS heuristic: Type 1..Type 4, Type 3', or a learned selector: bandit | ucb | learned")
		selSeed   = flag.Uint64("selector-seed", 0, "exploration seed for -heuristic bandit (0 = fixed default stream)")
		kernelF   = flag.String("kernel", "", "ADTS: drive the detector with an assembled DT kernel from this file instead of the built-in heuristic")
		m         = flag.Float64("m", 2, "ADTS IPC threshold")
		threads   = flag.Int("threads", 8, "hardware contexts (1..8; total across cores)")
		coresN    = flag.Int("cores", 1, "SMT cores (2..8 runs a multi-core system)")
		allocF    = flag.String("allocation", "", "thread-to-core policy for -cores > 1: random | symbiosis | synpa")
		quanta    = flag.Int("quanta", 64, "measured scheduling quanta")
		ff        = flag.Int64("fastforward", 16384, "cycles to fast-forward before measuring")
		seed      = flag.Uint64("seed", 1, "workload seed")
		machineF  = flag.String("machine", "", "load machine configuration from a JSON file (see pipeline.SaveConfig)")
		timeline  = flag.Bool("timeline", false, "print the per-quantum policy/IPC timeline")
		csvPath   = flag.String("csv", "", "write the per-quantum series (quantum, policy, IPC) as CSV to this file")
		verbose   = flag.Bool("v", false, "print per-thread detail")
		version   = flag.Bool("version", false, "print version and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("smtsim"))
		return
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	req := simrun.Request{
		Mix:          *mix,
		Mode:         *mode,
		Policy:       *polName,
		Heuristic:    *heuristic,
		M:            *m,
		SelectorSeed: *selSeed,
		Threads:      *threads,
		Cores:        *coresN,
		Allocation:   *allocF,
		Quanta:       *quanta,
		FastForward:  *ff,
		Seed:         *seed,
	}
	if *ff == 0 {
		req.FastForward = -1 // Request treats 0 as "default"; -1 means none
	}
	if *kernelF != "" {
		src, err := os.ReadFile(*kernelF)
		if err != nil {
			fatal(err)
		}
		req.Kernel = string(src)
	}
	if *machineF != "" {
		mc, err := pipeline.LoadConfig(*machineF)
		if err != nil {
			fatal(err)
		}
		req.Machine = &mc
	}

	cfg, err := req.Config()
	if err != nil {
		fatal(err)
	}
	res, err := simrun.Run(context.Background(), cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Print(simrun.Report(cfg, res, simrun.ReportOptions{Verbose: *verbose, Timeline: *timeline}))

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(simrun.CSV(res)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d quanta to %s\n", len(res.PolicyTimeline), *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
