package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

// stub installs a fake build-info reader for the duration of the test.
func stub(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = orig })
}

func TestVersionNoBuildInfo(t *testing.T) {
	stub(t, nil, false)
	if got := Version(); got != "devel" {
		t.Fatalf("Version() = %q, want devel", got)
	}
}

func TestVersionFromVCSStamps(t *testing.T) {
	stub(t, &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Main:      debug.Module{Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	if got, want := Version(), "devel+0123456789ab+dirty"; got != want {
		t.Fatalf("Version() = %q, want %q", got, want)
	}
	s := String("smtsimd")
	if !strings.HasPrefix(s, "smtsimd devel+0123456789ab+dirty") || !strings.Contains(s, "go1.22.0") {
		t.Fatalf("String() = %q", s)
	}
}

func TestVersionTaggedModule(t *testing.T) {
	stub(t, &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Main:      debug.Module{Version: "v1.4.0"},
	}, true)
	if got := Version(); got != "v1.4.0" {
		t.Fatalf("Version() = %q, want v1.4.0", got)
	}
}

func TestVersionPseudoVersionNotDoubleStamped(t *testing.T) {
	// A pseudo-version already encodes the revision; the VCS stamps
	// must not be appended on top of it.
	stub(t, &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Main:      debug.Module{Version: "v0.0.0-20260805215642-b2cfff4f2fa3+dirty"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "b2cfff4f2fa3deadbeef"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	if got, want := Version(), "v0.0.0-20260805215642-b2cfff4f2fa3+dirty"; got != want {
		t.Fatalf("Version() = %q, want %q", got, want)
	}
}

// The real reader must never panic and always yield something usable.
func TestVersionReal(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() empty under the real build info")
	}
}
