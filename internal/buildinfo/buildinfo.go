// Package buildinfo derives the binary's version from the build
// metadata the Go toolchain embeds (debug.ReadBuildInfo): the module
// version when built from a tagged module, plus the VCS revision and
// dirty marker when built from a checkout. Every command exposes it via
// -version, and smtsimd reports it from /healthz so fleet health probes
// can detect version skew across a backend pool.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// read is swapped out by tests.
var read = debug.ReadBuildInfo

// Version returns the best available version string: the module
// version when the toolchain resolved one (a tag or pseudo-version,
// which already encodes the revision), otherwise "devel" with "+<rev>"
// (12 hex digits) and "+dirty" appended from the VCS stamps. A binary
// with no build info reports "devel".
func Version() string {
	bi, ok := read()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	v := "devel"
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		v += "+" + rev
	}
	if dirty {
		v += "+dirty"
	}
	return v
}

// String renders the conventional one-line -version output for a
// command, e.g. "smtsimd devel+1a2b3c4d5e6f (go1.22.0)".
func String(cmd string) string {
	goVersion := "unknown"
	if bi, ok := read(); ok {
		goVersion = bi.GoVersion
	}
	return fmt.Sprintf("%s %s (%s)", cmd, Version(), goVersion)
}
