// Package oracle implements the oracle-scheduled upper bound the paper's
// argument rests on: the authors' prior study showed fixed ICOUNT leaves
// ~30% of throughput on the table relative to a scheduler that always
// picks the best fetch policy for each quantum. ADTS tries to approach
// this bound with realisable heuristics.
//
// The oracle exploits the simulator's determinism: at each quantum
// boundary it clones the whole machine once per candidate policy, runs
// each clone one quantum into the future, and commits the real machine
// to the winner. This is exact — the clone replays bit-identical
// behaviour — and obviously unimplementable in hardware, which is the
// point of an upper bound.
package oracle

import (
	"repro/internal/pipeline"
	"repro/internal/policy"
)

// DefaultCandidates is the policy set the oracle (and the paper's FSMs)
// choose from. Restricting to the three ADTS policies bounds what ADTS
// itself could achieve; use policy.All for the unrestricted bound.
func DefaultCandidates() []policy.Policy {
	return []policy.Policy{policy.ICOUNT, policy.BRCOUNT, policy.L1MISSCOUNT}
}

// BestPolicy evaluates every candidate over the next quantum cycles on
// clones of m and returns the winner and the committed-instruction gain
// it achieved. Ties go to the earliest candidate, so ICOUNT (first in
// DefaultCandidates) wins when policies are indistinguishable.
func BestPolicy(m *pipeline.Machine, quantum int64, candidates []policy.Policy) (best policy.Policy, bestCommitted uint64) {
	return BestPolicyInto(m, m.Clone(), quantum, candidates)
}

// BestPolicyInto is BestPolicy evaluating candidates on scratch, a
// machine with m's geometry (typically m.Clone() made once and reused
// across quantum boundaries). Each candidate overwrites scratch in
// place via CloneInto, so the steady-state evaluation allocates
// nothing.
func BestPolicyInto(m, scratch *pipeline.Machine, quantum int64, candidates []policy.Policy) (best policy.Policy, bestCommitted uint64) {
	if len(candidates) == 0 {
		panic("oracle: no candidate policies")
	}
	first := true
	for _, cand := range candidates {
		m.CloneInto(scratch)
		scratch.SetPolicy(cand)
		base := scratch.TotalCommitted()
		scratch.Run(quantum)
		gain := scratch.TotalCommitted() - base
		if first || gain > bestCommitted {
			best, bestCommitted, first = cand, gain, false
		}
	}
	return best, bestCommitted
}

// Scheduler drives a machine quantum by quantum under oracle policy
// selection.
type Scheduler struct {
	Quantum    int64
	Candidates []policy.Policy

	Switches uint64 // quantum boundaries where the policy changed
	Quanta   uint64

	// scratch is the reusable evaluation machine, cloned lazily from
	// the first machine Step sees and overwritten per candidate.
	scratch *pipeline.Machine
}

// NewScheduler returns an oracle scheduler with the default candidate
// set.
func NewScheduler(quantum int64) *Scheduler {
	return &Scheduler{Quantum: quantum, Candidates: DefaultCandidates()}
}

// Close releases the scratch evaluation machine to the pipeline shell
// pool. The scheduler may be used again after Close (a new scratch is
// cloned lazily), but callers normally close once, when done.
func (s *Scheduler) Close() {
	if s.scratch != nil {
		pipeline.Release(s.scratch)
		s.scratch = nil
	}
}

// Step selects the best policy for the next quantum, engages it on m,
// and runs the quantum. It returns the chosen policy.
func (s *Scheduler) Step(m *pipeline.Machine) policy.Policy {
	if s.scratch == nil {
		s.scratch = m.Clone()
	}
	best, _ := BestPolicyInto(m, s.scratch, s.Quantum, s.Candidates)
	if best != m.Policy() {
		s.Switches++
	}
	m.SetPolicy(best)
	m.Run(s.Quantum)
	s.Quanta++
	return best
}
