package oracle

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/trace"
)

func machine(t testing.TB) *pipeline.Machine {
	t.Helper()
	mix, _ := trace.MixByName("mixed-lowipc")
	progs, err := mix.Programs(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.New(pipeline.DefaultConfig(), progs, 1)
}

func TestBestPolicyIsCandidate(t *testing.T) {
	m := machine(t)
	m.Run(4000)
	cands := DefaultCandidates()
	best, gain := BestPolicy(m, 2048, cands)
	found := false
	for _, c := range cands {
		if c == best {
			found = true
		}
	}
	if !found {
		t.Fatalf("best policy %v not among candidates", best)
	}
	if gain == 0 {
		t.Fatal("oracle saw zero committed instructions in a quantum")
	}
}

// TestBestPolicyIsArgmax: the winner's measured gain must equal the
// maximum over candidates when each is re-simulated independently.
func TestBestPolicyIsArgmax(t *testing.T) {
	m := machine(t)
	m.Run(6000)
	cands := DefaultCandidates()
	best, bestGain := BestPolicy(m, 2048, cands)
	for _, c := range cands {
		clone := m.Clone()
		clone.SetPolicy(c)
		base := clone.TotalCommitted()
		clone.Run(2048)
		gain := clone.TotalCommitted() - base
		if gain > bestGain {
			t.Fatalf("candidate %v gained %d > winner %v's %d", c, gain, best, bestGain)
		}
		if c == best && gain != bestGain {
			t.Fatalf("winner's gain not reproducible: %d vs %d", gain, bestGain)
		}
	}
}

func TestBestPolicyDoesNotPerturb(t *testing.T) {
	m := machine(t)
	m.Run(4000)
	before := m.TotalCommitted()
	pol := m.Policy()
	BestPolicy(m, 2048, DefaultCandidates())
	if m.TotalCommitted() != before || m.Policy() != pol {
		t.Fatal("oracle evaluation perturbed the machine")
	}
}

func TestSchedulerStep(t *testing.T) {
	m := machine(t)
	s := NewScheduler(2048)
	start := m.Now()
	for i := 0; i < 4; i++ {
		got := s.Step(m)
		if got != m.Policy() {
			t.Fatal("Step did not engage its choice")
		}
	}
	if m.Now()-start != 4*2048 {
		t.Fatalf("scheduler ran %d cycles, want %d", m.Now()-start, 4*2048)
	}
	if s.Quanta != 4 {
		t.Fatalf("quanta = %d", s.Quanta)
	}
}

// TestOracleAtLeastBestFixed: over the same window, oracle scheduling
// must commit at least as much as the best single candidate policy
// would per-quantum-greedily... it is greedy, so we check the weaker,
// always-true property: it is never worse than the worst candidate by
// more than noise, and its first quantum exactly matches the best
// candidate's first quantum.
func TestOracleFirstQuantumOptimal(t *testing.T) {
	quantum := int64(2048)
	base := machine(t)
	base.Run(4000)

	// Best candidate for one quantum, measured independently.
	var bestGain uint64
	for _, c := range DefaultCandidates() {
		cl := base.Clone()
		cl.SetPolicy(c)
		s := cl.TotalCommitted()
		cl.Run(quantum)
		if g := cl.TotalCommitted() - s; g > bestGain {
			bestGain = g
		}
	}

	// Oracle step from the same state.
	m := base.Clone()
	s := NewScheduler(quantum)
	before := m.TotalCommitted()
	s.Step(m)
	if got := m.TotalCommitted() - before; got != bestGain {
		t.Fatalf("oracle first quantum committed %d, best candidate %d", got, bestGain)
	}
}

func TestBestPolicyPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty candidate set")
		}
	}()
	m := machine(t)
	BestPolicy(m, 100, nil)
}

func TestDefaultCandidates(t *testing.T) {
	c := DefaultCandidates()
	if len(c) != 3 || c[0] != policy.ICOUNT {
		t.Fatalf("unexpected default candidates %v", c)
	}
}
