package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chart renders one or more named series over a shared x-axis as an
// ASCII line chart, for terminal output of the paper's figures. Each
// series gets a distinct plot rune.
type Chart struct {
	Title   string
	XLabel  string
	YLabel  string
	XTicks  []string // one per x position
	Series  map[string][]float64
	Height  int // plot rows; default 12
	YMinSet bool
	YMin    float64
}

var chartRunes = []rune{'o', '*', '+', 'x', '#', '@', '%', '&'}

// isFinite reports whether v is a plottable sample.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// String renders the chart.
func (c *Chart) String() string {
	if len(c.Series) == 0 {
		return "(empty chart)\n"
	}
	height := c.Height
	if height <= 0 {
		height = 12
	}
	names := make([]string, 0, len(c.Series))
	for name := range c.Series {
		names = append(names, name)
	}
	sort.Strings(names)

	n := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, name := range names {
		s := c.Series[name]
		if len(s) > n {
			n = len(s)
		}
		for _, v := range s {
			// A single NaN would poison both bounds (and ±Inf one of
			// them), rendering every finite point off-grid.
			if !isFinite(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > hi { // no finite samples at all
		lo, hi = 0, 1
	}
	if c.YMinSet {
		lo = c.YMin
	}
	if hi <= lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	if !c.YMinSet {
		lo -= pad
	}
	hi += pad

	const colWidth = 6
	width := n * colWidth
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r
	}
	for si, name := range names {
		mark := chartRunes[si%len(chartRunes)]
		for i, v := range c.Series[name] {
			if !isFinite(v) {
				continue
			}
			col := i*colWidth + colWidth/2
			row := rowOf(v)
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			} else {
				grid[row][col] = '!'
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, row := range grid {
		y := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%7.2f |%s\n", y, string(row))
	}
	b.WriteString("        +" + strings.Repeat("-", width) + "\n")
	b.WriteString("         ")
	for i := 0; i < n; i++ {
		tick := ""
		if i < len(c.XTicks) {
			tick = c.XTicks[i]
		}
		// Truncate by rune: byte slicing could split a multi-byte
		// label (e.g. "µop/c") into invalid UTF-8.
		if r := []rune(tick); len(r) > colWidth-1 {
			tick = string(r[:colWidth-1])
		}
		b.WriteString(fmt.Sprintf("%-*s", colWidth, tick))
	}
	b.WriteString("  " + c.XLabel + "\n")
	b.WriteString("legend: ")
	for si, name := range names {
		if si > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c=%s", chartRunes[si%len(chartRunes)], name)
	}
	b.WriteString("  ('!' marks overlapping points)\n")
	return b.String()
}
