// Package stats provides the run harness and aggregation helpers the
// experiment drivers share: a parallel simulation runner, summary
// statistics, and plain-text/markdown table rendering for the paper's
// figures.
package stats

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/multicore"
	"repro/internal/runner"
)

// Job is one simulation to run.
type Job struct {
	Name   string
	Config core.Config
}

// RunnerJobs converts simulation jobs into runner jobs: each builds a
// simulator and runs it, keyed by job name + config hash so checkpoint
// resume only ever satisfies identical work. The config rides along as
// the job payload so a non-local runner.Executor (internal/fleet) can
// ship it to a remote backend instead of calling Run.
func RunnerJobs(jobs []Job) []runner.Job[core.Result] {
	rjobs := make([]runner.Job[core.Result], len(jobs))
	for i, j := range jobs {
		j := j
		rjobs[i] = runner.Job[core.Result]{
			Name:    j.Name,
			Key:     runner.KeyOf(j.Name, j.Config),
			Payload: j.Config,
			Run: func(context.Context) (core.Result, error) {
				// Multi-core configs fan out through internal/multicore;
				// the aggregate system view keeps the Result shape.
				if j.Config.Cores > 1 {
					return multicore.RunConfig(j.Config)
				}
				sim, err := core.NewSimulator(j.Config)
				if err != nil {
					return core.Result{}, err
				}
				res := sim.Run()
				// Recycle the machine shell: sweep jobs overwhelmingly
				// share a geometry, so later jobs skip construction.
				sim.Close()
				return res, nil
			},
		}
	}
	return rjobs
}

// RunAll executes the jobs on a bounded worker pool and returns results
// index-aligned with jobs. Each simulation is single-threaded and
// deterministic; parallelism across jobs is safe because simulators
// share no mutable state. workers <= 0 selects GOMAXPROCS.
//
// RunAll is a compatibility shim over runner.Run: it fails fast on the
// first job error, stops dispatching, and returns a joined error naming
// every job that failed. Cancellation, checkpointing, and progress live
// in internal/runner (see experiments.Options).
func RunAll(jobs []Job, workers int) ([]core.Result, error) {
	return runner.Run(context.Background(), RunnerJobs(jobs), runner.Options{Workers: workers})
}

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of the positive values in xs,
// skipping non-positive entries; 0 only when no positive value exists.
// A zero entry is a legitimate outcome here — an allocation policy can
// starve a thread to zero IPC — and the old behaviour (any non-positive
// value zeroed the whole mean) silently wiped summary rows that
// contained one starved thread. Callers that must know whether values
// were skipped use GeoMeanSkipping.
func GeoMean(xs []float64) float64 {
	gm, _ := GeoMeanSkipping(xs)
	return gm
}

// GeoMeanSkipping returns the geometric mean of the positive values and
// the number of non-positive entries it skipped. gm is 0 when every
// value was skipped (or xs is empty); skipped lets table renderers
// annotate a mean that does not cover the full population.
func GeoMeanSkipping(xs []float64) (gm float64, skipped int) {
	s, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			skipped++
			continue
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return 0, skipped
	}
	return math.Exp(s / float64(n)), skipped
}

// Stddev returns the sample standard deviation; 0 for fewer than two
// values.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median; 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Table renders rows as a markdown table. Header length fixes the column
// count; short rows are padded.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as markdown.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	b.WriteString("|")
	for i, h := range t.Header {
		b.WriteString(" " + pad(h, widths[i]) + " |")
	}
	b.WriteString("\n|")
	for i := range t.Header {
		b.WriteString(strings.Repeat("-", widths[i]+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for i := range t.Header {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			b.WriteString(" " + pad(c, widths[i]) + " |")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a signed percentage.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", 100*v) }
