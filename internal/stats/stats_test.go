package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("GeoMean with zero should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("Stddev of singleton should be 0")
	}
	if got := Stddev([]float64{2, 4}); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even Median = %v", got)
	}
	if Median(nil) != 0 {
		t.Fatal("Median(nil) != 0")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 {
		t.Fatal("Median mutated input")
	}
}

// TestMeanBounds: the mean lies within [min, max] for any input.
func TestMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333") // short row: padded
	out := tb.String()
	if !strings.Contains(out, "### T") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "| a   | bb |") {
		t.Fatalf("header misrendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, blank, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if Pct(0.256) != "+25.6%" {
		t.Fatalf("Pct = %q", Pct(0.256))
	}
	if Pct(-0.01) != "-1.0%" {
		t.Fatalf("Pct = %q", Pct(-0.01))
	}
}

func TestRunAllAlignmentAndParallel(t *testing.T) {
	mk := func(mix string, quanta int) core.Config {
		cfg := core.DefaultConfig(mix)
		cfg.Quanta = quanta
		cfg.FastForward = 1024
		return cfg
	}
	jobs := []Job{
		{Name: "a", Config: mk("int-compute", 2)},
		{Name: "b", Config: mk("fp-stream", 3)},
		{Name: "c", Config: mk("int-compute", 2)},
	}
	res, err := RunAll(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if len(res[1].QuantumIPC) != 3 || len(res[0].QuantumIPC) != 2 {
		t.Fatal("results not aligned with jobs")
	}
	// Identical configs must give identical results regardless of
	// worker scheduling.
	if res[0].AggregateIPC != res[2].AggregateIPC {
		t.Fatal("identical jobs produced different results under parallel run")
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	bad := core.DefaultConfig("no-such-mix")
	_, err := RunAll([]Job{{Name: "bad", Config: bad}}, 1)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error not propagated with job name: %v", err)
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "m",
		XTicks: []string{"1", "2", "3"},
		Series: map[string][]float64{
			"a": {1, 2, 3},
			"b": {3, 2, 1},
		},
		Height: 6,
	}
	out := c.String()
	if !strings.Contains(out, "test chart") || !strings.Contains(out, "legend:") {
		t.Fatalf("chart missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "o=a") || !strings.Contains(out, "*=b") {
		t.Fatalf("chart legend wrong:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 9 {
		t.Fatalf("chart too short:\n%s", out)
	}
	empty := (&Chart{}).String()
	if !strings.Contains(empty, "empty") {
		t.Fatal("empty chart not handled")
	}
}
