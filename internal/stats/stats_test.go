package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"repro/internal/core"
)

// TestEmptyAndDegenerateInputs locks in the contract that every summary
// statistic returns 0 — never NaN, never a panic — on empty, nil, and
// degenerate inputs.
func TestEmptyAndDegenerateInputs(t *testing.T) {
	funcs := []struct {
		name string
		f    func([]float64) float64
	}{
		{"Mean", Mean},
		{"GeoMean", GeoMean},
		{"Stddev", Stddev},
		{"Median", Median},
	}
	cases := []struct {
		name string
		in   []float64
		want map[string]float64 // expected per function
	}{
		{"nil", nil,
			map[string]float64{"Mean": 0, "GeoMean": 0, "Stddev": 0, "Median": 0}},
		{"empty", []float64{},
			map[string]float64{"Mean": 0, "GeoMean": 0, "Stddev": 0, "Median": 0}},
		{"singleton", []float64{3},
			map[string]float64{"Mean": 3, "GeoMean": 3, "Stddev": 0, "Median": 3}},
		{"zeros", []float64{0, 0},
			map[string]float64{"Mean": 0, "GeoMean": 0, "Stddev": 0, "Median": 0}},
		{"negative", []float64{-1, 1},
			map[string]float64{"Mean": 0, "GeoMean": 1, "Stddev": math.Sqrt2, "Median": 0}},
	}
	for _, tc := range cases {
		for _, fn := range funcs {
			got := fn.f(tc.in)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("%s(%s) = %v, want finite", fn.name, tc.name, got)
				continue
			}
			if want := tc.want[fn.name]; math.Abs(got-want) > 1e-12 {
				t.Errorf("%s(%s) = %v, want %v", fn.name, tc.name, got, want)
			}
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	// One starved (zero-IPC) thread must not zero the whole mean: the
	// non-positive entry is skipped, and GeoMeanSkipping reports it.
	cases := []struct {
		name    string
		in      []float64
		want    float64
		skipped int
	}{
		{"all positive", []float64{1, 4}, 2, 0},
		{"one starved thread", []float64{1, 4, 0}, 2, 1},
		{"negative skipped", []float64{-3, 2, 8}, 4, 1},
		{"nan and inf skipped", []float64{math.NaN(), math.Inf(1), 9}, 9, 2},
		{"all non-positive", []float64{0, -1}, 0, 2},
		{"nil", nil, 0, 0},
	}
	for _, tc := range cases {
		gm, skipped := GeoMeanSkipping(tc.in)
		if math.Abs(gm-tc.want) > 1e-12 || skipped != tc.skipped {
			t.Errorf("GeoMeanSkipping(%s) = (%v, %d), want (%v, %d)", tc.name, gm, skipped, tc.want, tc.skipped)
		}
		if got := GeoMean(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("GeoMean(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("Stddev of singleton should be 0")
	}
	if got := Stddev([]float64{2, 4}); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even Median = %v", got)
	}
	if Median(nil) != 0 {
		t.Fatal("Median(nil) != 0")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 {
		t.Fatal("Median mutated input")
	}
}

// TestMeanBounds: the mean lies within [min, max] for any input.
func TestMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333") // short row: padded
	out := tb.String()
	if !strings.Contains(out, "### T") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "| a   | bb |") {
		t.Fatalf("header misrendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, blank, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if Pct(0.256) != "+25.6%" {
		t.Fatalf("Pct = %q", Pct(0.256))
	}
	if Pct(-0.01) != "-1.0%" {
		t.Fatalf("Pct = %q", Pct(-0.01))
	}
}

func TestRunAllAlignmentAndParallel(t *testing.T) {
	mk := func(mix string, quanta int) core.Config {
		cfg := core.DefaultConfig(mix)
		cfg.Quanta = quanta
		cfg.FastForward = 1024
		return cfg
	}
	jobs := []Job{
		{Name: "a", Config: mk("int-compute", 2)},
		{Name: "b", Config: mk("fp-stream", 3)},
		{Name: "c", Config: mk("int-compute", 2)},
	}
	res, err := RunAll(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if len(res[1].QuantumIPC) != 3 || len(res[0].QuantumIPC) != 2 {
		t.Fatal("results not aligned with jobs")
	}
	// Identical configs must give identical results regardless of
	// worker scheduling.
	if res[0].AggregateIPC != res[2].AggregateIPC {
		t.Fatal("identical jobs produced different results under parallel run")
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	bad := core.DefaultConfig("no-such-mix")
	_, err := RunAll([]Job{{Name: "bad", Config: bad}}, 1)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error not propagated with job name: %v", err)
	}
}

// Regression: RunAll used to dispatch every remaining job after a
// failure and keep only the first error. It must fail fast and name
// each job that failed in a joined error.
func TestRunAllFailsFastWithJoinedError(t *testing.T) {
	good := core.DefaultConfig("int-compute")
	good.Quanta = 1
	good.FastForward = 0
	badA := core.DefaultConfig("no-such-mix-a")
	jobs := []Job{
		{Name: "ok", Config: good},
		{Name: "badA", Config: badA},
	}
	// A second bad job behind the first: fail-fast means dispatch stops
	// at badA, so badB never runs and must not appear in the error.
	badB := core.DefaultConfig("no-such-mix-b")
	jobs = append(jobs, Job{Name: "badB", Config: badB})
	_, err := RunAll(jobs, 1)
	if err == nil {
		t.Fatal("no error returned")
	}
	if !strings.Contains(err.Error(), `job "badA"`) {
		t.Fatalf("joined error does not name the failed job: %v", err)
	}
	if strings.Contains(err.Error(), `job "badB"`) {
		t.Fatalf("jobs kept dispatching after the first failure: %v", err)
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "m",
		XTicks: []string{"1", "2", "3"},
		Series: map[string][]float64{
			"a": {1, 2, 3},
			"b": {3, 2, 1},
		},
		Height: 6,
	}
	out := c.String()
	if !strings.Contains(out, "test chart") || !strings.Contains(out, "legend:") {
		t.Fatalf("chart missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "o=a") || !strings.Contains(out, "*=b") {
		t.Fatalf("chart legend wrong:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 9 {
		t.Fatalf("chart too short:\n%s", out)
	}
	empty := (&Chart{}).String()
	if !strings.Contains(empty, "empty") {
		t.Fatal("empty chart not handled")
	}
}

// Regression: a single NaN sample used to poison the lo/hi scan
// (NaN min/max propagates), pushing every finite point off-grid and
// rendering a blank chart. Non-finite values must be skipped.
func TestChartSkipsNonFiniteValues(t *testing.T) {
	c := &Chart{
		XTicks: []string{"1", "2", "3", "4"},
		Series: map[string][]float64{
			"a": {1, math.NaN(), 3, math.Inf(1)},
			"b": {2, 2, 2, 2},
		},
		Height: 6,
	}
	out := c.String()
	marks := strings.Count(out, "o") + strings.Count(out, "*") + strings.Count(out, "!")
	// 2 finite points of a + 4 of b, minus possible overlaps; the
	// legend contributes one "o=a" and one "*=b".
	if marks < 2+4 {
		t.Fatalf("finite points missing from grid (%d marks):\n%s", marks, out)
	}
	// Axis labels must be finite numbers, not NaN.
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("non-finite axis labels:\n%s", out)
	}

	// All-NaN series must still render without a degenerate scale.
	allNaN := &Chart{
		XTicks: []string{"1"},
		Series: map[string][]float64{"a": {math.NaN()}},
		Height: 4,
	}
	if out := allNaN.String(); strings.Contains(out, "NaN") {
		t.Fatalf("all-NaN chart rendered NaN labels:\n%s", out)
	}
}

// Regression: tick truncation used byte slicing, which can split a
// multi-byte rune and emit invalid UTF-8.
func TestChartTickTruncationIsRuneSafe(t *testing.T) {
	c := &Chart{
		XTicks: []string{"µµµµµµµµ", "αβγδεζηθ"},
		Series: map[string][]float64{"a": {1, 2}},
		Height: 4,
	}
	out := c.String()
	if !utf8.ValidString(out) {
		t.Fatalf("chart output is not valid UTF-8:\n%q", out)
	}
	if !strings.Contains(out, "µµµµµ") {
		t.Fatalf("truncated tick lost its runes:\n%s", out)
	}
	if strings.Contains(out, "�") || strings.Contains(out, "µµµµµµ") {
		t.Fatalf("tick truncation wrong:\n%s", out)
	}
}
