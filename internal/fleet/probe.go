package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// healthReply mirrors simserver's GET /healthz body. StoreState is the
// backend's result-store serving state ("ok", "readonly",
// "memory-only"); degraded backends stay routable but carry a dispatch
// penalty so load drifts toward healthy stores.
type healthReply struct {
	Status     string `json:"status"`
	Version    string `json:"version"`
	StoreState string `json:"store_state"`
}

// probeLoop probes every backend at the configured interval until the
// client is closed. The first sweep runs immediately so a dead backend
// is discovered before the first dispatch wave completes.
func (c *Client) probeLoop(ctx context.Context) {
	defer close(c.probeDone)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	c.ProbeNow(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.ProbeNow(ctx)
		}
	}
}

// ProbeNow probes every backend's /healthz once, in parallel, updating
// routability and recording backend versions. It logs transitions
// (backend down / recovered) and version skew across the pool. The
// prober calls it periodically; tests and CLIs may call it directly for
// an immediate pool assessment.
func (c *Client) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range c.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			wasUp, _ := b.probed()
			wasStore := b.storeState()
			up, version, store := c.probeOne(ctx, b)
			b.setProbe(up, version)
			b.setStoreState(store)
			if up != wasUp {
				state := "down"
				if up {
					state = "up"
				}
				fmt.Fprintf(c.cfg.Log, "fleet: backend %s is %s\n", b.url, state)
			}
			if up && store != wasStore && (store != "" || wasStore != "") {
				fmt.Fprintf(c.cfg.Log, "fleet: backend %s store is %s (was %s)\n",
					b.url, orUnknown(store), orUnknown(wasStore))
			}
		}(b)
	}
	wg.Wait()
	c.logVersionSkew()
}

// probeOne GETs one backend's /healthz. A backend is up only when it
// answers 200 with status "ok" — a draining backend stops receiving new
// work. The store state rides along for dispatch weighting; older
// backends that don't report one probe as "" (no penalty).
func (c *Client) probeOne(ctx context.Context, b *backend) (up bool, version, storeState string) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false, "", ""
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, "", ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, "", ""
	}
	var h healthReply
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return false, "", ""
	}
	return h.Status == "ok", h.Version, h.StoreState
}

// orUnknown renders an empty probe state for logs.
func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// logVersionSkew warns (once per distinct combination) when the up
// backends report more than one version — a mixed deployment can serve
// correct but differently-tuned results, and operators should know.
func (c *Client) logVersionSkew() {
	versions := make(map[string][]string)
	for _, b := range c.backends {
		if up, v := b.probed(); up && v != "" {
			versions[v] = append(versions[v], b.url)
		}
	}
	if len(versions) < 2 {
		c.skewMu.Lock()
		c.lastSkew = ""
		c.skewMu.Unlock()
		return
	}
	keys := make([]string, 0, len(versions))
	for v := range versions {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	fp := strings.Join(keys, "|")
	c.skewMu.Lock()
	logIt := c.lastSkew != fp
	c.lastSkew = fp
	c.skewMu.Unlock()
	if logIt {
		var parts []string
		for _, v := range keys {
			sort.Strings(versions[v])
			parts = append(parts, fmt.Sprintf("%s: %s", v, strings.Join(versions[v], ", ")))
		}
		fmt.Fprintf(c.cfg.Log, "fleet: backend version skew across pool — %s\n", strings.Join(parts, "; "))
	}
}
