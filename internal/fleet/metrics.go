package fleet

import (
	"fmt"
	"io"
	"sync/atomic"
)

// clientMetrics are the fleet client's dispatch counters, exposed in
// the same dependency-free Prometheus text style as
// internal/simserver/metrics.go.
type clientMetrics struct {
	dispatched    atomic.Int64 // requests sent to backends (incl. hedges, retries)
	retried       atomic.Int64 // re-dispatches after a failure
	hedged        atomic.Int64 // hedge requests launched
	hedgeWins     atomic.Int64 // hedge responses that beat the primary
	rateLimited   atomic.Int64 // 429 responses received
	localFallback atomic.Int64 // jobs run locally (pool empty / fully broken)

	batches       atomic.Int64 // POST /v1/batch chunks dispatched
	batchItems    atomic.Int64 // items delivered by verified batch stream lines
	batchFallback atomic.Int64 // batch items demoted to the per-item Run path
	peerHits      atomic.Int64 // dispatches short-circuited by a peer store hit
	peerMisses    atomic.Int64 // peer lookups that found nothing

	digestMismatch    atomic.Int64 // responses rejected by digest verification
	audits            atomic.Int64 // sampled cross-backend audits performed
	auditDisagree     atomic.Int64 // audits where the two digests differed
	auditInconclusive atomic.Int64 // disagreements with no usable majority
	quarantinedTotal  atomic.Int64 // backends quarantined as byzantine
}

// WriteMetrics renders the client's counters, circuit state, and
// per-backend request/error/latency series in Prometheus text
// exposition format.
func (c *Client) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("fleet_dispatched_total", "Requests dispatched to backends, including retries and hedges.", c.metrics.dispatched.Load())
	counter("fleet_retried_total", "Dispatches that were retries after a failed attempt.", c.metrics.retried.Load())
	counter("fleet_hedged_total", "Hedged (duplicate) requests launched to cut tail latency.", c.metrics.hedged.Load())
	counter("fleet_hedge_wins_total", "Hedged requests that answered before the primary.", c.metrics.hedgeWins.Load())
	counter("fleet_rate_limited_total", "429 responses received from backends.", c.metrics.rateLimited.Load())
	counter("fleet_local_fallback_total", "Jobs executed locally because no backend could take them.", c.metrics.localFallback.Load())
	counter("fleet_batches_total", "Batch chunks dispatched via POST /v1/batch.", c.metrics.batches.Load())
	counter("fleet_batch_items_total", "Items delivered by verified batch stream lines.", c.metrics.batchItems.Load())
	counter("fleet_batch_item_fallback_total", "Batch items demoted to the per-item dispatch path.", c.metrics.batchFallback.Load())
	counter("fleet_peer_hits_total", "Dispatches short-circuited by a peer result-store hit.", c.metrics.peerHits.Load())
	counter("fleet_peer_misses_total", "Peer result-store lookups that found nothing.", c.metrics.peerMisses.Load())
	counter("fleet_digest_mismatch_total", "Responses rejected because the result digest failed verification.", c.metrics.digestMismatch.Load())
	counter("fleet_audits_total", "Sampled cross-backend result audits performed.", c.metrics.audits.Load())
	counter("fleet_audit_disagreements_total", "Audits where two backends returned different result digests.", c.metrics.auditDisagree.Load())
	counter("fleet_audit_inconclusive_total", "Audit disagreements that could not be settled by majority vote.", c.metrics.auditInconclusive.Load())
	counter("fleet_quarantined_total", "Backends quarantined for corrupt or byzantine results.", c.metrics.quarantinedTotal.Load())

	var opens int64
	for _, b := range c.backends {
		opens += b.breaker.openCount()
	}
	counter("fleet_circuit_open_total", "Circuit-breaker transitions to open (broken backend detected).", opens)

	fmt.Fprintf(w, "# HELP fleet_backends Backends registered in the pool.\n# TYPE fleet_backends gauge\nfleet_backends %d\n", len(c.backends))
	fmt.Fprintf(w, "# HELP fleet_backends_healthy Backends currently routable (probe up, circuit not open).\n# TYPE fleet_backends_healthy gauge\nfleet_backends_healthy %d\n", c.Healthy())

	if len(c.backends) == 0 {
		return
	}
	labeled := func(name, help, typ string, value func(*backend) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, b := range c.backends {
			fmt.Fprintf(w, "%s{backend=%q} %s\n", name, b.url, value(b))
		}
	}
	labeled("fleet_backend_requests_total", "Requests sent to this backend.", "counter",
		func(b *backend) string { return fmt.Sprintf("%d", b.requests.Load()) })
	labeled("fleet_backend_errors_total", "Failed requests to this backend (transport, 5xx, timeout).", "counter",
		func(b *backend) string { return fmt.Sprintf("%d", b.errors.Load()) })
	labeled("fleet_backend_rate_limited_total", "429 responses from this backend.", "counter",
		func(b *backend) string { return fmt.Sprintf("%d", b.ratelim.Load()) })
	labeled("fleet_backend_inflight", "Requests in flight to this backend now.", "gauge",
		func(b *backend) string { return fmt.Sprintf("%d", b.inflight.Load()) })
	labeled("fleet_backend_up", "1 when the last health probe succeeded.", "gauge",
		func(b *backend) string {
			if up, _ := b.probed(); up {
				return "1"
			}
			return "0"
		})
	labeled("fleet_backend_circuit_state", "Circuit state: 0 closed, 1 half-open, 2 open.", "gauge",
		func(b *backend) string { return fmt.Sprintf("%d", int(b.breaker.state())) })
	labeled("fleet_backend_digest_mismatch_total", "Responses from this backend rejected by digest verification.", "counter",
		func(b *backend) string { return fmt.Sprintf("%d", b.digestBad.Load()) })
	labeled("fleet_backend_quarantined", "1 when this backend is quarantined (corrupt or byzantine results).", "gauge",
		func(b *backend) string {
			if b.quarantined.Load() {
				return "1"
			}
			return "0"
		})
	labeled("fleet_backend_latency_seconds_sum", "Cumulative latency of successful requests.", "counter",
		func(b *backend) string { sum, _ := b.latency(); return fmt.Sprintf("%g", sum) })
	labeled("fleet_backend_latency_seconds_count", "Successful requests measured.", "counter",
		func(b *backend) string { _, n := b.latency(); return fmt.Sprintf("%d", n) })
}
