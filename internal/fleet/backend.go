package fleet

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// backend is one smtsimd instance in the pool: its base URL plus the
// client-side state the dispatcher needs — in-flight load for
// least-loaded selection, a circuit breaker, health-probe status, and
// per-backend counters for the metrics exposition.
type backend struct {
	url     string // normalized base URL, no trailing slash
	breaker *breaker

	inflight atomic.Int64 // requests being served now (load metric)
	requests atomic.Int64 // dispatches, including hedges and retries
	errors   atomic.Int64 // failed dispatches (transport, 5xx, timeout)
	ratelim  atomic.Int64 // 429 responses

	digestBad   atomic.Int64 // responses whose digest failed verification
	quarantined atomic.Bool  // byzantine: permanently removed from the pool

	latMu    sync.Mutex
	latSumUs int64 // microseconds of successful requests
	latCount int64

	probeMu sync.Mutex
	down    bool   // last health probe failed (distinct from the breaker)
	version string // backend-reported version from /healthz
	store   string // backend-reported store_state ("" = not reported)
}

// normalizeURL accepts "host:port" or a full URL and returns a base URL
// without a trailing slash.
func normalizeURL(s string) (string, error) {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if s == "" {
		return "", fmt.Errorf("fleet: empty backend address")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s, nil
}

// observe records one successful request's latency.
func (b *backend) observe(us int64) {
	b.latMu.Lock()
	b.latSumUs += us
	b.latCount++
	b.latMu.Unlock()
}

// latency returns the cumulative latency sum (seconds) and count.
func (b *backend) latency() (sum float64, count int64) {
	b.latMu.Lock()
	defer b.latMu.Unlock()
	return float64(b.latSumUs) / 1e6, b.latCount
}

// setProbe records a health-probe outcome.
func (b *backend) setProbe(up bool, version string) {
	b.probeMu.Lock()
	b.down = !up
	if version != "" {
		b.version = version
	}
	b.probeMu.Unlock()
}

// probed returns the last probe outcome and reported version.
func (b *backend) probed() (up bool, version string) {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	return !b.down, b.version
}

// setStoreState records the store serving state the last probe saw.
func (b *backend) setStoreState(state string) {
	b.probeMu.Lock()
	b.store = state
	b.probeMu.Unlock()
}

// storeState returns the backend's last-reported store serving state.
func (b *backend) storeState() string {
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	return b.store
}

// storePenalty converts a degraded store into extra apparent load for
// least-loaded selection: a readonly store (recomputes everything it
// can't cache) counts as one extra in-flight request, a memory-only
// store (loses its results on restart too) as two. Degraded backends
// still serve — the penalty biases dispatch, it never excludes — so a
// fleet that is entirely degraded keeps working.
func (b *backend) storePenalty() int64 {
	switch b.storeState() {
	case "readonly":
		return 1
	case "memory-only":
		return 2
	default:
		return 0
	}
}

// available reports whether the dispatcher may route to this backend:
// not marked down by the prober, and the breaker admits a request.
// Calling this consumes the half-open trial slot when one is available,
// so callers must follow through with a request (or report failure).
func (b *backend) available() bool {
	if up, _ := b.probed(); !up {
		return false
	}
	return b.breaker.allow()
}
