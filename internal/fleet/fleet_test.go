package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
)

// testCfg is a minimal valid simulation config for wire tests; the fake
// backends never execute it.
func testCfg() core.Config {
	cfg := core.DefaultConfig("int-compute")
	cfg.Threads = 2
	cfg.Quanta = 2
	cfg.FastForward = 0
	return cfg
}

// fakeBackend scripts a /v1/runcfg handler and answers /healthz ok.
func fakeBackend(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","version":"test"}`)
	})
	mux.HandleFunc("POST /v1/runcfg", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// okReply answers a /v1/runcfg request with a recognizable result.
func okReply(mix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(runCfgReply{Key: "k", Result: core.Result{Mix: mix}})
	}
}

// newTestClient builds a client with probing disabled (tests drive
// probes explicitly) and fast, deterministic timing.
func newTestClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // no background prober in unit tests
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Microsecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 10 * time.Microsecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestRetryReroutesToHealthyBackend: a failing backend does not sink the
// job — the retry lands on the healthy one.
func TestRetryReroutesToHealthyBackend(t *testing.T) {
	var badHits, goodHits atomic.Int64
	bad := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		goodHits.Add(1)
		okReply("served-by-good")(w, r)
	})

	// Run many jobs: whichever backend is picked first, every job must
	// end on the good one.
	c := newTestClient(t, Config{Backends: []string{bad.URL, good.URL}})
	for i := 0; i < 8; i++ {
		res, err := c.Run(context.Background(), testCfg())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Mix != "served-by-good" {
			t.Fatalf("job %d served wrong result %q", i, res.Mix)
		}
	}
	if goodHits.Load() != 8 {
		t.Fatalf("good backend served %d, want 8", goodHits.Load())
	}
	if badHits.Load() > 0 && c.metrics.retried.Load() == 0 {
		t.Fatal("failures happened but no retries were counted")
	}
}

// TestRetryAfterHonored: a 429 response's Retry-After header sets the
// delay before the next attempt.
func TestRetryAfterHonored(t *testing.T) {
	var hits atomic.Int64
	srv := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		okReply("after-backoff")(w, r)
	})

	var slept []time.Duration
	cfg := Config{Backends: []string{srv.URL}}
	cfg.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	c := newTestClient(t, cfg)
	res, err := c.Run(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mix != "after-backoff" {
		t.Fatalf("wrong result %q", res.Mix)
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want exactly [7s] from Retry-After", slept)
	}
	if c.metrics.rateLimited.Load() != 1 {
		t.Fatalf("rateLimited = %d, want 1", c.metrics.rateLimited.Load())
	}
	// A 429 must not charge the circuit breaker.
	if st := c.backends[0].breaker.state(); st != BreakerClosed {
		t.Fatalf("breaker %v after 429, want closed", st)
	}
}

// TestCircuitOpensAndHalfOpens: N consecutive failures open the
// circuit; the cooldown half-opens it for a single trial whose success
// closes it again.
func TestCircuitOpensAndHalfOpens(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	srv := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		okReply("recovered")(w, r)
	})

	now := time.Now()
	clock := &now
	cfg := Config{
		Backends:         []string{srv.URL},
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		MaxRetries:       -1, // each Run = one attempt, so failures are countable
	}
	cfg.now = func() time.Time { return *clock }
	cfg.sleep = func(context.Context, time.Duration) error { return nil }
	c := newTestClient(t, cfg)
	b := c.backends[0]

	for i := 0; i < 3; i++ {
		if _, err := c.Run(context.Background(), testCfg()); err == nil {
			t.Fatalf("attempt %d unexpectedly succeeded", i)
		}
	}
	if st := b.breaker.state(); st != BreakerOpen {
		t.Fatalf("after 3 consecutive failures breaker is %v, want open", st)
	}
	if b.breaker.openCount() != 1 {
		t.Fatalf("openCount = %d, want 1", b.breaker.openCount())
	}
	// While open, the pool is fully broken: dispatch refuses.
	if _, err := c.Run(context.Background(), testCfg()); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("open circuit: err = %v, want ErrNoBackends", err)
	}

	// Cooldown elapses: half-open admits one trial, which succeeds and
	// closes the circuit.
	*clock = now.Add(2 * time.Minute)
	if st := b.breaker.state(); st != BreakerHalfOpen {
		t.Fatalf("after cooldown breaker is %v, want half-open", st)
	}
	failing.Store(false)
	res, err := c.Run(context.Background(), testCfg())
	if err != nil {
		t.Fatalf("half-open trial failed: %v", err)
	}
	if res.Mix != "recovered" {
		t.Fatalf("trial served %q", res.Mix)
	}
	if st := b.breaker.state(); st != BreakerClosed {
		t.Fatalf("after successful trial breaker is %v, want closed", st)
	}
}

// TestHalfOpenTrialFailureReopens: a failed trial restarts the cooldown.
func TestHalfOpenTrialFailureReopens(t *testing.T) {
	now := time.Now()
	clock := &now
	br := newBreaker(2, time.Minute, func() time.Time { return *clock })
	br.failure()
	br.failure()
	if br.state() != BreakerOpen {
		t.Fatalf("state %v, want open", br.state())
	}
	*clock = now.Add(61 * time.Second)
	if !br.allow() {
		t.Fatal("half-open refused the trial")
	}
	if br.allow() {
		t.Fatal("half-open admitted a second concurrent trial")
	}
	br.failure()
	if br.state() != BreakerOpen {
		t.Fatalf("failed trial left state %v, want open", br.state())
	}
	*clock = now.Add(125 * time.Second)
	if br.state() != BreakerHalfOpen {
		t.Fatalf("second cooldown: state %v, want half-open", br.state())
	}
}

// TestHedgeExactlyOneResult: the hedged request wins while the slow
// primary is cancelled, and exactly one result comes back.
func TestHedgeExactlyOneResult(t *testing.T) {
	primaryCancelled := make(chan struct{})
	slow := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first (like the real server's decoder) so the
		// http.Server's background read can detect the client abort.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // hold until the hedge win cancels us
		close(primaryCancelled)
	})
	fast := fakeBackend(t, okReply("hedge-winner"))

	cfg := Config{
		Backends:   []string{slow.URL, fast.URL},
		Hedge:      true,
		HedgeDelay: 10 * time.Millisecond,
		MaxRetries: -1,
	}
	c := newTestClient(t, cfg)
	// Pin dispatch order: make the slow backend the least-loaded pick.
	slowB, fastB := c.backends[0], c.backends[1]
	if slowB.url != slow.URL {
		slowB, fastB = fastB, slowB
	}
	fastB.inflight.Add(1)
	defer fastB.inflight.Add(-1)

	res, err := c.Run(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mix != "hedge-winner" {
		t.Fatalf("result %q, want hedge-winner", res.Mix)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing primary request was never cancelled")
	}
	if got := c.metrics.hedged.Load(); got != 1 {
		t.Fatalf("hedged = %d, want 1", got)
	}
	if got := c.metrics.hedgeWins.Load(); got != 1 {
		t.Fatalf("hedgeWins = %d, want 1", got)
	}
	// The cancelled primary must not charge its breaker.
	if st := slowB.breaker.state(); st != BreakerClosed {
		t.Fatalf("cancelled primary's breaker is %v, want closed", st)
	}
}

// TestLocalFallbackWhenPoolEmpty: the Executor runs the job's own Run
// closure when there are no backends at all.
func TestLocalFallbackWhenPoolEmpty(t *testing.T) {
	c := newTestClient(t, Config{})
	var ranLocal atomic.Int64
	j := runner.Job[core.Result]{
		Name:    "local",
		Payload: testCfg(),
		Run: func(context.Context) (core.Result, error) {
			ranLocal.Add(1)
			return core.Result{Mix: "local"}, nil
		},
	}
	res, err := c.Executor().Execute(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mix != "local" || ranLocal.Load() != 1 {
		t.Fatalf("local fallback did not run the job (mix %q, ran %d)", res.Mix, ranLocal.Load())
	}
	if c.metrics.localFallback.Load() != 1 {
		t.Fatalf("localFallback = %d, want 1", c.metrics.localFallback.Load())
	}
}

// TestLocalFallbackWhenPoolFullyBroken: all circuits open → local run.
func TestLocalFallbackWhenPoolFullyBroken(t *testing.T) {
	srv := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	cfg := Config{
		Backends:         []string{srv.URL},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		MaxRetries:       -1,
	}
	c := newTestClient(t, cfg)
	if _, err := c.Run(context.Background(), testCfg()); err == nil {
		t.Fatal("first dispatch should have failed")
	}

	var ranLocal atomic.Int64
	j := runner.Job[core.Result]{
		Name:    "fallback",
		Payload: testCfg(),
		Run: func(context.Context) (core.Result, error) {
			ranLocal.Add(1)
			return core.Result{Mix: "local"}, nil
		},
	}
	res, err := c.Executor().Execute(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mix != "local" || ranLocal.Load() != 1 {
		t.Fatal("broken pool did not fall back to local execution")
	}
}

// TestProbeMarksDeadBackendDown and logs the transition.
func TestProbeMarksDeadBackendDown(t *testing.T) {
	alive := fakeBackend(t, okReply("x"))
	dead := fakeBackend(t, okReply("x"))
	var log strings.Builder
	cfg := Config{Backends: []string{alive.URL, dead.URL}, Log: &log}
	c := newTestClient(t, cfg)
	dead.Close()

	c.ProbeNow(context.Background())
	if got := c.Healthy(); got != 1 {
		t.Fatalf("Healthy() = %d after killing one of two backends, want 1", got)
	}
	if !strings.Contains(log.String(), "is down") {
		t.Fatalf("probe transition not logged: %q", log.String())
	}
}

// TestProbeLogsVersionSkew: two healthy backends on different versions
// produce exactly one skew warning until the set changes.
func TestProbeLogsVersionSkew(t *testing.T) {
	mk := func(version string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"status":"ok","version":%q}`, version)
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := mk("v1.0.0"), mk("v1.1.0")
	var log strings.Builder
	c := newTestClient(t, Config{Backends: []string{a.URL, b.URL}, Log: &log})

	c.ProbeNow(context.Background())
	c.ProbeNow(context.Background())
	if got := strings.Count(log.String(), "version skew"); got != 1 {
		t.Fatalf("skew logged %d times, want once:\n%s", got, log.String())
	}
	if !strings.Contains(log.String(), "v1.0.0") || !strings.Contains(log.String(), "v1.1.0") {
		t.Fatalf("skew warning does not name both versions: %q", log.String())
	}
}

// TestWriteMetricsExposition: the Prometheus text output carries the
// dispatch/retry/hedge/circuit counters and per-backend series.
func TestWriteMetricsExposition(t *testing.T) {
	srv := fakeBackend(t, okReply("m"))
	c := newTestClient(t, Config{Backends: []string{srv.URL}})
	if _, err := c.Run(context.Background(), testCfg()); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	c.WriteMetrics(&out)
	text := out.String()
	for _, want := range []string{
		"fleet_dispatched_total 1",
		"fleet_retried_total 0",
		"fleet_hedged_total 0",
		"fleet_hedge_wins_total 0",
		"fleet_rate_limited_total 0",
		"fleet_local_fallback_total 0",
		"fleet_circuit_open_total 0",
		"fleet_backends 1",
		"fleet_backends_healthy 1",
		fmt.Sprintf("fleet_backend_requests_total{backend=%q} 1", srv.URL),
		fmt.Sprintf("fleet_backend_errors_total{backend=%q} 0", srv.URL),
		fmt.Sprintf("fleet_backend_circuit_state{backend=%q} 0", srv.URL),
		fmt.Sprintf("fleet_backend_latency_seconds_count{backend=%q} 1", srv.URL),
		"# TYPE fleet_dispatched_total counter",
		"# TYPE fleet_backends_healthy gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestRetriesExhaustedReturnsError: a persistently failing pool with
// retries bounded surfaces the last dispatch error (fail the job, do
// not silently fall back once backends exist and answer).
func TestRetriesExhaustedReturnsError(t *testing.T) {
	srv := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "persistent", http.StatusInternalServerError)
	})
	cfg := Config{
		Backends:         []string{srv.URL},
		MaxRetries:       2,
		BreakerThreshold: 100, // keep the circuit closed so retries happen
	}
	cfg.sleep = func(context.Context, time.Duration) error { return nil }
	c := newTestClient(t, cfg)
	_, err := c.Run(context.Background(), testCfg())
	if err == nil || errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v, want a dispatch error after exhausted retries", err)
	}
	if !strings.Contains(err.Error(), "persistent") {
		t.Fatalf("error does not carry the backend failure: %v", err)
	}
	if got := c.metrics.retried.Load(); got != 2 {
		t.Fatalf("retried = %d, want 2", got)
	}
}
