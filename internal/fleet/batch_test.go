package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/simrun"
)

// batchCfgs builds n distinct valid configs (seed-varied).
func batchCfgs(n int) []core.Config {
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfg := testCfg()
		cfg.Seed = uint64(1000 + i)
		cfgs[i] = cfg
	}
	return cfgs
}

// fakeResult deterministically derives a recognizable result from a
// config, so tests can check index alignment end to end.
func fakeResult(cfg core.Config) core.Result {
	return core.Result{Mix: fmt.Sprintf("seed-%d", cfg.Seed)}
}

// serveBatch writes a well-formed NDJSON batch stream for the decoded
// payload, with corrupt optionally flipping the digest of line 0.
func serveBatch(w http.ResponseWriter, r *http.Request, truncateAfter int, corruptFirst bool) {
	var p batchPayload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i, cfg := range p.Configs {
		if truncateAfter >= 0 && i >= truncateAfter {
			return // stream dies mid-flight, no trailer
		}
		res := fakeResult(cfg)
		digest := simrun.ResultDigest(res)
		if corruptFirst && i == 0 {
			digest = strings.Repeat("0", len(digest))
		}
		enc.Encode(batchWireLine{Index: i, Key: "cfg:" + simrun.Key(cfg), Result: &res, Digest: digest})
	}
	enc.Encode(map[string]any{"trailer": true, "total": len(p.Configs)})
}

// batchBackend scripts /v1/batch (and /v1/runcfg for fallback tests).
func batchBackend(t *testing.T, batch http.HandlerFunc, runcfg http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","version":"test"}`)
	})
	mux.HandleFunc("POST /v1/batch", batch)
	if runcfg != nil {
		mux.HandleFunc("POST /v1/runcfg", runcfg)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRunBatchShardsChunks: a sweep larger than BatchSize is cut into
// several POSTs, and every result comes back index-aligned.
func TestRunBatchShardsChunks(t *testing.T) {
	var posts atomic.Int64
	srv := batchBackend(t, func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		serveBatch(w, r, -1, false)
	}, nil)

	c := newTestClient(t, Config{Backends: []string{srv.URL}, BatchSize: 2})
	cfgs := batchCfgs(5)
	res, errs := c.RunBatch(context.Background(), cfgs)
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if want := fakeResult(cfgs[i]).Mix; res[i].Mix != want {
			t.Fatalf("item %d got %q, want %q", i, res[i].Mix, want)
		}
	}
	if posts.Load() != 3 {
		t.Fatalf("5 items at BatchSize=2 made %d POSTs, want 3", posts.Load())
	}
	if got := c.metrics.batchItems.Load(); got != 5 {
		t.Fatalf("batchItems = %d, want 5", got)
	}
}

// TestRunBatchTruncatedStreamRetries: a backend that dies mid-stream
// (no trailer) does not lose the chunk — it is retried elsewhere.
func TestRunBatchTruncatedStreamRetries(t *testing.T) {
	var badHits atomic.Int64
	bad := batchBackend(t, func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		serveBatch(w, r, 1, false) // one line, then the connection drops
	}, nil)
	good := batchBackend(t, func(w http.ResponseWriter, r *http.Request) {
		serveBatch(w, r, -1, false)
	}, nil)

	c := newTestClient(t, Config{Backends: []string{bad.URL, good.URL}})
	cfgs := batchCfgs(4)
	res, errs := c.RunBatch(context.Background(), cfgs)
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if want := fakeResult(cfgs[i]).Mix; res[i].Mix != want {
			t.Fatalf("item %d got %q, want %q", i, res[i].Mix, want)
		}
	}
	if badHits.Load() > 0 && c.metrics.retried.Load() == 0 {
		t.Fatal("truncated stream was hit but no retry was counted")
	}
}

// TestRunBatchCorruptLineFallsBackPerItem: a line whose digest fails
// verification costs one per-item re-fetch, not the chunk.
func TestRunBatchCorruptLineFallsBackPerItem(t *testing.T) {
	var runcfgHits atomic.Int64
	srv := batchBackend(t, func(w http.ResponseWriter, r *http.Request) {
		serveBatch(w, r, -1, true) // line 0's digest is flipped
	}, func(w http.ResponseWriter, r *http.Request) {
		runcfgHits.Add(1)
		var cfg core.Config
		json.NewDecoder(r.Body).Decode(&cfg)
		res := fakeResult(cfg)
		json.NewEncoder(w).Encode(runCfgReply{Key: "k", Result: res, Digest: simrun.ResultDigest(res)})
	})

	c := newTestClient(t, Config{Backends: []string{srv.URL}})
	cfgs := batchCfgs(3)
	res, errs := c.RunBatch(context.Background(), cfgs)
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if want := fakeResult(cfgs[i]).Mix; res[i].Mix != want {
			t.Fatalf("item %d got %q, want %q", i, res[i].Mix, want)
		}
	}
	if runcfgHits.Load() != 1 {
		t.Fatalf("per-item fallback hit /v1/runcfg %d times, want 1", runcfgHits.Load())
	}
	if c.metrics.digestMismatch.Load() == 0 {
		t.Fatal("corrupt line was served but digestMismatch is zero")
	}
	if c.metrics.batchFallback.Load() != 1 {
		t.Fatalf("batchFallback = %d, want 1", c.metrics.batchFallback.Load())
	}
}

// TestPeerLookupShortCircuitsRun: a verified peer store hit answers
// Run without any dispatch.
func TestPeerLookupShortCircuitsRun(t *testing.T) {
	cfg := testCfg()
	key := "cfg:" + simrun.Key(cfg)
	stored := core.Result{Mix: "from-peer-store"}
	entry := resultstore.Entry{Key: key, Result: stored, Digest: simrun.ResultDigest(stored)}

	var runcfgHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","version":"test"}`)
	})
	mux.HandleFunc("GET /v1/result/{key}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("key") != key {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(entry)
	})
	mux.HandleFunc("POST /v1/runcfg", func(w http.ResponseWriter, r *http.Request) {
		runcfgHits.Add(1)
		okReply("simulated-fresh")(w, r)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	peers, err := NewPeerLookup([]string{ts.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestClient(t, Config{Backends: []string{ts.URL}, PeerLookup: peers})
	res, err := c.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mix != "from-peer-store" {
		t.Fatalf("got %q, want the peer-stored result", res.Mix)
	}
	if runcfgHits.Load() != 0 {
		t.Fatalf("peer hit should have short-circuited dispatch, but /v1/runcfg saw %d requests", runcfgHits.Load())
	}
	if c.metrics.peerHits.Load() != 1 {
		t.Fatalf("peerHits = %d, want 1", c.metrics.peerHits.Load())
	}

	// A config no peer has stored must fall through to dispatch.
	fresh := testCfg()
	fresh.Seed = 999
	res, err = c.Run(context.Background(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mix != "simulated-fresh" || runcfgHits.Load() != 1 {
		t.Fatalf("peer miss did not dispatch (mix %q, hits %d)", res.Mix, runcfgHits.Load())
	}
	if c.metrics.peerMisses.Load() == 0 {
		t.Fatal("peer miss not counted")
	}
}
