package fleet

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/simserver"
)

// renderSweep concatenates every figure a sweep produces — the byte
// stream adts-sweep would print — so remote and local runs can be
// compared byte for byte.
func renderSweep(s *experiments.Sweep) string {
	return strings.Join([]string{
		s.Figure7Switches().String(),
		s.Figure7Benign().String(),
		s.Figure8IPC().String(),
		s.Figure8Improvement().String(),
		s.Figure8Chart().String(),
		s.Headline(),
	}, "\n")
}

func e2eOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Mixes = []string{"int-compute", "mixed-lowipc"}
	o.Quanta = 4
	o.Intervals = 2
	return o
}

// TestE2EShardedSweepSurvivesBackendDeath is the acceptance flow: a
// sweep sharded across 3 in-process smtsimd backends, with one backend
// abruptly terminated mid-sweep, completes via retry/re-route and
// renders output byte-identical to the same sweep run locally — and a
// checkpointed fleet sweep interrupted and resumed stays byte-identical
// too.
func TestE2EShardedSweepSurvivesBackendDeath(t *testing.T) {
	thresholds := []float64{1, 2}
	heuristics := []detector.Heuristic{detector.Type1, detector.Type3}

	// Ground truth: the sweep computed entirely in-process.
	local, err := experiments.RunSweep(context.Background(), e2eOptions(), thresholds, heuristics)
	if err != nil {
		t.Fatal(err)
	}
	want := renderSweep(local)

	// Three real smtsimd instances, in-process.
	var servers []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		sim := simserver.New(simserver.Config{Workers: 2})
		ts := httptest.NewServer(sim.Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}

	newClient := func() *Client {
		c, err := New(Config{
			Backends:         urls,
			ProbeInterval:    100 * time.Millisecond,
			BreakerThreshold: 2,
			BreakerCooldown:  200 * time.Millisecond,
			MaxRetries:       6,
			BackoffBase:      time.Millisecond,
			BackoffMax:       20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}

	// Part 1: fleet sweep with one backend murdered mid-flight.
	c := newClient()
	victim := servers[2]
	var settled atomic.Int32
	var killed atomic.Bool
	o := e2eOptions()
	o.Workers = 4
	o.Executor = c.Executor()
	o.RunHook = func(e runner.Event) {
		// Kill the victim abruptly (severed connections, closed
		// listener) a quarter of the way through the sweep.
		if settled.Add(1) == 5 && killed.CompareAndSwap(false, true) {
			victim.CloseClientConnections()
			victim.Listener.Close()
		}
	}
	remote, err := experiments.RunSweep(context.Background(), o, thresholds, heuristics)
	if err != nil {
		t.Fatalf("fleet sweep with mid-sweep backend death failed: %v", err)
	}
	if got := renderSweep(remote); got != want {
		t.Fatalf("fleet sweep output diverges from local run:\nlocal:\n%s\nfleet:\n%s", want, got)
	}
	if !killed.Load() {
		t.Fatal("victim backend was never killed; the test exercised nothing")
	}
	// The work was actually sharded: the surviving backends both served.
	for _, b := range c.backends[:2] {
		if b.requests.Load() == 0 {
			t.Errorf("backend %s served no requests; sweep was not sharded", b.url)
		}
	}
	if c.metrics.dispatched.Load() == 0 {
		t.Fatal("no dispatches recorded")
	}
	t.Logf("fleet: dispatched=%d retried=%d circuitOpens=%d",
		c.metrics.dispatched.Load(), c.metrics.retried.Load(), func() (n int64) {
			for _, b := range c.backends {
				n += b.breaker.openCount()
			}
			return
		}())

	// Part 2: a checkpointed fleet sweep interrupted mid-run resumes to
	// byte-identical output (remote and local interchangeable even
	// across an interrupt boundary).
	path := filepath.Join(t.TempDir(), "fleet-sweep.jsonl")
	cp, err := runner.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c2 := newClient()
	oi := e2eOptions()
	oi.Workers = 2
	oi.Executor = c2.Executor()
	oi.Checkpoint = cp
	var n atomic.Int32
	oi.RunHook = func(runner.Event) {
		if n.Add(1) == 4 {
			cancel()
		}
	}
	if _, err := experiments.RunSweep(ctx, oi, thresholds, heuristics); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted fleet sweep err = %v, want context.Canceled", err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := runner.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() == 0 {
		t.Fatal("interrupt flushed no runs to the checkpoint")
	}
	or := e2eOptions()
	or.Workers = 2
	or.Executor = c2.Executor()
	or.Checkpoint = cp2
	resumed, err := experiments.RunSweep(context.Background(), or, thresholds, heuristics)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderSweep(resumed); got != want {
		t.Fatalf("resumed fleet sweep diverges from local run:\nlocal:\n%s\nresumed:\n%s", want, got)
	}
}
