package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/runner"
	"repro/internal/simrun"
)

// NewPeerLookup builds a tier-2 peer lookup over the pool's
// GET /v1/result/{key} endpoints. A zero timeout selects the peer
// client's default. The returned lookup digest-verifies every entry
// and treats all failures as misses, so it is safe to consult before
// every dispatch.
func NewPeerLookup(backends []string, timeout time.Duration) (resultstore.PeerLookup, error) {
	urls := make([]string, 0, len(backends))
	seen := make(map[string]bool)
	for _, raw := range backends {
		u, err := normalizeURL(raw)
		if err != nil {
			return nil, err
		}
		if !seen[u] {
			seen[u] = true
			urls = append(urls, u)
		}
	}
	return resultstore.NewPeerClient(resultstore.PeerConfig{Peers: urls, Timeout: timeout}), nil
}

// batchPayload is the POST /v1/batch request body.
type batchPayload struct {
	Configs []core.Config `json:"configs"`
}

// batchWireLine is the union of the item and trailer NDJSON line
// shapes streamed by /v1/batch.
type batchWireLine struct {
	Trailer bool         `json:"trailer"`
	Index   int          `json:"index"`
	Key     string       `json:"key"`
	Result  *core.Result `json:"result"`
	Digest  string       `json:"digest"`
	Error   string       `json:"error"`
	Total   int          `json:"total"`
}

// RunBatch dispatches many configs with chunk sharding: the slice is
// cut into BatchSize chunks, each chunk goes to one backend as a
// single POST /v1/batch, and its NDJSON stream is verified line by
// line. A failed chunk (transport error, truncated stream, bad
// trailer) is retried on another backend; items that still fail —
// or whose lines failed digest verification — fall back to the
// per-item Run path, so one corrupt backend degrades a sweep to
// per-item dispatch instead of poisoning it. Results and errors are
// index-aligned with cfgs.
func (c *Client) RunBatch(ctx context.Context, cfgs []core.Config) ([]core.Result, []error) {
	out := make([]core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	for start := 0; start < len(cfgs); start += c.cfg.BatchSize {
		end := start + c.cfg.BatchSize
		if end > len(cfgs) {
			end = len(cfgs)
		}
		c.runChunk(ctx, cfgs[start:end], out[start:end], errs[start:end])
	}
	return out, errs
}

// runChunk resolves one chunk: batch dispatch with retries, then
// per-item fallback for whatever the stream did not deliver.
func (c *Client) runChunk(ctx context.Context, cfgs []core.Config, out []core.Result, errs []error) {
	var results []*core.Result
	var itemErrs []error
	var exclude *backend
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
				}
			}
			return
		}
		b := c.pick(exclude)
		if b == nil {
			break // pool empty or fully broken: per-item path decides
		}
		if attempt > 0 {
			c.metrics.retried.Add(1)
		}
		c.metrics.batches.Add(1)
		res, ierrs, err := c.sendBatch(ctx, b, cfgs)
		if err == nil {
			results, itemErrs = res, ierrs
			break
		}
		if ctx.Err() != nil {
			continue // loop re-checks and stamps ctx.Err on every item
		}
		exclude = b
		delay := c.backoff(attempt)
		var rl *rateLimitedError
		if errors.As(err, &rl) && rl.after > 0 {
			delay = rl.after
		}
		if c.cfg.sleep(ctx, delay) != nil {
			continue
		}
	}
	for i := range cfgs {
		if results != nil {
			if itemErrs[i] != nil {
				errs[i] = itemErrs[i]
				continue
			}
			if results[i] != nil {
				out[i] = *results[i]
				continue
			}
		}
		// Not delivered by any batch stream (failed chunk, corrupt line,
		// empty pool): the per-item path retries, hedges, and reports
		// ErrNoBackends so callers can run locally.
		c.metrics.batchFallback.Add(1)
		out[i], errs[i] = c.Run(ctx, cfgs[i])
	}
}

// sendBatch performs one POST /v1/batch against backend b and decodes
// its NDJSON stream. Per-item simulation failures ride in itemErrs;
// lines whose digest does not verify are dropped (counted against b)
// and left nil for the caller to re-fetch. A stream that ends without
// a matching trailer is an error: the whole chunk is unaccounted for.
func (c *Client) sendBatch(ctx context.Context, b *backend, cfgs []core.Config) ([]*core.Result, []error, error) {
	body, err := json.Marshal(batchPayload{Configs: cfgs})
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: encoding batch: %w", err)
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Add(1)

	rctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, b.url+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: %w", b.url, err)
	}
	req.Header.Set("Content-Type", "application/json")

	start := c.cfg.now()
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		b.errors.Add(1)
		b.breaker.failure()
		return nil, nil, fmt.Errorf("fleet: %s: %w", b.url, err)
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		b.ratelim.Add(1)
		c.metrics.rateLimited.Add(1)
		after := parseRetryAfter(resp.Header.Get("Retry-After"), c.cfg.now(), c.cfg.RetryAfterMax)
		return nil, nil, &rateLimitedError{backend: b.url, after: after}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		b.errors.Add(1)
		b.breaker.failure()
		return nil, nil, fmt.Errorf("fleet: %s: batch status %d: %s", b.url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}

	results := make([]*core.Result, len(cfgs))
	itemErrs := make([]error, len(cfgs))
	dec := json.NewDecoder(resp.Body)
	sawTrailer := false
	for !sawTrailer {
		var line batchWireLine
		if derr := dec.Decode(&line); derr != nil {
			// io.EOF before the trailer is a truncated stream (killed
			// backend, dropped connection); anything else is framing
			// corruption. Either way the chunk is unaccounted for.
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			b.errors.Add(1)
			b.breaker.failure()
			return nil, nil, fmt.Errorf("fleet: %s: batch stream broke before the trailer: %v", b.url, derr)
		}
		if line.Trailer {
			if line.Total != len(cfgs) {
				b.errors.Add(1)
				b.breaker.failure()
				return nil, nil, fmt.Errorf("fleet: %s: batch trailer accounts for %d items, sent %d", b.url, line.Total, len(cfgs))
			}
			sawTrailer = true
			continue
		}
		if line.Index < 0 || line.Index >= len(cfgs) {
			b.errors.Add(1)
			b.breaker.failure()
			return nil, nil, fmt.Errorf("fleet: %s: batch line index %d out of range", b.url, line.Index)
		}
		if line.Error != "" {
			itemErrs[line.Index] = fmt.Errorf("fleet: %s: batch item %d: %s", b.url, line.Index, line.Error)
			continue
		}
		if line.Result == nil {
			itemErrs[line.Index] = fmt.Errorf("fleet: %s: batch item %d: empty result line", b.url, line.Index)
			continue
		}
		// Per-line end-to-end integrity, same contract as /v1/runcfg: a
		// bad line costs one per-item re-fetch, not the chunk.
		if line.Digest == "" || simrun.ResultDigest(*line.Result) != line.Digest {
			c.noteDigestMismatch(b)
			continue
		}
		c.metrics.batchItems.Add(1)
		results[line.Index] = line.Result
	}
	b.breaker.success()
	b.observe(c.cfg.now().Sub(start).Microseconds())
	return results, itemErrs, nil
}

// BatchExecutor adapts the client to internal/runner's batch seam:
// chunks of jobs with transportable configs ship as one POST /v1/batch
// per backend; everything else — untransportable payloads, and any
// item the pool cannot take — runs locally, so a sweep always
// completes.
func (c *Client) BatchExecutor() runner.BatchExecutor[core.Result] {
	return batchExecutor{executor{c}}
}

type batchExecutor struct{ executor }

func (e batchExecutor) ExecuteBatch(ctx context.Context, jobs []runner.Job[core.Result]) ([]core.Result, []error) {
	out := make([]core.Result, len(jobs))
	errs := make([]error, len(jobs))
	cfgs := make([]core.Config, 0, len(jobs))
	idxs := make([]int, 0, len(jobs))
	for i, j := range jobs {
		cfg, ok := j.Payload.(core.Config)
		if !ok || cfg.Programs != nil {
			out[i], errs[i] = j.Run(ctx)
			continue
		}
		cfgs = append(cfgs, cfg)
		idxs = append(idxs, i)
	}
	if len(cfgs) == 0 {
		return out, errs
	}
	res, rerrs := e.c.RunBatch(ctx, cfgs)
	for k, i := range idxs {
		if rerrs[k] != nil && errors.Is(rerrs[k], ErrNoBackends) {
			e.c.metrics.localFallback.Add(1)
			out[i], errs[i] = jobs[i].Run(ctx)
			continue
		}
		out[i], errs[i] = res[k], rerrs[k]
	}
	return out, errs
}
