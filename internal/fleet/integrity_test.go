package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simrun"
)

// TestParseRetryAfter: hostile and malformed Retry-After values must
// never stall a shard — negatives and garbage collapse to 0, huge
// values and far-future dates cap at max.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	const max = 30 * time.Second
	tests := []struct {
		name string
		in   string
		want time.Duration
	}{
		{"empty", "", 0},
		{"seconds", "2", 2 * time.Second},
		{"seconds with spaces", "  5  ", 5 * time.Second},
		{"zero", "0", 0},
		{"negative", "-30", 0},
		{"huge", "86400", max},
		{"overflowing", "999999999999999999", max},
		{"overflowing past int64 seconds", "99999999999999999999999999", 0}, // Atoi fails, not a date either
		{"http date future", now.Add(4 * time.Second).Format(http.TimeFormat), 4 * time.Second},
		{"http date past", now.Add(-time.Hour).Format(http.TimeFormat), 0},
		{"http date far future", now.Add(48 * time.Hour).Format(http.TimeFormat), max},
		{"garbage", "soon", 0},
		{"float", "1.5", 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := parseRetryAfter(tt.in, now, max); got != tt.want {
				t.Errorf("parseRetryAfter(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

// digestReply answers /v1/runcfg with the given result and a digest —
// correct when lie is "", otherwise the lie verbatim.
func digestReply(res core.Result, lie string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d := lie
		if d == "" {
			d = simrun.ResultDigest(res)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Result-Digest", d)
		json.NewEncoder(w).Encode(runCfgReply{Key: "k", Result: res, Digest: d})
	}
}

// TestDigestMismatchRetriesOnOtherBackend: a response whose digest does
// not match its decoded result is rejected as retryable corruption, and
// the retry lands on a backend that answers honestly.
func TestDigestMismatchRetriesOnOtherBackend(t *testing.T) {
	var corruptHits, goodHits atomic.Int64
	corrupt := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		corruptHits.Add(1)
		digestReply(core.Result{Mix: "corrupted-bytes"}, strings.Repeat("0", 64))(w, r)
	})
	good := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		goodHits.Add(1)
		digestReply(core.Result{Mix: "verified"}, "")(w, r)
	})

	c := newTestClient(t, Config{Backends: []string{corrupt.URL, good.URL}})
	for i := 0; i < 6; i++ {
		res, err := c.Run(context.Background(), testCfg())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Mix != "verified" {
			t.Fatalf("job %d accepted a corrupted result %q", i, res.Mix)
		}
	}
	if corruptHits.Load() > 0 && c.metrics.digestMismatch.Load() == 0 {
		t.Fatal("corrupt backend was hit but no digest mismatch was counted")
	}
	if goodHits.Load() < 6 {
		t.Fatalf("good backend served %d of 6 jobs", goodHits.Load())
	}
}

// TestRepeatedDigestMismatchQuarantines: a backend that keeps failing
// digest verification is quarantined at the threshold and never routed
// to again.
func TestRepeatedDigestMismatchQuarantines(t *testing.T) {
	var corruptHits atomic.Int64
	corrupt := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		corruptHits.Add(1)
		digestReply(core.Result{Mix: "corrupted-bytes"}, strings.Repeat("f", 64))(w, r)
	})
	good := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		digestReply(core.Result{Mix: "verified"}, "")(w, r)
	})

	c := newTestClient(t, Config{
		Backends:            []string{corrupt.URL, good.URL},
		QuarantineThreshold: 2,
		BreakerThreshold:    100, // keep the breaker out of the way: quarantine must do it
	})
	// Make the corrupt backend least-loaded so every first attempt lands
	// on it until the quarantine threshold trips.
	for _, b := range c.backends {
		if b.url != strings.TrimRight(corrupt.URL, "/") {
			b.inflight.Add(1)
		}
	}
	for i := 0; i < 12; i++ {
		res, err := c.Run(context.Background(), testCfg())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Mix != "verified" {
			t.Fatalf("job %d accepted a corrupted result %q", i, res.Mix)
		}
	}
	if c.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", c.Quarantined())
	}
	after := corruptHits.Load()
	for i := 0; i < 6; i++ {
		if _, err := c.Run(context.Background(), testCfg()); err != nil {
			t.Fatal(err)
		}
	}
	if corruptHits.Load() != after {
		t.Fatalf("quarantined backend served %d more requests", corruptHits.Load()-after)
	}
	var buf strings.Builder
	c.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "fleet_quarantined_total 1") {
		t.Fatalf("metrics missing quarantine counter:\n%s", buf.String())
	}
}

// TestAuditMajorityQuarantinesByzantine: a backend that lies
// consistently (wrong result, matching digest over the wrong result)
// passes digest verification — only the cross-backend audit can catch
// it. With two honest peers, the majority vote quarantines the liar and
// the caller receives the honest result.
func TestAuditMajorityQuarantinesByzantine(t *testing.T) {
	honest := core.Result{Mix: "honest", AggregateIPC: 4.25}
	lie := core.Result{Mix: "honest", AggregateIPC: 4.2501} // plausible but wrong

	var byzHits atomic.Int64
	byz := fakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		byzHits.Add(1)
		digestReply(lie, "")(w, r) // self-consistent: digest matches the lie
	})
	h1 := fakeBackend(t, digestReply(honest, ""))
	h2 := fakeBackend(t, digestReply(honest, ""))

	c := newTestClient(t, Config{
		Backends:  []string{byz.URL, h1.URL, h2.URL},
		AuditRate: 1,
	})
	// Make the byzantine backend the least-loaded so it is picked as the
	// primary; the audit then cross-checks it against an honest backend
	// and the second honest backend casts the deciding vote.
	for _, b := range c.backends {
		if b.url != strings.TrimRight(byz.URL, "/") {
			b.inflight.Add(1)
		}
	}
	res, err := c.Run(context.Background(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateIPC != honest.AggregateIPC {
		t.Fatalf("Run returned the byzantine result (IPC %v), want the majority result (%v)",
			res.AggregateIPC, honest.AggregateIPC)
	}
	if c.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want the byzantine backend quarantined", c.Quarantined())
	}
	if got := c.metrics.auditDisagree.Load(); got != 1 {
		t.Fatalf("auditDisagree = %d, want 1", got)
	}
	// Once quarantined, the liar never serves again.
	before := byzHits.Load()
	for i := 0; i < 5; i++ {
		res, err := c.Run(context.Background(), testCfg())
		if err != nil {
			t.Fatal(err)
		}
		if res.AggregateIPC != honest.AggregateIPC {
			t.Fatalf("post-quarantine run returned %v", res.AggregateIPC)
		}
	}
	if byzHits.Load() != before {
		t.Fatalf("quarantined byzantine backend served %d more requests", byzHits.Load()-before)
	}
}

// TestAuditAgreementKeepsEveryoneRoutable: when backends agree, audits
// cost one extra request and quarantine nobody.
func TestAuditAgreementKeepsEveryoneRoutable(t *testing.T) {
	honest := core.Result{Mix: "honest"}
	a := fakeBackend(t, digestReply(honest, ""))
	b := fakeBackend(t, digestReply(honest, ""))
	c := newTestClient(t, Config{Backends: []string{a.URL, b.URL}, AuditRate: 1})
	for i := 0; i < 4; i++ {
		if _, err := c.Run(context.Background(), testCfg()); err != nil {
			t.Fatal(err)
		}
	}
	if c.Quarantined() != 0 {
		t.Fatalf("Quarantined() = %d after clean audits", c.Quarantined())
	}
	if got := c.metrics.audits.Load(); got != 4 {
		t.Fatalf("audits = %d, want 4 (rate 1)", got)
	}
	if got := c.metrics.auditDisagree.Load(); got != 0 {
		t.Fatalf("auditDisagree = %d, want 0", got)
	}
}

// TestAuditRateValidated: out-of-range audit rates are config errors,
// not silent clamps.
func TestAuditRateValidated(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.1} {
		if _, err := New(Config{AuditRate: rate}); err == nil {
			t.Errorf("New(AuditRate=%g) accepted an out-of-range rate", rate)
		}
	}
}
