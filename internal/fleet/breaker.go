package fleet

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; one trial request is
	// allowed through to probe the backend.
	BreakerHalfOpen
	// BreakerOpen: consecutive failures exceeded the threshold; the
	// backend is skipped until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker is a per-backend circuit breaker: it opens after Threshold
// consecutive failures, waits out Cooldown, then half-opens to let a
// single trial request probe the backend. The trial's success closes
// the circuit; its failure re-opens it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	failures int       // consecutive failures while closed
	openedAt time.Time // zero while closed
	probing  bool      // a half-open trial is in flight
	opens    int64     // lifetime closed->open transitions (metrics)
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// state reports the breaker's current position.
func (b *breaker) state() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *breaker) stateLocked() BreakerState {
	if b.openedAt.IsZero() {
		return BreakerClosed
	}
	if b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return BreakerOpen
}

// allow reports whether a request may be sent now. In the half-open
// state only one caller wins the trial slot; the rest are refused until
// the trial settles.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// success records a completed request: any state collapses to closed.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.openedAt = time.Time{}
	b.probing = false
}

// failure records a failed request. While closed it counts toward the
// threshold; a half-open trial failure re-opens immediately.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openedAt.IsZero() {
		// Open or half-open (failed trial): restart the cooldown.
		b.openedAt = b.now()
		b.probing = false
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.openedAt = b.now()
		b.opens++
	}
}

// openCount reports lifetime closed->open transitions.
func (b *breaker) openCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
