// Package fleet is the client-side distributed execution fabric that
// lets one sweep fan out across many smtsimd backends: a backend
// registry with periodic /healthz probing, least-loaded dispatch of
// simulation configs to POST /v1/runcfg, a per-backend circuit breaker,
// retries with exponential backoff + jitter that re-route to a healthy
// backend, optional hedged requests to cut tail latency, and a
// local-execution fallback when the pool is empty or fully broken.
//
// Simulations are deterministic functions of their config and the wire
// format is the config itself (not a lossy re-encoding), so results are
// byte-identical to a local run no matter which backend served each
// job. The Executor adapter plugs the client into internal/runner, so
// checkpoint/resume, SIGINT drain, and progress/ETA work identically
// for remote sweeps.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/runner"
	"repro/internal/simrun"
)

// Config tunes a fleet client. Zero values select the documented
// defaults.
type Config struct {
	// Backends are smtsimd base addresses ("host:port" or full URLs).
	// An empty pool makes every job fall back to local execution.
	Backends []string
	// MaxRetries bounds re-dispatches per job after the first attempt;
	// < 0 disables retries, 0 selects 3. Retries prefer a different
	// backend than the one that just failed.
	MaxRetries int
	// Hedge enables hedged requests: when the primary has not answered
	// within HedgeDelay, the same config is sent to a second backend
	// and the first response wins (the loser is cancelled).
	Hedge bool
	// HedgeDelay is the hedging trigger; <= 0 selects 250ms.
	HedgeDelay time.Duration
	// ProbeInterval is the /healthz probing period; 0 selects 5s,
	// negative disables probing (backends are assumed up until
	// requests fail).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit; <= 0 selects 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before
	// half-opening for a trial request; <= 0 selects 5s.
	BreakerCooldown time.Duration
	// BackoffBase / BackoffMax bound the full-jitter retry backoff;
	// <= 0 select 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RequestTimeout bounds one dispatch (queueing + simulation on the
	// backend); <= 0 selects 5m.
	RequestTimeout time.Duration
	// ProbeTimeout bounds one health probe; <= 0 selects 2s.
	ProbeTimeout time.Duration
	// RetryAfterMax caps how long a backend's Retry-After header can
	// stall a shard; <= 0 selects 30s. Negative, unparsable, and
	// past-dated headers are treated as "retry with normal backoff".
	RetryAfterMax time.Duration
	// AuditRate is the fraction of successful runs (0..1) re-dispatched
	// to a second backend for digest cross-checking. When the two
	// disagree, a third backend breaks the tie and the minority backend
	// is quarantined (byzantine detection). 0 disables auditing.
	AuditRate float64
	// AuditSeed drives audit sampling; 0 selects 1. Equal seeds sample
	// the same run indices, so audit coverage is reproducible.
	AuditSeed uint64
	// QuarantineThreshold is how many digest-mismatched responses a
	// backend may return before it is quarantined (removed from the
	// pool until the process restarts); <= 0 selects 3. Audit-vote
	// losses quarantine immediately regardless of this threshold.
	QuarantineThreshold int
	// BatchSize bounds one POST /v1/batch chunk shipped to a single
	// backend by RunBatch; <= 0 selects 64. Larger batches amortize
	// round trips, smaller ones spread a sweep across more backends.
	BatchSize int
	// PeerLookup, when non-nil, is consulted before dispatching a
	// config (the tier-2 read path): a digest-verified result already
	// stored anywhere in the fleet short-circuits the dispatch
	// entirely. Build one with NewPeerLookup over the pool addresses.
	PeerLookup resultstore.PeerLookup
	// HTTPClient overrides the transport; nil selects a dedicated
	// client (timeouts come from request contexts).
	HTTPClient *http.Client
	// Log receives operational warnings (backends going down or
	// recovering, version skew across the pool); nil discards them.
	Log io.Writer

	// sleep and now are injectable for tests (in-package only).
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time
}

// ErrNoBackends reports that no backend could accept the job: the pool
// is empty, every backend is down, or every circuit is open. Callers
// (the Executor adapter, cmd/adts-sweep) fall back to local execution.
var ErrNoBackends = errors.New("fleet: no healthy backend available")

// Client dispatches simulation configs across a pool of smtsimd
// backends. Create with New, stop the health prober with Close.
type Client struct {
	cfg      Config
	http     *http.Client
	backends []*backend
	metrics  clientMetrics

	stopProbe context.CancelFunc
	probeDone chan struct{}

	auditN atomic.Uint64 // successful runs seen by the audit sampler

	skewMu   sync.Mutex
	lastSkew string // last logged version-skew fingerprint
}

// New builds a client, normalizes the backend addresses, and starts the
// health prober (unless probing is disabled or the pool is empty).
func New(cfg Config) (*Client, error) {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 250 * time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Minute
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.RetryAfterMax <= 0 {
		cfg.RetryAfterMax = 30 * time.Second
	}
	if cfg.AuditRate < 0 || cfg.AuditRate > 1 {
		return nil, fmt.Errorf("fleet: AuditRate must be in [0, 1], got %g", cfg.AuditRate)
	}
	if cfg.AuditSeed == 0 {
		cfg.AuditSeed = 1
	}
	if cfg.QuarantineThreshold <= 0 {
		cfg.QuarantineThreshold = 3
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			if d <= 0 {
				return ctx.Err()
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}

	c := &Client{cfg: cfg, http: cfg.HTTPClient}
	if c.http == nil {
		c.http = &http.Client{}
	}
	seen := make(map[string]bool)
	for _, raw := range cfg.Backends {
		u, err := normalizeURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			continue
		}
		seen[u] = true
		c.backends = append(c.backends, &backend{
			url:     u,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		})
	}

	if len(c.backends) > 0 && cfg.ProbeInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		c.stopProbe = cancel
		c.probeDone = make(chan struct{})
		go c.probeLoop(ctx)
	}
	return c, nil
}

// Close stops the health prober. In-flight Run calls are unaffected.
func (c *Client) Close() {
	if c.stopProbe != nil {
		c.stopProbe()
		<-c.probeDone
	}
}

// Backends reports the pool size.
func (c *Client) Backends() int { return len(c.backends) }

// Healthy reports how many backends are currently routable (probe up,
// circuit not open, not quarantined).
func (c *Client) Healthy() int {
	n := 0
	for _, b := range c.backends {
		if b.quarantined.Load() {
			continue
		}
		if up, _ := b.probed(); up && b.breaker.state() != BreakerOpen {
			n++
		}
	}
	return n
}

// Quarantined reports how many backends have been quarantined for
// returning results that failed digest verification or lost an audit
// vote. Quarantine is permanent for the life of the client: a backend
// that returns wrong bytes cannot be trusted after a cooldown.
func (c *Client) Quarantined() int {
	n := 0
	for _, b := range c.backends {
		if b.quarantined.Load() {
			n++
		}
	}
	return n
}

// quarantine removes b from the pool permanently and logs why. The
// CompareAndSwap makes the transition (and its metric) fire once even
// under concurrent detection.
func (c *Client) quarantine(b *backend, reason string) {
	if b.quarantined.CompareAndSwap(false, true) {
		c.metrics.quarantinedTotal.Add(1)
		fmt.Fprintf(c.cfg.Log, "fleet: backend %s QUARANTINED: %s\n", b.url, reason)
	}
}

// noteDigestMismatch charges one corrupted response to b and
// quarantines it at the configured threshold. Isolated mismatches are
// usually in-flight corruption (retried elsewhere); repeated mismatches
// from one backend mean the backend itself is producing bad bytes.
func (c *Client) noteDigestMismatch(b *backend) {
	c.metrics.digestMismatch.Add(1)
	if n := b.digestBad.Add(1); n >= int64(c.cfg.QuarantineThreshold) {
		c.quarantine(b, fmt.Sprintf("%d digest-mismatched response(s)", n))
	}
}

// Run dispatches one simulation config to the pool and returns its
// result. It retries with exponential backoff + jitter, re-routing to a
// different backend after a failure and honouring Retry-After on 429.
// When no backend can accept the job it returns ErrNoBackends (callers
// fall back to local execution); when retries are exhausted it returns
// the last dispatch error.
func (c *Client) Run(ctx context.Context, simCfg core.Config) (core.Result, error) {
	var zero core.Result
	// Tier-2 read path: a result already stored anywhere in the fleet
	// (verified end to end by the peer client) costs one GET instead of
	// a simulation slot.
	if c.cfg.PeerLookup != nil {
		if e, ok := c.cfg.PeerLookup.Lookup(ctx, "cfg:"+simrun.Key(simCfg)); ok {
			c.metrics.peerHits.Add(1)
			return e.Result, nil
		}
		c.metrics.peerMisses.Add(1)
	}
	body, err := json.Marshal(simCfg)
	if err != nil {
		return zero, fmt.Errorf("fleet: encoding config: %w", err)
	}
	var lastErr error
	var exclude *backend
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		b := c.pick(exclude)
		if b == nil {
			if lastErr != nil {
				return zero, fmt.Errorf("%w (last dispatch error: %v)", ErrNoBackends, lastErr)
			}
			return zero, ErrNoBackends
		}
		if attempt > 0 {
			c.metrics.retried.Add(1)
		}
		res, served, err := c.dispatch(ctx, b, body)
		if err == nil {
			return c.maybeAudit(ctx, served, body, res), nil
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		lastErr = err
		if attempt >= c.cfg.MaxRetries {
			return zero, fmt.Errorf("fleet: %d dispatch attempt(s) exhausted: %w", attempt+1, lastErr)
		}
		exclude = b
		delay := c.backoff(attempt)
		var rl *rateLimitedError
		if errors.As(err, &rl) && rl.after > 0 {
			delay = rl.after
		}
		if err := c.cfg.sleep(ctx, delay); err != nil {
			return zero, err
		}
	}
}

// backoff returns a full-jitter delay for the given attempt number:
// uniform in (0, min(BackoffMax, BackoffBase<<attempt)].
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.cfg.BackoffBase << uint(attempt)
	if ceil > c.cfg.BackoffMax || ceil <= 0 {
		ceil = c.cfg.BackoffMax
	}
	return time.Duration(rand.Int64N(int64(ceil))) + 1
}

// pick selects the least-loaded routable backend, preferring any
// backend not in exclude (the ones that just failed, or already served
// the run being audited). A degraded result store adds phantom load
// (storePenalty) so dispatch drifts toward backends that can still
// cache. Quarantined backends are never picked. Ties break by URL so
// selection is deterministic under equal load. The
// half-open trial slot is only consumed for the backend actually
// returned.
func (c *Client) pick(exclude ...*backend) *backend {
	excluded := func(b *backend) bool {
		for _, e := range exclude {
			if b == e {
				return true
			}
		}
		return false
	}
	type cand struct {
		b    *backend
		load int64
	}
	var cands []cand
	for _, b := range c.backends {
		if excluded(b) || b.quarantined.Load() {
			continue
		}
		if up, _ := b.probed(); !up {
			continue
		}
		if b.breaker.state() == BreakerOpen {
			continue
		}
		cands = append(cands, cand{b, b.inflight.Load() + b.storePenalty()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].b.url < cands[j].b.url
	})
	for _, cd := range cands {
		if cd.b.breaker.allow() {
			return cd.b
		}
	}
	// Last resort: a pool of one (or all alternatives broken) may retry
	// a backend that just failed — but never a quarantined one.
	for _, e := range exclude {
		if e == nil || e.quarantined.Load() {
			continue
		}
		if up, _ := e.probed(); up && e.breaker.allow() {
			return e
		}
	}
	return nil
}

// dispatch sends one config to backend b, optionally racing a hedged
// copy on a second backend. Exactly one result is returned per call,
// along with the backend that served it (so audits can attribute the
// result); the losing request is cancelled.
func (c *Client) dispatch(ctx context.Context, b *backend, body []byte) (core.Result, *backend, error) {
	c.metrics.dispatched.Add(1)
	if !c.cfg.Hedge || len(c.backends) < 2 {
		res, err := c.send(ctx, b, body)
		return res, b, err
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser (and any stragglers) on return

	type outcome struct {
		res core.Result
		err error
		b   *backend
	}
	out := make(chan outcome, 2)
	send := func(to *backend) {
		res, err := c.send(hctx, to, body)
		out <- outcome{res, err, to}
	}
	go send(b)

	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	launched, hedged := 1, false
	var firstErr error
	for {
		select {
		case o := <-out:
			if o.err == nil {
				if hedged && o.b != b {
					c.metrics.hedgeWins.Add(1)
				}
				return o.res, o.b, nil
			}
			launched--
			if firstErr == nil {
				firstErr = o.err
			}
			if launched == 0 {
				return core.Result{}, nil, firstErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			second := c.pick(b)
			if second == nil {
				continue // nowhere to hedge; keep waiting on the primary
			}
			hedged = true
			launched++
			c.metrics.hedged.Add(1)
			c.metrics.dispatched.Add(1)
			go send(second)
		}
	}
}

// rateLimitedError is a 429 response with its Retry-After hint.
type rateLimitedError struct {
	backend string
	after   time.Duration
}

func (e *rateLimitedError) Error() string {
	return fmt.Sprintf("fleet: %s rate-limited (retry after %s)", e.backend, e.after)
}

// runCfgReply mirrors simserver's POST /v1/runcfg response.
type runCfgReply struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
	Digest string      `json:"digest"`
}

// parseRetryAfter hardens Retry-After handling: integer seconds and
// HTTP-date forms are accepted, everything else — negative values,
// past dates, garbage — collapses to 0 (normal backoff), and all
// results are capped at max so a hostile or buggy backend cannot stall
// a shard for hours.
func parseRetryAfter(s string, now time.Time, max time.Duration) time.Duration {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs <= 0 {
			return 0
		}
		if secs > int(max/time.Second) {
			return max
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(s); err == nil {
		d := t.Sub(now)
		if d <= 0 {
			return 0
		}
		if d > max {
			return max
		}
		return d
	}
	return 0
}

// send performs one POST /v1/runcfg against backend b, maintaining its
// load gauge, breaker, and latency stats.
func (c *Client) send(ctx context.Context, b *backend, body []byte) (core.Result, error) {
	var zero core.Result
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Add(1)

	rctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, b.url+"/v1/runcfg", bytes.NewReader(body))
	if err != nil {
		return zero, fmt.Errorf("fleet: %s: %w", b.url, err)
	}
	req.Header.Set("Content-Type", "application/json")

	start := c.cfg.now()
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Caller cancelled (sweep interrupt or a hedge race loss):
			// not the backend's fault, so the breaker is untouched.
			return zero, ctx.Err()
		}
		b.errors.Add(1)
		b.breaker.failure()
		return zero, fmt.Errorf("fleet: %s: %w", b.url, err)
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
		var reply runCfgReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			b.errors.Add(1)
			b.breaker.failure()
			return zero, fmt.Errorf("fleet: %s: decoding response: %w", b.url, err)
		}
		// End-to-end integrity: the digest the backend claims must match
		// the digest recomputed over the bytes we actually decoded. A
		// mismatch is corruption (in flight or at the backend) and is
		// retryable on another backend; the body field wins over the
		// header, and a backend too old to send either is accepted.
		claimed := reply.Digest
		if claimed == "" {
			claimed = resp.Header.Get("X-Result-Digest")
		}
		if claimed != "" {
			if got := simrun.ResultDigest(reply.Result); got != claimed {
				b.errors.Add(1)
				b.breaker.failure()
				c.noteDigestMismatch(b)
				return zero, fmt.Errorf("fleet: %s: result digest mismatch (claimed %.12s, recomputed %.12s): corrupted response", b.url, claimed, got)
			}
		}
		b.breaker.success()
		b.observe(c.cfg.now().Sub(start).Microseconds())
		return reply.Result, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// The backend is healthy, just saturated: honour Retry-After
		// (validated and capped) without charging the breaker.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		b.ratelim.Add(1)
		c.metrics.rateLimited.Add(1)
		after := parseRetryAfter(resp.Header.Get("Retry-After"), c.cfg.now(), c.cfg.RetryAfterMax)
		return zero, &rateLimitedError{backend: b.url, after: after}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		b.errors.Add(1)
		b.breaker.failure()
		return zero, fmt.Errorf("fleet: %s: status %d: %s", b.url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// maybeAudit implements the sampled audit mode: a deterministic
// fraction of successful runs (AuditRate, sampled by run index from
// AuditSeed) is re-dispatched to a second backend and the two result
// digests compared. Agreement returns the primary result untouched.
// Disagreement escalates to a third backend for a majority vote: the
// minority backend is quarantined as byzantine — it returned
// internally-consistent but wrong bytes, which digest verification
// alone can never catch — and the majority result is returned, so the
// sweep's output stays correct even though a poisoned backend served
// the original request. Audit dispatches never recurse (they bypass
// Run) and audit failures never fail the run; auditing is a detector,
// not a gate.
func (c *Client) maybeAudit(ctx context.Context, served *backend, body []byte, res core.Result) core.Result {
	if c.cfg.AuditRate <= 0 || served == nil {
		return res
	}
	n := c.auditN.Add(1)
	if rand.New(rand.NewPCG(c.cfg.AuditSeed, n)).Float64() >= c.cfg.AuditRate {
		return res
	}
	second := c.pick(served)
	if second == nil {
		return res // nobody to cross-check against
	}
	c.metrics.audits.Add(1)
	res2, err := c.send(ctx, second, body)
	if err != nil {
		return res // best-effort: an unavailable auditor is not evidence
	}
	d1, d2 := simrun.ResultDigest(res), simrun.ResultDigest(res2)
	if d1 == d2 {
		return res
	}
	c.metrics.auditDisagree.Add(1)
	third := c.pick(served, second)
	if third == nil {
		c.metrics.auditInconclusive.Add(1)
		fmt.Fprintf(c.cfg.Log, "fleet: audit disagreement between %s and %s with no third backend to vote; keeping the primary result\n",
			served.url, second.url)
		return res
	}
	res3, err := c.send(ctx, third, body)
	if err != nil {
		c.metrics.auditInconclusive.Add(1)
		fmt.Fprintf(c.cfg.Log, "fleet: audit disagreement between %s and %s; tiebreaker %s failed (%v); keeping the primary result\n",
			served.url, second.url, third.url, err)
		return res
	}
	switch simrun.ResultDigest(res3) {
	case d1:
		c.quarantine(second, fmt.Sprintf("audit minority: result disagrees with %s and %s", served.url, third.url))
		return res
	case d2:
		c.quarantine(served, fmt.Sprintf("audit minority: result disagrees with %s and %s", second.url, third.url))
		return res2
	default:
		c.metrics.auditInconclusive.Add(1)
		fmt.Fprintf(c.cfg.Log, "fleet: three-way audit disagreement across %s, %s, %s; no majority, keeping the primary result\n",
			served.url, second.url, third.url)
		return res
	}
}

// Executor adapts the client to internal/runner: jobs whose payload is
// a transportable core.Config are dispatched to the pool; anything else
// — and any job the pool cannot take (ErrNoBackends) — runs locally via
// the job's own Run closure, so a sweep always completes.
func (c *Client) Executor() runner.Executor[core.Result] {
	return executor{c}
}

type executor struct{ c *Client }

func (e executor) Execute(ctx context.Context, j runner.Job[core.Result]) (core.Result, error) {
	cfg, ok := j.Payload.(core.Config)
	if !ok || cfg.Programs != nil {
		// No transportable payload (or live program state): local run.
		return j.Run(ctx)
	}
	res, err := e.c.Run(ctx, cfg)
	if errors.Is(err, ErrNoBackends) {
		e.c.metrics.localFallback.Add(1)
		return j.Run(ctx)
	}
	return res, err
}
