// Package fleet is the client-side distributed execution fabric that
// lets one sweep fan out across many smtsimd backends: a backend
// registry with periodic /healthz probing, least-loaded dispatch of
// simulation configs to POST /v1/runcfg, a per-backend circuit breaker,
// retries with exponential backoff + jitter that re-route to a healthy
// backend, optional hedged requests to cut tail latency, and a
// local-execution fallback when the pool is empty or fully broken.
//
// Simulations are deterministic functions of their config and the wire
// format is the config itself (not a lossy re-encoding), so results are
// byte-identical to a local run no matter which backend served each
// job. The Executor adapter plugs the client into internal/runner, so
// checkpoint/resume, SIGINT drain, and progress/ETA work identically
// for remote sweeps.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
)

// Config tunes a fleet client. Zero values select the documented
// defaults.
type Config struct {
	// Backends are smtsimd base addresses ("host:port" or full URLs).
	// An empty pool makes every job fall back to local execution.
	Backends []string
	// MaxRetries bounds re-dispatches per job after the first attempt;
	// < 0 disables retries, 0 selects 3. Retries prefer a different
	// backend than the one that just failed.
	MaxRetries int
	// Hedge enables hedged requests: when the primary has not answered
	// within HedgeDelay, the same config is sent to a second backend
	// and the first response wins (the loser is cancelled).
	Hedge bool
	// HedgeDelay is the hedging trigger; <= 0 selects 250ms.
	HedgeDelay time.Duration
	// ProbeInterval is the /healthz probing period; 0 selects 5s,
	// negative disables probing (backends are assumed up until
	// requests fail).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit; <= 0 selects 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before
	// half-opening for a trial request; <= 0 selects 5s.
	BreakerCooldown time.Duration
	// BackoffBase / BackoffMax bound the full-jitter retry backoff;
	// <= 0 select 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RequestTimeout bounds one dispatch (queueing + simulation on the
	// backend); <= 0 selects 5m.
	RequestTimeout time.Duration
	// ProbeTimeout bounds one health probe; <= 0 selects 2s.
	ProbeTimeout time.Duration
	// HTTPClient overrides the transport; nil selects a dedicated
	// client (timeouts come from request contexts).
	HTTPClient *http.Client
	// Log receives operational warnings (backends going down or
	// recovering, version skew across the pool); nil discards them.
	Log io.Writer

	// sleep and now are injectable for tests (in-package only).
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time
}

// ErrNoBackends reports that no backend could accept the job: the pool
// is empty, every backend is down, or every circuit is open. Callers
// (the Executor adapter, cmd/adts-sweep) fall back to local execution.
var ErrNoBackends = errors.New("fleet: no healthy backend available")

// Client dispatches simulation configs across a pool of smtsimd
// backends. Create with New, stop the health prober with Close.
type Client struct {
	cfg      Config
	http     *http.Client
	backends []*backend
	metrics  clientMetrics

	stopProbe context.CancelFunc
	probeDone chan struct{}

	skewMu   sync.Mutex
	lastSkew string // last logged version-skew fingerprint
}

// New builds a client, normalizes the backend addresses, and starts the
// health prober (unless probing is disabled or the pool is empty).
func New(cfg Config) (*Client, error) {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 250 * time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Minute
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			if d <= 0 {
				return ctx.Err()
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}

	c := &Client{cfg: cfg, http: cfg.HTTPClient}
	if c.http == nil {
		c.http = &http.Client{}
	}
	seen := make(map[string]bool)
	for _, raw := range cfg.Backends {
		u, err := normalizeURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			continue
		}
		seen[u] = true
		c.backends = append(c.backends, &backend{
			url:     u,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		})
	}

	if len(c.backends) > 0 && cfg.ProbeInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		c.stopProbe = cancel
		c.probeDone = make(chan struct{})
		go c.probeLoop(ctx)
	}
	return c, nil
}

// Close stops the health prober. In-flight Run calls are unaffected.
func (c *Client) Close() {
	if c.stopProbe != nil {
		c.stopProbe()
		<-c.probeDone
	}
}

// Backends reports the pool size.
func (c *Client) Backends() int { return len(c.backends) }

// Healthy reports how many backends are currently routable (probe up
// and circuit not open).
func (c *Client) Healthy() int {
	n := 0
	for _, b := range c.backends {
		if up, _ := b.probed(); up && b.breaker.state() != BreakerOpen {
			n++
		}
	}
	return n
}

// Run dispatches one simulation config to the pool and returns its
// result. It retries with exponential backoff + jitter, re-routing to a
// different backend after a failure and honouring Retry-After on 429.
// When no backend can accept the job it returns ErrNoBackends (callers
// fall back to local execution); when retries are exhausted it returns
// the last dispatch error.
func (c *Client) Run(ctx context.Context, simCfg core.Config) (core.Result, error) {
	var zero core.Result
	body, err := json.Marshal(simCfg)
	if err != nil {
		return zero, fmt.Errorf("fleet: encoding config: %w", err)
	}
	var lastErr error
	var exclude *backend
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		b := c.pick(exclude)
		if b == nil {
			if lastErr != nil {
				return zero, fmt.Errorf("%w (last dispatch error: %v)", ErrNoBackends, lastErr)
			}
			return zero, ErrNoBackends
		}
		if attempt > 0 {
			c.metrics.retried.Add(1)
		}
		res, err := c.dispatch(ctx, b, body)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		lastErr = err
		if attempt >= c.cfg.MaxRetries {
			return zero, fmt.Errorf("fleet: %d dispatch attempt(s) exhausted: %w", attempt+1, lastErr)
		}
		exclude = b
		delay := c.backoff(attempt)
		var rl *rateLimitedError
		if errors.As(err, &rl) && rl.after > 0 {
			delay = rl.after
		}
		if err := c.cfg.sleep(ctx, delay); err != nil {
			return zero, err
		}
	}
}

// backoff returns a full-jitter delay for the given attempt number:
// uniform in (0, min(BackoffMax, BackoffBase<<attempt)].
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.cfg.BackoffBase << uint(attempt)
	if ceil > c.cfg.BackoffMax || ceil <= 0 {
		ceil = c.cfg.BackoffMax
	}
	return time.Duration(rand.Int64N(int64(ceil))) + 1
}

// pick selects the least-loaded routable backend, preferring any
// backend other than exclude (the one that just failed). Ties break by
// URL so selection is deterministic under equal load. The half-open
// trial slot is only consumed for the backend actually returned.
func (c *Client) pick(exclude *backend) *backend {
	type cand struct {
		b    *backend
		load int64
	}
	var cands []cand
	for _, b := range c.backends {
		if b == exclude {
			continue
		}
		if up, _ := b.probed(); !up {
			continue
		}
		if b.breaker.state() == BreakerOpen {
			continue
		}
		cands = append(cands, cand{b, b.inflight.Load()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].b.url < cands[j].b.url
	})
	for _, cd := range cands {
		if cd.b.breaker.allow() {
			return cd.b
		}
	}
	// Last resort: a pool of one (or all alternatives broken) may retry
	// the backend that just failed.
	if exclude != nil {
		if up, _ := exclude.probed(); up && exclude.breaker.allow() {
			return exclude
		}
	}
	return nil
}

// dispatch sends one config to backend b, optionally racing a hedged
// copy on a second backend. Exactly one result is returned per call;
// the losing request is cancelled.
func (c *Client) dispatch(ctx context.Context, b *backend, body []byte) (core.Result, error) {
	c.metrics.dispatched.Add(1)
	if !c.cfg.Hedge || len(c.backends) < 2 {
		return c.send(ctx, b, body)
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser (and any stragglers) on return

	type outcome struct {
		res core.Result
		err error
		b   *backend
	}
	out := make(chan outcome, 2)
	send := func(to *backend) {
		res, err := c.send(hctx, to, body)
		out <- outcome{res, err, to}
	}
	go send(b)

	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	launched, hedged := 1, false
	var firstErr error
	for {
		select {
		case o := <-out:
			if o.err == nil {
				if hedged && o.b != b {
					c.metrics.hedgeWins.Add(1)
				}
				return o.res, nil
			}
			launched--
			if firstErr == nil {
				firstErr = o.err
			}
			if launched == 0 {
				return core.Result{}, firstErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			second := c.pick(b)
			if second == nil {
				continue // nowhere to hedge; keep waiting on the primary
			}
			hedged = true
			launched++
			c.metrics.hedged.Add(1)
			c.metrics.dispatched.Add(1)
			go send(second)
		}
	}
}

// rateLimitedError is a 429 response with its Retry-After hint.
type rateLimitedError struct {
	backend string
	after   time.Duration
}

func (e *rateLimitedError) Error() string {
	return fmt.Sprintf("fleet: %s rate-limited (retry after %s)", e.backend, e.after)
}

// runCfgReply mirrors simserver's POST /v1/runcfg response.
type runCfgReply struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
}

// send performs one POST /v1/runcfg against backend b, maintaining its
// load gauge, breaker, and latency stats.
func (c *Client) send(ctx context.Context, b *backend, body []byte) (core.Result, error) {
	var zero core.Result
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Add(1)

	rctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, b.url+"/v1/runcfg", bytes.NewReader(body))
	if err != nil {
		return zero, fmt.Errorf("fleet: %s: %w", b.url, err)
	}
	req.Header.Set("Content-Type", "application/json")

	start := c.cfg.now()
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Caller cancelled (sweep interrupt or a hedge race loss):
			// not the backend's fault, so the breaker is untouched.
			return zero, ctx.Err()
		}
		b.errors.Add(1)
		b.breaker.failure()
		return zero, fmt.Errorf("fleet: %s: %w", b.url, err)
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
		var reply runCfgReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			b.errors.Add(1)
			b.breaker.failure()
			return zero, fmt.Errorf("fleet: %s: decoding response: %w", b.url, err)
		}
		b.breaker.success()
		b.observe(c.cfg.now().Sub(start).Microseconds())
		return reply.Result, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// The backend is healthy, just saturated: honour Retry-After
		// without charging the breaker.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		b.ratelim.Add(1)
		c.metrics.rateLimited.Add(1)
		after := time.Duration(0)
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && secs >= 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return zero, &rateLimitedError{backend: b.url, after: after}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		b.errors.Add(1)
		b.breaker.failure()
		return zero, fmt.Errorf("fleet: %s: status %d: %s", b.url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// Executor adapts the client to internal/runner: jobs whose payload is
// a transportable core.Config are dispatched to the pool; anything else
// — and any job the pool cannot take (ErrNoBackends) — runs locally via
// the job's own Run closure, so a sweep always completes.
func (c *Client) Executor() runner.Executor[core.Result] {
	return executor{c}
}

type executor struct{ c *Client }

func (e executor) Execute(ctx context.Context, j runner.Job[core.Result]) (core.Result, error) {
	cfg, ok := j.Payload.(core.Config)
	if !ok || cfg.Programs != nil {
		// No transportable payload (or live program state): local run.
		return j.Run(ctx)
	}
	res, err := e.c.Run(ctx, cfg)
	if errors.Is(err, ErrNoBackends) {
		e.c.metrics.localFallback.Add(1)
		return j.Run(ctx)
	}
	return res, err
}
