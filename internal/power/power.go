// Package power is an architectural-level, activity-based energy model
// for the SMT core, in the spirit of ALPSS — the power simulator the
// paper's SimpleSMT simulator underlies (Lee & Gaudiot, TR-02-04) — and
// of Wattch-class models generally: each microarchitectural event
// (fetch, rename, issue, cache access, predictor access, commit) costs
// a fixed per-event energy, plus a static per-cycle term.
//
// Absolute joules are not meaningful for a synthetic substrate; the
// model's purpose is *relative* comparison — e.g. how much fetch/decode
// energy a scheduling policy wastes on wrong-path instructions, or the
// energy-per-instruction cost of the detector thread's idle-slot
// execution.
package power

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/counters"
	"repro/internal/pipeline"
)

// Model holds per-event energies in arbitrary consistent units
// (think pJ). DefaultModel's ratios follow the usual architectural
// breakdowns: caches and the out-of-order window dominate, DRAM
// accesses are an order of magnitude above SRAM.
type Model struct {
	FetchPerInst    float64 // fetch + decode datapath, per instruction
	RenamePerInst   float64 // rename tables + ROB/LSQ allocation
	WindowPerInst   float64 // instruction-queue write + wakeup + select
	ExecPerInst     float64 // functional-unit op (average)
	CommitPerInst   float64 // retirement datapath
	L1AccessEnergy  float64 // per L1 (I or D) access
	L2AccessEnergy  float64 // per L2 access
	MemAccessEnergy float64 // per DRAM access
	PredictorAccess float64 // direction predictor + BTB, per branch
	StaticPerCycle  float64 // clock tree + leakage per cycle
}

// DefaultModel returns the reference energy ratios.
func DefaultModel() Model {
	return Model{
		FetchPerInst:    4,
		RenamePerInst:   3,
		WindowPerInst:   6,
		ExecPerInst:     5,
		CommitPerInst:   2,
		L1AccessEnergy:  8,
		L2AccessEnergy:  40,
		MemAccessEnergy: 400,
		PredictorAccess: 3,
		StaticPerCycle:  25,
	}
}

// Report is the energy analysis of one simulation window.
type Report struct {
	Cycles    int64
	Committed uint64

	Total float64 // total energy, model units
	// EPI is energy per committed instruction — the efficiency metric.
	EPI float64
	// Power is energy per cycle.
	Power float64
	// WrongPath is the energy spent fetching, renaming and executing
	// instructions that were later squashed.
	WrongPath     float64
	WrongPathFrac float64
	// EDP is the energy-delay product (Total x Cycles), the usual
	// combined figure of merit.
	EDP float64

	// Breakdown maps component -> energy.
	Breakdown map[string]float64
}

// Analyze computes the report for a machine's whole history. Use
// AnalyzeDelta with counter snapshots for a sub-window.
func (mo Model) Analyze(m *pipeline.Machine) Report {
	n := m.NumThreads()
	var cum counters.Counters
	for i := 0; i < n; i++ {
		cum.Add(m.State(i).Cum)
	}
	h := m.Hierarchy()
	l1 := h.L1I.TotalStats()
	l1d := h.L1D.TotalStats()
	l2 := h.L2.TotalStats()
	return mo.analyze(m.Now(), cum,
		l1.Hits+l1.Misses+l1d.Hits+l1d.Misses,
		l2.Hits+l2.Misses,
		h.Mem.Accesses)
}

// AnalyzeDelta computes a report for a window given the cycle span,
// summed counter deltas, and cache access deltas.
func (mo Model) AnalyzeDelta(cycles int64, cum counters.Counters, l1Accesses, l2Accesses, memAccesses uint64) Report {
	return mo.analyze(cycles, cum, l1Accesses, l2Accesses, memAccesses)
}

func (mo Model) analyze(cycles int64, cum counters.Counters, l1Acc, l2Acc, memAcc uint64) Report {
	r := Report{
		Cycles:    cycles,
		Committed: cum.Committed,
		Breakdown: make(map[string]float64, 8),
	}
	fetched := float64(cum.Fetched)
	wrong := float64(cum.WrongFetched)

	front := fetched * (mo.FetchPerInst + mo.RenamePerInst + mo.WindowPerInst)
	exec := fetched * mo.ExecPerInst // squashed work executes too (approximation)
	commit := float64(cum.Committed) * mo.CommitPerInst
	caches := float64(l1Acc)*mo.L1AccessEnergy + float64(l2Acc)*mo.L2AccessEnergy + float64(memAcc)*mo.MemAccessEnergy
	pred := float64(cum.Branches+cum.Mispredicts) * mo.PredictorAccess
	static := float64(cycles) * mo.StaticPerCycle

	r.Breakdown["front-end"] = front
	r.Breakdown["execute"] = exec
	r.Breakdown["commit"] = commit
	r.Breakdown["caches"] = caches
	r.Breakdown["predictor"] = pred
	r.Breakdown["static"] = static

	r.Total = front + exec + commit + caches + pred + static
	if cum.Committed > 0 {
		r.EPI = r.Total / float64(cum.Committed)
	}
	if cycles > 0 {
		r.Power = r.Total / float64(cycles)
	}
	if fetched > 0 {
		// Wrong-path instructions consume the dynamic front-end and
		// execute energy in proportion to their fetch share.
		r.WrongPath = (front + exec) * (wrong / fetched)
		r.WrongPathFrac = r.WrongPath / r.Total
	}
	r.EDP = r.Total * float64(cycles)
	return r
}

// String renders the report compactly.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "energy %.3g units over %d cycles (%d committed)\n", r.Total, r.Cycles, r.Committed)
	fmt.Fprintf(&b, "  EPI %.2f, power %.2f/cycle, wrong-path %.1f%%, EDP %.3g\n",
		r.EPI, r.Power, 100*r.WrongPathFrac, r.EDP)
	keys := make([]string, 0, len(r.Breakdown))
	for k := range r.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-10s %6.1f%%\n", k, 100*r.Breakdown[k]/r.Total)
	}
	return b.String()
}
