package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/counters"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func TestAnalyzeMachine(t *testing.T) {
	mix, _ := trace.MixByName("kitchen-sink")
	progs, _ := mix.Programs(8, 1)
	m := pipeline.New(pipeline.DefaultConfig(), progs, 1)
	m.Run(20000)
	r := DefaultModel().Analyze(m)
	if r.Total <= 0 || r.EPI <= 0 || r.Power <= 0 || r.EDP <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	sum := 0.0
	for _, v := range r.Breakdown {
		sum += v
	}
	if math.Abs(sum-r.Total) > r.Total*1e-9 {
		t.Fatalf("breakdown sums to %v, total %v", sum, r.Total)
	}
	if r.WrongPathFrac <= 0 || r.WrongPathFrac > 0.5 {
		t.Fatalf("wrong-path energy fraction %.3f implausible", r.WrongPathFrac)
	}
	if !strings.Contains(r.String(), "EPI") {
		t.Fatal("report rendering incomplete")
	}
}

func TestMoreWrongPathCostsMoreEnergyPerInst(t *testing.T) {
	run := func(wrongPath bool) Report {
		mix, _ := trace.MixByName("int-branchy")
		progs, _ := mix.Programs(8, 1)
		cfg := pipeline.DefaultConfig()
		cfg.WrongPath = wrongPath
		m := pipeline.New(cfg, progs, 1)
		m.Run(30000)
		return DefaultModel().Analyze(m)
	}
	with := run(true)
	without := run(false)
	if with.WrongPath <= without.WrongPath {
		t.Fatalf("wrong-path energy %v should exceed ablated %v", with.WrongPath, without.WrongPath)
	}
}

func TestAnalyzeDeltaScaling(t *testing.T) {
	// Doubling every activity doubles total energy (linearity).
	c := counters.Counters{Fetched: 1000, WrongFetched: 100, Committed: 800, Branches: 100}
	mo := DefaultModel()
	a := mo.AnalyzeDelta(1000, c, 400, 50, 5)
	c2 := c
	c2.Add(c)
	b := mo.AnalyzeDelta(2000, c2, 800, 100, 10)
	if math.Abs(b.Total-2*a.Total) > 1e-9 {
		t.Fatalf("energy not linear: %v vs 2x%v", b.Total, a.Total)
	}
	// EPI is scale-invariant.
	if math.Abs(a.EPI-b.EPI) > 1e-12 {
		t.Fatalf("EPI changed under scaling: %v vs %v", a.EPI, b.EPI)
	}
}

// TestEnergyNonNegative: any counter values produce non-negative energy.
func TestEnergyNonNegative(t *testing.T) {
	mo := DefaultModel()
	f := func(fetched, wrong, committed, branches uint32, cycles uint16) bool {
		c := counters.Counters{
			Fetched:      uint64(fetched),
			WrongFetched: uint64(wrong),
			Committed:    uint64(committed),
			Branches:     uint64(branches),
		}
		r := mo.AnalyzeDelta(int64(cycles), c, uint64(fetched)/2, uint64(fetched)/8, uint64(fetched)/64)
		return r.Total >= 0 && r.WrongPath >= 0 && r.EDP >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWindow(t *testing.T) {
	r := DefaultModel().AnalyzeDelta(0, counters.Counters{}, 0, 0, 0)
	if r.EPI != 0 || r.Power != 0 || r.Total != 0 {
		t.Fatalf("zero window produced %+v", r)
	}
}
