package dtvm

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/policy"
)

// Result is one kernel activation's output.
type Result struct {
	// Switch and NewPolicy mirror detector.Decision.
	Switch    bool
	NewPolicy policy.Policy
	Keep      bool // the kernel explicitly decided not to switch
	// Clogging flags per thread.
	Clogging []bool
	// Steps is the number of VM instructions executed — the measured
	// detector-thread work, fed to the pipeline's leftover-slot model.
	Steps int
}

// fix converts a rate to the VM's fixed-point thousandths.
func fix(v float64) int64 { return int64(v * 1000) }

// Exec runs the kernel once against a quantum snapshot. incumbent is the
// currently engaged policy, prevIPC the previous quantum's IPC (for
// gradient kernels).
func (p *Program) Exec(q detector.QuantumStats, incumbent policy.Policy, prevIPC float64) (Result, error) {
	var regs [NumRegs]int64
	res := Result{Clogging: make([]bool, len(q.PerThread))}

	readC := func(c Counter) int64 {
		switch c {
		case CtrIPC:
			return fix(q.IPC)
		case CtrL1Miss:
			return fix(q.L1MissRate)
		case CtrLSQFull:
			return fix(q.LSQFullRate)
		case CtrMispred:
			return fix(q.MispredRate)
		case CtrCondBr:
			return fix(q.CondBrRate)
		case CtrPrevIPC:
			return fix(prevIPC)
		case CtrIncumbent:
			return int64(incumbent)
		case CtrNumThreads:
			return int64(len(q.PerThread))
		default:
			return 0
		}
	}
	readT := func(c Counter, tid int64) int64 {
		if tid < 0 || tid >= int64(len(q.PerThread)) {
			return 0
		}
		switch c {
		case CtrThPreIssue:
			return int64(q.PerThread[tid].PreIssue)
		case CtrThCommitted:
			return int64(q.PerThread[tid].Committed)
		default:
			return 0
		}
	}

	pc := 0
	for steps := 0; steps < MaxSteps; steps++ {
		if pc < 0 || pc >= len(p.Insts) {
			return res, fmt.Errorf("dtvm: pc %d out of range", pc)
		}
		in := p.Insts[pc]
		res.Steps++
		pc++
		switch in.Op {
		case OpNop:
		case OpLoadC:
			regs[in.RD] = readC(in.Ctr)
		case OpLoadT:
			regs[in.RD] = readT(in.Ctr, regs[in.RS])
		case OpLoadI:
			regs[in.RD] = in.Imm
		case OpMov:
			regs[in.RD] = regs[in.RS]
		case OpAdd:
			regs[in.RD] += regs[in.RS]
		case OpSub:
			regs[in.RD] -= regs[in.RS]
		case OpMul:
			regs[in.RD] = regs[in.RD] * regs[in.RS] / 1000
		case OpDiv:
			if regs[in.RS] == 0 {
				regs[in.RD] = 0
			} else {
				regs[in.RD] = regs[in.RD] * 1000 / regs[in.RS]
			}
		case OpBlt:
			if regs[in.RD] < regs[in.RS] {
				pc = in.Target
			}
		case OpBge:
			if regs[in.RD] >= regs[in.RS] {
				pc = in.Target
			}
		case OpBeq:
			if regs[in.RD] == regs[in.RS] {
				pc = in.Target
			}
		case OpJmp:
			pc = in.Target
		case OpSetPol:
			pol, err := policy.Parse(in.PolName)
			if err != nil {
				return res, err
			}
			if pol != incumbent {
				res.Switch = true
				res.NewPolicy = pol
			} else {
				res.Keep = true
			}
		case OpKeep:
			res.Keep = true
		case OpSetClog:
			tid := regs[in.RS]
			if tid >= 0 && tid < int64(len(res.Clogging)) {
				res.Clogging[tid] = true
			}
		case OpHalt:
			return res, nil
		default:
			return res, fmt.Errorf("dtvm: bad opcode %d", in.Op)
		}
	}
	return res, fmt.Errorf("dtvm: kernel exceeded %d steps (missing halt?)", MaxSteps)
}
