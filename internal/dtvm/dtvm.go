// Package dtvm is the programmable detector thread: a tiny register
// virtual machine in which the ADTS decision kernels are written as
// software, reproducing the paper's central implementation argument —
// "although the per-thread status indicators, thread control flags and
// thread selection units are fixed in hardware, we can control the
// thread control behavior around those hardware resources by writing a
// different program code for the detector thread" (§4), with the kernel
// structure of Figure 3 (East: ... IPC < threshold -> Identify_Clogging
// -> Determine_NewPolicy -> Policy_Switch).
//
// A Program is assembled from a small textual ISA. Executing it against
// a QuantumStats snapshot yields the same Decision the functional
// internal/detector model produces — plus the *measured* instruction
// count, which feeds pipeline.Machine.ScheduleDetectorJob so the policy
// switch lands only when the detector thread's leftover-slot execution
// finishes: the cost model stops being an estimate and becomes the cost
// of the actual kernel.
package dtvm

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a VM opcode.
type Op uint8

// The instruction set. The DT's data accesses are "mostly to special
// registers such as the per-thread counters" (§3): LOADC reads the
// hardware status-counter file, the ALU ops work on 16 general
// registers, SETPOL/SETCLOG write the thread-control interface.
const (
	OpNop     Op = iota
	OpLoadC      // loadc rD, counter       rD = counters[counter]
	OpLoadI      // loadi rD, imm            rD = imm (fixed-point 1/1000)
	OpLoadT      // loadt rD, counter, rI    rD = perThread[rI].counter
	OpMov        // mov rD, rS
	OpAdd        // add rD, rS
	OpSub        // sub rD, rS
	OpMul        // mul rD, rS               (fixed-point)
	OpDiv        // div rD, rS               (fixed-point; 0 divisor -> 0)
	OpBlt        // blt rA, rB, label        branch if rA < rB
	OpBge        // bge rA, rB, label
	OpBeq        // beq rA, rB, label
	OpJmp        // jmp label
	OpSetPol     // setpol name              request policy switch
	OpKeep       // keep                     explicit no-switch
	OpSetClog    // setclog rI               flag thread rI as clogging
	OpHalt       // halt
	numOps
)

// Counter names the special registers LOADC can read: per-quantum
// aggregate rates in fixed-point thousandths, plus scalar state.
type Counter uint8

// The special-register file.
const (
	CtrIPC         Counter = iota // committed IPC x1000
	CtrL1Miss                     // L1 misses/cycle x1000
	CtrLSQFull                    // LSQ-full events/cycle x1000
	CtrMispred                    // mispredicts/cycle x1000
	CtrCondBr                     // conditional branches/cycle x1000
	CtrPrevIPC                    // previous quantum's IPC x1000 (gradient)
	CtrIncumbent                  // current policy id
	CtrNumThreads                 // hardware contexts
	CtrThPreIssue                 // per-thread: pre-issue occupancy (LOADT)
	CtrThCommitted                // per-thread: committed this quantum (LOADT)
	numCounters
)

var counterNames = map[string]Counter{
	"ipc": CtrIPC, "l1miss": CtrL1Miss, "lsqfull": CtrLSQFull,
	"mispred": CtrMispred, "condbr": CtrCondBr, "previpc": CtrPrevIPC,
	"incumbent": CtrIncumbent, "nthreads": CtrNumThreads,
	"th.preissue": CtrThPreIssue, "th.committed": CtrThCommitted,
}

// Inst is one assembled VM instruction.
type Inst struct {
	Op      Op
	RD, RS  uint8
	Ctr     Counter
	Imm     int64
	Target  int // resolved branch target
	PolName string
}

// Program is an assembled detector-thread kernel.
type Program struct {
	Insts  []Inst
	Source string
	labels map[string]int
}

// NumRegs is the size of the VM register file.
const NumRegs = 16

// MaxSteps bounds one activation; a kernel that exceeds it is broken
// (the real DT must fit its cycle budget).
const MaxSteps = 16384

// Assemble parses the textual form. Syntax, one instruction per line:
//
//	; comment
//	label:
//	loadc r1, ipc
//	loadi r2, 2000          ; 2.000 in fixed-point
//	blt   r1, r2, low
//	keep
//	halt
//	low:
//	setpol L1MISSCOUNT
//	halt
func Assemble(src string) (*Program, error) {
	p := &Program{Source: src, labels: map[string]int{}}
	type fixup struct {
		inst  int
		label string
		line  int
	}
	var fixups []fixup

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if _, dup := p.labels[label]; dup {
				return nil, fmt.Errorf("dtvm: line %d: duplicate label %q", ln+1, label)
			}
			p.labels[label] = len(p.Insts)
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		op := strings.ToLower(fields[0])
		args := fields[1:]
		inst := Inst{}
		bad := func(msg string) error {
			return fmt.Errorf("dtvm: line %d: %s: %q", ln+1, msg, raw)
		}
		reg := func(s string) (uint8, error) {
			if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
				return 0, bad("expected register")
			}
			v, err := strconv.Atoi(s[1:])
			if err != nil || v < 0 || v >= NumRegs {
				return 0, bad("bad register")
			}
			return uint8(v), nil
		}
		need := func(n int) error {
			if len(args) != n {
				return bad(fmt.Sprintf("expected %d operands", n))
			}
			return nil
		}
		var err error
		switch op {
		case "nop":
			inst.Op = OpNop
		case "halt":
			inst.Op = OpHalt
		case "keep":
			inst.Op = OpKeep
		case "loadc":
			if err = need(2); err == nil {
				inst.Op = OpLoadC
				if inst.RD, err = reg(args[0]); err == nil {
					ctr, ok := counterNames[strings.ToLower(args[1])]
					if !ok {
						err = bad("unknown counter")
					}
					inst.Ctr = ctr
				}
			}
		case "loadt":
			if err = need(3); err == nil {
				inst.Op = OpLoadT
				if inst.RD, err = reg(args[0]); err == nil {
					ctr, ok := counterNames[strings.ToLower(args[1])]
					if !ok {
						err = bad("unknown counter")
					}
					inst.Ctr = ctr
					if err == nil {
						inst.RS, err = reg(args[2])
					}
				}
			}
		case "loadi":
			if err = need(2); err == nil {
				inst.Op = OpLoadI
				if inst.RD, err = reg(args[0]); err == nil {
					inst.Imm, err = strconv.ParseInt(args[1], 10, 64)
					if err != nil {
						err = bad("bad immediate")
					}
				}
			}
		case "mov", "add", "sub", "mul", "div":
			if err = need(2); err == nil {
				switch op {
				case "mov":
					inst.Op = OpMov
				case "add":
					inst.Op = OpAdd
				case "sub":
					inst.Op = OpSub
				case "mul":
					inst.Op = OpMul
				case "div":
					inst.Op = OpDiv
				}
				if inst.RD, err = reg(args[0]); err == nil {
					inst.RS, err = reg(args[1])
				}
			}
		case "blt", "bge", "beq":
			if err = need(3); err == nil {
				switch op {
				case "blt":
					inst.Op = OpBlt
				case "bge":
					inst.Op = OpBge
				case "beq":
					inst.Op = OpBeq
				}
				if inst.RD, err = reg(args[0]); err == nil {
					if inst.RS, err = reg(args[1]); err == nil {
						fixups = append(fixups, fixup{len(p.Insts), args[2], ln + 1})
					}
				}
			}
		case "jmp":
			if err = need(1); err == nil {
				inst.Op = OpJmp
				fixups = append(fixups, fixup{len(p.Insts), args[0], ln + 1})
			}
		case "setpol":
			if err = need(1); err == nil {
				inst.Op = OpSetPol
				inst.PolName = args[0]
			}
		case "setclog":
			if err = need(1); err == nil {
				inst.Op = OpSetClog
				inst.RS, err = reg(args[0])
			}
		default:
			err = bad("unknown opcode")
		}
		if err != nil {
			return nil, err
		}
		p.Insts = append(p.Insts, inst)
	}
	for _, f := range fixups {
		tgt, ok := p.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("dtvm: line %d: undefined label %q", f.line, f.label)
		}
		p.Insts[f.inst].Target = tgt
	}
	if len(p.Insts) == 0 {
		return nil, fmt.Errorf("dtvm: empty program")
	}
	return p, nil
}
