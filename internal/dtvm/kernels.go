package dtvm

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/policy"
)

// Type1Source is the paper's simplest kernel (Figure 4): on a
// low-throughput quantum, unconditionally toggle ICOUNT <-> BRCOUNT.
// threshold is the IPC threshold m.
func Type1Source(threshold float64) string {
	return fmt.Sprintf(`; ADTS Type 1 kernel (Figure 4): unconditional toggle
east:
    loadc r1, ipc
    loadi r2, %d            ; m (fixed-point x1000)
    bge   r1, r2, ok        ; throughput fine: keep incumbent
    loadc r3, incumbent
    loadi r4, %d            ; ICOUNT
    beq   r3, r4, tobr
    setpol ICOUNT
    halt
tobr:
    setpol BRCOUNT
    halt
ok:
    keep
    halt
`, fix(threshold), int64(policy.ICOUNT))
}

// Type3Source is the condition-directed kernel of Figures 3 and 6,
// including the Identify_CloggingThreads scan over the per-thread
// status counters. cfg supplies the IPC threshold and the COND_MEM /
// COND_BR sub-condition thresholds; clogLimit is the pre-issue
// occupancy above which a thread is flagged.
func Type3Source(cfg detector.Config, clogLimit int) string {
	return fmt.Sprintf(`; ADTS Type 3 kernel (Figures 3 and 6)
east:
    loadc r1, ipc
    loadi r2, %d            ; m
    bge   r1, r2, ok

; ---- Identify_CloggingThreads ----
    loadi r3, 0             ; tid
    loadc r4, nthreads
    loadi r5, %d            ; clog pre-issue limit (plain count)
    loadi r15, 1
clogloop:
    bge   r3, r4, decide
    loadt r6, th.preissue, r3
    blt   r6, r5, clognext
    setclog r3
clognext:
    add   r3, r15
    jmp   clogloop

; ---- Determine_NewPolicy (Figure 6 FSM) ----
decide:
; condmem = l1miss > t1 || lsqfull > t2   -> r10 = 1/0
    loadi r10, 0
    loadc r6, l1miss
    loadi r7, %d            ; COND_MEM L1 threshold
    bge   r6, r7, memtrue0
    loadc r6, lsqfull
    loadi r7, %d            ; COND_MEM LSQ threshold
    blt   r6, r7, memdone
memtrue0:
    loadi r10, 1
memdone:
; condbr = mispred > t3 || condbr > t4    -> r11 = 1/0
    loadi r11, 0
    loadc r6, mispred
    loadi r7, %d            ; COND_BR mispredict threshold
    bge   r6, r7, brtrue0
    loadc r6, condbr
    loadi r7, %d            ; COND_BR branch-rate threshold
    blt   r6, r7, brdone
brtrue0:
    loadi r11, 1
brdone:
    loadi r14, 1
    loadc r8, incumbent
    loadi r9, %d            ; BRCOUNT
    beq   r8, r9, frombr
    loadi r9, %d            ; L1MISSCOUNT
    beq   r8, r9, froml1
; from ICOUNT: COND_MEM -> L1MISSCOUNT; else COND_BR -> BRCOUNT; else keep
    beq   r10, r14, gol1
    beq   r11, r14, gobr
    keep
    halt
frombr:
; from BRCOUNT: COND_MEM -> L1MISSCOUNT else ICOUNT
    beq   r10, r14, gol1
    setpol ICOUNT
    halt
froml1:
; from L1MISSCOUNT: COND_BR -> BRCOUNT else ICOUNT
    beq   r11, r14, gobr
    setpol ICOUNT
    halt
gol1:
    setpol L1MISSCOUNT
    halt
gobr:
    setpol BRCOUNT
    halt
ok:
    keep
    halt
`, fix(cfg.IPCThreshold), clogLimit,
		fix(cfg.CondMemL1Rate), fix(cfg.CondMemLSQRate),
		fix(cfg.CondBrMispRate), fix(cfg.CondBrRate),
		int64(policy.BRCOUNT), int64(policy.L1MISSCOUNT))
}

// Runner drives an assembled kernel across quanta, tracking the
// incumbent policy and the previous quantum's IPC exactly as the
// hardware/software contract would: the kernel is stateless, the
// special registers carry the state.
type Runner struct {
	Prog      *Program
	incumbent policy.Policy
	prevIPC   float64
	// TotalSteps accumulates executed VM instructions, the DT's
	// measured work.
	TotalSteps uint64
	Switches   uint64
}

// NewRunner wraps an assembled kernel, starting from ICOUNT.
func NewRunner(p *Program) *Runner {
	return &Runner{Prog: p, incumbent: policy.ICOUNT}
}

// Incumbent returns the policy the kernel currently believes engaged.
func (r *Runner) Incumbent() policy.Policy { return r.incumbent }

// OnQuantumEnd executes the kernel for one quantum snapshot and maps
// its output onto a detector.Decision whose Work is the measured VM
// instruction count.
func (r *Runner) OnQuantumEnd(q detector.QuantumStats) (detector.Decision, error) {
	out, err := r.Prog.Exec(q, r.incumbent, r.prevIPC)
	r.prevIPC = q.IPC
	if err != nil {
		return detector.Decision{}, err
	}
	r.TotalSteps += uint64(out.Steps)
	dec := detector.Decision{
		LowThroughput: out.Switch || anyTrue(out.Clogging),
		Switch:        out.Switch,
		NewPolicy:     out.NewPolicy,
		Clogging:      out.Clogging,
		Work:          out.Steps,
	}
	if out.Switch {
		r.incumbent = out.NewPolicy
		r.Switches++
	}
	return dec, nil
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}
