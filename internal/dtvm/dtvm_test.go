package dtvm

import (
	"testing"
	"testing/quick"

	"repro/internal/detector"
	"repro/internal/policy"
)

func q(ipc float64, condMem, condBr bool) detector.QuantumStats {
	s := detector.QuantumStats{
		Cycles:    8192,
		IPC:       ipc,
		PerThread: make([]detector.ThreadQuantum, 8),
	}
	if condMem {
		s.L1MissRate = 0.5
	}
	if condBr {
		s.MispredRate = 0.05
	}
	return s
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"bogus r1, r2",         // unknown opcode
		"loadc r99, ipc\nhalt", // bad register
		"loadc r1, nope\nhalt", // unknown counter
		"jmp nowhere\nhalt",    // undefined label
		"x:\nx:\nhalt",         // duplicate label
		"loadi r1\nhalt",       // operand count
		"loadi r1, zz\nhalt",   // bad immediate
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid program %q", src)
		}
	}
}

func TestArithmeticAndBranches(t *testing.T) {
	// Compute (3.0 * 2.0) / 4.0 = 1.5 in fixed-point and branch on it.
	src := `
    loadi r1, 3000
    loadi r2, 2000
    mul   r1, r2        ; 6.000
    loadi r2, 4000
    div   r1, r2        ; 1.500
    loadi r2, 1500
    beq   r1, r2, yes
    setpol BRCOUNT
    halt
yes:
    setpol L1MISSCOUNT
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Exec(q(1, false, false), policy.ICOUNT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Switch || out.NewPolicy != policy.L1MISSCOUNT {
		t.Fatalf("fixed-point arithmetic broke: %+v", out)
	}
}

func TestInfiniteLoopCaught(t *testing.T) {
	p, err := Assemble("spin:\njmp spin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(q(1, false, false), policy.ICOUNT, 0); err == nil {
		t.Fatal("runaway kernel not caught")
	}
}

func TestDivByZero(t *testing.T) {
	p, err := Assemble(`
    loadi r1, 5000
    loadi r2, 0
    div   r1, r2
    loadi r2, 0
    beq   r1, r2, ok
    setpol BRCOUNT
    halt
ok:
    keep
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Exec(q(1, false, false), policy.ICOUNT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Switch {
		t.Fatal("div by zero should yield 0, not garbage")
	}
}

func TestType1KernelTogglesLikeFunctionalModel(t *testing.T) {
	p, err := Assemble(Type1Source(2))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(p)

	cfg := detector.DefaultConfig(8)
	cfg.Heuristic = detector.Type1
	ref := detector.New(cfg)

	for i := 0; i < 20; i++ {
		ipc := 0.5
		if i%5 == 4 {
			ipc = 3.0 // occasional healthy quantum
		}
		qs := q(ipc, false, false)
		got, err := r.OnQuantumEnd(qs)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.OnQuantumEnd(qs)
		if got.Switch != want.Switch {
			t.Fatalf("step %d: kernel switch=%t, functional model switch=%t", i, got.Switch, want.Switch)
		}
		if got.Switch && got.NewPolicy != want.NewPolicy {
			t.Fatalf("step %d: kernel -> %v, functional -> %v", i, got.NewPolicy, want.NewPolicy)
		}
	}
	if r.Switches == 0 {
		t.Fatal("Type 1 kernel never switched under sustained low throughput")
	}
}

// TestType3KernelMatchesFunctionalModel: the assembled Figure 6 FSM must
// make the same routing decisions as the functional detector, for every
// combination of incumbent and condition values.
func TestType3KernelMatchesFunctionalModel(t *testing.T) {
	cfg := detector.DefaultConfig(8)
	cfg.Heuristic = detector.Type3
	p, err := Assemble(Type3Source(cfg, 24))
	if err != nil {
		t.Fatal(err)
	}
	f := func(ipcRaw uint8, condMem, condBr bool) bool {
		ipc := float64(ipcRaw%45) / 10
		r := NewRunner(p)
		ref := detector.New(cfg)
		// Drive both through an identical 3-quantum history.
		for _, qq := range []detector.QuantumStats{
			q(0.5, condBr, condMem), // scrambled warmup
			q(ipc, condMem, condBr),
			q(ipc/2, condMem, condBr),
		} {
			got, err := r.OnQuantumEnd(qq)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.OnQuantumEnd(qq)
			if got.Switch != want.Switch {
				return false
			}
			if got.Switch && got.NewPolicy != want.NewPolicy {
				return false
			}
			if r.Incumbent() != ref.Incumbent() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestType3KernelClogScan(t *testing.T) {
	cfg := detector.DefaultConfig(8)
	p, err := Assemble(Type3Source(cfg, 24))
	if err != nil {
		t.Fatal(err)
	}
	qs := q(0.5, true, false)
	qs.PerThread[3].PreIssue = 30
	qs.PerThread[6].PreIssue = 25
	qs.PerThread[0].PreIssue = 10
	out, err := p.Exec(qs, policy.ICOUNT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Clogging[3] || !out.Clogging[6] || out.Clogging[0] {
		t.Fatalf("clog scan wrong: %v", out.Clogging)
	}
	// The scan costs real instructions: more than the no-scan path.
	healthy, _ := p.Exec(q(5, false, false), policy.ICOUNT, 0)
	if out.Steps <= healthy.Steps {
		t.Fatalf("clog scan free? low=%d healthy=%d steps", out.Steps, healthy.Steps)
	}
}

// TestKernelWorkWithinBudget: the paper argues the DT job "can fit
// within the cycle budget allowed in realistic situations" — the
// Type 3 kernel must run in well under one quantum of instructions.
func TestKernelWorkWithinBudget(t *testing.T) {
	cfg := detector.DefaultConfig(8)
	p, err := Assemble(Type3Source(cfg, 24))
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Exec(q(0.1, true, true), policy.ICOUNT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Steps > 200 {
		t.Fatalf("Type 3 kernel took %d instructions; budget blown", out.Steps)
	}
}

func TestSetPolToIncumbentIsKeep(t *testing.T) {
	p, err := Assemble("setpol ICOUNT\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Exec(q(1, false, false), policy.ICOUNT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Switch || !out.Keep {
		t.Fatalf("setpol to incumbent must be a keep: %+v", out)
	}
}

func TestCommentsAndLabels(t *testing.T) {
	p, err := Assemble(`
; full-line comment
start:              ; label with trailing comment
    nop             ; inline comment
    jmp end
    setpol BRCOUNT  ; dead code
end:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Exec(q(1, false, false), policy.ICOUNT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Switch {
		t.Fatal("dead code executed")
	}
}
