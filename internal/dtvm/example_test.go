package dtvm_test

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/dtvm"
	"repro/internal/policy"
)

// ExampleAssemble writes a minimal detector kernel, executes it against
// one quantum snapshot, and prints its decision and measured cost.
func ExampleAssemble() {
	prog, err := dtvm.Assemble(`
; switch to L1MISSCOUNT when throughput is low and the memory symptom fires
east:
    loadc r1, ipc
    loadi r2, 2000
    bge   r1, r2, ok
    loadc r3, l1miss
    loadi r4, 190
    bge   r3, r4, mem
ok:
    keep
    halt
mem:
    setpol L1MISSCOUNT
    halt
`)
	if err != nil {
		panic(err)
	}
	q := detector.QuantumStats{IPC: 0.7, L1MissRate: 0.3, PerThread: make([]detector.ThreadQuantum, 8)}
	out, err := prog.Exec(q, policy.ICOUNT, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("switch:", out.Switch, "to", out.NewPolicy)
	fmt.Println("instructions executed:", out.Steps)
	// The instruction count is checked exactly: a kernel's cost is part
	// of its contract with the leftover-slot execution model.

	// Output:
	// switch: true to L1MISSCOUNT
	// instructions executed: 8
}
