package adaptive

import (
	_ "embed"
	"sync"
)

// learnedTableJSON is the committed trained-table artifact. Regenerate
// with:
//
//	go run repro/cmd/adts-train -out internal/adaptive/learned_table.json
//
//go:embed learned_table.json
var learnedTableJSON []byte

var defaultTable struct {
	once sync.Once
	t    *Table
	err  error
}

// DefaultTable decodes the embedded trained-table artifact once and
// returns it. Callers must not mutate the result.
func DefaultTable() (*Table, error) {
	defaultTable.once.Do(func() {
		defaultTable.t, defaultTable.err = DecodeTable(learnedTableJSON)
	})
	return defaultTable.t, defaultTable.err
}
