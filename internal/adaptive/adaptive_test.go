package adaptive

import (
	"reflect"
	"testing"

	"repro/internal/detector"
	"repro/internal/policy"
)

func dcfg() detector.Config {
	c := detector.DefaultConfig(8)
	c.IPCThreshold = 2
	return c
}

// q builds a QuantumStats with the given IPC and condition drivers.
func q(ipc float64, condMem, condBr bool) detector.QuantumStats {
	s := detector.QuantumStats{Cycles: 8192, IPC: ipc, Committed: uint64(ipc * 8192)}
	if condMem {
		s.L1MissRate = 0.5
	}
	if condBr {
		s.MispredRate = 0.05
	}
	return s
}

func TestSelectorsRegistered(t *testing.T) {
	for _, h := range detector.SelectorHeuristics() {
		if !detector.SelectorRegistered(h) {
			t.Errorf("selector %v not registered", h)
		}
		cfg := dcfg()
		cfg.Heuristic = h
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", h, err)
		}
		// New must construct the full detector without panicking.
		d := detector.New(cfg)
		if d.Selector() == nil {
			t.Errorf("detector for %v has no selector", h)
		}
	}
}

func TestQuantizeCoversAllBits(t *testing.T) {
	cfg := dcfg()
	seen := map[uint8]bool{}
	for _, ipc := range []float64{0.5, 1.5, 2.5, 4.0} {
		for _, mem := range []bool{false, true} {
			for _, br := range []bool{false, true} {
				k := QuantizeQuantum(cfg, q(ipc, mem, br))
				if k >= NumContexts {
					t.Fatalf("context %d out of range", k)
				}
				seen[k] = true
			}
		}
	}
	if len(seen) != NumContexts {
		t.Fatalf("quantizer reached %d/%d contexts", len(seen), NumContexts)
	}
}

// Satellite: the context key is a pure function of the counter
// signature — identical inputs always produce identical keys.
func TestQuantizeDeterministic(t *testing.T) {
	cfg := dcfg()
	for i := 0; i < 3; i++ {
		if k := Quantize(cfg, 1.2, 0.3, 0.01, 0.04, 0.2); k != Quantize(cfg, 1.2, 0.3, 0.01, 0.04, 0.2) {
			t.Fatal("Quantize not deterministic")
		}
	}
	// The threshold m shifts only the IPC bucket bits.
	lo := dcfg()
	lo.IPCThreshold = 1
	if Quantize(cfg, 1.2, 0, 0, 0, 0)&3 != Quantize(lo, 1.2, 0, 0, 0, 0)&3 {
		t.Fatal("condition bits depend on IPC threshold")
	}
}

// Identical bandit instances fed identical quantum streams must make
// identical decisions — the determinism contract.
func TestBanditDeterministic(t *testing.T) {
	run := func() []policy.Policy {
		b := NewEpsilonGreedy(dcfg())
		var picks []policy.Policy
		inc := policy.ICOUNT
		for i := 0; i < 200; i++ {
			ipc := float64(i%5) * 0.4
			p := b.Select(inc, q(ipc, i%2 == 0, i%3 == 0))
			b.Reward(ipc, float64((i+1)%5)*0.4)
			picks = append(picks, p)
			inc = p
		}
		return picks
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("epsilon-greedy bandit diverged across identical runs")
	}
}

func TestBanditSeedChangesExploration(t *testing.T) {
	cfg1 := dcfg()
	cfg2 := dcfg()
	cfg2.SelectorSeed = 12345
	b1, b2 := NewEpsilonGreedy(cfg1), NewEpsilonGreedy(cfg2)
	same := true
	for i := 0; i < 500; i++ {
		p1 := b1.Select(policy.ICOUNT, q(0.5, false, false))
		p2 := b2.Select(policy.ICOUNT, q(0.5, false, false))
		b1.Reward(0.5, 0.5)
		b2.Reward(0.5, 0.5)
		if p1 != p2 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds never diverged in 500 selections")
	}
}

// The bandit must learn: if one arm is always rewarded and the others
// never are, it converges to that arm.
func TestBanditLearnsBestArm(t *testing.T) {
	b := NewEpsilonGreedy(dcfg())
	best := Arms[2]
	for i := 0; i < 300; i++ {
		p := b.Select(policy.ICOUNT, q(0.5, true, false))
		if p == best {
			b.Reward(0.5, 1.5) // improved
		} else {
			b.Reward(0.5, 0.1) // regressed
		}
	}
	wins := 0
	for i := 0; i < 100; i++ {
		if b.Select(policy.ICOUNT, q(0.5, true, false)) == best {
			wins++
		}
		b.Reward(0.5, 0.5)
	}
	// Epsilon-greedy at eps=0.1 should exploit the winner ~93% of the
	// time; 70 leaves slack for exploration.
	if wins < 70 {
		t.Fatalf("bandit picked the rewarded arm %d/100 times", wins)
	}
}

func TestUCBDeterministicAndLearns(t *testing.T) {
	run := func() []policy.Policy {
		u := NewUCB(dcfg())
		best := Arms[1]
		var picks []policy.Policy
		for i := 0; i < 100; i++ {
			p := u.Select(policy.ICOUNT, q(0.5, false, true))
			if p == best {
				u.Reward(0.5, 1.5)
			} else {
				u.Reward(0.5, 0.1)
			}
			picks = append(picks, p)
		}
		return picks
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("UCB diverged across identical runs")
	}
	// First three selections visit each arm once, in canonical order.
	for i := 0; i < numArms; i++ {
		if a[i] != Arms[i] {
			t.Fatalf("selection %d = %v, want canonical-order %v", i, a[i], Arms[i])
		}
	}
	wins := 0
	for _, p := range a[50:] {
		if p == Arms[1] {
			wins++
		}
	}
	if wins < 40 {
		t.Fatalf("UCB picked the rewarded arm %d/50 times in steady state", wins)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := NewEpsilonGreedy(dcfg())
	b.Select(policy.ICOUNT, q(0.5, false, false))
	c := b.Clone().(*EpsilonGreedy)
	// Diverge the clone; the original's cells must not move.
	for i := 0; i < 50; i++ {
		c.Select(policy.ICOUNT, q(0.5, true, true))
		c.Reward(0.5, 1.5)
	}
	if b.cells == c.cells {
		t.Fatal("clone shares cell state")
	}
	var zero [NumContexts][numArms]armStat
	zeroed := b.cells
	zeroed[QuantizeQuantum(b.cfg, q(0.5, false, false))] = zero[0]
	if zeroed != zero {
		t.Fatal("original accumulated the clone's rewards")
	}
}

func TestFitPicksBestArmPerContext(t *testing.T) {
	samples := []Sample{
		{Context: 1, Policy: "ICOUNT", IPC: 1.0},
		{Context: 1, Policy: "ICOUNT", IPC: 1.2},
		{Context: 1, Policy: "BRCOUNT", IPC: 2.0},
		{Context: 1, Policy: "BRCOUNT", IPC: 2.2},
		{Context: 1, Policy: "L1MISSCOUNT", IPC: 0.4},
		{Context: 1, Policy: "L1MISSCOUNT", IPC: 0.5},
		// Context 2: only one sample — below minSupport, stays untrained.
		{Context: 2, Policy: "ICOUNT", IPC: 9.9},
		// Context 3: RR carries no signal for the arm set.
		{Context: 3, Policy: "RR", IPC: 9.9},
		{Context: 3, Policy: "RR", IPC: 9.9},
	}
	tb, err := Fit(samples, "test")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Policy[1] != "BRCOUNT" {
		t.Fatalf("context 1 trained to %q, want BRCOUNT", tb.Policy[1])
	}
	if tb.Policy[2] != "" || tb.Policy[3] != "" {
		t.Fatalf("under-supported contexts trained: %q, %q", tb.Policy[2], tb.Policy[3])
	}
	if tb.Samples[1] != 6 || tb.MeanIPC[1] != 2.1 {
		t.Fatalf("context 1 bookkeeping: %d samples, mean %v", tb.Samples[1], tb.MeanIPC[1])
	}
}

// Fit is order-independent: shuffled samples produce the same table.
func TestFitOrderIndependent(t *testing.T) {
	var samples []Sample
	for i := 0; i < 60; i++ {
		samples = append(samples, Sample{
			Context: uint8(i % NumContexts),
			Policy:  Arms[i%numArms].String(),
			IPC:     float64(i%7) * 0.3,
		})
	}
	t1, err := Fit(samples, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]Sample, len(samples))
	for i, s := range samples {
		rev[len(samples)-1-i] = s
	}
	t2, err := Fit(rev, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("Fit depends on sample order")
	}
}

func TestTableEncodeDecodeRoundTrip(t *testing.T) {
	tb, err := Fit([]Sample{
		{Context: 5, Policy: "ICOUNT", IPC: 1.5},
		{Context: 5, Policy: "ICOUNT", IPC: 1.7},
	}, "round-trip")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeTable(tb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb, back) {
		t.Fatal("table round-trip mismatch")
	}
	if _, err := DecodeTable([]byte(`{"version": 99}`)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestEmbeddedTableLoadsAndIsTrained(t *testing.T) {
	tb, err := DefaultTable()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Trained() == 0 {
		t.Fatal("committed learned_table.json has no trained contexts")
	}
	if _, err := NewLearned(dcfg(), tb); err != nil {
		t.Fatal(err)
	}
}

func TestLearnedFallsBackToType3(t *testing.T) {
	tb, err := Fit(nil, "empty")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLearned(dcfg(), tb)
	if err != nil {
		t.Fatal(err)
	}
	// With an untrained table every selection must match the paper's
	// Type 3 regular transition.
	for _, inc := range []policy.Policy{policy.ICOUNT, policy.BRCOUNT, policy.L1MISSCOUNT} {
		for _, mem := range []bool{false, true} {
			for _, br := range []bool{false, true} {
				qs := q(0.5, mem, br)
				want, _ := detector.Type3Transition(dcfg(), inc, qs)
				if got := l.Select(inc, qs); got != want {
					t.Fatalf("fallback(%v, mem=%t, br=%t) = %v, want %v", inc, mem, br, got, want)
				}
			}
		}
	}
}

func TestLearnedUsesTrainedEntry(t *testing.T) {
	samples := []Sample{}
	qs := q(0.5, true, false)
	ctx := QuantizeQuantum(dcfg(), qs)
	for i := 0; i < 3; i++ {
		samples = append(samples, Sample{Context: ctx, Policy: "BRCOUNT", IPC: 2.0})
	}
	tb, err := Fit(samples, "one-entry")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLearned(dcfg(), tb)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Select(policy.ICOUNT, qs); got != policy.BRCOUNT {
		t.Fatalf("trained context routed to %v, want BRCOUNT", got)
	}
}
