package adaptive

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/detector"
	"repro/internal/policy"
)

// TableVersion is the on-disk format version of a trained table.
const TableVersion = 1

// minSupport is the minimum number of training samples a (context,
// policy) cell needs before Fit will trust its mean; contexts whose
// winning cell is thinner than this stay untrained and fall back to
// Type 3 routing at runtime.
const minSupport = 2

// Table is the offline-trained transition table of the learned FSM:
// one row per context key, each naming the policy that maximised mean
// next-quantum IPC in training. An empty Policy entry means the
// context was not (sufficiently) covered by training; the runtime
// falls back to detector.Type3Transition there.
type Table struct {
	Version   int      `json:"version"`
	TrainedOn string   `json:"trained_on,omitempty"`
	Arms      []string `json:"arms"`
	// Policy, Samples, and MeanIPC are indexed by context key.
	Policy  []string  `json:"policy"`
	Samples []int     `json:"samples"`
	MeanIPC []float64 `json:"mean_ipc"`
}

// Validate checks structural invariants of a decoded table.
func (t *Table) Validate() error {
	if t.Version != TableVersion {
		return fmt.Errorf("adaptive: table version %d, want %d", t.Version, TableVersion)
	}
	if len(t.Arms) != numArms {
		return fmt.Errorf("adaptive: table has %d arms, want %d", len(t.Arms), numArms)
	}
	for i, name := range t.Arms {
		if name != Arms[i].String() {
			return fmt.Errorf("adaptive: table arm %d is %q, want %q", i, name, Arms[i])
		}
	}
	if len(t.Policy) != NumContexts || len(t.Samples) != NumContexts || len(t.MeanIPC) != NumContexts {
		return fmt.Errorf("adaptive: table rows %d/%d/%d, want %d each",
			len(t.Policy), len(t.Samples), len(t.MeanIPC), NumContexts)
	}
	for c, name := range t.Policy {
		if name == "" {
			continue
		}
		if _, err := policy.Parse(name); err != nil {
			return fmt.Errorf("adaptive: table context %d: %w", c, err)
		}
	}
	return nil
}

// compile resolves policy names to a context-indexed lookup; entries
// for untrained contexts are -1.
func (t *Table) compile() ([NumContexts]policy.Policy, [NumContexts]bool, error) {
	var (
		lut     [NumContexts]policy.Policy
		trained [NumContexts]bool
	)
	if err := t.Validate(); err != nil {
		return lut, trained, err
	}
	for c, name := range t.Policy {
		if name == "" {
			continue
		}
		p, err := policy.Parse(name)
		if err != nil {
			return lut, trained, err
		}
		lut[c], trained[c] = p, true
	}
	return lut, trained, nil
}

// Trained reports how many of the table's contexts carry a trained
// policy.
func (t *Table) Trained() int {
	n := 0
	for _, name := range t.Policy {
		if name != "" {
			n++
		}
	}
	return n
}

// Learned is the table-driven FSM selector: pure lookup at runtime,
// no online state, no randomness.
type Learned struct {
	cfg     detector.Config
	lut     [NumContexts]policy.Policy
	trained [NumContexts]bool
}

// NewLearned compiles t into a runtime selector.
func NewLearned(cfg detector.Config, t *Table) (*Learned, error) {
	lut, trained, err := t.compile()
	if err != nil {
		return nil, err
	}
	return &Learned{cfg: cfg, lut: lut, trained: trained}, nil
}

// Select implements detector.Selector: trained contexts route straight
// to the table's policy; untrained ones take the paper's Type 3
// regular transition.
func (l *Learned) Select(incumbent policy.Policy, q detector.QuantumStats) policy.Policy {
	c := QuantizeQuantum(l.cfg, q)
	if l.trained[c] {
		return l.lut[c]
	}
	regular, _ := detector.Type3Transition(l.cfg, incumbent, q)
	return regular
}

// Reward implements detector.Selector; the offline table does not
// learn online.
func (l *Learned) Reward(baseIPC, nextIPC float64) {}

// Clone implements detector.Selector.
func (l *Learned) Clone() detector.Selector {
	cp := *l
	return &cp
}

// Sample is one training observation: at some quantum the context was
// Context, the next quantum ran under Policy and achieved IPC.
type Sample struct {
	Context uint8   `json:"context"`
	Policy  string  `json:"policy"`
	IPC     float64 `json:"ipc"`
}

// Fit builds a table from training samples: per context, the arm with
// the highest mean next-quantum IPC among arms with at least
// minSupport samples wins; ties break in canonical arm order. The fit
// is deterministic for any ordering of samples (cells accumulate
// commutatively; argmax reads them in canonical order).
func Fit(samples []Sample, trainedOn string) (*Table, error) {
	type cell struct {
		n   int
		sum float64
	}
	var cells [NumContexts][numArms]cell
	for i, s := range samples {
		if int(s.Context) >= NumContexts {
			return nil, fmt.Errorf("adaptive: sample %d: context %d out of range", i, s.Context)
		}
		p, err := policy.Parse(s.Policy)
		if err != nil {
			return nil, fmt.Errorf("adaptive: sample %d: %w", i, err)
		}
		a := armIndex(p)
		if a < 0 {
			// Policies outside the arm set (e.g. RR quanta from a
			// mixed sweep) carry no signal for the selector.
			continue
		}
		cells[s.Context][a].n++
		cells[s.Context][a].sum += s.IPC
	}
	t := &Table{
		Version:   TableVersion,
		TrainedOn: trainedOn,
		Arms:      make([]string, numArms),
		Policy:    make([]string, NumContexts),
		Samples:   make([]int, NumContexts),
		MeanIPC:   make([]float64, NumContexts),
	}
	for i, a := range Arms {
		t.Arms[i] = a.String()
	}
	for c := 0; c < NumContexts; c++ {
		best, bestMean := -1, 0.0
		total := 0
		for a := 0; a < numArms; a++ {
			cl := cells[c][a]
			total += cl.n
			if cl.n < minSupport {
				continue
			}
			if m := cl.sum / float64(cl.n); best < 0 || m > bestMean {
				best, bestMean = a, m
			}
		}
		t.Samples[c] = total
		if best >= 0 {
			t.Policy[c] = Arms[best].String()
			t.MeanIPC[c] = bestMean
		}
	}
	return t, nil
}

// EncodeTable renders t as the canonical committed-artifact form:
// stable-keyed indented JSON with a trailing newline.
func EncodeTable(t *Table) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeTable parses and validates a table artifact.
func DecodeTable(b []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("adaptive: decoding table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// SortSamples orders samples canonically (context, policy, IPC) —
// handy for tests and for writers that want reproducible dumps.
func SortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a.Context != b.Context {
			return a.Context < b.Context
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.IPC < b.IPC
	})
}
