package adaptive

import (
	"math"

	"repro/internal/detector"
	"repro/internal/policy"
	"repro/internal/rng"
)

// Epsilon is the epsilon-greedy exploration rate: one selection in ten
// tries a uniform random arm; the rest exploit the best observed mean.
const Epsilon = 0.1

// armStat is one (context, arm) cell: Bernoulli reward bookkeeping.
type armStat struct {
	n   uint64
	sum float64
}

func (s armStat) mean() float64 {
	if s.n == 0 {
		// Optimistic-neutral prior so untried arms compete with a
		// middling incumbent instead of being starved forever.
		return 0.5
	}
	return s.sum / float64(s.n)
}

// reward converts the selection outcome to the Bernoulli payoff both
// bandits learn from: 1 iff the quantum run under the chosen policy
// out-performed the selection-time IPC — the paper's benign-switch
// criterion applied to every selection, hold or switch.
func reward(baseIPC, nextIPC float64) float64 {
	if nextIPC > baseIPC {
		return 1
	}
	return 0
}

// EpsilonGreedy is the online epsilon-greedy contextual bandit
// selector. All state is plain data; Clone copies it by value.
type EpsilonGreedy struct {
	cfg   detector.Config
	rng   rng.PRNG
	cells [NumContexts][numArms]armStat

	pending bool
	lastCtx uint8
	lastArm int
}

// NewEpsilonGreedy returns a bandit seeded from cfg.SelectorSeed
// (0 selects the fixed default stream).
func NewEpsilonGreedy(cfg detector.Config) *EpsilonGreedy {
	seed := cfg.SelectorSeed
	if seed == 0 {
		seed = defaultSelectorSeed
	}
	return &EpsilonGreedy{cfg: cfg, rng: rng.New(seed)}
}

// Select implements detector.Selector.
func (b *EpsilonGreedy) Select(incumbent policy.Policy, q detector.QuantumStats) policy.Policy {
	c := QuantizeQuantum(b.cfg, q)
	var arm int
	if b.rng.Bool(Epsilon) {
		arm = b.rng.Intn(numArms)
	} else {
		arm = bestMeanArm(&b.cells[c])
	}
	b.pending, b.lastCtx, b.lastArm = true, c, arm
	return Arms[arm]
}

// Reward implements detector.Selector.
func (b *EpsilonGreedy) Reward(baseIPC, nextIPC float64) {
	if !b.pending {
		return
	}
	b.pending = false
	cell := &b.cells[b.lastCtx][b.lastArm]
	cell.n++
	cell.sum += reward(baseIPC, nextIPC)
}

// Clone implements detector.Selector.
func (b *EpsilonGreedy) Clone() detector.Selector {
	cp := *b
	return &cp
}

// bestMeanArm returns the arm with the highest observed mean reward,
// ties broken in canonical arm order.
func bestMeanArm(cells *[numArms]armStat) int {
	best, bestMean := 0, cells[0].mean()
	for i := 1; i < numArms; i++ {
		if m := cells[i].mean(); m > bestMean {
			best, bestMean = i, m
		}
	}
	return best
}

// UCB is the UCB1 contextual bandit selector: deterministic
// optimism-in-the-face-of-uncertainty, no random stream at all.
type UCB struct {
	cfg   detector.Config
	cells [NumContexts][numArms]armStat

	pending bool
	lastCtx uint8
	lastArm int
}

// NewUCB returns a UCB1 selector.
func NewUCB(cfg detector.Config) *UCB {
	return &UCB{cfg: cfg}
}

// Select implements detector.Selector: play each untried arm of the
// context once (in canonical order), then argmax of mean + the UCB1
// confidence radius sqrt(2 ln N / n).
func (u *UCB) Select(incumbent policy.Policy, q detector.QuantumStats) policy.Policy {
	c := QuantizeQuantum(u.cfg, q)
	cells := &u.cells[c]
	arm := -1
	var total uint64
	for i := 0; i < numArms; i++ {
		total += cells[i].n
		if arm < 0 && cells[i].n == 0 {
			arm = i
		}
	}
	if arm < 0 {
		lnN := math.Log(float64(total))
		best := math.Inf(-1)
		for i := 0; i < numArms; i++ {
			score := cells[i].mean() + math.Sqrt(2*lnN/float64(cells[i].n))
			if score > best {
				arm, best = i, score
			}
		}
	}
	u.pending, u.lastCtx, u.lastArm = true, c, arm
	return Arms[arm]
}

// Reward implements detector.Selector.
func (u *UCB) Reward(baseIPC, nextIPC float64) {
	if !u.pending {
		return
	}
	u.pending = false
	cell := &u.cells[u.lastCtx][u.lastArm]
	cell.n++
	cell.sum += reward(baseIPC, nextIPC)
}

// Clone implements detector.Selector.
func (u *UCB) Clone() detector.Selector {
	cp := *u
	return &cp
}
