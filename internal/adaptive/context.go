package adaptive

import "repro/internal/detector"

// NumContexts is the size of the quantized context space. A context
// key packs four observables of one scheduling quantum:
//
//	bit 0    COND_MEM  — the paper's memory-imbalance condition
//	bit 1    COND_BR   — the paper's branch-imbalance condition
//	bits 2-3 IPC bucket — quantum IPC relative to the threshold m:
//	          0: < m/2, 1: < m, 2: < 3m/2, 3: >= 3m/2
//
// Small on purpose: a bandit gets at most one observation per quantum,
// so the context space must be coarse enough to revisit within a run,
// and the offline table must be coverable by a quick training sweep.
const NumContexts = 16

// Quantize maps a quantum's aggregate per-cycle rates to its context
// key. It is a pure function of its arguments — the foundation of the
// selectors' determinism contract (identical runs at any GOMAXPROCS or
// worker count see identical counter vectors, hence identical keys) —
// and it is shared verbatim between the online selectors and the
// offline trainer, so a trained table keys the same space the runtime
// queries.
func Quantize(cfg detector.Config, ipc, l1MissRate, lsqFullRate, mispredRate, condBrRate float64) uint8 {
	k := uint8(0)
	if l1MissRate > cfg.CondMemL1Rate || lsqFullRate > cfg.CondMemLSQRate {
		k |= 1
	}
	if mispredRate > cfg.CondBrMispRate || condBrRate > cfg.CondBrRate {
		k |= 2
	}
	m := cfg.IPCThreshold
	if m <= 0 {
		m = 1
	}
	switch r := ipc / m; {
	case r < 0.5:
		// bucket 0
	case r < 1:
		k |= 1 << 2
	case r < 1.5:
		k |= 2 << 2
	default:
		k |= 3 << 2
	}
	return k
}

// QuantizeQuantum is Quantize over a detector-view quantum.
func QuantizeQuantum(cfg detector.Config, q detector.QuantumStats) uint8 {
	return Quantize(cfg, q.IPC, q.L1MissRate, q.LSQFullRate, q.MispredRate, q.CondBrRate)
}
