// Package adaptive implements learned dynamic policy selection — the
// step past the paper's four hand-built heuristics that the dynamic-
// policy-selection literature (PAPERS.md) argues for. It plugs into the
// ADTS detector through the detector.Selector seam with three
// selectors, registered against the detector.Heuristic values at init:
//
//   - bandit (detector.Bandit): an online epsilon-greedy contextual
//     bandit. Context is the quantized per-quantum counter signature
//     (Quantize); arms are the Type 3 FSM's policy set; reward is
//     "did the next quantum's IPC beat the selection-time IPC" — the
//     same benign-switch criterion the paper scores heuristics by.
//   - ucb (detector.BanditUCB): the same contextual arms under UCB1,
//     exploration driven by confidence bounds instead of coin flips.
//   - learned (detector.Learned): an offline-trained table-driven FSM.
//     The table maps context keys to the empirically best policy, fit
//     by cmd/adts-train from sweep data; contexts the training never
//     covered fall back to the paper's Type 3 routing.
//
// Determinism contract: selectors are deterministic plain data. The
// bandit's exploration stream is an internal/rng PRNG seeded from
// detector.Config.SelectorSeed (0 = a fixed default), UCB and the
// learned FSM draw no randomness at all, and every tie breaks in
// canonical arm order — so repeated runs, any GOMAXPROCS, any sweep
// sharding produce byte-identical results, the same contract every
// other subsystem in this repo pins with tests.
package adaptive

import (
	"repro/internal/detector"
	"repro/internal/policy"
)

// Arms is the bandit action set and the learned table's policy
// vocabulary: exactly the three policies the paper's Type 3 FSM routes
// between, so any win over Type 3/3'/4 comes from better selection,
// not from a larger action space.
var Arms = [3]policy.Policy{policy.ICOUNT, policy.BRCOUNT, policy.L1MISSCOUNT}

// numArms mirrors len(Arms) for array-typed selector state.
const numArms = len(Arms)

// defaultSelectorSeed feeds the bandit's exploration stream when
// Config.SelectorSeed is 0.
const defaultSelectorSeed = 0xad7_5e1ec7

func init() {
	detector.RegisterSelector(detector.Bandit, func(cfg detector.Config) (detector.Selector, error) {
		return NewEpsilonGreedy(cfg), nil
	})
	detector.RegisterSelector(detector.BanditUCB, func(cfg detector.Config) (detector.Selector, error) {
		return NewUCB(cfg), nil
	})
	detector.RegisterSelector(detector.Learned, func(cfg detector.Config) (detector.Selector, error) {
		t, err := DefaultTable()
		if err != nil {
			return nil, err
		}
		return NewLearned(cfg, t)
	})
}

// armIndex returns the index of p in Arms, or -1.
func armIndex(p policy.Policy) int {
	for i, a := range Arms {
		if a == p {
			return i
		}
	}
	return -1
}
