package simrun

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dtvm"
	"repro/internal/policy"
)

func TestDefaultsMatchSmtsim(t *testing.T) {
	cfg, err := Request{}.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := core.DefaultConfig("kitchen-sink")
	if cfg.MixName != want.MixName || cfg.Threads != want.Threads ||
		cfg.Quanta != want.Quanta || cfg.FastForward != want.FastForward ||
		cfg.Seed != want.Seed || cfg.Mode != core.ModeFixed ||
		cfg.FixedPolicy != policy.ICOUNT {
		t.Fatalf("zero Request = %+v, want the smtsim defaults %+v", cfg, want)
	}
}

func TestFastForwardSentinel(t *testing.T) {
	cfg, err := Request{FastForward: -1}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FastForward != 0 {
		t.Fatalf("FastForward -1 should mean none, got %d", cfg.FastForward)
	}
	cfg, _ = Request{}.Config()
	if cfg.FastForward != 16384 {
		t.Fatalf("FastForward 0 should mean default 16384, got %d", cfg.FastForward)
	}
}

func TestConfigModes(t *testing.T) {
	cfg, err := Request{Mode: "adts", Heuristic: "Type 1", M: 3}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != core.ModeADTS || cfg.Detector.Heuristic != detector.Type1 || cfg.Detector.IPCThreshold != 3 {
		t.Fatalf("adts request misassembled: %+v", cfg)
	}
	cfg, err = Request{Mode: "oracle"}.Config()
	if err != nil || cfg.Mode != core.ModeOracle {
		t.Fatalf("oracle request misassembled: %+v (%v)", cfg, err)
	}
	cfg, err = Request{Mode: "adts", Kernel: dtvm.Type1Source(2)}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kernel == nil {
		t.Fatal("kernel source did not assemble into cfg.Kernel")
	}
}

func TestConfigErrors(t *testing.T) {
	for _, r := range []Request{
		{Mode: "warp"},
		{Policy: "NOPE"},
		{Mode: "adts", Heuristic: "Type 9"},
		{Mode: "adts", Kernel: "@@ not a kernel"},
		{Mix: "no-such-mix"},
		{Threads: 99},
	} {
		if _, err := r.Config(); err == nil {
			t.Errorf("Request %+v: want error, got nil", r)
		}
	}
}

func TestKeyIdentity(t *testing.T) {
	a, _ := Request{Seed: 7}.Config()
	b, _ := Request{Seed: 7}.Config()
	c, _ := Request{Seed: 8}.Config()
	if Key(a) == "" || Key(a) != Key(b) {
		t.Fatal("identical configs must share a non-empty key")
	}
	if Key(a) == Key(c) {
		t.Fatal("different seeds must produce different keys")
	}
}

func TestRunAndReportDeterministic(t *testing.T) {
	cfg, err := Request{Mix: "int-compute", Threads: 2, Quanta: 2, FastForward: -1}.Config()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep1 := Report(cfg, r1, ReportOptions{Verbose: true, Timeline: true})
	rep2 := Report(cfg, r2, ReportOptions{Verbose: true, Timeline: true})
	if rep1 != rep2 {
		t.Fatalf("identical configs produced diverging reports:\n%s\n---\n%s", rep1, rep2)
	}
	for _, want := range []string{"mix int-compute", "aggregate IPC", "thread 0 (", "quantum timeline"} {
		if !strings.Contains(rep1, want) {
			t.Errorf("report missing %q:\n%s", want, rep1)
		}
	}
	csv := CSV(r1)
	if !strings.HasPrefix(csv, "quantum,policy,ipc\n") || strings.Count(csv, "\n") != 1+len(r1.PolicyTimeline) {
		t.Fatalf("CSV malformed:\n%s", csv)
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	cfg, err := Request{Mix: "int-compute", Threads: 1, Quanta: 1, FastForward: -1}.Config()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg); err != context.Canceled {
		t.Fatalf("Run on cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestMultiCoreRequest: cores/allocation thread through Request into
// core.Config, the run routes through internal/multicore, and the
// report gains the per-core section — while a single-core request's
// config and report stay exactly what they always were.
func TestMultiCoreRequest(t *testing.T) {
	cfg, err := Request{Mix: "kitchen-sink", Threads: 4, Cores: 2, Quanta: 2, FastForward: -1}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cores != 2 || cfg.Allocation != "random" {
		t.Fatalf("multi-core fields not threaded: Cores=%d Allocation=%q", cfg.Cores, cfg.Allocation)
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 2 || len(res.PerCoreIPC) != 2 || len(res.Assignment) != 2 {
		t.Fatalf("multi-core run not routed through multicore: %+v", res)
	}
	rep := Report(cfg, res, ReportOptions{})
	for _, want := range []string{"cores 2, allocation random", "core 0 [threads ", "core 1 [threads "} {
		if !strings.Contains(rep, want) {
			t.Errorf("multi-core report missing %q:\n%s", want, rep)
		}
	}

	// Single-core: config carries no multi-core fields (so hashes and
	// digests are unchanged) and the report has no cores section.
	single, err := Request{Mix: "kitchen-sink", Threads: 4, Cores: 1, Quanta: 2, FastForward: -1}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if single.Cores != 0 || single.Allocation != "" {
		t.Fatalf("single-core request leaked multi-core fields: %+v", single)
	}
	sres, err := Run(context.Background(), single)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(Report(single, sres, ReportOptions{}), "cores ") {
		t.Fatal("single-core report grew a cores section")
	}
}

func TestMultiCoreRequestErrors(t *testing.T) {
	for _, r := range []Request{
		{Cores: 99},
		{Cores: -1},
		{Allocation: "random"},         // allocation without cores
		{Cores: 2, Allocation: "nope"}, // unknown policy
		{Cores: 3, Threads: 8},         // threads don't divide
		{Cores: 2, Threads: 1},         // 1 thread across 2 cores
	} {
		if _, err := r.Config(); err == nil {
			t.Errorf("Request %+v: want error, got nil", r)
		}
	}
}
