// Package simrun is the single place where user-facing simulation
// requests (the knobs of cmd/smtsim and the JSON body of smtsimd's
// POST /v1/run) become a core.Config, a run, and a rendered report.
// Both front ends consume it, so the CLI and the HTTP service can never
// drift: the same Request produces the same core.Config, the same
// deterministic core.Result, and a byte-identical text report.
package simrun

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dtvm"
	"repro/internal/multicore"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Request is one simulation ask, in user vocabulary (names, not parsed
// types). Zero-valued fields take the smtsim defaults — see Normalize.
type Request struct {
	// Mix names a workload from trace.Mixes (mixgen -list).
	Mix string `json:"mix"`
	// Mode is "fixed", "adts", or "oracle".
	Mode string `json:"mode"`
	// Policy is the fetch policy for fixed mode (e.g. "ICOUNT").
	Policy string `json:"policy,omitempty"`
	// Heuristic is the ADTS heuristic ("Type 1".."Type 4", "Type 3'") or
	// an adaptive selector ("bandit", "ucb", "learned").
	Heuristic string `json:"heuristic,omitempty"`
	// M is the ADTS IPC threshold.
	M float64 `json:"m,omitempty"`
	// SelectorSeed seeds the exploration stream of the adaptive bandit
	// selector (heuristic "bandit"); 0 selects a fixed default stream.
	// Ignored by the paper heuristics, "ucb", and "learned", which draw
	// no randomness.
	SelectorSeed uint64 `json:"selector_seed,omitempty"`
	// Kernel is DT kernel source (internal/dtvm assembly) that replaces
	// the built-in heuristic in ADTS mode.
	Kernel string `json:"kernel,omitempty"`
	// Threads is the number of hardware contexts (1..8). With Cores > 1
	// this is the total across the system and must divide evenly.
	Threads int `json:"threads,omitempty"`
	// Cores is the number of SMT cores (0/1 = classic single core;
	// 2..8 routes the run through internal/multicore).
	Cores int `json:"cores,omitempty"`
	// Allocation names the thread-to-core policy for Cores > 1:
	// "random", "symbiosis", or "synpa" ("" defaults to random).
	Allocation string `json:"allocation,omitempty"`
	// Quanta is the number of measured scheduling quanta.
	Quanta int `json:"quanta,omitempty"`
	// FastForward is cycles to simulate before measuring. 0 selects the
	// default (16384); use -1 to request no fast-forward.
	FastForward int64 `json:"fastforward,omitempty"`
	// Seed drives all stochastic workload behaviour.
	Seed uint64 `json:"seed,omitempty"`
	// Machine overrides the default machine configuration (the CLI's
	// -machine file, inline).
	Machine *pipeline.Config `json:"machine,omitempty"`
}

// Normalize fills zero-valued fields with the smtsim defaults and
// returns the completed request. It does not validate; Config does.
func (r Request) Normalize() Request {
	if r.Mix == "" {
		r.Mix = "kitchen-sink"
	}
	if r.Mode == "" {
		r.Mode = "fixed"
	}
	if r.Policy == "" {
		r.Policy = "ICOUNT"
	}
	if r.Heuristic == "" {
		r.Heuristic = "Type 3"
	}
	if r.M == 0 {
		r.M = 2
	}
	if r.Threads == 0 {
		r.Threads = 8
	}
	if r.Quanta == 0 {
		r.Quanta = 64
	}
	switch {
	case r.FastForward == 0:
		r.FastForward = 16384
	case r.FastForward < 0:
		r.FastForward = 0
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Cores > 1 && r.Allocation == "" {
		r.Allocation = "random"
	}
	return r
}

// Validate rejects requests whose numeric fields are garbage before
// they reach Normalize (which would silently default some of them) or
// the simulator (which would faithfully simulate nonsense). Errors name
// the offending JSON field so API callers can fix the right knob.
func (r Request) Validate() error {
	if math.IsNaN(r.M) || math.IsInf(r.M, 0) {
		return fmt.Errorf("m: must be a finite number, got %v", r.M)
	}
	if r.M < 0 {
		return fmt.Errorf("m: IPC threshold must be >= 0, got %v", r.M)
	}
	if r.Threads < 0 || r.Threads > 8 {
		return fmt.Errorf("threads: must be in 1..8 (0 selects the default), got %d", r.Threads)
	}
	if r.Cores < 0 || r.Cores > 8 {
		return fmt.Errorf("cores: must be in 1..8 (0 selects single-core), got %d", r.Cores)
	}
	if r.Allocation != "" {
		if r.Cores <= 1 {
			return fmt.Errorf("allocation: requires cores > 1, got cores=%d", r.Cores)
		}
		if !core.ValidAllocation(r.Allocation) {
			return fmt.Errorf("allocation: unknown policy %q (want one of %s)",
				r.Allocation, strings.Join(core.AllocationPolicies, ", "))
		}
	}
	if r.Quanta < 0 {
		return fmt.Errorf("quanta: must be > 0 (0 selects the default), got %d", r.Quanta)
	}
	if r.FastForward < -1 {
		return fmt.Errorf("fastforward: must be >= -1 (-1 disables, 0 selects the default), got %d", r.FastForward)
	}
	return nil
}

// Config normalizes the request and assembles the core.Config both
// front ends run. Unknown names (mix, mode, policy, heuristic) and
// malformed kernels come back as errors, not panics.
func (r Request) Config() (core.Config, error) {
	if err := r.Validate(); err != nil {
		return core.Config{}, err
	}
	r = r.Normalize()

	cfg := core.DefaultConfig(r.Mix)
	if r.Machine != nil {
		cfg.Machine = *r.Machine
	}
	cfg.Threads = r.Threads
	cfg.Quanta = r.Quanta
	cfg.FastForward = r.FastForward
	cfg.Seed = r.Seed
	if r.Cores > 1 {
		cfg.Cores = r.Cores
		cfg.Allocation = r.Allocation
	}

	switch strings.ToLower(r.Mode) {
	case "fixed":
		cfg.Mode = core.ModeFixed
		p, err := policy.Parse(r.Policy)
		if err != nil {
			return core.Config{}, err
		}
		cfg.FixedPolicy = p
	case "adts":
		cfg.Mode = core.ModeADTS
		h, err := detector.ParseHeuristic(r.Heuristic)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Detector.Heuristic = h
		cfg.Detector.IPCThreshold = r.M
		cfg.Detector.SelectorSeed = r.SelectorSeed
		if r.Kernel != "" {
			prog, err := dtvm.Assemble(r.Kernel)
			if err != nil {
				return core.Config{}, fmt.Errorf("kernel: %w", err)
			}
			cfg.Kernel = prog
		}
	case "oracle":
		cfg.Mode = core.ModeOracle
	default:
		return core.Config{}, fmt.Errorf("unknown mode %q", r.Mode)
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// Key is the canonical cache/checkpoint identity of a config: equal
// keys guarantee byte-identical results because simulations are
// deterministic functions of their config.
func Key(cfg core.Config) string {
	return runner.ConfigHash(cfg)
}

// ResultDigest is the canonical SHA-256 digest of a simulation result:
// the hex digest of its JSON encoding. core.Result is plain data with
// no custom marshalers and no maps, and encoding/json round-trips
// float64 exactly, so decoding a result and re-digesting it reproduces
// the digest computed by whoever encoded it — the property that lets a
// fleet client verify a backend's X-Result-Digest end to end.
// Undigestable results (which a deterministic simulator never produces)
// digest to ""; callers treat "" as unverifiable, not as a mismatch.
func ResultDigest(res core.Result) string {
	raw, err := json.Marshal(res)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Run executes one simulation. The context is consulted before the run
// starts and polled while it executes: a cancelled context abandons the
// simulation and returns ctx.Err(). Results are deterministic — equal
// configs always produce equal results.
func Run(ctx context.Context, cfg core.Config) (core.Result, error) {
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	if cfg.Cores > 1 {
		// Multi-core systems run through internal/multicore, which
		// profiles (if the policy needs it), allocates threads to
		// cores, and reduces per-core runs into one system Result.
		type out struct {
			res core.Result
			err error
		}
		done := make(chan out, 1)
		go func() {
			res, err := multicore.RunConfig(cfg)
			done <- out{res, err}
		}()
		select {
		case o := <-done:
			return o.res, o.err
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return core.Result{}, err
	}
	done := make(chan core.Result, 1)
	go func() { done <- sim.Run() }()
	select {
	case res := <-done:
		// The run completed, so nothing references the machine any
		// more: recycle it for the next request of this geometry.
		sim.Close()
		return res, nil
	case <-ctx.Done():
		// The simulator has no preemption point; the goroutine finishes
		// its (bounded) run and the buffered channel lets it exit. The
		// machine is still in use there, so it is NOT recycled.
		return core.Result{}, ctx.Err()
	}
}

// RunMany executes the configs in order, reusing pooled machines
// between runs (see core.RunMany), and stops at the first error or
// context cancellation. Results are identical to calling Run per
// config.
func RunMany(ctx context.Context, cfgs []core.Config) ([]core.Result, error) {
	out := make([]core.Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// ReportOptions selects the optional report sections.
type ReportOptions struct {
	// Verbose appends per-thread IPC lines.
	Verbose bool
	// Timeline appends the per-quantum policy/IPC timeline.
	Timeline bool
}

// Report renders the human-readable run summary — exactly the text
// cmd/smtsim has always printed, so server responses and CLI output are
// byte-identical for the same config.
func Report(cfg core.Config, res core.Result, o ReportOptions) string {
	var b strings.Builder
	mx, _ := trace.MixByName(res.Mix)
	fmt.Fprintf(&b, "mix %s (%s), %d threads, %s mode\n", mx.Name, mx.Description, res.Threads, res.Mode)
	fmt.Fprintf(&b, "cycles %d, committed %d, aggregate IPC %.3f\n", res.Cycles, res.Committed, res.AggregateIPC)
	fmt.Fprintf(&b, "rates/cycle: mispred %.4f, L1 miss %.4f, LSQ-full %.4f, cond-br %.4f; wrong-path fetch %.1f%%\n",
		res.MispredRate, res.L1MissRate, res.LSQFullRate, res.CondBrRate, 100*res.WrongPathFrac)

	// Multi-core runs carry extra fields; single-core reports must stay
	// byte-identical, so this section is strictly gated on Cores > 1.
	if res.Cores > 1 {
		fmt.Fprintf(&b, "cores %d, allocation %s\n", res.Cores, res.Allocation)
		for c, ipc := range res.PerCoreIPC {
			threads := ""
			if c < len(res.Assignment) {
				parts := make([]string, len(res.Assignment[c]))
				for i, t := range res.Assignment[c] {
					parts[i] = fmt.Sprintf("%d", t)
				}
				threads = " [threads " + strings.Join(parts, " ") + "]"
			}
			fmt.Fprintf(&b, "  core %d%s: IPC %.3f\n", c, threads, ipc)
		}
	}

	if cfg.Mode == core.ModeADTS {
		d := res.Detector
		fmt.Fprintf(&b, "detector: %v m=%g — %d low quanta, %d switches (benign %d / malignant %d, P=%.2f)\n",
			res.Heuristic, res.Threshold, d.LowQuanta, d.Switches, d.Benign, d.Malignant, d.BenignProbability())
		if len(d.PolicyQuanta) > 0 {
			var parts []string
			for p, n := range d.PolicyQuanta {
				if n > 0 {
					parts = append(parts, fmt.Sprintf("%s %d", policy.Policy(p), n))
				}
			}
			fmt.Fprintf(&b, "selector audit: %d gradient holds, %d reversals; quanta by policy: %s\n",
				d.GradientHolds, d.Reversals, strings.Join(parts, ", "))
		}
		fmt.Fprintf(&b, "DT cost model: %d jobs, %d completed, %d preempted, %d fetch slots, %d issue slots\n",
			res.DT.JobsScheduled, res.DT.JobsCompleted, res.DT.JobsPreempted,
			res.DT.FetchSlotsUsed, res.DT.IssueSlotsUsed)
		if res.KernelSteps > 0 {
			fmt.Fprintf(&b, "detector kernel: %d VM instructions executed\n", res.KernelSteps)
		}
	}
	if cfg.Mode == core.ModeOracle {
		fmt.Fprintf(&b, "oracle: %d policy switches\n", res.OracleSwitches)
	}

	if o.Verbose {
		progs, _ := mx.Programs(res.Threads, res.Seed)
		for i, ipc := range res.PerThreadIPC {
			if i < len(progs) {
				fmt.Fprintf(&b, "  thread %d (%s): IPC %.3f\n", i, progs[i].Profile().Name, ipc)
			}
		}
	}
	if o.Timeline {
		b.WriteString("quantum timeline (policy engaged at quantum end, quantum IPC):\n")
		for i, p := range res.PolicyTimeline {
			fmt.Fprintf(&b, "  q%03d %-12s %.3f\n", i, p, res.QuantumIPC[i])
		}
	}
	return b.String()
}

// CSV renders the per-quantum series (quantum, policy, IPC) exactly as
// cmd/smtsim -csv writes it.
func CSV(res core.Result) string {
	var b strings.Builder
	b.WriteString("quantum,policy,ipc\n")
	for i, p := range res.PolicyTimeline {
		fmt.Fprintf(&b, "%d,%s,%.6f\n", i, p, res.QuantumIPC[i])
	}
	return b.String()
}
