package simrun

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// The new selector fields must be invisible when unused: a classic
// request's config JSON — and therefore its cache key and result
// digest inputs — cannot mention them, or every pre-existing
// checkpoint and store entry would be orphaned.
func TestSelectorFieldsOmittedFromClassicConfigs(t *testing.T) {
	cfg, err := Request{Mode: "adts", Heuristic: "Type 3"}.Config()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"SelectorSeed", "PolicyQuanta"} {
		if strings.Contains(string(raw), banned) {
			t.Errorf("classic config JSON mentions %s:\n%s", banned, raw)
		}
	}
	with, err := Request{Mode: "adts", Heuristic: "bandit", SelectorSeed: 42}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if with.Detector.SelectorSeed != 42 {
		t.Fatalf("selector_seed not threaded: %d", with.Detector.SelectorSeed)
	}
	if Key(cfg) == Key(with) {
		t.Fatal("bandit config shares a cache key with Type 3")
	}
}

// Satellite: adaptive selector runs are byte-identical regardless of
// GOMAXPROCS — the context keys and exploration streams are pure
// functions of the config, never of scheduling.
func TestAdaptiveRunsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	for _, h := range []string{"bandit", "ucb", "learned"} {
		req := Request{Mix: "int-memory", Mode: "adts", Heuristic: h, Threads: 4, Quanta: 8, FastForward: -1}
		cfg, err := req.Config()
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		run := func(procs int) string {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s: %v", h, err)
			}
			return ResultDigest(res)
		}
		d1, d2, d4 := run(1), run(2), run(4)
		if d1 == "" || d1 != d2 || d1 != d4 {
			t.Fatalf("%s: digests diverged across GOMAXPROCS: %s / %s / %s", h, d1, d2, d4)
		}
	}
}

// Adaptive selectors compose with multi-core: each core gets its own
// independent selector, and the composition stays deterministic.
func TestAdaptiveMultiCoreDeterministic(t *testing.T) {
	req := Request{Mix: "kitchen-sink", Mode: "adts", Heuristic: "bandit",
		Threads: 4, Cores: 2, Quanta: 6, FastForward: -1}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := ResultDigest(r1), ResultDigest(r2); d1 != d2 {
		t.Fatalf("multi-core bandit digests diverged: %s vs %s", d1, d2)
	}
	if r1.Cores != 2 {
		t.Fatalf("Cores = %d, want 2", r1.Cores)
	}
	if len(r1.Detector.PolicyQuanta) == 0 {
		t.Fatal("multi-core run lost the PolicyQuanta audit")
	}
	rep := Report(cfg, r1, ReportOptions{})
	if !strings.Contains(rep, "selector audit:") {
		t.Fatalf("report missing selector audit line:\n%s", rep)
	}
}
