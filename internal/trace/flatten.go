package trace

// Flattened returns a single-phase variant of the profile: all phases
// merged into one by MeanLen-weighted averaging of the class mix,
// reference pattern and dependency model. The flattened program has the
// same average behaviour but no temporal variation — the ablation that
// removes the signal adaptive scheduling feeds on (DESIGN.md §5).
func (p *Profile) Flattened() *Profile {
	if len(p.Phases) == 1 {
		cp := *p
		return &cp
	}
	var total float64
	for _, ph := range p.Phases {
		total += float64(ph.MeanLen)
	}
	var out Phase
	out.Name = "flattened"
	var footprint, code uint64
	var seq, stack float64
	for _, ph := range p.Phases {
		w := float64(ph.MeanLen) / total
		out.BranchFrac += w * ph.BranchFrac
		out.JumpFrac += w * ph.JumpFrac
		out.LoadFrac += w * ph.LoadFrac
		out.StoreFrac += w * ph.StoreFrac
		out.SyscallRate += w * ph.SyscallRate
		out.FPFrac += w * ph.FPFrac
		out.IntMulFrac += w * ph.IntMulFrac
		out.IntDivFrac += w * ph.IntDivFrac
		out.FPMulFrac += w * ph.FPMulFrac
		out.FPDivFrac += w * ph.FPDivFrac
		out.BiasedW += w * ph.BiasedW
		out.LoopW += w * ph.LoopW
		out.RandomW += w * ph.RandomW
		out.MeanDepDist += w * ph.MeanDepDist
		out.DepProb += w * ph.DepProb
		seq += w * ph.SeqFrac
		stack += w * ph.StackFrac
		if ph.DataFootprint > footprint {
			footprint = ph.DataFootprint
		}
		if ph.CodeWords > code {
			code = ph.CodeWords
		}
		out.MeanLen += ph.MeanLen
	}
	out.SeqFrac = seq
	out.StackFrac = stack
	out.DataFootprint = footprint
	out.CodeWords = code
	flat := &Profile{
		Name:        p.Name + "-flat",
		Class:       p.Class,
		Description: "phase-free ablation of " + p.Name,
		Phases:      []Phase{out},
	}
	if err := flat.Validate(); err != nil {
		panic("trace: flattened profile invalid: " + err.Error())
	}
	return flat
}

// FlattenedPrograms instantiates the mix with every profile flattened,
// for the phase ablation.
func (m Mix) FlattenedPrograms(n int, seed uint64) ([]*Program, error) {
	progs, err := m.Programs(n, seed)
	if err != nil {
		return nil, err
	}
	out := make([]*Program, len(progs))
	for i, p := range progs {
		out[i] = NewProgram(p.Profile().Flattened(), i, seed)
	}
	return out, nil
}
