package trace

import (
	"fmt"

	"repro/internal/rng"
)

// Mix is one multiprogrammed workload: eight applications co-scheduled on
// the SMT processor. The thirteen mixes follow the paper's methodology
// (§5): applications are grouped by single-thread IPC class, memory
// footprint, and int/FP type; int/FP combinations are kept as even as
// possible; homogeneous mixes (similar applications, where the paper
// reports the largest adaptive gains) repeat applications of one class.
type Mix struct {
	Name        string
	Description string
	Apps        []string // profile names; len == 8
	Homogeneous bool     // mix of behaviourally similar applications
}

var mixes = []Mix{
	{
		Name:        "int-compute",
		Description: "homogeneous: cache-resident integer compute",
		Apps:        []string{"gzip", "crafty", "gap", "vortex", "bzip2", "parser", "crafty", "gzip"},
		Homogeneous: true,
	},
	{
		Name:        "int-memory",
		Description: "memory-leaning integer: pointer chasers with cache-resident consumers",
		Apps:        []string{"mcf", "twolf", "mcf", "gzip", "twolf", "parser", "bzip2", "vortex"},
		Homogeneous: true,
	},
	{
		Name:        "int-branchy",
		Description: "homogeneous: control-intensive integer codes with poor predictability",
		Apps:        []string{"gcc", "crafty", "parser", "twolf", "gcc", "crafty", "parser", "gcc"},
		Homogeneous: true,
	},
	{
		Name:        "fp-stream",
		Description: "homogeneous: streaming floating-point stencils",
		Apps:        []string{"swim", "mgrid", "applu", "swim", "mgrid", "applu", "swim", "mgrid"},
		Homogeneous: true,
	},
	{
		Name:        "fp-memory",
		Description: "memory-leaning floating point: scattered-reference codes with streaming consumers",
		Apps:        []string{"art", "ammp", "art", "equake", "lucas", "mgrid", "ammp", "swim"},
		Homogeneous: true,
	},
	{
		Name:        "fp-compute",
		Description: "homogeneous: FP-multiply-dominated compute",
		Apps:        []string{"lucas", "mgrid", "lucas", "applu", "lucas", "mgrid", "applu", "lucas"},
		Homogeneous: true,
	},
	{
		Name:        "mixed-even-1",
		Description: "diverse: four integer and four FP applications, spread across IPC classes",
		Apps:        []string{"gzip", "swim", "gcc", "mgrid", "mcf", "art", "crafty", "applu"},
	},
	{
		Name:        "mixed-even-2",
		Description: "diverse: four integer and four FP applications, second draw",
		Apps:        []string{"bzip2", "equake", "vortex", "lucas", "parser", "ammp", "gap", "swim"},
	},
	{
		Name:        "mixed-ilp",
		Description: "diverse: high-ILP applications of both types",
		Apps:        []string{"crafty", "gap", "lucas", "mgrid", "gzip", "vortex", "applu", "bzip2"},
	},
	{
		Name:        "mixed-lowipc",
		Description: "homogeneous-by-IPC: low-IPC memory-bound applications of both types",
		Apps:        []string{"mcf", "art", "twolf", "ammp", "equake", "mcf", "art", "twolf"},
		Homogeneous: true,
	},
	{
		Name:        "branchy-mixed",
		Description: "diverse with a control-intensive core",
		Apps:        []string{"gcc", "crafty", "parser", "twolf", "equake", "art", "gzip", "vortex"},
	},
	{
		Name:        "memory-mixed",
		Description: "diverse with a memory-bound core and compute beneficiaries",
		Apps:        []string{"mcf", "art", "mcf", "art", "gzip", "lucas", "crafty", "mgrid"},
	},
	{
		Name:        "kitchen-sink",
		Description: "diverse: one application from every behavioural corner",
		Apps:        []string{"gzip", "gcc", "mcf", "crafty", "swim", "art", "lucas", "equake"},
	},
}

// Mixes returns the thirteen-workload catalogue in its canonical order.
func Mixes() []Mix {
	out := make([]Mix, len(mixes))
	copy(out, mixes)
	return out
}

// MixByName looks up a mix; ok is false if absent.
func MixByName(name string) (m Mix, ok bool) {
	for _, mx := range mixes {
		if mx.Name == name {
			return mx, true
		}
	}
	return Mix{}, false
}

// Programs instantiates the mix for n hardware contexts (1 <= n <= 8)
// with the given seed. For n < 8, applications are excluded by seeded
// random choice, mirroring the paper's derivation of the 4- and 6-thread
// workloads from the 8-thread mixes.
func (m Mix) Programs(n int, seed uint64) ([]*Program, error) {
	if n < 1 || n > len(m.Apps) {
		return nil, fmt.Errorf("trace: mix %q supports 1..%d threads, got %d", m.Name, len(m.Apps), n)
	}
	// Seeded Fisher-Yates selection of n of the 8 slots.
	idx := make([]int, len(m.Apps))
	for i := range idx {
		idx[i] = i
	}
	r := rng.New(seed ^ 0xa5a5a5a5a5a5a5a5)
	for i := len(idx) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	progs := make([]*Program, n)
	for t := 0; t < n; t++ {
		name := m.Apps[idx[t]]
		prof, ok := ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("trace: mix %q references unknown profile %q", m.Name, name)
		}
		progs[t] = NewProgram(prof, t, seed)
	}
	return progs, nil
}

// Validate checks that every referenced profile exists and the mix has
// exactly eight slots.
func (m Mix) Validate() error {
	if len(m.Apps) != 8 {
		return fmt.Errorf("trace: mix %q must list 8 applications, has %d", m.Name, len(m.Apps))
	}
	for _, name := range m.Apps {
		if _, ok := ProfileByName(name); !ok {
			return fmt.Errorf("trace: mix %q references unknown profile %q", m.Name, name)
		}
	}
	return nil
}
