package trace

import (
	"fmt"
	"sync"
)

// This file implements the shared trace cache behind CachedPrograms —
// the "decode once" half of batch simulation. A sweep point re-runs the
// same (mix, threads, seed) workload under many policies, thresholds
// and machine configs; the instruction stream is identical every time,
// because a Program is self-contained and machine-independent. Paying
// the generator (PRNG draws, geometric dependency sampling, address
// synthesis) per run is therefore pure waste. CachedPrograms records
// the stream's prefix once and hands out replay-backed Programs that
// serve it as plain slice reads; past the prefix they fall back to live
// generation from the recorded post-prefix state, so results are
// bit-identical to never-cached runs at any run length.

// cacheKey identifies one recorded workload.
type cacheKey struct {
	mix     string
	threads int
	seed    uint64
}

// cachedTrace is one workload's recording: per-thread prefixes, the
// frozen generator state after each prefix, and the pristine initial
// state each handed-out Program starts from. All fields are immutable
// after construction and shared by every Program handed out.
type cachedTrace struct {
	base      []*Program
	prefix    [][]replayItem
	end       []*Program
	perThread int
}

var (
	cacheMu    sync.Mutex
	traceCache = map[cacheKey]*cachedTrace{}
)

// maxCachedTraces bounds resident recordings. A sweep touches a handful
// of (mix, seed) points at a time; when the map is full an arbitrary
// entry is dropped — eviction costs one re-recording, never correctness.
const maxCachedTraces = 8

// CachedPrograms returns programs for mix/threads/seed that replay a
// recorded prefix of perThread instructions per context instead of
// re-deriving it, falling back to live generation beyond the prefix.
// The returned Programs are fresh (single-owner, like Mix.Programs) and
// byte-identical in behaviour to Mix.Programs output; only the CPU cost
// of producing the stream changes. Recordings are cached process-wide
// and shared; concurrent callers are safe.
func CachedPrograms(mixName string, threads int, seed uint64, perThread int) ([]*Program, error) {
	if perThread < 1 {
		return nil, fmt.Errorf("trace: CachedPrograms perThread must be >= 1, got %d", perThread)
	}
	key := cacheKey{mix: mixName, threads: threads, seed: seed}

	cacheMu.Lock()
	c, ok := traceCache[key]
	if !ok || c.perThread < perThread {
		mix, found := MixByName(mixName)
		if !found {
			cacheMu.Unlock()
			return nil, fmt.Errorf("trace: unknown mix %q", mixName)
		}
		progs, err := mix.Programs(threads, seed)
		if err != nil {
			cacheMu.Unlock()
			return nil, err
		}
		c = record(progs, perThread)
		if _, present := traceCache[key]; !present && len(traceCache) >= maxCachedTraces {
			for k := range traceCache {
				delete(traceCache, k)
				break
			}
		}
		traceCache[key] = c
	}
	cacheMu.Unlock()

	out := make([]*Program, len(c.base))
	for t := range c.base {
		cp := *c.base[t]
		cp.replay = c.prefix[t]
		cp.replayEnd = c.end[t]
		out[t] = &cp
	}
	return out, nil
}

// record consumes progs, recording perThread instructions from each.
func record(progs []*Program, perThread int) *cachedTrace {
	c := &cachedTrace{
		base:      make([]*Program, len(progs)),
		prefix:    make([][]replayItem, len(progs)),
		end:       make([]*Program, len(progs)),
		perThread: perThread,
	}
	for t, p := range progs {
		c.base[t] = p.Clone()
		items := make([]replayItem, perThread)
		for i := range items {
			in := p.Next()
			items[i] = replayItem{inst: in, phase: uint16(p.phase)}
		}
		c.prefix[t] = items
		c.end[t] = p.Clone()
	}
	return c
}

// FlushTraceCache drops every cached recording (tests and memory-
// sensitive callers).
func FlushTraceCache() {
	cacheMu.Lock()
	traceCache = map[cacheKey]*cachedTrace{}
	cacheMu.Unlock()
}
