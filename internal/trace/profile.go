// Package trace is the workload substrate of the simulator: a
// deterministic synthetic program generator that stands in for the SPEC
// CPU2000 binaries the paper runs on SimpleSMT (see DESIGN.md §2 for the
// substitution argument).
//
// A Profile describes one application as a cycle of Phases; each Phase
// fixes an instruction-class mix, a memory-reference pattern, a static
// branch-behaviour mixture, and a dependency-distance (ILP) model. A
// Program instantiates a Profile for one hardware context and produces an
// infinite, deterministic stream of isa.Inst records.
package trace

import "fmt"

// Phase describes one behavioural phase of an application. Phases are the
// source of the time-varying behaviour that adaptive scheduling exploits:
// a thread in its memory phase clogs the load/store queue, a thread in its
// branchy phase wastes fetch slots on wrong paths.
type Phase struct {
	Name string

	// MeanLen is the mean number of dynamic instructions per occurrence
	// of this phase (phase lengths are geometrically distributed).
	MeanLen int

	// Instruction-class mix. Fractions of the dynamic stream; the
	// remainder after branches, jumps, loads, stores and syscalls is
	// compute, split between integer and floating point by FPFrac.
	BranchFrac  float64 // conditional branches
	JumpFrac    float64 // unconditional jumps
	LoadFrac    float64
	StoreFrac   float64
	SyscallRate float64 // per-instruction syscall probability (tiny)
	FPFrac      float64 // fraction of compute that is floating point
	IntMulFrac  float64 // fraction of integer compute that is multiply
	IntDivFrac  float64 // fraction of integer compute that is divide
	FPMulFrac   float64 // fraction of FP compute that is multiply
	FPDivFrac   float64 // fraction of FP compute that is divide

	// Memory-reference pattern. A data reference is sequential
	// (streaming) with probability SeqFrac, stack-local with probability
	// StackFrac, and otherwise uniform over DataFootprint bytes.
	DataFootprint uint64
	SeqFrac       float64
	StackFrac     float64

	// CodeWords is the static code-region size in instruction words;
	// regions larger than the L1 I-cache (8K words) miss in it.
	CodeWords uint64

	// Static branch-behaviour mixture (weights, normalised internally).
	// Biased branches follow one direction ~95% of the time, loop
	// branches follow a strict k-iteration pattern, random branches are
	// 50/50 coin flips (the source of mispredictions).
	BiasedW, LoopW, RandomW float64

	// Dependency model: each operand depends on the instruction
	// Geometric(MeanDepDist) positions earlier with probability DepProb.
	// Short distances serialise execution (low ILP).
	MeanDepDist float64
	DepProb     float64
}

// computeFrac returns the fraction of the stream that is compute.
func (p *Phase) computeFrac() float64 {
	return 1 - p.BranchFrac - p.JumpFrac - p.LoadFrac - p.StoreFrac - p.SyscallRate
}

// Validate checks that the phase's fractions form a distribution.
func (p *Phase) Validate() error {
	if p.MeanLen <= 0 {
		return fmt.Errorf("phase %q: MeanLen must be positive", p.Name)
	}
	if p.computeFrac() < 0 {
		return fmt.Errorf("phase %q: class fractions exceed 1", p.Name)
	}
	for _, f := range []float64{
		p.BranchFrac, p.JumpFrac, p.LoadFrac, p.StoreFrac, p.SyscallRate,
		p.FPFrac, p.IntMulFrac, p.IntDivFrac, p.FPMulFrac, p.FPDivFrac,
		p.SeqFrac, p.StackFrac, p.DepProb,
	} {
		if f < 0 || f > 1 {
			return fmt.Errorf("phase %q: fraction %v out of [0,1]", p.Name, f)
		}
	}
	if p.SeqFrac+p.StackFrac > 1 {
		return fmt.Errorf("phase %q: SeqFrac+StackFrac exceed 1", p.Name)
	}
	if p.DataFootprint == 0 {
		return fmt.Errorf("phase %q: DataFootprint must be positive", p.Name)
	}
	if p.CodeWords == 0 {
		return fmt.Errorf("phase %q: CodeWords must be positive", p.Name)
	}
	if p.BiasedW+p.LoopW+p.RandomW <= 0 {
		return fmt.Errorf("phase %q: branch behaviour weights must be positive", p.Name)
	}
	if p.MeanDepDist < 1 {
		return fmt.Errorf("phase %q: MeanDepDist must be >= 1", p.Name)
	}
	return nil
}

// Profile describes one synthetic application.
type Profile struct {
	Name        string
	Class       string // "int" or "fp", mirroring the SPEC CPU2000 split
	Description string
	Phases      []Phase
}

// Validate checks the profile and all its phases.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile: empty name")
	}
	if p.Class != "int" && p.Class != "fp" {
		return fmt.Errorf("profile %q: class must be \"int\" or \"fp\"", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("profile %q: needs at least one phase", p.Name)
	}
	for i := range p.Phases {
		if err := p.Phases[i].Validate(); err != nil {
			return fmt.Errorf("profile %q: %w", p.Name, err)
		}
	}
	return nil
}
