package trace

import "sort"

// The profile catalogue models sixteen SPEC CPU2000 applications by their
// published behavioural classes: instruction mix, branch predictability,
// memory footprint and reference pattern, code footprint, and ILP. The
// numbers are not calibrated against any proprietary trace; they are
// chosen so each profile lands in the same qualitative regime (miss
// rates, branch rates, single-thread IPC class) that the paper's mix
// methodology sorts on. See DESIGN.md §2.
//
// Footprints are word-of-caution small relative to the real applications
// (e.g. mcf's 100+ MB becomes 3 MB): what matters to the fetch policies
// is where the working set falls relative to the 32 KB L1 and 1 MB L2,
// not its absolute size.

const (
	kb = 1 << 10
	mb = 1 << 20
)

var catalog = []*Profile{
	{
		Name: "gzip", Class: "int",
		Description: "compression: alternating compress (sequential memory) and tree-update (branchy) phases",
		Phases: []Phase{
			{
				Name: "compress", MeanLen: 40000,
				BranchFrac: 0.09, JumpFrac: 0.01, LoadFrac: 0.22, StoreFrac: 0.12, SyscallRate: 1e-5,
				DataFootprint: 192 * kb, SeqFrac: 0.75, StackFrac: 0.10, CodeWords: 3000,
				BiasedW: 0.7, LoopW: 0.25, RandomW: 0.05,
				MeanDepDist: 5, DepProb: 0.75,
			},
			{
				Name: "trees", MeanLen: 25000,
				BranchFrac: 0.15, JumpFrac: 0.02, LoadFrac: 0.24, StoreFrac: 0.08, SyscallRate: 1e-5,
				DataFootprint: 64 * kb, SeqFrac: 0.2, StackFrac: 0.25, CodeWords: 2500,
				BiasedW: 0.5, LoopW: 0.3, RandomW: 0.2,
				MeanDepDist: 4, DepProb: 0.8,
			},
		},
	},
	{
		Name: "gcc", Class: "int",
		Description: "compiler: very branchy parse phase, memory-heavy allocation phase, large code footprint",
		Phases: []Phase{
			{
				Name: "parse", MeanLen: 35000,
				BranchFrac: 0.18, JumpFrac: 0.03, LoadFrac: 0.24, StoreFrac: 0.10, SyscallRate: 2e-5,
				DataFootprint: 256 * kb, SeqFrac: 0.15, StackFrac: 0.30, CodeWords: 24000,
				BiasedW: 0.40, LoopW: 0.20, RandomW: 0.40,
				MeanDepDist: 4, DepProb: 0.8,
			},
			{
				Name: "regalloc", MeanLen: 30000,
				BranchFrac: 0.12, JumpFrac: 0.02, LoadFrac: 0.30, StoreFrac: 0.12, SyscallRate: 2e-5,
				DataFootprint: 768 * kb, SeqFrac: 0.10, StackFrac: 0.15, CodeWords: 20000,
				BiasedW: 0.5, LoopW: 0.3, RandomW: 0.2,
				MeanDepDist: 5, DepProb: 0.75,
			},
		},
	},
	{
		Name: "mcf", Class: "int",
		Description: "network simplex: pointer chasing over a huge working set; memory bound, low IPC",
		Phases: []Phase{
			{
				Name: "chase", MeanLen: 50000,
				BranchFrac: 0.10, JumpFrac: 0.01, LoadFrac: 0.34, StoreFrac: 0.08, SyscallRate: 1e-5,
				DataFootprint: 3 * mb, SeqFrac: 0.05, StackFrac: 0.05, CodeWords: 1500,
				BiasedW: 0.55, LoopW: 0.25, RandomW: 0.20,
				MeanDepDist: 2, DepProb: 0.9,
			},
			{
				Name: "price", MeanLen: 20000,
				BranchFrac: 0.12, JumpFrac: 0.01, LoadFrac: 0.26, StoreFrac: 0.10, SyscallRate: 1e-5,
				DataFootprint: 1 * mb, SeqFrac: 0.35, StackFrac: 0.10, CodeWords: 1500,
				BiasedW: 0.6, LoopW: 0.25, RandomW: 0.15,
				MeanDepDist: 4, DepProb: 0.8,
			},
		},
	},
	{
		Name: "crafty", Class: "int",
		Description: "chess: high ILP, small cache-resident working set, data-dependent (random) branches",
		Phases: []Phase{
			{
				Name: "search", MeanLen: 45000,
				BranchFrac: 0.14, JumpFrac: 0.02, LoadFrac: 0.22, StoreFrac: 0.07, SyscallRate: 1e-5,
				DataFootprint: 24 * kb, SeqFrac: 0.10, StackFrac: 0.45, CodeWords: 6000,
				BiasedW: 0.40, LoopW: 0.15, RandomW: 0.45,
				MeanDepDist: 9, DepProb: 0.65,
			},
			{
				Name: "evaluate", MeanLen: 20000,
				BranchFrac: 0.10, JumpFrac: 0.01, LoadFrac: 0.20, StoreFrac: 0.05, SyscallRate: 1e-5,
				DataFootprint: 24 * kb, SeqFrac: 0.15, StackFrac: 0.50, CodeWords: 5000,
				IntMulFrac: 0.05,
				BiasedW:    0.6, LoopW: 0.25, RandomW: 0.15,
				MeanDepDist: 10, DepProb: 0.6,
			},
		},
	},
	{
		Name: "parser", Class: "int",
		Description: "NLP parser: branchy with moderate memory pressure and dictionary lookups",
		Phases: []Phase{
			{
				Name: "tokenize", MeanLen: 25000,
				BranchFrac: 0.16, JumpFrac: 0.02, LoadFrac: 0.23, StoreFrac: 0.09, SyscallRate: 1e-5,
				DataFootprint: 128 * kb, SeqFrac: 0.25, StackFrac: 0.25, CodeWords: 5000,
				BiasedW: 0.45, LoopW: 0.25, RandomW: 0.30,
				MeanDepDist: 4, DepProb: 0.8,
			},
			{
				Name: "link", MeanLen: 35000,
				BranchFrac: 0.13, JumpFrac: 0.02, LoadFrac: 0.28, StoreFrac: 0.10, SyscallRate: 1e-5,
				DataFootprint: 512 * kb, SeqFrac: 0.10, StackFrac: 0.15, CodeWords: 5000,
				BiasedW: 0.5, LoopW: 0.25, RandomW: 0.25,
				MeanDepDist: 3, DepProb: 0.85,
			},
		},
	},
	{
		Name: "vortex", Class: "int",
		Description: "object database: large code footprint, well-predicted branches, medium data set",
		Phases: []Phase{
			{
				Name: "lookup", MeanLen: 40000,
				BranchFrac: 0.14, JumpFrac: 0.04, LoadFrac: 0.26, StoreFrac: 0.12, SyscallRate: 2e-5,
				DataFootprint: 384 * kb, SeqFrac: 0.20, StackFrac: 0.25, CodeWords: 28000,
				BiasedW: 0.75, LoopW: 0.15, RandomW: 0.10,
				MeanDepDist: 5, DepProb: 0.75,
			},
			{
				Name: "insert", MeanLen: 20000,
				BranchFrac: 0.12, JumpFrac: 0.03, LoadFrac: 0.24, StoreFrac: 0.16, SyscallRate: 2e-5,
				DataFootprint: 512 * kb, SeqFrac: 0.15, StackFrac: 0.20, CodeWords: 26000,
				BiasedW: 0.7, LoopW: 0.2, RandomW: 0.1,
				MeanDepDist: 5, DepProb: 0.75,
			},
		},
	},
	{
		Name: "bzip2", Class: "int",
		Description: "block-sorting compression: long sequential scans with a sort phase",
		Phases: []Phase{
			{
				Name: "sort", MeanLen: 45000,
				BranchFrac: 0.12, JumpFrac: 0.01, LoadFrac: 0.26, StoreFrac: 0.11, SyscallRate: 1e-5,
				DataFootprint: 640 * kb, SeqFrac: 0.45, StackFrac: 0.10, CodeWords: 2500,
				BiasedW: 0.5, LoopW: 0.3, RandomW: 0.2,
				MeanDepDist: 5, DepProb: 0.75,
			},
			{
				Name: "huffman", MeanLen: 25000,
				BranchFrac: 0.11, JumpFrac: 0.01, LoadFrac: 0.20, StoreFrac: 0.08, SyscallRate: 1e-5,
				DataFootprint: 48 * kb, SeqFrac: 0.30, StackFrac: 0.30, CodeWords: 2000,
				BiasedW: 0.6, LoopW: 0.3, RandomW: 0.1,
				MeanDepDist: 6, DepProb: 0.7,
			},
		},
	},
	{
		Name: "twolf", Class: "int",
		Description: "place and route: random walks over a megabyte-scale data set plus data-dependent branches",
		Phases: []Phase{
			{
				Name: "place", MeanLen: 40000,
				BranchFrac: 0.14, JumpFrac: 0.01, LoadFrac: 0.27, StoreFrac: 0.08, SyscallRate: 1e-5,
				DataFootprint: 1 * mb, SeqFrac: 0.05, StackFrac: 0.15, CodeWords: 7000,
				BiasedW: 0.40, LoopW: 0.25, RandomW: 0.35,
				MeanDepDist: 3, DepProb: 0.85,
			},
			{
				Name: "anneal", MeanLen: 20000,
				BranchFrac: 0.12, JumpFrac: 0.01, LoadFrac: 0.22, StoreFrac: 0.07, SyscallRate: 1e-5,
				DataFootprint: 256 * kb, SeqFrac: 0.15, StackFrac: 0.25, CodeWords: 6000,
				IntMulFrac: 0.08,
				BiasedW:    0.5, LoopW: 0.2, RandomW: 0.3,
				MeanDepDist: 6, DepProb: 0.7,
			},
		},
	},
	{
		Name: "gap", Class: "int",
		Description: "group theory: integer-multiply heavy compute with modest memory traffic",
		Phases: []Phase{
			{
				Name: "arith", MeanLen: 50000,
				BranchFrac: 0.10, JumpFrac: 0.02, LoadFrac: 0.20, StoreFrac: 0.08, SyscallRate: 1e-5,
				DataFootprint: 192 * kb, SeqFrac: 0.35, StackFrac: 0.25, CodeWords: 9000,
				IntMulFrac: 0.18, IntDivFrac: 0.01,
				BiasedW: 0.65, LoopW: 0.25, RandomW: 0.10,
				MeanDepDist: 6, DepProb: 0.7,
			},
			{
				Name: "collect", MeanLen: 15000,
				BranchFrac: 0.13, JumpFrac: 0.02, LoadFrac: 0.28, StoreFrac: 0.12, SyscallRate: 1e-5,
				DataFootprint: 768 * kb, SeqFrac: 0.25, StackFrac: 0.10, CodeWords: 8000,
				BiasedW: 0.6, LoopW: 0.25, RandomW: 0.15,
				MeanDepDist: 4, DepProb: 0.8,
			},
		},
	},
	{
		Name: "swim", Class: "fp",
		Description: "shallow-water model: pure streaming FP over multi-megabyte arrays, few branches",
		Phases: []Phase{
			{
				Name: "stencil", MeanLen: 60000,
				BranchFrac: 0.03, JumpFrac: 0.005, LoadFrac: 0.31, StoreFrac: 0.14, SyscallRate: 5e-6,
				DataFootprint: 3 * mb, SeqFrac: 0.85, StackFrac: 0.02, CodeWords: 1200,
				FPFrac: 0.9, FPMulFrac: 0.4,
				BiasedW: 0.3, LoopW: 0.68, RandomW: 0.02,
				MeanDepDist: 12, DepProb: 0.6,
			},
			{
				Name: "update", MeanLen: 30000,
				BranchFrac: 0.04, JumpFrac: 0.005, LoadFrac: 0.26, StoreFrac: 0.18, SyscallRate: 5e-6,
				DataFootprint: 3 * mb, SeqFrac: 0.90, StackFrac: 0.02, CodeWords: 1000,
				FPFrac: 0.85, FPMulFrac: 0.35,
				BiasedW: 0.3, LoopW: 0.68, RandomW: 0.02,
				MeanDepDist: 14, DepProb: 0.55,
			},
		},
	},
	{
		Name: "mgrid", Class: "fp",
		Description: "multigrid solver: streaming FP with high ILP, tiny code",
		Phases: []Phase{
			{
				Name: "relax", MeanLen: 55000,
				BranchFrac: 0.02, JumpFrac: 0.004, LoadFrac: 0.33, StoreFrac: 0.10, SyscallRate: 5e-6,
				DataFootprint: 2 * mb, SeqFrac: 0.80, StackFrac: 0.03, CodeWords: 900,
				FPFrac: 0.92, FPMulFrac: 0.45,
				BiasedW: 0.25, LoopW: 0.73, RandomW: 0.02,
				MeanDepDist: 15, DepProb: 0.55,
			},
			{
				Name: "restrict", MeanLen: 20000,
				BranchFrac: 0.03, JumpFrac: 0.004, LoadFrac: 0.28, StoreFrac: 0.14, SyscallRate: 5e-6,
				DataFootprint: 512 * kb, SeqFrac: 0.75, StackFrac: 0.05, CodeWords: 900,
				FPFrac: 0.9, FPMulFrac: 0.4,
				BiasedW: 0.3, LoopW: 0.68, RandomW: 0.02,
				MeanDepDist: 13, DepProb: 0.55,
			},
		},
	},
	{
		Name: "applu", Class: "fp",
		Description: "LU solver: blocked FP with divides and moderate memory pressure",
		Phases: []Phase{
			{
				Name: "jacobi", MeanLen: 45000,
				BranchFrac: 0.04, JumpFrac: 0.005, LoadFrac: 0.30, StoreFrac: 0.12, SyscallRate: 5e-6,
				DataFootprint: 2 * mb, SeqFrac: 0.65, StackFrac: 0.05, CodeWords: 2000,
				FPFrac: 0.9, FPMulFrac: 0.4, FPDivFrac: 0.04,
				BiasedW: 0.3, LoopW: 0.65, RandomW: 0.05,
				MeanDepDist: 8, DepProb: 0.65,
			},
			{
				Name: "rhs", MeanLen: 25000,
				BranchFrac: 0.05, JumpFrac: 0.005, LoadFrac: 0.27, StoreFrac: 0.13, SyscallRate: 5e-6,
				DataFootprint: 1 * mb, SeqFrac: 0.70, StackFrac: 0.05, CodeWords: 1800,
				FPFrac: 0.88, FPMulFrac: 0.38, FPDivFrac: 0.02,
				BiasedW: 0.3, LoopW: 0.65, RandomW: 0.05,
				MeanDepDist: 9, DepProb: 0.62,
			},
		},
	},
	{
		Name: "art", Class: "fp",
		Description: "neural-network image recognition: memory bound with scattered references and poor cache behaviour",
		Phases: []Phase{
			{
				Name: "scan", MeanLen: 40000,
				BranchFrac: 0.06, JumpFrac: 0.01, LoadFrac: 0.35, StoreFrac: 0.08, SyscallRate: 5e-6,
				DataFootprint: 3 * mb, SeqFrac: 0.25, StackFrac: 0.03, CodeWords: 1200,
				FPFrac: 0.75, FPMulFrac: 0.5,
				BiasedW: 0.4, LoopW: 0.45, RandomW: 0.15,
				MeanDepDist: 4, DepProb: 0.8,
			},
			{
				Name: "match", MeanLen: 20000,
				BranchFrac: 0.08, JumpFrac: 0.01, LoadFrac: 0.30, StoreFrac: 0.06, SyscallRate: 5e-6,
				DataFootprint: 3 * mb, SeqFrac: 0.15, StackFrac: 0.05, CodeWords: 1200,
				FPFrac: 0.7, FPMulFrac: 0.45,
				BiasedW: 0.4, LoopW: 0.4, RandomW: 0.2,
				MeanDepDist: 3, DepProb: 0.85,
			},
		},
	},
	{
		Name: "equake", Class: "fp",
		Description: "earthquake simulation: sparse matrix-vector phases alternating with time integration",
		Phases: []Phase{
			{
				Name: "smvp", MeanLen: 35000,
				BranchFrac: 0.07, JumpFrac: 0.01, LoadFrac: 0.33, StoreFrac: 0.07, SyscallRate: 5e-6,
				DataFootprint: 2 * mb, SeqFrac: 0.35, StackFrac: 0.05, CodeWords: 1500,
				FPFrac: 0.8, FPMulFrac: 0.45,
				BiasedW: 0.45, LoopW: 0.45, RandomW: 0.10,
				MeanDepDist: 4, DepProb: 0.8,
			},
			{
				Name: "integrate", MeanLen: 20000,
				BranchFrac: 0.04, JumpFrac: 0.005, LoadFrac: 0.26, StoreFrac: 0.14, SyscallRate: 5e-6,
				DataFootprint: 1 * mb, SeqFrac: 0.80, StackFrac: 0.03, CodeWords: 1200,
				FPFrac: 0.85, FPMulFrac: 0.4, FPDivFrac: 0.02,
				BiasedW: 0.35, LoopW: 0.6, RandomW: 0.05,
				MeanDepDist: 10, DepProb: 0.6,
			},
		},
	},
	{
		Name: "lucas", Class: "fp",
		Description: "primality testing: FFT-style FP-multiply-dominated compute, cache friendly",
		Phases: []Phase{
			{
				Name: "fft", MeanLen: 50000,
				BranchFrac: 0.02, JumpFrac: 0.004, LoadFrac: 0.26, StoreFrac: 0.12, SyscallRate: 5e-6,
				DataFootprint: 768 * kb, SeqFrac: 0.55, StackFrac: 0.10, CodeWords: 1100,
				FPFrac: 0.95, FPMulFrac: 0.55,
				BiasedW: 0.3, LoopW: 0.68, RandomW: 0.02,
				MeanDepDist: 11, DepProb: 0.6,
			},
			{
				Name: "carry", MeanLen: 15000,
				BranchFrac: 0.06, JumpFrac: 0.005, LoadFrac: 0.24, StoreFrac: 0.14, SyscallRate: 5e-6,
				DataFootprint: 512 * kb, SeqFrac: 0.75, StackFrac: 0.08, CodeWords: 1000,
				FPFrac: 0.6, FPMulFrac: 0.3,
				BiasedW: 0.4, LoopW: 0.55, RandomW: 0.05,
				MeanDepDist: 7, DepProb: 0.7,
			},
		},
	},
	{
		Name: "ammp", Class: "fp",
		Description: "molecular dynamics: neighbour-list walks over a large footprint with FP divides",
		Phases: []Phase{
			{
				Name: "nonbond", MeanLen: 45000,
				BranchFrac: 0.05, JumpFrac: 0.01, LoadFrac: 0.32, StoreFrac: 0.09, SyscallRate: 5e-6,
				DataFootprint: 2 * mb, SeqFrac: 0.20, StackFrac: 0.05, CodeWords: 1800,
				FPFrac: 0.85, FPMulFrac: 0.4, FPDivFrac: 0.05,
				BiasedW: 0.45, LoopW: 0.45, RandomW: 0.10,
				MeanDepDist: 5, DepProb: 0.75,
			},
			{
				Name: "bonded", MeanLen: 15000,
				BranchFrac: 0.06, JumpFrac: 0.01, LoadFrac: 0.26, StoreFrac: 0.11, SyscallRate: 5e-6,
				DataFootprint: 512 * kb, SeqFrac: 0.45, StackFrac: 0.10, CodeWords: 1500,
				FPFrac: 0.8, FPMulFrac: 0.35, FPDivFrac: 0.02,
				BiasedW: 0.4, LoopW: 0.5, RandomW: 0.10,
				MeanDepDist: 8, DepProb: 0.65,
			},
		},
	},
}

var catalogByName = func() map[string]*Profile {
	m := make(map[string]*Profile, len(catalog))
	for _, p := range catalog {
		if err := p.Validate(); err != nil {
			panic("trace: invalid catalogue profile: " + err.Error())
		}
		m[p.Name] = p
	}
	return m
}()

// Profiles returns the full application catalogue, sorted by name.
func Profiles() []*Profile {
	out := make([]*Profile, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProfileByName looks up a catalogue profile; ok is false if absent.
func ProfileByName(name string) (p *Profile, ok bool) {
	p, ok = catalogByName[name]
	return
}
