package trace

import "repro/internal/isa"

// StreamStats summarises the measured dynamic characteristics of a
// program stream, for validating profiles against their SPEC CPU2000
// behavioural targets (cmd/mixgen -sample) and for tests.
type StreamStats struct {
	Instructions int
	ClassCounts  [isa.NumClasses]int
	Branches     int
	Taken        int
	// BlocksTouched counts distinct 64-byte data blocks referenced — a
	// working-set proxy.
	BlocksTouched int
	// StaticPCs counts distinct instruction addresses seen.
	StaticPCs int
	// PhaseChanges counts phase transitions during the sample.
	PhaseChanges int
}

// ClassFrac returns the dynamic fraction of class c.
func (s StreamStats) ClassFrac(c isa.Class) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.ClassCounts[c]) / float64(s.Instructions)
}

// MemFrac returns the dynamic load+store fraction.
func (s StreamStats) MemFrac() float64 {
	return s.ClassFrac(isa.Load) + s.ClassFrac(isa.Store)
}

// TakenFrac returns the taken fraction of conditional branches.
func (s StreamStats) TakenFrac() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Branches)
}

// WorkingSetBytes estimates the touched data working set.
func (s StreamStats) WorkingSetBytes() int { return s.BlocksTouched * 64 }

// Sample generates n instructions of prof and measures the stream.
func Sample(prof *Profile, n int, seed uint64) StreamStats {
	p := NewProgram(prof, 0, seed)
	var st StreamStats
	st.Instructions = n
	blocks := make(map[uint64]struct{})
	pcs := make(map[uint64]struct{})
	phase := p.PhaseName()
	for i := 0; i < n; i++ {
		in := p.Next()
		st.ClassCounts[in.Class]++
		pcs[in.PC] = struct{}{}
		if in.Class.IsMem() {
			blocks[in.Addr>>6] = struct{}{}
		}
		if in.Class == isa.Branch {
			st.Branches++
			if in.Taken {
				st.Taken++
			}
		}
		if p.PhaseName() != phase {
			st.PhaseChanges++
			phase = p.PhaseName()
		}
	}
	st.BlocksTouched = len(blocks)
	st.StaticPCs = len(pcs)
	return st
}
