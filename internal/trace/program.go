package trace

import (
	"math"

	"repro/internal/isa"
	"repro/internal/rng"
)

// loopSlots is the size of the per-program static-loop-branch counter
// table. Loop branches hash into it; collisions merely blur two loops
// together, which is harmless.
const loopSlots = 512

// branchKind classifies a static branch site.
type branchKind uint8

const (
	brBiased branchKind = iota
	brLoop
	brRandom
)

// Program is a deterministic infinite instruction stream instantiating a
// Profile for one hardware context. All state is plain data so a Program
// can be cloned by value; a clone replays an identical future stream.
type Program struct {
	prof *Profile // immutable, shared between clones
	tid  int
	seed uint64

	r   rng.PRNG
	seq uint64

	phase     int // index into prof.Phases
	phaseLeft int // dynamic instructions remaining in this phase

	offset   uint64 // word offset of the next instruction in the region
	heapPtr  uint64 // current streaming pointer
	loopCnt  [loopSlots]uint16
	lastDest uint64 // seq of the most recent register-writing instruction

	// depLogQ caches math.Log(1-1/MeanDepDist) per phase (0 marks a
	// mean <= 1, where Geometric returns 1 without drawing). Shared
	// immutably between clones; computed once in NewProgram so the
	// per-instruction dependency draw skips the math.Log.
	depLogQ []float64

	// replay, when non-nil, is an immutable recorded prefix of this
	// exact stream (see Record/CachedPrograms): Next serves instructions
	// from it instead of re-deriving them, which is what lets a sweep
	// re-simulating one workload under many policies pay the generator
	// cost once. replayEnd is the frozen generator state at the end of
	// the prefix; when the prefix runs out the program adopts it and
	// generation continues live, bit-identically to a never-recorded
	// run. Both are shared between clones.
	replay    []replayItem
	replayPos int
	replayEnd *Program
}

// replayItem is one recorded instruction plus the phase it was generated
// in — the only generator state a consumer can observe mid-stream
// (WrongPathInst draws from the current phase's mixture and footprint).
type replayItem struct {
	inst  isa.Inst
	phase uint16
}

// NewProgram instantiates prof for thread tid with the given seed. The
// thread id is folded into address-space bases so co-scheduled programs
// occupy disjoint code and data regions (they still contend for shared
// cache capacity).
func NewProgram(prof *Profile, tid int, seed uint64) *Program {
	if err := prof.Validate(); err != nil {
		panic("trace: " + err.Error())
	}
	root := rng.New(seed ^ (uint64(tid+1) * 0x5851f42d4c957f2d))
	p := &Program{
		prof: prof,
		tid:  tid,
		seed: seed,
		r:    root.Split(),
	}
	p.depLogQ = make([]float64, len(prof.Phases))
	for i := range prof.Phases {
		if m := prof.Phases[i].MeanDepDist; m > 1 {
			p.depLogQ[i] = math.Log(1 - 1/m)
		}
	}
	p.enterPhase(0)
	return p
}

// Profile returns the application profile this program runs.
func (p *Program) Profile() *Profile { return p.prof }

// Seq returns the number of instructions generated so far.
func (p *Program) Seq() uint64 { return p.seq }

// PhaseName returns the name of the current phase, for diagnostics.
func (p *Program) PhaseName() string { return p.prof.Phases[p.phase].Name }

// Clone returns an independent copy that replays the same future stream.
func (p *Program) Clone() *Program {
	cp := *p
	return &cp
}

func (p *Program) enterPhase(idx int) {
	p.phase = idx
	ph := &p.prof.Phases[idx]
	p.phaseLeft = p.r.Geometric(float64(ph.MeanLen))
	p.offset = 0
	p.heapPtr = 0
}

// codeBase returns the base word address of the current phase's code
// region: distinct per (thread, phase) so phases have distinct I-cache
// footprints.
func (p *Program) codeBase() uint64 {
	return (uint64(p.tid+1) << 40) | (uint64(p.phase+1) << 28)
}

// dataBase returns the base byte address of the current phase's data
// region.
func (p *Program) dataBase() uint64 {
	return (uint64(p.tid+1) << 52) | (uint64(p.phase+1) << 44)
}

// pc returns the word address of the next instruction.
func (p *Program) pc() uint64 { return p.codeBase() + p.offset }

// hashStatic derives a stable per-static-PC value, independent of the
// dynamic stream, so static properties (branch kind, bias direction,
// loop period, jump target) are consistent across executions of the same
// instruction — which is what lets predictors and the BTB learn.
func (p *Program) hashStatic(pc uint64, salt uint64) uint64 {
	z := pc ^ (p.seed * 0x9e3779b97f4a7c15) ^ (salt * 0xbf58476d1ce4e5b9)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next produces the next instruction of the stream.
func (p *Program) Next() isa.Inst {
	if p.replay != nil {
		if p.replayPos < len(p.replay) {
			it := &p.replay[p.replayPos]
			p.replayPos++
			p.phase = int(it.phase)
			p.seq = it.inst.Seq
			return it.inst
		}
		// Prefix exhausted: adopt the frozen post-prefix generator state
		// and continue live. The copy clears the replay fields (replayEnd
		// itself was recorded live), so this branch runs once.
		*p = *p.replayEnd
	}
	ph := &p.prof.Phases[p.phase]
	p.seq++
	p.phaseLeft--
	if p.phaseLeft <= 0 {
		p.enterPhase((p.phase + 1) % len(p.prof.Phases))
		ph = &p.prof.Phases[p.phase]
	}

	in := isa.Inst{Seq: p.seq, PC: p.pc()}

	// The instruction class is a static property of the PC — real code
	// has fixed branch sites and load sites — so predictors and the BTB
	// see learnable structure. Only syscalls are dynamic (a static
	// syscall site inside a loop would fire every iteration).
	if p.r.Bool(ph.SyscallRate) {
		in.Class = isa.Syscall
	} else {
		switch p.classAt(in.PC, ph) {
		case isa.Branch:
			p.genBranch(&in, ph)
		case isa.Jump:
			p.genJump(&in, ph)
		case isa.Load:
			in.Class = isa.Load
			in.HasDst = true
			in.Addr = p.genAddr(ph)
		case isa.Store:
			in.Class = isa.Store
			in.Addr = p.genAddr(ph)
		default:
			p.genCompute(&in, ph)
		}
	}

	p.genDeps(&in, ph)
	if in.HasDst {
		p.lastDest = p.seq
	}

	// Advance control flow.
	switch {
	case in.Class == isa.Branch && in.Taken, in.Class == isa.Jump:
		p.offset = in.Target - p.codeBase()
	default:
		p.offset++
		if p.offset >= ph.CodeWords {
			p.offset = 0
		}
	}
	return in
}

// classAt returns the coarse static class of the instruction at pc.
func (p *Program) classAt(pc uint64, ph *Phase) isa.Class {
	h := p.hashStatic(pc, 4)
	v := float64(h>>40) / float64(1<<24) // uniform in [0,1), stable per PC
	switch {
	case v < ph.BranchFrac:
		return isa.Branch
	case v < ph.BranchFrac+ph.JumpFrac:
		return isa.Jump
	case v < ph.BranchFrac+ph.JumpFrac+ph.LoadFrac:
		return isa.Load
	case v < ph.BranchFrac+ph.JumpFrac+ph.LoadFrac+ph.StoreFrac:
		return isa.Store
	default:
		return isa.IntALU // refined by genCompute
	}
}

func (p *Program) genCompute(in *isa.Inst, ph *Phase) {
	in.HasDst = true
	h := p.hashStatic(in.PC, 5)
	fp := float64(h&0xffff)/65536 < ph.FPFrac
	v := float64((h>>16)&0xffff) / 65536
	if fp {
		switch {
		case v < ph.FPDivFrac:
			in.Class = isa.FPDiv
		case v < ph.FPDivFrac+ph.FPMulFrac:
			in.Class = isa.FPMult
		default:
			in.Class = isa.FPAdd
		}
		return
	}
	switch {
	case v < ph.IntDivFrac:
		in.Class = isa.IntDiv
	case v < ph.IntDivFrac+ph.IntMulFrac:
		in.Class = isa.IntMult
	default:
		in.Class = isa.IntALU
	}
}

// genAddr produces a data address per the phase's reference mixture.
func (p *Program) genAddr(ph *Phase) uint64 {
	base := p.dataBase()
	switch v := p.r.Float64(); {
	case v < ph.SeqFrac:
		// Streaming: walk forward 8 bytes at a time through the
		// footprint, wrapping.
		p.heapPtr += 8
		if p.heapPtr >= ph.DataFootprint {
			p.heapPtr = 0
		}
		return base + p.heapPtr
	case v < ph.SeqFrac+ph.StackFrac:
		// Stack-local: a 256-byte hot region, always cache-resident.
		return base + ph.DataFootprint + p.r.Uint64n(256)
	default:
		// Skewed over the footprint: most references land in a hot
		// eighth of the working set (real applications have locality
		// even in "random" access phases), the rest anywhere. Miss
		// rates still grow with footprint, but between the L1/L2/DRAM
		// regimes rather than pinned at the worst case.
		hot := ph.DataFootprint / 8
		if hot < 4096 {
			hot = min(4096, ph.DataFootprint)
		}
		if p.r.Bool(0.7) {
			return base + p.r.Uint64n(hot)
		}
		return base + p.r.Uint64n(ph.DataFootprint)
	}
}

// branchSite resolves the static properties of the branch at pc.
// Backward-target sites (loop latches) are biased or loop-patterned;
// random (data-dependent) behaviour is confined to forward-target sites,
// as in real code, where if-else tests are the unpredictable branches —
// a hot loop latch that flipped coins would dominate the mispredict
// budget of an otherwise predictable program.
func (p *Program) branchSite(pc uint64, ph *Phase) (kind branchKind, biasTaken bool, period uint16) {
	h := p.hashStatic(pc, 1)
	v := float64(h>>40) / float64(1<<24)
	if p.targetBackward(pc) {
		if v*(ph.BiasedW+ph.LoopW) < ph.BiasedW {
			kind = brBiased
		} else {
			kind = brLoop
		}
	} else {
		if v*(ph.BiasedW+ph.RandomW) < ph.BiasedW {
			kind = brBiased
		} else {
			kind = brRandom
		}
	}
	biasTaken = h&0xff < 179 // ~70% of biased branches are taken-biased
	period = uint16(4 + (h>>8)%61)
	return
}

// targetBackward reports whether the branch at pc has a backward target
// (shared decision with branchTarget).
func (p *Program) targetBackward(pc uint64) bool {
	return p.hashStatic(pc, 2)&3 != 0
}

// branchTarget derives the stable target of the taken branch at pc:
// usually a short backward jump (loop-shaped), occasionally a longer
// forward hop within the region.
func (p *Program) branchTarget(pc uint64, ph *Phase) uint64 {
	h := p.hashStatic(pc, 2)
	off := pc - p.codeBase()
	if p.targetBackward(pc) { // 75%: backward, loop-shaped
		// Loop bodies are at least 8 instructions: tighter loops would
		// make the branch itself dominate the dynamic stream.
		back := 8 + h>>2%57
		if back > off {
			back = off
		}
		return p.codeBase() + off - back
	}
	fwd := 1 + h>>2%256
	tgt := off + fwd
	if tgt >= ph.CodeWords {
		tgt -= ph.CodeWords
	}
	return p.codeBase() + tgt
}

func (p *Program) genBranch(in *isa.Inst, ph *Phase) {
	in.Class = isa.Branch
	kind, biasTaken, period := p.branchSite(in.PC, ph)
	switch kind {
	case brBiased:
		if biasTaken {
			in.Taken = p.r.Bool(0.95)
		} else {
			in.Taken = p.r.Bool(0.05)
		}
	case brLoop:
		slot := p.hashStatic(in.PC, 3) % loopSlots
		cnt := p.loopCnt[slot]
		in.Taken = (cnt % period) != period-1
		p.loopCnt[slot] = cnt + 1
	case brRandom:
		// Data-dependent forward test, skewed not-taken as real
		// if-else branches are.
		in.Taken = p.r.Bool(0.35)
	}
	if in.Taken {
		in.Target = p.branchTarget(in.PC, ph)
	}
}

func (p *Program) genJump(in *isa.Inst, ph *Phase) {
	in.Class = isa.Jump
	in.Taken = true
	in.Target = p.branchTarget(in.PC, ph)
}

// genDeps assigns register dependencies. The producer distance is
// geometric with the phase's mean; memory-phase streams with short
// distances model pointer chasing.
func (p *Program) genDeps(in *isa.Inst, ph *Phase) {
	if in.Class == isa.Syscall || in.Class == isa.Nop {
		return
	}
	if p.r.Bool(ph.DepProb) {
		in.Dep1 = p.depDistance(ph)
	}
	if in.Class != isa.Jump && p.r.Bool(ph.DepProb*0.6) {
		in.Dep2 = p.depDistance(ph)
	}
}

func (p *Program) depDistance(ph *Phase) uint32 {
	// Same stream as p.r.Geometric(ph.MeanDepDist): logQ == 0 mirrors
	// Geometric's mean<=1 early return (constant 1, no draw consumed).
	d := uint32(1)
	if lq := p.depLogQ[p.phase]; lq != 0 {
		d = uint32(p.r.GeometricLogQ(lq))
	}
	if uint64(d) > p.seq-1 {
		if p.seq <= 1 {
			return 0
		}
		d = uint32(p.seq - 1)
	}
	return d
}

// WrongPathInst synthesises one wrong-path instruction for the pipeline
// to inject after a detected misprediction. It draws from the current
// phase's class mix but uses the caller's PRNG and does not advance the
// program — the architectural stream is untouched. Wrong-path memory
// references land in the phase's footprint, so wrong-path execution
// pollutes (or prefetches into) the caches, as on real hardware.
func (p *Program) WrongPathInst(w *rng.PRNG, pc uint64) isa.Inst {
	ph := &p.prof.Phases[p.phase]
	in := isa.Inst{Seq: 0, PC: pc, Class: isa.IntALU, HasDst: true}
	u := w.Float64()
	switch {
	case u < ph.BranchFrac:
		in.Class = isa.Branch
		in.HasDst = false
	case u < ph.BranchFrac+ph.LoadFrac:
		in.Class = isa.Load
		in.Addr = p.dataBase() + w.Uint64n(ph.DataFootprint)
	case u < ph.BranchFrac+ph.LoadFrac+ph.StoreFrac:
		in.Class = isa.Store
		in.HasDst = false
		in.Addr = p.dataBase() + w.Uint64n(ph.DataFootprint)
	default:
		if w.Bool(ph.FPFrac) {
			in.Class = isa.FPAdd
		}
	}
	if w.Bool(0.5) {
		in.Dep1 = uint32(1 + w.Intn(8))
	}
	return in
}
