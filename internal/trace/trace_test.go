package trace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/rng"
)

func testProfile() *Profile {
	p, ok := ProfileByName("gzip")
	if !ok {
		panic("gzip profile missing")
	}
	return p
}

func TestCatalogueValid(t *testing.T) {
	profs := Profiles()
	if len(profs) != 16 {
		t.Fatalf("catalogue has %d profiles, want 16", len(profs))
	}
	ints, fps := 0, 0
	for _, p := range profs {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
		switch p.Class {
		case "int":
			ints++
		case "fp":
			fps++
		}
		if len(p.Phases) < 2 {
			t.Errorf("profile %s has %d phases; phase behaviour needs >= 2", p.Name, len(p.Phases))
		}
	}
	if ints == 0 || fps == 0 {
		t.Fatalf("catalogue must span both classes: %d int, %d fp", ints, fps)
	}
}

func TestMixesValid(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 13 {
		t.Fatalf("catalogue has %d mixes, want the paper's 13", len(mixes))
	}
	homo := 0
	for _, m := range mixes {
		if err := m.Validate(); err != nil {
			t.Errorf("mix %s: %v", m.Name, err)
		}
		if m.Homogeneous {
			homo++
		}
	}
	if homo == 0 || homo == len(mixes) {
		t.Fatalf("similarity experiment needs both kinds; %d/%d homogeneous", homo, len(mixes))
	}
	if _, ok := MixByName("kitchen-sink"); !ok {
		t.Fatal("MixByName failed for a known mix")
	}
	if _, ok := MixByName("nope"); ok {
		t.Fatal("MixByName found a nonexistent mix")
	}
}

func TestProgramDeterminism(t *testing.T) {
	a := NewProgram(testProfile(), 0, 42)
	b := NewProgram(testProfile(), 0, 42)
	for i := 0; i < 20000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at instruction %d", i)
		}
	}
}

func TestProgramSeedsDiffer(t *testing.T) {
	a := NewProgram(testProfile(), 0, 1)
	b := NewProgram(testProfile(), 0, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestCloneReplaysFuture(t *testing.T) {
	p := NewProgram(testProfile(), 0, 7)
	for i := 0; i < 5000; i++ {
		p.Next()
	}
	c := p.Clone()
	for i := 0; i < 20000; i++ {
		if p.Next() != c.Next() {
			t.Fatalf("clone diverged at instruction %d", i)
		}
	}
}

func TestSeqMonotonic(t *testing.T) {
	p := NewProgram(testProfile(), 0, 1)
	var last uint64
	for i := 0; i < 10000; i++ {
		in := p.Next()
		if in.Seq != last+1 {
			t.Fatalf("seq jumped from %d to %d", last, in.Seq)
		}
		last = in.Seq
	}
}

func TestDepDistancesBounded(t *testing.T) {
	p := NewProgram(testProfile(), 0, 3)
	for i := 0; i < 50000; i++ {
		in := p.Next()
		if uint64(in.Dep1) >= in.Seq && in.Dep1 != 0 {
			t.Fatalf("dep1 %d reaches before the stream start at seq %d", in.Dep1, in.Seq)
		}
		if uint64(in.Dep2) >= in.Seq && in.Dep2 != 0 {
			t.Fatalf("dep2 %d reaches before the stream start at seq %d", in.Dep2, in.Seq)
		}
	}
}

// TestStaticClassStability: the class at a PC is stable across dynamic
// visits within a phase — the property predictors rely on.
func TestStaticClassStability(t *testing.T) {
	p := NewProgram(testProfile(), 0, 5)
	classAt := map[uint64]isa.Class{}
	phase := p.PhaseName()
	for i := 0; i < 30000; i++ {
		in := p.Next()
		if p.PhaseName() != phase {
			classAt = map[uint64]isa.Class{}
			phase = p.PhaseName()
		}
		if in.Class == isa.Syscall {
			continue // syscalls are dynamic by design
		}
		if prev, ok := classAt[in.PC]; ok && prev != in.Class {
			t.Fatalf("PC %#x changed class %v -> %v", in.PC, prev, in.Class)
		}
		classAt[in.PC] = in.Class
	}
}

// TestBranchTargetStability: taken branches at the same PC always jump
// to the same target (what the BTB learns).
func TestBranchTargetStability(t *testing.T) {
	p := NewProgram(testProfile(), 0, 6)
	target := map[uint64]uint64{}
	for i := 0; i < 50000; i++ {
		in := p.Next()
		if in.Class != isa.Branch || !in.Taken {
			continue
		}
		if prev, ok := target[in.PC]; ok && prev != in.Target {
			t.Fatalf("branch at %#x changed target %#x -> %#x", in.PC, prev, in.Target)
		}
		target[in.PC] = in.Target
	}
}

func TestPhasesAlternate(t *testing.T) {
	p := NewProgram(testProfile(), 0, 8)
	seen := map[string]bool{}
	for i := 0; i < 300000; i++ {
		p.Next()
		seen[p.PhaseName()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("only phases %v visited in 300k instructions", seen)
	}
}

// TestClassMixApproximatesProfile: measured dynamic fractions should be
// in the neighbourhood of the configured static fractions. Loops skew
// dynamic frequencies, so the tolerance is loose; this guards against
// gross generator breakage, not exact calibration.
func TestClassMixApproximatesProfile(t *testing.T) {
	for _, prof := range Profiles() {
		p := NewProgram(prof, 0, 9)
		var counts [isa.NumClasses]int
		const n = 200000
		for i := 0; i < n; i++ {
			counts[p.Next().Class]++
		}
		memFrac := float64(counts[isa.Load]+counts[isa.Store]) / n
		brFrac := float64(counts[isa.Branch]) / n
		if memFrac < 0.05 || memFrac > 0.65 {
			t.Errorf("%s: memory fraction %.3f outside sane range", prof.Name, memFrac)
		}
		if brFrac > 0.40 {
			t.Errorf("%s: branch fraction %.3f implausibly high", prof.Name, brFrac)
		}
		if prof.Class == "fp" && counts[isa.FPAdd]+counts[isa.FPMult]+counts[isa.FPDiv] == 0 {
			t.Errorf("%s: FP profile generated no FP instructions", prof.Name)
		}
	}
}

func TestAddressesWithinRegions(t *testing.T) {
	p := NewProgram(testProfile(), 3, 10)
	for i := 0; i < 50000; i++ {
		in := p.Next()
		if !in.Class.IsMem() {
			continue
		}
		// Thread 3's data space starts at (3+1)<<52.
		if in.Addr < 4<<52 || in.Addr >= 5<<52 {
			t.Fatalf("address %#x outside thread 3's data region", in.Addr)
		}
	}
}

func TestThreadsDisjointAddressSpaces(t *testing.T) {
	a := NewProgram(testProfile(), 0, 1)
	b := NewProgram(testProfile(), 1, 1)
	seenA := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		in := a.Next()
		if in.Class.IsMem() {
			seenA[in.Addr>>6] = true
		}
	}
	for i := 0; i < 20000; i++ {
		in := b.Next()
		if in.Class.IsMem() && seenA[in.Addr>>6] {
			t.Fatalf("threads share data block %#x", in.Addr>>6)
		}
	}
}

// TestWrongPathDoesNotAdvance: generating wrong-path instructions must
// not perturb the architectural stream.
func TestWrongPathDoesNotAdvance(t *testing.T) {
	p := NewProgram(testProfile(), 0, 11)
	for i := 0; i < 1000; i++ {
		p.Next()
	}
	c := p.Clone()
	w := rng.New(99)
	for i := 0; i < 500; i++ {
		p.WrongPathInst(&w, uint64(0x1000+i))
	}
	for i := 0; i < 5000; i++ {
		if p.Next() != c.Next() {
			t.Fatalf("wrong-path generation perturbed the stream at %d", i)
		}
	}
}

func TestWrongPathInstSane(t *testing.T) {
	p := NewProgram(testProfile(), 0, 12)
	p.Next()
	w := rng.New(1)
	f := func(pcOff uint16) bool {
		in := p.WrongPathInst(&w, uint64(pcOff))
		if in.Seq != 0 {
			return false // wrong-path instructions carry no real seq
		}
		if in.Class.IsMem() && in.Addr == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixPrograms(t *testing.T) {
	mix, _ := MixByName("kitchen-sink")
	progs, err := mix.Programs(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 8 {
		t.Fatalf("got %d programs", len(progs))
	}
	// 4-thread derivation: seeded random exclusion, depends on seed.
	p4a, err := mix.Programs(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	p4b, _ := mix.Programs(4, 1)
	for i := range p4a {
		if p4a[i].Profile().Name != p4b[i].Profile().Name {
			t.Fatal("same-seed derivation is not deterministic")
		}
	}
	if _, err := mix.Programs(0, 1); err == nil {
		t.Fatal("Programs(0) should fail")
	}
	if _, err := mix.Programs(9, 1); err == nil {
		t.Fatal("Programs(9) should fail")
	}
}

func TestPhaseValidation(t *testing.T) {
	bad := Phase{Name: "x", MeanLen: 100, BranchFrac: 0.9, LoadFrac: 0.9,
		DataFootprint: 1024, CodeWords: 100, BiasedW: 1, MeanDepDist: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("over-unity class fractions accepted")
	}
	missingFootprint := Phase{Name: "x", MeanLen: 100, CodeWords: 100, BiasedW: 1, MeanDepDist: 2}
	if err := missingFootprint.Validate(); err == nil {
		t.Fatal("zero footprint accepted")
	}
	p := Profile{Name: "p", Class: "weird", Phases: []Phase{{}}}
	if err := p.Validate(); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestGeometricPhaseLengths(t *testing.T) {
	// Phase lengths should vary around MeanLen, not be constant.
	prof := testProfile()
	p := NewProgram(prof, 0, 13)
	lengths := []int{}
	cur := 0
	phase := p.PhaseName()
	for i := 0; i < 500000; i++ {
		p.Next()
		cur++
		if p.PhaseName() != phase {
			lengths = append(lengths, cur)
			cur = 0
			phase = p.PhaseName()
		}
	}
	if len(lengths) < 4 {
		t.Fatalf("only %d phase transitions in 500k instructions", len(lengths))
	}
	mean := 0.0
	for _, l := range lengths {
		mean += float64(l)
	}
	mean /= float64(len(lengths))
	expect := float64(prof.Phases[0].MeanLen+prof.Phases[1].MeanLen) / 2
	if math.Abs(mean-expect) > expect {
		t.Fatalf("mean phase length %.0f, expected around %.0f", mean, expect)
	}
}

func TestFlattenedProfile(t *testing.T) {
	prof := testProfile()
	flat := prof.Flattened()
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(flat.Phases) != 1 {
		t.Fatalf("flattened profile has %d phases", len(flat.Phases))
	}
	// The merged branch fraction must lie between the phase extremes.
	lo, hi := 1.0, 0.0
	for _, ph := range prof.Phases {
		if ph.BranchFrac < lo {
			lo = ph.BranchFrac
		}
		if ph.BranchFrac > hi {
			hi = ph.BranchFrac
		}
	}
	got := flat.Phases[0].BranchFrac
	if got < lo || got > hi {
		t.Fatalf("merged branch fraction %v outside [%v, %v]", got, lo, hi)
	}
	// A flattened program never changes phase.
	p := NewProgram(flat, 0, 1)
	name := p.PhaseName()
	for i := 0; i < 100000; i++ {
		p.Next()
		if p.PhaseName() != name {
			t.Fatal("flattened program changed phase")
		}
	}
}

func TestFlattenedPrograms(t *testing.T) {
	mix, _ := MixByName("kitchen-sink")
	progs, err := mix.FlattenedPrograms(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		if len(p.Profile().Phases) != 1 {
			t.Fatalf("%s not flattened", p.Profile().Name)
		}
	}
}

func TestSampleStats(t *testing.T) {
	st := Sample(testProfile(), 100000, 1)
	if st.Instructions != 100000 {
		t.Fatalf("instructions %d", st.Instructions)
	}
	if st.MemFrac() < 0.1 || st.MemFrac() > 0.6 {
		t.Fatalf("gzip mem fraction %.3f implausible", st.MemFrac())
	}
	if st.TakenFrac() <= 0 || st.TakenFrac() >= 1 {
		t.Fatalf("taken fraction %.3f degenerate", st.TakenFrac())
	}
	if st.WorkingSetBytes() < 4096 {
		t.Fatalf("working set %d bytes implausibly small", st.WorkingSetBytes())
	}
	if st.StaticPCs == 0 || st.PhaseChanges == 0 {
		t.Fatalf("degenerate sample: %+v", st)
	}
	// Footprint proxy should respect the configured footprint scale.
	prof := testProfile()
	maxFoot := 0
	for _, ph := range prof.Phases {
		maxFoot += int(ph.DataFootprint)
	}
	if st.WorkingSetBytes() > maxFoot+1<<20 {
		t.Fatalf("working set %d exceeds configured footprints %d", st.WorkingSetBytes(), maxFoot)
	}
}

func TestSampleDeterministic(t *testing.T) {
	a := Sample(testProfile(), 20000, 5)
	b := Sample(testProfile(), 20000, 5)
	if a != b {
		t.Fatal("Sample is not deterministic")
	}
}

func TestStaticBranchPropertiesSharedAcrossInstances(t *testing.T) {
	// Two programs with the same (profile, tid, seed) must agree on
	// every static branch property even though their dynamic streams
	// are consumed independently.
	a := NewProgram(testProfile(), 2, 77)
	b := NewProgram(testProfile(), 2, 77)
	targetsA := map[uint64]uint64{}
	for i := 0; i < 30000; i++ {
		in := a.Next()
		if in.Class == isa.Branch && in.Taken {
			targetsA[in.PC] = in.Target
		}
	}
	for i := 0; i < 30000; i++ {
		in := b.Next()
		if in.Class == isa.Branch && in.Taken {
			if want, ok := targetsA[in.PC]; ok && want != in.Target {
				t.Fatalf("branch %#x target differs across instances", in.PC)
			}
		}
	}
}
