package trace

import (
	"testing"

	"repro/internal/rng"
)

// TestCachedProgramsReplayExact is the property the trace cache rests
// on: a replay-backed program must emit the exact instruction stream a
// fresh program does — through the recorded prefix, across the
// prefix/live boundary, and well beyond it — and expose the same
// mid-stream phase state to WrongPathInst.
func TestCachedProgramsReplayExact(t *testing.T) {
	FlushTraceCache()
	defer FlushTraceCache()

	const (
		threads   = 8
		seed      = 5
		perThread = 1000
		compare   = 3500 // crosses the boundary with plenty to spare
	)
	mix, _ := MixByName("kitchen-sink")
	fresh, err := mix.Programs(threads, seed)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := CachedPrograms("kitchen-sink", threads, seed, perThread)
	if err != nil {
		t.Fatal(err)
	}

	for tid := 0; tid < threads; tid++ {
		f, c := fresh[tid], cached[tid]
		for i := 0; i < compare; i++ {
			fi, ci := f.Next(), c.Next()
			if fi != ci {
				t.Fatalf("thread %d inst %d diverged:\nfresh  %+v\nreplay %+v", tid, i, fi, ci)
			}
			// Wrong-path synthesis observes the generator's phase; two
			// identical PRNGs must draw identical wrong-path streams at
			// every point, including mid-prefix.
			if i%257 == 0 {
				wf, wc := rng.New(uint64(i)), rng.New(uint64(i))
				pf := f.WrongPathInst(&wf, fi.PC+1)
				pc := c.WrongPathInst(&wc, ci.PC+1)
				if pf != pc {
					t.Fatalf("thread %d inst %d: wrong-path diverged:\nfresh  %+v\nreplay %+v", tid, i, pf, pc)
				}
			}
		}
		if f.Seq() != c.Seq() {
			t.Fatalf("thread %d: seq diverged: %d vs %d", tid, f.Seq(), c.Seq())
		}
	}
}

// TestCachedProgramsIndependentOwners: two programs handed out for the
// same key must not share mutable position state.
func TestCachedProgramsIndependentOwners(t *testing.T) {
	FlushTraceCache()
	defer FlushTraceCache()

	a, err := CachedPrograms("int-memory", 4, 9, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedPrograms("int-memory", 4, 9, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Advance a's stream; b must still start from the beginning.
	first := make([]uint64, len(a))
	for tid := range a {
		first[tid] = a[tid].Next().PC
		for i := 0; i < 50; i++ {
			a[tid].Next()
		}
	}
	for tid := range b {
		if pc := b[tid].Next().PC; pc != first[tid] {
			t.Fatalf("thread %d: second owner started at PC %#x, want %#x", tid, pc, first[tid])
		}
	}
}

// TestCachedProgramsGrowsPrefix: asking for a longer prefix than cached
// re-records rather than serving the short one as if it were long.
func TestCachedProgramsGrowsPrefix(t *testing.T) {
	FlushTraceCache()
	defer FlushTraceCache()

	if _, err := CachedPrograms("fp-stream", 2, 1, 10); err != nil {
		t.Fatal(err)
	}
	ps, err := CachedPrograms("fp-stream", 2, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ps[0].replay); got != 500 {
		t.Fatalf("prefix length = %d after growth request, want 500", got)
	}
}
