package pipeline

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/counters"
	"repro/internal/isa"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/trace"
)

const (
	// doneRing is the per-thread completion-ring size. Dependency
	// distances larger than maxDepWindow are treated as already
	// satisfied (the producer left the pipeline long ago), so ring
	// slots are never consulted stale.
	doneRing     = 2048
	maxDepWindow = 512

	// eventRing buckets completion events by cycle; it must exceed the
	// largest possible completion latency (DRAM + L2 + L1 + FU).
	eventRing = 256

	// eventBucketCap is the arena-backed capacity of each event bucket.
	// Buckets that overflow it fall back to ordinary append growth (the
	// full slice expression below caps the arena slices, so growth can
	// never clobber a neighbouring bucket). The deepest bucket observed
	// across every built-in mix over 1M-cycle runs holds 16 events; 32
	// gives 2x headroom so steady-state execution never grows a bucket
	// (the allocation regression test enforces this).
	eventBucketCap = 32

	// pending marks a not-yet-completed instruction in the done ring.
	pending = math.MaxInt64
)

type entryState uint8

const (
	sWaiting  entryState = iota // in an instruction queue
	sIssued                     // executing
	sDone                       // complete, awaiting commit
	sSquashed                   // squashed; slot awaiting reuse
)

// robEntry is one in-flight instruction owned by a thread's ROB ring.
type robEntry struct {
	inst       isa.Inst
	gen        uint32
	state      entryState
	wrong      bool  // wrong-path instruction
	mispred    bool  // real branch known (to the trace) to be mispredicted
	readyAt    int64 // wrong-path synthetic readiness
	completeAt int64
	dMissOut   bool // load with an outstanding L1D miss
	usesFPQ    bool
	hasDst     bool
	isMem      bool
	lsqHeld    bool // occupies a load/store-queue entry
}

// fetchEntry is one instruction in the shared fetch buffer.
type fetchEntry struct {
	inst      isa.Inst
	fetchedAt int64
	wrong     bool
	mispred   bool
}

// iqWait is the hot half of an issue-queue slot: everything the
// per-cycle readiness scan reads. Sixteen bytes, so a cache line covers
// four waiting slots.
//
// readyAt accumulates the operand-ready cycle as producers resolve:
// dep1Idx/dep2Idx hold the done-ring indices of producers that were
// still executing at dispatch (-1 = resolved), and the issue scan folds
// each producer's completion cycle into readyAt the cycle it becomes
// finite, clearing the index. Once both indices are -1, readyAt is
// final and a waiting slot costs the scan one load and one compare —
// it never touches the ROB entry. Caching ring indices at dispatch is
// sound because a producer's done-ring slot cannot be overwritten while
// a consumer is still in flight (the per-thread ROB window is far
// smaller than the ring).
type iqWait struct {
	readyAt int64
	dep1Idx int16 // done-ring index of an unresolved producer, or -1
	dep2Idx int16
	tid     int8
}

// iqRef is the cold half of a slot: the ROB entry it stands for, read
// only when the slot actually issues (or on squash/invariant walks). gen
// detects slot reuse after a squash (defensive: squashes purge their
// queue entries eagerly, and CheckInvariants asserts queues only hold
// live waiting entries).
type iqRef struct {
	robIdx uint64
	gen    uint32
}

// issueQ is a fixed-capacity instruction queue: an age-ordered slot
// array with a multi-word occupancy bitmask. Slots are claimed at tail
// in dispatch order and cleared in place on issue, so iterating set bits
// low-to-high (bits.TrailingZeros64) visits entries oldest first —
// exactly the order the old compacting linear scan produced. The array
// is compacted (order-preserving) only when tail reaches physical
// capacity, which with capacity >= 2x the architectural queue size makes
// insertion amortized O(1) with zero steady-state allocation.
type issueQ struct {
	wait  []iqWait
	ref   []iqRef
	occ   []uint64 // one bit per slot; bit set = slot live
	tail  int      // next insertion index; live bits all lie below tail
	count int      // number of live slots (the architectural occupancy)

	// unres holds one bitmask per hardware context: bit set = live slot
	// of that context with an unresolved producer. Dependencies are
	// always same-thread, so a context's unresolved slots can only make
	// progress in a cycle where that context completed an instruction —
	// the resolution pass polls exactly those and skips every other
	// waiting slot without touching it.
	unres  [][]uint64
	words  int      // len(occ)
	unresW []uint64 // unres[0]..unres[n-1] backing (words*n)
}

func newIssueQ(size, nthreads int) issueQ {
	phys := 2 * size
	if phys < 64 {
		phys = 64
	}
	phys = (phys + 63) &^ 63 // whole occupancy words
	words := phys / 64
	q := issueQ{
		wait:   make([]iqWait, phys),
		ref:    make([]iqRef, phys),
		occ:    make([]uint64, words),
		unres:  make([][]uint64, nthreads),
		words:  words,
		unresW: make([]uint64, words*nthreads),
	}
	for t := 0; t < nthreads; t++ {
		q.unres[t] = q.unresW[t*words : (t+1)*words : (t+1)*words]
	}
	return q
}

// push claims the tail slot. unresolved marks slots whose producers are
// still executing; they join the owning context's resolution mask.
func (q *issueQ) push(w iqWait, r iqRef, unresolved bool) {
	if q.tail == len(q.wait) {
		q.compact()
	}
	i := q.tail
	q.wait[i] = w
	q.ref[i] = r
	bit := uint64(1) << (uint(i) & 63)
	q.occ[i>>6] |= bit
	if unresolved {
		q.unres[w.tid][i>>6] |= bit
	}
	q.tail++
	q.count++
}

// clear releases a slot on issue. Issue implies the slot's producers
// resolved, so its unres bit is already clear.
func (q *issueQ) clear(i int) {
	q.occ[i>>6] &^= 1 << (uint(i) & 63)
	q.count--
}

// compact slides live slots down to the front, preserving age order,
// and rebuilds the occupancy and per-context resolution masks.
func (q *issueQ) compact() {
	w := 0
	for wi, word := range q.occ {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			q.wait[w] = q.wait[wi<<6|b]
			q.ref[w] = q.ref[wi<<6|b]
			w++
		}
	}
	for i := range q.occ {
		q.occ[i] = 0
	}
	for i := range q.unresW {
		q.unresW[i] = 0
	}
	for i := 0; i < w>>6; i++ {
		q.occ[i] = ^uint64(0)
	}
	if r := uint(w) & 63; r != 0 {
		q.occ[w>>6] = 1<<r - 1
	}
	for i := 0; i < w; i++ {
		s := &q.wait[i]
		if s.dep1Idx >= 0 || s.dep2Idx >= 0 {
			q.unres[s.tid][i>>6] |= 1 << (uint(i) & 63)
		}
	}
	q.tail = w
}

// purgeThread drops this thread's entries: all of them, or only those
// younger than the after ROB index (wrong-path squash).
func (q *issueQ) purgeThread(tid int, after uint64, all bool) {
	unres := q.unres[tid]
	for wi := range q.occ {
		word := q.occ[wi]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			i := wi<<6 | b
			if int(q.wait[i].tid) == tid && (all || q.ref[i].robIdx > after) {
				q.occ[wi] &^= 1 << uint(b)
				unres[wi] &^= 1 << uint(b)
				q.count--
			}
		}
	}
}

// reset empties the queue without releasing its storage.
func (q *issueQ) reset() {
	for i := range q.occ {
		q.occ[i] = 0
	}
	for i := range q.unresW {
		q.unresW[i] = 0
	}
	q.tail = 0
	q.count = 0
}

// copyFrom overwrites q's contents with src's. Physical geometries match
// because both queues were built from the same Config.
func (q *issueQ) copyFrom(src *issueQ) {
	copy(q.wait[:src.tail], src.wait[:src.tail])
	copy(q.ref[:src.tail], src.ref[:src.tail])
	copy(q.occ, src.occ)
	copy(q.unresW, src.unresW)
	q.tail = src.tail
	q.count = src.count
}

type event struct {
	tid    int8
	robIdx uint64
	gen    uint32
}

// thread is one normal hardware context.
type thread struct {
	id   int
	prog *trace.Program
	wrng rng.PRNG // wrong-path instruction stream

	pending    isa.Inst // peeked next architectural instruction
	hasPending bool

	wrongPath bool
	wrongPC   uint64

	fetchBlockedUntil int64
	blockedByIMiss    bool
	lastIBlock        uint64 // last I-cache block accessed (+1, 0 = none)

	// dispHoldUntil caches the head fetch-buffer entry's decode-ready
	// cycle so the dispatch stage can skip a decode-stalled thread
	// without touching its fetch ring. Monotonicity of fetch times makes
	// a stale value safe: any entry that later becomes head was fetched
	// no earlier, so it cannot be decode-ready before the cached cycle.
	dispHoldUntil int64

	// ifq is this thread's slice of the shared fetch buffer: a fixed
	// power-of-two ring (slot = index & ifqMask) so steady-state fetch
	// and dispatch never touch the allocator.
	ifq              []fetchEntry
	ifqMask          uint64
	ifqHead, ifqTail uint64

	rob              []robEntry // ring; physical size is a power of two
	robMask          uint64     // len(rob) - 1
	robHead, robTail uint64     // monotonic indices; slot = idx & robMask
	genCtr           uint32

	doneAt []int64 // completion cycles by seq % doneRing

	// accCommitted is Cum.Committed at the last AccIPC refresh, so the
	// periodic bookkeeping skips the division for idle threads.
	accCommitted uint64

	st counters.State

	// progVal is machine-owned program storage: Clone/CloneInto copy the
	// source program value here and point prog at it, so cloning never
	// allocates a Program and never aliases the source machine's stream.
	progVal trace.Program
}

func (t *thread) robCount() int { return int(t.robTail - t.robHead) }

func (t *thread) entry(idx uint64) *robEntry { return &t.rob[idx&t.robMask] }

func (t *thread) ifqCount() int { return int(t.ifqTail - t.ifqHead) }

// copyFrom overwrites t's state with src's, keeping t's own storage.
func (t *thread) copyFrom(src *thread) {
	rob, done, ifq := t.rob, t.doneAt, t.ifq
	*t = *src
	t.rob, t.doneAt, t.ifq = rob, done, ifq
	copy(t.rob, src.rob)
	copy(t.doneAt, src.doneAt)
	copy(t.ifq, src.ifq)
	t.progVal = *src.prog
	t.prog = &t.progVal
}

// DTStats reports the detector-thread cost model's bookkeeping.
type DTStats struct {
	FetchSlotsUsed uint64 // leftover fetch slots consumed by the DT
	IssueSlotsUsed uint64 // leftover issue slots consumed by the DT
	JobsScheduled  uint64
	JobsCompleted  uint64
	JobsPreempted  uint64 // job replaced before completion (budget overrun)
	JobCycles      uint64 // total cycles from job schedule to completion
}

// Machine is the SMT core. All state is deterministic plain data; Clone
// produces an independent machine that replays an identical future.
type Machine struct {
	cfg     Config
	now     int64
	threads []*thread

	sel  *policy.Selector
	pred branch.Predictor
	btb  *branch.BTB
	hier *cache.Hierarchy

	// predHybrid and the l1i/l1d pointers are devirtualization fast
	// paths: the hot loops call concrete methods instead of dispatching
	// through the Predictor interface or re-loading hierarchy fields.
	predHybrid *branch.Hybrid
	l1i, l1d   *cache.Cache

	intIQ, fpIQ issueQ
	ifqTotal    int
	lsqUsed     int
	dMissTotal  int // outstanding L1D load misses machine-wide (MSHR occupancy)
	intRegsUsed int
	fpRegsUsed  int

	fuBusy [isa.NumFU][]int64 // per-unit reserved-until cycles

	events [eventRing][]event

	commitCursor int
	renameCursor int

	// Syscall drain state (conservative flush, paper §6).
	draining bool
	drainTid int

	// Detector-thread job model.
	dtToFetch     int
	dtToIssue     int
	dtSwitchArmed bool
	dtSwitchTo    policy.Policy
	dtJobStart    int64
	dtStats       DTStats

	statesView []*counters.State
	orderBuf   []int

	// doneArena backs every thread's done ring contiguously; the issue
	// scan indexes it as tid<<doneRingShift | ringIdx, skipping the
	// thread-struct pointer chase on the poll path.
	doneArena []int64

	// lastDone[tid] is the last cycle context tid completed an
	// instruction, kept as one compact array (a cache line for typical
	// context counts) rather than per-thread fields. The issue stage's
	// resolution pass polls a context's waiting queue slots only in
	// cycles where its entry equals now: dependencies are same-thread,
	// so nothing else can have made them ready. activeTids is the
	// per-cycle scratch list of such contexts.
	lastDone   []int64
	activeTids []int8

	// fbShift/icShift strength-reduce the per-instruction fetch-block
	// and I-cache-block divisions to shifts when the configured sizes
	// are powers of two (255 = not a power of two, divide).
	fbShift, icShift uint8
}

const doneRingShift = 11 // log2(doneRing)

// fetchBlockOf returns pc's fetch-block id.
func (m *Machine) fetchBlockOf(pc uint64) uint64 {
	if sh := m.fbShift; sh != 255 {
		return pc >> sh
	}
	return pc / uint64(m.cfg.FetchBlock)
}

// iBlockOf returns pc's I-cache block id.
func (m *Machine) iBlockOf(pc uint64) uint64 {
	if sh := m.icShift; sh != 255 {
		return pc >> sh
	}
	return pc / uint64(m.cfg.ICacheBlockWords)
}

// newPredictor builds the configured direction predictor.
func newPredictor(cfg Config, threads int) branch.Predictor {
	pred, err := branch.NewKind(cfg.PredictorKind, cfg.GShareEntries, cfg.HistoryBits, threads)
	if err != nil {
		panic(err)
	}
	if cfg.PredictorKind == branch.KindHybrid || cfg.PredictorKind == "" {
		// The hybrid gets its full three-table geometry.
		pred = branch.NewHybrid(cfg.BimodalEntries, cfg.GShareEntries, cfg.MetaEntries, cfg.HistoryBits, threads)
	}
	return pred
}

// newShell builds a machine with every structure allocated for n contexts
// but no programs attached and no wrong-path streams seeded. Arena-style
// allocation keeps the allocation count low and the per-thread rings
// cache-adjacent: one backing slab each for the thread structs, ROB
// rings, done rings, fetch rings, FU reservations and event buckets.
func newShell(cfg Config, n int) *Machine {
	m := &Machine{
		cfg:  cfg,
		sel:  policy.NewSelector(cfg.InitialPolicy, n),
		pred: newPredictor(cfg, n),
		btb:  branch.NewBTB(cfg.BTBSets, cfg.BTBWays),
		hier: cache.NewHierarchy(cfg.Hierarchy, n),
	}
	m.predHybrid, _ = m.pred.(*branch.Hybrid)
	m.l1i, m.l1d = m.hier.L1I, m.hier.L1D

	m.fbShift, m.icShift = 255, 255
	if fb := cfg.FetchBlock; fb&(fb-1) == 0 {
		m.fbShift = uint8(bits.TrailingZeros(uint(fb)))
	}
	if ic := cfg.ICacheBlockWords; ic&(ic-1) == 0 {
		m.icShift = uint8(bits.TrailingZeros(uint(ic)))
	}

	fuTotal := 0
	for _, k := range cfg.FUs {
		fuTotal += k
	}
	fuArena := make([]int64, fuTotal)
	for k := range m.fuBusy {
		m.fuBusy[k], fuArena = fuArena[:cfg.FUs[k]:cfg.FUs[k]], fuArena[cfg.FUs[k]:]
	}

	evArena := make([]event, eventRing*eventBucketCap)
	for i := range m.events {
		m.events[i] = evArena[i*eventBucketCap : i*eventBucketCap : (i+1)*eventBucketCap]
	}

	m.intIQ = newIssueQ(cfg.IntIQSize, n)
	m.fpIQ = newIssueQ(cfg.FPIQSize, n)
	m.lastDone = make([]int64, n)
	m.activeTids = make([]int8, 0, n)

	robPhys := 1
	for robPhys < cfg.ROBPerThr {
		robPhys <<= 1
	}
	ifqPhys := 1
	for ifqPhys < cfg.IFQSize {
		ifqPhys <<= 1
	}
	threadArena := make([]thread, n)
	robArena := make([]robEntry, n*robPhys)
	doneArena := make([]int64, n*doneRing)
	ifqArena := make([]fetchEntry, n*ifqPhys)
	m.doneArena = doneArena

	m.threads = make([]*thread, n)
	m.statesView = make([]*counters.State, n)
	m.orderBuf = make([]int, n)
	for i := 0; i < n; i++ {
		t := &threadArena[i]
		t.id = i
		t.rob = robArena[i*robPhys : (i+1)*robPhys : (i+1)*robPhys]
		t.robMask = uint64(robPhys - 1)
		t.doneAt = doneArena[i*doneRing : (i+1)*doneRing : (i+1)*doneRing]
		t.ifq = ifqArena[i*ifqPhys : (i+1)*ifqPhys : (i+1)*ifqPhys]
		t.ifqMask = uint64(ifqPhys - 1)
		m.threads[i] = t
		m.statesView[i] = &t.st
	}
	return m
}

// New builds a machine running the given programs (one per context).
// seed feeds the wrong-path generators only; all architectural behaviour
// comes from the programs.
func New(cfg Config, progs []*trace.Program, seed uint64) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(progs) == 0 {
		panic("pipeline: need at least one program")
	}
	m := newShell(cfg, len(progs))
	m.attach(progs, seed)
	return m
}

// attach binds programs and seeds the wrong-path streams, exactly as New
// always has: one Split per thread, in thread order.
func (m *Machine) attach(progs []*trace.Program, seed uint64) {
	root := rng.New(seed ^ 0xd1b54a32d192ed03)
	for i, p := range progs {
		t := m.threads[i]
		t.prog = p
		t.wrng = root.Split()
	}
}

// Reset restores the machine to the state New(m.Config(), progs, seed)
// would construct, reusing every allocation. A reset machine replays the
// exact cycle-for-cycle behaviour of a freshly built one; machine pools
// rely on that equivalence.
func (m *Machine) Reset(progs []*trace.Program, seed uint64) {
	if len(progs) != len(m.threads) {
		panic("pipeline: Reset with mismatched program count")
	}
	m.now = 0
	m.sel.Reset(m.cfg.InitialPolicy)
	if !branch.ResetPredictor(m.pred) {
		m.pred = newPredictor(m.cfg, len(m.threads))
		m.predHybrid, _ = m.pred.(*branch.Hybrid)
	}
	m.btb.Reset()
	m.hier.Reset()

	m.intIQ.reset()
	m.fpIQ.reset()
	for i := range m.lastDone {
		m.lastDone[i] = 0
	}
	m.ifqTotal = 0
	m.lsqUsed = 0
	m.dMissTotal = 0
	m.intRegsUsed = 0
	m.fpRegsUsed = 0
	for k := range m.fuBusy {
		for u := range m.fuBusy[k] {
			m.fuBusy[k][u] = 0
		}
	}
	for i := range m.events {
		m.events[i] = m.events[i][:0]
	}
	m.commitCursor = 0
	m.renameCursor = 0
	m.draining = false
	m.drainTid = 0
	m.dtToFetch = 0
	m.dtToIssue = 0
	m.dtSwitchArmed = false
	m.dtSwitchTo = 0
	m.dtJobStart = 0
	m.dtStats = DTStats{}

	for _, t := range m.threads {
		rob, done, ifq := t.rob, t.doneAt, t.ifq
		id, robMask, ifqMask := t.id, t.robMask, t.ifqMask
		*t = thread{}
		t.id = id
		t.rob, t.robMask = rob, robMask
		t.doneAt = done
		t.ifq, t.ifqMask = ifq, ifqMask
		// The done ring must be clean: ready() consults it for any
		// dependency inside the window, and a fresh machine sees zeroes.
		for i := range t.doneAt {
			t.doneAt[i] = 0
		}
	}
	m.attach(progs, seed)
}

// Clone returns an independent deep copy. The clone and the original
// diverge only through future SetPolicy / flag calls — identical inputs
// replay identical cycles (the oracle scheduler depends on this).
func (m *Machine) Clone() *Machine {
	nm := newShell(m.cfg, len(m.threads))
	m.CloneInto(nm)
	return nm
}

// CloneInto overwrites dst — a machine of identical geometry, typically
// a previous Clone — with a deep copy of m, reusing all of dst's
// storage. It is the oracle's scratch path: per-candidate lookahead with
// zero steady-state allocation. dst's programs become machine-owned
// copies; the source machine is never aliased.
func (m *Machine) CloneInto(dst *Machine) {
	if dst == m {
		panic("pipeline: CloneInto self")
	}
	if dst.cfg != m.cfg || len(dst.threads) != len(m.threads) {
		panic("pipeline: CloneInto geometry mismatch")
	}
	dst.now = m.now
	dst.sel.CopyFrom(m.sel)
	if !branch.CopyPredictor(dst.pred, m.pred) {
		dst.pred = m.pred.Clone()
		dst.predHybrid, _ = dst.pred.(*branch.Hybrid)
	}
	dst.btb.CopyFrom(m.btb)
	dst.hier.CopyFrom(m.hier)

	dst.intIQ.copyFrom(&m.intIQ)
	dst.fpIQ.copyFrom(&m.fpIQ)
	copy(dst.lastDone, m.lastDone)
	dst.ifqTotal = m.ifqTotal
	dst.lsqUsed = m.lsqUsed
	dst.dMissTotal = m.dMissTotal
	dst.intRegsUsed = m.intRegsUsed
	dst.fpRegsUsed = m.fpRegsUsed
	for k := range m.fuBusy {
		copy(dst.fuBusy[k], m.fuBusy[k])
	}
	for i := range m.events {
		dst.events[i] = append(dst.events[i][:0], m.events[i]...)
	}
	dst.commitCursor = m.commitCursor
	dst.renameCursor = m.renameCursor
	dst.draining = m.draining
	dst.drainTid = m.drainTid
	dst.dtToFetch = m.dtToFetch
	dst.dtToIssue = m.dtToIssue
	dst.dtSwitchArmed = m.dtSwitchArmed
	dst.dtSwitchTo = m.dtSwitchTo
	dst.dtJobStart = m.dtJobStart
	dst.dtStats = m.dtStats

	for i, t := range m.threads {
		dst.threads[i].copyFrom(t)
	}
}

// Now returns the current cycle.
func (m *Machine) Now() int64 { return m.now }

// NumThreads returns the number of normal hardware contexts.
func (m *Machine) NumThreads() int { return len(m.threads) }

// Config returns the machine geometry.
func (m *Machine) Config() Config { return m.cfg }

// State returns the live per-thread status view (counters, gauges,
// flags). The pointer stays valid for the machine's lifetime.
func (m *Machine) State(tid int) *counters.State { return &m.threads[tid].st }

// States returns all per-thread status views, indexed by context id.
func (m *Machine) States() []*counters.State { return m.statesView }

// Policy returns the currently engaged fetch policy.
func (m *Machine) Policy() policy.Policy { return m.sel.Policy() }

// SetPolicy switches the fetch policy immediately, bypassing the
// detector-thread cost model (used for fixed-policy runs and by the
// oracle).
func (m *Machine) SetPolicy(p policy.Policy) { m.sel.SetPolicy(p) }

// SetFlags updates a thread's control flags (the detector thread's
// write port).
func (m *Machine) SetFlags(tid int, f counters.Flags) { m.threads[tid].st.Flags = f }

// Hierarchy exposes the cache hierarchy for inspection.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Predictor exposes the branch predictor for inspection.
func (m *Machine) Predictor() branch.Predictor { return m.pred }

// DTStats returns the detector-thread cost-model statistics.
func (m *Machine) DTStats() DTStats { return m.dtStats }

// DetectorBusy reports whether a detector job is still running.
func (m *Machine) DetectorBusy() bool { return m.dtToIssue > 0 }

// ScheduleDetectorJob models the detector thread executing work
// instructions using only leftover fetch and issue slots. If doSwitch,
// the fetch policy switches to switchTo at the cycle the job completes —
// not before: an overloaded pipeline delays its own remedy, exactly the
// ADTS cost model of the paper. A job scheduled while one is running
// preempts it (counted in DTStats.JobsPreempted).
func (m *Machine) ScheduleDetectorJob(work int, switchTo policy.Policy, doSwitch bool) {
	if work <= 0 {
		work = 1
	}
	if m.dtToIssue > 0 {
		m.dtStats.JobsPreempted++
	}
	m.dtStats.JobsScheduled++
	m.dtToFetch = work
	m.dtToIssue = work
	m.dtSwitchArmed = doSwitch
	m.dtSwitchTo = switchTo
	m.dtJobStart = m.now
}

// TotalCommitted returns committed instructions summed over threads.
func (m *Machine) TotalCommitted() uint64 {
	var n uint64
	for _, t := range m.threads {
		n += t.st.Cum.Committed
	}
	return n
}

// AggregateIPC returns committed instructions per cycle so far.
func (m *Machine) AggregateIPC() float64 {
	if m.now == 0 {
		return 0
	}
	return float64(m.TotalCommitted()) / float64(m.now)
}

// Run advances the machine n cycles.
func (m *Machine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		m.Cycle()
	}
}

// CheckInvariants recounts every occupancy gauge and shared-resource
// counter from first principles and returns an error on any mismatch.
// Tests call it; it is O(machine size) and not meant for per-cycle use.
func (m *Machine) CheckInvariants() error {
	ifqTotal, lsq, intRegs, fpRegs := 0, 0, 0, 0
	for _, t := range m.threads {
		preIssue, iq, brs, loads, mem, dmiss, rob, lsqT := 0, 0, 0, 0, 0, 0, 0, 0
		for i := t.ifqHead; i < t.ifqTail; i++ {
			fe := &t.ifq[i&t.ifqMask]
			preIssue++
			if fe.inst.Class.IsCtrl() {
				brs++
			}
			switch fe.inst.Class {
			case isa.Load:
				loads++
				mem++
			case isa.Store:
				mem++
			}
		}
		ifqTotal += t.ifqCount()
		for idx := t.robHead; idx < t.robTail; idx++ {
			e := t.entry(idx)
			if e.state == sSquashed {
				return fmt.Errorf("thread %d: squashed entry %d inside live ROB window", t.id, idx)
			}
			rob++
			if e.hasDst {
				if e.inst.Class.IsFP() {
					fpRegs++
				} else {
					intRegs++
				}
			}
			if e.lsqHeld {
				lsqT++
			}
			if e.state == sWaiting {
				iq++
				preIssue++
				switch {
				case e.inst.Class.IsCtrl():
					brs++
				case e.inst.Class == isa.Load:
					loads++
					mem++
				case e.inst.Class == isa.Store:
					mem++
				}
			}
			if e.dMissOut {
				dmiss++
			}
		}
		g := t.st.Live
		if g.PreIssue != preIssue || g.IQ != iq || g.Branches != brs ||
			g.Loads != loads || g.Mem != mem || g.DMissOut != dmiss || g.ROB != rob || g.LSQ != lsqT {
			return fmt.Errorf("thread %d gauge mismatch: have %+v want preIssue=%d iq=%d brs=%d loads=%d mem=%d dmiss=%d rob=%d lsq=%d",
				t.id, g, preIssue, iq, brs, loads, mem, dmiss, rob, lsqT)
		}
		lsq += lsqT
	}
	if ifqTotal != m.ifqTotal {
		return fmt.Errorf("ifqTotal mismatch: have %d want %d", m.ifqTotal, ifqTotal)
	}
	if lsq != m.lsqUsed {
		return fmt.Errorf("lsqUsed mismatch: have %d want %d", m.lsqUsed, lsq)
	}
	dmissTotal := 0
	for _, t := range m.threads {
		dmissTotal += t.st.Live.DMissOut
	}
	if dmissTotal != m.dMissTotal {
		return fmt.Errorf("dMissTotal mismatch: have %d want %d", m.dMissTotal, dmissTotal)
	}
	if intRegs != m.intRegsUsed || fpRegs != m.fpRegsUsed {
		return fmt.Errorf("rename pools mismatch: have int=%d fp=%d want int=%d fp=%d",
			m.intRegsUsed, m.fpRegsUsed, intRegs, fpRegs)
	}
	// IQ entries must reference live waiting entries, bits must lie
	// below tail, and the cached count must match the mask population.
	for qi, q := range [...]*issueQ{&m.intIQ, &m.fpIQ} {
		pop := 0
		for wi, word := range q.occ {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				i := wi<<6 | b
				pop++
				if i >= q.tail {
					return fmt.Errorf("issueQ %d: live bit %d at or beyond tail %d", qi, i, q.tail)
				}
				w, r := &q.wait[i], &q.ref[i]
				t := m.threads[w.tid]
				e := t.entry(r.robIdx)
				if e.gen != r.gen || e.state != sWaiting {
					return fmt.Errorf("stale IQ entry: thread %d robIdx %d", w.tid, r.robIdx)
				}
				unresBit := q.unres[w.tid][wi]&(1<<uint(b)) != 0
				if want := w.dep1Idx >= 0 || w.dep2Idx >= 0; unresBit != want {
					return fmt.Errorf("issueQ %d slot %d: unres bit %v but deps resolved=%v", qi, i, unresBit, !want)
				}
			}
		}
		if pop != q.count {
			return fmt.Errorf("issueQ %d: count %d != population %d", qi, q.count, pop)
		}
		for tid, u := range q.unres {
			for wi, word := range u {
				if word&^q.occ[wi] != 0 {
					return fmt.Errorf("issueQ %d: thread %d unres bits outside occupancy in word %d", qi, tid, wi)
				}
				for w2 := word; w2 != 0; w2 &= w2 - 1 {
					i := wi<<6 | bits.TrailingZeros64(w2)
					if int(q.wait[i].tid) != tid {
						return fmt.Errorf("issueQ %d: unres bit for thread %d on slot %d owned by %d", qi, tid, i, q.wait[i].tid)
					}
				}
			}
		}
	}
	return nil
}
