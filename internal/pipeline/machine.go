package pipeline

import (
	"fmt"
	"math"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/counters"
	"repro/internal/isa"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/trace"
)

const (
	// doneRing is the per-thread completion-ring size. Dependency
	// distances larger than maxDepWindow are treated as already
	// satisfied (the producer left the pipeline long ago), so ring
	// slots are never consulted stale.
	doneRing     = 2048
	maxDepWindow = 512

	// eventRing buckets completion events by cycle; it must exceed the
	// largest possible completion latency (DRAM + L2 + L1 + FU).
	eventRing = 256

	// pending marks a not-yet-completed instruction in the done ring.
	pending = math.MaxInt64
)

type entryState uint8

const (
	sWaiting  entryState = iota // in an instruction queue
	sIssued                     // executing
	sDone                       // complete, awaiting commit
	sSquashed                   // squashed; slot awaiting reuse
)

// robEntry is one in-flight instruction owned by a thread's ROB ring.
type robEntry struct {
	inst       isa.Inst
	gen        uint32
	state      entryState
	wrong      bool  // wrong-path instruction
	mispred    bool  // real branch known (to the trace) to be mispredicted
	readyAt    int64 // wrong-path synthetic readiness
	completeAt int64
	dMissOut   bool // load with an outstanding L1D miss
	usesFPQ    bool
	hasDst     bool
	isMem      bool
	lsqHeld    bool // occupies a load/store-queue entry
}

// fetchEntry is one instruction in the shared fetch buffer.
type fetchEntry struct {
	inst      isa.Inst
	fetchedAt int64
	wrong     bool
	mispred   bool
}

// iqEntry references a ROB entry from an instruction queue. gen detects
// slot reuse after a squash.
type iqEntry struct {
	tid    int8
	robIdx uint64
	gen    uint32
}

type event struct {
	tid    int8
	robIdx uint64
	gen    uint32
}

// thread is one normal hardware context.
type thread struct {
	id   int
	prog *trace.Program
	wrng rng.PRNG // wrong-path instruction stream

	pending    isa.Inst // peeked next architectural instruction
	hasPending bool

	wrongPath bool
	wrongPC   uint64

	fetchBlockedUntil int64
	blockedByIMiss    bool
	lastIBlock        uint64 // last I-cache block accessed (+1, 0 = none)

	ifq []fetchEntry // this thread's slice of the shared fetch buffer

	rob              []robEntry // ring; physical size is a power of two
	robMask          uint64     // len(rob) - 1
	robHead, robTail uint64     // monotonic indices; slot = idx & robMask
	genCtr           uint32

	doneAt []int64 // completion cycles by seq % doneRing

	st counters.State
}

func (t *thread) robCount() int { return int(t.robTail - t.robHead) }

func (t *thread) entry(idx uint64) *robEntry { return &t.rob[idx&t.robMask] }

// DTStats reports the detector-thread cost model's bookkeeping.
type DTStats struct {
	FetchSlotsUsed uint64 // leftover fetch slots consumed by the DT
	IssueSlotsUsed uint64 // leftover issue slots consumed by the DT
	JobsScheduled  uint64
	JobsCompleted  uint64
	JobsPreempted  uint64 // job replaced before completion (budget overrun)
	JobCycles      uint64 // total cycles from job schedule to completion
}

// Machine is the SMT core. All state is deterministic plain data; Clone
// produces an independent machine that replays an identical future.
type Machine struct {
	cfg     Config
	now     int64
	threads []*thread

	sel  *policy.Selector
	pred branch.Predictor
	btb  *branch.BTB
	hier *cache.Hierarchy

	intIQ, fpIQ []iqEntry
	ifqTotal    int
	lsqUsed     int
	dMissTotal  int // outstanding L1D load misses machine-wide (MSHR occupancy)
	intRegsUsed int
	fpRegsUsed  int

	fuBusy [isa.NumFU][]int64 // per-unit reserved-until cycles

	events [eventRing][]event

	commitCursor int
	renameCursor int

	// Syscall drain state (conservative flush, paper §6).
	draining bool
	drainTid int

	committedNow []int // per-cycle commit scratch for stall accounting

	// Detector-thread job model.
	dtToFetch     int
	dtToIssue     int
	dtSwitchArmed bool
	dtSwitchTo    policy.Policy
	dtJobStart    int64
	dtStats       DTStats

	statesView []*counters.State
	orderBuf   []int
}

// New builds a machine running the given programs (one per context).
// seed feeds the wrong-path generators only; all architectural behaviour
// comes from the programs.
func New(cfg Config, progs []*trace.Program, seed uint64) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(progs) == 0 {
		panic("pipeline: need at least one program")
	}
	n := len(progs)
	root := rng.New(seed ^ 0xd1b54a32d192ed03)
	pred, err := branch.NewKind(cfg.PredictorKind, cfg.GShareEntries, cfg.HistoryBits, n)
	if err != nil {
		panic(err)
	}
	if cfg.PredictorKind == branch.KindHybrid || cfg.PredictorKind == "" {
		// The hybrid gets its full three-table geometry.
		pred = branch.NewHybrid(cfg.BimodalEntries, cfg.GShareEntries, cfg.MetaEntries, cfg.HistoryBits, n)
	}
	m := &Machine{
		cfg:  cfg,
		sel:  policy.NewSelector(cfg.InitialPolicy, n),
		pred: pred,
		btb:  branch.NewBTB(cfg.BTBSets, cfg.BTBWays),
		hier: cache.NewHierarchy(cfg.Hierarchy, n),
	}
	for k := range m.fuBusy {
		m.fuBusy[k] = make([]int64, cfg.FUs[k])
	}
	m.threads = make([]*thread, n)
	m.statesView = make([]*counters.State, n)
	m.orderBuf = make([]int, n)
	m.committedNow = make([]int, n)
	for i, p := range progs {
		robPhys := 1
		for robPhys < cfg.ROBPerThr {
			robPhys <<= 1
		}
		t := &thread{
			id:      i,
			prog:    p,
			wrng:    root.Split(),
			rob:     make([]robEntry, robPhys),
			robMask: uint64(robPhys - 1),
			doneAt:  make([]int64, doneRing),
		}
		m.threads[i] = t
		m.statesView[i] = &t.st
	}
	return m
}

// Clone returns an independent deep copy. The clone and the original
// diverge only through future SetPolicy / flag calls — identical inputs
// replay identical cycles (the oracle scheduler depends on this).
func (m *Machine) Clone() *Machine {
	nm := &Machine{
		cfg:           m.cfg,
		now:           m.now,
		sel:           m.sel.Clone(),
		pred:          m.pred.Clone(),
		btb:           m.btb.Clone(),
		hier:          m.hier.Clone(),
		ifqTotal:      m.ifqTotal,
		lsqUsed:       m.lsqUsed,
		dMissTotal:    m.dMissTotal,
		intRegsUsed:   m.intRegsUsed,
		fpRegsUsed:    m.fpRegsUsed,
		commitCursor:  m.commitCursor,
		renameCursor:  m.renameCursor,
		draining:      m.draining,
		drainTid:      m.drainTid,
		dtToFetch:     m.dtToFetch,
		dtToIssue:     m.dtToIssue,
		dtSwitchArmed: m.dtSwitchArmed,
		dtSwitchTo:    m.dtSwitchTo,
		dtJobStart:    m.dtJobStart,
		dtStats:       m.dtStats,
	}
	nm.intIQ = append([]iqEntry(nil), m.intIQ...)
	nm.fpIQ = append([]iqEntry(nil), m.fpIQ...)
	for k := range m.fuBusy {
		nm.fuBusy[k] = append([]int64(nil), m.fuBusy[k]...)
	}
	for i := range m.events {
		nm.events[i] = append([]event(nil), m.events[i]...)
	}
	nm.threads = make([]*thread, len(m.threads))
	nm.statesView = make([]*counters.State, len(m.threads))
	nm.orderBuf = make([]int, len(m.orderBuf))
	nm.committedNow = make([]int, len(m.committedNow))
	for i, t := range m.threads {
		nt := &thread{
			id:                t.id,
			robMask:           t.robMask,
			prog:              t.prog.Clone(),
			wrng:              t.wrng,
			pending:           t.pending,
			hasPending:        t.hasPending,
			wrongPath:         t.wrongPath,
			wrongPC:           t.wrongPC,
			fetchBlockedUntil: t.fetchBlockedUntil,
			blockedByIMiss:    t.blockedByIMiss,
			lastIBlock:        t.lastIBlock,
			robHead:           t.robHead,
			robTail:           t.robTail,
			genCtr:            t.genCtr,
			st:                t.st,
		}
		nt.ifq = append([]fetchEntry(nil), t.ifq...)
		nt.rob = append([]robEntry(nil), t.rob...)
		nt.doneAt = append([]int64(nil), t.doneAt...)
		nm.threads[i] = nt
		nm.statesView[i] = &nt.st
	}
	return nm
}

// Now returns the current cycle.
func (m *Machine) Now() int64 { return m.now }

// NumThreads returns the number of normal hardware contexts.
func (m *Machine) NumThreads() int { return len(m.threads) }

// Config returns the machine geometry.
func (m *Machine) Config() Config { return m.cfg }

// State returns the live per-thread status view (counters, gauges,
// flags). The pointer stays valid for the machine's lifetime.
func (m *Machine) State(tid int) *counters.State { return &m.threads[tid].st }

// States returns all per-thread status views, indexed by context id.
func (m *Machine) States() []*counters.State { return m.statesView }

// Policy returns the currently engaged fetch policy.
func (m *Machine) Policy() policy.Policy { return m.sel.Policy() }

// SetPolicy switches the fetch policy immediately, bypassing the
// detector-thread cost model (used for fixed-policy runs and by the
// oracle).
func (m *Machine) SetPolicy(p policy.Policy) { m.sel.SetPolicy(p) }

// SetFlags updates a thread's control flags (the detector thread's
// write port).
func (m *Machine) SetFlags(tid int, f counters.Flags) { m.threads[tid].st.Flags = f }

// Hierarchy exposes the cache hierarchy for inspection.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Predictor exposes the branch predictor for inspection.
func (m *Machine) Predictor() branch.Predictor { return m.pred }

// DTStats returns the detector-thread cost-model statistics.
func (m *Machine) DTStats() DTStats { return m.dtStats }

// DetectorBusy reports whether a detector job is still running.
func (m *Machine) DetectorBusy() bool { return m.dtToIssue > 0 }

// ScheduleDetectorJob models the detector thread executing work
// instructions using only leftover fetch and issue slots. If doSwitch,
// the fetch policy switches to switchTo at the cycle the job completes —
// not before: an overloaded pipeline delays its own remedy, exactly the
// ADTS cost model of the paper. A job scheduled while one is running
// preempts it (counted in DTStats.JobsPreempted).
func (m *Machine) ScheduleDetectorJob(work int, switchTo policy.Policy, doSwitch bool) {
	if work <= 0 {
		work = 1
	}
	if m.dtToIssue > 0 {
		m.dtStats.JobsPreempted++
	}
	m.dtStats.JobsScheduled++
	m.dtToFetch = work
	m.dtToIssue = work
	m.dtSwitchArmed = doSwitch
	m.dtSwitchTo = switchTo
	m.dtJobStart = m.now
}

// TotalCommitted returns committed instructions summed over threads.
func (m *Machine) TotalCommitted() uint64 {
	var n uint64
	for _, t := range m.threads {
		n += t.st.Cum.Committed
	}
	return n
}

// AggregateIPC returns committed instructions per cycle so far.
func (m *Machine) AggregateIPC() float64 {
	if m.now == 0 {
		return 0
	}
	return float64(m.TotalCommitted()) / float64(m.now)
}

// Run advances the machine n cycles.
func (m *Machine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		m.Cycle()
	}
}

// CheckInvariants recounts every occupancy gauge and shared-resource
// counter from first principles and returns an error on any mismatch.
// Tests call it; it is O(machine size) and not meant for per-cycle use.
func (m *Machine) CheckInvariants() error {
	ifqTotal, lsq, intRegs, fpRegs := 0, 0, 0, 0
	for _, t := range m.threads {
		preIssue, iq, brs, loads, mem, dmiss, rob, lsqT := 0, 0, 0, 0, 0, 0, 0, 0
		for _, fe := range t.ifq {
			preIssue++
			if fe.inst.Class.IsCtrl() {
				brs++
			}
			switch fe.inst.Class {
			case isa.Load:
				loads++
				mem++
			case isa.Store:
				mem++
			}
		}
		ifqTotal += len(t.ifq)
		for idx := t.robHead; idx < t.robTail; idx++ {
			e := t.entry(idx)
			if e.state == sSquashed {
				return fmt.Errorf("thread %d: squashed entry %d inside live ROB window", t.id, idx)
			}
			rob++
			if e.hasDst {
				if e.inst.Class.IsFP() {
					fpRegs++
				} else {
					intRegs++
				}
			}
			if e.lsqHeld {
				lsqT++
			}
			if e.state == sWaiting {
				iq++
				preIssue++
				switch {
				case e.inst.Class.IsCtrl():
					brs++
				case e.inst.Class == isa.Load:
					loads++
					mem++
				case e.inst.Class == isa.Store:
					mem++
				}
			}
			if e.dMissOut {
				dmiss++
			}
		}
		g := t.st.Live
		if g.PreIssue != preIssue || g.IQ != iq || g.Branches != brs ||
			g.Loads != loads || g.Mem != mem || g.DMissOut != dmiss || g.ROB != rob || g.LSQ != lsqT {
			return fmt.Errorf("thread %d gauge mismatch: have %+v want preIssue=%d iq=%d brs=%d loads=%d mem=%d dmiss=%d rob=%d lsq=%d",
				t.id, g, preIssue, iq, brs, loads, mem, dmiss, rob, lsqT)
		}
		lsq += lsqT
	}
	if ifqTotal != m.ifqTotal {
		return fmt.Errorf("ifqTotal mismatch: have %d want %d", m.ifqTotal, ifqTotal)
	}
	if lsq != m.lsqUsed {
		return fmt.Errorf("lsqUsed mismatch: have %d want %d", m.lsqUsed, lsq)
	}
	dmissTotal := 0
	for _, t := range m.threads {
		dmissTotal += t.st.Live.DMissOut
	}
	if dmissTotal != m.dMissTotal {
		return fmt.Errorf("dMissTotal mismatch: have %d want %d", m.dMissTotal, dmissTotal)
	}
	if intRegs != m.intRegsUsed || fpRegs != m.fpRegsUsed {
		return fmt.Errorf("rename pools mismatch: have int=%d fp=%d want int=%d fp=%d",
			m.intRegsUsed, m.fpRegsUsed, intRegs, fpRegs)
	}
	// IQ entries must reference live waiting entries.
	for _, q := range [][]iqEntry{m.intIQ, m.fpIQ} {
		for _, qe := range q {
			t := m.threads[qe.tid]
			e := t.entry(qe.robIdx)
			if e.gen != qe.gen || e.state != sWaiting {
				return fmt.Errorf("stale IQ entry: thread %d robIdx %d", qe.tid, qe.robIdx)
			}
		}
	}
	return nil
}
