// Package pipeline implements the SMT processor core: a trace-driven,
// cycle-level model of an 8-wide out-of-order simultaneous-multithreading
// pipeline in the style of Tullsen et al.'s ICOUNT machine, which the
// paper's SimpleSMT simulator is configured to match.
//
// The model covers what the paper's mechanisms observe and steer:
//
//   - ICOUNT.2.8 fetch: up to 8 instructions from up to 2 threads per
//     cycle, stopping at the cache-block boundary, ordered by the active
//     fetch policy;
//   - a shared fetch buffer, shared INT/FP instruction queues, shared
//     rename-register pools and a shared load/store queue (the resources
//     whose imbalance ADTS detects);
//   - per-thread reorder buffers with in-order commit;
//   - branch prediction with wrong-path fetch: mispredicted paths inject
//     synthetic wrong-path instructions that consume fetch slots, queue
//     entries, registers and cache bandwidth until the branch resolves;
//   - an L1I/L1D/L2/DRAM hierarchy with per-thread accounting;
//   - conservative syscall semantics (all threads flush, paper §6);
//   - a detector-thread context that consumes only leftover fetch and
//     issue slots and delays policy switches until its job completes.
package pipeline

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/policy"
)

// Config fixes the machine geometry. DefaultConfig matches the resources
// the paper configures SimpleSMT with (themselves matching Tullsen et
// al. for verification).
type Config struct {
	FetchWidth   int // instructions fetched per cycle (8)
	FetchThreads int // threads fetched per cycle (2 => ICOUNT.2.8)
	FetchBlock   int // fetch stops at this instruction-block boundary (8)
	DecodeWidth  int // instructions renamed/dispatched per cycle
	DecodeDelay  int // cycles between fetch and earliest dispatch (front-end depth)
	IssueWidth   int // instructions issued per cycle
	CommitWidth  int // instructions committed per cycle (all threads)

	IFQSize          int // shared fetch-buffer capacity
	IntIQSize        int // integer instruction-queue capacity
	FPIQSize         int // floating-point instruction-queue capacity
	ROBPerThr        int // reorder-buffer entries per thread
	LSQSize          int // shared load/store-queue capacity
	MSHRs            int // outstanding L1D load misses allowed machine-wide; 0 = unlimited
	IntRegs          int // shared integer rename-register pool
	FPRegs           int // shared FP rename-register pool
	FUs              [isa.NumFU]int
	ICacheBlockWords int // I-cache block size in instruction words

	SyscallPenalty int // fetch-stall cycles charged to a syscalling thread

	// Detector-thread work model (paper §3-4): the DT runs only in
	// leftover fetch/issue slots; these are the instruction budgets of
	// its jobs.
	DTIdleWork   int // per-quantum monitoring work
	DTDecideWork int // extra work when a new policy must be determined
	DTClogWork   int // extra work to identify clogging threads

	InitialPolicy policy.Policy

	Hierarchy cache.HierarchyConfig

	// Predictor selection and geometry. PredictorKind chooses the
	// direction predictor (hybrid, bimodal, gshare, local, taken);
	// hybrid uses all three table sizes, the others derive from
	// GShareEntries.
	PredictorKind  branch.Kind
	BimodalEntries int
	GShareEntries  int
	MetaEntries    int
	HistoryBits    uint
	BTBSets        int
	BTBWays        int

	// WrongPath enables wrong-path injection after mispredicts
	// (ablation switch; see DESIGN.md §5).
	WrongPath bool
}

// DefaultConfig returns the paper-matched machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:   8,
		FetchThreads: 2,
		FetchBlock:   8,
		DecodeWidth:  8,
		DecodeDelay:  4,
		IssueWidth:   8,
		CommitWidth:  8,

		IFQSize:   32,
		IntIQSize: 32,
		FPIQSize:  32,
		ROBPerThr: 48,
		LSQSize:   48, // 6 per context, near the SimpleScalar per-core default
		MSHRs:     0,  // unlimited by default; set for bandwidth studies

		IntRegs: 64,
		FPRegs:  64,
		FUs: [isa.NumFU]int{
			isa.FUIntALU:    6,
			isa.FUIntMulDiv: 2,
			isa.FUFPAdd:     4,
			isa.FUFPMulDiv:  2,
			isa.FUMemPort:   4,
		},
		ICacheBlockWords: 16, // 64-byte blocks, 4-byte instructions

		SyscallPenalty: 100,

		DTIdleWork:   256,
		DTDecideWork: 1024,
		DTClogWork:   512,

		InitialPolicy: policy.ICOUNT,

		Hierarchy: cache.DefaultHierarchyConfig(),

		PredictorKind:  branch.KindHybrid,
		BimodalEntries: 4096,
		GShareEntries:  8192,
		MetaEntries:    4096,
		HistoryBits:    12,
		BTBSets:        256,
		BTBWays:        4,

		WrongPath: true,
	}
}

// Validate rejects nonsensical geometries.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.FetchThreads <= 0 || c.FetchBlock <= 0:
		return fmt.Errorf("pipeline: fetch geometry must be positive")
	case c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("pipeline: stage widths must be positive")
	case c.DecodeDelay < 0:
		return fmt.Errorf("pipeline: DecodeDelay must be >= 0")
	case c.IFQSize <= 0 || c.IntIQSize <= 0 || c.FPIQSize <= 0:
		return fmt.Errorf("pipeline: queue sizes must be positive")
	case c.ROBPerThr <= 0 || c.LSQSize <= 0:
		return fmt.Errorf("pipeline: ROB and LSQ sizes must be positive")
	case c.MSHRs < 0:
		return fmt.Errorf("pipeline: MSHRs must be >= 0 (0 = unlimited)")
	case c.IntRegs <= 0 || c.FPRegs <= 0:
		return fmt.Errorf("pipeline: rename pools must be positive")
	case c.ICacheBlockWords <= 0:
		return fmt.Errorf("pipeline: ICacheBlockWords must be positive")
	case c.SyscallPenalty < 0:
		return fmt.Errorf("pipeline: SyscallPenalty must be >= 0")
	}
	for k, n := range c.FUs {
		if n <= 0 {
			return fmt.Errorf("pipeline: FU count for %v must be positive", isa.FUKind(k))
		}
	}
	return nil
}
