package pipeline

import (
	"sync"

	"repro/internal/trace"
)

// Machine shells are cached by geometry so repeated simulations of the
// same configuration skip construction entirely: Acquire resets a
// pooled shell in place (Machine.Reset restores the just-constructed
// state without allocating) instead of rebuilding every ring, table and
// arena. Keys are (Config, context count) — Config is comparable — so a
// pooled shell always has exactly the geometry Reset expects.
//
// The pool is bounded in both dimensions. A machine shell is megabytes
// of arenas, and a multi-core sweep multiplies distinct geometries
// (thread counts × machine configs), so an unbounded pool would strand
// every shell it ever saw. At most maxPoolKeys geometries are retained
// (oldest-admitted evicted first) with at most maxShellsPerKey shells
// each; an evicted shell is simply garbage — losing it costs one
// reconstruction, never correctness.
const (
	maxPoolKeys     = 16
	maxShellsPerKey = 8
)

type shellKey struct {
	cfg     Config
	threads int
}

var (
	poolMu    sync.Mutex
	pools     = map[shellKey][]*Machine{}
	poolOrder []shellKey // admission order, for eviction
)

// Acquire returns a machine equivalent to New(cfg, progs, seed),
// reusing a pooled shell of the same geometry when one is available.
// Reset restores a shell to its freshly-built state, so an acquired
// machine replays byte-identically to a newly constructed one (the
// allocation regression tests assert this).
func Acquire(cfg Config, progs []*trace.Program, seed uint64) *Machine {
	key := shellKey{cfg, len(progs)}
	poolMu.Lock()
	shells := pools[key]
	var m *Machine
	if n := len(shells); n > 0 {
		m = shells[n-1]
		shells[n-1] = nil
		pools[key] = shells[:n-1]
	}
	poolMu.Unlock()
	if m != nil {
		m.Reset(progs, seed)
		return m
	}
	return New(cfg, progs, seed)
}

// Release returns a machine to the shell pool for a later Acquire with
// the same Config and context count. The caller must drop every
// reference to m: a released machine will be overwritten. Machines
// beyond the pool's capacity bounds are dropped for the GC to collect.
func Release(m *Machine) {
	if m == nil {
		return
	}
	key := shellKey{m.cfg, len(m.threads)}
	poolMu.Lock()
	defer poolMu.Unlock()
	shells, known := pools[key]
	if len(shells) >= maxShellsPerKey {
		return
	}
	if !known {
		if len(poolOrder) >= maxPoolKeys {
			oldest := poolOrder[0]
			poolOrder = poolOrder[1:]
			delete(pools, oldest)
		}
		poolOrder = append(poolOrder, key)
	}
	pools[key] = append(shells, m)
}

// DrainPools drops every pooled machine shell. Sweep drivers call it
// between phases with disjoint geometry sets so the previous phase's
// shells do not sit resident through the next one; it is also the
// test seam for pool-bound assertions.
func DrainPools() {
	poolMu.Lock()
	pools = map[shellKey][]*Machine{}
	poolOrder = nil
	poolMu.Unlock()
}

// PoolCount returns the number of distinct geometries currently pooled
// (bounded by maxPoolKeys; exposed for tests and metrics).
func PoolCount() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return len(pools)
}

// Workload is one item of a RunMany batch.
type Workload struct {
	// Programs populate the hardware contexts (their count sets the
	// context count).
	Programs []*trace.Program
	// Seed drives the machine's stochastic wrong-path streams.
	Seed uint64
	// Cycles is how long to run.
	Cycles int64
}

// RunMany executes each workload in order on cfg-geometry machines
// drawn from the shell pool, calling visit (if non-nil) with the
// finished machine before it is recycled. The machine passed to visit
// is only valid for the duration of the call. After the first workload
// of a given context count, subsequent runs reuse the same shell, so a
// batch performs machine construction O(distinct geometries) times
// rather than O(len(work)).
func RunMany(cfg Config, work []Workload, visit func(i int, m *Machine)) {
	for i := range work {
		w := &work[i]
		m := Acquire(cfg, w.Programs, w.Seed)
		m.Run(w.Cycles)
		if visit != nil {
			visit(i, m)
		}
		Release(m)
	}
}
