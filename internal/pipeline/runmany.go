package pipeline

import (
	"sync"

	"repro/internal/trace"
)

// shellPools caches machine shells by geometry so repeated simulations
// of the same configuration skip construction entirely: Acquire resets
// a pooled shell in place (Machine.Reset restores the just-constructed
// state without allocating) instead of rebuilding every ring, table and
// arena. Keys are (Config, context count) — Config is comparable — so a
// pooled shell always has exactly the geometry Reset expects.
var shellPools sync.Map

type shellKey struct {
	cfg     Config
	threads int
}

// Acquire returns a machine equivalent to New(cfg, progs, seed),
// reusing a pooled shell of the same geometry when one is available.
// Reset restores a shell to its freshly-built state, so an acquired
// machine replays byte-identically to a newly constructed one (the
// allocation regression tests assert this).
func Acquire(cfg Config, progs []*trace.Program, seed uint64) *Machine {
	key := shellKey{cfg, len(progs)}
	if p, ok := shellPools.Load(key); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			m := v.(*Machine)
			m.Reset(progs, seed)
			return m
		}
	}
	return New(cfg, progs, seed)
}

// Release returns a machine to the shell pool for a later Acquire with
// the same Config and context count. The caller must drop every
// reference to m: a released machine will be overwritten.
func Release(m *Machine) {
	if m == nil {
		return
	}
	key := shellKey{m.cfg, len(m.threads)}
	p, _ := shellPools.LoadOrStore(key, &sync.Pool{})
	p.(*sync.Pool).Put(m)
}

// Workload is one item of a RunMany batch.
type Workload struct {
	// Programs populate the hardware contexts (their count sets the
	// context count).
	Programs []*trace.Program
	// Seed drives the machine's stochastic wrong-path streams.
	Seed uint64
	// Cycles is how long to run.
	Cycles int64
}

// RunMany executes each workload in order on cfg-geometry machines
// drawn from the shell pool, calling visit (if non-nil) with the
// finished machine before it is recycled. The machine passed to visit
// is only valid for the duration of the call. After the first workload
// of a given context count, subsequent runs reuse the same shell, so a
// batch performs machine construction O(distinct geometries) times
// rather than O(len(work)).
func RunMany(cfg Config, work []Workload, visit func(i int, m *Machine)) {
	for i := range work {
		w := &work[i]
		m := Acquire(cfg, w.Programs, w.Seed)
		m.Run(w.Cycles)
		if visit != nil {
			visit(i, m)
		}
		Release(m)
	}
}
