package pipeline

import (
	"testing"

	"repro/internal/trace"
)

// TestPoolBoundedAcrossManyGeometries pins the fix for the unbounded
// shell pool: a sweep that touches many distinct machine geometries
// (the shape of a multi-core allocation study — thread counts × config
// variants) must not strand a shell per geometry forever. The pool
// retains at most maxPoolKeys geometries, evicting the oldest.
func TestPoolBoundedAcrossManyGeometries(t *testing.T) {
	DrainPools()
	defer DrainPools()

	mix, _ := trace.MixByName("kitchen-sink")
	for i := 0; i < 3*maxPoolKeys; i++ {
		cfg := DefaultConfig()
		cfg.ROBPerThr = 16 + i // each i is a distinct geometry
		progs, err := mix.Programs(2, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		m := Acquire(cfg, progs, uint64(i+1))
		m.Run(64)
		Release(m)

		if n := PoolCount(); n > maxPoolKeys {
			t.Fatalf("after %d geometries the pool holds %d keys, bound is %d", i+1, n, maxPoolKeys)
		}
	}
	if n := PoolCount(); n != maxPoolKeys {
		t.Fatalf("pool holds %d keys after churn, want exactly the bound %d", n, maxPoolKeys)
	}
}

// TestPoolBoundedPerGeometry: releasing more shells of one geometry
// than the per-key cap drops the excess instead of hoarding it.
func TestPoolBoundedPerGeometry(t *testing.T) {
	DrainPools()
	defer DrainPools()

	cfg := DefaultConfig()
	mix, _ := trace.MixByName("kitchen-sink")
	machines := make([]*Machine, 2*maxShellsPerKey)
	for i := range machines {
		progs, err := mix.Programs(2, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = New(cfg, progs, uint64(i+1))
	}
	for _, m := range machines {
		Release(m)
	}
	key := shellKey{cfg, 2}
	poolMu.Lock()
	n := len(pools[key])
	poolMu.Unlock()
	if n != maxShellsPerKey {
		t.Fatalf("pool holds %d shells for one geometry, cap is %d", n, maxShellsPerKey)
	}
}

// TestDrainPools empties everything and the next Acquire still works.
func TestDrainPools(t *testing.T) {
	cfg := DefaultConfig()
	mix, _ := trace.MixByName("kitchen-sink")
	progs, err := mix.Programs(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	Release(New(cfg, progs, 1))
	if PoolCount() == 0 {
		t.Fatal("setup: expected at least one pooled geometry")
	}
	DrainPools()
	if n := PoolCount(); n != 0 {
		t.Fatalf("PoolCount after drain = %d, want 0", n)
	}
	progs2, err := mix.Programs(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := Acquire(cfg, progs2, 1)
	m.Run(64)
	Release(m)
}
