package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// SaveConfig writes a machine configuration as indented JSON, so
// experiment configurations can be versioned alongside results.
func SaveConfig(path string, cfg Config) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cfg); err != nil {
		return fmt.Errorf("pipeline: encoding config: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("pipeline: writing config: %w", err)
	}
	return nil
}

// LoadConfig reads a JSON machine configuration. Fields absent from the
// file keep DefaultConfig values, so a file may override just the knobs
// an experiment varies; unknown fields are rejected (they are almost
// always typos). The result is validated.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("pipeline: reading config: %w", err)
	}
	cfg := DefaultConfig()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("pipeline: parsing config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("pipeline: config %s: %w", path, err)
	}
	return cfg, nil
}
