package pipeline

import (
	"testing"

	"repro/internal/trace"
)

// TestCycleSteadyStateAllocationFree is the allocation regression gate:
// once a machine is warm, advancing cycles must never touch the
// allocator. Every per-cycle structure (event buckets, fetch rings,
// issue-queue slots, order scratch) is preallocated at construction, so
// any allocation here is a regression — and, because Go benchmarks GC
// between iterations, also a direct throughput loss.
func TestCycleSteadyStateAllocationFree(t *testing.T) {
	m := testMachine(t, "kitchen-sink", 8, nil)
	m.Run(16384) // warm: queues full, caches and predictors populated

	if n := testing.AllocsPerRun(32, func() { m.Run(256) }); n != 0 {
		t.Fatalf("steady-state Run(256) allocated %.1f times per run, want 0", n)
	}
}

// TestCloneIntoAllocationFree pins the oracle's per-candidate cost:
// overwriting an existing scratch machine must be allocation-free in
// steady state (the scratch's slabs absorb everything).
func TestCloneIntoAllocationFree(t *testing.T) {
	m := testMachine(t, "kitchen-sink", 8, nil)
	m.Run(16384)
	scratch := m.Clone()

	if n := testing.AllocsPerRun(32, func() { m.CloneInto(scratch) }); n != 0 {
		t.Fatalf("CloneInto allocated %.1f times per run, want 0", n)
	}
}

// TestCloneAllocationsBounded keeps full Clone (shell construction +
// state copy) from quietly regressing toward per-structure allocation
// churn. The bound is loose — it guards the arena-style construction,
// not an exact count.
func TestCloneAllocationsBounded(t *testing.T) {
	m := testMachine(t, "kitchen-sink", 8, nil)
	m.Run(16384)

	const maxAllocs = 120
	if n := testing.AllocsPerRun(8, func() { _ = m.Clone() }); n > maxAllocs {
		t.Fatalf("Clone allocated %.1f times per run, want <= %d", n, maxAllocs)
	}
}

// TestAcquireResetMatchesNew is the property machine pooling rests on:
// a recycled shell, Reset to a workload, must replay byte-identically
// to a freshly constructed machine — even when the shell previously ran
// a different workload, seed and policy.
func TestAcquireResetMatchesNew(t *testing.T) {
	mixA, _ := trace.MixByName("kitchen-sink")
	progsA, err := mixA.Programs(8, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Two independent generations of workload B: programs are consumed
	// by the machine that runs them.
	mixB, _ := trace.MixByName("int-memory")
	progsB1, err := mixB.Programs(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	progsB2, err := mixB.Programs(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()

	fresh := New(cfg, progsB1, 3)
	fresh.Run(30000)

	// Dirty a shell thoroughly on workload A, then reset it to B.
	recycled := New(cfg, progsA, 7)
	recycled.Run(25000)
	recycled.Reset(progsB2, 3)
	recycled.Run(30000)

	if fresh.TotalCommitted() != recycled.TotalCommitted() {
		t.Fatalf("reset shell diverged from fresh machine: %d vs %d committed",
			fresh.TotalCommitted(), recycled.TotalCommitted())
	}
	for i := 0; i < fresh.NumThreads(); i++ {
		if fresh.State(i).Cum != recycled.State(i).Cum {
			t.Fatalf("thread %d: counters diverged:\nfresh    %+v\nrecycled %+v",
				i, fresh.State(i).Cum, recycled.State(i).Cum)
		}
		if fresh.State(i).Live != recycled.State(i).Live {
			t.Fatalf("thread %d: gauges diverged", i)
		}
	}
	if err := recycled.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCachedTraceMatchesFresh: a machine fed replay-backed programs
// must be byte-identical to one generating its stream live — counters,
// gauges and invariants — including past the recorded prefix, where the
// replay program switches back to live generation mid-run.
func TestCachedTraceMatchesFresh(t *testing.T) {
	trace.FlushTraceCache()
	defer trace.FlushTraceCache()

	mix, _ := trace.MixByName("kitchen-sink")
	fresh, err := mix.Programs(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A short prefix forces every thread across the replay/live boundary
	// well before the run ends.
	cached, err := trace.CachedPrograms("kitchen-sink", 8, 5, 2000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()

	a := New(cfg, fresh, 5)
	a.Run(40000)
	b := New(cfg, cached, 5)
	b.Run(40000)

	if a.TotalCommitted() != b.TotalCommitted() {
		t.Fatalf("cached-trace machine diverged: %d vs %d committed",
			a.TotalCommitted(), b.TotalCommitted())
	}
	for i := 0; i < a.NumThreads(); i++ {
		if a.State(i).Cum != b.State(i).Cum {
			t.Fatalf("thread %d: counters diverged:\nfresh  %+v\ncached %+v",
				i, a.State(i).Cum, b.State(i).Cum)
		}
		if a.State(i).Live != b.State(i).Live {
			t.Fatalf("thread %d: gauges diverged", i)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRunManyMatchesIndividualRuns: the batch path must produce exactly
// the machines a loop of New+Run would, while reusing one shell.
func TestRunManyMatchesIndividualRuns(t *testing.T) {
	cfg := DefaultConfig()
	names := []string{"kitchen-sink", "int-memory", "kitchen-sink"}
	// Programs are consumed by the machine that runs them (New binds the
	// caller's pointers), so each leg generates its own.
	gen := func(name string) []*trace.Program {
		mix, ok := trace.MixByName(name)
		if !ok {
			t.Fatalf("unknown mix %s", name)
		}
		progs, err := mix.Programs(8, 11)
		if err != nil {
			t.Fatal(err)
		}
		return progs
	}

	work := make([]Workload, len(names))
	for i, name := range names {
		work[i] = Workload{Programs: gen(name), Seed: 11, Cycles: 20000}
	}
	batch := make([]uint64, len(work))
	RunMany(cfg, work, func(i int, m *Machine) { batch[i] = m.TotalCommitted() })

	for i, name := range names {
		m := New(cfg, gen(name), 11)
		m.Run(work[i].Cycles)
		if got := m.TotalCommitted(); batch[i] != got {
			t.Fatalf("workload %d: RunMany committed %d, individual run %d", i, batch[i], got)
		}
	}
}
