package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/trace"
)

// TestRandomGeometriesKeepInvariants is the pipeline's fuzz test: random
// (small but legal) machine geometries and thread counts must run
// without panicking and with every occupancy gauge exact.
func TestRandomGeometriesKeepInvariants(t *testing.T) {
	mixes := trace.Mixes()
	f := func(seed uint64, raw [10]uint8) bool {
		r := rng.New(seed)
		cfg := DefaultConfig()
		cfg.FetchWidth = 1 + int(raw[0]%8)
		cfg.FetchThreads = 1 + int(raw[1]%4)
		cfg.DecodeWidth = 1 + int(raw[2]%8)
		cfg.IssueWidth = 1 + int(raw[3]%8)
		cfg.CommitWidth = 1 + int(raw[4]%8)
		cfg.IFQSize = 4 + int(raw[5]%32)
		cfg.IntIQSize = 4 + int(raw[6]%32)
		cfg.FPIQSize = 4 + int(raw[6]%32)
		cfg.ROBPerThr = 8 + int(raw[7]%56)
		cfg.LSQSize = 4 + int(raw[8]%60)
		cfg.IntRegs = 16 + int(raw[9]%112)
		cfg.FPRegs = 16 + int(raw[9]%112)
		cfg.DecodeDelay = int(raw[0] % 4)
		threads := 1 + r.Intn(8)
		mix := mixes[r.Intn(len(mixes))]
		progs, err := mix.Programs(threads, seed)
		if err != nil {
			return false
		}
		m := New(cfg, progs, seed)
		m.Run(3000)
		if err := m.CheckInvariants(); err != nil {
			t.Logf("geometry %+v threads=%d mix=%s: %v", cfg, threads, mix.Name, err)
			return false
		}
		return m.TotalCommitted() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestNarrowMachine exercises the degenerate 1-wide machine.
func TestNarrowMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchWidth = 1
	cfg.FetchThreads = 1
	cfg.DecodeWidth = 1
	cfg.IssueWidth = 1
	cfg.CommitWidth = 1
	mix, _ := trace.MixByName("int-compute")
	progs, _ := mix.Programs(2, 1)
	m := New(cfg, progs, 1)
	m.Run(20000)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ipc := m.AggregateIPC(); ipc > 1 {
		t.Fatalf("1-wide machine produced IPC %.3f > 1", ipc)
	}
	if m.TotalCommitted() == 0 {
		t.Fatal("1-wide machine made no progress")
	}
}

// TestTinySharedResources: pathologically small shared pools must
// throttle but never wedge the machine.
func TestTinySharedResources(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IFQSize = 4
	cfg.IntIQSize = 4
	cfg.FPIQSize = 4
	cfg.LSQSize = 4
	cfg.IntRegs = 8
	cfg.FPRegs = 8
	mix, _ := trace.MixByName("memory-mixed")
	progs, _ := mix.Programs(8, 3)
	m := New(cfg, progs, 3)
	m.Run(30000)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.TotalCommitted() == 0 {
		t.Fatal("machine wedged under tiny shared pools")
	}
}

// TestLongRunStability: a longer run (several phase generations,
// syscalls, squashes) stays consistent and makes steady progress.
func TestLongRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	m := func() *Machine {
		mix, _ := trace.MixByName("kitchen-sink")
		progs, _ := mix.Programs(8, 99)
		return New(DefaultConfig(), progs, 99)
	}()
	var lastCommitted uint64
	for i := 0; i < 10; i++ {
		m.Run(20000)
		c := m.TotalCommitted()
		if c == lastCommitted {
			t.Fatalf("no progress in window %d", i)
		}
		lastCommitted = c
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEventRingNeverOverflows: the completion event ring asserts on
// latencies >= eventRing; a config with the largest latencies must not
// trip it.
func TestEventRingNeverOverflows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hierarchy.MemLat = eventRing - cfg.Hierarchy.L2.HitLat - cfg.Hierarchy.L1D.HitLat - 25
	mix, _ := trace.MixByName("mixed-lowipc")
	progs, _ := mix.Programs(8, 1)
	m := New(cfg, progs, 1)
	// Panics inside Run would fail the test.
	m.Run(30000)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMSHRLimit: with a tiny MSHR pool, outstanding misses never exceed
// it and MSHR-full rejections occur under a memory-bound mix.
func TestMSHRLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 4
	mix, _ := trace.MixByName("mixed-lowipc")
	progs, _ := mix.Programs(8, 1)
	m := New(cfg, progs, 1)
	var rejections uint64
	for step := 0; step < 200; step++ {
		m.Run(100)
		total := 0
		for i := 0; i < 8; i++ {
			total += m.State(i).Live.DMissOut
		}
		if total > 4 {
			t.Fatalf("outstanding misses %d exceed 4 MSHRs", total)
		}
	}
	for i := 0; i < 8; i++ {
		rejections += m.State(i).Cum.MSHRFull
	}
	if rejections == 0 {
		t.Fatal("no MSHR-full rejections under a memory-bound mix with 4 MSHRs")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.TotalCommitted() == 0 {
		t.Fatal("machine wedged under MSHR limit")
	}
}

// TestMSHRUnlimitedMatchesDefault: MSHRs=0 must be behaviour-identical
// to the pre-MSHR machine (it is the default for all recorded results).
func TestMSHRUnlimitedMatchesDefault(t *testing.T) {
	mix, _ := trace.MixByName("kitchen-sink")
	p1, _ := mix.Programs(8, 1)
	p2, _ := mix.Programs(8, 1)
	a := New(DefaultConfig(), p1, 1)
	cfg := DefaultConfig()
	cfg.MSHRs = 0
	b := New(cfg, p2, 1)
	a.Run(20000)
	b.Run(20000)
	if a.TotalCommitted() != b.TotalCommitted() {
		t.Fatal("MSHRs=0 changed behaviour")
	}
}
