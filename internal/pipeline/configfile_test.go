package pipeline

import (
	"os"
	"path/filepath"
	"testing"
)

func TestConfigRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "machine.json")
	cfg := DefaultConfig()
	cfg.FetchWidth = 4
	cfg.MSHRs = 8
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, cfg)
	}
}

func TestConfigPartialOverride(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(`{"FetchThreads": 4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FetchThreads != 4 {
		t.Fatal("override not applied")
	}
	if got.FetchWidth != DefaultConfig().FetchWidth {
		t.Fatal("defaults not preserved")
	}
}

func TestConfigRejectsUnknownAndInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"FetchWdith": 4}`), 0o644) // typo field
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("unknown field accepted")
	}
	os.WriteFile(bad, []byte(`{"FetchWidth": 0}`), 0o644)
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
