package pipeline

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// farFuture blocks a thread's fetch until an explicit event (syscall
// commit) re-enables it.
const farFuture = math.MaxInt64 / 2

// Cycle advances the machine by one clock. Stages run back to front so
// that resources freed this cycle become available to earlier stages next
// cycle, with one deliberate exception: completions are processed first
// so same-cycle wakeup (a modest bypass network) is modelled.
func (m *Machine) Cycle() {
	m.processCompletions()
	m.commit()
	m.issue()
	m.dispatch()
	m.fetch()
	m.now++
	if m.now&255 == 0 {
		for _, t := range m.threads {
			t.st.AccIPC = float64(t.st.Cum.Committed) / float64(m.now)
		}
	}
}

// ---------------------------------------------------------------- fetch

func (m *Machine) fetch() {
	if m.draining {
		for _, t := range m.threads {
			t.st.Cum.FetchStalls++
		}
		return
	}
	order := m.sel.Order(m.statesView, m.orderBuf)
	m.sel.Advance()
	slots := m.cfg.FetchWidth
	threadsUsed := 0
	for _, ti := range order {
		if slots == 0 || threadsUsed >= m.cfg.FetchThreads {
			break
		}
		t := m.threads[ti]
		if !m.canFetch(t) {
			continue
		}
		n := m.fetchThread(t, slots)
		if n > 0 {
			slots -= n
			threadsUsed++
		}
	}
	// The detector thread takes only what nobody else wanted (paper §3:
	// "when the slots are almost fully occupied by normal threads, the
	// detector thread will not obtain any more scheduling slots").
	if m.dtToFetch > 0 && slots > 0 {
		k := min(slots, m.dtToFetch)
		m.dtToFetch -= k
		m.dtStats.FetchSlotsUsed += uint64(k)
	}
}

// canFetch checks a thread's eligibility this cycle, counting stalls.
func (m *Machine) canFetch(t *thread) bool {
	if t.st.Flags.FetchDisabled {
		t.st.Cum.FetchStalls++
		return false
	}
	if t.fetchBlockedUntil > m.now {
		t.st.Cum.FetchStalls++
		return false
	}
	if t.blockedByIMiss {
		t.blockedByIMiss = false
		t.st.Live.IMissOut = 0
	}
	if t.wrongPath && !m.cfg.WrongPath {
		// Ablation mode: no wrong-path injection; fetch simply waits
		// for the mispredicted branch to resolve.
		t.st.Cum.FetchStalls++
		return false
	}
	if m.ifqTotal >= m.cfg.IFQSize {
		t.st.Cum.FetchStalls++
		return false
	}
	return true
}

// fetchPC returns the address of the next instruction to fetch.
func (m *Machine) fetchPC(t *thread) uint64 {
	if t.wrongPath {
		return t.wrongPC
	}
	m.peek(t)
	return t.pending.PC
}

// peek ensures t.pending holds the next architectural instruction.
func (m *Machine) peek(t *thread) {
	if !t.hasPending {
		t.pending = t.prog.Next()
		t.hasPending = true
	}
}

// fetchThread fetches up to slots instructions from t, stopping at the
// fetch-block boundary (the ICOUNT.2.8 cache-block rule), at a
// mispredicted branch (the PC stream redirects), or at a syscall.
// It returns the number of instructions fetched.
func (m *Machine) fetchThread(t *thread, slots int) int {
	pc := m.fetchPC(t)

	// I-cache access for this block. The detector thread never reaches
	// this path: its code lives in a private program cache.
	iBlock := pc / uint64(m.cfg.ICacheBlockWords)
	if iBlock+1 != t.lastIBlock {
		lat, miss := m.hier.L1I.Access(t.id, pc*4, false)
		t.lastIBlock = iBlock + 1
		if miss {
			t.st.Cum.L1IMisses++
			t.fetchBlockedUntil = m.now + int64(lat)
			t.blockedByIMiss = true
			t.st.Live.IMissOut = 1
			t.st.Cum.FetchStalls++
			return 0
		}
	}

	fetchBlock := pc / uint64(m.cfg.FetchBlock)
	n := 0
	for n < slots {
		pc = m.fetchPC(t)
		if pc/uint64(m.cfg.FetchBlock) != fetchBlock {
			break // cache-block boundary: the next thread gets the slots
		}
		if pc/uint64(m.cfg.ICacheBlockWords)+1 != t.lastIBlock {
			break // crossed into an unchecked I-cache block
		}
		if m.ifqTotal >= m.cfg.IFQSize {
			break
		}
		in, wrong, mispred := m.nextInst(t)
		t.ifq = append(t.ifq, fetchEntry{inst: in, fetchedAt: m.now, wrong: wrong, mispred: mispred})
		m.ifqTotal++
		n++

		t.st.Cum.Fetched++
		if wrong {
			t.st.Cum.WrongFetched++
		}
		t.st.Live.PreIssue++
		switch {
		case in.Class.IsCtrl():
			t.st.Live.Branches++
		case in.Class == isa.Load:
			t.st.Live.Loads++
			t.st.Live.Mem++
		case in.Class == isa.Store:
			t.st.Live.Mem++
		}

		if mispred {
			break // fetch redirects onto the wrong path next cycle
		}
		if !wrong && in.Class == isa.Syscall {
			// Serialise: nothing more from this thread until the
			// syscall commits and pays its penalty.
			t.fetchBlockedUntil = farFuture
			break
		}
	}
	return n
}

// nextInst produces the next instruction for t — architectural or
// wrong-path — handling branch prediction and mispredict detection.
func (m *Machine) nextInst(t *thread) (in isa.Inst, wrong, mispred bool) {
	if t.wrongPath {
		in = t.prog.WrongPathInst(&t.wrng, t.wrongPC)
		t.wrongPC++
		return in, true, false
	}
	m.peek(t)
	in = t.pending
	t.hasPending = false

	if in.Class == isa.Branch {
		predTaken := m.pred.Predict(t.id, in.PC)
		var predTarget uint64
		if predTaken {
			tgt, hit := m.btb.Lookup(t.id, in.PC)
			if hit {
				predTarget = tgt
			} else {
				predTaken = false // cannot redirect without a target
			}
		}
		mispred = predTaken != in.Taken || (predTaken && predTarget != in.Target)
		if mispred {
			t.wrongPath = true
			if predTaken {
				t.wrongPC = predTarget
			} else {
				t.wrongPC = in.PC + 1
			}
		}
	}
	return in, false, mispred
}

// ------------------------------------------------------------- dispatch

// dispatch renames and dispatches instructions from the fetch buffer
// into the instruction queues, allocating ROB, LSQ and rename-register
// resources. Threads are served round-robin; each thread dispatches in
// order and stops at its first blocked instruction.
func (m *Machine) dispatch() {
	budget := m.cfg.DecodeWidth
	n := len(m.threads)
	start := m.renameCursor
	m.renameCursor = (m.renameCursor + 1) % n
	for i := 0; i < n && budget > 0; i++ {
		t := m.threads[(start+i)%n]
		for budget > 0 && len(t.ifq) > 0 {
			if !m.dispatchOne(t) {
				break
			}
			budget--
		}
	}
}

// dispatchOne tries to dispatch t's oldest fetched instruction,
// reporting whether it moved.
func (m *Machine) dispatchOne(t *thread) bool {
	fe := &t.ifq[0]
	if fe.fetchedAt+int64(m.cfg.DecodeDelay) > m.now {
		return false // still in the decode pipe
	}
	cls := fe.inst.Class
	usesFPQ := cls.IsFP()
	isMem := cls.IsMem()

	if t.robCount() >= m.cfg.ROBPerThr {
		return false
	}
	if usesFPQ {
		if len(m.fpIQ) >= m.cfg.FPIQSize {
			return false
		}
	} else if len(m.intIQ) >= m.cfg.IntIQSize {
		return false
	}
	if fe.inst.HasDst {
		if usesFPQ {
			if m.fpRegsUsed >= m.cfg.FPRegs {
				return false
			}
		} else if m.intRegsUsed >= m.cfg.IntRegs {
			return false
		}
	}
	if isMem && m.lsqUsed >= m.cfg.LSQSize {
		t.st.Cum.LSQFull++
		return false
	}

	// Allocate.
	idx := t.robTail
	t.robTail++
	e := t.entry(idx)
	*e = robEntry{
		inst:    fe.inst,
		gen:     t.genCtr,
		state:   sWaiting,
		wrong:   fe.wrong,
		mispred: fe.mispred,
		usesFPQ: usesFPQ,
		hasDst:  fe.inst.HasDst,
		isMem:   isMem,
		lsqHeld: isMem,
	}
	t.genCtr++
	if fe.wrong {
		// Synthetic wrong-path readiness: a short dependency chain.
		e.readyAt = m.now + 1 + int64(fe.inst.Dep1&3)
	} else {
		t.doneAt[fe.inst.Seq%doneRing] = pending
	}

	if fe.inst.HasDst {
		if usesFPQ {
			m.fpRegsUsed++
		} else {
			m.intRegsUsed++
		}
	}
	if isMem {
		m.lsqUsed++
		t.st.Live.LSQ++
	}
	qe := iqEntry{tid: int8(t.id), robIdx: idx, gen: e.gen}
	if usesFPQ {
		m.fpIQ = append(m.fpIQ, qe)
	} else {
		m.intIQ = append(m.intIQ, qe)
	}
	t.st.Live.IQ++
	t.st.Live.ROB++

	// Pop from the fetch buffer.
	t.ifq = t.ifq[1:]
	if len(t.ifq) == 0 {
		t.ifq = nil
	}
	m.ifqTotal--
	return true
}

// ---------------------------------------------------------------- issue

// issue selects up to IssueWidth ready instructions, oldest first within
// each queue (integer queue first, matching SimpleSMT's split queues).
// Leftover issue bandwidth executes detector-thread work.
func (m *Machine) issue() {
	budget := m.cfg.IssueWidth
	m.issueQueue(&m.intIQ, &budget)
	m.issueQueue(&m.fpIQ, &budget)

	if budget > 0 && m.dtToIssue > m.dtToFetch {
		k := min(budget, m.dtToIssue-m.dtToFetch)
		m.dtToIssue -= k
		m.dtStats.IssueSlotsUsed += uint64(k)
		if m.dtToIssue == 0 {
			m.dtStats.JobsCompleted++
			m.dtStats.JobCycles += uint64(m.now - m.dtJobStart)
			if m.dtSwitchArmed {
				m.sel.SetPolicy(m.dtSwitchTo)
				m.dtSwitchArmed = false
			}
		}
	}
}

func (m *Machine) issueQueue(q *[]iqEntry, budget *int) {
	queue := *q
	w := 0
	for r := 0; r < len(queue); r++ {
		qe := queue[r]
		t := m.threads[qe.tid]
		e := t.entry(qe.robIdx)
		if e.gen != qe.gen || e.state != sWaiting {
			continue // squashed: drop the entry
		}
		if *budget == 0 || !m.ready(t, e) || !m.tryIssue(t, e, qe.robIdx) {
			queue[w] = qe
			w++
			continue
		}
		*budget--
	}
	*q = queue[:w]
}

// ready reports whether e's operands are available.
func (m *Machine) ready(t *thread, e *robEntry) bool {
	if e.wrong {
		return m.now >= e.readyAt
	}
	if d := e.inst.Dep1; d != 0 && d <= maxDepWindow {
		if p := e.inst.Seq - uint64(d); p >= 1 && t.doneAt[p%doneRing] > m.now {
			return false
		}
	}
	if d := e.inst.Dep2; d != 0 && d <= maxDepWindow {
		if p := e.inst.Seq - uint64(d); p >= 1 && t.doneAt[p%doneRing] > m.now {
			return false
		}
	}
	return true
}

// tryIssue claims a functional unit (and the D-cache for memory ops) and
// schedules completion. It reports whether the instruction issued.
func (m *Machine) tryIssue(t *thread, e *robEntry, robIdx uint64) bool {
	kind := e.inst.Class.FU()
	units := m.fuBusy[kind]
	unit := -1
	for u := range units {
		if units[u] <= m.now {
			unit = u
			break
		}
	}
	if unit < 0 {
		return false
	}
	lat := int64(e.inst.Class.Latency())
	if e.inst.Class.Pipelined() {
		units[unit] = m.now + 1
	} else {
		units[unit] = m.now + lat
	}

	switch e.inst.Class {
	case isa.Load:
		// MSHR admission: a load that would miss cannot issue while
		// all miss-status registers are busy (it retries next cycle).
		if m.cfg.MSHRs > 0 && m.dMissTotal >= m.cfg.MSHRs && !m.hier.L1D.Probe(e.inst.Addr) {
			t.st.Cum.MSHRFull++
			units[unit] = m.now // release the claimed port
			return false
		}
		dlat, miss := m.hier.L1D.Access(t.id, e.inst.Addr, false)
		lat += int64(dlat)
		if miss {
			t.st.Cum.L1DMisses++
			e.dMissOut = true
			t.st.Live.DMissOut++
			m.dMissTotal++
		}
	case isa.Store:
		// The store buffer hides store latency from the pipeline; the
		// cache sees the write (and any miss traffic) now.
		_, miss := m.hier.L1D.Access(t.id, e.inst.Addr, true)
		if miss {
			t.st.Cum.L1DMisses++
		}
		lat = 1
	}

	e.state = sIssued
	e.completeAt = m.now + lat
	if e.completeAt-m.now >= eventRing {
		panic(fmt.Sprintf("pipeline: completion latency %d exceeds event ring", e.completeAt-m.now))
	}
	m.events[e.completeAt%eventRing] = append(m.events[e.completeAt%eventRing],
		event{tid: int8(t.id), robIdx: robIdx, gen: e.gen})
	t.st.Live.IQ--
	t.st.Live.PreIssue--
	// BRCOUNT, LDCOUNT and MEMCOUNT count instructions in the pre-issue
	// stages (decode, rename, the queues), per Tullsen et al.; the
	// outstanding-miss gauges (dMissOut) track post-issue state.
	switch {
	case e.inst.Class.IsCtrl():
		t.st.Live.Branches--
	case e.inst.Class == isa.Load:
		t.st.Live.Loads--
		t.st.Live.Mem--
	case e.inst.Class == isa.Store:
		t.st.Live.Mem--
	}
	return true
}

// --------------------------------------------------------- completions

// processCompletions retires execution of instructions whose latency
// expires this cycle: wakes dependents, resolves branches (training the
// predictor and squashing wrong paths), and marks entries committable.
func (m *Machine) processCompletions() {
	bucket := &m.events[m.now%eventRing]
	for _, ev := range *bucket {
		t := m.threads[ev.tid]
		e := t.entry(ev.robIdx)
		if e.gen != ev.gen || e.state != sIssued {
			continue // squashed, or the slot was reused
		}
		e.state = sDone
		in := &e.inst
		if in.Class == isa.Load {
			if e.dMissOut {
				e.dMissOut = false
				t.st.Live.DMissOut--
				m.dMissTotal--
			}
			// Loads release their LSQ entry once the value returns;
			// stores hold theirs until commit.
			if e.lsqHeld {
				e.lsqHeld = false
				m.lsqUsed--
				t.st.Live.LSQ--
			}
		}
		if e.wrong {
			continue
		}
		t.doneAt[in.Seq%doneRing] = m.now
		switch in.Class {
		case isa.Branch:
			m.pred.Update(t.id, in.PC, in.Taken)
			if in.Taken {
				m.btb.Insert(t.id, in.PC, in.Target)
			}
			if e.mispred {
				t.st.Cum.Mispredicts++
				m.squashWrongPath(t, ev.robIdx)
			}
		case isa.Jump:
			m.btb.Insert(t.id, in.PC, in.Target)
		}
	}
	*bucket = (*bucket)[:0]
}

// squashWrongPath removes everything younger than the resolved branch at
// brIdx from t's fetch buffer, queues and ROB, releasing the shared
// resources wrong-path execution was holding, and redirects fetch.
func (m *Machine) squashWrongPath(t *thread, brIdx uint64) {
	// Everything still in the fetch buffer is younger than the branch.
	for i := range t.ifq {
		fe := &t.ifq[i]
		t.st.Live.PreIssue--
		switch {
		case fe.inst.Class.IsCtrl():
			t.st.Live.Branches--
		case fe.inst.Class == isa.Load:
			t.st.Live.Loads--
			t.st.Live.Mem--
		case fe.inst.Class == isa.Store:
			t.st.Live.Mem--
		}
		m.ifqTotal--
	}
	t.ifq = nil

	for idx := t.robTail; idx > brIdx+1; idx-- {
		e := t.entry(idx - 1)
		if !e.wrong {
			panic("pipeline: squashing an architectural instruction")
		}
		switch e.state {
		case sWaiting:
			t.st.Live.IQ--
			t.st.Live.PreIssue--
			switch {
			case e.inst.Class.IsCtrl():
				t.st.Live.Branches--
			case e.inst.Class == isa.Load:
				t.st.Live.Loads--
				t.st.Live.Mem--
			case e.inst.Class == isa.Store:
				t.st.Live.Mem--
			}
		case sIssued:
			if e.dMissOut {
				e.dMissOut = false
				t.st.Live.DMissOut--
				m.dMissTotal--
			}
		}
		if e.hasDst {
			if e.usesFPQ {
				m.fpRegsUsed--
			} else {
				m.intRegsUsed--
			}
		}
		if e.lsqHeld {
			e.lsqHeld = false
			m.lsqUsed--
			t.st.Live.LSQ--
		}
		t.st.Live.ROB--
		e.state = sSquashed
	}
	t.robTail = brIdx + 1

	// Purge queue entries referencing squashed slots.
	purge := func(q *[]iqEntry) {
		queue := *q
		w := 0
		for _, qe := range queue {
			if int(qe.tid) == t.id && qe.robIdx > brIdx {
				continue
			}
			queue[w] = qe
			w++
		}
		*q = queue[:w]
	}
	purge(&m.intIQ)
	purge(&m.fpIQ)

	t.wrongPath = false
	t.wrongPC = 0
	t.lastIBlock = 0 // redirect: refetch the I-cache block
	if t.fetchBlockedUntil < m.now+1 {
		t.fetchBlockedUntil = m.now + 1 // one-cycle redirect bubble
	}
}

// --------------------------------------------------------------- commit

// commit retires completed instructions in order per thread, up to
// CommitWidth total per cycle, rotating the starting thread for
// fairness. It also implements the conservative syscall drain.
func (m *Machine) commit() {
	budget := m.cfg.CommitWidth
	n := len(m.threads)
	start := m.commitCursor
	m.commitCursor = (m.commitCursor + 1) % n
	for i := 0; i < n && budget > 0; i++ {
		t := m.threads[(start+i)%n]
		c := 0
		for budget > 0 && t.robCount() > 0 {
			e := t.entry(t.robHead)
			if e.state != sDone {
				break
			}
			if e.wrong {
				panic("pipeline: wrong-path instruction reached ROB head")
			}
			if e.inst.Class == isa.Syscall && !m.commitSyscallReady(t) {
				break
			}
			m.commitEntry(t, e)
			t.robHead++
			budget--
			c++
		}
		m.committedNow[(start+i)%n] = c
	}
	for i, t := range m.threads {
		if t.robCount() > 0 && m.committedNow[i] == 0 {
			t.st.QuantumStalls++
		}
		m.committedNow[i] = 0
	}
}

// commitSyscallReady implements the paper's conservative assumption:
// "when a thread encounters a system call, all threads have to flush out
// of the pipeline before the system call can be started". We model the
// flush as a global drain: fetch stops machine-wide, in-flight work
// completes, and only then does the syscall commit and pay its penalty.
func (m *Machine) commitSyscallReady(t *thread) bool {
	if !m.draining {
		m.draining = true
		m.drainTid = t.id
	}
	if m.drainTid != t.id {
		return false // one syscall drains at a time
	}
	if m.drainBlockers() > 0 {
		return false
	}
	m.draining = false
	t.st.Cum.Syscalls++
	t.fetchBlockedUntil = m.now + int64(m.cfg.SyscallPenalty)
	return true
}

// drainBlockers counts in-flight work other than ROB-head syscalls that
// are themselves waiting to drain.
func (m *Machine) drainBlockers() int {
	blockers := 0
	for _, t := range m.threads {
		blockers += len(t.ifq)
		for idx := t.robHead; idx < t.robTail; idx++ {
			e := t.entry(idx)
			if idx == t.robHead && e.inst.Class == isa.Syscall && e.state == sDone && !e.wrong {
				continue
			}
			blockers++
		}
	}
	return blockers
}

// commitEntry retires one instruction, updating architectural counters
// and freeing its resources.
func (m *Machine) commitEntry(t *thread, e *robEntry) {
	c := &t.st.Cum
	c.Committed++
	switch e.inst.Class {
	case isa.Branch:
		c.Branches++
		c.CondBranches++
	case isa.Jump:
		c.Branches++
	case isa.Load:
		c.Loads++
	case isa.Store:
		c.Stores++
	}
	if e.hasDst {
		if e.usesFPQ {
			m.fpRegsUsed--
		} else {
			m.intRegsUsed--
		}
	}
	if e.lsqHeld {
		e.lsqHeld = false
		m.lsqUsed--
		t.st.Live.LSQ--
	}
	t.st.Live.ROB--
	e.state = sSquashed // slot free
}
