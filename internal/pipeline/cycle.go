package pipeline

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
)

// farFuture blocks a thread's fetch until an explicit event (syscall
// commit) re-enables it.
const farFuture = math.MaxInt64 / 2

// Cycle advances the machine by one clock. Stages run back to front so
// that resources freed this cycle become available to earlier stages next
// cycle, with one deliberate exception: completions are processed first
// so same-cycle wakeup (a modest bypass network) is modelled.
func (m *Machine) Cycle() {
	m.processCompletions()
	m.commit()
	m.issue()
	m.dispatch()
	m.fetch()
	m.now++
	if m.now&255 == 0 {
		m.updateAccIPC()
	}
}

// updateAccIPC refreshes each thread's accumulated-IPC estimate every
// 256 cycles. Threads whose committed count has not moved keep their
// previous estimate, skipping the division; the range over threads
// lives here, out of Cycle's hot straight-line path.
func (m *Machine) updateAccIPC() {
	den := float64(m.now)
	for _, t := range m.threads {
		if c := t.st.Cum.Committed; c != t.accCommitted {
			t.accCommitted = c
			t.st.AccIPC = float64(c) / den
		}
	}
}

// ---------------------------------------------------------------- fetch

func (m *Machine) fetch() {
	if m.draining {
		for _, t := range m.threads {
			t.st.Cum.FetchStalls++
		}
		return
	}
	order := m.sel.Order(m.statesView, m.orderBuf)
	m.sel.Advance()
	slots := m.cfg.FetchWidth
	threadsUsed := 0
	for _, ti := range order {
		if slots == 0 || threadsUsed >= m.cfg.FetchThreads {
			break
		}
		t := m.threads[ti]
		if !m.canFetch(t) {
			continue
		}
		n := m.fetchThread(t, slots)
		if n > 0 {
			slots -= n
			threadsUsed++
		}
	}
	// The detector thread takes only what nobody else wanted (paper §3:
	// "when the slots are almost fully occupied by normal threads, the
	// detector thread will not obtain any more scheduling slots").
	if m.dtToFetch > 0 && slots > 0 {
		k := min(slots, m.dtToFetch)
		m.dtToFetch -= k
		m.dtStats.FetchSlotsUsed += uint64(k)
	}
}

// canFetch checks a thread's eligibility this cycle, counting stalls.
func (m *Machine) canFetch(t *thread) bool {
	if t.st.Flags.FetchDisabled {
		t.st.Cum.FetchStalls++
		return false
	}
	if t.fetchBlockedUntil > m.now {
		t.st.Cum.FetchStalls++
		return false
	}
	if t.blockedByIMiss {
		t.blockedByIMiss = false
		t.st.Live.IMissOut = 0
	}
	if t.wrongPath && !m.cfg.WrongPath {
		// Ablation mode: no wrong-path injection; fetch simply waits
		// for the mispredicted branch to resolve.
		t.st.Cum.FetchStalls++
		return false
	}
	if m.ifqTotal >= m.cfg.IFQSize {
		t.st.Cum.FetchStalls++
		return false
	}
	return true
}

// fetchPC returns the address of the next instruction to fetch.
func (m *Machine) fetchPC(t *thread) uint64 {
	if t.wrongPath {
		return t.wrongPC
	}
	m.peek(t)
	return t.pending.PC
}

// peek ensures t.pending holds the next architectural instruction.
func (m *Machine) peek(t *thread) {
	if !t.hasPending {
		t.pending = t.prog.Next()
		t.hasPending = true
	}
}

// fetchThread fetches up to slots instructions from t, stopping at the
// fetch-block boundary (the ICOUNT.2.8 cache-block rule), at a
// mispredicted branch (the PC stream redirects), or at a syscall.
// It returns the number of instructions fetched.
func (m *Machine) fetchThread(t *thread, slots int) int {
	pc := m.fetchPC(t)

	// I-cache access for this block. The detector thread never reaches
	// this path: its code lives in a private program cache.
	iBlock := m.iBlockOf(pc)
	if iBlock+1 != t.lastIBlock {
		lat, miss := m.l1i.Access(t.id, pc*4, false)
		t.lastIBlock = iBlock + 1
		if miss {
			t.st.Cum.L1IMisses++
			t.fetchBlockedUntil = m.now + int64(lat)
			t.blockedByIMiss = true
			t.st.Live.IMissOut = 1
			t.st.Cum.FetchStalls++
			return 0
		}
	}

	fetchBlock := m.fetchBlockOf(pc)
	n := 0
	for n < slots {
		pc = m.fetchPC(t)
		if m.fetchBlockOf(pc) != fetchBlock {
			break // cache-block boundary: the next thread gets the slots
		}
		if m.iBlockOf(pc)+1 != t.lastIBlock {
			break // crossed into an unchecked I-cache block
		}
		if m.ifqTotal >= m.cfg.IFQSize {
			break
		}
		in, wrong, mispred := m.nextInst(t)
		t.ifq[t.ifqTail&t.ifqMask] = fetchEntry{inst: in, fetchedAt: m.now, wrong: wrong, mispred: mispred}
		t.ifqTail++
		m.ifqTotal++
		n++

		t.st.Cum.Fetched++
		if wrong {
			t.st.Cum.WrongFetched++
		}
		t.st.Live.PreIssue++
		switch {
		case in.Class.IsCtrl():
			t.st.Live.Branches++
		case in.Class == isa.Load:
			t.st.Live.Loads++
			t.st.Live.Mem++
		case in.Class == isa.Store:
			t.st.Live.Mem++
		}

		if mispred {
			break // fetch redirects onto the wrong path next cycle
		}
		if !wrong && in.Class == isa.Syscall {
			// Serialise: nothing more from this thread until the
			// syscall commits and pays its penalty.
			t.fetchBlockedUntil = farFuture
			break
		}
	}
	return n
}

// nextInst produces the next instruction for t — architectural or
// wrong-path — handling branch prediction and mispredict detection.
func (m *Machine) nextInst(t *thread) (in isa.Inst, wrong, mispred bool) {
	if t.wrongPath {
		in = t.prog.WrongPathInst(&t.wrng, t.wrongPC)
		t.wrongPC++
		return in, true, false
	}
	m.peek(t)
	in = t.pending
	t.hasPending = false

	if in.Class == isa.Branch {
		var predTaken bool
		if h := m.predHybrid; h != nil {
			predTaken = h.Predict(t.id, in.PC)
		} else {
			predTaken = m.pred.Predict(t.id, in.PC)
		}
		var predTarget uint64
		if predTaken {
			tgt, hit := m.btb.Lookup(t.id, in.PC)
			if hit {
				predTarget = tgt
			} else {
				predTaken = false // cannot redirect without a target
			}
		}
		mispred = predTaken != in.Taken || (predTaken && predTarget != in.Target)
		if mispred {
			t.wrongPath = true
			if predTaken {
				t.wrongPC = predTarget
			} else {
				t.wrongPC = in.PC + 1
			}
		}
	}
	return in, false, mispred
}

// ------------------------------------------------------------- dispatch

// dispatch renames and dispatches instructions from the fetch buffer
// into the instruction queues, allocating ROB, LSQ and rename-register
// resources. Threads are served round-robin; each thread dispatches in
// order and stops at its first blocked instruction.
func (m *Machine) dispatch() {
	budget := m.cfg.DecodeWidth
	n := len(m.threads)
	start := m.renameCursor
	m.renameCursor = (m.renameCursor + 1) % n
	for i := 0; i < n && budget > 0; i++ {
		j := start + i
		if j >= n {
			j -= n
		}
		t := m.threads[j]
		if t.dispHoldUntil > m.now {
			continue // head of the fetch buffer is still in decode
		}
		for budget > 0 && t.ifqTail != t.ifqHead {
			if !m.dispatchOne(t) {
				break
			}
			budget--
		}
	}
}

// dispatchOne tries to dispatch t's oldest fetched instruction,
// reporting whether it moved.
func (m *Machine) dispatchOne(t *thread) bool {
	fe := &t.ifq[t.ifqHead&t.ifqMask]
	if ready := fe.fetchedAt + int64(m.cfg.DecodeDelay); ready > m.now {
		t.dispHoldUntil = ready
		return false // still in the decode pipe
	}
	cls := fe.inst.Class
	usesFPQ := cls.IsFP()
	isMem := cls.IsMem()

	if t.robCount() >= m.cfg.ROBPerThr {
		return false
	}
	if usesFPQ {
		if m.fpIQ.count >= m.cfg.FPIQSize {
			return false
		}
	} else if m.intIQ.count >= m.cfg.IntIQSize {
		return false
	}
	if fe.inst.HasDst {
		if usesFPQ {
			if m.fpRegsUsed >= m.cfg.FPRegs {
				return false
			}
		} else if m.intRegsUsed >= m.cfg.IntRegs {
			return false
		}
	}
	if isMem && m.lsqUsed >= m.cfg.LSQSize {
		t.st.Cum.LSQFull++
		return false
	}

	// Allocate.
	idx := t.robTail
	t.robTail++
	e := t.entry(idx)
	*e = robEntry{
		inst:    fe.inst,
		gen:     t.genCtr,
		state:   sWaiting,
		wrong:   fe.wrong,
		mispred: fe.mispred,
		usesFPQ: usesFPQ,
		hasDst:  fe.inst.HasDst,
		isMem:   isMem,
		lsqHeld: isMem,
	}
	t.genCtr++
	ready := int64(0)
	dep1, dep2 := int16(-1), int16(-1)
	if fe.wrong {
		// Synthetic wrong-path readiness: a short dependency chain.
		e.readyAt = m.now + 1 + int64(fe.inst.Dep1&3)
		ready = e.readyAt
	} else {
		t.doneAt[fe.inst.Seq%doneRing] = pending
		if d := fe.inst.Dep1; d != 0 && d <= maxDepWindow {
			if p := fe.inst.Seq - uint64(d); p >= 1 {
				ri := p % doneRing
				if v := t.doneAt[ri]; v == pending {
					dep1 = int16(ri)
				} else if v > ready {
					ready = v
				}
			}
		}
		if d := fe.inst.Dep2; d != 0 && d <= maxDepWindow {
			if p := fe.inst.Seq - uint64(d); p >= 1 {
				ri := p % doneRing
				if v := t.doneAt[ri]; v == pending {
					dep2 = int16(ri)
				} else if v > ready {
					ready = v
				}
			}
		}
	}

	if fe.inst.HasDst {
		if usesFPQ {
			m.fpRegsUsed++
		} else {
			m.intRegsUsed++
		}
	}
	if isMem {
		m.lsqUsed++
		t.st.Live.LSQ++
	}
	w := iqWait{readyAt: ready, dep1Idx: dep1, dep2Idx: dep2, tid: int8(t.id)}
	r := iqRef{robIdx: idx, gen: e.gen}
	if usesFPQ {
		m.fpIQ.push(w, r, dep1 >= 0 || dep2 >= 0)
	} else {
		m.intIQ.push(w, r, dep1 >= 0 || dep2 >= 0)
	}
	t.st.Live.IQ++
	t.st.Live.ROB++

	// Pop from the fetch buffer.
	t.ifqHead++
	m.ifqTotal--
	return true
}

// ---------------------------------------------------------------- issue

// issue selects up to IssueWidth ready instructions, oldest first within
// each queue (integer queue first, matching SimpleSMT's split queues).
// Leftover issue bandwidth executes detector-thread work.
func (m *Machine) issue() {
	active := m.activeTids // filled by processCompletions this cycle
	if len(active) > 0 {
		m.resolveQueue(&m.intIQ, active)
		m.resolveQueue(&m.fpIQ, active)
	}
	budget := m.cfg.IssueWidth
	m.issueQueue(&m.intIQ, &budget)
	m.issueQueue(&m.fpIQ, &budget)

	if budget > 0 && m.dtToIssue > m.dtToFetch {
		k := min(budget, m.dtToIssue-m.dtToFetch)
		m.dtToIssue -= k
		m.dtStats.IssueSlotsUsed += uint64(k)
		if m.dtToIssue == 0 {
			m.dtStats.JobsCompleted++
			m.dtStats.JobCycles += uint64(m.now - m.dtJobStart)
			if m.dtSwitchArmed {
				m.sel.SetPolicy(m.dtSwitchTo)
				m.dtSwitchArmed = false
			}
		}
	}
}

// resolveQueue folds newly-finite producer completion cycles into
// waiting slots. Dependencies are same-thread, so only slots belonging
// to a context that completed an instruction this very cycle can have
// made progress — the pass polls exactly those (via the per-context
// unres masks) and never touches any other waiting slot. It runs every
// cycle regardless of issue budget: the completion signal is this-cycle
// only, so a skipped pass could strand a slot as unresolved forever.
// Resolution is pure caching (doneAt values are immutable once finite),
// so resolving eagerly here is behaviour-identical to the former poll
// inside the issue scan.
func (m *Machine) resolveQueue(q *issueQ, active []int8) {
	doneArena := m.doneArena
	for wi := 0; wi < q.words; wi++ {
		var poll uint64
		for _, tid := range active {
			poll |= q.unresW[int(tid)*q.words+wi]
		}
		for poll != 0 {
			b := bits.TrailingZeros64(poll)
			poll &= poll - 1
			i := wi<<6 | b
			s := &q.wait[i]
			base := int(s.tid) << doneRingShift
			resolved := true
			if s.dep1Idx >= 0 {
				if v := doneArena[base|int(s.dep1Idx)]; v == pending {
					resolved = false // producer still executing
				} else {
					if v > s.readyAt {
						s.readyAt = v
					}
					s.dep1Idx = -1
				}
			}
			if s.dep2Idx >= 0 {
				if v := doneArena[base|int(s.dep2Idx)]; v == pending {
					resolved = false
				} else {
					if v > s.readyAt {
						s.readyAt = v
					}
					s.dep2Idx = -1
				}
			}
			if resolved {
				q.unres[s.tid][wi] &^= 1 << uint(b)
			}
		}
	}
}

// issueQueue walks the queue's resolved slots oldest-entry-first (slot
// order is age order), issuing ready instructions until the budget runs
// out. Slots with an executing producer are masked out wholesale — each
// visited slot costs one load and one compare against its cached
// readiness cycle, and the ROB entry is only ever loaded for slots that
// actually issue.
func (m *Machine) issueQueue(q *issueQ, budget *int) {
	now := m.now
	for wi := 0; wi < q.words && *budget > 0; wi++ {
		word := q.occ[wi]
		if word == 0 {
			continue
		}
		for o := wi; o < len(q.unresW); o += q.words {
			word &^= q.unresW[o]
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			i := wi<<6 | b
			s := &q.wait[i]
			if s.readyAt > now {
				continue
			}
			t := m.threads[s.tid]
			robIdx := q.ref[i].robIdx
			if !m.tryIssue(t, t.entry(robIdx), robIdx) {
				continue
			}
			q.clear(i)
			if *budget--; *budget == 0 {
				return
			}
		}
	}
}

// tryIssue claims a functional unit (and the D-cache for memory ops) and
// schedules completion. It reports whether the instruction issued.
func (m *Machine) tryIssue(t *thread, e *robEntry, robIdx uint64) bool {
	kind := e.inst.Class.FU()
	units := m.fuBusy[kind]
	unit := -1
	for u := range units {
		if units[u] <= m.now {
			unit = u
			break
		}
	}
	if unit < 0 {
		return false
	}
	lat := int64(e.inst.Class.Latency())
	if e.inst.Class.Pipelined() {
		units[unit] = m.now + 1
	} else {
		units[unit] = m.now + lat
	}

	switch e.inst.Class {
	case isa.Load:
		// MSHR admission: a load that would miss cannot issue while
		// all miss-status registers are busy (it retries next cycle).
		if m.cfg.MSHRs > 0 && m.dMissTotal >= m.cfg.MSHRs && !m.l1d.Probe(e.inst.Addr) {
			t.st.Cum.MSHRFull++
			units[unit] = m.now // release the claimed port
			return false
		}
		dlat, miss := m.l1d.Access(t.id, e.inst.Addr, false)
		lat += int64(dlat)
		if miss {
			t.st.Cum.L1DMisses++
			e.dMissOut = true
			t.st.Live.DMissOut++
			m.dMissTotal++
		}
	case isa.Store:
		// The store buffer hides store latency from the pipeline; the
		// cache sees the write (and any miss traffic) now.
		_, miss := m.l1d.Access(t.id, e.inst.Addr, true)
		if miss {
			t.st.Cum.L1DMisses++
		}
		lat = 1
	}

	e.state = sIssued
	e.completeAt = m.now + lat
	if e.completeAt-m.now >= eventRing {
		panic(fmt.Sprintf("pipeline: completion latency %d exceeds event ring", e.completeAt-m.now))
	}
	bi := uint64(e.completeAt) & (eventRing - 1)
	m.events[bi] = append(m.events[bi], event{tid: int8(t.id), robIdx: robIdx, gen: e.gen})
	t.st.Live.IQ--
	t.st.Live.PreIssue--
	// BRCOUNT, LDCOUNT and MEMCOUNT count instructions in the pre-issue
	// stages (decode, rename, the queues), per Tullsen et al.; the
	// outstanding-miss gauges (dMissOut) track post-issue state.
	switch {
	case e.inst.Class.IsCtrl():
		t.st.Live.Branches--
	case e.inst.Class == isa.Load:
		t.st.Live.Loads--
		t.st.Live.Mem--
	case e.inst.Class == isa.Store:
		t.st.Live.Mem--
	}
	return true
}

// --------------------------------------------------------- completions

// processCompletions retires execution of instructions whose latency
// expires this cycle: wakes dependents, resolves branches (training the
// predictor and squashing wrong paths), and marks entries committable.
func (m *Machine) processCompletions() {
	// activeTids collects the contexts that complete an architectural
	// instruction this cycle — the exact set whose waiting issue-queue
	// slots can have resolved (dependencies are same-thread), consumed
	// by issue's resolution pass.
	m.activeTids = m.activeTids[:0]
	bucket := &m.events[uint64(m.now)&(eventRing-1)]
	for _, ev := range *bucket {
		t := m.threads[ev.tid]
		e := t.entry(ev.robIdx)
		if e.gen != ev.gen || e.state != sIssued {
			continue // squashed, or the slot was reused
		}
		e.state = sDone
		in := &e.inst
		if in.Class == isa.Load {
			if e.dMissOut {
				e.dMissOut = false
				t.st.Live.DMissOut--
				m.dMissTotal--
			}
			// Loads release their LSQ entry once the value returns;
			// stores hold theirs until commit.
			if e.lsqHeld {
				e.lsqHeld = false
				m.lsqUsed--
				t.st.Live.LSQ--
			}
		}
		if e.wrong {
			continue
		}
		t.doneAt[in.Seq%doneRing] = m.now
		if m.lastDone[t.id] != m.now {
			m.lastDone[t.id] = m.now
			m.activeTids = append(m.activeTids, int8(t.id))
		}
		switch in.Class {
		case isa.Branch:
			if h := m.predHybrid; h != nil {
				h.Update(t.id, in.PC, in.Taken)
			} else {
				m.pred.Update(t.id, in.PC, in.Taken)
			}
			if in.Taken {
				m.btb.Insert(t.id, in.PC, in.Target)
			}
			if e.mispred {
				t.st.Cum.Mispredicts++
				m.squashWrongPath(t, ev.robIdx)
			}
		case isa.Jump:
			m.btb.Insert(t.id, in.PC, in.Target)
		}
	}
	*bucket = (*bucket)[:0]
}

// squashWrongPath removes everything younger than the resolved branch at
// brIdx from t's fetch buffer, queues and ROB, releasing the shared
// resources wrong-path execution was holding, and redirects fetch.
func (m *Machine) squashWrongPath(t *thread, brIdx uint64) {
	// Everything still in the fetch buffer is younger than the branch.
	for i := t.ifqHead; i < t.ifqTail; i++ {
		fe := &t.ifq[i&t.ifqMask]
		t.st.Live.PreIssue--
		switch {
		case fe.inst.Class.IsCtrl():
			t.st.Live.Branches--
		case fe.inst.Class == isa.Load:
			t.st.Live.Loads--
			t.st.Live.Mem--
		case fe.inst.Class == isa.Store:
			t.st.Live.Mem--
		}
		m.ifqTotal--
	}
	t.ifqHead = t.ifqTail

	for idx := t.robTail; idx > brIdx+1; idx-- {
		e := t.entry(idx - 1)
		if !e.wrong {
			panic("pipeline: squashing an architectural instruction")
		}
		switch e.state {
		case sWaiting:
			t.st.Live.IQ--
			t.st.Live.PreIssue--
			switch {
			case e.inst.Class.IsCtrl():
				t.st.Live.Branches--
			case e.inst.Class == isa.Load:
				t.st.Live.Loads--
				t.st.Live.Mem--
			case e.inst.Class == isa.Store:
				t.st.Live.Mem--
			}
		case sIssued:
			if e.dMissOut {
				e.dMissOut = false
				t.st.Live.DMissOut--
				m.dMissTotal--
			}
		}
		if e.hasDst {
			if e.usesFPQ {
				m.fpRegsUsed--
			} else {
				m.intRegsUsed--
			}
		}
		if e.lsqHeld {
			e.lsqHeld = false
			m.lsqUsed--
			t.st.Live.LSQ--
		}
		t.st.Live.ROB--
		e.state = sSquashed
	}
	t.robTail = brIdx + 1

	// Purge queue entries referencing squashed slots.
	m.intIQ.purgeThread(t.id, brIdx, false)
	m.fpIQ.purgeThread(t.id, brIdx, false)

	t.wrongPath = false
	t.wrongPC = 0
	t.lastIBlock = 0 // redirect: refetch the I-cache block
	if t.fetchBlockedUntil < m.now+1 {
		t.fetchBlockedUntil = m.now + 1 // one-cycle redirect bubble
	}
}

// --------------------------------------------------------------- commit

// commit retires completed instructions in order per thread, up to
// CommitWidth total per cycle, rotating the starting thread for
// fairness. It also implements the conservative syscall drain.
func (m *Machine) commit() {
	budget := m.cfg.CommitWidth
	n := len(m.threads)
	start := m.commitCursor
	m.commitCursor = (m.commitCursor + 1) % n
	// One pass serves both commit and stall accounting: every thread is
	// visited even after the budget runs out, because a thread that
	// commits nothing this cycle while holding ROB entries counts a
	// quantum stall regardless of why it was starved.
	for i := 0; i < n; i++ {
		j := start + i
		if j >= n {
			j -= n
		}
		t := m.threads[j]
		c := 0
		for budget > 0 && t.robCount() > 0 {
			e := t.entry(t.robHead)
			if e.state != sDone {
				break
			}
			if e.wrong {
				panic("pipeline: wrong-path instruction reached ROB head")
			}
			if e.inst.Class == isa.Syscall && !m.commitSyscallReady(t) {
				break
			}
			m.commitEntry(t, e)
			t.robHead++
			budget--
			c++
		}
		if c == 0 && t.robCount() > 0 {
			t.st.QuantumStalls++
		}
	}
}

// commitSyscallReady implements the paper's conservative assumption:
// "when a thread encounters a system call, all threads have to flush out
// of the pipeline before the system call can be started". We model the
// flush as a global drain: fetch stops machine-wide, in-flight work
// completes, and only then does the syscall commit and pay its penalty.
func (m *Machine) commitSyscallReady(t *thread) bool {
	if !m.draining {
		m.draining = true
		m.drainTid = t.id
	}
	if m.drainTid != t.id {
		return false // one syscall drains at a time
	}
	if m.drainBlockers() > 0 {
		return false
	}
	m.draining = false
	t.st.Cum.Syscalls++
	t.fetchBlockedUntil = m.now + int64(m.cfg.SyscallPenalty)
	return true
}

// drainBlockers counts in-flight work other than ROB-head syscalls that
// are themselves waiting to drain.
func (m *Machine) drainBlockers() int {
	blockers := 0
	for _, t := range m.threads {
		blockers += t.ifqCount()
		for idx := t.robHead; idx < t.robTail; idx++ {
			e := t.entry(idx)
			if idx == t.robHead && e.inst.Class == isa.Syscall && e.state == sDone && !e.wrong {
				continue
			}
			blockers++
		}
	}
	return blockers
}

// commitEntry retires one instruction, updating architectural counters
// and freeing its resources.
func (m *Machine) commitEntry(t *thread, e *robEntry) {
	c := &t.st.Cum
	c.Committed++
	switch e.inst.Class {
	case isa.Branch:
		c.Branches++
		c.CondBranches++
	case isa.Jump:
		c.Branches++
	case isa.Load:
		c.Loads++
	case isa.Store:
		c.Stores++
	}
	if e.hasDst {
		if e.usesFPQ {
			m.fpRegsUsed--
		} else {
			m.intRegsUsed--
		}
	}
	if e.lsqHeld {
		e.lsqHeld = false
		m.lsqUsed--
		t.st.Live.LSQ--
	}
	t.st.Live.ROB--
	e.state = sSquashed // slot free
}
