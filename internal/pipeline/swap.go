package pipeline

import (
	"repro/internal/counters"
	"repro/internal/isa"
	"repro/internal/trace"
)

// SwapProgram context-switches hardware context tid to a new program:
// everything the old job had in flight is flushed (squashed, with all
// shared resources released), and fetch stays blocked for penalty
// cycles to model the switch cost. Cumulative counters keep
// accumulating across jobs; the caller (the job-scheduler layer)
// attributes deltas to jobs.
//
// The caches and predictors deliberately retain the old job's state:
// on a real SMT the incoming job inherits a polluted cache, and that
// cold-start cost is part of what job-scheduling studies measure.
func (m *Machine) SwapProgram(tid int, prog *trace.Program, penalty int) {
	t := m.threads[tid]
	m.flushThread(t)
	t.prog = prog
	t.hasPending = false
	t.pending = isa.Inst{}
	t.wrongPath = false
	t.wrongPC = 0
	t.lastIBlock = 0
	t.fetchBlockedUntil = m.now + int64(penalty)
	t.st.Flags = counters.Flags{}
}

// StallAllFetch blocks fetch on every context until now+penalty: the
// cost of the job scheduler itself occupying the processor at a slice
// boundary (§3: the detector thread exists partly to shorten this).
func (m *Machine) StallAllFetch(penalty int) {
	until := m.now + int64(penalty)
	for _, t := range m.threads {
		if t.fetchBlockedUntil < until {
			t.fetchBlockedUntil = until
		}
	}
}

// flushThread squashes every in-flight instruction of t — fetch buffer,
// queues, executing and completed-but-uncommitted — releasing shared
// resources exactly as the invariant checker counts them.
func (m *Machine) flushThread(t *thread) {
	// Fetch buffer.
	for i := t.ifqHead; i < t.ifqTail; i++ {
		fe := &t.ifq[i&t.ifqMask]
		t.st.Live.PreIssue--
		switch {
		case fe.inst.Class.IsCtrl():
			t.st.Live.Branches--
		case fe.inst.Class == isa.Load:
			t.st.Live.Loads--
			t.st.Live.Mem--
		case fe.inst.Class == isa.Store:
			t.st.Live.Mem--
		}
		m.ifqTotal--
	}
	t.ifqHead = t.ifqTail

	// ROB window, youngest first.
	for idx := t.robTail; idx > t.robHead; idx-- {
		e := t.entry(idx - 1)
		switch e.state {
		case sWaiting:
			t.st.Live.IQ--
			t.st.Live.PreIssue--
			switch {
			case e.inst.Class.IsCtrl():
				t.st.Live.Branches--
			case e.inst.Class == isa.Load:
				t.st.Live.Loads--
				t.st.Live.Mem--
			case e.inst.Class == isa.Store:
				t.st.Live.Mem--
			}
		case sIssued:
			if e.dMissOut {
				e.dMissOut = false
				t.st.Live.DMissOut--
				m.dMissTotal--
			}
		}
		if e.hasDst {
			if e.usesFPQ {
				m.fpRegsUsed--
			} else {
				m.intRegsUsed--
			}
		}
		if e.lsqHeld {
			e.lsqHeld = false
			m.lsqUsed--
			t.st.Live.LSQ--
		}
		t.st.Live.ROB--
		e.state = sSquashed
	}
	t.robHead = t.robTail

	// Queue entries referencing the flushed window.
	m.intIQ.purgeThread(t.id, 0, true)
	m.fpIQ.purgeThread(t.id, 0, true)

	// A syscall drain owned by this thread dies with it.
	if m.draining && m.drainTid == t.id {
		m.draining = false
	}
	t.blockedByIMiss = false
	t.st.Live.IMissOut = 0
}
