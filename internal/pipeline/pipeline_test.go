package pipeline

import (
	"testing"

	"repro/internal/counters"
	"repro/internal/policy"
	"repro/internal/trace"
)

func testMachine(t testing.TB, mixName string, threads int, tweak func(*Config)) *Machine {
	t.Helper()
	mix, ok := trace.MixByName(mixName)
	if !ok {
		t.Fatalf("unknown mix %s", mixName)
	}
	progs, err := mix.Programs(threads, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if tweak != nil {
		tweak(&cfg)
	}
	return New(cfg, progs, 1)
}

func TestInvariantsThroughoutRun(t *testing.T) {
	m := testMachine(t, "kitchen-sink", 8, nil)
	for step := 0; step < 40; step++ {
		m.Run(500)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after %d cycles: %v", m.Now(), err)
		}
	}
	if m.TotalCommitted() == 0 {
		t.Fatal("no instructions committed in 20k cycles")
	}
}

func TestInvariantsAllMixes(t *testing.T) {
	for _, mix := range trace.Mixes() {
		m := testMachine(t, mix.Name, 8, nil)
		m.Run(6000)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("mix %s: %v", mix.Name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := testMachine(t, "int-memory", 8, nil)
	b := testMachine(t, "int-memory", 8, nil)
	a.Run(20000)
	b.Run(20000)
	if a.TotalCommitted() != b.TotalCommitted() {
		t.Fatalf("same seed, different commits: %d vs %d", a.TotalCommitted(), b.TotalCommitted())
	}
	for i := 0; i < a.NumThreads(); i++ {
		if a.State(i).Cum != b.State(i).Cum {
			t.Fatalf("thread %d counters diverged", i)
		}
	}
}

// TestCloneEquivalence is the property the oracle depends on: a clone
// must replay a bit-identical future.
func TestCloneEquivalence(t *testing.T) {
	m := testMachine(t, "kitchen-sink", 8, nil)
	m.Run(15000) // into steady state, with in-flight work everywhere
	c := m.Clone()
	m.Run(15000)
	c.Run(15000)
	if m.TotalCommitted() != c.TotalCommitted() {
		t.Fatalf("clone diverged: %d vs %d committed", m.TotalCommitted(), c.TotalCommitted())
	}
	for i := 0; i < m.NumThreads(); i++ {
		if m.State(i).Cum != c.State(i).Cum {
			t.Fatalf("thread %d: clone counters diverged:\n%+v\n%+v",
				i, m.State(i).Cum, c.State(i).Cum)
		}
		if m.State(i).Live != c.State(i).Live {
			t.Fatalf("thread %d: clone gauges diverged", i)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	m := testMachine(t, "int-compute", 4, nil)
	m.Run(5000)
	before := m.TotalCommitted()
	snapshot := m.State(0).Cum
	c := m.Clone()
	c.SetPolicy(policy.RR)
	c.Run(10000)
	if m.TotalCommitted() != before || m.State(0).Cum != snapshot {
		t.Fatal("running the clone mutated the original")
	}
}

func TestIPCBounds(t *testing.T) {
	m := testMachine(t, "fp-compute", 8, nil)
	m.Run(30000)
	ipc := m.AggregateIPC()
	if ipc <= 0.1 || ipc > float64(m.Config().CommitWidth) {
		t.Fatalf("implausible aggregate IPC %.3f", ipc)
	}
}

func TestCommittedNeverExceedsFetched(t *testing.T) {
	m := testMachine(t, "branchy-mixed", 8, nil)
	m.Run(20000)
	for i := 0; i < m.NumThreads(); i++ {
		c := m.State(i).Cum
		if c.Committed > c.Fetched {
			t.Fatalf("thread %d committed %d > fetched %d", i, c.Committed, c.Fetched)
		}
		if c.WrongFetched > c.Fetched {
			t.Fatalf("thread %d wrong-fetched exceeds fetched", i)
		}
	}
}

func TestPoliciesChangeBehaviour(t *testing.T) {
	a := testMachine(t, "kitchen-sink", 8, nil) // ICOUNT
	b := testMachine(t, "kitchen-sink", 8, func(c *Config) { c.InitialPolicy = policy.RR })
	a.Run(30000)
	b.Run(30000)
	if a.TotalCommitted() == b.TotalCommitted() {
		t.Fatal("ICOUNT and RR produced identical commit counts; policies are inert")
	}
}

func TestMispredictsProduceWrongPath(t *testing.T) {
	m := testMachine(t, "int-branchy", 8, nil)
	m.Run(30000)
	var wrong, misp uint64
	for i := 0; i < m.NumThreads(); i++ {
		wrong += m.State(i).Cum.WrongFetched
		misp += m.State(i).Cum.Mispredicts
	}
	if misp == 0 {
		t.Fatal("branchy mix produced no mispredicts")
	}
	if wrong == 0 {
		t.Fatal("mispredicts produced no wrong-path fetch")
	}
}

func TestWrongPathAblation(t *testing.T) {
	m := testMachine(t, "int-branchy", 8, func(c *Config) { c.WrongPath = false })
	m.Run(30000)
	for i := 0; i < m.NumThreads(); i++ {
		if w := m.State(i).Cum.WrongFetched; w != 0 {
			t.Fatalf("wrong-path disabled but thread %d fetched %d wrong-path instructions", i, w)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.TotalCommitted() == 0 {
		t.Fatal("ablated machine made no progress")
	}
}

func TestSyscallDrain(t *testing.T) {
	// High-syscall synthetic profile to exercise the drain path.
	prof := &trace.Profile{
		Name: "sysheavy", Class: "int",
		Phases: []trace.Phase{{
			Name: "main", MeanLen: 10000,
			BranchFrac: 0.1, LoadFrac: 0.2, StoreFrac: 0.1, SyscallRate: 0.002,
			DataFootprint: 64 << 10, SeqFrac: 0.5, StackFrac: 0.2, CodeWords: 2000,
			BiasedW: 0.6, LoopW: 0.3, RandomW: 0.1, MeanDepDist: 5, DepProb: 0.7,
		}},
	}
	progs := []*trace.Program{
		trace.NewProgram(prof, 0, 1),
		trace.NewProgram(prof, 1, 1),
	}
	m := New(DefaultConfig(), progs, 1)
	m.Run(60000)
	var sys uint64
	for i := 0; i < 2; i++ {
		sys += m.State(i).Cum.Syscalls
	}
	if sys == 0 {
		t.Fatal("no syscalls committed despite 0.2% syscall rate")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.TotalCommitted() == 0 {
		t.Fatal("no forward progress with syscalls")
	}
}

func TestFetchDisableFlagStopsThread(t *testing.T) {
	m := testMachine(t, "int-compute", 4, nil)
	m.Run(2000)
	m.SetFlags(2, counters.Flags{FetchDisabled: true})
	before := m.State(2).Cum.Fetched
	m.Run(5000)
	if got := m.State(2).Cum.Fetched; got != before {
		t.Fatalf("fetch-disabled thread fetched %d more instructions", got-before)
	}
	// Others keep running.
	if m.State(0).Cum.Fetched == 0 {
		t.Fatal("other threads stalled")
	}
	// Its pipeline must eventually drain and its gauges must go to zero.
	g := m.State(2).Live
	if g.PreIssue != 0 || g.IQ != 0 || g.ROB != 0 || g.LSQ != 0 || g.Branches != 0 || g.Loads != 0 || g.Mem != 0 {
		t.Fatalf("disabled thread's gauges did not drain: %+v", g)
	}
}

func TestDetectorJobUsesOnlySpareSlots(t *testing.T) {
	m := testMachine(t, "kitchen-sink", 8, nil)
	m.Run(2000)
	m.ScheduleDetectorJob(2000, policy.BRCOUNT, true)
	if !m.DetectorBusy() {
		t.Fatal("job scheduled but detector idle")
	}
	if m.Policy() != policy.ICOUNT {
		t.Fatal("policy switched before the DT job completed")
	}
	limit := 0
	for m.DetectorBusy() && limit < 100000 {
		m.Cycle()
		limit++
	}
	if m.DetectorBusy() {
		t.Fatal("detector job never completed")
	}
	if m.Policy() != policy.BRCOUNT {
		t.Fatal("policy did not switch at job completion")
	}
	st := m.DTStats()
	if st.JobsCompleted != 1 || st.FetchSlotsUsed < 2000 || st.IssueSlotsUsed < 2000 {
		t.Fatalf("DT stats %+v", st)
	}
}

func TestDetectorJobPreemption(t *testing.T) {
	m := testMachine(t, "kitchen-sink", 8, nil)
	m.ScheduleDetectorJob(1_000_000, policy.BRCOUNT, true)
	m.Run(100)
	m.ScheduleDetectorJob(100, policy.L1MISSCOUNT, true)
	if m.DTStats().JobsPreempted != 1 {
		t.Fatalf("preemptions = %d", m.DTStats().JobsPreempted)
	}
	for i := 0; i < 50000 && m.DetectorBusy(); i++ {
		m.Cycle()
	}
	if m.Policy() != policy.L1MISSCOUNT {
		t.Fatalf("policy = %v after preempting job", m.Policy())
	}
}

func TestSetPolicyImmediate(t *testing.T) {
	m := testMachine(t, "int-compute", 4, nil)
	m.SetPolicy(policy.L1DMISSCOUNT)
	if m.Policy() != policy.L1DMISSCOUNT {
		t.Fatal("SetPolicy not immediate")
	}
}

func TestSingleThread(t *testing.T) {
	m := testMachine(t, "int-compute", 1, nil)
	m.Run(20000)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ipc := m.AggregateIPC()
	if ipc < 0.2 || ipc > 8 {
		t.Fatalf("single-thread IPC %.3f implausible", ipc)
	}
}

func TestMoreThreadsMoreThroughput(t *testing.T) {
	// The SMT premise: 4 threads should clearly outperform 1 on the
	// same machine (saturation comes later).
	one := testMachine(t, "mixed-ilp", 1, nil)
	four := testMachine(t, "mixed-ilp", 4, nil)
	one.Run(40000)
	four.Run(40000)
	if four.AggregateIPC() < one.AggregateIPC()*1.3 {
		t.Fatalf("4 threads (%.2f) should beat 1 thread (%.2f) by >30%%",
			four.AggregateIPC(), one.AggregateIPC())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.FetchWidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero fetch width accepted")
	}
	bad = DefaultConfig()
	bad.IntRegs = 0
	if bad.Validate() == nil {
		t.Fatal("zero rename pool accepted")
	}
	bad = DefaultConfig()
	bad.FUs[0] = 0
	if bad.Validate() == nil {
		t.Fatal("zero FU count accepted")
	}
}

func TestCachesSeeTraffic(t *testing.T) {
	m := testMachine(t, "memory-mixed", 8, nil)
	m.Run(20000)
	h := m.Hierarchy()
	if h.L1D.TotalStats().Misses == 0 || h.L1D.TotalStats().Hits == 0 {
		t.Fatal("L1D saw no mixed traffic")
	}
	if h.L2.TotalStats().Hits+h.L2.TotalStats().Misses == 0 {
		t.Fatal("L2 saw no traffic")
	}
	if h.Mem.Accesses == 0 {
		t.Fatal("DRAM never accessed by a memory-bound mix")
	}
}

func TestStallAccounting(t *testing.T) {
	m := testMachine(t, "int-memory", 8, nil)
	m.Run(20000)
	var stalls uint64
	for i := 0; i < m.NumThreads(); i++ {
		stalls += m.State(i).QuantumStalls
	}
	if stalls == 0 {
		t.Fatal("memory-bound mix recorded no commit stalls")
	}
}

func TestDetectorJobWithoutSwitch(t *testing.T) {
	// A monitoring-only DT job (clog scan) must complete without
	// touching the engaged policy.
	m := testMachine(t, "kitchen-sink", 8, nil)
	m.Run(1000)
	m.ScheduleDetectorJob(500, policy.BRCOUNT, false)
	for i := 0; i < 50000 && m.DetectorBusy(); i++ {
		m.Cycle()
	}
	if m.DetectorBusy() {
		t.Fatal("monitor job never completed")
	}
	if m.Policy() != policy.ICOUNT {
		t.Fatalf("monitor-only job switched the policy to %v", m.Policy())
	}
}

func TestAggregateIPCMatchesCounters(t *testing.T) {
	m := testMachine(t, "fp-compute", 8, nil)
	m.Run(10000)
	var sum uint64
	for i := 0; i < m.NumThreads(); i++ {
		sum += m.State(i).Cum.Committed
	}
	if m.TotalCommitted() != sum {
		t.Fatalf("TotalCommitted %d != per-thread sum %d", m.TotalCommitted(), sum)
	}
	want := float64(sum) / float64(m.Now())
	if m.AggregateIPC() != want {
		t.Fatalf("AggregateIPC %v != %v", m.AggregateIPC(), want)
	}
}
