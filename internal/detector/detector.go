// Package detector implements the software architecture of the ADTS
// detector thread (paper §4): per-quantum low-throughput detection,
// identification of clogging threads, and determination of the fetch
// policy for the next scheduling quantum under the five heuristics the
// paper evaluates (Type 1, 2, 3, 3′ and 4).
//
// The detector is a functional model, exactly as in the paper: its
// decisions are computed here, while its execution cost (instructions
// run in leftover pipeline slots, delaying the policy switch) is modelled
// by pipeline.Machine.ScheduleDetectorJob.
package detector

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/policy"
)

// Heuristic selects the policy-determination algorithm.
type Heuristic int

// The five heuristics of §4.3.2. Type3G is the paper's "Type 3′":
// Type 3 plus the throughput-gradient guard; Type 4 adds the
// switching-history buffer on top of Type 3′.
const (
	Type1 Heuristic = iota
	Type2
	Type3
	Type3G
	Type4
	// NumHeuristics counts the paper's hand-built heuristics. The
	// learned selectors below take values at and above it, so
	// Type 1–4 keep their wire values (configs, hashes and checkpoints
	// written before the selectors existed stay bit-for-bit valid) and
	// AllHeuristics keeps meaning "the paper's five".
	NumHeuristics
)

// Learned dynamic policy selection, beyond the paper's four heuristics
// (ROADMAP; "Beyond Static Policies: Exploring Dynamic Policy
// Selection" in PAPERS.md). These heuristics delegate
// Determine_NewPolicy to a Selector registered by internal/adaptive;
// a binary that selects one without linking that package fails config
// validation, not silently.
const (
	// Bandit is the online epsilon-greedy contextual bandit.
	Bandit Heuristic = NumHeuristics + iota
	// BanditUCB is the online UCB1 contextual bandit.
	BanditUCB
	// Learned is the offline-trained table-driven FSM (cmd/adts-train).
	Learned
	// heuristicLimit bounds the valid Heuristic values.
	heuristicLimit
)

var heuristicNames = [heuristicLimit]string{
	Type1: "Type 1", Type2: "Type 2", Type3: "Type 3", Type3G: "Type 3'", Type4: "Type 4",
	Bandit: "bandit", BanditUCB: "ucb", Learned: "learned",
}

func (h Heuristic) String() string {
	if h >= 0 && int(h) < len(heuristicNames) {
		return heuristicNames[h]
	}
	return fmt.Sprintf("heuristic(%d)", int(h))
}

// AllHeuristics returns the five paper heuristics in paper order.
func AllHeuristics() []Heuristic {
	return []Heuristic{Type1, Type2, Type3, Type3G, Type4}
}

// SelectorHeuristics returns the learned selector heuristics in
// canonical order.
func SelectorHeuristics() []Heuristic {
	return []Heuristic{Bandit, BanditUCB, Learned}
}

// ParseHeuristic accepts every Heuristic.String() form in any case and
// spacing ("Type 3'", "type 3'", "type3'"), the compact forms "1".."4",
// "3'", "3g" and "type 3g", and the selector aliases "bandit",
// "ucb"/"bandit-ucb"/"ucb1", "learned". It is the exact inverse of
// String: ParseHeuristic(h.String()) == h for every valid h.
func ParseHeuristic(s string) (Heuristic, error) {
	switch strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), " ", "") {
	case "type1", "1":
		return Type1, nil
	case "type2", "2":
		return Type2, nil
	case "type3", "3":
		return Type3, nil
	case "type3'", "3'", "type3g", "3g":
		return Type3G, nil
	case "type4", "4":
		return Type4, nil
	case "bandit", "epsilon-greedy":
		return Bandit, nil
	case "ucb", "ucb1", "bandit-ucb":
		return BanditUCB, nil
	case "learned", "learned-fsm":
		return Learned, nil
	}
	return 0, fmt.Errorf("detector: unknown heuristic %q", s)
}

// Selector is Determine_NewPolicy behind an interface: given a
// low-throughput quantum, pick the fetch policy for the next one. The
// paper's Type 1–4 switch statement is the built-in implementation;
// internal/adaptive registers learned selectors (contextual bandits,
// an offline-trained table FSM) against the Heuristic values above.
//
// Implementations must be deterministic plain data: equal construction
// plus an equal call sequence yields equal decisions (seed any
// randomness from Config.SelectorSeed via internal/rng).
type Selector interface {
	// Select picks the policy to engage for the next quantum. Returning
	// the incumbent keeps it engaged (no switch is scheduled).
	Select(incumbent policy.Policy, q QuantumStats) policy.Policy
	// Reward reports the outcome of the previous Select: baseIPC is the
	// aggregate IPC at selection time, nextIPC the IPC of the quantum
	// that ran under the chosen policy. Called exactly once per Select,
	// before the next Select.
	Reward(baseIPC, nextIPC float64)
	// Clone returns an independent deep copy.
	Clone() Selector
}

// selectorFactories maps selector heuristics to constructors.
// internal/adaptive populates it from init, so any binary that links
// the package (everything that imports internal/core does) can run
// bandit/ucb/learned configs.
var selectorFactories = map[Heuristic]func(Config) (Selector, error){}

// RegisterSelector installs the factory for a selector heuristic.
// It panics on a non-selector heuristic or a duplicate registration —
// both are wiring bugs, not runtime conditions.
func RegisterSelector(h Heuristic, f func(Config) (Selector, error)) {
	if h < NumHeuristics || h >= heuristicLimit {
		panic(fmt.Sprintf("detector: RegisterSelector(%v): not a selector heuristic", h))
	}
	if selectorFactories[h] != nil {
		panic(fmt.Sprintf("detector: RegisterSelector(%v): already registered", h))
	}
	selectorFactories[h] = f
}

// SelectorRegistered reports whether h has a registered selector
// factory.
func SelectorRegistered(h Heuristic) bool { return selectorFactories[h] != nil }

// Config parameterises the detector. Zero values are invalid; use
// DefaultConfig and override.
type Config struct {
	// Quantum is the scheduling quantum in cycles (§4: 8K cycles).
	Quantum int64
	// IPCThreshold is the committed-IPC threshold below which a quantum
	// is declared low-throughput (the paper's m, swept 1..5).
	IPCThreshold float64
	// Heuristic selects the policy-determination algorithm.
	Heuristic Heuristic
	// InitialPolicy is the default incumbent (the paper uses ICOUNT).
	InitialPolicy policy.Policy

	// COND_MEM thresholds (§4.3.2): true when the L1 miss rate exceeds
	// CondMemL1Rate misses/cycle OR the load/store queue fills more
	// often than CondMemLSQRate times/cycle.
	CondMemL1Rate  float64
	CondMemLSQRate float64
	// COND_BR thresholds: true when branch mispredictions exceed
	// CondBrMispRate/cycle OR conditional branches exceed
	// CondBrRate branches/cycle.
	CondBrMispRate float64
	CondBrRate     float64

	// CloggingFactor marks a thread as clogging when its pre-issue
	// occupancy exceeds this multiple of the fair share.
	CloggingFactor float64
	// FairShare is the per-thread fair share of pre-issue resources
	// (fetch buffer + instruction queues, divided by thread count).
	FairShare float64

	// SelectorSeed seeds stochastic learned selectors (the epsilon-
	// greedy bandit's exploration stream). 0 selects the default
	// stream; runs with equal configs are byte-identical either way.
	// Static heuristics ignore it. omitempty keeps every pre-selector
	// config hash and digest bit-for-bit unchanged.
	SelectorSeed uint64 `json:"SelectorSeed,omitempty"`
}

// DefaultConfig returns the paper's parameters for n threads: an 8K-cycle
// quantum, threshold m = 2, Type 3, and the simulation-derived condition
// thresholds of §4.3.2.
func DefaultConfig(n int) Config {
	return Config{
		Quantum:        8192,
		IPCThreshold:   2,
		Heuristic:      Type3,
		InitialPolicy:  policy.ICOUNT,
		CondMemL1Rate:  0.19,
		CondMemLSQRate: 0.45,
		CondBrMispRate: 0.02,
		CondBrRate:     0.38,
		CloggingFactor: 2.0,
		FairShare:      96.0 / float64(n), // IFQ(32) + INT IQ(32) + FP IQ(32)
	}
}

// Validate rejects nonsensical configurations. NaN is checked
// explicitly for every float field: NaN compares false against any
// bound, so a plain range check would wave it through to the simulator.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"IPCThreshold", c.IPCThreshold},
		{"CondMemL1Rate", c.CondMemL1Rate},
		{"CondMemLSQRate", c.CondMemLSQRate},
		{"CondBrMispRate", c.CondBrMispRate},
		{"CondBrRate", c.CondBrRate},
		{"CloggingFactor", c.CloggingFactor},
		{"FairShare", c.FairShare},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("detector: %s must be finite, got %v", f.name, f.v)
		}
	}
	switch {
	case c.Quantum <= 0:
		return fmt.Errorf("detector: Quantum must be positive")
	case c.IPCThreshold < 0:
		return fmt.Errorf("detector: IPCThreshold must be >= 0")
	case c.Heuristic < 0 || c.Heuristic >= heuristicLimit:
		return fmt.Errorf("detector: unknown heuristic %d", c.Heuristic)
	case c.Heuristic >= NumHeuristics && !SelectorRegistered(c.Heuristic):
		return fmt.Errorf("detector: heuristic %v needs a registered selector (import repro/internal/adaptive)", c.Heuristic)
	case c.CloggingFactor <= 0 || c.FairShare <= 0:
		return fmt.Errorf("detector: clogging parameters must be positive")
	}
	return nil
}

// ThreadQuantum is one thread's view of the last quantum, read from the
// per-thread status indicators.
type ThreadQuantum struct {
	Committed uint64
	PreIssue  int // pre-issue occupancy snapshot at quantum end
}

// QuantumStats is what the detector thread reads from the status
// counters at the end of a scheduling quantum. All rates are per cycle
// over the quantum, aggregated across threads.
type QuantumStats struct {
	Cycles      int64
	Committed   uint64
	IPC         float64
	L1MissRate  float64 // (L1I + L1D misses) / cycle
	LSQFullRate float64 // LSQ-full dispatch blocks / cycle
	MispredRate float64 // resolved mispredictions / cycle
	CondBrRate  float64 // committed conditional branches / cycle
	PerThread   []ThreadQuantum
}

// CondMem evaluates COND_MEM against the configured thresholds.
func (c Config) CondMem(q QuantumStats) bool {
	return q.L1MissRate > c.CondMemL1Rate || q.LSQFullRate > c.CondMemLSQRate
}

// CondBr evaluates COND_BR against the configured thresholds.
func (c Config) CondBr(q QuantumStats) bool {
	return q.MispredRate > c.CondBrMispRate || q.CondBrRate > c.CondBrRate
}

// Decision is the detector's output for one quantum boundary.
type Decision struct {
	LowThroughput bool
	// Switch requests engaging NewPolicy for the next quantum.
	Switch    bool
	NewPolicy policy.Policy
	// Clogging flags threads the job scheduler should suspend first.
	Clogging []bool
	// Work is the detector-thread instruction budget this decision
	// costs (monitoring + clog identification + policy determination).
	Work int
}

// histEntry is one switching-history bucket (paper §4.3.2, Type 4):
// outcomes of past switches keyed by (incumbent, condition value).
type histEntry struct {
	pos, neg uint32
}

// condBits packs the two condition values into a history key.
func condBits(mem, br bool) int {
	k := 0
	if mem {
		k |= 1
	}
	if br {
		k |= 2
	}
	return k
}

// Stats accumulates switch bookkeeping for Figure 7.
type Stats struct {
	Quanta        uint64
	LowQuanta     uint64 // quanta flagged low-throughput
	Switches      uint64 // policy switches decided
	Benign        uint64 // switches followed by a throughput increase
	Malignant     uint64 // switches followed by a decrease (or no change)
	GradientHolds uint64 // Type 3'/4: switches suppressed by positive gradient
	Reversals     uint64 // Type 4: history-directed opposite transitions
	// PolicyQuanta[p] counts the quanta the detector entered with
	// policy.Policy(p) as the incumbent: the selector-behaviour audit
	// trail (which policies a heuristic actually lives in). Nil until
	// the detector has run a quantum, and omitted from JSON then, so
	// fixed-mode and historical reports stay byte-identical.
	PolicyQuanta []uint64 `json:"PolicyQuanta,omitempty"`
}

// MergePolicyQuanta element-wise adds src into dst, growing dst as
// needed; it returns dst. internal/multicore uses it to fold per-core
// detector stats into the system view.
func MergePolicyQuanta(dst, src []uint64) []uint64 {
	if len(src) > len(dst) {
		grown := make([]uint64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// BenignProbability returns Benign / (Benign + Malignant), the paper's
// "quality of a switch"; zero when no switch has been scored yet.
func (s Stats) BenignProbability() float64 {
	t := s.Benign + s.Malignant
	if t == 0 {
		return 0
	}
	return float64(s.Benign) / float64(t)
}

// Detector is the ADTS decision engine. It is deterministic plain data;
// Clone yields an independent copy.
type Detector struct {
	cfg       Config
	incumbent policy.Policy

	// sel, when non-nil, replaces the Type 1–4 switch statement with a
	// registered learned selector (Heuristic >= NumHeuristics).
	sel Selector
	// Pending selector reward: the selector chose at IPC selBase and is
	// owed the following quantum's IPC, whether or not it switched.
	selPending bool
	selBase    float64

	prevIPC  float64
	havePrev bool

	// Pending switch-quality evaluation: a switch decided at IPC
	// baseIPC is scored benign iff the next quantum's IPC exceeds it.
	evalPending bool
	evalBaseIPC float64
	// Pending Type 4 history update for the same event.
	histPending bool
	histPolicy  policy.Policy
	histCond    int

	hist  [policy.NumPolicies][4]histEntry
	stats Stats

	// Work budgets, configurable via SetWorkModel.
	idleWork, clogWork, decideWork int
}

// New returns a detector with cfg and the default detector-thread work
// model (256 idle / 512 clog-scan / 1024 decide instructions).
func New(cfg Config) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Detector{
		cfg:        cfg,
		incumbent:  cfg.InitialPolicy,
		idleWork:   256,
		clogWork:   512,
		decideWork: 1024,
	}
	if cfg.Heuristic >= NumHeuristics {
		sel, err := selectorFactories[cfg.Heuristic](cfg)
		if err != nil {
			// Validate vouched for the registration; a factory that then
			// fails (e.g. a corrupt embedded table) is a build defect.
			panic(fmt.Sprintf("detector: constructing %v selector: %v", cfg.Heuristic, err))
		}
		d.sel = sel
	}
	return d
}

// SetWorkModel overrides the detector-thread instruction budgets.
func (d *Detector) SetWorkModel(idle, clog, decide int) {
	d.idleWork, d.clogWork, d.decideWork = idle, clog, decide
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Incumbent returns the policy the detector believes is engaged.
func (d *Detector) Incumbent() policy.Policy { return d.incumbent }

// Stats returns the accumulated switch statistics. The PolicyQuanta
// slice is copied, so the caller's view never aliases live bookkeeping.
func (d *Detector) Stats() Stats {
	s := d.stats
	if s.PolicyQuanta != nil {
		s.PolicyQuanta = append([]uint64(nil), s.PolicyQuanta...)
	}
	return s
}

// Selector returns the active learned selector (nil for Type 1–4).
func (d *Detector) Selector() Selector { return d.sel }

// Clone returns an independent deep copy.
func (d *Detector) Clone() *Detector {
	cp := *d
	if d.sel != nil {
		cp.sel = d.sel.Clone()
	}
	if d.stats.PolicyQuanta != nil {
		cp.stats.PolicyQuanta = append([]uint64(nil), d.stats.PolicyQuanta...)
	}
	return &cp
}

// OnQuantumEnd runs the detector thread's main loop body (Figure 3) for
// one quantum boundary: score any pending switch, test IPC against the
// threshold, and — on a low-throughput quantum — identify clogging
// threads and determine the next fetch policy.
func (d *Detector) OnQuantumEnd(q QuantumStats) Decision {
	d.stats.Quanta++
	if d.stats.PolicyQuanta == nil {
		d.stats.PolicyQuanta = make([]uint64, policy.NumPolicies)
	}
	if int(d.incumbent) < len(d.stats.PolicyQuanta) {
		d.stats.PolicyQuanta[d.incumbent]++
	}

	// Pay the selector the outcome of its previous pick — switch or
	// hold, it chose, so it learns either way.
	if d.selPending {
		d.selPending = false
		d.sel.Reward(d.selBase, q.IPC)
	}

	// Score the previous quantum's switch: benign iff throughput rose.
	if d.evalPending {
		d.evalPending = false
		benign := q.IPC > d.evalBaseIPC
		if benign {
			d.stats.Benign++
		} else {
			d.stats.Malignant++
		}
		if d.histPending {
			d.histPending = false
			e := &d.hist[d.histPolicy][d.histCond]
			if benign {
				e.pos++
			} else {
				e.neg++
			}
		}
	}

	dec := Decision{Work: d.idleWork}

	low := q.IPC < d.cfg.IPCThreshold
	gradient := d.havePrev && q.IPC > d.prevIPC
	d.havePrev = true
	d.prevIPC = q.IPC

	if !low {
		return dec
	}
	dec.LowThroughput = true
	d.stats.LowQuanta++

	// Identify_CloggingThreads (Figure 3): mark threads hogging the
	// pre-issue resources so the job scheduler can suspend them without
	// analysis of its own.
	dec.Clogging = make([]bool, len(q.PerThread))
	limit := d.cfg.CloggingFactor * d.cfg.FairShare
	for i, tq := range q.PerThread {
		dec.Clogging[i] = float64(tq.PreIssue) > limit
	}
	dec.Work += d.clogWork

	// Learned selectors own the whole determination, gradient included:
	// a selector that benefits from holding during recovery learns to
	// return the incumbent. Every selection is rewarded with the next
	// quantum's IPC; only actual switches enter the benign/malignant
	// bookkeeping, so Stats keeps Figure 7 semantics across heuristics.
	if d.sel != nil {
		next := d.sel.Select(d.incumbent, q)
		dec.Work += d.decideWork
		d.selPending, d.selBase = true, q.IPC
		if next == d.incumbent {
			return dec
		}
		dec.Switch = true
		dec.NewPolicy = next
		d.stats.Switches++
		d.evalPending, d.evalBaseIPC = true, q.IPC
		d.incumbent = next
		return dec
	}

	// Gradient guard (Type 3' and Type 4): while throughput is already
	// recovering, keep the incumbent.
	if (d.cfg.Heuristic == Type3G || d.cfg.Heuristic == Type4) && gradient {
		d.stats.GradientHolds++
		return dec
	}

	next, reversed := d.determine(q)
	dec.Work += d.decideWork
	if next == d.incumbent {
		return dec
	}

	dec.Switch = true
	dec.NewPolicy = next
	d.stats.Switches++
	if reversed {
		d.stats.Reversals++
	}

	d.evalPending = true
	d.evalBaseIPC = q.IPC
	if d.cfg.Heuristic == Type4 {
		d.histPending = true
		d.histPolicy = d.incumbent
		d.histCond = condBits(d.cfg.CondMem(q), d.cfg.CondBr(q))
	}
	d.incumbent = next
	return dec
}

// determine implements Determine_NewPolicy for the configured heuristic.
// reversed reports a Type 4 history-directed opposite transition.
func (d *Detector) determine(q QuantumStats) (next policy.Policy, reversed bool) {
	switch d.cfg.Heuristic {
	case Type1:
		return d.type1(), false
	case Type2:
		return d.type2(), false
	case Type3, Type3G:
		reg, _ := d.type3(q)
		return reg, false
	case Type4:
		return d.type4(q)
	default:
		panic("detector: unknown heuristic")
	}
}

// type1 (Figure 4): unconditional toggle ICOUNT <-> BRCOUNT.
func (d *Detector) type1() policy.Policy {
	if d.incumbent == policy.ICOUNT {
		return policy.BRCOUNT
	}
	return policy.ICOUNT
}

// type2 (Figure 5): cycle ICOUNT -> L1MISSCOUNT -> BRCOUNT -> ICOUNT.
func (d *Detector) type2() policy.Policy {
	switch d.incumbent {
	case policy.ICOUNT:
		return policy.L1MISSCOUNT
	case policy.L1MISSCOUNT:
		return policy.BRCOUNT
	default:
		return policy.ICOUNT
	}
}

// type3 (Figure 6): condition-directed FSM over {ICOUNT, BRCOUNT,
// L1MISSCOUNT}. It returns the regular transition and its opposite (the
// alternative destination Type 4 uses for reversals).
func (d *Detector) type3(q QuantumStats) (regular, opposite policy.Policy) {
	return Type3Transition(d.cfg, d.incumbent, q)
}

// Type3Transition is the Figure 6 FSM as a pure function: the regular
// condition-directed transition from incumbent and its opposite. It is
// exported so learned selectors (internal/adaptive) can fall back to
// the paper's routing for contexts their training never covered.
func Type3Transition(cfg Config, incumbent policy.Policy, q QuantumStats) (regular, opposite policy.Policy) {
	mem := cfg.CondMem(q)
	br := cfg.CondBr(q)
	switch incumbent {
	case policy.BRCOUNT:
		// BRCOUNT failed: the imbalance is not in branches.
		if mem {
			return policy.L1MISSCOUNT, policy.ICOUNT
		}
		return policy.ICOUNT, policy.L1MISSCOUNT
	case policy.L1MISSCOUNT:
		// L1MISSCOUNT failed: the imbalance is not in memory.
		if br {
			return policy.BRCOUNT, policy.ICOUNT
		}
		return policy.ICOUNT, policy.BRCOUNT
	default: // ICOUNT (or any other incumbent): route by symptom.
		// Figure 6 leaves the both-conditions-true order unspecified;
		// we check COND_MEM first — memory imbalance holds shared
		// resources (LSQ, rename registers, queue slots) for tens of
		// cycles, so it is the costlier symptom to leave unaddressed.
		if mem {
			return policy.L1MISSCOUNT, policy.BRCOUNT
		}
		if br {
			return policy.BRCOUNT, policy.L1MISSCOUNT
		}
		return policy.ICOUNT, policy.ICOUNT // no symptom: keep the all-rounder
	}
}

// type4: Type 3 routing, but consult the switching-history buffer first;
// when past outcomes for (incumbent, condition value) are not net
// positive, take the opposite transition (§4.3.2).
func (d *Detector) type4(q QuantumStats) (policy.Policy, bool) {
	regular, opposite := d.type3(q)
	if regular == d.incumbent {
		return regular, false
	}
	e := d.hist[d.incumbent][condBits(d.cfg.CondMem(q), d.cfg.CondBr(q))]
	if e.pos+e.neg > 0 && e.pos <= e.neg {
		return opposite, true
	}
	return regular, false
}
