// Package detector implements the software architecture of the ADTS
// detector thread (paper §4): per-quantum low-throughput detection,
// identification of clogging threads, and determination of the fetch
// policy for the next scheduling quantum under the five heuristics the
// paper evaluates (Type 1, 2, 3, 3′ and 4).
//
// The detector is a functional model, exactly as in the paper: its
// decisions are computed here, while its execution cost (instructions
// run in leftover pipeline slots, delaying the policy switch) is modelled
// by pipeline.Machine.ScheduleDetectorJob.
package detector

import (
	"fmt"
	"math"

	"repro/internal/policy"
)

// Heuristic selects the policy-determination algorithm.
type Heuristic int

// The five heuristics of §4.3.2. Type3G is the paper's "Type 3′":
// Type 3 plus the throughput-gradient guard; Type 4 adds the
// switching-history buffer on top of Type 3′.
const (
	Type1 Heuristic = iota
	Type2
	Type3
	Type3G
	Type4
	NumHeuristics
)

var heuristicNames = [NumHeuristics]string{"Type 1", "Type 2", "Type 3", "Type 3'", "Type 4"}

func (h Heuristic) String() string {
	if int(h) < len(heuristicNames) {
		return heuristicNames[h]
	}
	return fmt.Sprintf("heuristic(%d)", int(h))
}

// AllHeuristics returns the five heuristics in paper order.
func AllHeuristics() []Heuristic {
	return []Heuristic{Type1, Type2, Type3, Type3G, Type4}
}

// ParseHeuristic accepts "Type 1".."Type 4", "Type 3'" and the compact
// forms "1".."4", "3'", "3g".
func ParseHeuristic(s string) (Heuristic, error) {
	switch s {
	case "Type 1", "1", "type1":
		return Type1, nil
	case "Type 2", "2", "type2":
		return Type2, nil
	case "Type 3", "3", "type3":
		return Type3, nil
	case "Type 3'", "3'", "3g", "type3'", "type3g":
		return Type3G, nil
	case "Type 4", "4", "type4":
		return Type4, nil
	}
	return 0, fmt.Errorf("detector: unknown heuristic %q", s)
}

// Config parameterises the detector. Zero values are invalid; use
// DefaultConfig and override.
type Config struct {
	// Quantum is the scheduling quantum in cycles (§4: 8K cycles).
	Quantum int64
	// IPCThreshold is the committed-IPC threshold below which a quantum
	// is declared low-throughput (the paper's m, swept 1..5).
	IPCThreshold float64
	// Heuristic selects the policy-determination algorithm.
	Heuristic Heuristic
	// InitialPolicy is the default incumbent (the paper uses ICOUNT).
	InitialPolicy policy.Policy

	// COND_MEM thresholds (§4.3.2): true when the L1 miss rate exceeds
	// CondMemL1Rate misses/cycle OR the load/store queue fills more
	// often than CondMemLSQRate times/cycle.
	CondMemL1Rate  float64
	CondMemLSQRate float64
	// COND_BR thresholds: true when branch mispredictions exceed
	// CondBrMispRate/cycle OR conditional branches exceed
	// CondBrRate branches/cycle.
	CondBrMispRate float64
	CondBrRate     float64

	// CloggingFactor marks a thread as clogging when its pre-issue
	// occupancy exceeds this multiple of the fair share.
	CloggingFactor float64
	// FairShare is the per-thread fair share of pre-issue resources
	// (fetch buffer + instruction queues, divided by thread count).
	FairShare float64
}

// DefaultConfig returns the paper's parameters for n threads: an 8K-cycle
// quantum, threshold m = 2, Type 3, and the simulation-derived condition
// thresholds of §4.3.2.
func DefaultConfig(n int) Config {
	return Config{
		Quantum:        8192,
		IPCThreshold:   2,
		Heuristic:      Type3,
		InitialPolicy:  policy.ICOUNT,
		CondMemL1Rate:  0.19,
		CondMemLSQRate: 0.45,
		CondBrMispRate: 0.02,
		CondBrRate:     0.38,
		CloggingFactor: 2.0,
		FairShare:      96.0 / float64(n), // IFQ(32) + INT IQ(32) + FP IQ(32)
	}
}

// Validate rejects nonsensical configurations. NaN is checked
// explicitly for every float field: NaN compares false against any
// bound, so a plain range check would wave it through to the simulator.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"IPCThreshold", c.IPCThreshold},
		{"CondMemL1Rate", c.CondMemL1Rate},
		{"CondMemLSQRate", c.CondMemLSQRate},
		{"CondBrMispRate", c.CondBrMispRate},
		{"CondBrRate", c.CondBrRate},
		{"CloggingFactor", c.CloggingFactor},
		{"FairShare", c.FairShare},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("detector: %s must be finite, got %v", f.name, f.v)
		}
	}
	switch {
	case c.Quantum <= 0:
		return fmt.Errorf("detector: Quantum must be positive")
	case c.IPCThreshold < 0:
		return fmt.Errorf("detector: IPCThreshold must be >= 0")
	case c.Heuristic < 0 || c.Heuristic >= NumHeuristics:
		return fmt.Errorf("detector: unknown heuristic %d", c.Heuristic)
	case c.CloggingFactor <= 0 || c.FairShare <= 0:
		return fmt.Errorf("detector: clogging parameters must be positive")
	}
	return nil
}

// ThreadQuantum is one thread's view of the last quantum, read from the
// per-thread status indicators.
type ThreadQuantum struct {
	Committed uint64
	PreIssue  int // pre-issue occupancy snapshot at quantum end
}

// QuantumStats is what the detector thread reads from the status
// counters at the end of a scheduling quantum. All rates are per cycle
// over the quantum, aggregated across threads.
type QuantumStats struct {
	Cycles      int64
	Committed   uint64
	IPC         float64
	L1MissRate  float64 // (L1I + L1D misses) / cycle
	LSQFullRate float64 // LSQ-full dispatch blocks / cycle
	MispredRate float64 // resolved mispredictions / cycle
	CondBrRate  float64 // committed conditional branches / cycle
	PerThread   []ThreadQuantum
}

// CondMem evaluates COND_MEM against the configured thresholds.
func (c Config) CondMem(q QuantumStats) bool {
	return q.L1MissRate > c.CondMemL1Rate || q.LSQFullRate > c.CondMemLSQRate
}

// CondBr evaluates COND_BR against the configured thresholds.
func (c Config) CondBr(q QuantumStats) bool {
	return q.MispredRate > c.CondBrMispRate || q.CondBrRate > c.CondBrRate
}

// Decision is the detector's output for one quantum boundary.
type Decision struct {
	LowThroughput bool
	// Switch requests engaging NewPolicy for the next quantum.
	Switch    bool
	NewPolicy policy.Policy
	// Clogging flags threads the job scheduler should suspend first.
	Clogging []bool
	// Work is the detector-thread instruction budget this decision
	// costs (monitoring + clog identification + policy determination).
	Work int
}

// histEntry is one switching-history bucket (paper §4.3.2, Type 4):
// outcomes of past switches keyed by (incumbent, condition value).
type histEntry struct {
	pos, neg uint32
}

// condBits packs the two condition values into a history key.
func condBits(mem, br bool) int {
	k := 0
	if mem {
		k |= 1
	}
	if br {
		k |= 2
	}
	return k
}

// Stats accumulates switch bookkeeping for Figure 7.
type Stats struct {
	Quanta        uint64
	LowQuanta     uint64 // quanta flagged low-throughput
	Switches      uint64 // policy switches decided
	Benign        uint64 // switches followed by a throughput increase
	Malignant     uint64 // switches followed by a decrease (or no change)
	GradientHolds uint64 // Type 3'/4: switches suppressed by positive gradient
	Reversals     uint64 // Type 4: history-directed opposite transitions
}

// BenignProbability returns Benign / (Benign + Malignant), the paper's
// "quality of a switch"; zero when no switch has been scored yet.
func (s Stats) BenignProbability() float64 {
	t := s.Benign + s.Malignant
	if t == 0 {
		return 0
	}
	return float64(s.Benign) / float64(t)
}

// Detector is the ADTS decision engine. It is deterministic plain data;
// Clone yields an independent copy.
type Detector struct {
	cfg       Config
	incumbent policy.Policy

	prevIPC  float64
	havePrev bool

	// Pending switch-quality evaluation: a switch decided at IPC
	// baseIPC is scored benign iff the next quantum's IPC exceeds it.
	evalPending bool
	evalBaseIPC float64
	// Pending Type 4 history update for the same event.
	histPending bool
	histPolicy  policy.Policy
	histCond    int

	hist  [policy.NumPolicies][4]histEntry
	stats Stats

	// Work budgets, configurable via SetWorkModel.
	idleWork, clogWork, decideWork int
}

// New returns a detector with cfg and the default detector-thread work
// model (256 idle / 512 clog-scan / 1024 decide instructions).
func New(cfg Config) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Detector{
		cfg:        cfg,
		incumbent:  cfg.InitialPolicy,
		idleWork:   256,
		clogWork:   512,
		decideWork: 1024,
	}
}

// SetWorkModel overrides the detector-thread instruction budgets.
func (d *Detector) SetWorkModel(idle, clog, decide int) {
	d.idleWork, d.clogWork, d.decideWork = idle, clog, decide
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Incumbent returns the policy the detector believes is engaged.
func (d *Detector) Incumbent() policy.Policy { return d.incumbent }

// Stats returns the accumulated switch statistics.
func (d *Detector) Stats() Stats { return d.stats }

// Clone returns an independent deep copy.
func (d *Detector) Clone() *Detector {
	cp := *d
	return &cp
}

// OnQuantumEnd runs the detector thread's main loop body (Figure 3) for
// one quantum boundary: score any pending switch, test IPC against the
// threshold, and — on a low-throughput quantum — identify clogging
// threads and determine the next fetch policy.
func (d *Detector) OnQuantumEnd(q QuantumStats) Decision {
	d.stats.Quanta++

	// Score the previous quantum's switch: benign iff throughput rose.
	if d.evalPending {
		d.evalPending = false
		benign := q.IPC > d.evalBaseIPC
		if benign {
			d.stats.Benign++
		} else {
			d.stats.Malignant++
		}
		if d.histPending {
			d.histPending = false
			e := &d.hist[d.histPolicy][d.histCond]
			if benign {
				e.pos++
			} else {
				e.neg++
			}
		}
	}

	dec := Decision{Work: d.idleWork}

	low := q.IPC < d.cfg.IPCThreshold
	gradient := d.havePrev && q.IPC > d.prevIPC
	d.havePrev = true
	d.prevIPC = q.IPC

	if !low {
		return dec
	}
	dec.LowThroughput = true
	d.stats.LowQuanta++

	// Identify_CloggingThreads (Figure 3): mark threads hogging the
	// pre-issue resources so the job scheduler can suspend them without
	// analysis of its own.
	dec.Clogging = make([]bool, len(q.PerThread))
	limit := d.cfg.CloggingFactor * d.cfg.FairShare
	for i, tq := range q.PerThread {
		dec.Clogging[i] = float64(tq.PreIssue) > limit
	}
	dec.Work += d.clogWork

	// Gradient guard (Type 3' and Type 4): while throughput is already
	// recovering, keep the incumbent.
	if (d.cfg.Heuristic == Type3G || d.cfg.Heuristic == Type4) && gradient {
		d.stats.GradientHolds++
		return dec
	}

	next, reversed := d.determine(q)
	dec.Work += d.decideWork
	if next == d.incumbent {
		return dec
	}

	dec.Switch = true
	dec.NewPolicy = next
	d.stats.Switches++
	if reversed {
		d.stats.Reversals++
	}

	d.evalPending = true
	d.evalBaseIPC = q.IPC
	if d.cfg.Heuristic == Type4 {
		d.histPending = true
		d.histPolicy = d.incumbent
		d.histCond = condBits(d.cfg.CondMem(q), d.cfg.CondBr(q))
	}
	d.incumbent = next
	return dec
}

// determine implements Determine_NewPolicy for the configured heuristic.
// reversed reports a Type 4 history-directed opposite transition.
func (d *Detector) determine(q QuantumStats) (next policy.Policy, reversed bool) {
	switch d.cfg.Heuristic {
	case Type1:
		return d.type1(), false
	case Type2:
		return d.type2(), false
	case Type3, Type3G:
		reg, _ := d.type3(q)
		return reg, false
	case Type4:
		return d.type4(q)
	default:
		panic("detector: unknown heuristic")
	}
}

// type1 (Figure 4): unconditional toggle ICOUNT <-> BRCOUNT.
func (d *Detector) type1() policy.Policy {
	if d.incumbent == policy.ICOUNT {
		return policy.BRCOUNT
	}
	return policy.ICOUNT
}

// type2 (Figure 5): cycle ICOUNT -> L1MISSCOUNT -> BRCOUNT -> ICOUNT.
func (d *Detector) type2() policy.Policy {
	switch d.incumbent {
	case policy.ICOUNT:
		return policy.L1MISSCOUNT
	case policy.L1MISSCOUNT:
		return policy.BRCOUNT
	default:
		return policy.ICOUNT
	}
}

// type3 (Figure 6): condition-directed FSM over {ICOUNT, BRCOUNT,
// L1MISSCOUNT}. It returns the regular transition and its opposite (the
// alternative destination Type 4 uses for reversals).
func (d *Detector) type3(q QuantumStats) (regular, opposite policy.Policy) {
	mem := d.cfg.CondMem(q)
	br := d.cfg.CondBr(q)
	switch d.incumbent {
	case policy.BRCOUNT:
		// BRCOUNT failed: the imbalance is not in branches.
		if mem {
			return policy.L1MISSCOUNT, policy.ICOUNT
		}
		return policy.ICOUNT, policy.L1MISSCOUNT
	case policy.L1MISSCOUNT:
		// L1MISSCOUNT failed: the imbalance is not in memory.
		if br {
			return policy.BRCOUNT, policy.ICOUNT
		}
		return policy.ICOUNT, policy.BRCOUNT
	default: // ICOUNT (or any other incumbent): route by symptom.
		// Figure 6 leaves the both-conditions-true order unspecified;
		// we check COND_MEM first — memory imbalance holds shared
		// resources (LSQ, rename registers, queue slots) for tens of
		// cycles, so it is the costlier symptom to leave unaddressed.
		if mem {
			return policy.L1MISSCOUNT, policy.BRCOUNT
		}
		if br {
			return policy.BRCOUNT, policy.L1MISSCOUNT
		}
		return policy.ICOUNT, policy.ICOUNT // no symptom: keep the all-rounder
	}
}

// type4: Type 3 routing, but consult the switching-history buffer first;
// when past outcomes for (incumbent, condition value) are not net
// positive, take the opposite transition (§4.3.2).
func (d *Detector) type4(q QuantumStats) (policy.Policy, bool) {
	regular, opposite := d.type3(q)
	if regular == d.incumbent {
		return regular, false
	}
	e := d.hist[d.incumbent][condBits(d.cfg.CondMem(q), d.cfg.CondBr(q))]
	if e.pos+e.neg > 0 && e.pos <= e.neg {
		return opposite, true
	}
	return regular, false
}
