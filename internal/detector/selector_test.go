package detector

import (
	"strings"
	"testing"

	"repro/internal/policy"
)

// fakeSelector always proposes a fixed policy and records the rewards
// it is paid. It registers under Bandit for this test binary only —
// internal detector tests cannot link internal/adaptive (import
// cycle), which also makes the unregistered-heuristic paths testable.
type fakeSelector struct {
	next    policy.Policy
	rewards []float64
	clones  int
}

func (f *fakeSelector) Select(incumbent policy.Policy, q QuantumStats) policy.Policy {
	return f.next
}
func (f *fakeSelector) Reward(baseIPC, nextIPC float64) {
	f.rewards = append(f.rewards, nextIPC-baseIPC)
}
func (f *fakeSelector) Clone() Selector {
	f.clones++
	cp := &fakeSelector{next: f.next}
	cp.rewards = append(cp.rewards, f.rewards...)
	return cp
}

var lastFake *fakeSelector

func init() {
	RegisterSelector(Bandit, func(cfg Config) (Selector, error) {
		lastFake = &fakeSelector{next: policy.BRCOUNT}
		return lastFake, nil
	})
}

// Satellite: String ↔ ParseHeuristic round-trips for every value,
// including spaced lowercase forms.
func TestParseHeuristicRoundTrip(t *testing.T) {
	all := append(AllHeuristics(), SelectorHeuristics()...)
	for _, h := range all {
		got, err := ParseHeuristic(h.String())
		if err != nil || got != h {
			t.Errorf("ParseHeuristic(%q) = %v, %v; want %v", h.String(), got, err, h)
		}
	}
	for in, want := range map[string]Heuristic{
		"type 3'":        Type3G,
		"type 3g":        Type3G,
		"TYPE 3G":        Type3G,
		" type 4 ":       Type4,
		"type2":          Type2,
		"3'":             Type3G,
		"bandit":         Bandit,
		"Bandit":         Bandit,
		"epsilon-greedy": Bandit,
		"ucb":            BanditUCB,
		"UCB1":           BanditUCB,
		"bandit-ucb":     BanditUCB,
		"learned":        Learned,
		"learned-fsm":    Learned,
	} {
		got, err := ParseHeuristic(in)
		if err != nil || got != want {
			t.Errorf("ParseHeuristic(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "type 9", "bandit2", "5"} {
		if h, err := ParseHeuristic(bad); err == nil {
			t.Errorf("ParseHeuristic(%q) accepted as %v", bad, h)
		}
	}
}

// Any string that parses must round-trip through String and parse to
// the same value again.
func FuzzParseHeuristic(f *testing.F) {
	for _, h := range append(AllHeuristics(), SelectorHeuristics()...) {
		f.Add(h.String())
		f.Add(strings.ToLower(h.String()))
	}
	f.Add("3g")
	f.Add("bandit-ucb")
	f.Fuzz(func(t *testing.T, s string) {
		h, err := ParseHeuristic(s)
		if err != nil {
			return
		}
		again, err := ParseHeuristic(h.String())
		if err != nil || again != h {
			t.Fatalf("ParseHeuristic(%q) = %v but %q does not round-trip: %v, %v",
				s, h, h.String(), again, err)
		}
	})
}

func TestValidateSelectorRegistration(t *testing.T) {
	c := DefaultConfig(8)
	c.Heuristic = Bandit // fake registered above
	if err := c.Validate(); err != nil {
		t.Fatalf("registered selector rejected: %v", err)
	}
	// Learned is never registered in this test binary (internal tests
	// cannot link internal/adaptive), so Validate must name the fix.
	c.Heuristic = Learned
	err := c.Validate()
	if err == nil {
		t.Fatal("unregistered selector heuristic accepted")
	}
	if !strings.Contains(err.Error(), "internal/adaptive") {
		t.Fatalf("error should point at the missing import, got: %v", err)
	}
}

func TestSelectorDrivesSwitches(t *testing.T) {
	d := New(cfg(Bandit))
	sel := lastFake

	// High throughput: no selector consultation.
	if dec := d.OnQuantumEnd(q(5.0, false, false)); dec.Switch {
		t.Fatalf("high-IPC quantum switched: %+v", dec)
	}
	// Low throughput: the selector's proposal becomes the new policy.
	dec := d.OnQuantumEnd(q(0.5, true, false))
	if !dec.Switch || dec.NewPolicy != policy.BRCOUNT {
		t.Fatalf("selector proposal not engaged: %+v", dec)
	}
	if d.Incumbent() != policy.BRCOUNT {
		t.Fatalf("incumbent = %v, want BRCOUNT", d.Incumbent())
	}
	// The next quantum pays the reward for that selection.
	d.OnQuantumEnd(q(1.0, false, false))
	if len(sel.rewards) != 1 || sel.rewards[0] <= 0 {
		t.Fatalf("reward not paid for improving selection: %v", sel.rewards)
	}
	st := d.Stats()
	if st.Switches != 1 {
		t.Fatalf("Switches = %d, want 1", st.Switches)
	}
	// Proposing the incumbent holds without a switch, but still learns:
	// the previous quantum (IPC 1.0, below m=2) was itself low, so it
	// already queued a selection whose reward lands now, and this low
	// quantum queues another.
	d.OnQuantumEnd(q(0.5, true, false))
	d.OnQuantumEnd(q(0.4, false, false))
	if len(sel.rewards) != 3 || sel.rewards[1] >= 0 || sel.rewards[2] >= 0 {
		t.Fatalf("hold selections not rewarded: %v", sel.rewards)
	}
	if d.Stats().Switches != 1 {
		t.Fatalf("hold counted as a switch")
	}
}

func TestPolicyQuantaAudit(t *testing.T) {
	d := New(cfg(Type3))
	d.OnQuantumEnd(q(5.0, false, false)) // ICOUNT incumbent
	d.OnQuantumEnd(q(0.5, true, false))  // switches to L1MISSCOUNT
	d.OnQuantumEnd(q(5.0, false, false)) // L1MISSCOUNT incumbent
	pq := d.Stats().PolicyQuanta
	if len(pq) != int(policy.NumPolicies) {
		t.Fatalf("PolicyQuanta length %d, want %d", len(pq), policy.NumPolicies)
	}
	if pq[policy.ICOUNT] != 2 || pq[policy.L1MISSCOUNT] != 1 {
		t.Fatalf("PolicyQuanta = %v, want ICOUNT:2 L1MISSCOUNT:1", pq)
	}
	// Stats must return an independent copy.
	pq[policy.ICOUNT] = 99
	if d.Stats().PolicyQuanta[policy.ICOUNT] != 2 {
		t.Fatal("Stats aliases internal PolicyQuanta slice")
	}
}

func TestMergePolicyQuanta(t *testing.T) {
	dst := MergePolicyQuanta(nil, []uint64{1, 2})
	dst = MergePolicyQuanta(dst, []uint64{0, 3, 7})
	want := []uint64{1, 5, 7}
	for i, v := range want {
		if dst[i] != v {
			t.Fatalf("merged[%d] = %d, want %d (full: %v)", i, dst[i], v, dst)
		}
	}
}

func TestSelectorCloneIndependence(t *testing.T) {
	d := New(cfg(Bandit))
	sel := lastFake
	d.OnQuantumEnd(q(0.5, true, false))
	c := d.Clone()
	if sel.clones != 1 {
		t.Fatalf("detector clone cloned selector %d times, want 1", sel.clones)
	}
	c.OnQuantumEnd(q(0.5, true, false))
	c.OnQuantumEnd(q(9.0, false, false))
	// The original's selector must not have seen the clone's rewards.
	if len(sel.rewards) != 0 {
		t.Fatalf("clone rewards leaked into original: %v", sel.rewards)
	}
	if c.Stats().Quanta == d.Stats().Quanta {
		t.Fatal("clone stats still shared")
	}
}
