package detector

import (
	"testing"
	"testing/quick"

	"repro/internal/policy"
)

func cfg(h Heuristic) Config {
	c := DefaultConfig(8)
	c.Heuristic = h
	return c
}

// q builds a QuantumStats with the given IPC and condition drivers.
func q(ipc float64, condMem, condBr bool) QuantumStats {
	s := QuantumStats{
		Cycles:    8192,
		IPC:       ipc,
		Committed: uint64(ipc * 8192),
		PerThread: make([]ThreadQuantum, 8),
	}
	if condMem {
		s.L1MissRate = 0.5 // > 0.19
	}
	if condBr {
		s.MispredRate = 0.05 // > 0.02
	}
	return s
}

func TestHighThroughputNoAction(t *testing.T) {
	d := New(cfg(Type3))
	dec := d.OnQuantumEnd(q(5.0, true, true))
	if dec.LowThroughput || dec.Switch {
		t.Fatalf("high-IPC quantum triggered action: %+v", dec)
	}
	if d.Incumbent() != policy.ICOUNT {
		t.Fatal("incumbent changed without a switch")
	}
}

func TestType1Toggles(t *testing.T) {
	d := New(cfg(Type1))
	seq := []policy.Policy{policy.BRCOUNT, policy.ICOUNT, policy.BRCOUNT, policy.ICOUNT}
	for i, want := range seq {
		dec := d.OnQuantumEnd(q(0.5, false, false))
		if !dec.Switch || dec.NewPolicy != want {
			t.Fatalf("step %d: got switch=%t to %v, want %v", i, dec.Switch, dec.NewPolicy, want)
		}
	}
}

func TestType2Cycles(t *testing.T) {
	d := New(cfg(Type2))
	seq := []policy.Policy{policy.L1MISSCOUNT, policy.BRCOUNT, policy.ICOUNT, policy.L1MISSCOUNT}
	for i, want := range seq {
		dec := d.OnQuantumEnd(q(0.5, false, false))
		if !dec.Switch || dec.NewPolicy != want {
			t.Fatalf("step %d: got %v, want %v", i, dec.NewPolicy, want)
		}
	}
}

func TestType3Routing(t *testing.T) {
	cases := []struct {
		from            policy.Policy
		condMem, condBr bool
		want            policy.Policy
	}{
		// From ICOUNT: memory symptom first, then branch symptom.
		{policy.ICOUNT, true, false, policy.L1MISSCOUNT},
		{policy.ICOUNT, true, true, policy.L1MISSCOUNT},
		{policy.ICOUNT, false, true, policy.BRCOUNT},
		{policy.ICOUNT, false, false, policy.ICOUNT}, // no symptom: stay
		// From BRCOUNT: COND_MEM routes.
		{policy.BRCOUNT, true, false, policy.L1MISSCOUNT},
		{policy.BRCOUNT, false, false, policy.ICOUNT},
		{policy.BRCOUNT, false, true, policy.ICOUNT},
		// From L1MISSCOUNT: COND_BR routes.
		{policy.L1MISSCOUNT, false, true, policy.BRCOUNT},
		{policy.L1MISSCOUNT, false, false, policy.ICOUNT},
		{policy.L1MISSCOUNT, true, false, policy.ICOUNT},
	}
	for _, c := range cases {
		conf := cfg(Type3)
		conf.InitialPolicy = c.from
		d := New(conf)
		dec := d.OnQuantumEnd(q(0.5, c.condMem, c.condBr))
		got := d.Incumbent()
		if dec.Switch {
			got = dec.NewPolicy
		}
		if got != c.want {
			t.Errorf("Type3 from %v (mem=%t br=%t): got %v, want %v",
				c.from, c.condMem, c.condBr, got, c.want)
		}
		if c.want == c.from && dec.Switch {
			t.Errorf("Type3 from %v: switched to the incumbent", c.from)
		}
	}
}

func TestType3GradientGuard(t *testing.T) {
	d := New(cfg(Type3G))
	// First low quantum: no previous IPC, switch happens.
	dec := d.OnQuantumEnd(q(0.5, true, false))
	if !dec.Switch {
		t.Fatal("first low quantum should switch")
	}
	// Next quantum: still low but IPC rose 0.5 -> 0.8: gradient holds.
	dec = d.OnQuantumEnd(q(0.8, true, false))
	if dec.Switch {
		t.Fatal("positive gradient should suppress the switch")
	}
	if d.Stats().GradientHolds != 1 {
		t.Fatalf("GradientHolds = %d", d.Stats().GradientHolds)
	}
	// IPC falls again: switch allowed.
	dec = d.OnQuantumEnd(q(0.4, true, false))
	if !dec.Switch {
		t.Fatal("negative gradient should allow the switch")
	}
	// Plain Type 3 ignores the gradient.
	d3 := New(cfg(Type3))
	d3.OnQuantumEnd(q(0.5, true, false))
	if dec := d3.OnQuantumEnd(q(0.8, false, true)); !dec.Switch {
		t.Fatal("Type 3 should ignore the gradient")
	}
}

func TestBenignScoring(t *testing.T) {
	d := New(cfg(Type3))
	d.OnQuantumEnd(q(0.5, true, false)) // switch at base IPC 0.5
	d.OnQuantumEnd(q(1.0, true, false)) // next quantum higher: benign (and switches again)
	d.OnQuantumEnd(q(0.3, true, false)) // lower: malignant
	st := d.Stats()
	if st.Benign != 1 || st.Malignant != 1 {
		t.Fatalf("benign/malignant = %d/%d, want 1/1", st.Benign, st.Malignant)
	}
	if p := st.BenignProbability(); p != 0.5 {
		t.Fatalf("benign probability %.2f", p)
	}
}

func TestType4ReversesOnBadHistory(t *testing.T) {
	d := New(cfg(Type4))
	// Establish a negative history for (ICOUNT, condMem): switch to
	// L1MISSCOUNT, then observe a throughput DROP.
	dec := d.OnQuantumEnd(q(0.5, true, false))
	if dec.NewPolicy != policy.L1MISSCOUNT {
		t.Fatalf("first transition %v", dec.NewPolicy)
	}
	// Drop => malignant, history (ICOUNT, mem) gets neg=1.
	// Incumbent is L1MISSCOUNT now; no conditions => back to ICOUNT.
	dec = d.OnQuantumEnd(q(0.3, false, false))
	if dec.NewPolicy != policy.ICOUNT {
		t.Fatalf("second transition %v", dec.NewPolicy)
	}
	// Third quantum: same (ICOUNT, condMem) situation, history is net
	// negative => reversal to the opposite destination (BRCOUNT).
	dec = d.OnQuantumEnd(q(0.2, true, false))
	if !dec.Switch || dec.NewPolicy != policy.BRCOUNT {
		t.Fatalf("expected history reversal to BRCOUNT, got %v (switch=%t)", dec.NewPolicy, dec.Switch)
	}
	if d.Stats().Reversals != 1 {
		t.Fatalf("Reversals = %d", d.Stats().Reversals)
	}
}

func TestType4FollowsGoodHistory(t *testing.T) {
	d := New(cfg(Type4))
	d.OnQuantumEnd(q(0.5, true, false))  // ICOUNT -> L1MISSCOUNT @ base 0.5
	d.OnQuantumEnd(q(1.0, false, false)) // rise: benign, (ICOUNT,mem).pos=1; gradient holds
	d.OnQuantumEnd(q(0.4, false, false)) // falls: L1MISSCOUNT -> ICOUNT (no symptoms)
	d.OnQuantumEnd(q(0.5, false, false)) // rise: gradient holds, stays ICOUNT
	// Same (ICOUNT, COND_MEM) situation as step 1; its history is net
	// positive, so the regular transition must be taken again.
	dec := d.OnQuantumEnd(q(0.2, true, false))
	if !dec.Switch || dec.NewPolicy != policy.L1MISSCOUNT {
		t.Fatalf("positive history should keep the regular transition, got %v (switch=%t)",
			dec.NewPolicy, dec.Switch)
	}
	if d.Stats().Reversals != 0 {
		t.Fatal("unexpected reversal")
	}
}

func TestCloggingIdentification(t *testing.T) {
	d := New(cfg(Type3))
	qs := q(0.5, false, false)
	// Fair share is 96/8 = 12; factor 2 => threshold 24.
	qs.PerThread[2].PreIssue = 30
	qs.PerThread[5].PreIssue = 10
	dec := d.OnQuantumEnd(qs)
	if !dec.LowThroughput {
		t.Fatal("low quantum not flagged")
	}
	if !dec.Clogging[2] {
		t.Fatal("hogging thread not flagged as clogging")
	}
	if dec.Clogging[5] {
		t.Fatal("modest thread flagged as clogging")
	}
}

func TestWorkBudgets(t *testing.T) {
	d := New(cfg(Type3))
	d.SetWorkModel(100, 200, 300)
	dec := d.OnQuantumEnd(q(5, false, false))
	if dec.Work != 100 {
		t.Fatalf("idle work %d, want 100", dec.Work)
	}
	dec = d.OnQuantumEnd(q(0.5, true, false))
	if dec.Work != 600 {
		t.Fatalf("decision work %d, want 100+200+300", dec.Work)
	}
}

// TestIncumbentStaysInFSM: whatever the observation sequence, Type 3's
// incumbent stays within the three-policy FSM of Figure 6.
func TestIncumbentStaysInFSM(t *testing.T) {
	d := New(cfg(Type3))
	f := func(ipcRaw uint8, mem, br bool) bool {
		ipc := float64(ipcRaw%60) / 10
		dec := d.OnQuantumEnd(q(ipc, mem, br))
		inc := d.Incumbent()
		if dec.Switch {
			inc = dec.NewPolicy
		}
		return inc == policy.ICOUNT || inc == policy.BRCOUNT || inc == policy.L1MISSCOUNT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestNeverSwitchToIncumbent: a Switch decision always names a policy
// different from the incumbent at decision time.
func TestNeverSwitchToIncumbent(t *testing.T) {
	for _, h := range AllHeuristics() {
		d := New(cfg(h))
		f := func(ipcRaw uint8, mem, br bool) bool {
			before := d.Incumbent()
			dec := d.OnQuantumEnd(q(float64(ipcRaw%40)/10, mem, br))
			return !dec.Switch || dec.NewPolicy != before
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d := New(cfg(Type4))
	d.OnQuantumEnd(q(0.5, true, false))
	c := d.Clone()
	c.OnQuantumEnd(q(0.1, false, true))
	if d.Incumbent() == c.Incumbent() {
		t.Fatal("clone advance should have diverged incumbents")
	}
	if d.Stats().Quanta == c.Stats().Quanta {
		t.Fatal("clone stats still shared")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(8)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Quantum = 0
	if bad.Validate() == nil {
		t.Fatal("zero quantum accepted")
	}
	bad = good
	bad.Heuristic = Heuristic(99)
	if bad.Validate() == nil {
		t.Fatal("unknown heuristic accepted")
	}
	bad = good
	bad.CloggingFactor = 0
	if bad.Validate() == nil {
		t.Fatal("zero clogging factor accepted")
	}
}

func TestParseHeuristic(t *testing.T) {
	for _, h := range AllHeuristics() {
		got, err := ParseHeuristic(h.String())
		if err != nil || got != h {
			t.Fatalf("ParseHeuristic(%q) = %v, %v", h.String(), got, err)
		}
	}
	if _, err := ParseHeuristic("Type 9"); err == nil {
		t.Fatal("accepted unknown heuristic")
	}
}

func TestConditionThresholds(t *testing.T) {
	c := DefaultConfig(8)
	// Each sub-condition independently triggers its condition.
	if !c.CondMem(QuantumStats{L1MissRate: 0.20}) {
		t.Fatal("L1 rate sub-condition failed")
	}
	if !c.CondMem(QuantumStats{LSQFullRate: 0.46}) {
		t.Fatal("LSQ sub-condition failed")
	}
	if c.CondMem(QuantumStats{L1MissRate: 0.18, LSQFullRate: 0.44}) {
		t.Fatal("COND_MEM fired below both thresholds")
	}
	if !c.CondBr(QuantumStats{MispredRate: 0.03}) {
		t.Fatal("mispredict sub-condition failed")
	}
	if !c.CondBr(QuantumStats{CondBrRate: 0.39}) {
		t.Fatal("branch-rate sub-condition failed")
	}
	if c.CondBr(QuantumStats{MispredRate: 0.01, CondBrRate: 0.30}) {
		t.Fatal("COND_BR fired below both thresholds")
	}
}
