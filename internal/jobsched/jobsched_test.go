package jobsched

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

func pool(t testing.TB, n int, seed uint64) []*Job {
	t.Helper()
	profs := trace.Profiles()
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		p := profs[i%len(profs)]
		jobs[i] = &Job{Name: p.Name, Prog: trace.NewProgram(p, i%8, seed+uint64(i))}
	}
	return jobs
}

func machine(t testing.TB) *pipeline.Machine {
	t.Helper()
	mix, _ := trace.MixByName("kitchen-sink")
	progs, err := mix.Programs(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.New(pipeline.DefaultConfig(), progs, 1)
}

func TestSwapProgramFlushes(t *testing.T) {
	m := machine(t)
	m.Run(5000) // plenty in flight
	prof, _ := trace.ProfileByName("gzip")
	m.SwapProgram(3, trace.NewProgram(prof, 3, 42), 100)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after swap: %v", err)
	}
	g := m.State(3).Live
	if g.ROB != 0 || g.PreIssue != 0 || g.IQ != 0 || g.LSQ != 0 {
		t.Fatalf("swapped thread still holds resources: %+v", g)
	}
	before := m.State(3).Cum.Committed
	m.Run(5000)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after post-swap run: %v", err)
	}
	if m.State(3).Cum.Committed == before {
		t.Fatal("swapped-in job never committed")
	}
}

func TestSwapPenaltyBlocksFetch(t *testing.T) {
	m := machine(t)
	m.Run(1000)
	prof, _ := trace.ProfileByName("gzip")
	fetched := m.State(0).Cum.Fetched
	m.SwapProgram(0, trace.NewProgram(prof, 0, 7), 2000)
	m.Run(1500)
	if m.State(0).Cum.Fetched != fetched {
		t.Fatal("fetch resumed before the switch penalty elapsed")
	}
	m.Run(1000)
	if m.State(0).Cum.Fetched == fetched {
		t.Fatal("fetch never resumed after the penalty")
	}
}

func TestStallAllFetch(t *testing.T) {
	m := machine(t)
	m.Run(1000)
	var before [8]uint64
	for i := 0; i < 8; i++ {
		before[i] = m.State(i).Cum.Fetched
	}
	m.StallAllFetch(500)
	m.Run(400)
	for i := 0; i < 8; i++ {
		if m.State(i).Cum.Fetched != before[i] {
			t.Fatalf("context %d fetched during a global stall", i)
		}
	}
}

func TestSchedulerRunsAllJobs(t *testing.T) {
	m := machine(t)
	cfg := DefaultConfig()
	cfg.Slice = 8192
	cfg.Policy = RoundRobin
	jobs := pool(t, 16, 1)
	s, err := New(cfg, m, nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.RunSlice()
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
	}
	ran := 0
	for _, j := range jobs {
		if j.Slices > 0 {
			ran++
		}
	}
	if ran < 14 {
		t.Fatalf("only %d/16 jobs ever ran under round-robin", ran)
	}
	if s.Stats().Switches == 0 {
		t.Fatal("no context switches recorded")
	}
	if s.TotalCommitted() == 0 {
		t.Fatal("no instructions attributed to jobs")
	}
}

func TestSchedulerPoliciesRun(t *testing.T) {
	for p := Policy(0); p < NumPolicies; p++ {
		m := machine(t)
		cfg := DefaultConfig()
		cfg.Slice = 8192
		cfg.Policy = p
		var det *detector.Detector
		if p == ClogAware {
			det = detector.New(detector.DefaultConfig(8))
		}
		s, err := New(cfg, m, det, pool(t, 12, 2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			s.RunSlice()
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if s.TotalCommitted() == 0 {
			t.Fatalf("%v: no throughput", p)
		}
	}
}

func TestClogAwareCheaperDecisions(t *testing.T) {
	run := func(p Policy) Stats {
		m := machine(t)
		cfg := DefaultConfig()
		cfg.Slice = 8192
		cfg.Policy = p
		s, err := New(cfg, m, detector.New(detector.DefaultConfig(8)), pool(t, 12, 3))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			s.RunSlice()
		}
		return s.Stats()
	}
	rr := run(RoundRobin)
	ca := run(ClogAware)
	if ca.DecisionStall >= rr.DecisionStall {
		t.Fatalf("clog-aware decision stall %d should be below round-robin's %d",
			ca.DecisionStall, rr.DecisionStall)
	}
}

func TestNewValidation(t *testing.T) {
	m := machine(t)
	if _, err := New(DefaultConfig(), m, nil, pool(t, 4, 1)); err == nil {
		t.Fatal("accepted fewer jobs than contexts")
	}
	bad := DefaultConfig()
	bad.Slice = 0
	if _, err := New(bad, m, nil, pool(t, 12, 1)); err == nil {
		t.Fatal("accepted zero slice")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p := Policy(0); p < NumPolicies; p++ {
		if p.String() == "" {
			t.Fatalf("policy %d has no name", p)
		}
	}
}

func TestSwapDuringWrongPath(t *testing.T) {
	// Swap a thread while it is fetching down a wrong path: the flush
	// must clear the wrong-path state and the machine stay consistent.
	m := machine(t)
	prof, _ := trace.ProfileByName("crafty") // mispredict-heavy
	for cycle := 0; cycle < 3000; cycle++ {
		m.Cycle()
	}
	for tid := 0; tid < 8; tid++ {
		m.SwapProgram(tid, trace.NewProgram(prof, tid, uint64(50+tid)), 50)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after mass swap: %v", err)
	}
	m.Run(10000)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after post-swap run: %v", err)
	}
}

func TestSwapDuringSyscallDrain(t *testing.T) {
	prof := &trace.Profile{
		Name: "sysstorm", Class: "int",
		Phases: []trace.Phase{{
			Name: "main", MeanLen: 5000,
			BranchFrac: 0.1, LoadFrac: 0.2, StoreFrac: 0.1, SyscallRate: 0.01,
			DataFootprint: 32 << 10, SeqFrac: 0.5, StackFrac: 0.2, CodeWords: 1000,
			BiasedW: 0.7, LoopW: 0.2, RandomW: 0.1, MeanDepDist: 5, DepProb: 0.7,
		}},
	}
	progs := []*trace.Program{
		trace.NewProgram(prof, 0, 1),
		trace.NewProgram(prof, 1, 2),
	}
	m := pipeline.New(pipeline.DefaultConfig(), progs, 1)
	swapProf, _ := trace.ProfileByName("gzip")
	for i := 0; i < 30; i++ {
		m.Run(700)
		tid := i % 2
		m.SwapProgram(tid, trace.NewProgram(swapProf, tid, uint64(i)), 20)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	m.Run(20000)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.TotalCommitted() == 0 {
		t.Fatal("machine wedged after swaps during syscall storms")
	}
}
