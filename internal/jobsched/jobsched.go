// Package jobsched models the operating-system job scheduler above the
// SMT core — the layer the paper's §3 and §7 argue the detector thread
// should assist: "the detector thread can also help lower the overhead
// of the system job scheduler by shortening its stay in the processor
// and analyzing information before the job scheduler needs it", and
// "when the system thread is loaded, it will look at the [clogging]
// flag and suspend a clogging thread without going through the process
// of determining which thread to suspend".
//
// A Scheduler owns more jobs than the machine has hardware contexts and
// re-decides the resident set every time slice (milliseconds-scale,
// i.e. many ADTS quanta). Four policies are modelled:
//
//   - RoundRobin and Random: Parekh et al.'s "oblivious" schedulers;
//   - IPCSensitive: thread-sensitive scheduling on observed IPC;
//   - ClogAware: round-robin, but the contexts flagged Clogging by the
//     detector thread are evicted first — and because the analysis was
//     done off-line by the DT, the scheduler's own stay on the
//     processor (a global fetch stall) is much shorter.
package jobsched

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/detector"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Policy selects the job-scheduling discipline.
type Policy int

const (
	// RoundRobin rotates jobs obliviously through the contexts.
	RoundRobin Policy = iota
	// Random picks a random resident set each slice.
	Random
	// IPCSensitive keeps the jobs with the highest recently observed
	// IPC resident and rotates the rest (thread-sensitive scheduling).
	IPCSensitive
	// ClogAware is RoundRobin, but contexts the detector thread flagged
	// as clogging are evicted first, and the scheduler's stay on the
	// processor is shorter because the analysis is already done.
	ClogAware
	NumPolicies
)

var policyNames = [NumPolicies]string{"round-robin", "random", "ipc-sensitive", "clog-aware"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("jobsched(%d)", int(p))
}

// Config parameterises the scheduler.
type Config struct {
	// Slice is the job-scheduling time slice in cycles. The paper notes
	// job quanta are milliseconds, "equivalent to a million cycles";
	// the default uses 131072 to keep experiments affordable while
	// staying 16x the ADTS quantum.
	Slice int64
	// SwitchPenalty is the per-context cost in cycles of loading a new
	// job (pipeline refill, architectural state swap).
	SwitchPenalty int
	// DecisionPenalty is the global fetch stall while the job scheduler
	// itself runs on the processor at a slice boundary.
	DecisionPenalty int
	// ClogDecisionPenalty replaces DecisionPenalty for ClogAware: the
	// detector thread pre-computed the analysis in idle slots.
	ClogDecisionPenalty int
	Policy              Policy
	Seed                uint64
}

// DefaultConfig returns slice and penalty defaults.
func DefaultConfig() Config {
	return Config{
		Slice:               131072,
		SwitchPenalty:       600,
		DecisionPenalty:     2400,
		ClogDecisionPenalty: 300,
		Policy:              RoundRobin,
		Seed:                1,
	}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Slice <= 0:
		return fmt.Errorf("jobsched: Slice must be positive")
	case c.SwitchPenalty < 0 || c.DecisionPenalty < 0 || c.ClogDecisionPenalty < 0:
		return fmt.Errorf("jobsched: penalties must be >= 0")
	case c.Policy < 0 || c.Policy >= NumPolicies:
		return fmt.Errorf("jobsched: unknown policy %d", c.Policy)
	}
	return nil
}

// Job is one schedulable program.
type Job struct {
	Name string
	Prog *trace.Program

	Committed uint64  // instructions retired across all its slices
	Slices    int     // slices it was resident
	LastIPC   float64 // observed IPC in its most recent slice
	WasClog   bool    // flagged clogging in its most recent slice
}

// Stats accumulates scheduler-level bookkeeping.
type Stats struct {
	Slices        uint64
	Switches      uint64 // job loads onto a context
	ClogEvictions uint64 // evictions driven by the detector's flag
	DecisionStall uint64 // cycles of global stall paid to the scheduler
}

// Scheduler multiplexes jobs onto a machine.
type Scheduler struct {
	cfg  Config
	m    *pipeline.Machine
	det  *detector.Detector // optional: ADTS + clogging flags
	jobs []*Job

	resident []int // job index per context
	queue    []int // waiting job indices, FIFO
	r        rng.PRNG
	prevCum  []counters.Counters
	stats    Stats
}

// New builds a scheduler for the given machine and job pool; the first
// NumThreads jobs start resident. A non-nil det enables ADTS (policy
// switching and clogging flags) at the detector's quantum inside each
// slice.
func New(cfg Config, m *pipeline.Machine, det *detector.Detector, jobs []*Job) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := m.NumThreads()
	if len(jobs) < n {
		return nil, fmt.Errorf("jobsched: need at least %d jobs, got %d", n, len(jobs))
	}
	s := &Scheduler{
		cfg:     cfg,
		m:       m,
		det:     det,
		jobs:    jobs,
		r:       rng.New(cfg.Seed ^ 0x6a09e667f3bcc909),
		prevCum: make([]counters.Counters, n),
	}
	for i := 0; i < n; i++ {
		s.resident = append(s.resident, i)
		m.SwapProgram(i, jobs[i].Prog, 0)
		s.prevCum[i] = m.State(i).Cum
	}
	for i := n; i < len(jobs); i++ {
		s.queue = append(s.queue, i)
	}
	return s, nil
}

// Stats returns scheduler bookkeeping.
func (s *Scheduler) Stats() Stats { return s.stats }

// Jobs returns the job pool (live view).
func (s *Scheduler) Jobs() []*Job { return s.jobs }

// Machine returns the underlying machine.
func (s *Scheduler) Machine() *pipeline.Machine { return s.m }

// RunSlice runs one time slice and re-decides the resident set.
func (s *Scheduler) RunSlice() {
	s.stats.Slices++
	s.runSliceCycles()

	// Account the slice to the resident jobs.
	n := s.m.NumThreads()
	for ctx := 0; ctx < n; ctx++ {
		cum := s.m.State(ctx).Cum
		delta := cum.Sub(s.prevCum[ctx])
		s.prevCum[ctx] = cum
		j := s.jobs[s.resident[ctx]]
		j.Committed += delta.Committed
		j.Slices++
		j.LastIPC = float64(delta.Committed) / float64(s.cfg.Slice)
		j.WasClog = s.m.State(ctx).Flags.Clogging
	}

	// The scheduler occupies the processor to decide.
	stall := s.cfg.DecisionPenalty
	if s.cfg.Policy == ClogAware {
		stall = s.cfg.ClogDecisionPenalty
	}
	s.m.StallAllFetch(stall)
	s.stats.DecisionStall += uint64(stall)

	s.reschedule()
}

// runSliceCycles advances the machine one slice, driving the embedded
// ADTS detector at its quantum if present.
func (s *Scheduler) runSliceCycles() {
	if s.det == nil {
		s.m.Run(s.cfg.Slice)
		return
	}
	quantum := s.det.Config().Quantum
	var prev []counters.Counters
	n := s.m.NumThreads()
	prev = make([]counters.Counters, n)
	for i := 0; i < n; i++ {
		prev[i] = s.m.State(i).Cum
	}
	for done := int64(0); done < s.cfg.Slice; done += quantum {
		step := quantum
		if s.cfg.Slice-done < step {
			step = s.cfg.Slice - done
		}
		for i := 0; i < n; i++ {
			s.m.State(i).QuantumStalls = 0
		}
		s.m.Run(step)
		qs := detector.QuantumStats{
			Cycles:    step,
			PerThread: make([]detector.ThreadQuantum, n),
		}
		var misp, l1, lsq, cbr uint64
		for i := 0; i < n; i++ {
			cum := s.m.State(i).Cum
			d := cum.Sub(prev[i])
			prev[i] = cum
			qs.Committed += d.Committed
			misp += d.Mispredicts
			l1 += d.L1Misses()
			lsq += d.LSQFull
			cbr += d.CondBranches
			qs.PerThread[i] = detector.ThreadQuantum{
				Committed: d.Committed,
				PreIssue:  s.m.State(i).Live.PreIssue,
			}
		}
		fc := float64(step)
		qs.IPC = float64(qs.Committed) / fc
		qs.MispredRate = float64(misp) / fc
		qs.L1MissRate = float64(l1) / fc
		qs.LSQFullRate = float64(lsq) / fc
		qs.CondBrRate = float64(cbr) / fc

		dec := s.det.OnQuantumEnd(qs)
		s.m.ScheduleDetectorJob(dec.Work, dec.NewPolicy, dec.Switch)
		for i, clog := range dec.Clogging {
			f := s.m.State(i).Flags
			f.Clogging = clog
			s.m.SetFlags(i, f)
		}
	}
}

// reschedule decides the next resident set and performs the swaps.
func (s *Scheduler) reschedule() {
	if len(s.queue) == 0 {
		return // nothing waiting; everyone stays
	}
	n := s.m.NumThreads()
	evict := s.pickEvictions()
	for _, ctx := range evict {
		if len(s.queue) == 0 {
			break
		}
		incoming := s.queue[0]
		s.queue = s.queue[1:]
		outgoing := s.resident[ctx]
		s.queue = append(s.queue, outgoing)
		s.resident[ctx] = incoming
		s.m.SwapProgram(ctx, s.jobs[incoming].Prog, s.cfg.SwitchPenalty)
		s.prevCum[ctx] = s.m.State(ctx).Cum
		s.stats.Switches++
	}
	_ = n
}

// pickEvictions returns the contexts to swap out this slice, most
// evictable first.
func (s *Scheduler) pickEvictions() []int {
	n := s.m.NumThreads()
	// How many contexts rotate per slice: half, so every job progresses
	// while co-schedules still vary.
	k := n / 2
	if k == 0 {
		k = 1
	}
	switch s.cfg.Policy {
	case RoundRobin:
		out := make([]int, 0, k)
		start := int(s.stats.Slices) % n
		for i := 0; i < k; i++ {
			out = append(out, (start+i)%n)
		}
		return out
	case Random:
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := s.r.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		return perm[:k]
	case IPCSensitive:
		// Evict the k contexts with the lowest last-slice IPC.
		return s.rankContexts(k, func(ctx int) float64 {
			return s.jobs[s.resident[ctx]].LastIPC
		})
	case ClogAware:
		// Clogging-flagged contexts go first; fill up round-robin.
		out := make([]int, 0, k)
		used := make([]bool, n)
		for ctx := 0; ctx < n && len(out) < k; ctx++ {
			if s.m.State(ctx).Flags.Clogging {
				out = append(out, ctx)
				used[ctx] = true
				s.stats.ClogEvictions++
			}
		}
		start := int(s.stats.Slices) % n
		for i := 0; i < n && len(out) < k; i++ {
			ctx := (start + i) % n
			if !used[ctx] {
				out = append(out, ctx)
				used[ctx] = true
			}
		}
		return out
	default:
		panic("jobsched: unknown policy")
	}
}

// rankContexts returns the k contexts with the lowest key.
func (s *Scheduler) rankContexts(k int, key func(ctx int) float64) []int {
	n := s.m.NumThreads()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && key(idx[j]) < key(idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx[:k]
}

// TotalCommitted sums committed instructions over all jobs.
func (s *Scheduler) TotalCommitted() uint64 {
	var n uint64
	for _, j := range s.jobs {
		n += j.Committed
	}
	return n
}
