package branch

// This file provides in-place reuse for predictors and the BTB: Reset
// restores the initial (just-constructed) state and CopyFrom overwrites
// state with another instance's, both without allocating. The pipeline
// uses them for machine pooling (Machine.Reset) and for the oracle's
// scratch-machine clone path (Machine.CloneInto), where the per-clone
// table allocations would otherwise dominate the GC profile.

// Reset restores every counter to the weakly-taken initial state.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

// CopyFrom overwrites b's state with src's. Geometries must match.
func (b *Bimodal) CopyFrom(src *Bimodal) {
	if len(b.table) != len(src.table) {
		panic("branch: Bimodal.CopyFrom geometry mismatch")
	}
	copy(b.table, src.table)
}

// Reset restores counters to weakly taken and clears all histories.
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	for i := range g.hist {
		g.hist[i] = 0
	}
}

// CopyFrom overwrites g's state with src's. Geometries must match.
func (g *GShare) CopyFrom(src *GShare) {
	if len(g.table) != len(src.table) || len(g.hist) != len(src.hist) {
		panic("branch: GShare.CopyFrom geometry mismatch")
	}
	copy(g.table, src.table)
	copy(g.hist, src.hist)
}

// Reset restores both components and the meta table to initial state.
func (h *Hybrid) Reset() {
	h.bim.Reset()
	h.gsh.Reset()
	for i := range h.meta {
		h.meta[i] = 2
	}
}

// CopyFrom overwrites h's state with src's. Geometries must match.
func (h *Hybrid) CopyFrom(src *Hybrid) {
	if len(h.meta) != len(src.meta) {
		panic("branch: Hybrid.CopyFrom geometry mismatch")
	}
	h.bim.CopyFrom(src.bim)
	h.gsh.CopyFrom(src.gsh)
	copy(h.meta, src.meta)
}

// Reset clears all local histories and restores the PHT to weakly taken.
func (l *Local) Reset() {
	for i := range l.hist {
		l.hist[i] = 0
	}
	for i := range l.pht {
		l.pht[i] = 2
	}
}

// CopyFrom overwrites l's state with src's. Geometries must match.
func (l *Local) CopyFrom(src *Local) {
	if len(l.hist) != len(src.hist) || len(l.pht) != len(src.pht) {
		panic("branch: Local.CopyFrom geometry mismatch")
	}
	copy(l.hist, src.hist)
	copy(l.pht, src.pht)
}

// ResetPredictor restores a predictor built by NewKind (or the dedicated
// constructors) to its just-constructed state without allocating,
// reporting whether it knew how. Callers fall back to reconstructing the
// predictor when it returns false.
func ResetPredictor(p Predictor) bool {
	switch v := p.(type) {
	case *Bimodal:
		v.Reset()
	case *GShare:
		v.Reset()
	case *Hybrid:
		v.Reset()
	case *Local:
		v.Reset()
	case Static:
		// Stateless.
	default:
		return false
	}
	return true
}

// CopyPredictor overwrites dst's state with src's without allocating,
// reporting whether it could (same concrete kind, same geometry; Static
// carries its direction by value and always succeeds when kinds match).
// Callers fall back to src.Clone() when it returns false.
func CopyPredictor(dst, src Predictor) bool {
	switch d := dst.(type) {
	case *Bimodal:
		if s, ok := src.(*Bimodal); ok && len(d.table) == len(s.table) {
			d.CopyFrom(s)
			return true
		}
	case *GShare:
		if s, ok := src.(*GShare); ok && len(d.table) == len(s.table) && len(d.hist) == len(s.hist) {
			d.CopyFrom(s)
			return true
		}
	case *Hybrid:
		if s, ok := src.(*Hybrid); ok &&
			len(d.meta) == len(s.meta) &&
			len(d.bim.table) == len(s.bim.table) &&
			len(d.gsh.table) == len(s.gsh.table) && len(d.gsh.hist) == len(s.gsh.hist) {
			d.CopyFrom(s)
			return true
		}
	case *Local:
		if s, ok := src.(*Local); ok && len(d.hist) == len(s.hist) && len(d.pht) == len(s.pht) {
			d.CopyFrom(s)
			return true
		}
	case Static:
		if s, ok := src.(Static); ok {
			return d == s // value receiver: equal Statics need no copy
		}
	}
	return false
}

// Reset invalidates every BTB entry.
func (b *BTB) Reset() {
	for i := range b.tags {
		b.tags[i] = 0
		b.targets[i] = 0
		b.lru[i] = 0
	}
}

// CopyFrom overwrites b's state with src's. Geometries must match.
func (b *BTB) CopyFrom(src *BTB) {
	if b.sets != src.sets || b.ways != src.ways {
		panic("branch: BTB.CopyFrom geometry mismatch")
	}
	copy(b.tags, src.tags)
	copy(b.targets, src.targets)
	copy(b.lru, src.lru)
}
