package branch

// BTB is a set-associative branch target buffer. The fetch stage uses it
// to obtain the target of a predicted-taken branch; a predicted-taken
// branch that misses in the BTB cannot redirect fetch and behaves like a
// predicted-not-taken branch.
type BTB struct {
	sets    int
	ways    int
	tags    []uint64 // sets*ways; 0 = invalid
	targets []uint64
	lru     []uint8 // higher = more recently used
}

// NewBTB returns a BTB with the given geometry. sets must be a power of
// two and ways positive.
func NewBTB(sets, ways int) *BTB {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("branch: BTB sets must be a positive power of two")
	}
	if ways <= 0 {
		panic("branch: BTB ways must be positive")
	}
	n := sets * ways
	return &BTB{
		sets:    sets,
		ways:    ways,
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		lru:     make([]uint8, n),
	}
}

func (b *BTB) base(tid int, pc uint64) (int, uint64) {
	h := mixPC(tid, pc)
	key := h<<1 | 1 // low valid bit, so tag 0 means invalid without aliasing PCs
	set := int(h) & (b.sets - 1)
	return set * b.ways, key
}

// Lookup returns the stored target for the branch at pc, and whether the
// BTB hit.
func (b *BTB) Lookup(tid int, pc uint64) (target uint64, hit bool) {
	base, key := b.base(tid, pc)
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == key {
			b.touch(base, w)
			return b.targets[base+w], true
		}
	}
	return 0, false
}

// Insert records the resolved target of a taken branch, replacing the
// least recently used way on a miss.
func (b *BTB) Insert(tid int, pc, target uint64) {
	base, key := b.base(tid, pc)
	victim := 0
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == key {
			victim = w
			break
		}
		if b.lru[base+w] < b.lru[base+victim] {
			victim = w
		}
	}
	b.tags[base+victim] = key
	b.targets[base+victim] = target
	b.touch(base, victim)
}

// touch marks way w in the set at base as most recently used.
func (b *BTB) touch(base, w int) {
	if b.lru[base+w] == 255 {
		for i := 0; i < b.ways; i++ {
			b.lru[base+i] /= 2
		}
	}
	max := uint8(0)
	for i := 0; i < b.ways; i++ {
		if b.lru[base+i] > max {
			max = b.lru[base+i]
		}
	}
	b.lru[base+w] = max + 1
}

// Clone returns an independent deep copy.
func (b *BTB) Clone() *BTB {
	nb := &BTB{
		sets:    b.sets,
		ways:    b.ways,
		tags:    make([]uint64, len(b.tags)),
		targets: make([]uint64, len(b.targets)),
		lru:     make([]uint8, len(b.lru)),
	}
	copy(nb.tags, b.tags)
	copy(nb.targets, b.targets)
	copy(nb.lru, b.lru)
	return nb
}
