package branch

import "fmt"

// Local is a two-level local-history (PAg) predictor: a per-branch
// history table indexes a shared pattern-history table of 2-bit
// counters. Local predictors excel at short periodic patterns (loop
// trip counts) that defeat bimodal prediction, complementing gshare's
// global correlation.
type Local struct {
	hist     []uint16 // level 1: per-branch local histories
	histMask uint64
	histBits uint
	pht      []counter // level 2: pattern history table
	phtMask  uint64
}

// NewLocal returns a PAg predictor with histEntries level-1 entries,
// histBits of local history, and phtEntries level-2 counters. Both
// table sizes must be powers of two.
func NewLocal(histEntries int, histBits uint, phtEntries int) *Local {
	if histEntries <= 0 || histEntries&(histEntries-1) != 0 {
		panic("branch: local history table size must be a positive power of two")
	}
	if phtEntries <= 0 || phtEntries&(phtEntries-1) != 0 {
		panic("branch: local PHT size must be a positive power of two")
	}
	if histBits == 0 || histBits > 16 {
		panic("branch: local history bits must be in 1..16")
	}
	pht := make([]counter, phtEntries)
	for i := range pht {
		pht[i] = 2
	}
	return &Local{
		hist:     make([]uint16, histEntries),
		histMask: uint64(histEntries - 1),
		histBits: histBits,
		pht:      pht,
		phtMask:  uint64(phtEntries - 1),
	}
}

func (l *Local) idx(tid int, pc uint64) (uint64, uint64) {
	h := mixPC(tid, pc) & l.histMask
	pattern := uint64(l.hist[h]) & ((1 << l.histBits) - 1)
	return h, pattern & l.phtMask
}

// Predict implements Predictor.
func (l *Local) Predict(tid int, pc uint64) bool {
	_, p := l.idx(tid, pc)
	return l.pht[p].taken()
}

// Update implements Predictor.
func (l *Local) Update(tid int, pc uint64, taken bool) {
	h, p := l.idx(tid, pc)
	l.pht[p] = l.pht[p].update(taken)
	l.hist[h] <<= 1
	if taken {
		l.hist[h] |= 1
	}
}

// Clone implements Predictor.
func (l *Local) Clone() Predictor {
	nh := make([]uint16, len(l.hist))
	copy(nh, l.hist)
	np := make([]counter, len(l.pht))
	copy(np, l.pht)
	return &Local{hist: nh, histMask: l.histMask, histBits: l.histBits, pht: np, phtMask: l.phtMask}
}

// Kind names a predictor configuration for pipeline.Config.
type Kind string

// Available predictor kinds.
const (
	KindHybrid  Kind = "hybrid"  // bimodal/gshare tournament (default)
	KindBimodal Kind = "bimodal" // per-PC 2-bit counters
	KindGShare  Kind = "gshare"  // global history XOR PC
	KindLocal   Kind = "local"   // two-level local history (PAg)
	KindTaken   Kind = "taken"   // static always-taken (degenerate baseline)
)

// NewKind constructs a predictor of the named kind with the given table
// geometry (entries must be a power of two) for threads contexts.
func NewKind(k Kind, entries int, histBits uint, threads int) (Predictor, error) {
	switch k {
	case KindHybrid, "":
		return NewHybrid(entries/2, entries, entries/2, histBits, threads), nil
	case KindBimodal:
		return NewBimodal(entries), nil
	case KindGShare:
		return NewGShare(entries, histBits, threads), nil
	case KindLocal:
		return NewLocal(entries/4, histBits, entries), nil
	case KindTaken:
		return Static{Taken: true}, nil
	default:
		return nil, fmt.Errorf("branch: unknown predictor kind %q", k)
	}
}
