// Package branch implements the branch-prediction substrate of the SMT
// simulator: bimodal and gshare direction predictors, a hybrid
// (tournament) predictor combining them, and a branch target buffer.
//
// The predictor is consulted at fetch and trained at branch resolution,
// exactly as the pipeline does it. On an SMT machine the prediction tables
// are shared between hardware contexts; indices mix in the thread id so
// that co-scheduled threads interfere (constructively or destructively),
// which is part of the dynamics the BRCOUNT fetch policy reacts to.
package branch

// Predictor predicts conditional-branch directions.
//
// Implementations must be deterministic and cloneable: Clone returns a
// deep copy whose future behaviour is identical given identical inputs.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc
	// executed by thread tid.
	Predict(tid int, pc uint64) bool
	// Update trains the predictor with the resolved outcome.
	Update(tid int, pc uint64, taken bool)
	// Clone returns an independent deep copy.
	Clone() Predictor
}

// counter is a 2-bit saturating counter: 0,1 predict not-taken; 2,3 taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// mixPC folds the thread id into the PC so contexts share tables but
// mostly index distinct entries, as in a real shared-table SMT front end.
func mixPC(tid int, pc uint64) uint64 {
	return pc ^ (uint64(tid) << 9) ^ (uint64(tid) * 0x9e37)
}

// Bimodal is a classic per-PC 2-bit counter predictor.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with the given table size,
// which must be a power of two.
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: bimodal table size must be a positive power of two")
	}
	t := make([]counter, entries)
	for i := range t {
		t[i] = 2 // weakly taken, the conventional initial state
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *Bimodal) index(tid int, pc uint64) uint64 {
	return mixPC(tid, pc) & b.mask
}

// Predict implements Predictor.
func (b *Bimodal) Predict(tid int, pc uint64) bool {
	return b.table[b.index(tid, pc)].taken()
}

// Update implements Predictor.
func (b *Bimodal) Update(tid int, pc uint64, taken bool) {
	i := b.index(tid, pc)
	b.table[i] = b.table[i].update(taken)
}

// Clone implements Predictor.
func (b *Bimodal) Clone() Predictor {
	t := make([]counter, len(b.table))
	copy(t, b.table)
	return &Bimodal{table: t, mask: b.mask}
}

// GShare is a global-history predictor: the pattern-history table is
// indexed by PC XOR a per-thread global history register.
type GShare struct {
	table    []counter
	mask     uint64
	histBits uint
	hist     []uint64 // per-thread global history
}

// NewGShare returns a gshare predictor with the given table size (a power
// of two), history length in bits, and number of hardware contexts.
func NewGShare(entries int, histBits uint, threads int) *GShare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: gshare table size must be a positive power of two")
	}
	t := make([]counter, entries)
	for i := range t {
		t[i] = 2
	}
	return &GShare{
		table:    t,
		mask:     uint64(entries - 1),
		histBits: histBits,
		hist:     make([]uint64, threads),
	}
}

func (g *GShare) index(tid int, pc uint64) uint64 {
	h := g.hist[tid] & ((1 << g.histBits) - 1)
	return (mixPC(tid, pc) ^ h) & g.mask
}

// Predict implements Predictor.
func (g *GShare) Predict(tid int, pc uint64) bool {
	return g.table[g.index(tid, pc)].taken()
}

// Update implements Predictor. It trains the table and shifts the
// outcome into the thread's history register.
func (g *GShare) Update(tid int, pc uint64, taken bool) {
	i := g.index(tid, pc)
	g.table[i] = g.table[i].update(taken)
	g.hist[tid] <<= 1
	if taken {
		g.hist[tid] |= 1
	}
}

// Clone implements Predictor.
func (g *GShare) Clone() Predictor {
	t := make([]counter, len(g.table))
	copy(t, g.table)
	h := make([]uint64, len(g.hist))
	copy(h, g.hist)
	return &GShare{table: t, mask: g.mask, histBits: g.histBits, hist: h}
}

// Hybrid is a tournament predictor: a meta table of 2-bit counters chooses
// between a bimodal and a gshare component per branch.
type Hybrid struct {
	bim  *Bimodal
	gsh  *GShare
	meta []counter // >= 2 selects gshare
	mask uint64
}

// NewHybrid returns a tournament predictor. metaEntries must be a power
// of two.
func NewHybrid(bimEntries, gshEntries, metaEntries int, histBits uint, threads int) *Hybrid {
	if metaEntries <= 0 || metaEntries&(metaEntries-1) != 0 {
		panic("branch: meta table size must be a positive power of two")
	}
	m := make([]counter, metaEntries)
	for i := range m {
		m[i] = 2 // weakly prefer gshare
	}
	return &Hybrid{
		bim:  NewBimodal(bimEntries),
		gsh:  NewGShare(gshEntries, histBits, threads),
		meta: m,
		mask: uint64(metaEntries - 1),
	}
}

// Predict implements Predictor.
func (h *Hybrid) Predict(tid int, pc uint64) bool {
	if h.meta[mixPC(tid, pc)&h.mask].taken() {
		return h.gsh.Predict(tid, pc)
	}
	return h.bim.Predict(tid, pc)
}

// Update implements Predictor. The meta table is trained toward whichever
// component was correct when they disagree.
func (h *Hybrid) Update(tid int, pc uint64, taken bool) {
	pb := h.bim.Predict(tid, pc)
	pg := h.gsh.Predict(tid, pc)
	if pb != pg {
		i := mixPC(tid, pc) & h.mask
		h.meta[i] = h.meta[i].update(pg == taken)
	}
	h.bim.Update(tid, pc, taken)
	h.gsh.Update(tid, pc, taken)
}

// Clone implements Predictor.
func (h *Hybrid) Clone() Predictor {
	m := make([]counter, len(h.meta))
	copy(m, h.meta)
	return &Hybrid{
		bim:  h.bim.Clone().(*Bimodal),
		gsh:  h.gsh.Clone().(*GShare),
		meta: m,
		mask: h.mask,
	}
}

// Static always predicts the given direction; useful for tests and as a
// degenerate baseline.
type Static struct{ Taken bool }

// Predict implements Predictor.
func (s Static) Predict(int, uint64) bool { return s.Taken }

// Update implements Predictor (no-op).
func (s Static) Update(int, uint64, bool) {}

// Clone implements Predictor.
func (s Static) Clone() Predictor { return s }
