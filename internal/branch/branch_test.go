package branch

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Fatalf("counter saturated at %d, want 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Fatalf("counter floored at %d, want 0", c)
	}
	if counter(1).taken() || !counter(2).taken() {
		t.Fatal("taken threshold wrong")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	const pc = 0x1234
	for i := 0; i < 10; i++ {
		b.Update(0, pc, false)
	}
	if b.Predict(0, pc) {
		t.Fatal("bimodal did not learn a not-taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(0, pc, true)
	}
	if !b.Predict(0, pc) {
		t.Fatal("bimodal did not relearn a taken bias")
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	g := NewGShare(4096, 10, 1)
	const pc = 0x77
	// Strict period-4 loop pattern: T T T N. After warmup gshare should
	// predict it near-perfectly; bimodal cannot (it would always say T).
	pattern := []bool{true, true, true, false}
	for i := 0; i < 400; i++ {
		g.Update(0, pc, pattern[i%4])
	}
	misp := 0
	for i := 0; i < 400; i++ {
		want := pattern[i%4]
		if g.Predict(0, pc) != want {
			misp++
		}
		g.Update(0, pc, want)
	}
	if misp > 8 {
		t.Fatalf("gshare mispredicted %d/400 on a period-4 pattern", misp)
	}
}

func TestHybridBeatsWorstComponent(t *testing.T) {
	// Two branches: one biased (bimodal-friendly), one periodic
	// (gshare-friendly). The hybrid should handle both.
	h := NewHybrid(1024, 4096, 1024, 10, 1)
	r := rng.New(1)
	misp := 0
	const n = 4000
	for i := 0; i < n; i++ {
		// biased branch at 0x10
		taken := r.Bool(0.95)
		if h.Predict(0, 0x10) != taken {
			misp++
		}
		h.Update(0, 0x10, taken)
		// period-3 branch at 0x20
		taken = i%3 != 2
		if h.Predict(0, 0x20) != taken {
			misp++
		}
		h.Update(0, 0x20, taken)
	}
	rate := float64(misp) / float64(2*n)
	if rate > 0.10 {
		t.Fatalf("hybrid mispredict rate %.3f on easy branches", rate)
	}
}

func TestThreadsDoNotAliasTrivially(t *testing.T) {
	b := NewBimodal(4096)
	const pc = 0x500
	for i := 0; i < 10; i++ {
		b.Update(0, pc, true)
		b.Update(1, pc, false)
	}
	if !b.Predict(0, pc) || b.Predict(1, pc) {
		t.Fatal("thread-mixed indexing aliased two contexts onto one entry")
	}
}

func TestPredictorClones(t *testing.T) {
	preds := []Predictor{
		NewBimodal(256),
		NewGShare(256, 8, 2),
		NewHybrid(256, 256, 256, 8, 2),
		Static{Taken: true},
	}
	for _, p := range preds {
		for i := 0; i < 50; i++ {
			p.Update(0, uint64(i%7)*4, i%3 == 0)
		}
		c := p.Clone()
		// Clone must agree now...
		for pc := uint64(0); pc < 32; pc += 4 {
			if p.Predict(0, pc) != c.Predict(0, pc) {
				t.Fatalf("%T clone disagrees immediately", p)
			}
		}
		// ...and diverging the clone must not affect the original.
		before := p.Predict(0, 0)
		for i := 0; i < 20; i++ {
			c.Update(0, 0, !before)
		}
		if p.Predict(0, 0) != before {
			t.Fatalf("%T clone mutation leaked into original", p)
		}
	}
}

func TestStatic(t *testing.T) {
	s := Static{Taken: true}
	if !s.Predict(0, 1) {
		t.Fatal("static taken predictor said not-taken")
	}
	s.Update(0, 1, false) // no-op
	if !s.Predict(0, 1) {
		t.Fatal("static predictor changed state")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBimodal(0) },
		func() { NewBimodal(100) }, // not a power of two
		func() { NewGShare(100, 8, 1) },
		func() { NewHybrid(256, 256, 100, 8, 1) },
		func() { NewBTB(100, 4) },
		func() { NewBTB(256, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid geometry")
				}
			}()
			f()
		}()
	}
}

func TestBTBStoresTargets(t *testing.T) {
	b := NewBTB(64, 4)
	if _, hit := b.Lookup(0, 0x40); hit {
		t.Fatal("empty BTB hit")
	}
	b.Insert(0, 0x40, 0x99)
	tgt, hit := b.Lookup(0, 0x40)
	if !hit || tgt != 0x99 {
		t.Fatalf("lookup = (%#x, %t)", tgt, hit)
	}
	b.Insert(0, 0x40, 0xAA) // update target in place
	tgt, _ = b.Lookup(0, 0x40)
	if tgt != 0xAA {
		t.Fatalf("target not updated: %#x", tgt)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(1, 2) // one set, two ways: third insert evicts LRU
	b.Insert(0, 1, 100)
	b.Insert(0, 2, 200)
	b.Lookup(0, 1) // touch 1 so 2 becomes LRU
	b.Insert(0, 3, 300)
	if _, hit := b.Lookup(0, 2); hit {
		t.Fatal("LRU entry survived eviction")
	}
	if _, hit := b.Lookup(0, 1); !hit {
		t.Fatal("MRU entry was evicted")
	}
	if tgt, hit := b.Lookup(0, 3); !hit || tgt != 300 {
		t.Fatal("new entry missing")
	}
}

func TestBTBClone(t *testing.T) {
	b := NewBTB(16, 2)
	b.Insert(0, 8, 80)
	c := b.Clone()
	c.Insert(0, 8, 81)
	if tgt, _ := b.Lookup(0, 8); tgt != 80 {
		t.Fatal("clone mutation leaked into original BTB")
	}
}

// TestBTBInsertLookupProperty: anything inserted is immediately
// retrievable with its exact target.
func TestBTBInsertLookupProperty(t *testing.T) {
	b := NewBTB(128, 4)
	f := func(tid uint8, pc, target uint64) bool {
		id := int(tid % 8)
		b.Insert(id, pc, target)
		got, hit := b.Lookup(id, pc)
		return hit && got == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalLearnsLoopPattern(t *testing.T) {
	l := NewLocal(1024, 10, 4096)
	const pc = 0x99
	// Period-5 loop: T T T T N — local history nails this, bimodal
	// cannot.
	pattern := []bool{true, true, true, true, false}
	for i := 0; i < 500; i++ {
		l.Update(0, pc, pattern[i%5])
	}
	misp := 0
	for i := 0; i < 500; i++ {
		want := pattern[i%5]
		if l.Predict(0, pc) != want {
			misp++
		}
		l.Update(0, pc, want)
	}
	if misp > 10 {
		t.Fatalf("local predictor mispredicted %d/500 on a period-5 loop", misp)
	}
}

func TestLocalClone(t *testing.T) {
	l := NewLocal(256, 8, 1024)
	for i := 0; i < 100; i++ {
		l.Update(0, 0x40, i%3 != 0)
	}
	c := l.Clone()
	if c.Predict(0, 0x40) != l.Predict(0, 0x40) {
		t.Fatal("clone disagrees")
	}
	for i := 0; i < 50; i++ {
		c.Update(0, 0x40, false)
	}
	if !l.Predict(0, 0x40) && c.Predict(0, 0x40) {
		t.Fatal("clone mutation leaked")
	}
}

func TestNewKind(t *testing.T) {
	for _, k := range []Kind{KindHybrid, KindBimodal, KindGShare, KindLocal, KindTaken, ""} {
		p, err := NewKind(k, 4096, 10, 4)
		if err != nil || p == nil {
			t.Fatalf("NewKind(%q): %v", k, err)
		}
		p.Update(0, 0x10, true)
		p.Predict(0, 0x10)
	}
	if _, err := NewKind("nope", 4096, 10, 4); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestLocalConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLocal(100, 8, 1024) },
		func() { NewLocal(256, 0, 1024) },
		func() { NewLocal(256, 8, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
