// Package profiling gives the command-line tools a shared, SIGINT-safe
// implementation of the standard -cpuprofile / -memprofile flags, so
// every front end exposes pprof the same way and none of them reinvents
// the flush-on-interrupt dance.
//
// Usage:
//
//	stop, err := profiling.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
//
// Start installs a signal handler so that an interrupted run (Ctrl-C on
// a long sweep) still writes complete, loadable profiles: the CPU
// profile is stopped and flushed, the heap profile is written after a
// final GC, and the process re-raises the signal's conventional exit.
package profiling

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
)

// Start begins CPU and/or heap profiling, returning a stop function
// that flushes whatever was enabled. Empty paths disable the respective
// profile; Start with both paths empty returns a no-op stop. The stop
// function is idempotent and safe to call from a defer alongside the
// installed SIGINT/SIGTERM handler.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}

	var once sync.Once
	flush := func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
					return
				}
				// An up-to-date heap profile needs the latest GC's
				// statistics.
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "profiling: write heap profile: %v\n", err)
				}
				f.Close()
			}
		})
	}

	if cpuPath != "" || memPath != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s, ok := <-sig
			if !ok {
				return
			}
			flush()
			// Restore the default disposition and re-raise so the exit
			// status reflects the interruption. signal.Stop only drops
			// THIS channel's registration: a host with its own handler
			// (adts-sweep's NotifyContext graceful-checkpoint path)
			// absorbs the re-raised signal and shuts down on its own
			// terms, while a plain host (smtsim) dies with the
			// conventional signal exit status.
			signal.Stop(sig)
			if sn, isSyscall := s.(syscall.Signal); isSyscall {
				syscall.Kill(os.Getpid(), sn)
			} else {
				os.Exit(1)
			}
		}()
		return func() {
			signal.Stop(sig)
			close(sig)
			flush()
		}, nil
	}
	return func() {}, nil
}
