package resultstore

import (
	"context"
	"testing"
)

// staticPeer is a canned tier-2 lookup for tests.
type staticPeer struct {
	entries map[string]*Entry
	calls   int
}

func (p *staticPeer) Lookup(_ context.Context, key string) (*Entry, bool) {
	p.calls++
	e, ok := p.entries[key]
	return e, ok
}

func TestTieredPromotesDiskHitsToMemory(t *testing.T) {
	mem := NewMemory(4)
	disk := openTestDisk(t, t.TempDir(), DiskOptions{})
	ts := NewTiered(mem, disk, nil)

	e := testEntry("cfg:1212121212121212", 1)
	if err := disk.Put(e); err != nil {
		t.Fatal(err)
	}
	got, tier, ok := ts.Get(context.Background(), e.Key)
	if !ok || tier != TierDisk {
		t.Fatalf("Get = (%v, %q, %v), want disk hit", got, tier, ok)
	}
	if _, tier, _ := ts.Get(context.Background(), e.Key); tier != TierMemory {
		t.Fatalf("second Get served from %q, want promoted memory hit", tier)
	}
	m := ts.Metrics()
	if m.Hits(TierMemory) != 1 || m.Hits(TierDisk) != 1 || m.Misses(TierMemory) != 1 {
		t.Fatalf("metrics: mem hits=%d disk hits=%d mem misses=%d",
			m.Hits(TierMemory), m.Hits(TierDisk), m.Misses(TierMemory))
	}
}

func TestTieredBackfillsPeerHits(t *testing.T) {
	mem := NewMemory(4)
	disk := openTestDisk(t, t.TempDir(), DiskOptions{})
	e := testEntry("cfg:3434343434343434", 2)
	peer := &staticPeer{entries: map[string]*Entry{e.Key: e}}
	ts := NewTiered(mem, disk, peer)

	_, tier, ok := ts.Get(context.Background(), e.Key)
	if !ok || tier != TierPeer {
		t.Fatalf("tier = %q, want peer", tier)
	}
	// Backfilled: the peer is not consulted again.
	if _, tier, _ := ts.Get(context.Background(), e.Key); tier != TierMemory {
		t.Fatalf("tier after backfill = %q, want memory", tier)
	}
	if peer.calls != 1 {
		t.Fatalf("peer consulted %d times, want 1", peer.calls)
	}
	if _, ok := disk.Get(e.Key); !ok {
		t.Fatal("peer hit not backfilled to disk")
	}
}

func TestTieredPutWritesBothLocalTiers(t *testing.T) {
	mem := NewMemory(4)
	disk := openTestDisk(t, t.TempDir(), DiskOptions{})
	ts := NewTiered(mem, disk, nil)
	e := testEntry("cfg:5656565656565656", 3)
	ts.Put(e)
	if _, ok := mem.Get(e.Key); !ok {
		t.Fatal("memory tier missing the entry")
	}
	if _, ok := disk.Get(e.Key); !ok {
		t.Fatal("disk tier missing the entry")
	}
}

func TestTieredNilTiersAlwaysMiss(t *testing.T) {
	var ts *Tiered
	if _, _, ok := ts.Get(context.Background(), "cfg:anything"); ok {
		t.Fatal("nil store hit")
	}
	ts.Put(testEntry("cfg:anything12345678", 1)) // must not panic
	empty := NewTiered(nil, nil, nil)
	if _, _, ok := empty.Get(context.Background(), "cfg:anything"); ok {
		t.Fatal("tierless store hit")
	}
	if err := empty.Close(); err != nil {
		t.Fatal(err)
	}
}
