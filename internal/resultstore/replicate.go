package resultstore

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultReplicateInterval paces anti-entropy rounds when the caller
// sets none. Convergence time after a fault is one round plus transfer
// time, so a minute bounds how long a freshly-healed daemon serves a
// partial store.
const DefaultReplicateInterval = time.Minute

// DefaultReplicatePace is the idle gap between individual transfers
// inside one sync round — the rate limit that keeps anti-entropy
// traffic from competing with simulation serving.
const DefaultReplicatePace = 2 * time.Millisecond

// DefaultReplicas is the target number of fleet-wide copies of each
// entry (including the local one) when the caller sets none.
const DefaultReplicas = 2

// ReplicateConfig tunes a Replicator. Zero values select the
// documented defaults.
type ReplicateConfig struct {
	// Peers are the other daemons' base URLs (normalized, no trailing
	// slash). An empty list makes every sync a no-op.
	Peers []string
	// Replicas is the fleet-wide copy target per entry, counting the
	// local copy; <= 0 selects DefaultReplicas. Keys seen on fewer than
	// Replicas stores are pushed to peers that lack them.
	Replicas int
	// Interval is the period between background sync rounds; <= 0
	// selects DefaultReplicateInterval. (SyncOnce ignores it.)
	Interval time.Duration
	// Pace is the idle gap between transfers; < 0 disables pacing, 0
	// selects DefaultReplicatePace.
	Pace time.Duration
	// Timeout bounds one HTTP exchange (manifest, pull, or push); <= 0
	// selects 10s. Manifests and entries are both small.
	Timeout time.Duration
	// HTTPClient overrides the transport; nil selects a dedicated
	// client.
	HTTPClient *http.Client
	// Log receives per-round summaries when anything moved; nil
	// discards them.
	Log io.Writer
}

// SyncReport summarizes one anti-entropy round.
type SyncReport struct {
	PeersSeen  int // peers whose manifest was fetched successfully
	PeerErrors int // peers that failed the manifest exchange
	Pulled     int // missing entries fetched from peers
	PullErrors int // pull attempts that failed or failed verification
	Pushed     int // under-replicated entries shipped to peers
	PushErrors int // push attempts a peer refused or dropped
}

// Replicator is the anti-entropy loop that makes the fleet's stores
// converge: each round it exchanges compact key-digest manifests with
// every peer, pulls keys it is missing, and pushes keys the
// replication factor says are under-replicated. Every transferred
// entry is digest-verified on both ends — the same end-to-end
// integrity contract as the serving path — so replication can spread
// results, never corruption. Transfers are paced (rate-limited) and
// every loop is a cancellation point, so shutdown never waits on a
// sync round.
type Replicator struct {
	store *Tiered
	cfg   ReplicateConfig
	http  *http.Client

	syncs       atomic.Int64
	pulls       atomic.Int64
	pushes      atomic.Int64
	pullErrors  atomic.Int64
	pushErrors  atomic.Int64
	manifestErr atomic.Int64

	cancel context.CancelFunc
	done   chan struct{}
}

// NewReplicator builds a replicator over the store for the given peer
// set.
func NewReplicator(store *Tiered, cfg ReplicateConfig) *Replicator {
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultReplicateInterval
	}
	if cfg.Pace == 0 {
		cfg.Pace = DefaultReplicatePace
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	r := &Replicator{store: store, cfg: cfg, http: cfg.HTTPClient}
	if r.http == nil {
		r.http = &http.Client{}
	}
	return r
}

// Start launches the background loop: one sync round per interval,
// first round after one interval (a booting fleet should serve before
// it replicates). Stop cancels and waits.
func (r *Replicator) Start() {
	if r == nil || r.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r.SyncOnce(ctx)
			}
		}
	}()
}

// Stop cancels the background loop (mid-round transfers abort at the
// next pacing point) and waits for it to exit. Safe without Start.
func (r *Replicator) Stop() {
	if r == nil || r.cancel == nil {
		return
	}
	r.cancel()
	<-r.done
	r.cancel = nil
}

// SyncOnce runs one full anti-entropy round synchronously: manifest
// exchange with every peer, pull what is missing locally, push what is
// under-replicated fleet-wide. Tests and the heal e2e call it directly
// for deterministic convergence.
func (r *Replicator) SyncOnce(ctx context.Context) SyncReport {
	var rep SyncReport
	if r == nil || r.store == nil || len(r.cfg.Peers) == 0 {
		return rep
	}
	r.syncs.Add(1)

	local := make(map[string]bool)
	for _, me := range r.store.ManifestLocal() {
		local[me.Key] = true
	}

	// Manifest exchange: who has what. A peer that fails the exchange
	// is skipped this round — anti-entropy is eventually consistent by
	// construction, so a missed round costs convergence time, never
	// correctness.
	peerHas := make([]map[string]bool, len(r.cfg.Peers))
	for i, peer := range r.cfg.Peers {
		if ctx.Err() != nil {
			return rep
		}
		m, err := r.fetchManifest(ctx, peer)
		if err != nil {
			rep.PeerErrors++
			r.manifestErr.Add(1)
			continue
		}
		rep.PeersSeen++
		peerHas[i] = m
	}
	if rep.PeersSeen == 0 {
		return rep
	}

	// Pull: keys any peer advertises that we cannot serve locally.
	// Sorted for deterministic transfer order.
	var missing []string
	seen := make(map[string]bool)
	for _, m := range peerHas {
		for k := range m {
			if !local[k] && !seen[k] {
				seen[k] = true
				missing = append(missing, k)
			}
		}
	}
	sort.Strings(missing)
	for _, key := range missing {
		if !r.pace(ctx) {
			return rep
		}
		pulled := false
		for i, peer := range r.cfg.Peers {
			if peerHas[i] == nil || !peerHas[i][key] {
				continue
			}
			if e := r.pull(ctx, peer, key); e != nil {
				r.store.Put(e)
				local[key] = true
				rep.Pulled++
				r.pulls.Add(1)
				pulled = true
				break
			}
		}
		if !pulled {
			rep.PullErrors++
			r.pullErrors.Add(1)
		}
	}

	// Push: local keys resident on fewer than Replicas stores
	// fleet-wide. Ship to peers that lack them, nearest-first in peer
	// order, until the factor is met.
	var keys []string
	for k := range local {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		copies := 1
		for i := range r.cfg.Peers {
			if peerHas[i] != nil && peerHas[i][key] {
				copies++
			}
		}
		if copies >= r.cfg.Replicas {
			continue
		}
		e, _, ok := r.store.GetLocal(key)
		if !ok {
			continue
		}
		for i, peer := range r.cfg.Peers {
			if copies >= r.cfg.Replicas {
				break
			}
			if peerHas[i] == nil || peerHas[i][key] {
				continue
			}
			if !r.pace(ctx) {
				return rep
			}
			if err := r.push(ctx, peer, e); err != nil {
				rep.PushErrors++
				r.pushErrors.Add(1)
				continue
			}
			peerHas[i][key] = true
			copies++
			rep.Pushed++
			r.pushes.Add(1)
		}
	}

	if rep.Pulled > 0 || rep.Pushed > 0 || rep.PeerErrors > 0 {
		fmt.Fprintf(r.cfg.Log, "resultstore: sync round: %d/%d peers, pulled %d (%d failed), pushed %d (%d failed)\n",
			rep.PeersSeen, len(r.cfg.Peers), rep.Pulled, rep.PullErrors, rep.Pushed, rep.PushErrors)
	}
	return rep
}

// pace is the rate limit and cancellation point between transfers.
func (r *Replicator) pace(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	if r.cfg.Pace <= 0 {
		return true
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(r.cfg.Pace):
		return true
	}
}

// manifestReply mirrors simserver's GET /v1/store/manifest body.
type manifestReply struct {
	State   string          `json:"state"`
	Entries []ManifestEntry `json:"entries"`
}

// fetchManifest GETs one peer's manifest as a key set.
func (r *Replicator) fetchManifest(ctx context.Context, base string) (map[string]bool, error) {
	mctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(mctx, http.MethodGet, base+"/v1/store/manifest", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("resultstore: manifest from %s: HTTP %d", base, resp.StatusCode)
	}
	var m manifestReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 32<<20)).Decode(&m); err != nil {
		return nil, err
	}
	has := make(map[string]bool, len(m.Entries))
	for _, me := range m.Entries {
		if ValidKey(me.Key) {
			has[me.Key] = true
		}
	}
	return has, nil
}

// pull fetches one missing entry from one peer, digest-verified; any
// failure returns nil.
func (r *Replicator) pull(ctx context.Context, base, key string) *Entry {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	e, err := getEntry(pctx, r.http, base, key)
	if err != nil {
		return nil
	}
	return e
}

// push ships one verified entry to one peer's POST /v1/store/push.
func (r *Replicator) push(ctx context.Context, base string, e *Entry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	pctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, base+"/v1/store/push", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("resultstore: push %s to %s: HTTP %d", e.Key, base, resp.StatusCode)
	}
	return nil
}

// Syncs reports completed + in-progress sync rounds.
func (r *Replicator) Syncs() int64 { return r.syncs.Load() }

// Pulls reports entries fetched from peers.
func (r *Replicator) Pulls() int64 { return r.pulls.Load() }

// Pushes reports entries shipped to under-replicated peers.
func (r *Replicator) Pushes() int64 { return r.pushes.Load() }

// PullErrors reports failed pull attempts.
func (r *Replicator) PullErrors() int64 { return r.pullErrors.Load() }

// PushErrors reports failed push attempts.
func (r *Replicator) PushErrors() int64 { return r.pushErrors.Load() }

// ManifestErrors reports failed peer manifest exchanges.
func (r *Replicator) ManifestErrors() int64 { return r.manifestErr.Load() }
