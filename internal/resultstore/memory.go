package resultstore

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
)

// Memory is the tier-0 store: a fixed-capacity least-recently-used
// cache of entries. Simulations are deterministic, so a cached entry
// is exact — there is no TTL and no invalidation, only capacity
// eviction. It is safe for concurrent use.
type Memory struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *memEntry
	items map[string]*list.Element

	evictions atomic.Int64
}

type memEntry struct {
	key string
	val *Entry
}

// NewMemory builds a tier-0 store bounded to capacity entries
// (minimum 1).
func NewMemory(capacity int) *Memory {
	if capacity < 1 {
		capacity = 1
	}
	return &Memory{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached entry and promotes it to most recently used.
func (c *Memory) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// Put inserts or refreshes an entry, evicting the least recently used
// entry when over capacity.
func (c *Memory) Put(e *Entry) {
	if e == nil || e.Key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.Key]; ok {
		el.Value.(*memEntry).val = e
		c.order.MoveToFront(el)
		return
	}
	c.items[e.Key] = c.order.PushFront(&memEntry{key: e.Key, val: e})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*memEntry).key)
		c.evictions.Add(1)
	}
}

// Clear drops every entry without counting evictions (used by
// benchmarks that want the next read to land on a lower tier).
func (c *Memory) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}

// Remove drops an entry if present (used by tests and repair paths).
func (c *Memory) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Manifest lists the resident entries as {key, digest} pairs in key
// order, for the anti-entropy exchange. The memory tier advertises too
// so a daemon with a degraded disk can still replicate out what it
// holds in RAM.
func (c *Memory) Manifest() []ManifestEntry {
	c.mu.Lock()
	out := make([]ManifestEntry, 0, len(c.items))
	for k, el := range c.items {
		out = append(out, ManifestEntry{Key: k, Digest: el.Value.(*memEntry).val.Digest})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len reports the current entry count.
func (c *Memory) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Capacity reports the configured entry bound.
func (c *Memory) Capacity() int { return c.cap }

// Evictions reports how many entries capacity pressure has evicted.
func (c *Memory) Evictions() int64 { return c.evictions.Load() }
