package resultstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// DefaultScrubInterval paces background scrub passes when the caller
// sets none: frequent enough to catch bit rot within minutes at fleet
// scale, rare enough to be invisible next to simulation load.
const DefaultScrubInterval = 10 * time.Minute

// DefaultScrubPace is the idle gap between per-entry checks inside one
// pass — the "low priority" knob. A pass over a full 256 MiB store is
// a few thousand reads; at 2ms apiece it spreads over seconds instead
// of monopolizing the disk.
const DefaultScrubPace = 2 * time.Millisecond

// ScrubConfig tunes a Scrubber. Zero values select the documented
// defaults.
type ScrubConfig struct {
	// Interval is the period between background passes; <= 0 selects
	// DefaultScrubInterval. (ScrubOnce ignores it.)
	Interval time.Duration
	// Pace is the idle gap between per-entry checks; < 0 disables
	// pacing, 0 selects DefaultScrubPace.
	Pace time.Duration
	// Source, when non-nil, is where corrupt entries are repaired from:
	// the scrubber re-fetches a quarantined key from the fleet and
	// re-persists it, turning detect-and-drop into detect-and-heal. Nil
	// leaves corrupt entries quarantined (the next Get re-simulates).
	Source PeerLookup
	// Log receives per-pass summaries when anything was found; nil
	// discards them.
	Log io.Writer
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Scanned      int  // entries re-read and re-verified
	Corrupt      int  // entries that failed verification (quarantined)
	Repaired     int  // corrupt entries re-fetched from a peer and re-persisted
	RepairFailed int  // corrupt entries no peer could supply
	Recovered    bool // a degraded tier re-armed during this pass
}

// Scrubber is the background integrity sweep over the disk tier: it
// periodically re-reads every resident entry, re-verifies the SHA-256
// envelope, quarantines bit-rotted files, and — when a repair source
// is configured — heals them by re-fetching from peers. Each pass also
// offers a degraded tier one recovery probe, so a disk that filled and
// was cleaned up re-arms within one scrub interval without operator
// action.
type Scrubber struct {
	store *Tiered
	cfg   ScrubConfig

	passes       atomic.Int64
	scanned      atomic.Int64
	corrupt      atomic.Int64
	repaired     atomic.Int64
	repairFailed atomic.Int64

	cancel context.CancelFunc
	done   chan struct{}
}

// NewScrubber builds a scrubber over the store's disk tier. The store
// may be memory-only; passes are then no-ops (state still reported).
func NewScrubber(store *Tiered, cfg ScrubConfig) *Scrubber {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultScrubInterval
	}
	if cfg.Pace == 0 {
		cfg.Pace = DefaultScrubPace
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return &Scrubber{store: store, cfg: cfg}
}

// Start launches the background loop. The first pass runs one interval
// after Start, not immediately: startup already structurally scanned
// the directory, and a daemon coming up under load should serve first,
// scrub later. Stop cancels the loop and waits for it.
func (s *Scrubber) Start() {
	if s == nil || s.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.ScrubOnce(ctx)
			}
		}
	}()
}

// Stop cancels the background loop (including a pass in progress; the
// per-entry pacing points are cancellation points) and waits for it to
// exit. Safe to call without Start, and more than once.
func (s *Scrubber) Stop() {
	if s == nil || s.cancel == nil {
		return
	}
	s.cancel()
	<-s.done
	s.cancel = nil
}

// ScrubOnce runs one full pass synchronously: re-arm probe for a
// degraded tier, then a paced re-read + re-verify of every resident
// entry, quarantining and (when a source is configured) repairing
// corruption. Tests and the CLI call it directly for deterministic
// convergence; the background loop calls it on its ticker.
func (s *Scrubber) ScrubOnce(ctx context.Context) ScrubReport {
	var rep ScrubReport
	if s == nil || s.store == nil {
		return rep
	}
	disk := s.store.Disk()
	if disk == nil {
		return rep
	}
	s.passes.Add(1)
	if disk.State() != DiskOK {
		before := disk.State()
		if disk.TryRecover() && before != DiskOK {
			rep.Recovered = true
			fmt.Fprintf(s.cfg.Log, "resultstore: scrub re-armed the disk tier (was %s)\n", before)
		}
	}
	for _, me := range disk.Manifest() {
		if ctx.Err() != nil {
			return rep
		}
		rep.Scanned++
		s.scanned.Add(1)
		err := disk.Check(me.Key)
		switch {
		case err == nil:
		case errors.Is(err, ErrCorrupt):
			rep.Corrupt++
			s.corrupt.Add(1)
			if s.repair(ctx, me.Key) {
				rep.Repaired++
				s.repaired.Add(1)
			} else {
				rep.RepairFailed++
				s.repairFailed.Add(1)
			}
		case errors.Is(err, ErrDegraded):
			// The tier went down mid-pass; the next pass re-probes.
			return rep
		}
		if s.cfg.Pace > 0 {
			select {
			case <-ctx.Done():
				return rep
			case <-time.After(s.cfg.Pace):
			}
		}
	}
	if rep.Corrupt > 0 || rep.Recovered {
		fmt.Fprintf(s.cfg.Log, "resultstore: scrub pass: %d scanned, %d corrupt, %d repaired, %d unrepairable\n",
			rep.Scanned, rep.Corrupt, rep.Repaired, rep.RepairFailed)
	}
	return rep
}

// repair re-fetches one quarantined key from the repair source and
// re-persists it through the tiered store (memory + disk), verifying
// the digest end to end. The key is dropped from the source's negative
// cache first: the local copy just rotted, so a previous "no peer had
// it" answer is stale.
func (s *Scrubber) repair(ctx context.Context, key string) bool {
	if s.cfg.Source == nil {
		return false
	}
	if f, ok := s.cfg.Source.(interface{ Forget(string) }); ok {
		f.Forget(key)
	}
	e, ok := s.cfg.Source.Lookup(ctx, key)
	if !ok {
		return false
	}
	s.store.Put(e)
	return true
}

// Passes reports completed + in-progress scrub passes.
func (s *Scrubber) Passes() int64 { return s.passes.Load() }

// Scanned reports entries re-read and re-verified across all passes.
func (s *Scrubber) Scanned() int64 { return s.scanned.Load() }

// Corrupt reports entries that failed verification during scrubs.
func (s *Scrubber) Corrupt() int64 { return s.corrupt.Load() }

// Repaired reports corrupt entries healed from a peer.
func (s *Scrubber) Repaired() int64 { return s.repaired.Load() }

// RepairFailed reports corrupt entries no peer could supply.
func (s *Scrubber) RepairFailed() int64 { return s.repairFailed.Load() }
