package resultstore

import (
	"fmt"
	"sync"
	"testing"
)

func TestMemoryEvictsOldest(t *testing.T) {
	c := NewMemory(2)
	c.Put(&Entry{Key: "a"})
	c.Put(&Entry{Key: "b"})
	if _, ok := c.Get("a"); !ok { // promote a; b is now oldest
		t.Fatal("a missing")
	}
	c.Put(&Entry{Key: "d"})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := c.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
}

func TestMemoryUpdateInPlace(t *testing.T) {
	c := NewMemory(2)
	c.Put(&Entry{Key: "a", Report: "v1"})
	c.Put(&Entry{Key: "a", Report: "v2"})
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	v, _ := c.Get("a")
	if v.Report != "v2" {
		t.Fatalf("Report = %q, want v2", v.Report)
	}
	if got := c.Evictions(); got != 0 {
		t.Fatalf("Evictions = %d, want 0 (update is not eviction)", got)
	}
}

// TestMemoryConcurrent hammers the cache from many goroutines; the
// -race build is the real assertion.
func TestMemoryConcurrent(t *testing.T) {
	c := NewMemory(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				c.Put(&Entry{Key: k})
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("Len = %d exceeds capacity 8", c.Len())
	}
}

func TestValidKey(t *testing.T) {
	for key, want := range map[string]bool{
		"0123456789abcdef":     true,
		"cfg:0123456789abcdef": true,
		"":                     false,
		"../etc/passwd":        false,
		"a/b":                  false,
		"a b":                  false,
		"ok-key_1.x":           true,
	} {
		if got := ValidKey(key); got != want {
			t.Errorf("ValidKey(%q) = %v, want %v", key, got, want)
		}
	}
}
