package resultstore

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/simrun"
)

// testEntry fabricates a verifiable entry whose result differs per
// seed, so distinct keys carry distinct bytes.
func testEntry(key string, seed int) *Entry {
	res := core.Result{Mix: "kitchen-sink", Threads: 8, Cycles: int64(1000 + seed), Committed: uint64(seed) * 7, AggregateIPC: float64(seed) / 3}
	return &Entry{Key: key, Result: res, Report: "report " + key, Digest: simrun.ResultDigest(res)}
}

func openTestDisk(t *testing.T, dir string, opts DiskOptions) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, DiskOptions{})
	e := testEntry("cfg:00ff00ff00ff00ff", 1)
	if err := d.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(e.Key)
	if !ok {
		t.Fatal("entry missing after Put")
	}
	if got.Report != e.Report || got.Digest != e.Digest || !reflect.DeepEqual(got.Result, e.Result) {
		t.Fatalf("round-trip mutated the entry: got %+v want %+v", got, e)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open rebuilds the index by scanning the directory.
	d2 := openTestDisk(t, dir, DiskOptions{})
	if d2.Len() != 1 {
		t.Fatalf("restarted store Len = %d, want 1", d2.Len())
	}
	got2, ok := d2.Get(e.Key)
	if !ok || !reflect.DeepEqual(got2.Result, e.Result) {
		t.Fatal("entry did not survive the restart")
	}
}

func TestDiskRefusesUnverifiableEntry(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), DiskOptions{})
	e := testEntry("deadbeefdeadbeef", 1)
	e.Digest = "not-the-digest"
	if err := d.Put(e); err == nil {
		t.Fatal("Put accepted an entry whose digest does not verify")
	}
	if d.PutErrors() == 0 {
		t.Fatal("put error not counted")
	}
}

func TestDiskQuarantinesCorruptFileOnRead(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, DiskOptions{})
	e := testEntry("cfg:1111222233334444", 2)
	if err := d.Put(e); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the stored file behind the store's back.
	path := filepath.Join(dir, fileFromKey(e.Key))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := d.Get(e.Key); ok {
		t.Fatal("Get served a corrupted entry")
	}
	if d.Quarantines() != 1 {
		t.Fatalf("Quarantines = %d, want 1", d.Quarantines())
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, fileFromKey(e.Key))); err != nil {
		t.Fatalf("corrupt file not preserved in quarantine: %v", err)
	}
	// The store stays usable: the key can be re-stored and re-read.
	if err := d.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(e.Key); !ok {
		t.Fatal("re-stored entry missing")
	}
}

func TestDiskStartupQuarantinesTruncatedAndJunkFiles(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, DiskOptions{})
	good := testEntry("cfg:aaaabbbbccccdddd", 3)
	if err := d.Put(good); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// A truncated entry (torn write that somehow got a valid name), an
	// empty file, a stranded temp file, and non-JSON junk.
	full, _ := os.ReadFile(filepath.Join(dir, fileFromKey(good.Key)))
	os.WriteFile(filepath.Join(dir, "cfg-0123012301230123.json"), full[:len(full)/2], 0o644)
	os.WriteFile(filepath.Join(dir, "cfg-4567456745674567.json"), nil, 0o644)
	os.WriteFile(filepath.Join(dir, tmpPrefix+"stranded"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(dir, "cfg-89ab89ab89ab89ab.json"), []byte("not json at all"), 0o644)

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("startup crashed on corrupt store files: %v", err)
	}
	if d2.Len() != 1 {
		t.Fatalf("restarted Len = %d, want only the good entry", d2.Len())
	}
	if _, ok := d2.Get(good.Key); !ok {
		t.Fatal("good entry lost during quarantine sweep")
	}
	if got := d2.Quarantines(); got != 3 {
		t.Fatalf("Quarantines = %d, want 3 (truncated, empty, junk)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"stranded")); !os.IsNotExist(err) {
		t.Fatal("stranded temp file not swept")
	}
}

// TestDiskTornWriteNeverPoisonsStore reuses the chaos torn-write
// pattern: a writer that dies mid-record (kill -9 semantics) must
// leave the store exactly as it was — the atomic-rename discipline
// means the torn bytes only ever land in a temp file.
func TestDiskTornWriteNeverPoisonsStore(t *testing.T) {
	dir := t.TempDir()
	torn := false
	d := openTestDisk(t, dir, DiskOptions{
		WrapWriter: func(w io.WriteCloser) io.WriteCloser {
			if torn {
				return w
			}
			torn = true
			return chaos.NewWriter(w, 64) // tear 64 bytes into the first write
		},
	})
	e := testEntry("cfg:feedfacefeedface", 4)
	if err := d.Put(e); err == nil {
		t.Fatal("torn write reported success")
	}
	if _, ok := d.Get(e.Key); ok {
		t.Fatal("torn entry is visible")
	}
	// The second attempt (healthy writer) succeeds; no stranded temp
	// files remain.
	if err := d.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(e.Key); !ok {
		t.Fatal("entry missing after recovery")
	}
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if strings.HasPrefix(f.Name(), tmpPrefix) {
			t.Fatalf("stranded temp file %s after torn write", f.Name())
		}
	}
}

// TestDiskTornIndexWriteTolerated tears the Close-time index write;
// the next open must fall back to the directory scan.
func TestDiskTornIndexWriteTolerated(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, DiskOptions{})
	e := testEntry("cfg:0102030405060708", 5)
	if err := d.Put(e); err != nil {
		t.Fatal(err)
	}
	// Tear the index write only (entries are already on disk).
	d.opts.WrapWriter = func(w io.WriteCloser) io.WriteCloser { return chaos.NewWriter(w, 8) }
	if err := d.Close(); err == nil {
		t.Fatal("torn index write reported success")
	}

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("open after torn index write: %v", err)
	}
	if _, ok := d2.Get(e.Key); !ok {
		t.Fatal("entry lost after torn index write (scan should recover it)")
	}
}

func TestDiskCorruptIndexIgnored(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, DiskOptions{})
	e := testEntry("cfg:a1a2a3a4a5a6a7a8", 6)
	if err := d.Put(e); err != nil {
		t.Fatal(err)
	}
	d.Close()
	os.WriteFile(filepath.Join(dir, indexFile), []byte("{torn"), 0o644)

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("open with corrupt index: %v", err)
	}
	if _, ok := d2.Get(e.Key); !ok {
		t.Fatal("entry lost under corrupt index")
	}
}

func TestDiskEvictsOldestAccessFirst(t *testing.T) {
	dir := t.TempDir()
	one := testEntry("cfg:0000000000000001", 1)
	raw := mustSize(t, one)
	// Budget for about 2.5 entries, so the third insert evicts one.
	d := openTestDisk(t, dir, DiskOptions{MaxBytes: raw*2 + raw/2})
	keys := []string{"cfg:0000000000000001", "cfg:0000000000000002", "cfg:0000000000000003"}
	if err := d.Put(testEntry(keys[0], 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(testEntry(keys[1], 2)); err != nil {
		t.Fatal(err)
	}
	// Touch the first key so the second is oldest-accessed.
	if _, ok := d.Get(keys[0]); !ok {
		t.Fatal("first entry missing")
	}
	if err := d.Put(testEntry(keys[2], 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(keys[1]); ok {
		t.Fatal("oldest-accessed entry survived eviction")
	}
	if _, ok := d.Get(keys[0]); !ok {
		t.Fatal("recently-accessed entry was evicted")
	}
	if d.Evictions() == 0 {
		t.Fatal("eviction not counted")
	}
	if d.Bytes() > d.MaxBytes() {
		t.Fatalf("Bytes %d exceeds budget %d after eviction", d.Bytes(), d.MaxBytes())
	}
}

// TestDiskAccessOrderSurvivesRestart proves the Close-persisted index
// keeps eviction oldest-access (not directory-order) across a drain.
func TestDiskAccessOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	raw := mustSize(t, testEntry("cfg:0000000000000001", 1))
	d := openTestDisk(t, dir, DiskOptions{MaxBytes: raw * 10})
	a, b := "cfg:000000000000000a", "cfg:000000000000000b"
	if err := d.Put(testEntry(a, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(testEntry(b, 2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(a); !ok { // a is now newer than b
		t.Fatal("a missing before restart")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDisk(t, dir, DiskOptions{MaxBytes: raw*2 + raw/2})
	if err := d2.Put(testEntry("cfg:000000000000000c", 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get(b); ok {
		t.Fatal("b survived: persisted access order was lost")
	}
	if _, ok := d2.Get(a); !ok {
		t.Fatal("a evicted despite being recently accessed before the restart")
	}
}

func mustSize(t *testing.T, e *Entry) int64 {
	t.Helper()
	d := openTestDisk(t, t.TempDir(), DiskOptions{})
	if err := d.Put(e); err != nil {
		t.Fatal(err)
	}
	return d.Bytes()
}
