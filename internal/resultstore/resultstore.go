// Package resultstore is the tiered simulation-result store behind
// smtsimd and the fleet client: one Get/Put surface over three tiers
// with strictly increasing latency and strictly increasing reach —
//
//   - tier 0 "memory": a fixed-capacity in-process LRU (the former
//     simserver cache, generalized). Nanoseconds, per-daemon.
//   - tier 1 "disk": a content-addressed on-disk store of canonical
//     JSON entries keyed by config hash, written via atomic rename,
//     integrity-re-verified on every read, size-bounded with
//     oldest-access eviction, and rebuilt by directory scan on
//     startup. Microseconds, survives restarts.
//   - tier 2 "peer": GET /v1/result/{key} against the other daemons in
//     the fleet, with a negative-lookup short-circuit and
//     chaos-tolerant timeouts. Milliseconds, fleet-wide.
//
// Simulations are deterministic functions of their config and results
// are SHA-256-digested end to end (simrun.ResultDigest), so an entry
// fetched from any tier is exact: there is no TTL, no invalidation,
// and every tier re-verifies the digest before serving bytes it did
// not just compute. See docs/resultstore.md for the tier contract and
// the on-disk layout.
package resultstore

import (
	"context"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/simrun"
)

// Tier names, used as metric labels and reported by Tiered.Get.
const (
	TierMemory = "memory"
	TierDisk   = "disk"
	TierPeer   = "peer"
)

// Store-level serving states, reported by Tiered.State and surfaced in
// /healthz as store_state so fleet health probes can weight dispatch
// away from degraded backends.
const (
	// StateOK: all configured tiers serving normally.
	StateOK = "ok"
	// StateReadOnly: the disk tier refuses writes (full, read-only
	// remount, permission) but still serves existing entries.
	StateReadOnly = "readonly"
	// StateMemoryOnly: no disk tier is serving — either none was
	// configured or the configured one is offline (read faults).
	StateMemoryOnly = "memory-only"
)

// ManifestEntry is one line of a store manifest: the anti-entropy
// exchange unit. Peers compare manifests to find keys they are missing
// (pull) and keys the replication factor says are under-replicated
// (push); the digest lets a receiver reject a stale or lying
// advertisement without fetching the body.
type ManifestEntry struct {
	Key    string `json:"key"`
	Digest string `json:"digest"`
}

// Entry is one stored simulation result. Its JSON field set (and
// order) is exactly the cacheable part of a POST /v1/run response, so
// serving an entry from any tier is byte-identical to serving the
// response that first produced it.
type Entry struct {
	// Key is the canonical config hash the entry is stored under
	// (simrun.Key, with a "cfg:" prefix for raw-config entries).
	Key string `json:"key"`
	// Request echoes the normalized request that produced the result;
	// zero for raw-config ("cfg:") entries.
	Request simrun.Request `json:"request"`
	// Result is the full structured simulation result.
	Result core.Result `json:"result"`
	// Report is the human-readable summary, byte-identical to what
	// `smtsim` prints for the same configuration.
	Report string `json:"report"`
	// Digest is the canonical SHA-256 of Result (simrun.ResultDigest).
	// Every tier re-verifies it before serving an entry it did not
	// just compute.
	Digest string `json:"digest"`
}

// Verify recomputes the result digest and reports whether it matches
// the entry's claim. Entries with no digest are unverifiable and fail.
func (e *Entry) Verify() bool {
	return e != nil && e.Digest != "" && simrun.ResultDigest(e.Result) == e.Digest
}

// ValidKey reports whether key is storable: non-empty, bounded, and
// built only from the characters config hashes use (hex, plus the
// "cfg:" raw-config prefix). Everything else is rejected before it can
// reach a filename or a URL path.
func ValidKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == ':', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return !strings.Contains(key, "..")
}

// PeerLookup is the tier-2 read path: a fleet-wide best-effort lookup.
// Implementations must digest-verify entries before returning them and
// must treat every failure (timeout, corruption, dead peer) as a miss.
type PeerLookup interface {
	Lookup(ctx context.Context, key string) (*Entry, bool)
}

// Tiered composes the tiers behind one Get/Put. Any tier may be nil;
// a fully-nil Tiered is a valid always-miss store.
type Tiered struct {
	mem  *Memory
	disk *Disk
	peer PeerLookup

	metrics Metrics
}

// NewTiered composes mem, disk, and peer (each optional) into one
// store.
func NewTiered(mem *Memory, disk *Disk, peer PeerLookup) *Tiered {
	return &Tiered{mem: mem, disk: disk, peer: peer}
}

// Memory returns the tier-0 store, or nil.
func (t *Tiered) Memory() *Memory { return t.mem }

// Disk returns the tier-1 store, or nil.
func (t *Tiered) Disk() *Disk { return t.disk }

// Metrics returns the per-tier hit/miss counters.
func (t *Tiered) Metrics() *Metrics { return &t.metrics }

// Get walks the tiers in order and returns the first verified entry
// together with the name of the tier that served it. Hits in a slower
// tier are promoted into the faster tiers, so a result fetched from
// disk (or a peer) costs its full latency once per process lifetime,
// not once per request.
func (t *Tiered) Get(ctx context.Context, key string) (*Entry, string, bool) {
	if t == nil {
		return nil, "", false
	}
	if e, tier, ok := t.GetLocal(key); ok {
		return e, tier, ok
	}
	if t.peer != nil {
		if e, ok := t.peer.Lookup(ctx, key); ok {
			t.metrics.hit(TierPeer)
			t.put(e) // backfill the local tiers
			return e, TierPeer, true
		}
		t.metrics.miss(TierPeer)
	}
	return nil, "", false
}

// GetLocal walks only the local tiers (memory, then disk). It is the
// read path behind GET /v1/result/{key}: a daemon answering a peer
// lookup must not itself fan out to its peers, or lookups would
// recurse across the fleet.
func (t *Tiered) GetLocal(key string) (*Entry, string, bool) {
	if t == nil {
		return nil, "", false
	}
	if t.mem != nil {
		if e, ok := t.mem.Get(key); ok {
			t.metrics.hit(TierMemory)
			return e, TierMemory, true
		}
		t.metrics.miss(TierMemory)
	}
	if t.disk != nil {
		if e, ok := t.disk.Get(key); ok {
			t.metrics.hit(TierDisk)
			if t.mem != nil {
				t.mem.Put(e)
			}
			return e, TierDisk, true
		}
		t.metrics.miss(TierDisk)
	}
	return nil, "", false
}

// Put stores the entry in every writable tier. Disk failures are
// counted, not propagated: the store is a cache, and a full or broken
// disk must never fail the simulation that produced the result.
func (t *Tiered) Put(e *Entry) {
	if t == nil || e == nil || e.Key == "" {
		return
	}
	t.put(e)
}

func (t *Tiered) put(e *Entry) {
	if t.mem != nil {
		t.mem.Put(e)
	}
	if t.disk != nil {
		if err := t.disk.Put(e); err != nil {
			t.metrics.putError(TierDisk)
		}
	}
}

// State reports the store's serving state: StateOK when every
// configured tier serves, StateReadOnly when the disk tier refuses
// writes, StateMemoryOnly when there is no serving disk tier.
func (t *Tiered) State() string {
	if t == nil || t.disk == nil {
		return StateMemoryOnly
	}
	switch t.disk.State() {
	case DiskOK:
		return StateOK
	case DiskReadOnly:
		return StateReadOnly
	default:
		return StateMemoryOnly
	}
}

// ManifestLocal lists every key the local tiers (memory, disk) can
// serve, as sorted {key, digest} pairs — the GET /v1/store/manifest
// payload. The memory tier is included so a daemon whose disk is
// degraded still advertises (and can replicate out) the results it
// holds in RAM.
func (t *Tiered) ManifestLocal() []ManifestEntry {
	if t == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []ManifestEntry
	if t.disk != nil {
		for _, me := range t.disk.Manifest() {
			if !seen[me.Key] {
				seen[me.Key] = true
				out = append(out, me)
			}
		}
	}
	if t.mem != nil {
		for _, me := range t.mem.Manifest() {
			if !seen[me.Key] {
				seen[me.Key] = true
				out = append(out, me)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Close flushes and closes the tiers that hold external resources
// (today: the disk tier's index). Safe on a nil or tierless store.
func (t *Tiered) Close() error {
	if t == nil || t.disk == nil {
		return nil
	}
	return t.disk.Close()
}
