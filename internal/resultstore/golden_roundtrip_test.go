package resultstore

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/simrun"
)

// goldenMixes reads the mix list out of the committed multi-core
// golden experiment, so this property test automatically tracks
// whatever workloads the golden covers.
func goldenMixes(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile("../../docs/results/multicore-golden.json")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	var golden struct {
		Multicore struct {
			Opts struct {
				Mixes []string
			}
		} `json:"multicore"`
	}
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parsing golden: %v", err)
	}
	if len(golden.Multicore.Opts.Mixes) == 0 {
		t.Fatal("golden names no mixes; the property test would prove nothing")
	}
	return golden.Multicore.Opts.Mixes
}

// TestDiskRoundTripIdentityForGoldenMixes is the tier-1 identity
// property: for every mix in the committed multi-core golden (and a
// few seeds each), write a real simulation result to the disk tier,
// force it out of the memory tier, read it back through the tiered
// store, and require (a) the digest re-verifies and (b) the entry —
// result, report, request echo — is deep-equal to what was written.
// Equal configs produce byte-identical results, so any divergence here
// means the disk tier mutated bytes in flight.
func TestDiskRoundTripIdentityForGoldenMixes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	mixes := goldenMixes(t)
	disk := openTestDisk(t, t.TempDir(), DiskOptions{})
	mem := NewMemory(1) // capacity 1: every new Put evicts the prior key
	ts := NewTiered(mem, disk, nil)

	for _, mix := range mixes {
		for seed := uint64(1); seed <= 2; seed++ {
			req := simrun.Request{Mix: mix, Mode: "fixed", Policy: "ICOUNT", Quanta: 2, Seed: seed, Threads: 4}
			cfg, err := req.Config()
			if err != nil {
				t.Fatalf("%s seed %d: %v", mix, seed, err)
			}
			res, err := simrun.Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", mix, seed, err)
			}
			e := &Entry{
				Key:     simrun.Key(cfg),
				Request: req.Normalize(),
				Result:  res,
				Report:  simrun.Report(cfg, res, simrun.ReportOptions{}),
				Digest:  simrun.ResultDigest(res),
			}
			ts.Put(e)
			// Evict from memory by churning the 1-entry LRU.
			mem.Put(testEntry("cfg:evictor000000000", 1))
			if _, ok := mem.Get(e.Key); ok {
				t.Fatalf("%s seed %d: entry still in memory; eviction step broken", mix, seed)
			}

			got, tier, ok := ts.Get(context.Background(), e.Key)
			if !ok || tier != TierDisk {
				t.Fatalf("%s seed %d: Get = (%v, %q), want a disk hit", mix, seed, ok, tier)
			}
			if !got.Verify() {
				t.Fatalf("%s seed %d: digest failed to re-verify after disk round-trip", mix, seed)
			}
			if !reflect.DeepEqual(got, e) {
				t.Fatalf("%s seed %d: disk round-trip is not identity:\nwrote %+v\nread  %+v", mix, seed, e, got)
			}
			if simrun.ResultDigest(got.Result) != simrun.ResultDigest(res) {
				t.Fatalf("%s seed %d: result digest drifted across the round-trip", mix, seed)
			}
		}
	}
}
