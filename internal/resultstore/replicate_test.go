package resultstore

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// tieredPeerServer exposes a Tiered store over the three endpoints the
// replicator speaks, hand-rolled here because importing simserver would
// cycle (simserver imports resultstore). The handler bodies mirror
// simserver's semantics: manifest of the local tiers, local-only result
// reads, digest-verified pushes.
func tieredPeerServer(t *testing.T, st *Tiered) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/store/manifest", func(w http.ResponseWriter, _ *http.Request) {
		entries := st.ManifestLocal()
		if entries == nil {
			entries = []ManifestEntry{}
		}
		json.NewEncoder(w).Encode(manifestReply{State: st.State(), Entries: entries})
	})
	mux.HandleFunc("GET /v1/result/{key}", func(w http.ResponseWriter, r *http.Request) {
		e, _, ok := st.GetLocal(r.PathValue("key"))
		if !ok {
			http.Error(w, "no stored result", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(e)
	})
	mux.HandleFunc("POST /v1/store/push", func(w http.ResponseWriter, r *http.Request) {
		var e Entry
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil || !ValidKey(e.Key) || !e.Verify() {
			http.Error(w, "unverifiable entry", http.StatusBadRequest)
			return
		}
		st.Put(&e)
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func memStore(capacity int) *Tiered { return NewTiered(NewMemory(capacity), nil, nil) }

func TestReplicatorPullsMissing(t *testing.T) {
	local := memStore(16)
	peer := memStore(16)
	keys := []string{"cfg:aaaa000011112222", "cfg:bbbb000011112222", "cfg:cccc000011112222"}
	for i, k := range keys {
		peer.Put(testEntry(k, i+1))
	}
	ts := tieredPeerServer(t, peer)

	r := NewReplicator(local, ReplicateConfig{Peers: []string{ts.URL}, Pace: -1})
	rep := r.SyncOnce(context.Background())
	if rep.PeersSeen != 1 || rep.Pulled != 3 || rep.PullErrors != 0 {
		t.Fatalf("sync report = %+v, want 3 pulls from 1 peer", rep)
	}
	for i, k := range keys {
		e, _, ok := local.GetLocal(k)
		if !ok || e.Digest != testEntry(k, i+1).Digest {
			t.Fatalf("key %s missing or wrong after pull", k)
		}
	}
	// A second round has nothing to move (both sides hold everything,
	// replication factor 2 is met).
	rep2 := r.SyncOnce(context.Background())
	if rep2.Pulled != 0 || rep2.Pushed != 0 {
		t.Fatalf("converged fleet still moved data: %+v", rep2)
	}
}

func TestReplicatorPushesUnderReplicated(t *testing.T) {
	local := memStore(16)
	peer := memStore(16)
	keys := []string{"cfg:aaaa000011112222", "cfg:bbbb000011112222"}
	for i, k := range keys {
		local.Put(testEntry(k, i+1))
	}
	ts := tieredPeerServer(t, peer)

	r := NewReplicator(local, ReplicateConfig{Peers: []string{ts.URL}, Replicas: 2, Pace: -1})
	rep := r.SyncOnce(context.Background())
	if rep.Pushed != 2 || rep.PushErrors != 0 {
		t.Fatalf("sync report = %+v, want 2 pushes", rep)
	}
	for _, k := range keys {
		if _, _, ok := peer.GetLocal(k); !ok {
			t.Fatalf("key %s missing on peer after push", k)
		}
	}
}

func TestReplicatorReplicationFactorBounds(t *testing.T) {
	local := memStore(16)
	peerA := memStore(16)
	peerB := memStore(16)
	local.Put(testEntry("cfg:aaaa000011112222", 1))
	tsA := tieredPeerServer(t, peerA)
	tsB := tieredPeerServer(t, peerB)

	// Replicas=2 with two empty peers: exactly one copy ships.
	r := NewReplicator(local, ReplicateConfig{Peers: []string{tsA.URL, tsB.URL}, Replicas: 2, Pace: -1})
	rep := r.SyncOnce(context.Background())
	if rep.Pushed != 1 {
		t.Fatalf("Pushed = %d, want exactly 1 (factor met)", rep.Pushed)
	}
	onA := 0
	if _, _, ok := peerA.GetLocal("cfg:aaaa000011112222"); ok {
		onA++
	}
	if _, _, ok := peerB.GetLocal("cfg:aaaa000011112222"); ok {
		onA++
	}
	if onA != 1 {
		t.Fatalf("entry resident on %d peers, want 1", onA)
	}
}

func TestReplicatorRejectsUnverifiablePulls(t *testing.T) {
	local := memStore(16)
	key := "cfg:aaaa000011112222"
	corrupt := testEntry(key, 1)
	corrupt.Digest = "0000000000000000000000000000000000000000000000000000000000000000"

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/store/manifest", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(manifestReply{State: StateOK, Entries: []ManifestEntry{{Key: key, Digest: corrupt.Digest}}})
	})
	mux.HandleFunc("GET /v1/result/{key}", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(corrupt)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r := NewReplicator(local, ReplicateConfig{Peers: []string{ts.URL}, Pace: -1})
	rep := r.SyncOnce(context.Background())
	if rep.Pulled != 0 || rep.PullErrors != 1 {
		t.Fatalf("sync report = %+v, want 0 pulls, 1 pull error", rep)
	}
	if _, _, ok := local.GetLocal(key); ok {
		t.Fatal("an unverifiable pull landed in the local store")
	}
}

func TestReplicatorSkipsDeadPeers(t *testing.T) {
	local := memStore(16)
	live := memStore(16)
	live.Put(testEntry("cfg:aaaa000011112222", 1))
	tsLive := tieredPeerServer(t, live)
	tsDead := httptest.NewServer(http.NotFoundHandler())
	deadURL := tsDead.URL
	tsDead.Close() // connection refused from here on

	r := NewReplicator(local, ReplicateConfig{Peers: []string{deadURL, tsLive.URL}, Pace: -1})
	rep := r.SyncOnce(context.Background())
	if rep.PeerErrors != 1 || rep.PeersSeen != 1 {
		t.Fatalf("sync report = %+v, want 1 peer error, 1 seen", rep)
	}
	if rep.Pulled != 1 {
		t.Fatalf("Pulled = %d, want 1 from the live peer", rep.Pulled)
	}
}

func TestReplicatorCancellation(t *testing.T) {
	local := memStore(16)
	peer := memStore(16)
	peer.Put(testEntry("cfg:aaaa000011112222", 1))
	ts := tieredPeerServer(t, peer)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewReplicator(local, ReplicateConfig{Peers: []string{ts.URL}, Pace: -1})
	rep := r.SyncOnce(ctx)
	if rep.Pulled != 0 {
		t.Fatalf("cancelled sync still pulled %d entries", rep.Pulled)
	}
}
