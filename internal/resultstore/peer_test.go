package resultstore

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// peerServer serves /v1/result/{key} from a canned map, the way
// smtsimd does.
func peerServer(t *testing.T, entries map[string]*Entry, requests *atomic.Int64) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/result/{key}", func(w http.ResponseWriter, r *http.Request) {
		if requests != nil {
			requests.Add(1)
		}
		e, ok := entries[r.PathValue("key")]
		if !ok {
			http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(e)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestPeerLookupFirstVerifiedHitWins(t *testing.T) {
	e := testEntry("cfg:9999aaaabbbbcccc", 1)
	empty := peerServer(t, nil, nil)
	full := peerServer(t, map[string]*Entry{e.Key: e}, nil)

	p := NewPeerClient(PeerConfig{Peers: []string{empty, full}})
	got, ok := p.Lookup(context.Background(), e.Key)
	if !ok || got.Digest != e.Digest {
		t.Fatalf("Lookup = (%v, %v), want the stored entry", got, ok)
	}
	if p.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", p.Hits())
	}
}

func TestPeerLookupRejectsUnverifiableEntry(t *testing.T) {
	e := testEntry("cfg:dddd0000eeee1111", 2)
	lie := *e
	lie.Result.AggregateIPC *= 2 // digest no longer matches
	peer := peerServer(t, map[string]*Entry{e.Key: &lie}, nil)

	p := NewPeerClient(PeerConfig{Peers: []string{peer}})
	if _, ok := p.Lookup(context.Background(), e.Key); ok {
		t.Fatal("Lookup served an entry whose digest does not verify")
	}
	if p.Errors() == 0 {
		t.Fatal("unverifiable entry not counted as an error")
	}
}

func TestPeerNegativeLookupShortCircuits(t *testing.T) {
	var requests atomic.Int64
	peer := peerServer(t, nil, &requests)
	p := NewPeerClient(PeerConfig{Peers: []string{peer}})

	key := "cfg:2222333344445555"
	for i := 0; i < 3; i++ {
		if _, ok := p.Lookup(context.Background(), key); ok {
			t.Fatal("phantom hit")
		}
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("peer asked %d times, want 1 (negative cache short-circuit)", got)
	}
	if p.NegativeSkips() != 2 {
		t.Fatalf("NegativeSkips = %d, want 2", p.NegativeSkips())
	}

	p.Forget(key)
	p.Lookup(context.Background(), key)
	if got := requests.Load(); got != 2 {
		t.Fatalf("Forget did not reopen the key: %d requests", got)
	}
}

// TestPeerLookupSurvivesDeadAndSlowPeers is the chaos-tolerance
// contract: a dead peer and a hanging peer must cost at most the
// lookup timeout, and a healthy peer alongside them still answers.
func TestPeerLookupSurvivesDeadAndSlowPeers(t *testing.T) {
	e := testEntry("cfg:6666777788889999", 3)
	healthy := peerServer(t, map[string]*Entry{e.Key: e}, nil)

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused

	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)

	p := NewPeerClient(PeerConfig{
		Peers:   []string{dead.URL, hang.URL, healthy},
		Timeout: 2 * time.Second,
	})
	start := time.Now()
	got, ok := p.Lookup(context.Background(), e.Key)
	if !ok || got.Digest != e.Digest {
		t.Fatal("healthy peer's entry lost among the chaos")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("lookup took %s: a hanging peer must not stall a hit", elapsed)
	}

	// All peers broken: a miss, bounded by the timeout, not a hang.
	pBroken := NewPeerClient(PeerConfig{Peers: []string{dead.URL, hang.URL}, Timeout: 200 * time.Millisecond})
	start = time.Now()
	if _, ok := pBroken.Lookup(context.Background(), e.Key); ok {
		t.Fatal("hit from broken peers")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("broken-pool lookup took %s, want ~timeout", elapsed)
	}
}
