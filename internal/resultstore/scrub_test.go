package resultstore

import (
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// mapLookup is a fake repair source: a fixed key→entry map.
type mapLookup struct{ m map[string]*Entry }

func (l mapLookup) Lookup(_ context.Context, key string) (*Entry, bool) {
	e, ok := l.m[key]
	return e, ok
}

// rotFile flips one bit in the middle of a stored entry file,
// simulating media bit rot under a valid name.
func rotFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanStoreIsNoop(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), DiskOptions{})
	defer d.Close()
	st := NewTiered(NewMemory(8), d, nil)
	keys := []string{"cfg:aaaa000011112222", "cfg:bbbb000011112222", "cfg:cccc000011112222"}
	for i, k := range keys {
		st.Put(testEntry(k, i+1))
	}
	s := NewScrubber(st, ScrubConfig{Pace: -1})
	rep := s.ScrubOnce(context.Background())
	if rep.Scanned != len(keys) {
		t.Fatalf("Scanned = %d, want %d", rep.Scanned, len(keys))
	}
	if rep.Corrupt != 0 || rep.Repaired != 0 || rep.RepairFailed != 0 || rep.Recovered {
		t.Fatalf("clean store scrub was not a no-op: %+v", rep)
	}
	if d.Quarantines() != 0 {
		t.Fatalf("clean scrub quarantined %d files", d.Quarantines())
	}
}

func TestScrubDetectsQuarantinesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, DiskOptions{})
	defer d.Close()
	st := NewTiered(NewMemory(8), d, nil)
	good := testEntry("cfg:aaaa000011112222", 1)
	bad := testEntry("cfg:bbbb000011112222", 2)
	st.Put(good)
	st.Put(bad)
	// The rotted entry must not be rescued from RAM: drop it from the
	// memory tier so the repair has to come from the peer source.
	st.Memory().Remove(bad.Key)
	rotFile(t, filepath.Join(dir, fileFromKey(bad.Key)))

	src := mapLookup{m: map[string]*Entry{bad.Key: testEntry(bad.Key, 2)}}
	s := NewScrubber(st, ScrubConfig{Pace: -1, Source: src})
	rep := s.ScrubOnce(context.Background())
	if rep.Corrupt != 1 || rep.Repaired != 1 || rep.RepairFailed != 0 {
		t.Fatalf("scrub report = %+v, want 1 corrupt, 1 repaired", rep)
	}
	if d.Quarantines() != 1 {
		t.Fatalf("Quarantines = %d, want 1", d.Quarantines())
	}
	// The repaired entry serves from disk again, byte-identical.
	got, ok := d.Get(bad.Key)
	if !ok || got.Digest != bad.Digest {
		t.Fatal("repaired entry does not serve from disk")
	}
	// The quarantined original is kept for inspection.
	qfiles, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qfiles) != 1 {
		t.Fatalf("quarantine dir has %d files (err %v), want 1", len(qfiles), err)
	}
	// A second pass over the healed store is a no-op.
	rep2 := s.ScrubOnce(context.Background())
	if rep2.Corrupt != 0 {
		t.Fatalf("second scrub found %d corrupt entries in a healed store", rep2.Corrupt)
	}
}

func TestScrubRepairFailedWithoutSource(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, DiskOptions{})
	defer d.Close()
	st := NewTiered(NewMemory(8), d, nil)
	bad := testEntry("cfg:bbbb000011112222", 2)
	st.Put(bad)
	st.Memory().Remove(bad.Key)
	rotFile(t, filepath.Join(dir, fileFromKey(bad.Key)))

	s := NewScrubber(st, ScrubConfig{Pace: -1})
	rep := s.ScrubOnce(context.Background())
	if rep.Corrupt != 1 || rep.RepairFailed != 1 || rep.Repaired != 0 {
		t.Fatalf("scrub report = %+v, want 1 corrupt, 1 repair-failed", rep)
	}
	// The entry is gone (quarantined); the next Get is a clean miss that
	// will re-simulate.
	if _, ok := d.Get(bad.Key); ok {
		t.Fatal("corrupt entry still serves after scrub")
	}
}

func TestScrubReArmsDegradedTier(t *testing.T) {
	clock := newFakeClock()
	faults := &faultControls{}
	d := openTestDisk(t, t.TempDir(), DiskOptions{Ops: faults.ops(), Now: clock.Now, RecoveryInterval: time.Hour})
	defer d.Close()
	st := NewTiered(NewMemory(8), d, nil)
	st.Put(testEntry("cfg:aaaa000011112222", 1))

	faults.setWrite(syscall.ENOSPC)
	d.Put(testEntry("cfg:bbbb000011112222", 2))
	if d.State() != DiskReadOnly {
		t.Fatalf("state = %v, want readonly", d.State())
	}

	s := NewScrubber(st, ScrubConfig{Pace: -1})
	// Fault persists: the pass runs but cannot re-arm.
	if rep := s.ScrubOnce(context.Background()); rep.Recovered {
		t.Fatal("scrub re-armed a tier whose fault persists")
	}
	// Fault cleared: the next pass re-arms eagerly, ignoring the lazy
	// recovery interval.
	faults.setWrite(nil)
	rep := s.ScrubOnce(context.Background())
	if !rep.Recovered {
		t.Fatal("scrub did not re-arm the healed tier")
	}
	if d.State() != DiskOK {
		t.Fatalf("state after scrub recovery = %v, want ok", d.State())
	}
}

func TestScrubberStartStop(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), DiskOptions{})
	defer d.Close()
	st := NewTiered(NewMemory(8), d, nil)
	s := NewScrubber(st, ScrubConfig{Interval: time.Hour})
	s.Start()
	s.Stop()
	s.Stop() // idempotent
}
