package resultstore

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// fakeClock is a settable clock for exercising the recovery interval
// without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// faultOps builds a DiskOps whose CreateTemp (write path) and ReadFile
// (read path) fail with the errors currently set on the returned
// controls. A nil error passes through to the real filesystem.
type faultControls struct {
	mu       sync.Mutex
	writeErr error
	readErr  error
}

func (f *faultControls) setWrite(err error) {
	f.mu.Lock()
	f.writeErr = err
	f.mu.Unlock()
}

func (f *faultControls) setRead(err error) {
	f.mu.Lock()
	f.readErr = err
	f.mu.Unlock()
}

func (f *faultControls) ops() *DiskOps {
	return &DiskOps{
		CreateTemp: func(dir, pattern string) (*os.File, error) {
			f.mu.Lock()
			err := f.writeErr
			f.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("injected create: %w", err)
			}
			return os.CreateTemp(dir, pattern)
		},
		ReadFile: func(name string) ([]byte, error) {
			f.mu.Lock()
			err := f.readErr
			f.mu.Unlock()
			// The index file is exempt so OpenDisk under an injected read
			// fault still exercises the entry path, not startup.
			if err != nil && !strings.HasSuffix(name, indexFile) {
				return nil, fmt.Errorf("injected read: %w", err)
			}
			return os.ReadFile(name)
		},
	}
}

// TestWriteFaultClassification drives the put path through each
// classified write fault and asserts the tier trips to DiskReadOnly,
// keeps serving reads, refuses writes with ErrDegraded, and re-arms
// after the recovery interval once the fault clears.
func TestWriteFaultClassification(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		degrades bool
	}{
		{"enospc", syscall.ENOSPC, true},
		{"edquot", syscall.EDQUOT, true},
		{"erofs", syscall.EROFS, true},
		{"permission", os.ErrPermission, true},
		{"transient", errors.New("flaky but unclassified"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			faults := &faultControls{}
			d := openTestDisk(t, t.TempDir(), DiskOptions{
				Ops:              faults.ops(),
				Now:              clock.Now,
				RecoveryInterval: 10 * time.Second,
			})
			defer d.Close()

			resident := testEntry("cfg:aaaa000011112222", 1)
			if err := d.Put(resident); err != nil {
				t.Fatal(err)
			}

			faults.setWrite(tc.err)
			err := d.Put(testEntry("cfg:bbbb000011112222", 2))
			if err == nil {
				t.Fatal("Put under an injected write fault succeeded")
			}

			if !tc.degrades {
				if got := d.State(); got != DiskOK {
					t.Fatalf("state after unclassified error = %v, want ok", got)
				}
				if d.WriteFaults() != 0 {
					t.Fatalf("WriteFaults = %d for unclassified error, want 0", d.WriteFaults())
				}
				return
			}

			if got := d.State(); got != DiskReadOnly {
				t.Fatalf("state after %v = %v, want readonly", tc.err, got)
			}
			if d.StateReason() == "" {
				t.Fatal("degraded tier reports no state reason")
			}
			if d.WriteFaults() != 1 {
				t.Fatalf("WriteFaults = %d, want 1", d.WriteFaults())
			}

			// Readonly still serves existing entries.
			if _, ok := d.Get(resident.Key); !ok {
				t.Fatal("readonly tier stopped serving a resident entry")
			}

			// Before the recovery interval elapses, writes are refused
			// with ErrDegraded without touching the filesystem.
			if err := d.Put(testEntry("cfg:cccc000011112222", 3)); !errors.Is(err, ErrDegraded) {
				t.Fatalf("Put while degraded = %v, want ErrDegraded", err)
			}
			if d.DegradedPuts() != 1 {
				t.Fatalf("DegradedPuts = %d, want 1", d.DegradedPuts())
			}

			// Fault cleared but interval not elapsed: still degraded.
			faults.setWrite(nil)
			if err := d.Put(testEntry("cfg:dddd000011112222", 4)); !errors.Is(err, ErrDegraded) {
				t.Fatalf("Put before the recovery interval = %v, want ErrDegraded", err)
			}

			// Interval elapsed: the lazy probe re-arms and the put lands.
			clock.Advance(11 * time.Second)
			if err := d.Put(testEntry("cfg:eeee000011112222", 5)); err != nil {
				t.Fatalf("Put after recovery = %v", err)
			}
			if got := d.State(); got != DiskOK {
				t.Fatalf("state after recovery = %v, want ok", got)
			}
			if d.Recoveries() != 1 {
				t.Fatalf("Recoveries = %d, want 1", d.Recoveries())
			}
			if d.StateReason() != "" {
				t.Fatalf("recovered tier still reports reason %q", d.StateReason())
			}
		})
	}
}

// TestReadFaultClassification drives the get path through classified
// read faults (tier goes offline, nothing served) and unclassified ones
// (per-entry miss, tier stays ok), then exercises the offline recovery
// rescan.
func TestReadFaultClassification(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		degrades bool
	}{
		{"eio", syscall.EIO, true},
		{"permission", os.ErrPermission, true},
		{"enoent", os.ErrNotExist, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			faults := &faultControls{}
			d := openTestDisk(t, t.TempDir(), DiskOptions{
				Ops:              faults.ops(),
				Now:              clock.Now,
				RecoveryInterval: 10 * time.Second,
			})
			defer d.Close()

			e := testEntry("cfg:aaaa000011112222", 1)
			if err := d.Put(e); err != nil {
				t.Fatal(err)
			}

			faults.setRead(tc.err)
			if _, ok := d.Get(e.Key); ok {
				t.Fatal("Get under an injected read fault served an entry")
			}

			if !tc.degrades {
				if got := d.State(); got != DiskOK {
					t.Fatalf("state after unclassified read error = %v, want ok", got)
				}
				return
			}

			if got := d.State(); got != DiskOffline {
				t.Fatalf("state after %v = %v, want offline", tc.err, got)
			}
			if d.ReadFaults() != 1 {
				t.Fatalf("ReadFaults = %d, want 1", d.ReadFaults())
			}
			if m := d.Manifest(); m != nil {
				t.Fatalf("offline tier advertised %d entries", len(m))
			}

			// Offline short-circuits: no filesystem touch, counted.
			if _, ok := d.Get(e.Key); ok {
				t.Fatal("offline tier served an entry")
			}
			if d.DegradedGets() == 0 {
				t.Fatal("offline Get was not counted as degraded")
			}

			// Recovery rescans the directory: the entry written before the
			// fault is serving again without a re-put.
			faults.setRead(nil)
			clock.Advance(11 * time.Second)
			got, ok := d.Get(e.Key)
			if !ok || got.Digest != e.Digest {
				t.Fatal("recovered tier did not rescan the surviving entry")
			}
			if d.State() != DiskOK {
				t.Fatalf("state after recovery = %v, want ok", d.State())
			}
			if d.Recoveries() != 1 {
				t.Fatalf("Recoveries = %d, want 1", d.Recoveries())
			}
		})
	}
}

// TestSeverityNeverDowngrades checks that a write fault observed while
// the tier is offline does not soften the state to readonly.
func TestSeverityNeverDowngrades(t *testing.T) {
	clock := newFakeClock()
	faults := &faultControls{}
	d := openTestDisk(t, t.TempDir(), DiskOptions{
		Ops:              faults.ops(),
		Now:              clock.Now,
		RecoveryInterval: time.Hour,
	})
	defer d.Close()
	e := testEntry("cfg:aaaa000011112222", 1)
	if err := d.Put(e); err != nil {
		t.Fatal(err)
	}
	faults.setRead(syscall.EIO)
	d.Get(e.Key)
	if d.State() != DiskOffline {
		t.Fatalf("state = %v, want offline", d.State())
	}
	d.trip(DiskReadOnly, syscall.ENOSPC)
	if d.State() != DiskOffline {
		t.Fatalf("offline tier downgraded to %v on a write fault", d.State())
	}
}

// TestTryRecoverProbesImmediately checks the scrubber's eager recovery
// path ignores the lazy interval.
func TestTryRecoverProbesImmediately(t *testing.T) {
	clock := newFakeClock()
	faults := &faultControls{}
	d := openTestDisk(t, t.TempDir(), DiskOptions{
		Ops:              faults.ops(),
		Now:              clock.Now,
		RecoveryInterval: time.Hour,
	})
	defer d.Close()
	faults.setWrite(syscall.ENOSPC)
	d.Put(testEntry("cfg:aaaa000011112222", 1))
	if d.State() != DiskReadOnly {
		t.Fatalf("state = %v, want readonly", d.State())
	}
	if d.TryRecover() {
		t.Fatal("TryRecover succeeded while the fault persists")
	}
	faults.setWrite(nil)
	if !d.TryRecover() {
		t.Fatal("TryRecover failed after the fault cleared")
	}
	if d.State() != DiskOK {
		t.Fatalf("state = %v, want ok", d.State())
	}
}

// TestQuarantineBound checks the quarantine directory ages out its
// oldest files past the byte cap, including at startup scan.
func TestQuarantineBound(t *testing.T) {
	dir := t.TempDir()
	qdir := dir + "/" + quarantineDir
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Three 40-byte files, distinct mtimes; a 100-byte cap keeps two.
	base := time.Unix(1_700_000_000, 0)
	for i, name := range []string{"oldest.json", "middle.json", "newest.json"} {
		path := qdir + "/" + name
		if err := os.WriteFile(path, make([]byte, 40), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	d := openTestDisk(t, dir, DiskOptions{QuarantineMaxBytes: 100})
	defer d.Close()

	if d.QuarantineDrops() != 1 {
		t.Fatalf("QuarantineDrops = %d, want 1", d.QuarantineDrops())
	}
	if _, err := os.Stat(qdir + "/oldest.json"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("oldest quarantined file survived the byte cap")
	}
	for _, name := range []string{"middle.json", "newest.json"} {
		if _, err := os.Stat(qdir + "/" + name); err != nil {
			t.Fatalf("%s aged out but fits the cap: %v", name, err)
		}
	}
}

// TestTieredState maps disk states to the store-level serving states
// /healthz reports.
func TestTieredState(t *testing.T) {
	if got := (*Tiered)(nil).State(); got != StateMemoryOnly {
		t.Fatalf("nil store state = %q, want memory-only", got)
	}
	if got := NewTiered(NewMemory(4), nil, nil).State(); got != StateMemoryOnly {
		t.Fatalf("diskless store state = %q, want memory-only", got)
	}

	faults := &faultControls{}
	clock := newFakeClock()
	d := openTestDisk(t, t.TempDir(), DiskOptions{Ops: faults.ops(), Now: clock.Now, RecoveryInterval: time.Hour})
	defer d.Close()
	st := NewTiered(NewMemory(4), d, nil)
	if got := st.State(); got != StateOK {
		t.Fatalf("healthy store state = %q, want ok", got)
	}
	faults.setWrite(syscall.ENOSPC)
	d.Put(testEntry("cfg:aaaa000011112222", 1))
	if got := st.State(); got != StateReadOnly {
		t.Fatalf("readonly store state = %q, want readonly", got)
	}
	d.trip(DiskOffline, syscall.EIO)
	if got := st.State(); got != StateMemoryOnly {
		t.Fatalf("offline store state = %q, want memory-only", got)
	}
}
