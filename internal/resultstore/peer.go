package resultstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultPeerTimeout bounds one whole peer lookup when the caller
// passes no budget. Peer lookups are an optimization on the way to a
// simulation, so the default is deliberately tight: a slow peer must
// never cost more than the simulation it would have saved. Deployments
// with slower networks raise it (-peer-timeout on smtsimd and
// adts-sweep).
const DefaultPeerTimeout = 500 * time.Millisecond

// PeerConfig tunes a PeerClient. Zero values select the documented
// defaults.
type PeerConfig struct {
	// Peers are smtsimd base URLs to consult (already normalized; the
	// fleet client passes its backend pool).
	Peers []string
	// Timeout bounds one whole lookup (all peers, in parallel); <= 0
	// selects DefaultPeerTimeout.
	Timeout time.Duration
	// HTTPClient overrides the transport; nil selects a dedicated
	// client.
	HTTPClient *http.Client
}

// PeerClient is the tier-2 read path: GET /v1/result/{key} against
// every peer in parallel, first verified hit wins. Keys that every
// peer missed are remembered (negative-lookup short-circuit) so a
// sweep full of new configs pays the peer round-trip once per key, not
// once per retry. All failures — timeouts, resets, corrupt bodies,
// digest mismatches — are misses; chaos on the peer path can cost
// latency, never correctness.
type PeerClient struct {
	cfg  PeerConfig
	http *http.Client

	neg sync.Map // key -> struct{}: every peer missed, don't re-ask

	hits      atomic.Int64
	misses    atomic.Int64
	negSkips  atomic.Int64
	errsTotal atomic.Int64
}

// NewPeerClient builds a tier-2 lookup client over the given peers.
func NewPeerClient(cfg PeerConfig) *PeerClient {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultPeerTimeout
	}
	c := &PeerClient{cfg: cfg, http: cfg.HTTPClient}
	if c.http == nil {
		c.http = &http.Client{}
	}
	return c
}

// Lookup implements PeerLookup: it asks every peer for the key in
// parallel and returns the first entry that digest-verifies. A key no
// peer had is negative-cached and short-circuits future lookups.
func (p *PeerClient) Lookup(ctx context.Context, key string) (*Entry, bool) {
	if len(p.cfg.Peers) == 0 || !ValidKey(key) {
		return nil, false
	}
	if _, known := p.neg.Load(key); known {
		p.negSkips.Add(1)
		return nil, false
	}

	lctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()

	results := make(chan *Entry, len(p.cfg.Peers))
	var wg sync.WaitGroup
	for _, peer := range p.cfg.Peers {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			results <- p.fetch(lctx, base, key)
		}(peer)
	}
	go func() { wg.Wait(); close(results) }()

	for e := range results {
		if e != nil {
			cancel() // losers are abandoned
			p.hits.Add(1)
			return e, true
		}
	}
	p.misses.Add(1)
	p.neg.Store(key, struct{}{})
	return nil, false
}

// fetch asks one peer; any failure is a nil (miss).
func (p *PeerClient) fetch(ctx context.Context, base, key string) *Entry {
	e, err := getEntry(ctx, p.http, base, key)
	if err != nil {
		if !errors.Is(err, errPeerMiss) && ctx.Err() == nil {
			p.errsTotal.Add(1)
		}
		return nil
	}
	return e
}

// errPeerMiss marks a clean non-200 from a peer (usually 404): the
// peer answered, it just does not have the key. Distinct from
// transport and verification failures so callers can count real errors.
var errPeerMiss = errors.New("resultstore: peer does not have the key")

// getEntry GETs one entry from one peer's /v1/result/{key} and
// digest-verifies it before returning. Shared by the lookup client and
// the replicator; every byte crossing the fleet passes through this
// verification regardless of which subsystem asked for it.
func getEntry(ctx context.Context, hc *http.Client, base, key string) (*Entry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/result/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil, errPeerMiss
	}
	var e Entry
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&e); err != nil {
		return nil, err
	}
	if e.Key != key || !e.Verify() {
		return nil, fmt.Errorf("resultstore: peer %s served unverifiable entry for %s", base, key)
	}
	return &e, nil
}

// Forget drops a key from the negative cache (a peer may have it now).
// The scrubber's repair path calls it before re-asking the fleet for a
// key whose local copy just rotted.
func (p *PeerClient) Forget(key string) { p.neg.Delete(key) }

// Timeout reports the configured per-lookup budget (surfaced in
// /healthz as peer_timeout_ms).
func (p *PeerClient) Timeout() time.Duration { return p.cfg.Timeout }

// Peers reports the configured peer base URLs.
func (p *PeerClient) Peers() []string { return p.cfg.Peers }

// Hits reports verified peer hits.
func (p *PeerClient) Hits() int64 { return p.hits.Load() }

// Misses reports completed lookups where no peer had the key.
func (p *PeerClient) Misses() int64 { return p.misses.Load() }

// NegativeSkips reports lookups short-circuited by the negative cache.
func (p *PeerClient) NegativeSkips() int64 { return p.negSkips.Load() }

// Errors reports individual peer requests that failed or returned
// unverifiable bytes.
func (p *PeerClient) Errors() int64 { return p.errsTotal.Load() }
