package resultstore

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// PeerConfig tunes a PeerClient. Zero values select the documented
// defaults.
type PeerConfig struct {
	// Peers are smtsimd base URLs to consult (already normalized; the
	// fleet client passes its backend pool).
	Peers []string
	// Timeout bounds one whole lookup (all peers, in parallel); <= 0
	// selects 500ms. Peer lookups are an optimization on the way to a
	// simulation, so the budget is deliberately tight: a slow peer must
	// never cost more than the simulation it would have saved.
	Timeout time.Duration
	// HTTPClient overrides the transport; nil selects a dedicated
	// client.
	HTTPClient *http.Client
}

// PeerClient is the tier-2 read path: GET /v1/result/{key} against
// every peer in parallel, first verified hit wins. Keys that every
// peer missed are remembered (negative-lookup short-circuit) so a
// sweep full of new configs pays the peer round-trip once per key, not
// once per retry. All failures — timeouts, resets, corrupt bodies,
// digest mismatches — are misses; chaos on the peer path can cost
// latency, never correctness.
type PeerClient struct {
	cfg  PeerConfig
	http *http.Client

	neg sync.Map // key -> struct{}: every peer missed, don't re-ask

	hits      atomic.Int64
	misses    atomic.Int64
	negSkips  atomic.Int64
	errsTotal atomic.Int64
}

// NewPeerClient builds a tier-2 lookup client over the given peers.
func NewPeerClient(cfg PeerConfig) *PeerClient {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	c := &PeerClient{cfg: cfg, http: cfg.HTTPClient}
	if c.http == nil {
		c.http = &http.Client{}
	}
	return c
}

// Lookup implements PeerLookup: it asks every peer for the key in
// parallel and returns the first entry that digest-verifies. A key no
// peer had is negative-cached and short-circuits future lookups.
func (p *PeerClient) Lookup(ctx context.Context, key string) (*Entry, bool) {
	if len(p.cfg.Peers) == 0 || !ValidKey(key) {
		return nil, false
	}
	if _, known := p.neg.Load(key); known {
		p.negSkips.Add(1)
		return nil, false
	}

	lctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()

	results := make(chan *Entry, len(p.cfg.Peers))
	var wg sync.WaitGroup
	for _, peer := range p.cfg.Peers {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			results <- p.fetch(lctx, base, key)
		}(peer)
	}
	go func() { wg.Wait(); close(results) }()

	for e := range results {
		if e != nil {
			cancel() // losers are abandoned
			p.hits.Add(1)
			return e, true
		}
	}
	p.misses.Add(1)
	p.neg.Store(key, struct{}{})
	return nil, false
}

// fetch asks one peer; any failure is a nil (miss).
func (p *PeerClient) fetch(ctx context.Context, base, key string) *Entry {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/result/"+key, nil)
	if err != nil {
		p.errsTotal.Add(1)
		return nil
	}
	resp, err := p.http.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			p.errsTotal.Add(1)
		}
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil
	}
	var e Entry
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&e); err != nil {
		p.errsTotal.Add(1)
		return nil
	}
	if e.Key != key || !e.Verify() {
		p.errsTotal.Add(1)
		return nil
	}
	return &e
}

// Forget drops a key from the negative cache (a peer may have it now).
func (p *PeerClient) Forget(key string) { p.neg.Delete(key) }

// Hits reports verified peer hits.
func (p *PeerClient) Hits() int64 { return p.hits.Load() }

// Misses reports completed lookups where no peer had the key.
func (p *PeerClient) Misses() int64 { return p.misses.Load() }

// NegativeSkips reports lookups short-circuited by the negative cache.
func (p *PeerClient) NegativeSkips() int64 { return p.negSkips.Load() }

// Errors reports individual peer requests that failed or returned
// unverifiable bytes.
func (p *PeerClient) Errors() int64 { return p.errsTotal.Load() }
