package resultstore

import "sync/atomic"

// tierIndex maps tier names to counter slots.
func tierIndex(tier string) int {
	switch tier {
	case TierMemory:
		return 0
	case TierDisk:
		return 1
	case TierPeer:
		return 2
	}
	return -1
}

// Tiers lists the tier names in slot order, for metric exporters.
var Tiers = []string{TierMemory, TierDisk, TierPeer}

// Metrics counts per-tier traffic through a Tiered store. Hits and
// misses count tier consultations (one Get can miss several tiers
// before hitting one); PutErrors counts failed persists.
type Metrics struct {
	hits      [3]atomic.Int64
	misses    [3]atomic.Int64
	putErrors [3]atomic.Int64
}

func (m *Metrics) hit(tier string) {
	if i := tierIndex(tier); i >= 0 {
		m.hits[i].Add(1)
	}
}

func (m *Metrics) miss(tier string) {
	if i := tierIndex(tier); i >= 0 {
		m.misses[i].Add(1)
	}
}

func (m *Metrics) putError(tier string) {
	if i := tierIndex(tier); i >= 0 {
		m.putErrors[i].Add(1)
	}
}

// Hits reports consultations of the named tier that returned a
// verified entry.
func (m *Metrics) Hits(tier string) int64 {
	if i := tierIndex(tier); i >= 0 {
		return m.hits[i].Load()
	}
	return 0
}

// Misses reports consultations of the named tier that found nothing.
func (m *Metrics) Misses(tier string) int64 {
	if i := tierIndex(tier); i >= 0 {
		return m.misses[i].Load()
	}
	return 0
}

// PutErrors reports failed persists into the named tier.
func (m *Metrics) PutErrors(tier string) int64 {
	if i := tierIndex(tier); i >= 0 {
		return m.putErrors[i].Load()
	}
	return 0
}
