package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultDiskMaxBytes bounds a disk store when the caller passes no
// budget: 256 MiB, roughly 100k entries at typical result sizes.
const DefaultDiskMaxBytes = 256 << 20

// indexFile persists the access order across restarts so eviction
// stays oldest-access (not oldest-mtime) after a clean shutdown. It is
// advisory: a missing or corrupt index costs eviction precision, never
// correctness, because the directory scan is the source of truth for
// which entries exist.
const indexFile = "index.json"

// quarantineDir is where corrupt or truncated entry files are moved.
// Quarantined files are kept (not deleted) so an operator can inspect
// what went wrong; they are never re-read by the store.
const quarantineDir = "quarantine"

// tmpPrefix marks in-progress writes. A crash can strand them; startup
// sweeps them away.
const tmpPrefix = ".tmp-"

// DiskOptions tunes a disk store beyond the directory and byte budget.
type DiskOptions struct {
	// MaxBytes bounds the sum of entry file sizes; <= 0 selects
	// DefaultDiskMaxBytes. Inserting past the bound evicts
	// oldest-accessed entries first.
	MaxBytes int64
	// Log receives operational warnings (quarantined files, failed
	// evictions); nil discards them.
	Log io.Writer
	// WrapWriter, when non-nil, wraps the file handle every entry and
	// index write goes through. Tests inject chaos.Writer here to tear
	// writes mid-record; production passes nil.
	WrapWriter func(io.WriteCloser) io.WriteCloser
}

// Disk is the tier-1 store: one file per entry, named by the entry
// key, holding the entry's canonical JSON. Writes go to a temp file
// and are renamed into place, so a reader (or a crash) never observes
// a half-written entry under a valid name. Reads re-verify the result
// digest and quarantine any file that fails to parse or verify. It is
// safe for concurrent use.
type Disk struct {
	dir  string
	opts DiskOptions

	mu    sync.Mutex
	index map[string]*diskEntry
	bytes int64
	seq   int64 // monotonic access clock
	open  bool

	evictions   atomic.Int64
	quarantines atomic.Int64
	putErrors   atomic.Int64
}

type diskEntry struct {
	size   int64
	access int64 // seq of the last Get/Put; smallest evicts first
}

// persistedIndex is the on-disk shape of the access clock.
type persistedIndex struct {
	Access map[string]int64 `json:"access"`
}

// diskRecord is the on-disk envelope around an entry. The result
// digest inside the entry only covers the simulation result, so the
// envelope carries a checksum of the whole entry JSON: a bit flip
// anywhere in the file — report, request echo, digest field, or the
// checksum itself — fails verification on read.
type diskRecord struct {
	SHA256 string          `json:"sha256"`
	Entry  json.RawMessage `json:"entry"`
}

func recordSum(entryJSON []byte) string {
	sum := sha256.Sum256(entryJSON)
	return hex.EncodeToString(sum[:])
}

// OpenDisk opens (creating if needed) a tier-1 store rooted at dir.
// Startup rebuilds the index by scanning the directory: stranded temp
// files are removed, unparsable or truncated entry files are
// quarantined instead of crashing the daemon, and the persisted access
// clock (written by Close) is applied where it matches a surviving
// file.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultDiskMaxBytes
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	d := &Disk{dir: dir, opts: opts, index: make(map[string]*diskEntry), open: true}
	if err := d.scan(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	return d, nil
}

// scan rebuilds the index from the directory contents, applying the
// persisted access clock when one survives.
func (d *Disk) scan() error {
	access := d.loadIndex()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	var maxSeq int64
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || name == indexFile {
			continue
		}
		path := filepath.Join(d.dir, name)
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(path) // stranded in-progress write
			continue
		}
		key, ok := keyFromFile(name)
		if !ok {
			d.quarantine(path, "unrecognized file name")
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if info.Size() == 0 {
			d.quarantine(path, "empty (truncated write)")
			continue
		}
		// A cheap structural check: the file must parse as a record
		// whose entry key matches its name. The checksum and digest are
		// re-verified on every read, so startup stays O(store size) in
		// I/O but does not pay a SHA-256 per entry.
		var rec diskRecord
		var e Entry
		raw, err := os.ReadFile(path)
		if err != nil || json.Unmarshal(raw, &rec) != nil ||
			json.Unmarshal(rec.Entry, &e) != nil || e.Key != key {
			d.quarantine(path, "corrupt or mismatched entry")
			continue
		}
		seq := access[key]
		if seq > maxSeq {
			maxSeq = seq
		}
		d.index[key] = &diskEntry{size: info.Size(), access: seq}
		d.bytes += info.Size()
	}
	d.seq = maxSeq + 1
	return nil
}

// loadIndex reads the persisted access clock; any failure returns an
// empty clock (scan order decides eviction until accesses accrue).
func (d *Disk) loadIndex() map[string]int64 {
	raw, err := os.ReadFile(filepath.Join(d.dir, indexFile))
	if err != nil {
		return nil
	}
	var idx persistedIndex
	if err := json.Unmarshal(raw, &idx); err != nil {
		fmt.Fprintf(d.opts.Log, "resultstore: ignoring corrupt index in %s: %v\n", d.dir, err)
		return nil
	}
	return idx.Access
}

// fileFromKey maps a store key to its file name: ":" (the raw-config
// prefix separator) becomes "-", which cannot appear in a hex hash, so
// the mapping is reversible for every valid key.
func fileFromKey(key string) string {
	return strings.ReplaceAll(key, ":", "-") + ".json"
}

// keyFromFile inverts fileFromKey; ok is false for names the store
// never writes.
func keyFromFile(name string) (string, bool) {
	base, found := strings.CutSuffix(name, ".json")
	if !found || base == "" {
		return "", false
	}
	key := strings.Replace(base, "-", ":", 1)
	if !ValidKey(key) {
		return "", false
	}
	return key, true
}

// Get reads an entry, re-verifies its digest, and returns it. A file
// that fails to read, parse, or verify is quarantined and reported as
// a miss — a torn or bit-flipped store file costs one re-simulation,
// never a wrong result and never a crash.
func (d *Disk) Get(key string) (*Entry, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return nil, false
	}
	ent, ok := d.index[key]
	if !ok {
		return nil, false
	}
	path := filepath.Join(d.dir, fileFromKey(key))
	raw, err := os.ReadFile(path)
	if err != nil {
		delete(d.index, key)
		d.bytes -= ent.size
		return nil, false
	}
	var rec diskRecord
	var e Entry
	if err := json.Unmarshal(raw, &rec); err != nil ||
		recordSum(rec.Entry) != rec.SHA256 ||
		json.Unmarshal(rec.Entry, &e) != nil || e.Key != key || !e.Verify() {
		d.quarantine(path, "failed integrity verification")
		delete(d.index, key)
		d.bytes -= ent.size
		return nil, false
	}
	ent.access = d.seq
	d.seq++
	return &e, true
}

// Put writes the entry atomically: canonical JSON into a temp file,
// fsync, rename into place. Oldest-accessed entries are evicted until
// the store fits its byte budget. Entries that fail verification are
// refused — the disk tier never persists bytes it could not serve.
func (d *Disk) Put(e *Entry) error {
	if e == nil || !ValidKey(e.Key) {
		return errors.New("resultstore: invalid entry key")
	}
	if !e.Verify() {
		d.putErrors.Add(1)
		return fmt.Errorf("resultstore: refusing to persist unverifiable entry %s", e.Key)
	}
	entryJSON, err := json.Marshal(e)
	if err != nil {
		d.putErrors.Add(1)
		return fmt.Errorf("resultstore: encoding entry: %w", err)
	}
	raw, err := json.Marshal(diskRecord{SHA256: recordSum(entryJSON), Entry: entryJSON})
	if err != nil {
		d.putErrors.Add(1)
		return fmt.Errorf("resultstore: encoding record: %w", err)
	}
	raw = append(raw, '\n')
	size := int64(len(raw))
	if size > d.opts.MaxBytes {
		d.putErrors.Add(1)
		return fmt.Errorf("resultstore: entry %s (%d bytes) exceeds the store budget", e.Key, size)
	}

	if err := d.writeAtomic(fileFromKey(e.Key), raw); err != nil {
		d.putErrors.Add(1)
		return err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return errors.New("resultstore: store closed")
	}
	if old, ok := d.index[e.Key]; ok {
		d.bytes -= old.size
	}
	d.index[e.Key] = &diskEntry{size: size, access: d.seq}
	d.seq++
	d.bytes += size
	d.evictLocked()
	return nil
}

// writeAtomic lands raw at name via temp file + fsync + rename, so a
// crash mid-write strands a temp file (swept at startup) instead of a
// truncated entry under a valid name.
func (d *Disk) writeAtomic(name string, raw []byte) error {
	f, err := os.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp := f.Name()
	var w io.WriteCloser = f
	if d.opts.WrapWriter != nil {
		w = d.opts.WrapWriter(f)
	}
	if _, err := w.Write(raw); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("resultstore: writing %s: %w", name, err)
	}
	if s, ok := w.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			w.Close()
			os.Remove(tmp)
			return fmt.Errorf("resultstore: syncing %s: %w", name, err)
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultstore: closing %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// evictLocked removes oldest-accessed entries until the store fits its
// budget. Caller holds d.mu.
func (d *Disk) evictLocked() {
	if d.bytes <= d.opts.MaxBytes {
		return
	}
	type victim struct {
		key    string
		access int64
		size   int64
	}
	victims := make([]victim, 0, len(d.index))
	for k, ent := range d.index {
		victims = append(victims, victim{k, ent.access, ent.size})
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].access != victims[j].access {
			return victims[i].access < victims[j].access
		}
		return victims[i].key < victims[j].key
	})
	for _, v := range victims {
		if d.bytes <= d.opts.MaxBytes {
			break
		}
		if err := os.Remove(filepath.Join(d.dir, fileFromKey(v.key))); err != nil && !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(d.opts.Log, "resultstore: evicting %s: %v\n", v.key, err)
			continue
		}
		delete(d.index, v.key)
		d.bytes -= v.size
		d.evictions.Add(1)
	}
}

// quarantine moves a bad file aside (keeping it for inspection) and
// counts it. Failures fall back to removal: a file that can neither be
// moved nor removed would otherwise be re-quarantined forever.
func (d *Disk) quarantine(path, why string) {
	d.quarantines.Add(1)
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err == nil {
			fmt.Fprintf(d.opts.Log, "resultstore: quarantined %s: %s\n", filepath.Base(path), why)
			return
		}
	}
	os.Remove(path)
	fmt.Fprintf(d.opts.Log, "resultstore: removed unquarantinable %s: %s\n", filepath.Base(path), why)
}

// Close persists the access clock (temp file + fsync + rename, same
// crash discipline as entries) and marks the store closed. The graceful
// drain path calls it on SIGTERM so a restarted daemon evicts in true
// oldest-access order instead of directory order.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return nil
	}
	d.open = false
	idx := persistedIndex{Access: make(map[string]int64, len(d.index))}
	for k, ent := range d.index {
		idx.Access[k] = ent.access
	}
	raw, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("resultstore: encoding index: %w", err)
	}
	return d.writeAtomic(indexFile, append(raw, '\n'))
}

// Len reports resident entries.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Bytes reports resident entry bytes.
func (d *Disk) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// MaxBytes reports the configured byte budget.
func (d *Disk) MaxBytes() int64 { return d.opts.MaxBytes }

// Evictions reports entries evicted by the byte budget.
func (d *Disk) Evictions() int64 { return d.evictions.Load() }

// Quarantines reports files moved aside as corrupt or truncated.
func (d *Disk) Quarantines() int64 { return d.quarantines.Load() }

// PutErrors reports failed persist attempts.
func (d *Disk) PutErrors() int64 { return d.putErrors.Load() }

// Dir reports the store root.
func (d *Disk) Dir() string { return d.dir }
