package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// DefaultDiskMaxBytes bounds a disk store when the caller passes no
// budget: 256 MiB, roughly 100k entries at typical result sizes.
const DefaultDiskMaxBytes = 256 << 20

// DefaultQuarantineMaxBytes bounds the quarantine/ subdirectory: a
// scrub storm over a rotten store must never fill the disk the store
// is trying to protect, so quarantined files age out oldest-first past
// this cap.
const DefaultQuarantineMaxBytes = 64 << 20

// DefaultRecoveryInterval is how long a degraded disk tier waits before
// lazily re-probing the filesystem on the next Put/Get. Scrub passes
// probe eagerly regardless (see Scrubber).
const DefaultRecoveryInterval = 30 * time.Second

// indexFile persists the access order across restarts so eviction
// stays oldest-access (not oldest-mtime) after a clean shutdown. It is
// advisory: a missing or corrupt index costs eviction precision, never
// correctness, because the directory scan is the source of truth for
// which entries exist.
const indexFile = "index.json"

// quarantineDir is where corrupt or truncated entry files are moved.
// Quarantined files are kept (not deleted) so an operator can inspect
// what went wrong; they are never re-read by the store, and the
// directory is byte-bounded (oldest files age out) so quarantining can
// never fill the disk.
const quarantineDir = "quarantine"

// tmpPrefix marks in-progress writes. A crash can strand them; startup
// sweeps them away.
const tmpPrefix = ".tmp-"

// DiskState is the disk tier's health state. The tier degrades instead
// of failing: classified filesystem faults trip it into a reduced mode
// that keeps every request answerable, and a successful recovery probe
// re-arms it.
type DiskState int32

const (
	// DiskOK: reads and writes both served.
	DiskOK DiskState = iota
	// DiskReadOnly: a write fault (ENOSPC, EDQUOT, EROFS, permission)
	// tripped the tier. Existing entries are still served; new entries
	// are refused with ErrDegraded and live only in the memory tier.
	DiskReadOnly
	// DiskOffline: a read fault (EIO, permission) tripped the tier.
	// Nothing is served or written; the store behaves memory-only until
	// a recovery probe succeeds and the directory is rescanned.
	DiskOffline
)

func (s DiskState) String() string {
	switch s {
	case DiskOK:
		return "ok"
	case DiskReadOnly:
		return "readonly"
	case DiskOffline:
		return "offline"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrDegraded reports an operation refused because the disk tier is in
// a degraded state. It is a refusal, not a failure: the tiered store
// keeps serving from memory (and peers) while the tier is down.
var ErrDegraded = errors.New("resultstore: disk tier degraded")

// ErrCorrupt reports a stored entry that failed integrity verification
// and was quarantined (returned by Check; the Get path reports such
// entries as plain misses).
var ErrCorrupt = errors.New("resultstore: entry failed integrity verification")

// DiskOps is the seam over the os calls the disk tier makes. Tests
// inject failing implementations to drive the degraded-state machine
// (ENOSPC, EROFS, permission) without needing a hostile filesystem;
// nil fields select the real os functions.
type DiskOps struct {
	CreateTemp func(dir, pattern string) (*os.File, error)
	Rename     func(oldpath, newpath string) error
	Remove     func(name string) error
	ReadFile   func(name string) ([]byte, error)
	ReadDir    func(name string) ([]os.DirEntry, error)
	MkdirAll   func(path string, perm os.FileMode) error
}

func (o DiskOps) withDefaults() DiskOps {
	if o.CreateTemp == nil {
		o.CreateTemp = os.CreateTemp
	}
	if o.Rename == nil {
		o.Rename = os.Rename
	}
	if o.Remove == nil {
		o.Remove = os.Remove
	}
	if o.ReadFile == nil {
		o.ReadFile = os.ReadFile
	}
	if o.ReadDir == nil {
		o.ReadDir = os.ReadDir
	}
	if o.MkdirAll == nil {
		o.MkdirAll = os.MkdirAll
	}
	return o
}

// isWriteFault classifies errors that mean "the disk cannot accept new
// bytes" — full, quota-exhausted, remounted read-only, or permission
// lost. These trip the tier to DiskReadOnly; anything else is treated
// as a transient per-entry failure.
func isWriteFault(err error) bool {
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EDQUOT) ||
		errors.Is(err, syscall.EROFS) ||
		errors.Is(err, os.ErrPermission)
}

// isReadFault classifies errors that mean "the disk cannot serve
// existing bytes" — I/O errors (dying media) or permission lost. These
// trip the tier to DiskOffline. A missing file is NOT a read fault:
// it is an index staleness handled per entry.
func isReadFault(err error) bool {
	return errors.Is(err, syscall.EIO) || errors.Is(err, os.ErrPermission)
}

// DiskOptions tunes a disk store beyond the directory and byte budget.
type DiskOptions struct {
	// MaxBytes bounds the sum of entry file sizes; <= 0 selects
	// DefaultDiskMaxBytes. Inserting past the bound evicts
	// oldest-accessed entries first.
	MaxBytes int64
	// QuarantineMaxBytes bounds the quarantine/ subdirectory; <= 0
	// selects DefaultQuarantineMaxBytes. Oldest quarantined files are
	// removed past the cap, at startup and on every quarantine.
	QuarantineMaxBytes int64
	// RecoveryInterval is how long a degraded tier waits before lazily
	// re-probing the filesystem on the next operation; <= 0 selects
	// DefaultRecoveryInterval. TryRecover probes immediately regardless.
	RecoveryInterval time.Duration
	// Log receives operational warnings (quarantined files, failed
	// evictions, state transitions); nil discards them.
	Log io.Writer
	// WrapWriter, when non-nil, wraps the file handle every entry and
	// index write goes through. Tests inject chaos.Writer here to tear
	// writes mid-record (or chaos.NewDiskFull to fill the disk);
	// production passes nil.
	WrapWriter func(io.WriteCloser) io.WriteCloser
	// Ops overrides individual os calls (see DiskOps); nil selects the
	// real filesystem.
	Ops *DiskOps
	// Now overrides the clock used for recovery pacing (tests); nil
	// selects time.Now.
	Now func() time.Time
}

// Disk is the tier-1 store: one file per entry, named by the entry
// key, holding the entry's canonical JSON. Writes go to a temp file
// and are renamed into place, so a reader (or a crash) never observes
// a half-written entry under a valid name. Reads re-verify the result
// digest and quarantine any file that fails to parse or verify.
//
// The tier is self-protecting: classified filesystem faults trip a
// state machine (DiskOK → DiskReadOnly/DiskOffline) instead of failing
// every request, and recovery probes re-arm it when the fault clears.
// It is safe for concurrent use.
type Disk struct {
	dir  string
	opts DiskOptions
	ops  DiskOps
	now  func() time.Time

	mu    sync.Mutex
	index map[string]*diskEntry
	bytes int64
	seq   int64 // monotonic access clock
	open  bool

	// stateMu serializes state transitions and recovery probes. Lock
	// ordering: stateMu may take mu (recovery rescan); mu must never
	// take stateMu — paths that detect faults under mu trip after
	// releasing it.
	stateMu     sync.Mutex
	state       atomic.Int32 // DiskState
	stateReason atomic.Value // string: last trip cause, "" when ok
	trippedAt   atomic.Int64 // unixnano of the last trip / failed probe

	evictions       atomic.Int64
	quarantines     atomic.Int64
	quarantineDrops atomic.Int64 // quarantined files aged out by the byte cap
	putErrors       atomic.Int64
	writeFaults     atomic.Int64 // classified write faults (tripped or re-tripped readonly)
	readFaults      atomic.Int64 // classified read faults (tripped or re-tripped offline)
	degradedPuts    atomic.Int64 // puts refused while degraded
	degradedGets    atomic.Int64 // gets refused while offline
	transitions     atomic.Int64 // state changes, both trips and recoveries
	recoveries      atomic.Int64 // successful re-arms back to DiskOK
}

type diskEntry struct {
	size   int64
	access int64  // seq of the last Get/Put; smallest evicts first
	digest string // entry result digest, for manifest exchange
}

// persistedIndex is the on-disk shape of the access clock.
type persistedIndex struct {
	Access map[string]int64 `json:"access"`
}

// diskRecord is the on-disk envelope around an entry. The result
// digest inside the entry only covers the simulation result, so the
// envelope carries a checksum of the whole entry JSON: a bit flip
// anywhere in the file — report, request echo, digest field, or the
// checksum itself — fails verification on read.
type diskRecord struct {
	SHA256 string          `json:"sha256"`
	Entry  json.RawMessage `json:"entry"`
}

func recordSum(entryJSON []byte) string {
	sum := sha256.Sum256(entryJSON)
	return hex.EncodeToString(sum[:])
}

// OpenDisk opens (creating if needed) a tier-1 store rooted at dir.
// Startup rebuilds the index by scanning the directory: stranded temp
// files are removed, unparsable or truncated entry files are
// quarantined instead of crashing the daemon, and the persisted access
// clock (written by Close) is applied where it matches a surviving
// file.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultDiskMaxBytes
	}
	if opts.QuarantineMaxBytes <= 0 {
		opts.QuarantineMaxBytes = DefaultQuarantineMaxBytes
	}
	if opts.RecoveryInterval <= 0 {
		opts.RecoveryInterval = DefaultRecoveryInterval
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	d := &Disk{dir: dir, opts: opts, open: true, index: make(map[string]*diskEntry)}
	if opts.Ops != nil {
		d.ops = opts.Ops.withDefaults()
	} else {
		d.ops = DiskOps{}.withDefaults()
	}
	d.now = opts.Now
	if d.now == nil {
		d.now = time.Now
	}
	d.stateReason.Store("")
	if err := d.ops.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	return d, nil
}

// scan rebuilds the index from the directory contents, applying the
// persisted access clock when one survives. Callers hold d.mu or have
// exclusive access (OpenDisk); the index must be empty on entry.
func (d *Disk) scan() error {
	access := d.loadIndex()
	entries, err := d.ops.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	var maxSeq int64
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || name == indexFile {
			continue
		}
		path := filepath.Join(d.dir, name)
		if strings.HasPrefix(name, tmpPrefix) {
			d.ops.Remove(path) // stranded in-progress write
			continue
		}
		key, ok := keyFromFile(name)
		if !ok {
			d.quarantine(path, "unrecognized file name")
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if info.Size() == 0 {
			d.quarantine(path, "empty (truncated write)")
			continue
		}
		// A cheap structural check: the file must parse as a record
		// whose entry key matches its name. The checksum and digest are
		// re-verified on every read, so startup stays O(store size) in
		// I/O but does not pay a SHA-256 per entry.
		var rec diskRecord
		var e Entry
		raw, err := d.ops.ReadFile(path)
		if err != nil || json.Unmarshal(raw, &rec) != nil ||
			json.Unmarshal(rec.Entry, &e) != nil || e.Key != key {
			d.quarantine(path, "corrupt or mismatched entry")
			continue
		}
		seq := access[key]
		if seq > maxSeq {
			maxSeq = seq
		}
		d.index[key] = &diskEntry{size: info.Size(), access: seq, digest: e.Digest}
		d.bytes += info.Size()
	}
	d.seq = maxSeq + 1
	d.boundQuarantine()
	return nil
}

// loadIndex reads the persisted access clock; any failure returns an
// empty clock (scan order decides eviction until accesses accrue).
func (d *Disk) loadIndex() map[string]int64 {
	raw, err := d.ops.ReadFile(filepath.Join(d.dir, indexFile))
	if err != nil {
		return nil
	}
	var idx persistedIndex
	if err := json.Unmarshal(raw, &idx); err != nil {
		fmt.Fprintf(d.opts.Log, "resultstore: ignoring corrupt index in %s: %v\n", d.dir, err)
		return nil
	}
	return idx.Access
}

// fileFromKey maps a store key to its file name: ":" (the raw-config
// prefix separator) becomes "-", which cannot appear in a hex hash, so
// the mapping is reversible for every valid key.
func fileFromKey(key string) string {
	return strings.ReplaceAll(key, ":", "-") + ".json"
}

// keyFromFile inverts fileFromKey; ok is false for names the store
// never writes.
func keyFromFile(name string) (string, bool) {
	base, found := strings.CutSuffix(name, ".json")
	if !found || base == "" {
		return "", false
	}
	key := strings.Replace(base, "-", ":", 1)
	if !ValidKey(key) {
		return "", false
	}
	return key, true
}

// Get reads an entry, re-verifies its digest, and returns it. A file
// that fails to read, parse, or verify is quarantined and reported as
// a miss — a torn or bit-flipped store file costs one re-simulation,
// never a wrong result and never a crash. While the tier is offline,
// Get reports misses without touching the disk (lazily re-probing the
// filesystem once the recovery interval has elapsed).
func (d *Disk) Get(key string) (*Entry, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	if DiskState(d.state.Load()) == DiskOffline {
		if !d.maybeRecover() {
			d.degradedGets.Add(1)
			return nil, false
		}
	}
	e, tripErr, ok := d.getLocked(key)
	if tripErr != nil {
		d.readFaults.Add(1)
		d.trip(DiskOffline, tripErr)
	}
	return e, ok
}

// getLocked is the mutex-holding body of Get. It never trips the state
// machine itself (lock ordering: mu must not take stateMu); a
// classified read fault is returned for the caller to act on.
func (d *Disk) getLocked(key string) (e *Entry, tripErr error, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return nil, nil, false
	}
	ent, found := d.index[key]
	if !found {
		return nil, nil, false
	}
	path := filepath.Join(d.dir, fileFromKey(key))
	raw, err := d.ops.ReadFile(path)
	if err != nil {
		if isReadFault(err) {
			// The file is probably fine; the filesystem is sick. Keep the
			// index entry — the post-recovery rescan decides its fate.
			return nil, err, false
		}
		delete(d.index, key)
		d.bytes -= ent.size
		return nil, nil, false
	}
	var got Entry
	if !verifyRecord(raw, key, &got) {
		d.quarantine(path, "failed integrity verification")
		delete(d.index, key)
		d.bytes -= ent.size
		return nil, nil, false
	}
	ent.access = d.seq
	d.seq++
	return &got, nil, true
}

// verifyRecord checks raw against the whole-record checksum and the
// entry's result digest, decoding into e on success.
func verifyRecord(raw []byte, key string, e *Entry) bool {
	var rec diskRecord
	if err := json.Unmarshal(raw, &rec); err != nil ||
		recordSum(rec.Entry) != rec.SHA256 ||
		json.Unmarshal(rec.Entry, e) != nil || e.Key != key || !e.Verify() {
		return false
	}
	return true
}

// Check re-reads and re-verifies one entry without promoting its
// access clock — the scrubber's read path, so background integrity
// sweeps do not perturb LRU eviction order. A corrupt entry is
// quarantined and reported as ErrCorrupt (the repair path re-fetches
// it from a peer); a missing entry is os.ErrNotExist; a degraded tier
// is ErrDegraded.
func (d *Disk) Check(key string) error {
	if !ValidKey(key) {
		return os.ErrNotExist
	}
	if DiskState(d.state.Load()) == DiskOffline {
		return ErrDegraded
	}
	err, tripErr := d.checkLocked(key)
	if tripErr != nil {
		d.readFaults.Add(1)
		d.trip(DiskOffline, tripErr)
		return ErrDegraded
	}
	return err
}

func (d *Disk) checkLocked(key string) (result, tripErr error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return errors.New("resultstore: store closed"), nil
	}
	ent, ok := d.index[key]
	if !ok {
		return os.ErrNotExist, nil
	}
	path := filepath.Join(d.dir, fileFromKey(key))
	raw, err := d.ops.ReadFile(path)
	if err != nil {
		if isReadFault(err) {
			return nil, err
		}
		delete(d.index, key)
		d.bytes -= ent.size
		return os.ErrNotExist, nil
	}
	var got Entry
	if !verifyRecord(raw, key, &got) {
		d.quarantine(path, "failed integrity verification (scrub)")
		delete(d.index, key)
		d.bytes -= ent.size
		return ErrCorrupt, nil
	}
	return nil, nil
}

// Put writes the entry atomically: canonical JSON into a temp file,
// fsync, rename into place. Oldest-accessed entries are evicted until
// the store fits its byte budget. Entries that fail verification are
// refused — the disk tier never persists bytes it could not serve.
// Classified write faults (disk full, read-only remount, permission)
// trip the tier to DiskReadOnly: existing entries stay served, new
// ones are refused with ErrDegraded until a recovery probe re-arms the
// tier.
func (d *Disk) Put(e *Entry) error {
	if e == nil || !ValidKey(e.Key) {
		return errors.New("resultstore: invalid entry key")
	}
	if !e.Verify() {
		d.putErrors.Add(1)
		return fmt.Errorf("resultstore: refusing to persist unverifiable entry %s", e.Key)
	}
	if DiskState(d.state.Load()) != DiskOK {
		if !d.maybeRecover() {
			d.degradedPuts.Add(1)
			return fmt.Errorf("%w (%s): not persisting %s", ErrDegraded, DiskState(d.state.Load()), e.Key)
		}
	}
	entryJSON, err := json.Marshal(e)
	if err != nil {
		d.putErrors.Add(1)
		return fmt.Errorf("resultstore: encoding entry: %w", err)
	}
	raw, err := json.Marshal(diskRecord{SHA256: recordSum(entryJSON), Entry: entryJSON})
	if err != nil {
		d.putErrors.Add(1)
		return fmt.Errorf("resultstore: encoding record: %w", err)
	}
	raw = append(raw, '\n')
	size := int64(len(raw))
	if size > d.opts.MaxBytes {
		d.putErrors.Add(1)
		return fmt.Errorf("resultstore: entry %s (%d bytes) exceeds the store budget", e.Key, size)
	}

	if err := d.writeAtomic(fileFromKey(e.Key), raw); err != nil {
		d.putErrors.Add(1)
		if isWriteFault(err) {
			d.writeFaults.Add(1)
			d.trip(DiskReadOnly, err)
		}
		return err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return errors.New("resultstore: store closed")
	}
	if old, ok := d.index[e.Key]; ok {
		d.bytes -= old.size
	}
	d.index[e.Key] = &diskEntry{size: size, access: d.seq, digest: e.Digest}
	d.seq++
	d.bytes += size
	d.evictLocked()
	return nil
}

// writeAtomic lands raw at name via temp file + fsync + rename, so a
// crash mid-write strands a temp file (swept at startup) instead of a
// truncated entry under a valid name.
func (d *Disk) writeAtomic(name string, raw []byte) error {
	f, err := d.ops.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp := f.Name()
	var w io.WriteCloser = f
	if d.opts.WrapWriter != nil {
		w = d.opts.WrapWriter(f)
	}
	if _, err := w.Write(raw); err != nil {
		w.Close()
		d.ops.Remove(tmp)
		return fmt.Errorf("resultstore: writing %s: %w", name, err)
	}
	if s, ok := w.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			w.Close()
			d.ops.Remove(tmp)
			return fmt.Errorf("resultstore: syncing %s: %w", name, err)
		}
	}
	if err := w.Close(); err != nil {
		d.ops.Remove(tmp)
		return fmt.Errorf("resultstore: closing %s: %w", name, err)
	}
	if err := d.ops.Rename(tmp, filepath.Join(d.dir, name)); err != nil {
		d.ops.Remove(tmp)
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// trip moves the state machine to a more degraded state. Upgrades in
// severity (readonly → offline) are allowed; downgrades are not — a
// tier that cannot read must not silently resume writes.
func (d *Disk) trip(to DiskState, cause error) {
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	d.trippedAt.Store(d.now().UnixNano())
	cur := DiskState(d.state.Load())
	if cur == to || (cur == DiskOffline && to == DiskReadOnly) {
		return
	}
	d.state.Store(int32(to))
	d.stateReason.Store(cause.Error())
	d.transitions.Add(1)
	fmt.Fprintf(d.opts.Log, "resultstore: disk tier %s → %s: %v\n", cur, to, cause)
}

// maybeRecover probes the filesystem if the recovery interval has
// elapsed since the last trip or failed probe. It reports whether the
// tier is (now) DiskOK.
func (d *Disk) maybeRecover() bool {
	if DiskState(d.state.Load()) == DiskOK {
		return true
	}
	if d.now().Sub(time.Unix(0, d.trippedAt.Load())) < d.opts.RecoveryInterval {
		return false
	}
	return d.TryRecover()
}

// TryRecover probes the filesystem immediately and re-arms a degraded
// tier when the probe succeeds: a recovered DiskReadOnly resumes
// writes with its index intact, a recovered DiskOffline rescans the
// directory (its index may be stale) before serving again. It reports
// whether the tier is DiskOK afterwards. Safe to call at any time; the
// scrubber calls it once per pass.
func (d *Disk) TryRecover() bool {
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	st := DiskState(d.state.Load())
	if st == DiskOK {
		return true
	}
	if err := d.probe(); err != nil {
		d.trippedAt.Store(d.now().UnixNano())
		return false
	}
	if st == DiskOffline {
		d.mu.Lock()
		d.index = make(map[string]*diskEntry)
		d.bytes = 0
		err := d.scan()
		d.mu.Unlock()
		if err != nil {
			d.trippedAt.Store(d.now().UnixNano())
			return false
		}
	}
	d.state.Store(int32(DiskOK))
	d.stateReason.Store("")
	d.transitions.Add(1)
	d.recoveries.Add(1)
	fmt.Fprintf(d.opts.Log, "resultstore: disk tier %s → ok (recovery probe succeeded)\n", st)
	return true
}

// probe exercises the failure modes that trip the tier: a small
// write-fsync-rename-remove cycle and a directory read. Caller holds
// stateMu.
func (d *Disk) probe() error {
	f, err := d.ops.CreateTemp(d.dir, tmpPrefix+"probe-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	var w io.WriteCloser = f
	if d.opts.WrapWriter != nil {
		w = d.opts.WrapWriter(f)
	}
	_, werr := w.Write([]byte("probe\n"))
	cerr := w.Close()
	d.ops.Remove(tmp)
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	if _, err := d.ops.ReadDir(d.dir); err != nil {
		return err
	}
	return nil
}

// evictLocked removes oldest-accessed entries until the store fits its
// budget. Caller holds d.mu.
func (d *Disk) evictLocked() {
	if d.bytes <= d.opts.MaxBytes {
		return
	}
	type victim struct {
		key    string
		access int64
		size   int64
	}
	victims := make([]victim, 0, len(d.index))
	for k, ent := range d.index {
		victims = append(victims, victim{k, ent.access, ent.size})
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].access != victims[j].access {
			return victims[i].access < victims[j].access
		}
		return victims[i].key < victims[j].key
	})
	for _, v := range victims {
		if d.bytes <= d.opts.MaxBytes {
			break
		}
		if err := d.ops.Remove(filepath.Join(d.dir, fileFromKey(v.key))); err != nil && !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(d.opts.Log, "resultstore: evicting %s: %v\n", v.key, err)
			continue
		}
		delete(d.index, v.key)
		d.bytes -= v.size
		d.evictions.Add(1)
	}
}

// quarantine moves a bad file aside (keeping it for inspection) and
// counts it, then ages out the oldest quarantined files past the byte
// cap. Failures fall back to removal: a file that can neither be moved
// nor removed would otherwise be re-quarantined forever.
func (d *Disk) quarantine(path, why string) {
	d.quarantines.Add(1)
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := d.ops.MkdirAll(qdir, 0o755); err == nil {
		if err := d.ops.Rename(path, filepath.Join(qdir, filepath.Base(path))); err == nil {
			fmt.Fprintf(d.opts.Log, "resultstore: quarantined %s: %s\n", filepath.Base(path), why)
			d.boundQuarantine()
			return
		}
	}
	d.ops.Remove(path)
	fmt.Fprintf(d.opts.Log, "resultstore: removed unquarantinable %s: %s\n", filepath.Base(path), why)
}

// boundQuarantine ages out oldest quarantined files (by modification
// time, then name) until the quarantine directory fits its byte cap,
// so a scrub storm over a rotten store cannot fill the disk.
func (d *Disk) boundQuarantine() {
	qdir := filepath.Join(d.dir, quarantineDir)
	des, err := d.ops.ReadDir(qdir)
	if err != nil {
		return
	}
	type qfile struct {
		name string
		size int64
		mod  int64
	}
	var files []qfile
	var total int64
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, qfile{de.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if total <= d.opts.QuarantineMaxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name
	})
	for _, f := range files {
		if total <= d.opts.QuarantineMaxBytes {
			break
		}
		if err := d.ops.Remove(filepath.Join(qdir, f.name)); err != nil {
			continue
		}
		total -= f.size
		d.quarantineDrops.Add(1)
		fmt.Fprintf(d.opts.Log, "resultstore: aged out quarantined %s (%d bytes over cap)\n", f.name, total-d.opts.QuarantineMaxBytes)
	}
}

// Close persists the access clock (temp file + fsync + rename, same
// crash discipline as entries) and marks the store closed. The graceful
// drain path calls it on SIGTERM so a restarted daemon evicts in true
// oldest-access order instead of directory order. A degraded tier
// closes without persisting (the write would fail anyway; the next
// open falls back to scan order).
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return nil
	}
	d.open = false
	if DiskState(d.state.Load()) != DiskOK {
		return nil
	}
	idx := persistedIndex{Access: make(map[string]int64, len(d.index))}
	for k, ent := range d.index {
		idx.Access[k] = ent.access
	}
	raw, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("resultstore: encoding index: %w", err)
	}
	return d.writeAtomic(indexFile, append(raw, '\n'))
}

// Manifest lists the resident entries as {key, digest} pairs in key
// order — the anti-entropy exchange unit. An offline tier reports
// nothing: it cannot serve the entries it is advertising.
func (d *Disk) Manifest() []ManifestEntry {
	if DiskState(d.state.Load()) == DiskOffline {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ManifestEntry, 0, len(d.index))
	for k, ent := range d.index {
		out = append(out, ManifestEntry{Key: k, Digest: ent.digest})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// State reports the tier's health state.
func (d *Disk) State() DiskState { return DiskState(d.state.Load()) }

// StateReason reports what tripped the tier ("" when ok).
func (d *Disk) StateReason() string {
	s, _ := d.stateReason.Load().(string)
	return s
}

// Len reports resident entries.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Bytes reports resident entry bytes.
func (d *Disk) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// MaxBytes reports the configured byte budget.
func (d *Disk) MaxBytes() int64 { return d.opts.MaxBytes }

// Evictions reports entries evicted by the byte budget.
func (d *Disk) Evictions() int64 { return d.evictions.Load() }

// Quarantines reports files moved aside as corrupt or truncated.
func (d *Disk) Quarantines() int64 { return d.quarantines.Load() }

// QuarantineDrops reports quarantined files aged out by the byte cap.
func (d *Disk) QuarantineDrops() int64 { return d.quarantineDrops.Load() }

// PutErrors reports failed persist attempts.
func (d *Disk) PutErrors() int64 { return d.putErrors.Load() }

// WriteFaults reports classified write faults (disk full, read-only,
// permission) observed on the put path.
func (d *Disk) WriteFaults() int64 { return d.writeFaults.Load() }

// ReadFaults reports classified read faults (I/O error, permission)
// observed on the get path.
func (d *Disk) ReadFaults() int64 { return d.readFaults.Load() }

// DegradedPuts reports puts refused while the tier was degraded.
func (d *Disk) DegradedPuts() int64 { return d.degradedPuts.Load() }

// DegradedGets reports gets refused while the tier was offline.
func (d *Disk) DegradedGets() int64 { return d.degradedGets.Load() }

// StateTransitions reports state changes (trips and recoveries).
func (d *Disk) StateTransitions() int64 { return d.transitions.Load() }

// Recoveries reports successful re-arms back to DiskOK.
func (d *Disk) Recoveries() int64 { return d.recoveries.Load() }

// Dir reports the store root.
func (d *Disk) Dir() string { return d.dir }
