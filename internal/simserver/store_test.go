package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/simrun"
)

// batchConfigs returns n distinct fast configs (same shape, distinct
// seeds).
func batchConfigs(t *testing.T, n int) []core.Config {
	t.Helper()
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfgs[i] = testCoreConfig(t)
		cfgs[i].Seed = uint64(i + 1)
	}
	return cfgs
}

// batchStreamLine is the union of item and trailer line shapes.
type batchStreamLine struct {
	Trailer   bool         `json:"trailer"`
	Index     int          `json:"index"`
	Key       string       `json:"key"`
	Result    *core.Result `json:"result"`
	Digest    string       `json:"digest"`
	Cached    bool         `json:"cached"`
	Coalesced bool         `json:"coalesced"`
	Error     string       `json:"error"`
	Total     int          `json:"total"`
	OK        int          `json:"ok"`
	Errors    int          `json:"errors"`
	CachedTot int          `json:"cached_total"`
}

// postBatch ships configs to /v1/batch and splits the NDJSON stream
// into item lines and the trailer.
func postBatch(t *testing.T, url string, cfgs []core.Config) ([]batchStreamLine, batchStreamLine) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"configs": cfgs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var items []batchStreamLine
	var trailer batchStreamLine
	sawTrailer := false
	for {
		var line batchStreamLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding stream line: %v", err)
		}
		if sawTrailer {
			t.Fatal("stream continued past the trailer line")
		}
		if line.Trailer {
			trailer, sawTrailer = line, true
			continue
		}
		items = append(items, line)
	}
	if !sawTrailer {
		t.Fatal("stream ended without a trailer line")
	}
	return items, trailer
}

// TestBatchStreamsResultsWithTrailer is the batch contract: distinct
// configs each simulate once, duplicates coalesce, every line carries a
// verifiable digest, the trailer counts match, and a repeat batch is
// served entirely from the store.
func TestBatchStreamsResultsWithTrailer(t *testing.T) {
	var sims atomic.Int64
	srv := New(Config{
		Workers: 2,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			sims.Add(1)
			return simrun.Run(ctx, cfg)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	cfgs := batchConfigs(t, 4)
	cfgs = append(cfgs, cfgs[0]) // a duplicate: must not simulate twice

	items, trailer := postBatch(t, ts.URL, cfgs)
	if len(items) != 5 || trailer.Total != 5 || trailer.OK != 5 || trailer.Errors != 0 {
		t.Fatalf("items=%d trailer=%+v, want 5 items all ok", len(items), trailer)
	}
	if got := sims.Load(); got != 4 {
		t.Fatalf("batch of 4 distinct configs ran %d simulations, want 4", got)
	}
	seen := make(map[int]bool)
	for _, line := range items {
		if line.Error != "" || line.Result == nil {
			t.Fatalf("item %d failed: %+v", line.Index, line)
		}
		if got := simrun.ResultDigest(*line.Result); got != line.Digest {
			t.Fatalf("item %d digest mismatch: computed %s, line says %s", line.Index, got, line.Digest)
		}
		if !strings.HasPrefix(line.Key, "cfg:") {
			t.Fatalf("item %d key %q not in the cfg: namespace", line.Index, line.Key)
		}
		seen[line.Index] = true
	}
	for i := range cfgs {
		if !seen[i] {
			t.Fatalf("index %d missing from the stream", i)
		}
	}

	// The result must equal a direct local run, byte for byte.
	direct, err := simrun.Run(context.Background(), cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	for _, line := range items {
		if line.Index != 0 {
			continue
		}
		got, _ := json.Marshal(*line.Result)
		if !bytes.Equal(got, want) {
			t.Fatalf("batch result diverges from local run:\n got: %s\nwant: %s", got, want)
		}
	}

	// Repeat: everything is a store hit, zero new simulations.
	items2, trailer2 := postBatch(t, ts.URL, cfgs)
	if trailer2.OK != 5 || trailer2.Errors != 0 {
		t.Fatalf("repeat trailer %+v", trailer2)
	}
	for _, line := range items2 {
		if !line.Cached {
			t.Fatalf("repeat item %d not served from the store: %+v", line.Index, line)
		}
	}
	if got := sims.Load(); got != 4 {
		t.Fatalf("repeat batch re-ran simulations: %d total, want 4", got)
	}
}

// TestBatchValidatesUpfront: one invalid item fails the whole batch
// with a 400 naming the item, before any streaming begins.
func TestBatchValidatesUpfront(t *testing.T) {
	var sims atomic.Int64
	srv := New(Config{
		Workers: 1,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			sims.Add(1)
			return simrun.Run(ctx, cfg)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	cfgs := batchConfigs(t, 3)
	cfgs[1].Threads = 0
	body, _ := json.Marshal(map[string]any{"configs": cfgs})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "item 1") {
		t.Fatalf("400 body does not name the bad item: %s", raw)
	}
	if sims.Load() != 0 {
		t.Fatal("invalid batch still ran simulations")
	}

	// An empty batch is also a 400, not an empty stream.
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(`{"configs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", resp.StatusCode)
	}
}

// TestResultEndpoint: /v1/result/{key} serves stored entries for peer
// lookups, 404s misses, and rejects keys that could never be stored.
func TestResultEndpoint(t *testing.T) {
	srv := New(Config{Workers: 1, Run: simrun.Run})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	body, _ := json.Marshal(testCoreConfig(t))
	resp, raw := postRunCfg(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runcfg status %d: %s", resp.StatusCode, raw)
	}
	var reply struct {
		Key    string `json:"key"`
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}

	rresp, err := http.Get(ts.URL + "/v1/result/" + reply.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result lookup status %d", rresp.StatusCode)
	}
	var e resultstore.Entry
	if err := json.NewDecoder(rresp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Key != reply.Key || e.Digest != reply.Digest || !e.Verify() {
		t.Fatalf("served entry does not verify: %+v", e)
	}
	if got := rresp.Header.Get("X-Result-Digest"); got != reply.Digest {
		t.Fatalf("X-Result-Digest = %q, want %q", got, reply.Digest)
	}

	if resp, err := http.Get(ts.URL + "/v1/result/cfg:ffffffffffffffff"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("missing key status %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/result/a..b"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("invalid key status %d, want 400", resp.StatusCode)
		}
	}
}

// TestWarmDiskStoreServesAcrossRestart is the acceptance flow: a batch
// against a disk-backed server simulates everything once; after a full
// drain (server shutdown + store close) a NEW server over the same
// store directory serves the identical batch with zero simulations and
// byte-identical results.
func TestWarmDiskStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	var sims atomic.Int64
	run := func(ctx context.Context, cfg core.Config) (core.Result, error) {
		sims.Add(1)
		return simrun.Run(ctx, cfg)
	}
	openStore := func() *resultstore.Tiered {
		disk, err := resultstore.OpenDisk(dir, resultstore.DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return resultstore.NewTiered(resultstore.NewMemory(8), disk, nil)
	}
	cfgs := batchConfigs(t, 3)
	resultsByIndex := func(items []batchStreamLine) map[int]string {
		out := make(map[int]string)
		for _, line := range items {
			raw, _ := json.Marshal(line.Result)
			out[line.Index] = line.Digest + "|" + string(raw)
		}
		return out
	}

	store1 := openStore()
	srv1 := New(Config{Workers: 2, Run: run, Store: store1})
	ts1 := httptest.NewServer(srv1.Handler())
	items1, _ := postBatch(t, ts1.URL, cfgs)
	if got := sims.Load(); got != 3 {
		t.Fatalf("cold batch ran %d simulations, want 3", got)
	}
	ts1.Close()
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := store1.Close(); err != nil {
		t.Fatalf("closing store on drain: %v", err)
	}

	store2 := openStore()
	srv2 := New(Config{Workers: 2, Run: run, Store: store2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Shutdown(context.Background())
	items2, trailer2 := postBatch(t, ts2.URL, cfgs)
	if got := sims.Load(); got != 3 {
		t.Fatalf("warm batch after restart ran %d extra simulations, want 0", got-3)
	}
	if trailer2.CachedTot != 3 {
		t.Fatalf("warm trailer reports %d cached, want 3", trailer2.CachedTot)
	}
	got, want := resultsByIndex(items2), resultsByIndex(items1)
	for i := range cfgs {
		if got[i] != want[i] {
			t.Fatalf("index %d diverged across the restart:\ncold %s\nwarm %s", i, want[i], got[i])
		}
	}

	// The disk tier shows up in /metrics, tier-labeled.
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, wantLine := range []string{
		`smtsimd_store_hits_total{tier="disk"} 3`,
		`smtsimd_store_misses_total{tier="memory"} 3`,
		"smtsimd_cache_evictions_total 0",
		"smtsimd_store_disk_entries 3",
		"smtsimd_batch_requests_total 1",
		"smtsimd_batch_items_total 3",
	} {
		if !strings.Contains(string(mraw), wantLine) {
			t.Errorf("metrics missing %q:\n%s", wantLine, mraw)
		}
	}
}
