package simserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/simrun"
)

// handleResult is GET /v1/result/{key}: the tier-2 peer-lookup surface.
// It serves only the local tiers (memory, disk) — a daemon answering a
// peer must not fan out to its own peers, or lookups would recurse
// across the fleet. A miss is a plain 404; the caller treats every
// non-200 as a miss.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !resultstore.ValidKey(key) {
		httpError(w, http.StatusBadRequest, "invalid result key")
		return
	}
	e, tier, ok := s.store.GetLocal(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no stored result")
		return
	}
	w.Header().Set("X-Result-Digest", e.Digest)
	w.Header().Set("X-Store-Tier", tier)
	writeJSON(w, http.StatusOK, e)
}

// batchRequest is the POST /v1/batch body: raw configs, the same
// transport as /v1/runcfg but many at once.
type batchRequest struct {
	Configs []core.Config `json:"configs"`
}

// batchLine is one NDJSON line of the batch response stream, emitted in
// completion order. Index ties the line back to its config in the
// request; Digest is the canonical result digest the client re-verifies
// per line before trusting the bytes.
type batchLine struct {
	Index     int          `json:"index"`
	Key       string       `json:"key,omitempty"`
	Result    *core.Result `json:"result,omitempty"`
	Digest    string       `json:"digest,omitempty"`
	Cached    bool         `json:"cached,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
	Error     string       `json:"error,omitempty"`
}

// batchTrailer is the final NDJSON line: the client checks Total
// against the item lines it saw, so a truncated stream (killed backend,
// dropped connection) is detectable without a Content-Length.
type batchTrailer struct {
	Trailer bool `json:"trailer"`
	Total   int  `json:"total"`
	OK      int  `json:"ok"`
	Errors  int  `json:"errors"`
	// Cached counts items served from the store; the field name avoids
	// the per-item "cached" flag so one union struct can decode both
	// line shapes.
	Cached int `json:"cached_total"`
}

// handleBatch is POST /v1/batch: many raw configs in, an NDJSON stream
// of per-item results out, in completion order, with a trailer line
// carrying counts. Every config is validated before the first byte of
// the response, so a bad batch is one 400, never a half-stream. Items
// share the store, singleflight, and worker pool with the per-request
// endpoints; item flights block on admission instead of 429-ing, since
// the batch itself was already accepted.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.batchRequests.Add(1)

	var breq batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	if err := dec.Decode(&breq); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding batch: %v", err))
		return
	}
	if len(breq.Configs) == 0 {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(breq.Configs) > s.cfg.MaxBatchItems {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds the %d-item bound", len(breq.Configs), s.cfg.MaxBatchItems))
		return
	}
	keys := make([]string, len(breq.Configs))
	for i := range breq.Configs {
		cfg := &breq.Configs[i]
		if cfg.Programs != nil {
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Sprintf("item %d: config.Programs is not transportable; name a mix instead", i))
			return
		}
		if err := cfg.Validate(); err != nil {
			s.metrics.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Sprintf("item %d: %v", i, err))
			return
		}
		keys[i] = "cfg:" + simrun.Key(*cfg)
	}

	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	lines := make(chan batchLine)
	var wg sync.WaitGroup
	for i := range breq.Configs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lines <- s.batchItem(r, i, keys[i], breq.Configs[i])
		}(i)
	}
	go func() {
		wg.Wait()
		close(lines)
	}()

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	trailer := batchTrailer{Trailer: true, Total: len(breq.Configs)}
	// Drain every line even if the client is gone: item goroutines block
	// sending into the channel, and their flights must settle into the
	// store regardless — a disconnected batch still warms the tiers.
	for line := range lines {
		if line.Error != "" {
			trailer.Errors++
		} else {
			trailer.OK++
			if line.Cached {
				trailer.Cached++
			}
		}
		s.metrics.batchItems.Add(1)
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
	s.metrics.batchLatency.observe(time.Since(start).Seconds())
}

// batchItem resolves one batch config: store hit, coalesce, or lead a
// new flight with blocking admission. It always returns a line; errors
// ride in the line instead of failing the stream.
func (s *Server) batchItem(r *http.Request, idx int, key string, cfg core.Config) batchLine {
	if e, _, ok := s.store.Get(r.Context(), key); ok {
		s.metrics.cacheHits.Add(1)
		return batchLine{Index: idx, Key: key, Result: &e.Result, Digest: e.Digest, Cached: true}
	}
	s.metrics.cacheMisses.Add(1)

	f, leader := s.flights.join(key)
	if leader {
		s.wg.Add(1)
		go s.execute(key, f, simrun.Request{}, cfg, true)
	} else {
		s.metrics.coalesced.Add(1)
	}
	<-f.done
	if f.err != nil {
		return batchLine{Index: idx, Key: key, Error: f.err.Error()}
	}
	return batchLine{Index: idx, Key: key, Result: &f.val.Result, Digest: f.val.Digest, Coalesced: !leader}
}
