package simserver

import (
	"container/list"
	"sync"
)

// lru is a fixed-capacity least-recently-used cache mapping config
// hashes to finished run responses. Simulations are deterministic, so a
// cached entry is exact — there is no TTL and no invalidation, only
// capacity eviction.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val *runResponse
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached response and promotes the entry.
func (c *lru) get(key string) (*runResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes an entry, evicting the least recently used
// entry when over capacity.
func (c *lru) add(key string, val *runResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// capacity reports the configured entry bound.
func (c *lru) capacity() int { return c.cap }
