package simserver

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simrun"
)

// stubResult is a fast deterministic Run replacement keyed off the seed
// so distinct configs produce distinct results.
func stubResult(ctx context.Context, cfg core.Config) (core.Result, error) {
	return core.Result{Mix: cfg.MixName, Seed: cfg.Seed, AggregateIPC: float64(cfg.Seed) / 7}, nil
}

func scrapeMetric(t *testing.T, url, name string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	return ""
}

// TestRecoverMiddlewarePanic: a panicking HTTP handler becomes a 500 +
// metric, not a dead daemon.
func TestRecoverMiddlewarePanic(t *testing.T) {
	var m metrics
	h := recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}), &m)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "handler exploded") {
		t.Fatalf("body %q does not name the panic", rec.Body.String())
	}
	if m.panics.Load() != 1 {
		t.Fatalf("panics = %d, want 1", m.panics.Load())
	}
}

// TestSimulationPanicBecomes500AndDaemonSurvives: the simulation
// executor runs detached from request goroutines, so its panic must be
// contained separately — the flight fails with a 500,
// smtsimd_panics_total increments, and the daemon keeps serving.
func TestSimulationPanicBecomes500AndDaemonSurvives(t *testing.T) {
	srv := New(Config{
		Workers: 2,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			if cfg.Seed == 99 {
				panic("poisoned config")
			}
			return stubResult(ctx, cfg)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, body := postRun(t, ts.URL, `{"mix":"int-compute","threads":2,"quanta":2,"seed":99}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned run status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Fatalf("error body %q does not mention the panic", body)
	}
	if got := scrapeMetric(t, ts.URL, "smtsimd_panics_total"); got != "1" {
		t.Fatalf("smtsimd_panics_total = %q, want 1", got)
	}

	// The daemon survived: a healthy request succeeds.
	resp, body = postRun(t, ts.URL, `{"mix":"int-compute","threads":2,"quanta":2,"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic run status = %d, want 200 (body %s)", resp.StatusCode, body)
	}
}

// TestDigestHeaderAndBody: both endpoints carry the canonical result
// digest in the X-Result-Digest header and the digest body field, on
// fresh and cached responses alike, and the digest verifies against the
// decoded result.
func TestDigestHeaderAndBody(t *testing.T) {
	srv := New(Config{Workers: 1, Run: stubResult})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	checkRuncfg := func(wantCached bool) {
		t.Helper()
		cfg := testCoreConfig(t)
		raw, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postRunCfg(t, ts.URL, raw)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var reply struct {
			Result core.Result `json:"result"`
			Digest string      `json:"digest"`
			Cached bool        `json:"cached"`
		}
		if err := json.Unmarshal(body, &reply); err != nil {
			t.Fatal(err)
		}
		if reply.Cached != wantCached {
			t.Fatalf("cached = %v, want %v", reply.Cached, wantCached)
		}
		header := resp.Header.Get("X-Result-Digest")
		if header == "" || header != reply.Digest {
			t.Fatalf("header digest %q != body digest %q", header, reply.Digest)
		}
		if got := simrun.ResultDigest(reply.Result); got != reply.Digest {
			t.Fatalf("digest %q does not verify against decoded result (recomputed %q)", reply.Digest, got)
		}
	}
	checkRuncfg(false)
	checkRuncfg(true) // cache hit path sets the header too

	resp, body := postRun(t, ts.URL, testRequest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/run status %d: %s", resp.StatusCode, body)
	}
	var runReply struct {
		Result core.Result `json:"result"`
		Digest string      `json:"digest"`
	}
	if err := json.Unmarshal(body, &runReply); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Result-Digest") != runReply.Digest || runReply.Digest == "" {
		t.Fatalf("run digest header %q / body %q mismatch", resp.Header.Get("X-Result-Digest"), runReply.Digest)
	}
	if got := simrun.ResultDigest(runReply.Result); got != runReply.Digest {
		t.Fatalf("run digest does not verify: %q vs %q", runReply.Digest, got)
	}
}

// TestBoundaryRejectsGarbageNamingField: numeric garbage at the API
// boundary returns 400 with the offending field named, instead of being
// simulated.
func TestBoundaryRejectsGarbageNamingField(t *testing.T) {
	srv := New(Config{Workers: 1, Run: stubResult})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	tests := []struct {
		name      string
		body      string
		wantField string
	}{
		{"negative m", `{"mix":"int-compute","m":-1}`, "m:"},
		{"threads out of range", `{"mix":"int-compute","threads":9}`, "threads:"},
		{"negative quanta", `{"mix":"int-compute","quanta":-4}`, "quanta:"},
		{"fastforward below -1", `{"mix":"int-compute","fastforward":-2}`, "fastforward:"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := postRun(t, ts.URL, tt.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tt.wantField) {
				t.Fatalf("error %s does not name field %q", body, tt.wantField)
			}
		})
	}

	// Raw-config boundary: a zero-quanta config names the field too.
	cfg := testCoreConfig(t)
	cfg.Quanta = 0
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postRunCfg(t, ts.URL, raw)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-quanta config status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "Quanta") {
		t.Fatalf("error %s does not name Quanta", body)
	}
}
