package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simrun"
)

// testRequest is a small, fast configuration shared by the e2e tests.
const testRequest = `{"mix":"int-compute","mode":"fixed","policy":"ICOUNT","threads":2,"quanta":2,"fastforward":-1,"seed":7}`

func postRun(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, raw
}

// TestSingleflightCacheAndByteIdentity is the acceptance flow: 50
// concurrent identical requests execute exactly one simulation, every
// response carries a report byte-identical to a direct smtsim-equivalent
// run, and a follow-up request is served from the cache.
func TestSingleflightCacheAndByteIdentity(t *testing.T) {
	var sims atomic.Int64
	srv := New(Config{
		Workers: 2,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			sims.Add(1)
			return simrun.Run(ctx, cfg)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// The ground truth: what smtsim would compute and print.
	var req simrun.Request
	if err := json.Unmarshal([]byte(testRequest), &req); err != nil {
		t.Fatal(err)
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := simrun.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantReport := simrun.Report(cfg, direct, simrun.ReportOptions{})

	const n = 50
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(testRequest))
			if err != nil {
				errs <- fmt.Errorf("POST /v1/run: %w", err)
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- fmt.Errorf("reading body: %w", err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			var reply struct {
				Key    string `json:"key"`
				Report string `json:"report"`
				Result core.Result
			}
			if err := json.Unmarshal(raw, &reply); err != nil {
				errs <- fmt.Errorf("decoding: %v", err)
				return
			}
			if reply.Report != wantReport {
				errs <- fmt.Errorf("report diverges from direct run:\n got: %q\nwant: %q", reply.Report, wantReport)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The direct run above counts 0: sims only counts server-side runs.
	if got := sims.Load(); got != 1 {
		t.Fatalf("50 identical concurrent requests ran %d simulations, want exactly 1", got)
	}

	// A later identical request must be a cache hit, still byte-identical.
	resp, raw := postRun(t, ts.URL, testRequest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request status %d: %s", resp.StatusCode, raw)
	}
	var reply struct {
		Cached bool   `json:"cached"`
		Report string `json:"report"`
	}
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}
	if !reply.Cached {
		t.Fatal("follow-up identical request was not served from the cache")
	}
	if reply.Report != wantReport {
		t.Fatal("cached report diverges from direct run")
	}
	if got := sims.Load(); got != 1 {
		t.Fatalf("cache hit re-ran the simulation (%d runs)", got)
	}

	// Metrics must agree: one simulation, the rest hits or coalesces.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mraw, []byte("smtsimd_simulations_total 1\n")) {
		t.Errorf("metrics do not report exactly one simulation:\n%s", mraw)
	}
	if !bytes.Contains(mraw, []byte("smtsimd_requests_total 51\n")) {
		t.Errorf("metrics do not report 51 requests:\n%s", mraw)
	}
}

// blockingRunner returns a RunFunc that signals start and waits for
// release, simulating a long-running simulation.
func blockingRunner(started chan<- string, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, cfg core.Config) (core.Result, error) {
		started <- cfg.MixName
		select {
		case <-release:
			return core.Result{Mix: cfg.MixName, Threads: cfg.Threads, Seed: cfg.Seed}, nil
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
}

// TestQueueOverflow429 fills the single worker slot with a blocked run
// and asserts that a second, distinct request is rejected with 429 and
// a Retry-After hint rather than queued without bound.
func TestQueueOverflow429(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	srv := New(Config{
		Workers:    1,
		QueueDepth: -1, // no queue: one admitted flight total
		RetryAfter: 3 * time.Second,
		Run:        blockingRunner(started, release),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json",
			strings.NewReader(`{"mix":"int-compute","quanta":1}`))
		if err != nil {
			first <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-started // the worker slot is now definitely occupied

	resp, raw := postRun(t, ts.URL, `{"mix":"fp-stream","quanta":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429; body %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	close(release)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("blocked request finished with %d, want 200", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownDrainsInFlight verifies graceful shutdown: with a
// simulation in flight, http.Server.Shutdown + Server.Shutdown wait for
// it, and the client still receives its complete 200 response.
func TestShutdownDrainsInFlight(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	srv := New(Config{Workers: 1, Run: blockingRunner(started, release)})
	ts := httptest.NewServer(srv.Handler())
	// No ts.Close() up front: shutdown is the subject under test.

	type outcome struct {
		status int
		report string
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(testRequest))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var reply struct {
			Result core.Result `json:"result"`
		}
		jerr := json.Unmarshal(raw, &reply)
		done <- outcome{status: resp.StatusCode, report: reply.Result.Mix, err: jerr}
	}()
	<-started

	shutdownDone := make(chan error, 2)
	go func() {
		// Stop the listener and wait for active requests...
		shutdownDone <- ts.Config.Shutdown(context.Background())
		// ...then drain the simulation pool.
		shutdownDone <- srv.Shutdown(context.Background())
	}()

	// Give shutdown a moment to begin, then let the simulation finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	o := <-done
	if o.err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", o.err)
	}
	if o.status != http.StatusOK {
		t.Fatalf("in-flight request got %d during shutdown, want 200", o.status)
	}
	if o.report != "int-compute" {
		t.Fatalf("in-flight response incomplete: mix %q", o.report)
	}
	for i := 0; i < 2; i++ {
		if err := <-shutdownDone; err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	}
}

// TestBadRequests covers the 400 paths: malformed JSON, unknown fields,
// and invalid configurations.
func TestBadRequests(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for _, body := range []string{
		`{not json`,
		`{"mix":"int-compute","frobnicate":1}`,
		`{"mix":"no-such-mix"}`,
		`{"mode":"warp"}`,
		`{"mode":"fixed","policy":"NOPE"}`,
		`{"mode":"adts","heuristic":"Type 9"}`,
		`{"mode":"adts","kernel":"not a kernel @@"}`,
		`{"threads":99}`,
	} {
		resp, raw := postRun(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
	}
}

// TestMixesAndHealthz sanity-checks the read-only endpoints.
func TestMixesAndHealthz(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Get(ts.URL + "/v1/mixes")
	if err != nil {
		t.Fatal(err)
	}
	var mixes []mixInfo
	if err := json.NewDecoder(resp.Body).Decode(&mixes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mixes) == 0 {
		t.Fatal("GET /v1/mixes returned no mixes")
	}
	seen := false
	for _, m := range mixes {
		if m.Name == "kitchen-sink" {
			seen = true
		}
		if len(m.Apps) != 8 {
			t.Errorf("mix %s has %d apps, want 8", m.Name, len(m.Apps))
		}
	}
	if !seen {
		t.Fatal("kitchen-sink missing from GET /v1/mixes")
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", h.Status)
	}
	if h.StoreState != "memory-only" {
		t.Fatalf("healthz store_state %q, want memory-only (no disk tier configured)", h.StoreState)
	}
	if h.Store.State != h.StoreState {
		t.Fatalf("healthz store.state %q != store_state %q", h.Store.State, h.StoreState)
	}
}

// TestRunTimeout504 maps a run that outlives its budget to 504.
func TestRunTimeout504(t *testing.T) {
	srv := New(Config{
		Workers:    1,
		RunTimeout: 20 * time.Millisecond,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			<-ctx.Done()
			return core.Result{}, ctx.Err()
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, raw := postRun(t, ts.URL, testRequest)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, raw)
	}
}
