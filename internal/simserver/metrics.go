package simserver

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/resultstore"
)

// latencyBuckets are the upper bounds (seconds) of the run-latency
// histogram, chosen for simulation runs that take milliseconds to tens
// of seconds.
var latencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metrics is the server's instrumentation: lock-free counters plus a
// cumulative latency histogram, rendered as Prometheus text exposition
// format (version 0.0.4) with no external dependencies.
type metrics struct {
	requests    atomic.Int64 // POST /v1/run requests received
	badRequests atomic.Int64 // malformed / invalid config
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64 // requests satisfied by another's flight
	rejected    atomic.Int64 // 429: admission queue full
	canceled    atomic.Int64 // client gone / per-request timeout
	runs        atomic.Int64 // simulations actually executed
	runErrors   atomic.Int64
	panics      atomic.Int64 // recovered panics (handlers + simulations)

	batchRequests atomic.Int64 // POST /v1/batch requests received
	batchItems    atomic.Int64 // batch item lines streamed

	pushAccepts atomic.Int64 // POST /v1/store/push entries verified and stored
	pushRejects atomic.Int64 // pushed entries refused (malformed, bad key, bad digest)

	queueDepth atomic.Int64 // admitted but not yet running
	inFlight   atomic.Int64 // simulations running now

	runLatency   histogram // one observation per executed simulation
	batchLatency histogram // one observation per completed batch stream

	simCycles     atomic.Int64 // simulated cycles completed, incl. fast-forward
	nsPerCycCount atomic.Int64
	nsPerCycSumPs atomic.Int64 // picoseconds per cycle, to keep the sum integral
}

// histogram is a cumulative latency histogram over latencyBuckets.
type histogram struct {
	count   atomic.Int64
	sumUs   atomic.Int64 // microseconds, to keep the sum integral
	buckets [14]atomic.Int64
}

func (h *histogram) observe(s float64) {
	h.count.Add(1)
	h.sumUs.Add(int64(math.Round(s * 1e6)))
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(latencyBuckets)].Add(1) // +Inf
}

// write renders the histogram in Prometheus text exposition format.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(ub), cum)
	}
	cum += h.buckets[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumUs.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// observeRunSeconds records one completed simulation's latency.
func (m *metrics) observeRunSeconds(s float64) { m.runLatency.observe(s) }

// observeSimThroughput records one completed simulation's cycle count
// and its wall-time cost per simulated cycle. cycles includes the
// fast-forward prefix — that work is simulated whether or not it is
// measured, and throughput dashboards care about what the CPU did.
func (m *metrics) observeSimThroughput(cycles int64, elapsedNs int64) {
	if cycles <= 0 {
		return
	}
	m.simCycles.Add(cycles)
	m.nsPerCycCount.Add(1)
	m.nsPerCycSumPs.Add(elapsedNs * 1000 / cycles)
}

// writeCounter emits one counter in Prometheus text exposition format.
func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// writeGauge emits one gauge in Prometheus text exposition format.
func writeGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// writeTierCounter emits one counter with a tier label per store tier,
// in slot order so scrapes are deterministic.
func writeTierCounter(w io.Writer, name, help string, v func(tier string) int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, tier := range resultstore.Tiers {
		fmt.Fprintf(w, "%s{tier=%q} %d\n", name, tier, v(tier))
	}
}

// writePrometheus renders every metric in Prometheus text format.
func (m *metrics) writePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) { writeCounter(w, name, help, v) }
	gauge := func(name, help string, v int64) { writeGauge(w, name, help, v) }
	counter("smtsimd_requests_total", "POST /v1/run requests received.", m.requests.Load())
	counter("smtsimd_bad_requests_total", "Requests rejected as malformed or invalid.", m.badRequests.Load())
	counter("smtsimd_cache_hits_total", "Run requests served from the result cache.", m.cacheHits.Load())
	counter("smtsimd_cache_misses_total", "Run requests not found in the result cache.", m.cacheMisses.Load())
	counter("smtsimd_singleflight_coalesced_total", "Run requests coalesced onto another request's simulation.", m.coalesced.Load())
	counter("smtsimd_rejected_total", "Run requests rejected with 429 (admission queue full).", m.rejected.Load())
	counter("smtsimd_canceled_total", "Run requests abandoned by client disconnect or timeout.", m.canceled.Load())
	counter("smtsimd_simulations_total", "Simulations actually executed.", m.runs.Load())
	counter("smtsimd_simulation_errors_total", "Simulations that returned an error.", m.runErrors.Load())
	counter("smtsimd_panics_total", "Panics recovered (HTTP handlers and simulation executors); each became a 500 instead of a dead daemon.", m.panics.Load())
	counter("smtsimd_batch_requests_total", "POST /v1/batch requests received.", m.batchRequests.Load())
	counter("smtsimd_batch_items_total", "Batch item result lines streamed.", m.batchItems.Load())
	counter("smtsimd_store_push_accepts_total", "Pushed entries verified and stored (POST /v1/store/push).", m.pushAccepts.Load())
	counter("smtsimd_store_push_rejects_total", "Pushed entries refused as malformed or unverifiable.", m.pushRejects.Load())
	gauge("smtsimd_queue_depth", "Run requests admitted and waiting for a worker.", m.queueDepth.Load())
	gauge("smtsimd_inflight", "Simulations running now.", m.inFlight.Load())

	m.runLatency.write(w, "smtsimd_run_seconds", "Simulation run latency.")
	m.batchLatency.write(w, "smtsimd_batch_seconds", "POST /v1/batch end-to-end stream latency.")

	counter("smtsimd_sim_cycles_total", "Simulated cycles completed, including fast-forward warmup.", m.simCycles.Load())

	const s = "smtsimd_sim_ns_per_cycle"
	fmt.Fprintf(w, "# HELP %s Wall-clock nanoseconds per simulated cycle, one observation per completed simulation.\n# TYPE %s summary\n", s, s)
	fmt.Fprintf(w, "%s_sum %g\n", s, float64(m.nsPerCycSumPs.Load())/1e3)
	fmt.Fprintf(w, "%s_count %d\n", s, m.nsPerCycCount.Load())
}

// trimFloat formats a bucket bound without trailing zeros ("0.5", "1").
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
