// Package simserver is the HTTP simulation service behind cmd/smtsimd:
// a JSON API over internal/simrun with three production mechanisms
// layered on top of the deterministic simulator —
//
//  1. Result store: a tiered store (internal/resultstore) keyed by the
//     canonical config hash (internal/runner.ConfigHash) — in-memory
//     LRU, optionally backed by a size-bounded on-disk tier that
//     survives restarts. Simulations are deterministic, so stored
//     results are exact, with no TTL and no invalidation.
//  2. Singleflight: N concurrent identical requests trigger exactly one
//     simulation; the rest coalesce onto its result.
//  3. Admission control: a bounded queue in front of a bounded worker
//     pool. Overflow is rejected immediately with 429 + Retry-After;
//     admitted work gets a per-run timeout; Shutdown drains in-flight
//     simulations before tearing the server down.
//
// Endpoints: POST /v1/run, POST /v1/runcfg, POST /v1/batch (NDJSON
// streaming), GET /v1/result/{key} (peer lookup), GET /v1/mixes,
// GET /healthz, GET /metrics (Prometheus text format, no external
// dependencies).
package simserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/simrun"
	"repro/internal/trace"
)

// RunFunc executes one simulation. Tests inject synthetic runners; the
// default is simrun.Run.
type RunFunc func(ctx context.Context, cfg core.Config) (core.Result, error)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// Workers bounds concurrent simulations; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds flights admitted beyond the running ones; 0
	// selects 16, negative selects no queue (reject unless a worker
	// slot is free or soon will be).
	QueueDepth int
	// CacheEntries bounds the result LRU; <= 0 selects 256.
	CacheEntries int
	// RunTimeout bounds one simulation; <= 0 selects 120s.
	RunTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses; <= 0 selects 1s.
	RetryAfter time.Duration
	// Run replaces the simulation executor (tests); nil selects
	// simrun.Run.
	Run RunFunc
	// Store replaces the default memory-only tiered store. Pass a
	// resultstore.NewTiered with a disk tier (cmd/smtsimd -store-dir)
	// to persist results across restarts. The server never closes it:
	// the owner closes the store after Shutdown returns, so the drain
	// path fsyncs the on-disk index exactly once.
	Store *resultstore.Tiered
	// MaxBatchItems bounds one POST /v1/batch request; <= 0 selects
	// 4096.
	MaxBatchItems int
	// PeerTimeout is the store's tier-2 peer-lookup budget, surfaced in
	// /healthz as peer_timeout_ms so operators can confirm what a daemon
	// is actually running with; 0 means no peer tier is configured.
	PeerTimeout time.Duration
	// Scrubber, when set, has its pass/repair counters surfaced in
	// /healthz and /metrics. The owner (cmd/smtsimd) starts and stops it;
	// the server only reports.
	Scrubber *resultstore.Scrubber
	// Replicator, when set, has its sync/transfer counters surfaced in
	// /healthz and /metrics. Owned by the caller, like Scrubber.
	Replicator *resultstore.Replicator
}

// Server is one simulation service instance. Create with New, expose
// Handler over any http.Server, and call Shutdown to drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	store   *resultstore.Tiered
	flights *flightGroup
	metrics metrics

	admit chan struct{} // admitted flights: waiting + running
	sem   chan struct{} // running flights

	baseCtx context.Context // governs simulations; outlives requests
	stop    context.CancelFunc
	wg      sync.WaitGroup // one per executing flight
}

var (
	errOverloaded   = errors.New("simserver: admission queue full")
	errShuttingDown = errors.New("simserver: shutting down")
)

// New builds a server with defaults applied.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 16
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 120 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Run == nil {
		cfg.Run = simrun.Run
	}
	if cfg.Store == nil {
		cfg.Store = resultstore.NewTiered(resultstore.NewMemory(cfg.CacheEntries), nil, nil)
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		store:   cfg.Store,
		flights: newFlightGroup(),
		admit:   make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		sem:     make(chan struct{}, cfg.Workers),
		baseCtx: ctx,
		stop:    cancel,
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/runcfg", s.handleRunCfg)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/result/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/store/manifest", s.handleManifest)
	s.mux.HandleFunc("POST /v1/store/push", s.handlePush)
	s.mux.HandleFunc("GET /v1/mixes", s.handleMixes)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler, wrapped in panic
// recovery: a panicking handler becomes a 500 + smtsimd_panics_total
// increment instead of a dead daemon.
func (s *Server) Handler() http.Handler { return recoverMiddleware(s.mux, &s.metrics) }

// Store exposes the server's tiered result store (owned by the caller
// when Config.Store was set; see Config).
func (s *Server) Store() *resultstore.Tiered { return s.store }

// recoverMiddleware converts a handler panic into a 500 response and a
// metric, and keeps the daemon serving. The response write is
// best-effort: if the handler panicked mid-body the client sees a
// truncated reply, but the next request is served normally either way.
func recoverMiddleware(next http.Handler, m *metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				m.panics.Add(1)
				fmt.Fprintf(os.Stderr, "simserver: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Shutdown drains: it waits for every executing flight to settle, then
// stops the simulation context. Call it after http.Server.Shutdown has
// stopped new requests. If ctx expires first, remaining simulations are
// cancelled and ctx.Err() returned.
func (s *Server) Shutdown(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.stop()
		<-done
		return ctx.Err()
	}
}

// runResponse is the cacheable part of a POST /v1/run response: it is
// identical no matter which request produced it, so it is exactly a
// stored result entry — the tiered store persists and serves these
// bytes unchanged.
type runResponse = resultstore.Entry

// runReply wraps a runResponse with per-request delivery facts.
type runReply struct {
	*runResponse
	// Cached reports a result served from the LRU without simulating.
	Cached bool `json:"cached"`
	// Coalesced reports a result served by joining another request's
	// in-progress simulation.
	Coalesced bool `json:"coalesced"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)

	var req simrun.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	cfg, err := req.Config()
	if err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := simrun.Key(cfg)

	if resp, _, ok := s.store.Get(r.Context(), key); ok {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Result-Digest", resp.Digest)
		writeJSON(w, http.StatusOK, runReply{runResponse: resp, Cached: true})
		return
	}
	s.metrics.cacheMisses.Add(1)

	f, leader := s.flights.join(key)
	if leader {
		s.wg.Add(1)
		go s.execute(key, f, req.Normalize(), cfg, false)
	} else {
		s.metrics.coalesced.Add(1)
	}

	resp, ok := s.await(w, r, f)
	if !ok {
		return
	}
	w.Header().Set("X-Result-Digest", resp.Digest)
	writeJSON(w, http.StatusOK, runReply{runResponse: resp, Coalesced: !leader})
}

// runCfgReply is the POST /v1/runcfg response: the structured result
// for a raw core.Config. This is the transport behind internal/fleet —
// the client ships the exact config a local run would execute, so the
// returned Result is byte-for-byte the same function of the same input
// no matter which backend served it.
type runCfgReply struct {
	// Key is the cache identity the result is stored under.
	Key string `json:"key"`
	// Result is the full structured simulation result.
	Result core.Result `json:"result"`
	// Digest is the canonical SHA-256 of Result (simrun.ResultDigest),
	// echoed in the X-Result-Digest header; internal/fleet verifies it
	// on every response and treats a mismatch as retryable corruption.
	Digest string `json:"digest"`
	// Cached / Coalesced mirror the /v1/run delivery facts.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
}

// handleRunCfg is POST /v1/runcfg: like /v1/run but the body is a raw
// core.Config instead of a user-vocabulary request. It shares the
// admission, singleflight, and cache machinery; cache keys carry a
// "cfg:" prefix so a raw-config entry (whose request echo is empty) is
// never served to a /v1/run caller.
func (s *Server) handleRunCfg(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)

	var cfg core.Config
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&cfg); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding config: %v", err))
		return
	}
	if cfg.Programs != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "config.Programs is not transportable; name a mix instead")
		return
	}
	if err := cfg.Validate(); err != nil {
		s.metrics.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := "cfg:" + simrun.Key(cfg)

	if resp, _, ok := s.store.Get(r.Context(), key); ok {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Result-Digest", resp.Digest)
		writeJSON(w, http.StatusOK, runCfgReply{Key: key, Result: resp.Result, Digest: resp.Digest, Cached: true})
		return
	}
	s.metrics.cacheMisses.Add(1)

	f, leader := s.flights.join(key)
	if leader {
		s.wg.Add(1)
		go s.execute(key, f, simrun.Request{}, cfg, false)
	} else {
		s.metrics.coalesced.Add(1)
	}

	resp, ok := s.await(w, r, f)
	if !ok {
		return
	}
	w.Header().Set("X-Result-Digest", resp.Digest)
	writeJSON(w, http.StatusOK, runCfgReply{Key: key, Result: resp.Result, Digest: resp.Digest, Coalesced: !leader})
}

// await blocks until flight f settles or the caller disconnects. It
// returns ok=false after writing any error reply (or nothing, when the
// client is gone and the flight continues for other waiters).
func (s *Server) await(w http.ResponseWriter, r *http.Request, f *flight) (*runResponse, bool) {
	select {
	case <-f.done:
	case <-r.Context().Done():
		s.metrics.canceled.Add(1)
		return nil, false
	}
	if f.err != nil {
		s.replyError(w, f.err)
		return nil, false
	}
	return f.val, true
}

// execute is the singleflight leader's path: admission, worker slot,
// timed run, store fill, publish. It runs detached from any one request
// so a disconnecting client never kills a flight other clients (or the
// store) are waiting on. blockAdmission selects the batch discipline:
// a per-request flight past a full queue is rejected immediately (429),
// but a batch item's flight waits for a slot — the batch request itself
// was already accepted, so its items queue instead of failing.
func (s *Server) execute(key string, f *flight, req simrun.Request, cfg core.Config, blockAdmission bool) {
	defer s.wg.Done()

	if blockAdmission {
		select {
		case s.admit <- struct{}{}:
		case <-s.baseCtx.Done():
			s.flights.finish(key, f, nil, errShuttingDown)
			return
		}
	} else {
		select {
		case s.admit <- struct{}{}:
		default:
			s.flights.finish(key, f, nil, errOverloaded)
			return
		}
	}
	defer func() { <-s.admit }()

	s.metrics.queueDepth.Add(1)
	select {
	case s.sem <- struct{}{}:
	case <-s.baseCtx.Done():
		s.metrics.queueDepth.Add(-1)
		s.flights.finish(key, f, nil, errShuttingDown)
		return
	}
	s.metrics.queueDepth.Add(-1)
	defer func() { <-s.sem }()

	s.metrics.inFlight.Add(1)
	runCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RunTimeout)
	start := time.Now()
	res, err := s.runSafe(runCtx, cfg)
	elapsed := time.Since(start)
	cancel()
	s.metrics.inFlight.Add(-1)
	s.metrics.runs.Add(1)

	if err != nil {
		s.metrics.runErrors.Add(1)
		s.flights.finish(key, f, nil, err)
		return
	}
	s.metrics.observeRunSeconds(elapsed.Seconds())
	s.metrics.observeSimThroughput(res.Cycles+cfg.FastForward, elapsed.Nanoseconds())
	resp := &runResponse{
		Key:     key,
		Request: req,
		Result:  res,
		Report:  simrun.Report(cfg, res, simrun.ReportOptions{}),
		Digest:  simrun.ResultDigest(res),
	}
	s.store.Put(resp)
	s.flights.finish(key, f, resp, nil)
}

// runSafe executes one simulation with panic containment. The executor
// runs detached from any request goroutine, so the HTTP middleware
// cannot catch a panic here — without this recover, one poisoned config
// would kill the whole daemon instead of failing one flight with a 500.
func (s *Server) runSafe(ctx context.Context, cfg core.Config) (res core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.metrics.panics.Add(1)
			fmt.Fprintf(os.Stderr, "simserver: panic in simulation: %v\n%s", v, debug.Stack())
			res, err = core.Result{}, fmt.Errorf("simserver: simulation panic: %v", v)
		}
	}()
	return s.cfg.Run(ctx, cfg)
}

// replyError maps a flight failure to an HTTP status.
func (s *Server) replyError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errOverloaded):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		httpError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, errShuttingDown), errors.Is(err, context.Canceled):
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "simulation exceeded the run timeout")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// mixInfo is one entry of GET /v1/mixes.
type mixInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Apps        []string `json:"apps"`
	Homogeneous bool     `json:"homogeneous"`
}

func (s *Server) handleMixes(w http.ResponseWriter, _ *http.Request) {
	mixes := trace.Mixes()
	out := make([]mixInfo, len(mixes))
	for i, m := range mixes {
		out[i] = mixInfo{Name: m.Name, Description: m.Description, Apps: m.Apps, Homogeneous: m.Homogeneous}
	}
	writeJSON(w, http.StatusOK, out)
}

// Health is the GET /healthz response body. Version lets fleet health
// probes detect backend skew (mixed deployments) and log it;
// StoreState lets them weight dispatch away from degraded backends
// without a second endpoint.
type Health struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	// StoreState is the result store's serving state: "ok",
	// "readonly" (disk refuses writes), or "memory-only" (no serving
	// disk tier). Duplicated from Store.State at the top level so fleet
	// probes can read it without decoding the nested block.
	StoreState string `json:"store_state"`
	// Store is the per-tier store detail for operators and runbooks.
	Store StoreHealth `json:"store"`
	// PeerTimeoutMS echoes the configured tier-2 peer-lookup budget
	// (-peer-timeout); 0 when no peer tier is configured.
	PeerTimeoutMS int64 `json:"peer_timeout_ms,omitempty"`
}

// StoreHealth is the /healthz store block: occupancy, degraded-state
// detail, and the self-healing counters (quarantines, scrub repairs,
// replication transfers).
type StoreHealth struct {
	State         string `json:"state"`
	StateReason   string `json:"state_reason,omitempty"`
	MemoryEntries int    `json:"memory_entries"`
	DiskEntries   int    `json:"disk_entries"`
	DiskBytes     int64  `json:"disk_bytes"`
	Quarantines   int64  `json:"quarantines"`
	ScrubPasses   int64  `json:"scrub_passes"`
	ScrubRepaired int64  `json:"scrub_repaired"`
	ReplPulls     int64  `json:"replication_pulls"`
	ReplPushes    int64  `json:"replication_pushes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.baseCtx.Err() != nil {
		status = "draining"
	}
	h := Health{
		Status:        status,
		Version:       buildinfo.Version(),
		StoreState:    s.store.State(),
		PeerTimeoutMS: s.cfg.PeerTimeout.Milliseconds(),
	}
	h.Store.State = h.StoreState
	if mem := s.store.Memory(); mem != nil {
		h.Store.MemoryEntries = mem.Len()
	}
	if disk := s.store.Disk(); disk != nil {
		h.Store.StateReason = disk.StateReason()
		h.Store.DiskEntries = disk.Len()
		h.Store.DiskBytes = disk.Bytes()
		h.Store.Quarantines = disk.Quarantines()
	}
	if sc := s.cfg.Scrubber; sc != nil {
		h.Store.ScrubPasses = sc.Passes()
		h.Store.ScrubRepaired = sc.Repaired()
	}
	if rp := s.cfg.Replicator; rp != nil {
		h.Store.ReplPulls = rp.Pulls()
		h.Store.ReplPushes = rp.Pushes()
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writePrometheus(w)
	// Store occupancy lives on the server, not the counter struct: the
	// tiered store is the source of truth, sampled at scrape time.
	if mem := s.store.Memory(); mem != nil {
		writeGauge(w, "smtsimd_cache_entries", "Memory-tier result entries resident.", int64(mem.Len()))
		writeGauge(w, "smtsimd_cache_capacity", "Memory-tier entry capacity (LRU bound).", int64(mem.Capacity()))
		writeCounter(w, "smtsimd_cache_evictions_total", "Memory-tier entries evicted by the LRU capacity bound.", mem.Evictions())
	}
	sm := s.store.Metrics()
	writeTierCounter(w, "smtsimd_store_hits_total", "Store lookups served, by tier.", sm.Hits)
	writeTierCounter(w, "smtsimd_store_misses_total", "Store lookups missed, by tier.", sm.Misses)
	writeTierCounter(w, "smtsimd_store_put_errors_total", "Store writes that failed, by tier.", sm.PutErrors)
	if disk := s.store.Disk(); disk != nil {
		writeGauge(w, "smtsimd_store_disk_entries", "Disk-tier result entries resident.", int64(disk.Len()))
		writeGauge(w, "smtsimd_store_disk_bytes", "Disk-tier resident entry bytes.", disk.Bytes())
		writeGauge(w, "smtsimd_store_disk_max_bytes", "Disk-tier byte budget.", disk.MaxBytes())
		writeCounter(w, "smtsimd_store_disk_evictions_total", "Disk-tier entries evicted by the byte budget.", disk.Evictions())
		writeCounter(w, "smtsimd_store_disk_quarantines_total", "Disk-tier files quarantined as corrupt or truncated.", disk.Quarantines())
		writeCounter(w, "smtsimd_store_disk_write_faults_total", "Disk-tier writes that failed with a classified fault (ENOSPC, EROFS, permission).", disk.WriteFaults())
		writeCounter(w, "smtsimd_store_disk_read_faults_total", "Disk-tier reads that failed with a classified fault (EIO, permission).", disk.ReadFaults())
		writeCounter(w, "smtsimd_store_disk_degraded_total", "Requests refused because the disk tier was degraded (puts + gets).", disk.DegradedPuts()+disk.DegradedGets())
		writeCounter(w, "smtsimd_store_disk_state_transitions_total", "Disk-tier state-machine transitions into a degraded state.", disk.StateTransitions())
		writeCounter(w, "smtsimd_store_disk_recoveries_total", "Disk-tier recovery probes that re-armed a degraded tier.", disk.Recoveries())
	}
	// Serving state as a gauge: 0 ok, 1 readonly, 2 memory-only — the
	// alert-friendly twin of /healthz store_state.
	writeGauge(w, "smtsimd_store_state", "Store serving state: 0 ok, 1 readonly, 2 memory-only.", storeStateValue(s.store.State()))
	if sc := s.cfg.Scrubber; sc != nil {
		writeCounter(w, "smtsimd_scrub_passes_total", "Background scrub passes started.", sc.Passes())
		writeCounter(w, "smtsimd_scrub_scanned_total", "Entries re-read and re-verified by the scrubber.", sc.Scanned())
		writeCounter(w, "smtsimd_scrub_corrupt_total", "Entries the scrubber found corrupt (quarantined).", sc.Corrupt())
		writeCounter(w, "smtsimd_scrub_repaired_total", "Corrupt entries re-fetched from a peer and re-persisted.", sc.Repaired())
		writeCounter(w, "smtsimd_scrub_repair_failed_total", "Corrupt entries no peer could supply.", sc.RepairFailed())
	}
	if rp := s.cfg.Replicator; rp != nil {
		writeCounter(w, "smtsimd_replication_syncs_total", "Anti-entropy sync rounds started.", rp.Syncs())
		writeCounter(w, "smtsimd_replication_pulls_total", "Missing entries pulled from peers.", rp.Pulls())
		writeCounter(w, "smtsimd_replication_pushes_total", "Under-replicated entries pushed to peers.", rp.Pushes())
		writeCounter(w, "smtsimd_replication_pull_errors_total", "Pull attempts that failed or failed verification.", rp.PullErrors())
		writeCounter(w, "smtsimd_replication_push_errors_total", "Push attempts a peer refused or dropped.", rp.PushErrors())
		writeCounter(w, "smtsimd_replication_manifest_errors_total", "Peer manifest exchanges that failed.", rp.ManifestErrors())
	}
}

// storeStateValue maps a store serving state to its metric gauge value.
func storeStateValue(state string) int64 {
	switch state {
	case resultstore.StateOK:
		return 0
	case resultstore.StateReadOnly:
		return 1
	default:
		return 2
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
