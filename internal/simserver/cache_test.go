package simserver

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	a, b, d := &runResponse{Key: "a"}, &runResponse{Key: "b"}, &runResponse{Key: "d"}
	c.add("a", a)
	c.add("b", b)
	if _, ok := c.get("a"); !ok { // promote a; b is now oldest
		t.Fatal("a missing")
	}
	c.add("d", d)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if got := c.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := newLRU(2)
	c.add("a", &runResponse{Report: "v1"})
	c.add("a", &runResponse{Report: "v2"})
	if got := c.len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
	v, _ := c.get("a")
	if v.Report != "v2" {
		t.Fatalf("Report = %q, want v2", v.Report)
	}
}

// TestLRUConcurrent hammers the cache from many goroutines; the -race
// build is the real assertion.
func TestLRUConcurrent(t *testing.T) {
	c := newLRU(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				c.add(k, &runResponse{Key: k})
				c.get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Fatalf("len = %d exceeds capacity 8", c.len())
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	f1, lead1 := g.join("k")
	if !lead1 {
		t.Fatal("first join should lead")
	}
	f2, lead2 := g.join("k")
	if lead2 || f1 != f2 {
		t.Fatal("second join should coalesce onto the open flight")
	}
	g.finish("k", f1, &runResponse{Key: "k"}, nil)
	<-f2.done
	if f2.val == nil || f2.val.Key != "k" {
		t.Fatal("follower did not observe the leader's result")
	}
	// After finish, the key starts a fresh flight.
	_, lead3 := g.join("k")
	if !lead3 {
		t.Fatal("join after finish should start a new flight")
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	var m metrics
	m.requests.Add(3)
	m.cacheHits.Add(2)
	m.observeRunSeconds(0.004)                 // first bucket
	m.observeRunSeconds(99)                    // +Inf bucket
	m.observeSimThroughput(100000, 25_000_000) // 250 ns/cycle
	m.observeSimThroughput(200000, 25_000_000) // 125 ns/cycle
	m.observeSimThroughput(0, 5)               // guarded: no cycles, no observation
	var b strings.Builder
	m.writePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE smtsimd_requests_total counter",
		"smtsimd_requests_total 3",
		"smtsimd_cache_hits_total 2",
		"# TYPE smtsimd_run_seconds histogram",
		`smtsimd_run_seconds_bucket{le="0.005"} 1`,
		`smtsimd_run_seconds_bucket{le="+Inf"} 2`,
		"smtsimd_run_seconds_count 2",
		"# TYPE smtsimd_sim_cycles_total counter",
		"smtsimd_sim_cycles_total 300000",
		"# TYPE smtsimd_sim_ns_per_cycle summary",
		"smtsimd_sim_ns_per_cycle_sum 375",
		"smtsimd_sim_ns_per_cycle_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
