package simserver

import (
	"strings"
	"testing"
)

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	f1, lead1 := g.join("k")
	if !lead1 {
		t.Fatal("first join should lead")
	}
	f2, lead2 := g.join("k")
	if lead2 || f1 != f2 {
		t.Fatal("second join should coalesce onto the open flight")
	}
	g.finish("k", f1, &runResponse{Key: "k"}, nil)
	<-f2.done
	if f2.val == nil || f2.val.Key != "k" {
		t.Fatal("follower did not observe the leader's result")
	}
	// After finish, the key starts a fresh flight.
	_, lead3 := g.join("k")
	if !lead3 {
		t.Fatal("join after finish should start a new flight")
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	var m metrics
	m.requests.Add(3)
	m.cacheHits.Add(2)
	m.observeRunSeconds(0.004)                 // first bucket
	m.observeRunSeconds(99)                    // +Inf bucket
	m.batchLatency.observe(0.2)                // lands in le="0.25"
	m.observeSimThroughput(100000, 25_000_000) // 250 ns/cycle
	m.observeSimThroughput(200000, 25_000_000) // 125 ns/cycle
	m.observeSimThroughput(0, 5)               // guarded: no cycles, no observation
	var b strings.Builder
	m.writePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE smtsimd_requests_total counter",
		"smtsimd_requests_total 3",
		"smtsimd_cache_hits_total 2",
		"# TYPE smtsimd_run_seconds histogram",
		`smtsimd_run_seconds_bucket{le="0.005"} 1`,
		`smtsimd_run_seconds_bucket{le="+Inf"} 2`,
		"smtsimd_run_seconds_count 2",
		"# TYPE smtsimd_batch_seconds histogram",
		`smtsimd_batch_seconds_bucket{le="0.25"} 1`,
		"smtsimd_batch_seconds_count 1",
		"# TYPE smtsimd_sim_cycles_total counter",
		"smtsimd_sim_cycles_total 300000",
		"# TYPE smtsimd_sim_ns_per_cycle summary",
		"smtsimd_sim_ns_per_cycle_sum 375",
		"smtsimd_sim_ns_per_cycle_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
