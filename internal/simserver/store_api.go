package simserver

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/resultstore"
)

// storeManifest is the GET /v1/store/manifest body: the anti-entropy
// exchange unit. State rides along so a replicator can log why a peer's
// manifest shrank (a degraded disk advertises only what RAM holds).
type storeManifest struct {
	State   string                      `json:"state"`
	Entries []resultstore.ManifestEntry `json:"entries"`
}

// handleManifest is GET /v1/store/manifest: the compact {key, digest}
// list of everything the local tiers can serve. Replicators diff
// manifests to find keys to pull and push; the body stays small (tens
// of bytes per entry) so a full fleet exchange costs less than one
// simulation.
func (s *Server) handleManifest(w http.ResponseWriter, _ *http.Request) {
	entries := s.store.ManifestLocal()
	if entries == nil {
		entries = []resultstore.ManifestEntry{}
	}
	writeJSON(w, http.StatusOK, storeManifest{State: s.store.State(), Entries: entries})
}

// handlePush is POST /v1/store/push: a peer ships one full entry this
// daemon's manifest lacked. The entry is digest-verified before it
// touches any tier — replication must spread results, never corruption
// — so a peer serving rotted bytes gets a 400, not a copy of its rot.
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	var e resultstore.Entry
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&e); err != nil {
		s.metrics.pushRejects.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding pushed entry: %v", err))
		return
	}
	if !resultstore.ValidKey(e.Key) {
		s.metrics.pushRejects.Add(1)
		httpError(w, http.StatusBadRequest, "invalid result key")
		return
	}
	if !e.Verify() {
		s.metrics.pushRejects.Add(1)
		httpError(w, http.StatusBadRequest, "pushed entry failed digest verification")
		return
	}
	s.store.Put(&e)
	s.metrics.pushAccepts.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"status": "stored", "key": e.Key})
}
