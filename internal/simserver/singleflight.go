package simserver

import "sync"

// flightGroup deduplicates concurrent work by key: the first request
// for a key becomes the leader and executes; every request that arrives
// while the flight is open waits on the same result. No external
// singleflight dependency — the stdlib primitives are enough.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress unit of work. done is closed exactly once,
// after val/err are set; waiters must not read them before done closes.
type flight struct {
	done chan struct{}
	val  *runResponse
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the open flight for key, creating one if absent. leader
// reports whether the caller created it and therefore must execute the
// work, call finish, and handle the result.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the result and closes the flight: later requests for
// the same key start a fresh flight (normally they hit the cache first).
func (g *flightGroup) finish(key string, f *flight, val *runResponse, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
}
