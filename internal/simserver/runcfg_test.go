package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/simrun"
	"repro/internal/trace"
)

func testCoreConfig(t *testing.T) core.Config {
	t.Helper()
	var req simrun.Request
	if err := json.Unmarshal([]byte(testRequest), &req); err != nil {
		t.Fatal(err)
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func postRunCfg(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runcfg", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runcfg: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, raw
}

// TestRunCfgByteIdenticalAndCached: a raw core.Config posted to
// /v1/runcfg returns a Result byte-identical (as JSON) to running the
// same config in-process, and a repeat request is served from the cache
// without a second simulation.
func TestRunCfgByteIdenticalAndCached(t *testing.T) {
	var sims atomic.Int64
	srv := New(Config{
		Workers: 2,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			sims.Add(1)
			return simrun.Run(ctx, cfg)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	cfg := testCoreConfig(t)
	direct, err := simrun.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}

	resp, raw := postRunCfg(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var reply struct {
		Key    string      `json:"key"`
		Result core.Result `json:"result"`
		Cached bool        `json:"cached"`
	}
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply.Key, "cfg:") {
		t.Fatalf("key %q not namespaced with cfg: prefix", reply.Key)
	}
	got, err := json.Marshal(reply.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote result diverges from local run:\n got: %s\nwant: %s", got, want)
	}

	resp2, raw2 := postRunCfg(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, raw2)
	}
	var reply2 struct {
		Cached bool        `json:"cached"`
		Result core.Result `json:"result"`
	}
	if err := json.Unmarshal(raw2, &reply2); err != nil {
		t.Fatal(err)
	}
	if !reply2.Cached {
		t.Fatal("repeat request was not served from the cache")
	}
	if sims.Load() != 1 {
		t.Fatalf("two identical runcfg requests ran %d simulations, want 1", sims.Load())
	}
}

// TestRunCfgRejectsBadConfigs: malformed JSON, invalid configs, and
// configs carrying live program state are all 400s, not simulations.
func TestRunCfgRejectsBadConfigs(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, raw := postRunCfg(t, ts.URL, []byte(`{not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d (%s), want 400", resp.StatusCode, raw)
	}

	bad := testCoreConfig(t)
	bad.Threads = 0
	body, _ := json.Marshal(bad)
	resp, raw = postRunCfg(t, ts.URL, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config: status %d (%s), want 400", resp.StatusCode, raw)
	}

	withProgs := testCoreConfig(t)
	withProgs.Programs = []*trace.Program{}
	body, _ = json.Marshal(withProgs)
	resp, raw = postRunCfg(t, ts.URL, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("config with Programs: status %d (%s), want 400", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "Programs") {
		t.Fatalf("Programs rejection does not explain itself: %s", raw)
	}
}

// TestMetricsCacheGauges: /metrics reports cache occupancy and capacity
// so operators can see eviction pressure.
func TestMetricsCacheGauges(t *testing.T) {
	srv := New(Config{Workers: 1, CacheEntries: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	fetch := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	m := fetch()
	if !strings.Contains(m, "smtsimd_cache_entries 0\n") {
		t.Fatalf("empty server metrics missing smtsimd_cache_entries 0:\n%s", m)
	}
	if !strings.Contains(m, "smtsimd_cache_capacity 64\n") {
		t.Fatalf("metrics missing smtsimd_cache_capacity 64:\n%s", m)
	}

	body, _ := json.Marshal(testCoreConfig(t))
	if resp, raw := postRunCfg(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("runcfg status %d: %s", resp.StatusCode, raw)
	}
	if m := fetch(); !strings.Contains(m, "smtsimd_cache_entries 1\n") {
		t.Fatalf("metrics missing smtsimd_cache_entries 1 after a run:\n%s", m)
	}
}

// TestHealthzReportsVersion: the health body carries the build version
// so fleet probes can log backend skew.
func TestHealthzReportsVersion(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q, want ok", h.Status)
	}
	if h.Version == "" {
		t.Fatal("healthz version is empty; fleet skew logging needs it")
	}
}

// TestRunCfgMultiCore: a Cores>1 raw config runs through the same
// endpoint — validation accepts it, simrun routes it through
// internal/multicore, and the reply carries the multi-core result
// fields with a verifiable digest.
func TestRunCfgMultiCore(t *testing.T) {
	srv := New(Config{Workers: 2, Run: simrun.Run})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := testCoreConfig(t)
	cfg.Threads = 4
	cfg.Quanta = 2
	cfg.FastForward = 0
	cfg.Cores = 2
	cfg.Allocation = "synpa"
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postRunCfg(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var reply struct {
		Result core.Result `json:"result"`
		Digest string      `json:"digest"`
	}
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Result.Cores != 2 || reply.Result.Allocation != "synpa" || len(reply.Result.PerCoreIPC) != 2 {
		t.Fatalf("multi-core fields missing from reply: %+v", reply.Result)
	}
	if got := simrun.ResultDigest(reply.Result); got != reply.Digest {
		t.Fatalf("digest mismatch: computed %s, server sent %s", got, reply.Digest)
	}

	// An invalid allocation must be rejected at validation, not run.
	cfg.Allocation = "nope"
	body, _ = json.Marshal(cfg)
	resp, raw = postRunCfg(t, ts.URL, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad allocation: status %d, want 400: %s", resp.StatusCode, raw)
	}
}

// TestRunCfgAdaptiveSelector: a bandit config posted to /v1/runcfg runs
// through the registered adaptive selector and returns a verifiable
// digest — the fleet path for learned-selection sweeps.
func TestRunCfgAdaptiveSelector(t *testing.T) {
	srv := New(Config{Workers: 2, Run: simrun.Run})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var req simrun.Request
	if err := json.Unmarshal([]byte(testRequest), &req); err != nil {
		t.Fatal(err)
	}
	req.Mode = "adts"
	req.Heuristic = "bandit"
	req.SelectorSeed = 7
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Quanta = 4
	cfg.FastForward = 0
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postRunCfg(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var reply struct {
		Result core.Result `json:"result"`
		Digest string      `json:"digest"`
	}
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}
	if got := simrun.ResultDigest(reply.Result); got != reply.Digest {
		t.Fatalf("digest mismatch: computed %s, server sent %s", got, reply.Digest)
	}
	if len(reply.Result.Detector.PolicyQuanta) == 0 {
		t.Fatal("adaptive run reply missing PolicyQuanta audit")
	}
	// A second POST must be served from cache with the same digest.
	resp2, raw2 := postRunCfg(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached POST status %d: %s", resp2.StatusCode, raw2)
	}
	var reply2 struct {
		Digest string `json:"digest"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(raw2, &reply2); err != nil {
		t.Fatal(err)
	}
	if !reply2.Cached || reply2.Digest != reply.Digest {
		t.Fatalf("cached adaptive reply diverged: cached=%t digest %s vs %s",
			reply2.Cached, reply2.Digest, reply.Digest)
	}
}
