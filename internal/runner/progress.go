package runner

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// startProgress launches the reporter goroutine: every interval it
// writes one completed/total, jobs/sec, ETA line, skipping ticks with
// no change. The returned func stops the reporter and emits a final
// summary line.
func startProgress(w io.Writer, interval time.Duration, total, resumed int, completed *atomic.Int64) func() {
	if interval <= 0 {
		interval = time.Second
	}
	start := time.Now()
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		last := int64(-1)
		for {
			select {
			case <-done:
				return
			case <-t.C:
				n := completed.Load()
				if n == last {
					continue
				}
				last = n
				fmt.Fprintln(w, progressLine(int(n), total, resumed, time.Since(start)))
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
		n := int(completed.Load())
		fmt.Fprintf(w, "runner: %d/%d jobs settled (%d resumed) in %s\n",
			n, total, resumed, time.Since(start).Round(time.Millisecond))
	}
}

// progressLine formats one ticker line. Rate and ETA are computed over
// fresh completions only, so a mostly-resumed sweep does not advertise
// an absurd jobs/sec.
func progressLine(completed, total, resumed int, elapsed time.Duration) string {
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(completed) / float64(total)
	}
	fresh := completed - resumed
	rate := 0.0
	if elapsed > 0 && fresh > 0 {
		rate = float64(fresh) / elapsed.Seconds()
	}
	eta := "?"
	if rate > 0 {
		remaining := time.Duration(float64(total-completed) / rate * float64(time.Second))
		eta = remaining.Round(time.Second).String()
	}
	return fmt.Sprintf("runner: %d/%d (%.1f%%) %.1f jobs/s ETA %s", completed, total, pct, rate, eta)
}
