package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Entry is one checkpoint line: a settled job keyed by name + config
// hash with its JSON-encoded result. The file is JSONL — one Entry per
// line, appended as jobs complete, so an interrupt loses at most the
// line being written (a torn tail line is skipped on resume).
type Entry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// Checkpoint is an append-only JSONL record of completed jobs. It is
// safe for concurrent Record calls from pool workers.
type Checkpoint struct {
	path    string
	mu      sync.Mutex
	f       *os.File
	done    map[string]json.RawMessage
	skipped int
}

// Open creates or opens a checkpoint file. With resume true, existing
// entries are loaded (satisfying matching jobs on the next Run) and new
// results append; with resume false any existing file is truncated.
//
// A crash mid-append leaves a torn, unterminated tail line. On resume
// that tail is discarded — from memory and from the file, so the next
// appended entry starts on a clean line instead of being concatenated
// onto the torn bytes (which would poison it for every later resume).
// The affected job simply reruns; Skipped reports how many lines were
// dropped so callers can warn.
func Open(path string, resume bool) (*Checkpoint, error) {
	done := make(map[string]json.RawMessage)
	skipped := 0
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if resume {
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("runner: resume %s: %w", path, err)
		}
		// Scan lines tracking byte offsets so a torn tail can be cut off
		// the file, not just ignored in memory.
		tailStart, tailOK := 0, true
		for off := 0; off < len(data); {
			end := len(data)
			if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
				end = off + nl + 1
			}
			line := bytes.TrimSpace(data[off:end])
			if len(line) > 0 {
				var e Entry
				if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
					skipped++
					tailStart, tailOK = off, false
				} else {
					done[e.Key] = e.Result
					tailOK = true
				}
			}
			off = end
		}
		if !tailOK {
			if err := os.Truncate(path, int64(tailStart)); err != nil {
				return nil, fmt.Errorf("runner: dropping torn checkpoint tail in %s: %w", path, err)
			}
		}
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: checkpoint %s: %w", path, err)
	}
	return &Checkpoint{path: path, f: f, done: done, skipped: skipped}, nil
}

// Skipped reports how many unreadable lines (torn tails from
// interrupted writes, or other corruption) were discarded on resume.
// Callers should surface a warning when it is non-zero; the affected
// jobs rerun.
func (c *Checkpoint) Skipped() int { return c.skipped }

// Path returns the backing file path.
func (c *Checkpoint) Path() string { return c.path }

// Len returns the number of recorded entries.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Lookup returns the recorded result for key, if any.
func (c *Checkpoint) Lookup(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.done[key]
	return raw, ok
}

// Record appends one completed job. The line reaches the file before
// Record returns, so results survive a subsequent interrupt.
func (c *Checkpoint) Record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line, err := json.Marshal(Entry{Key: key, Result: raw})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return err
	}
	c.done[key] = raw
	return nil
}

// Close closes the backing file. Lookup keeps working afterwards;
// Record does not.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}
