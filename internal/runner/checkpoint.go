package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"
)

// Entry is one checkpoint line: a settled job keyed by name + config
// hash with its JSON-encoded result. The file is JSONL — one Entry per
// line, appended as jobs complete, so an interrupt loses at most the
// line being written (a torn tail line is skipped on resume).
//
// Each line is prefixed with the IEEE CRC32 of its JSON payload,
// rendered as eight hex digits and a space: "%08x {...}\n". The
// checksum catches silent mid-file corruption (bit rot, partial block
// writes) that a torn-tail scan alone cannot — a corrupted line fails
// its CRC, is skipped, and the affected job reruns. Legacy lines
// without the prefix still parse.
type Entry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// CheckpointOptions configures OpenWith.
type CheckpointOptions struct {
	// Resume loads existing entries instead of truncating the file.
	Resume bool
	// NoSync skips the fsync after each Record. The default (sync per
	// record) means a completed job survives power loss the moment
	// Record returns; NoSync trades that for throughput, bounding the
	// loss to what the OS had not yet flushed.
	NoSync bool
	// WrapWriter, when non-nil, wraps the checkpoint's backing file —
	// a fault-injection seam so tests can tear writes mid-line (see
	// internal/chaos.Writer) and prove resume survives.
	WrapWriter func(io.WriteCloser) io.WriteCloser
}

// Checkpoint is an append-only JSONL record of completed jobs. It is
// safe for concurrent Record calls from pool workers.
type Checkpoint struct {
	path    string
	mu      sync.Mutex
	w       io.WriteCloser
	sync    bool
	done    map[string]json.RawMessage
	skipped int
}

// Open creates or opens a checkpoint file. With resume true, existing
// entries are loaded (satisfying matching jobs on the next Run) and new
// results append; with resume false any existing file is truncated.
func Open(path string, resume bool) (*Checkpoint, error) {
	return OpenWith(path, CheckpointOptions{Resume: resume})
}

// OpenWith is Open with explicit durability and fault-injection
// options.
//
// A crash mid-append leaves a torn, unterminated tail line. On resume
// that tail is discarded — from memory and from the file, so the next
// appended entry starts on a clean line instead of being concatenated
// onto the torn bytes (which would poison it for every later resume).
// Mid-file lines that fail their CRC or do not parse are skipped in
// memory but left in place. The affected jobs simply rerun; Skipped
// reports how many lines were dropped so callers can warn.
func OpenWith(path string, opts CheckpointOptions) (*Checkpoint, error) {
	done := make(map[string]json.RawMessage)
	skipped := 0
	needNL := false
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if opts.Resume {
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("runner: resume %s: %w", path, err)
		}
		// Scan lines tracking byte offsets so a torn tail can be cut off
		// the file, not just ignored in memory.
		tailStart, tailOK := 0, true
		for off := 0; off < len(data); {
			end := len(data)
			if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
				end = off + nl + 1
			}
			line := bytes.TrimSpace(data[off:end])
			if len(line) > 0 {
				e, err := parseLine(line)
				if err != nil {
					skipped++
					tailStart, tailOK = off, false
				} else {
					done[e.Key] = e.Result
					tailOK = true
				}
			}
			off = end
		}
		if !tailOK {
			if err := os.Truncate(path, int64(tailStart)); err != nil {
				return nil, fmt.Errorf("runner: dropping torn checkpoint tail in %s: %w", path, err)
			}
		}
		needNL = tailOK && len(data) > 0 && data[len(data)-1] != '\n'
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: checkpoint %s: %w", path, err)
	}
	if needNL {
		// A crash can cut a line after its last payload byte but before
		// the newline: the entry is intact, but appending onto the
		// unterminated tail would concatenate two lines into garbage.
		// Terminate it now.
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: terminating checkpoint tail in %s: %w", path, err)
		}
	}
	var w io.WriteCloser = f
	if opts.WrapWriter != nil {
		w = opts.WrapWriter(f)
	}
	return &Checkpoint{path: path, w: w, sync: !opts.NoSync, done: done, skipped: skipped}, nil
}

// parseLine decodes one checkpoint line in either format: the current
// CRC-prefixed form "%08x <json>" or a legacy bare-JSON line.
func parseLine(line []byte) (Entry, error) {
	if len(line) > 9 && line[8] == ' ' {
		if crc, err := strconv.ParseUint(string(line[:8]), 16, 32); err == nil {
			payload := line[9:]
			if crc32.ChecksumIEEE(payload) != uint32(crc) {
				return Entry{}, fmt.Errorf("crc mismatch")
			}
			line = payload
		}
	}
	var e Entry
	if err := json.Unmarshal(line, &e); err != nil {
		return Entry{}, err
	}
	if e.Key == "" {
		return Entry{}, fmt.Errorf("entry missing key")
	}
	return e, nil
}

// ReadEntries loads every readable entry of a checkpoint file in file
// order, without opening it for appending. Duplicate keys keep every
// occurrence (last-wins semantics belong to resume; offline consumers
// like cmd/adts-train want the raw record). Unreadable lines are
// skipped, mirroring resume. File order is deterministic — the order
// jobs were recorded — so replay-based training is reproducible.
func ReadEntries(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runner: reading checkpoint %s: %w", path, err)
	}
	var out []Entry
	for off := 0; off < len(data); {
		end := len(data)
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			end = off + nl + 1
		}
		line := bytes.TrimSpace(data[off:end])
		if len(line) > 0 {
			if e, err := parseLine(line); err == nil {
				out = append(out, e)
			}
		}
		off = end
	}
	return out, nil
}

// Skipped reports how many unreadable lines (torn tails from
// interrupted writes, CRC failures, or other corruption) were
// discarded on resume. Callers should surface a warning when it is
// non-zero; the affected jobs rerun.
func (c *Checkpoint) Skipped() int { return c.skipped }

// Path returns the backing file path.
func (c *Checkpoint) Path() string { return c.path }

// Len returns the number of recorded entries.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Lookup returns the recorded result for key, if any.
func (c *Checkpoint) Lookup(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.done[key]
	return raw, ok
}

// Record appends one completed job as a CRC-prefixed line and, unless
// opened with NoSync, fsyncs before returning — so a recorded result
// survives power loss, not just process death.
func (c *Checkpoint) Record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(Entry{Key: key, Result: raw})
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := io.WriteString(c.w, line); err != nil {
		return err
	}
	if c.sync {
		if s, ok := c.w.(interface{ Sync() error }); ok {
			if err := s.Sync(); err != nil {
				return err
			}
		}
	}
	c.done[key] = raw
	return nil
}

// Close closes the backing file. Lookup keeps working afterwards;
// Record does not.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.w.Close()
}
