// Package runner is the resilient job executor behind every sweep: a
// context-aware worker pool with graceful cancellation (in-flight jobs
// drain and their results are flushed before Run returns), per-job
// panic recovery with one bounded retry, JSONL checkpointing keyed by
// job name + config hash so an interrupted sweep resumes instead of
// recomputing, and a progress reporter ticking on stderr.
//
// Lifecycle of one Run call:
//
//  1. Resume pass — jobs whose Key is already in the checkpoint are
//     satisfied from it without running.
//  2. Dispatch — remaining jobs are fed to a bounded worker pool.
//     Results land index-aligned with the input slice, so output is
//     byte-identical regardless of worker count or resume point.
//  3. Settle — each completed job is appended to the checkpoint
//     immediately (one JSONL line per job, flushed per write).
//  4. Drain — on context cancellation or first job failure no new
//     jobs are dispatched; in-flight jobs finish and are recorded.
//
// Run fails fast: the first job error stops dispatch, and the returned
// error is an errors.Join naming every job that failed.
package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one named, independently runnable unit of work.
type Job[T any] struct {
	// Name identifies the job in errors and hook events.
	Name string
	// Key is the checkpoint identity (job name + config hash; see
	// KeyOf). Empty disables checkpointing for this job.
	Key string
	// Run computes the result locally. It must be deterministic for
	// checkpoint resume to be sound. It is also every Executor's
	// fallback, so it must stay correct even when an executor normally
	// routes the job elsewhere.
	Run func(ctx context.Context) (T, error)
	// Payload optionally exposes the job's input (e.g. a simulation
	// config) so a non-local Executor can ship it to a remote backend
	// instead of calling Run. Executors that cannot interpret the
	// payload fall back to Run.
	Payload any
}

// Executor is the pluggable compute behind a Run call: it evaluates one
// job and returns its result. The local executor (a nil Executor, or
// Local) calls the job's own Run closure; internal/fleet provides a
// distributed one that ships job payloads to a pool of smtsimd
// backends. Executors must be deterministic in the same sense as
// Job.Run: equal payloads produce equal results, no matter which
// executor (or backend) served them — checkpoint resume and
// index-aligned output depend on it.
//
// Execute may be called concurrently from pool workers.
type Executor[T any] interface {
	Execute(ctx context.Context, j Job[T]) (T, error)
}

// BatchExecutor is an Executor that can additionally evaluate a whole
// chunk of jobs in one call (e.g. one POST /v1/batch round trip to a
// backend, instead of one request per job). RunWith detects it and
// hands each worker a chunk of pending jobs; per-job settle semantics
// — checkpointing, hooks, fail-fast — are unchanged.
//
// ExecuteBatch must return results and errors index-aligned with its
// input; the errors slice may be nil when every job succeeded. A
// panicking or contract-breaking ExecuteBatch demotes the chunk to
// per-job Execute calls, so a batching bug degrades throughput, never
// correctness.
type BatchExecutor[T any] interface {
	Executor[T]
	ExecuteBatch(ctx context.Context, jobs []Job[T]) ([]T, []error)
}

// Local is the identity executor: it runs every job in-process via its
// Run closure. RunWith with a nil executor behaves identically.
type Local[T any] struct{}

// Execute implements Executor by calling j.Run.
func (Local[T]) Execute(ctx context.Context, j Job[T]) (T, error) { return j.Run(ctx) }

// Event describes one settled job, delivered to Options.Hook.
type Event struct {
	Index     int    // position in the input slice
	Name      string // job name
	Err       error  // non-nil when the job failed
	Resumed   bool   // satisfied from the checkpoint without running
	Attempts  int    // execution attempts (0 when resumed)
	Completed int    // jobs settled so far, including this one
	Total     int    // total jobs in this Run call
}

// Options configures a Run call.
type Options struct {
	// Workers bounds pool parallelism; <= 0 selects GOMAXPROCS.
	Workers int
	// Checkpoint, when non-nil, is consulted before running each job
	// and appended to after each completion.
	Checkpoint *Checkpoint
	// Progress, when non-nil, receives periodic completed/total,
	// jobs/sec and ETA lines (the CLI passes stderr).
	Progress io.Writer
	// ProgressInterval is the reporting period; <= 0 selects 1s.
	ProgressInterval time.Duration
	// Hook, when non-nil, is called after every job settles (resumed,
	// completed, or failed). It may be called from multiple goroutines.
	Hook func(Event)
}

// PanicError is a recovered job panic converted to an error.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("panic: %v", p.Value) }

// ConfigHash is the canonical identity of a configuration: a short
// SHA-256 of its JSON encoding. Simulations are deterministic functions
// of their config, so equal hashes mean byte-identical results — the
// checkpoint store and the simserver result cache both key on it.
// Unmarshalable configs hash to "" (callers treat that as uncacheable).
func ConfigHash(config any) string {
	raw, err := json.Marshal(config)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8])
}

// KeyOf derives a checkpoint key from a job name and its config: the
// name plus the config's ConfigHash, so a stale checkpoint written
// under different experimental conditions never satisfies a job.
func KeyOf(name string, config any) string {
	h := ConfigHash(config)
	if h == "" {
		return name
	}
	return name + "#" + h
}

// Run executes the jobs and returns results index-aligned with them.
//
// On success the error is nil. On job failure, dispatch stops at the
// first error and the returned error joins one error per failed job.
// On context cancellation, in-flight jobs drain, their results are
// checkpointed, and the returned error wraps ctx.Err(); the result
// slice holds every completed job (zero values elsewhere).
func Run[T any](ctx context.Context, jobs []Job[T], o Options) ([]T, error) {
	return RunWith[T](ctx, jobs, o, nil)
}

// RunWith is Run with a pluggable Executor: the pool, checkpointing,
// progress, fail-fast, and drain semantics are identical, but each
// pending job is evaluated by exec instead of its own Run closure. A
// nil exec selects local execution.
func RunWith[T any](ctx context.Context, jobs []Job[T], o Options, exec Executor[T]) ([]T, error) {
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))

	var completed atomic.Int64
	hook := func(e Event) {
		if o.Hook != nil {
			o.Hook(e)
		}
	}

	// Resume pass: satisfy jobs already in the checkpoint.
	pending := make([]int, 0, len(jobs))
	for i, j := range jobs {
		if o.Checkpoint != nil && j.Key != "" {
			if raw, ok := o.Checkpoint.Lookup(j.Key); ok {
				var v T
				if err := json.Unmarshal(raw, &v); err == nil {
					results[i] = v
					n := int(completed.Add(1))
					hook(Event{Index: i, Name: j.Name, Resumed: true, Completed: n, Total: len(jobs)})
					continue
				}
				// Corrupt entry: fall through and recompute.
			}
		}
		pending = append(pending, i)
	}
	resumed := len(jobs) - len(pending)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var stopProgress func()
	if o.Progress != nil {
		stopProgress = startProgress(o.Progress, o.ProgressInterval, len(jobs), resumed, &completed)
	}

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	// settle records one finished job: checkpoint, result/error slot,
	// fail-fast cancel, hook. Shared by the per-job and batch paths.
	settle := func(i int, v T, attempts int, err error) {
		j := jobs[i]
		if err == nil && o.Checkpoint != nil && j.Key != "" {
			if cerr := o.Checkpoint.Record(j.Key, v); cerr != nil {
				err = fmt.Errorf("checkpoint: %w", cerr)
			}
		}
		if err != nil {
			errs[i] = fmt.Errorf("job %q: %w", j.Name, err)
			cancel() // fail fast: stop dispatching
		} else {
			results[i] = v
		}
		n := int(completed.Add(1))
		hook(Event{Index: i, Name: j.Name, Err: errs[i], Attempts: attempts, Completed: n, Total: len(jobs)})
	}

	var wg sync.WaitGroup
	if batcher, ok := exec.(BatchExecutor[T]); ok && len(pending) > 1 {
		runBatched(runCtx, jobs, pending, workers, batcher, settle)
	} else {
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					// A cancel can race the dispatcher's select; skip jobs
					// that slipped through so fail-fast stays strict.
					if runCtx.Err() != nil {
						continue
					}
					v, attempts, err := attempt(runCtx, jobs[i], exec)
					settle(i, v, attempts, err)
				}
			}()
		}

	dispatch:
		for _, i := range pending {
			select {
			case idx <- i:
			case <-runCtx.Done():
				break dispatch
			}
		}
		close(idx)
	}
	wg.Wait()
	if stopProgress != nil {
		stopProgress()
	}

	var joined []error
	for _, e := range errs {
		if e != nil {
			joined = append(joined, e)
		}
	}
	if err := ctx.Err(); err != nil {
		joined = append(joined, err)
	}
	if len(joined) > 0 {
		return results, errors.Join(joined...)
	}
	return results, nil
}

// runBatched is the BatchExecutor dispatch path: pending jobs are cut
// into one chunk per worker and each worker settles its chunk from a
// single ExecuteBatch call. It returns when every dispatched chunk has
// settled.
func runBatched[T any](ctx context.Context, jobs []Job[T], pending []int, workers int, be BatchExecutor[T], settle func(i int, v T, attempts int, err error)) {
	chunkSize := (len(pending) + workers - 1) / workers
	chunks := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range chunks {
				if ctx.Err() != nil {
					continue
				}
				batch := make([]Job[T], len(chunk))
				for k, i := range chunk {
					batch[k] = jobs[i]
				}
				vs, berrs := executeBatchSafe(ctx, be, batch)
				if len(vs) != len(chunk) || (berrs != nil && len(berrs) != len(chunk)) {
					// Broken batch contract (wrong lengths, or a panic):
					// demote the chunk to per-job execution.
					for _, i := range chunk {
						if ctx.Err() != nil {
							continue
						}
						v, attempts, err := attempt(ctx, jobs[i], be)
						settle(i, v, attempts, err)
					}
					continue
				}
				for k, i := range chunk {
					var err error
					if berrs != nil {
						err = berrs[k]
					}
					settle(i, vs[k], 1, err)
				}
			}
		}()
	}
dispatch:
	for start := 0; start < len(pending); start += chunkSize {
		end := start + chunkSize
		if end > len(pending) {
			end = len(pending)
		}
		select {
		case chunks <- pending[start:end]:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(chunks)
	wg.Wait()
}

// executeBatchSafe calls ExecuteBatch with panic containment; a panic
// reports as a nil result slice, which the caller treats as a broken
// batch and demotes to per-job execution.
func executeBatchSafe[T any](ctx context.Context, be BatchExecutor[T], batch []Job[T]) (vs []T, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			vs, errs = nil, nil
		}
	}()
	return be.ExecuteBatch(ctx, batch)
}

// attempt runs a job with panic recovery and one bounded retry: a
// panicking job is re-run once, and a second panic (or any returned
// error) fails the job.
func attempt[T any](ctx context.Context, j Job[T], exec Executor[T]) (v T, attempts int, err error) {
	const maxAttempts = 2
	for attempts = 1; attempts <= maxAttempts; attempts++ {
		v, err = runOnce(ctx, j, exec)
		if err == nil {
			return v, attempts, nil
		}
		var p *PanicError
		if !errors.As(err, &p) || attempts == maxAttempts {
			return v, attempts, err
		}
	}
	return v, maxAttempts, err
}

func runOnce[T any](ctx context.Context, j Job[T], exec Executor[T]) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v, err = zero, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if exec != nil {
		return exec.Execute(ctx, j)
	}
	return j.Run(ctx)
}
