package runner

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
)

// crashRecord holds fixed-size payloads so checkpoint lines have a
// predictable length and tear offsets can sweep every byte position.
type crashRecord struct {
	N int `json:"n"`
}

// TestTornWriteNeverPoisonsResume sweeps the tear point across several
// lines' worth of byte offsets. For every offset: records append until
// the injected kill -9 fires, then a resume must (a) recover every
// fully-recorded entry, (b) drop the torn tail, and (c) accept new
// records that survive yet another resume — i.e. the file is never left
// in a state that poisons later sessions.
func TestTornWriteNeverPoisonsResume(t *testing.T) {
	// Measure one line's length with an intact writer.
	dir := t.TempDir()
	probe := filepath.Join(dir, "probe.ckpt")
	cp, err := Open(probe, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("job-000", crashRecord{N: 0}); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	info, err := os.Stat(probe)
	if err != nil {
		t.Fatal(err)
	}
	lineLen := info.Size()

	for off := int64(1); off < 3*lineLen; off += 7 {
		t.Run(fmt.Sprintf("tear-at-%d", off), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweep.ckpt")
			cp, err := OpenWith(path, CheckpointOptions{
				WrapWriter: func(w io.WriteCloser) io.WriteCloser {
					return chaos.NewWriter(w, off)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			recorded := 0
			for i := 0; i < 10; i++ {
				err := cp.Record(fmt.Sprintf("job-%03d", i), crashRecord{N: i})
				if err != nil {
					if !errors.Is(err, chaos.ErrTorn) {
						t.Fatalf("record %d: %v", i, err)
					}
					break
				}
				recorded++
			}
			cp.Close()
			if recorded >= 10 {
				t.Fatalf("tear at %d never fired", off)
			}

			// Resume 1: every record that returned nil must be present. A
			// tear that only cost the trailing newline may additionally
			// recover the in-flight record — that is a bonus, never a loss.
			re, err := Open(path, true)
			if err != nil {
				t.Fatalf("resume after tear at %d: %v", off, err)
			}
			if re.Len() != recorded && re.Len() != recorded+1 {
				t.Fatalf("resume recovered %d entries, want %d (or %d)", re.Len(), recorded, recorded+1)
			}
			for i := 0; i < recorded; i++ {
				if _, ok := re.Lookup(fmt.Sprintf("job-%03d", i)); !ok {
					t.Fatalf("resume lost job-%03d", i)
				}
			}
			// The torn job reruns and re-records on a clean line.
			if err := re.Record(fmt.Sprintf("job-%03d", recorded), crashRecord{N: recorded}); err != nil {
				t.Fatalf("record after resume: %v", err)
			}
			re.Close()

			// Resume 2: nothing skipped, nothing concatenated, all there.
			re2, err := Open(path, true)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if re2.Skipped() != 0 {
				t.Fatalf("second resume skipped %d lines: file was poisoned", re2.Skipped())
			}
			if re2.Len() != recorded+1 {
				t.Fatalf("second resume has %d entries, want %d", re2.Len(), recorded+1)
			}
		})
	}
}

// TestCRCDetectsMidFileCorruption flips one byte in the middle line of
// a three-entry checkpoint. Resume must skip exactly that line, keep
// the neighbours, and leave the file intact (mid-file damage is
// reported, not truncated over).
func TestCRCDetectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.ckpt")
	cp, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cp.Record(fmt.Sprintf("job-%d", i), crashRecord{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	cp.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the middle line. The JSON still parses
	// (digit for digit) so only the CRC can catch it.
	mid := len(data) / 2
	for ; mid < len(data); mid++ {
		if data[mid] >= '0' && data[mid] <= '9' && data[mid-1] == ':' {
			data[mid] = '0' + ('9' - data[mid])
			break
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1 (the corrupted middle line)", re.Skipped())
	}
	if re.Len() != 2 {
		t.Fatalf("Len() = %d, want the 2 intact entries", re.Len())
	}
	if _, ok := re.Lookup("job-0"); !ok {
		t.Fatal("lost job-0 before the corrupted line")
	}
	if _, ok := re.Lookup("job-2"); !ok {
		t.Fatal("lost job-2 after the corrupted line")
	}
}

// TestLegacyPlainLinesStillParse: checkpoints written before the CRC
// prefix existed are bare JSON lines; resume must still load them.
func TestLegacyPlainLinesStillParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	legacy := `{"key":"old-1","result":{"n":1}}` + "\n" + `{"key":"old-2","result":{"n":2}}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.Skipped() != 0 || cp.Len() != 2 {
		t.Fatalf("legacy resume: Len=%d Skipped=%d, want 2/0", cp.Len(), cp.Skipped())
	}
	// New records append in the CRC format alongside the legacy lines
	// and both survive the next resume.
	if err := cp.Record("new-1", crashRecord{N: 3}); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	re, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 || re.Skipped() != 0 {
		t.Fatalf("mixed-format resume: Len=%d Skipped=%d, want 3/0", re.Len(), re.Skipped())
	}
}

// syncCounter counts Sync calls through the WrapWriter seam.
type syncCounter struct {
	io.WriteCloser
	syncs int
}

func (s *syncCounter) Sync() error { s.syncs++; return nil }

// TestFsyncPolicy: the default syncs once per Record; NoSync never
// syncs.
func TestFsyncPolicy(t *testing.T) {
	for _, noSync := range []bool{false, true} {
		var sc *syncCounter
		path := filepath.Join(t.TempDir(), "sync.ckpt")
		cp, err := OpenWith(path, CheckpointOptions{
			NoSync: noSync,
			WrapWriter: func(w io.WriteCloser) io.WriteCloser {
				sc = &syncCounter{WriteCloser: w}
				return sc
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := cp.Record(fmt.Sprintf("job-%d", i), crashRecord{N: i}); err != nil {
				t.Fatal(err)
			}
		}
		cp.Close()
		want := 3
		if noSync {
			want = 0
		}
		if sc.syncs != want {
			t.Errorf("NoSync=%v: %d syncs, want %d", noSync, sc.syncs, want)
		}
	}
}
