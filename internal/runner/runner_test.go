package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// intJob returns a job computing v, counting invocations in calls.
func intJob(name string, v int, calls *atomic.Int32) Job[int] {
	return Job[int]{
		Name: name,
		Run: func(context.Context) (int, error) {
			if calls != nil {
				calls.Add(1)
			}
			return v, nil
		},
	}
}

func TestRunAligned(t *testing.T) {
	var jobs []Job[int]
	for i := 0; i < 20; i++ {
		jobs = append(jobs, intJob(fmt.Sprintf("j%d", i), i*i, nil))
	}
	for _, workers := range []int{1, 4, 0} {
		got, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestCancellationMidRunDrainsAndFlushes(t *testing.T) {
	dir := t.TempDir()
	cp, err := Open(filepath.Join(dir, "ck.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls [5]atomic.Int32
	jobs := make([]Job[int], 5)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("j%d", i),
			Key:  fmt.Sprintf("k%d", i),
			Run: func(context.Context) (int, error) {
				calls[i].Add(1)
				if i == 2 {
					cancel() // user hits Ctrl-C while j2 is in flight
				}
				return 10 * i, nil
			},
		}
	}
	got, err := Run(ctx, jobs, Options{Workers: 1, Checkpoint: cp})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The in-flight job (j2) drained: its result is present and flushed.
	for i := 0; i <= 2; i++ {
		if got[i] != 10*i {
			t.Fatalf("completed job j%d lost: got %d", i, got[i])
		}
		if _, ok := cp.Lookup(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("job j%d not checkpointed", i)
		}
	}
	// Undispatched jobs never ran and were not recorded.
	for i := 3; i < 5; i++ {
		if n := calls[i].Load(); n != 0 {
			t.Fatalf("job j%d ran %d times after cancellation", i, n)
		}
		if _, ok := cp.Lookup(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("unrun job j%d checkpointed", i)
		}
	}
}

func TestPanicConvertedToError(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{{
		Name: "boom",
		Run: func(context.Context) (int, error) {
			calls.Add(1)
			panic("kaboom")
		},
	}}
	_, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err == nil {
		t.Fatal("panicking job returned no error")
	}
	if !strings.Contains(err.Error(), `job "boom"`) || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error does not name job and panic: %v", err)
	}
	var p *PanicError
	if !errors.As(err, &p) {
		t.Fatalf("error does not unwrap to *PanicError: %v", err)
	}
	if len(p.Stack) == 0 {
		t.Fatal("panic error lost its stack")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("panicking job attempted %d times, want 2 (one bounded retry)", n)
	}
}

func TestRetryOnceAfterPanic(t *testing.T) {
	var calls atomic.Int32
	var gotEvent Event
	jobs := []Job[int]{{
		Name: "flaky",
		Run: func(context.Context) (int, error) {
			if calls.Add(1) == 1 {
				panic("transient")
			}
			return 42, nil
		},
	}}
	got, err := Run(context.Background(), jobs, Options{
		Workers: 1,
		Hook:    func(e Event) { gotEvent = e },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("retried job result = %d, want 42", got[0])
	}
	if calls.Load() != 2 || gotEvent.Attempts != 2 {
		t.Fatalf("calls=%d attempts=%d, want 2/2", calls.Load(), gotEvent.Attempts)
	}
}

func TestErrorsNotRetried(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{{
		Name: "bad",
		Run: func(context.Context) (int, error) {
			calls.Add(1)
			return 0, errors.New("deterministic config error")
		},
	}}
	if _, err := Run(context.Background(), jobs, Options{Workers: 1}); err == nil {
		t.Fatal("erroring job returned no error")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("plain error retried: %d attempts", n)
	}
}

func TestFailFastJoinsErrors(t *testing.T) {
	var after atomic.Int32
	jobs := []Job[int]{
		intJob("ok0", 1, nil),
		{Name: "bad1", Run: func(context.Context) (int, error) { return 0, errors.New("first failure") }},
		intJob("never2", 2, &after),
		intJob("never3", 3, &after),
	}
	_, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err == nil {
		t.Fatal("no error returned")
	}
	if !strings.Contains(err.Error(), `job "bad1"`) {
		t.Fatalf("joined error does not name the failed job: %v", err)
	}
	if n := after.Load(); n != 0 {
		t.Fatalf("%d jobs dispatched after the first failure", n)
	}
}

func TestConcurrentFailuresAllNamed(t *testing.T) {
	// Two workers, two failing jobs dispatched together: both must be
	// named in the joined error.
	var gate sync.WaitGroup
	gate.Add(2)
	fail := func(name string) Job[int] {
		return Job[int]{Name: name, Run: func(context.Context) (int, error) {
			gate.Done()
			gate.Wait() // both in flight before either settles
			return 0, errors.New("boom")
		}}
	}
	_, err := Run(context.Background(), []Job[int]{fail("badA"), fail("badB")}, Options{Workers: 2})
	if err == nil {
		t.Fatal("no error returned")
	}
	for _, name := range []string{"badA", "badB"} {
		if !strings.Contains(err.Error(), fmt.Sprintf("job %q", name)) {
			t.Fatalf("joined error missing %s: %v", name, err)
		}
	}
}

func TestCheckpointResumeSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")

	cp, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job[int], 6)
	for i := range jobs {
		jobs[i] = intJob(fmt.Sprintf("j%d", i), 7*i, nil)
		jobs[i].Key = fmt.Sprintf("j%d#abc", i)
	}
	first, err := Run(context.Background(), jobs, Options{Workers: 2, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen for resume; every job must be satisfied without running.
	cp2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != len(jobs) {
		t.Fatalf("resume loaded %d entries, want %d", cp2.Len(), len(jobs))
	}
	var ran atomic.Int32
	var resumedEvents atomic.Int32
	for i := range jobs {
		jobs[i].Run = func(context.Context) (int, error) {
			ran.Add(1)
			return -1, nil
		}
	}
	second, err := Run(context.Background(), jobs, Options{
		Workers:    2,
		Checkpoint: cp2,
		Hook: func(e Event) {
			if e.Resumed {
				resumedEvents.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d completed jobs re-ran on resume", n)
	}
	if n := resumedEvents.Load(); int(n) != len(jobs) {
		t.Fatalf("%d resumed hook events, want %d", n, len(jobs))
	}
	for i := range jobs {
		if second[i] != first[i] {
			t.Fatalf("resumed result[%d] = %d, want %d", i, second[i], first[i])
		}
	}
}

func TestCheckpointKeyMismatchRecomputes(t *testing.T) {
	// A key records the config hash: a job whose key differs (changed
	// config) must be recomputed, not satisfied by the stale entry.
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	cp, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("sim/a#oldcfg", 1); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	cp2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	var ran atomic.Int32
	jobs := []Job[int]{{
		Name: "sim/a",
		Key:  "sim/a#newcfg",
		Run: func(context.Context) (int, error) {
			ran.Add(1)
			return 2, nil
		},
	}}
	got, err := Run(context.Background(), jobs, Options{Workers: 1, Checkpoint: cp2})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 || got[0] != 2 {
		t.Fatalf("stale checkpoint entry satisfied a changed config (ran=%d, got=%d)", ran.Load(), got[0])
	}
}

func TestCheckpointToleratesTornTailLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	cp, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("good", 5); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	// Simulate an interrupt mid-write: a torn, unterminated tail line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cp2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1 (torn line skipped)", cp2.Len())
	}
	if _, ok := cp2.Lookup("good"); !ok {
		t.Fatal("intact entry lost")
	}
}

func TestTornTailTruncatedRerunsAndSurvivesSecondResume(t *testing.T) {
	// The dangerous failure mode: a torn tail line left in place would
	// be CONCATENATED with the next O_APPEND write, poisoning the new
	// entry for every later resume. Open must truncate the torn bytes so
	// an entry recorded after resume survives a second resume.
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	cp, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("j0#h", 10); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A hand-truncated final line: interrupt hit mid-append.
	if _, err := f.WriteString(`{"key":"j1#h","result":2`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cp2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1", cp2.Skipped())
	}
	if cp2.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1", cp2.Len())
	}
	// The torn job is not satisfied by the checkpoint: it reruns.
	var ran atomic.Int32
	jobs := []Job[int]{
		{Name: "j0", Key: "j0#h", Run: func(context.Context) (int, error) { ran.Add(1); return -1, nil }},
		{Name: "j1", Key: "j1#h", Run: func(context.Context) (int, error) { ran.Add(1); return 20, nil }},
	}
	got, err := Run(context.Background(), jobs, Options{Workers: 1, Checkpoint: cp2})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Fatalf("%d jobs ran, want 1 (only the torn one)", ran.Load())
	}
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("results = %v, want [10 20]", got)
	}
	cp2.Close()

	// Second resume: both entries must load — proving the rerun's entry
	// landed on a clean line, not glued onto the torn bytes.
	cp3, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp3.Close()
	if cp3.Skipped() != 0 {
		t.Fatalf("second resume Skipped() = %d, want 0 (torn tail should be gone)", cp3.Skipped())
	}
	if cp3.Len() != 2 {
		t.Fatalf("second resume loaded %d entries, want 2", cp3.Len())
	}
	for _, key := range []string{"j0#h", "j1#h"} {
		if _, ok := cp3.Lookup(key); !ok {
			t.Fatalf("entry %q lost after second resume", key)
		}
	}
}

func TestKeyOfChangesWithConfig(t *testing.T) {
	type cfg struct{ Threads, Quanta int }
	a := KeyOf("sim/mix/i0", cfg{8, 64})
	b := KeyOf("sim/mix/i0", cfg{8, 32})
	if a == b {
		t.Fatal("config change did not change the key")
	}
	if !strings.HasPrefix(a, "sim/mix/i0#") {
		t.Fatalf("key %q does not embed the job name", a)
	}
	if a != KeyOf("sim/mix/i0", cfg{8, 64}) {
		t.Fatal("key not deterministic")
	}
}

func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	var jobs []Job[int]
	for i := 0; i < 8; i++ {
		jobs = append(jobs, intJob(fmt.Sprintf("j%d", i), i, nil))
	}
	_, err := Run(context.Background(), jobs, Options{
		Workers:          2,
		Progress:         w,
		ProgressInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "8/8 jobs settled") {
		t.Fatalf("missing final summary line:\n%s", out)
	}
}

func TestProgressLineFormat(t *testing.T) {
	line := progressLine(50, 200, 10, 20*time.Second)
	for _, want := range []string{"50/200", "25.0%", "2.0 jobs/s", "ETA 1m15s"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
	// No fresh completions yet: rate unknown, ETA unknown, no panic.
	if line := progressLine(10, 200, 10, time.Second); !strings.Contains(line, "ETA ?") {
		t.Fatalf("resumed-only progress line %q should have unknown ETA", line)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestReadEntriesFileOrder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	cp, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cp.Record(fmt.Sprintf("k%d", i), i*i); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadEntries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if want := fmt.Sprintf("k%d", i); e.Key != want {
			t.Fatalf("entry %d key %q, want %q (file order)", i, e.Key, want)
		}
		var v int
		if err := json.Unmarshal(e.Result, &v); err != nil || v != i*i {
			t.Fatalf("entry %d result %s, want %d", i, e.Result, i*i)
		}
	}
	// A corrupt mid-file line is skipped, matching resume semantics.
	data, _ := os.ReadFile(path)
	corrupt := append([]byte("00000000 {garbage\n"), data...)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err = ReadEntries(path)
	if err != nil || len(entries) != 5 {
		t.Fatalf("corrupt line not skipped: %d entries, err %v", len(entries), err)
	}
}
