package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/counters"
	"repro/internal/rng"
)

func states(n int) []*counters.State {
	out := make([]*counters.State, n)
	for i := range out {
		out[i] = &counters.State{}
	}
	return out
}

func TestParseStringRoundtrip(t *testing.T) {
	for _, p := range All() {
		got, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("Parse(%q) = %v", p.String(), got)
		}
	}
	if _, err := Parse("NOPE"); err == nil {
		t.Fatal("Parse accepted unknown policy")
	}
}

func TestAllCountAndDescriptions(t *testing.T) {
	all := All()
	if len(all) != int(NumPolicies) || len(all) != 10 {
		t.Fatalf("expected the 10 policies of Table 1, got %d", len(all))
	}
	for _, p := range all {
		if p.Description() == "" || p.Description() == "unknown" {
			t.Fatalf("%v lacks a description", p)
		}
	}
}

// TestOrderKeyedPolicies checks that each gauge-keyed policy puts the
// thread with the smallest key first and the largest last.
func TestOrderKeyedPolicies(t *testing.T) {
	cases := []struct {
		pol Policy
		set func(st *counters.State, v int)
	}{
		{ICOUNT, func(st *counters.State, v int) { st.Live.PreIssue = v }},
		{BRCOUNT, func(st *counters.State, v int) { st.Live.Branches = v }},
		{LDCOUNT, func(st *counters.State, v int) { st.Live.Loads = v }},
		{MEMCOUNT, func(st *counters.State, v int) { st.Live.Mem = v }},
		{L1MISSCOUNT, func(st *counters.State, v int) { st.Live.DMissOut = v }},
		{L1IMISSCOUNT, func(st *counters.State, v int) { st.Live.IMissOut = v }},
		{L1DMISSCOUNT, func(st *counters.State, v int) { st.Live.DMissOut = v }},
		{STALLCOUNT, func(st *counters.State, v int) { st.QuantumStalls = uint64(v) }},
	}
	vals := []int{5, 2, 9, 0} // thread 3 should be first, thread 2 last
	for _, c := range cases {
		sts := states(4)
		for i, v := range vals {
			c.set(sts[i], v)
		}
		sel := NewSelector(c.pol, 4)
		order := sel.Order(sts, make([]int, 4))
		if order[0] != 3 || order[3] != 2 {
			t.Errorf("%v order = %v, want thread 3 first and 2 last", c.pol, order)
		}
	}
}

func TestOrderACCIPC(t *testing.T) {
	sts := states(3)
	sts[0].AccIPC = 0.5
	sts[1].AccIPC = 2.0
	sts[2].AccIPC = 1.0
	sel := NewSelector(ACCIPC, 3)
	order := sel.Order(sts, make([]int, 3))
	if order[0] != 1 || order[2] != 0 {
		t.Fatalf("ACCIPC order = %v, want highest-IPC thread first", order)
	}
}

func TestRRRotates(t *testing.T) {
	sts := states(4)
	sel := NewSelector(RR, 4)
	buf := make([]int, 4)
	seenFirst := map[int]bool{}
	for i := 0; i < 4; i++ {
		order := sel.Order(sts, buf)
		seenFirst[order[0]] = true
		sel.Advance()
	}
	if len(seenFirst) != 4 {
		t.Fatalf("RR first picks %v, want all 4 threads over 4 cycles", seenFirst)
	}
}

func TestTieBreakRotation(t *testing.T) {
	// All keys equal: the leading thread must rotate with the cursor so
	// no thread is structurally starved.
	sts := states(3)
	sel := NewSelector(ICOUNT, 3)
	buf := make([]int, 3)
	first := map[int]bool{}
	for i := 0; i < 3; i++ {
		order := sel.Order(sts, buf)
		first[order[0]] = true
		sel.Advance()
	}
	if len(first) != 3 {
		t.Fatalf("tie-break first picks %v, want rotation over all threads", first)
	}
}

// TestOrderIsPermutation is a property test: Order always returns a
// permutation of thread indices, whatever the gauges hold.
func TestOrderIsPermutation(t *testing.T) {
	f := func(pre, brs, loads [6]uint8, polRaw uint8) bool {
		pol := Policy(polRaw % uint8(NumPolicies))
		sts := states(6)
		for i := range sts {
			sts[i].Live.PreIssue = int(pre[i])
			sts[i].Live.Branches = int(brs[i])
			sts[i].Live.Loads = int(loads[i])
		}
		sel := NewSelector(pol, 6)
		order := sel.Order(sts, make([]int, 6))
		seen := map[int]bool{}
		for _, idx := range order {
			if idx < 0 || idx >= 6 || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return len(seen) == 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOrderSorted is a property test: the returned order is
// non-decreasing in the policy key.
func TestOrderSorted(t *testing.T) {
	f := func(pre [8]uint8) bool {
		sts := states(8)
		for i := range sts {
			sts[i].Live.PreIssue = int(pre[i])
		}
		sel := NewSelector(ICOUNT, 8)
		order := sel.Order(sts, make([]int, 8))
		for i := 1; i < len(order); i++ {
			if sts[order[i-1]].Live.PreIssue > sts[order[i]].Live.PreIssue {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorCloneIndependence(t *testing.T) {
	sel := NewSelector(ICOUNT, 4)
	sel.Advance()
	cl := sel.Clone()
	if cl.Policy() != sel.Policy() {
		t.Fatal("clone policy mismatch")
	}
	cl.SetPolicy(BRCOUNT)
	if sel.Policy() == BRCOUNT {
		t.Fatal("clone mutation leaked into original")
	}
	sts := states(4)
	sts[2].Live.PreIssue = -1 // force distinct order
	a := sel.Order(sts, make([]int, 4))
	got := append([]int(nil), a...)
	cl2 := sel.Clone()
	b := cl2.Order(sts, make([]int, 4))
	for i := range got {
		if got[i] != b[i] {
			t.Fatal("clone does not replay the same order")
		}
	}
}

func TestSetPolicy(t *testing.T) {
	sel := NewSelector(ICOUNT, 2)
	sel.SetPolicy(L1MISSCOUNT)
	if sel.Policy() != L1MISSCOUNT {
		t.Fatal("SetPolicy did not take effect")
	}
}

func TestL1MissCountIncludesICacheMisses(t *testing.T) {
	sts := states(2)
	sts[0].Live.DMissOut = 1
	sts[1].Live.IMissOut = 0
	sel := NewSelector(L1MISSCOUNT, 2)
	order := sel.Order(sts, make([]int, 2))
	if order[0] != 1 {
		t.Fatalf("order %v: thread without misses should lead", order)
	}
	// An I-miss counts too.
	sts[1].Live.IMissOut = 1
	sts[1].Live.DMissOut = 1
	order = sel.Order(sts, make([]int, 2))
	if order[0] != 0 {
		t.Fatalf("order %v: thread 1 has 2 outstanding misses vs 1", order)
	}
}

// TestSortNet8MatchesInsertion: the sorting network must order every
// input length exactly as the insertion sort it replaced — keys are
// distinct by construction, so there is one right answer.
func TestSortNet8MatchesInsertion(t *testing.T) {
	r := rng.New(42)
	for n := 1; n <= 8; n++ {
		for trial := 0; trial < 2000; trial++ {
			a := make([]int64, n)
			b := make([]int64, n)
			for i := range a {
				// Gauge-shaped keys with the rank packed low, ranks unique.
				a[i] = int64(r.Uint64n(1<<20))<<8 | int64(i)
				b[i] = a[i]
			}
			sortNet8(a)
			for i := 1; i < n; i++ {
				v := b[i]
				j := i - 1
				for j >= 0 && b[j] > v {
					b[j+1] = b[j]
					j--
				}
				b[j+1] = v
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d trial=%d: network %v != insertion %v", n, trial, a, b)
				}
			}
		}
	}
}
