// Package policy implements the ten SMT fetch policies of the paper's
// Table 1. A fetch policy orders the hardware contexts each cycle; the
// fetch stage then takes instructions from the first (up to two) fetchable
// threads in that order (ICOUNT.2.8).
//
// ICOUNT, BRCOUNT, the MISSCOUNT family and RR follow Tullsen et al.
// ("Exploiting Choice", ISCA'96): the count is of the thread's
// instructions currently in the pre-issue stages or in flight, so the
// policy steers fetch away from threads that are clogging that resource
// right now. LDCOUNT, MEMCOUNT, ACCIPC and STALLCOUNT are the paper's
// additions.
package policy

import (
	"fmt"

	"repro/internal/counters"
)

// Policy identifies a fetch policy.
type Policy uint8

// The ten fetch policies of Table 1.
const (
	// RR is oblivious round-robin scheduling.
	RR Policy = iota
	// ICOUNT prioritises threads with the fewest instructions in the
	// decode/rename stages and the instruction queues. The paper's (and
	// Tullsen's) best fixed policy, and ADTS's default incumbent.
	ICOUNT
	// BRCOUNT prioritises threads with the fewest unresolved branches
	// in flight, throttling wrong-path-prone threads.
	BRCOUNT
	// LDCOUNT prioritises threads with the fewest loads in flight.
	LDCOUNT
	// MEMCOUNT prioritises threads with the fewest memory accesses in
	// flight.
	MEMCOUNT
	// L1MISSCOUNT prioritises threads with the fewest outstanding L1
	// (instruction + data) cache misses.
	L1MISSCOUNT
	// L1IMISSCOUNT prioritises threads with the fewest outstanding L1
	// instruction-cache misses.
	L1IMISSCOUNT
	// L1DMISSCOUNT prioritises threads with the fewest outstanding L1
	// data-cache misses.
	L1DMISSCOUNT
	// ACCIPC prioritises threads with the highest accumulated IPC:
	// threads whose instructions drain fastest get the fetch slots.
	ACCIPC
	// STALLCOUNT prioritises threads that have incurred the fewest
	// stall cycles in the current quantum.
	STALLCOUNT
	NumPolicies
)

var names = [NumPolicies]string{
	"RR", "ICOUNT", "BRCOUNT", "LDCOUNT", "MEMCOUNT",
	"L1MISSCOUNT", "L1IMISSCOUNT", "L1DMISSCOUNT", "ACCIPC", "STALLCOUNT",
}

func (p Policy) String() string {
	if int(p) < len(names) {
		return names[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Parse returns the policy with the given name (as printed by String).
func Parse(name string) (Policy, error) {
	for i, n := range names {
		if n == name {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", name)
}

// All returns all ten policies in Table 1 order.
func All() []Policy {
	out := make([]Policy, NumPolicies)
	for i := range out {
		out[i] = Policy(i)
	}
	return out
}

// Description returns the Table 1 description of the policy.
func (p Policy) Description() string {
	switch p {
	case RR:
		return "Round-robin scheduling"
	case ICOUNT:
		return "Fewest instructions in decode, rename and the instruction queues"
	case BRCOUNT:
		return "Fewest unresolved branches in flight for a thread"
	case LDCOUNT:
		return "Fewest loads in flight for a thread"
	case MEMCOUNT:
		return "Fewest memory accesses in flight for a thread"
	case L1MISSCOUNT:
		return "Fewest outstanding L1 cache misses for a thread"
	case L1IMISSCOUNT:
		return "Fewest outstanding L1 ICache misses for a thread"
	case L1DMISSCOUNT:
		return "Fewest outstanding L1 DCache misses for a thread"
	case ACCIPC:
		return "Highest accumulated IPC for a thread"
	case STALLCOUNT:
		return "Fewest stall cycles incurred for a thread"
	default:
		return "unknown"
	}
}

// Selector computes per-cycle thread priority orders. It owns the
// round-robin cursor so RR rotates fairly; all other state it reads from
// the per-thread counters.State views the pipeline maintains.
type Selector struct {
	policy   Policy
	rrCursor int
	keys     []float64
	order    []int
}

// NewSelector returns a selector over n hardware contexts, initially
// using pol.
func NewSelector(pol Policy, n int) *Selector {
	return &Selector{
		policy: pol,
		keys:   make([]float64, n),
		order:  make([]int, n),
	}
}

// Policy returns the currently engaged policy.
func (s *Selector) Policy() Policy { return s.policy }

// SetPolicy switches the engaged policy (the detector thread's
// Policy_Switch action).
func (s *Selector) SetPolicy(p Policy) { s.policy = p }

// Clone returns an independent deep copy.
func (s *Selector) Clone() *Selector {
	ns := &Selector{
		policy:   s.policy,
		rrCursor: s.rrCursor,
		keys:     make([]float64, len(s.keys)),
		order:    make([]int, len(s.order)),
	}
	copy(ns.keys, s.keys)
	copy(ns.order, s.order)
	return ns
}

// key returns the priority key for thread i; lower is higher priority.
func (s *Selector) key(p Policy, st *counters.State, i int) float64 {
	switch p {
	case RR:
		n := len(s.keys)
		return float64((i - s.rrCursor + n) % n)
	case ICOUNT:
		return float64(st.Live.PreIssue)
	case BRCOUNT:
		return float64(st.Live.Branches)
	case LDCOUNT:
		return float64(st.Live.Loads)
	case MEMCOUNT:
		return float64(st.Live.Mem)
	case L1MISSCOUNT:
		return float64(st.Live.MissOut())
	case L1IMISSCOUNT:
		return float64(st.Live.IMissOut)
	case L1DMISSCOUNT:
		return float64(st.Live.DMissOut)
	case ACCIPC:
		return -st.AccIPC
	case STALLCOUNT:
		return float64(st.QuantumStalls)
	default:
		panic("policy: unknown policy " + p.String())
	}
}

// Order fills dst with the indices of threads (0..len(states)-1) in fetch
// priority order under the engaged policy, breaking ties by the
// round-robin cursor so no thread is structurally starved. dst must have
// len(states) capacity. It returns dst truncated to len(states).
//
// The fetch stage calls this once per cycle; after fetching it must call
// Advance so RR and tie-breaking rotate. The sort is a hand-rolled
// insertion sort: n is at most the hardware context count and this runs
// every simulated cycle, so avoiding sort.SliceStable's closure calls
// matters.
func (s *Selector) Order(states []*counters.State, dst []int) []int {
	n := len(states)
	dst = dst[:n]
	for i := 0; i < n; i++ {
		// Start from cursor rotation so equal keys keep rotating fairly.
		t := (i + s.rrCursor) % n
		dst[i] = t
		s.keys[t] = s.key(s.policy, states[t], t)
	}
	for i := 1; i < n; i++ {
		t := dst[i]
		k := s.keys[t]
		j := i - 1
		for j >= 0 && s.keys[dst[j]] > k {
			dst[j+1] = dst[j]
			j--
		}
		dst[j+1] = t
	}
	return dst
}

// Advance rotates the round-robin cursor; call once per fetch cycle.
func (s *Selector) Advance() {
	if n := len(s.keys); n > 0 {
		s.rrCursor = (s.rrCursor + 1) % n
	}
}
