// Package policy implements the ten SMT fetch policies of the paper's
// Table 1. A fetch policy orders the hardware contexts each cycle; the
// fetch stage then takes instructions from the first (up to two) fetchable
// threads in that order (ICOUNT.2.8).
//
// ICOUNT, BRCOUNT, the MISSCOUNT family and RR follow Tullsen et al.
// ("Exploiting Choice", ISCA'96): the count is of the thread's
// instructions currently in the pre-issue stages or in flight, so the
// policy steers fetch away from threads that are clogging that resource
// right now. LDCOUNT, MEMCOUNT, ACCIPC and STALLCOUNT are the paper's
// additions.
package policy

import (
	"fmt"
	"math"

	"repro/internal/counters"
)

// Policy identifies a fetch policy.
type Policy uint8

// The ten fetch policies of Table 1.
const (
	// RR is oblivious round-robin scheduling.
	RR Policy = iota
	// ICOUNT prioritises threads with the fewest instructions in the
	// decode/rename stages and the instruction queues. The paper's (and
	// Tullsen's) best fixed policy, and ADTS's default incumbent.
	ICOUNT
	// BRCOUNT prioritises threads with the fewest unresolved branches
	// in flight, throttling wrong-path-prone threads.
	BRCOUNT
	// LDCOUNT prioritises threads with the fewest loads in flight.
	LDCOUNT
	// MEMCOUNT prioritises threads with the fewest memory accesses in
	// flight.
	MEMCOUNT
	// L1MISSCOUNT prioritises threads with the fewest outstanding L1
	// (instruction + data) cache misses.
	L1MISSCOUNT
	// L1IMISSCOUNT prioritises threads with the fewest outstanding L1
	// instruction-cache misses.
	L1IMISSCOUNT
	// L1DMISSCOUNT prioritises threads with the fewest outstanding L1
	// data-cache misses.
	L1DMISSCOUNT
	// ACCIPC prioritises threads with the highest accumulated IPC:
	// threads whose instructions drain fastest get the fetch slots.
	ACCIPC
	// STALLCOUNT prioritises threads that have incurred the fewest
	// stall cycles in the current quantum.
	STALLCOUNT
	NumPolicies
)

var names = [NumPolicies]string{
	"RR", "ICOUNT", "BRCOUNT", "LDCOUNT", "MEMCOUNT",
	"L1MISSCOUNT", "L1IMISSCOUNT", "L1DMISSCOUNT", "ACCIPC", "STALLCOUNT",
}

func (p Policy) String() string {
	if int(p) < len(names) {
		return names[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Parse returns the policy with the given name (as printed by String).
func Parse(name string) (Policy, error) {
	for i, n := range names {
		if n == name {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", name)
}

// All returns all ten policies in Table 1 order.
func All() []Policy {
	out := make([]Policy, NumPolicies)
	for i := range out {
		out[i] = Policy(i)
	}
	return out
}

// Description returns the Table 1 description of the policy.
func (p Policy) Description() string {
	switch p {
	case RR:
		return "Round-robin scheduling"
	case ICOUNT:
		return "Fewest instructions in decode, rename and the instruction queues"
	case BRCOUNT:
		return "Fewest unresolved branches in flight for a thread"
	case LDCOUNT:
		return "Fewest loads in flight for a thread"
	case MEMCOUNT:
		return "Fewest memory accesses in flight for a thread"
	case L1MISSCOUNT:
		return "Fewest outstanding L1 cache misses for a thread"
	case L1IMISSCOUNT:
		return "Fewest outstanding L1 ICache misses for a thread"
	case L1DMISSCOUNT:
		return "Fewest outstanding L1 DCache misses for a thread"
	case ACCIPC:
		return "Highest accumulated IPC for a thread"
	case STALLCOUNT:
		return "Fewest stall cycles incurred for a thread"
	default:
		return "unknown"
	}
}

// Selector computes per-cycle thread priority orders. It owns the
// round-robin cursor so RR rotates fairly; all other state it reads from
// the per-thread counters.State views the pipeline maintains.
type Selector struct {
	policy   Policy
	rrCursor int
	keys     []float64
	order    []int
	pk       []int64 // packed key|rank scratch for the integer-key sort
}

// NewSelector returns a selector over n hardware contexts, initially
// using pol.
func NewSelector(pol Policy, n int) *Selector {
	return &Selector{
		policy: pol,
		keys:   make([]float64, n),
		order:  make([]int, n),
		pk:     make([]int64, n),
	}
}

// Policy returns the currently engaged policy.
func (s *Selector) Policy() Policy { return s.policy }

// SetPolicy switches the engaged policy (the detector thread's
// Policy_Switch action).
func (s *Selector) SetPolicy(p Policy) { s.policy = p }

// Clone returns an independent deep copy.
func (s *Selector) Clone() *Selector {
	ns := &Selector{
		policy:   s.policy,
		rrCursor: s.rrCursor,
		keys:     make([]float64, len(s.keys)),
		order:    make([]int, len(s.order)),
		pk:       make([]int64, len(s.pk)),
	}
	copy(ns.keys, s.keys)
	copy(ns.order, s.order)
	return ns
}

// Reset restores the selector to its just-constructed state under pol,
// without allocating. Machine pooling uses it.
func (s *Selector) Reset(pol Policy) {
	s.policy = pol
	s.rrCursor = 0
	for i := range s.keys {
		s.keys[i] = 0
		s.order[i] = 0
	}
}

// CopyFrom overwrites s's state with src's without allocating. The two
// selectors must cover the same number of contexts.
func (s *Selector) CopyFrom(src *Selector) {
	if len(s.keys) != len(src.keys) {
		panic("policy: Selector.CopyFrom context-count mismatch")
	}
	s.policy = src.policy
	s.rrCursor = src.rrCursor
	copy(s.keys, src.keys)
	copy(s.order, src.order)
}

// key returns the priority key for thread i; lower is higher priority.
func (s *Selector) key(p Policy, st *counters.State, i int) float64 {
	switch p {
	case RR:
		n := len(s.keys)
		return float64((i - s.rrCursor + n) % n)
	case ICOUNT:
		return float64(st.Live.PreIssue)
	case BRCOUNT:
		return float64(st.Live.Branches)
	case LDCOUNT:
		return float64(st.Live.Loads)
	case MEMCOUNT:
		return float64(st.Live.Mem)
	case L1MISSCOUNT:
		return float64(st.Live.MissOut())
	case L1IMISSCOUNT:
		return float64(st.Live.IMissOut)
	case L1DMISSCOUNT:
		return float64(st.Live.DMissOut)
	case ACCIPC:
		return -st.AccIPC
	case STALLCOUNT:
		return float64(st.QuantumStalls)
	default:
		panic("policy: unknown policy " + p.String())
	}
}

// Order fills dst with the indices of threads (0..len(states)-1) in fetch
// priority order under the engaged policy, breaking ties by the
// round-robin cursor so no thread is structurally starved. dst must have
// len(states) capacity. It returns dst truncated to len(states).
//
// The fetch stage calls this once per cycle; after fetching it must call
// Advance so RR and tie-breaking rotate. The sort is a hand-rolled
// insertion sort: n is at most the hardware context count and this runs
// every simulated cycle, so avoiding sort.SliceStable's closure calls
// matters.
func (s *Selector) Order(states []*counters.State, dst []int) []int {
	n := len(states)
	dst = dst[:n]
	if s.policy == ACCIPC || n > 256 {
		return s.orderByFloat(states, dst)
	}
	pk := s.pk[:n]
	cur := s.rrCursor
	// One switch per cycle, not one per thread: the policy is loop
	// invariant, and the specialised loops compute exactly the keys
	// s.key would. Key and rotated rank pack into one int64 (key*256 +
	// rank), so the sort below compares plain integers with no memory
	// indirection and ties resolve by rank — exactly the stable
	// rotated-order tie-break of the float path. Every integer policy's
	// key is a machine-occupancy gauge or a stall count, far below the
	// 2^55 packing limit (STALLCOUNT is clamped defensively; both paths
	// are exact to well past 2^53, so they cannot diverge).
	switch s.policy {
	case RR:
		for i := 0; i < n; i++ {
			pk[i] = int64(i)<<8 | int64(i)
		}
	case ICOUNT:
		for i := 0; i < n; i++ {
			t := i + cur
			if t >= n {
				t -= n
			}
			pk[i] = int64(states[t].Live.PreIssue)<<8 | int64(i)
		}
	case BRCOUNT:
		for i := 0; i < n; i++ {
			t := i + cur
			if t >= n {
				t -= n
			}
			pk[i] = int64(states[t].Live.Branches)<<8 | int64(i)
		}
	case LDCOUNT:
		for i := 0; i < n; i++ {
			t := i + cur
			if t >= n {
				t -= n
			}
			pk[i] = int64(states[t].Live.Loads)<<8 | int64(i)
		}
	case MEMCOUNT:
		for i := 0; i < n; i++ {
			t := i + cur
			if t >= n {
				t -= n
			}
			pk[i] = int64(states[t].Live.Mem)<<8 | int64(i)
		}
	case L1MISSCOUNT:
		for i := 0; i < n; i++ {
			t := i + cur
			if t >= n {
				t -= n
			}
			pk[i] = int64(states[t].Live.MissOut())<<8 | int64(i)
		}
	case L1IMISSCOUNT:
		for i := 0; i < n; i++ {
			t := i + cur
			if t >= n {
				t -= n
			}
			pk[i] = int64(states[t].Live.IMissOut)<<8 | int64(i)
		}
	case L1DMISSCOUNT:
		for i := 0; i < n; i++ {
			t := i + cur
			if t >= n {
				t -= n
			}
			pk[i] = int64(states[t].Live.DMissOut)<<8 | int64(i)
		}
	case STALLCOUNT:
		for i := 0; i < n; i++ {
			t := i + cur
			if t >= n {
				t -= n
			}
			k := states[t].QuantumStalls
			if k > 1<<55-1 {
				k = 1<<55 - 1
			}
			pk[i] = int64(k)<<8 | int64(i)
		}
	default:
		panic("policy: unknown policy " + s.policy.String())
	}
	if n <= 8 {
		sortNet8(pk)
	} else {
		for i := 1; i < n; i++ {
			v := pk[i]
			j := i - 1
			for j >= 0 && pk[j] > v {
				pk[j+1] = pk[j]
				j--
			}
			pk[j+1] = v
		}
	}
	for i := 0; i < n; i++ {
		t := int(pk[i]&0xff) + cur
		if t >= n {
			t -= n
		}
		dst[i] = t
	}
	return dst
}

// sortNet8 sorts up to 8 packed keys with the optimal 19-comparator
// sorting network, each comparator a pair of cmov-compiled min/max —
// no data-dependent branches, so the per-cycle ordering never pays the
// mispredict tax an insertion sort incurs on shuffling gauge values.
// Packed keys are distinct (the rank occupies the low byte), so the
// unique ascending order is exactly what the insertion sort produced.
// Short inputs are padded with MaxInt64, which sorts to the unused tail.
func sortNet8(pk []int64) {
	v0, v1, v2, v3 := int64(math.MaxInt64), int64(math.MaxInt64), int64(math.MaxInt64), int64(math.MaxInt64)
	v4, v5, v6, v7 := int64(math.MaxInt64), int64(math.MaxInt64), int64(math.MaxInt64), int64(math.MaxInt64)
	switch len(pk) {
	case 8:
		v7 = pk[7]
		fallthrough
	case 7:
		v6 = pk[6]
		fallthrough
	case 6:
		v5 = pk[5]
		fallthrough
	case 5:
		v4 = pk[4]
		fallthrough
	case 4:
		v3 = pk[3]
		fallthrough
	case 3:
		v2 = pk[2]
		fallthrough
	case 2:
		v1, v0 = pk[1], pk[0]
	default:
		return
	}
	v0, v1 = min(v0, v1), max(v0, v1)
	v2, v3 = min(v2, v3), max(v2, v3)
	v4, v5 = min(v4, v5), max(v4, v5)
	v6, v7 = min(v6, v7), max(v6, v7)
	v0, v2 = min(v0, v2), max(v0, v2)
	v1, v3 = min(v1, v3), max(v1, v3)
	v4, v6 = min(v4, v6), max(v4, v6)
	v5, v7 = min(v5, v7), max(v5, v7)
	v1, v2 = min(v1, v2), max(v1, v2)
	v5, v6 = min(v5, v6), max(v5, v6)
	v0, v4 = min(v0, v4), max(v0, v4)
	v3, v7 = min(v3, v7), max(v3, v7)
	v1, v5 = min(v1, v5), max(v1, v5)
	v2, v6 = min(v2, v6), max(v2, v6)
	v1, v4 = min(v1, v4), max(v1, v4)
	v3, v6 = min(v3, v6), max(v3, v6)
	v2, v4 = min(v2, v4), max(v2, v4)
	v3, v5 = min(v3, v5), max(v3, v5)
	v3, v4 = min(v3, v4), max(v3, v4)
	switch len(pk) {
	case 8:
		pk[7] = v7
		fallthrough
	case 7:
		pk[6] = v6
		fallthrough
	case 6:
		pk[5] = v5
		fallthrough
	case 5:
		pk[4] = v4
		fallthrough
	case 4:
		pk[3] = v3
		fallthrough
	case 3:
		pk[2] = v2
		fallthrough
	case 2:
		pk[1], pk[0] = v1, v0
	}
}

// orderByFloat is the float-keyed ordering path: ACCIPC (whose key is a
// real-valued IPC) and the >256-context fallback where ranks no longer
// fit the packed representation.
func (s *Selector) orderByFloat(states []*counters.State, dst []int) []int {
	n := len(states)
	keys := s.keys
	for i := 0; i < n; i++ {
		// Start from cursor rotation so equal keys keep rotating fairly.
		t := i + s.rrCursor
		if t >= n {
			t -= n
		}
		dst[i] = t
		keys[t] = s.key(s.policy, states[t], t)
	}
	for i := 1; i < n; i++ {
		t := dst[i]
		k := keys[t]
		j := i - 1
		for j >= 0 && keys[dst[j]] > k {
			dst[j+1] = dst[j]
			j--
		}
		dst[j+1] = t
	}
	return dst
}

// Advance rotates the round-robin cursor; call once per fetch cycle.
func (s *Selector) Advance() {
	if n := len(s.keys); n > 0 {
		s.rrCursor = (s.rrCursor + 1) % n
	}
}
