// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator must be bit-reproducible given a seed, across Go versions
// and across Simulator.Clone boundaries (the oracle scheduler depends on
// clones replaying identical futures). math/rand makes no cross-version
// stream guarantees and is awkward to deep-copy, so we use SplitMix64: a
// single uint64 of state, trivially cloneable by value, with excellent
// statistical quality for simulation purposes.
package rng

import "math"

// PRNG is a SplitMix64 generator. The zero value is a valid generator
// (seeded with 0); use New to seed explicitly. Copying a PRNG by value
// yields an independent generator that replays the same future stream.
type PRNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) PRNG {
	return PRNG{state: seed}
}

// Split derives a new, statistically independent generator from p,
// advancing p. It is used to give each thread, cache, and predictor its
// own stream so that subsystems do not perturb one another.
func (p *PRNG) Split() PRNG {
	return PRNG{state: p.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PRNG) Uint64() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (p *PRNG) Uint32() uint32 {
	return uint32(p.Uint64() >> 32)
}

// Float64 returns a uniform value in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (p *PRNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return p.Uint64() % n
}

// Bool returns true with probability prob.
func (p *PRNG) Bool(prob float64) bool {
	return p.Float64() < prob
}

// Geometric returns a sample from a geometric distribution with the given
// mean (>= 1): the number of Bernoulli trials up to and including the
// first success with success probability 1/mean. The result is always >= 1.
func (p *PRNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	u := p.Float64()
	// Inverse-CDF sampling: ceil(ln(1-u) / ln(1-1/mean)).
	n := int(math.Ceil(math.Log(1-u) / math.Log(1-1/mean)))
	if n < 1 {
		n = 1
	}
	return n
}

// GeometricLogQ is Geometric with the denominator hoisted: logQ must be
// math.Log(1-1/mean) for the intended mean > 1. For a fixed mean the two
// methods draw bit-identical samples from the same stream; hot callers
// that sample the same distribution repeatedly cache logQ once instead
// of paying a math.Log per draw. A mean <= 1 has no valid logQ — callers
// keep Geometric's early-return (constant 1, no draw) on their side.
func (p *PRNG) GeometricLogQ(logQ float64) int {
	u := p.Float64()
	n := int(math.Ceil(math.Log(1-u) / logQ))
	if n < 1 {
		n = 1
	}
	return n
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. Zero or negative total weight picks index 0.
func (p *PRNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := p.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// State exposes the raw generator state, for tests and serialization.
func (p *PRNG) State() uint64 { return p.state }
