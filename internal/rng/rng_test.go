package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestCopyReplaysFuture(t *testing.T) {
	a := New(7)
	for i := 0; i < 10; i++ {
		a.Uint64()
	}
	b := a // value copy
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("copied generator diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(9)
	a := root.Split()
	b := root.Split()
	if a.State() == b.State() {
		t.Fatal("Split produced identical children")
	}
	// Children should not mirror each other.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children matched %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(3)
	f := func(_ uint8) bool {
		v := p.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	p := New(5)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := p.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	p := New(1)
	p.Intn(0)
}

func TestUint64nRange(t *testing.T) {
	p := New(6)
	f := func(n uint32) bool {
		bound := uint64(n) + 1
		return p.Uint64n(bound) < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	p := New(8)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if p.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %.4f", frac)
	}
}

func TestGeometricMinimum(t *testing.T) {
	p := New(10)
	f := func(m uint8) bool {
		mean := 1 + float64(m%20)
		return p.Geometric(mean) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	p := New(11)
	for _, mean := range []float64{1, 2, 5, 15} {
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += p.Geometric(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.02 {
			t.Fatalf("Geometric(%g) sample mean %.3f", mean, got)
		}
	}
}

func TestPickWeights(t *testing.T) {
	p := New(12)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[p.Pick(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pick weight %d frequency %.4f want %.2f", i, got, want)
		}
	}
}

func TestPickDegenerate(t *testing.T) {
	p := New(13)
	if got := p.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("zero-weight Pick = %d, want 0", got)
	}
	if got := p.Pick([]float64{5}); got != 0 {
		t.Fatalf("single-weight Pick = %d, want 0", got)
	}
}

func TestUint32NotConstant(t *testing.T) {
	p := New(14)
	a := p.Uint32()
	for i := 0; i < 10; i++ {
		if p.Uint32() != a {
			return
		}
	}
	t.Fatal("Uint32 returned constant values")
}
