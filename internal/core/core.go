// Package core is the public facade of the ADTS reproduction: it wires a
// workload mix, the SMT pipeline, and a scheduling mode (fixed policy,
// adaptive ADTS, or the oracle upper bound) into a single Simulator with
// a one-call Run, and collects everything the paper's figures need —
// per-quantum IPC, the policy timeline, and switch-quality statistics.
//
// Typical use:
//
//	cfg := core.DefaultConfig("kitchen-sink")
//	cfg.Mode = core.ModeADTS
//	cfg.Detector.Heuristic = detector.Type3
//	cfg.Detector.IPCThreshold = 2
//	sim, err := core.NewSimulator(cfg)
//	...
//	res := sim.Run()
//	fmt.Println(res.AggregateIPC)
package core

import (
	"fmt"

	// Link the adaptive selectors (bandit, ucb, learned) into every
	// binary that can construct a simulator; detector.New needs their
	// factories registered for Heuristic >= detector.NumHeuristics.
	_ "repro/internal/adaptive"
	"repro/internal/counters"
	"repro/internal/detector"
	"repro/internal/dtvm"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Mode selects the thread-scheduling regime.
type Mode int

const (
	// ModeFixed engages one fetch policy for the whole run (the
	// baselines of Table 1).
	ModeFixed Mode = iota
	// ModeADTS runs adaptive dynamic thread scheduling with the
	// detector thread.
	ModeADTS
	// ModeOracle picks the per-quantum best policy by lookahead on
	// machine clones (the upper bound).
	ModeOracle
)

func (m Mode) String() string {
	switch m {
	case ModeFixed:
		return "fixed"
	case ModeADTS:
		return "adts"
	case ModeOracle:
		return "oracle"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config describes one simulation.
type Config struct {
	// MixName selects a workload from trace.Mixes; alternatively set
	// Programs directly (it wins when non-nil).
	MixName  string
	Programs []*trace.Program
	// Threads is the number of hardware contexts to populate from the
	// mix (1..8). With Cores > 1 this is the TOTAL thread count across
	// all cores; it must divide evenly.
	Threads int
	// Seed drives all stochastic workload behaviour.
	Seed uint64

	// Cores is the number of SMT cores. 0 and 1 both select the
	// single-core simulator (the paper's machine); Cores > 1 is a
	// multi-core system driven by internal/multicore, which splits
	// Threads evenly across cores under the Allocation policy. A
	// Simulator itself always models one core — NewSimulator rejects
	// Cores > 1.
	Cores int
	// Allocation names the thread-to-core allocation policy for
	// Cores > 1: "random", "symbiosis", or "synpa" (docs/multicore.md).
	// Empty defaults to "random". It must be empty when Cores <= 1.
	Allocation string

	Machine  pipeline.Config
	Detector detector.Config

	Mode        Mode
	FixedPolicy policy.Policy
	// OracleCandidates defaults to oracle.DefaultCandidates.
	OracleCandidates []policy.Policy

	// Kernel, when non-nil in ADTS mode, replaces the functional
	// detector's decision logic with an assembled detector-thread
	// program (internal/dtvm): the paper's programmable-DT argument
	// made literal. The kernel's measured instruction count drives the
	// leftover-slot cost model; benign-switch scoring (a measurement
	// artefact, not DT software) still comes from the quantum IPC
	// series.
	Kernel *dtvm.Program

	// FastForward cycles are simulated before measurement begins,
	// standing in for SimpleScalar's fast-forward to a random interval.
	FastForward int64
	// Quanta is the number of measured scheduling quanta.
	Quanta int
}

// DefaultConfig returns an 8-thread fixed-ICOUNT run of the named mix:
// the paper's baseline configuration.
func DefaultConfig(mixName string) Config {
	return Config{
		MixName:     mixName,
		Threads:     8,
		Seed:        1,
		Machine:     pipeline.DefaultConfig(),
		Detector:    detector.DefaultConfig(8),
		Mode:        ModeFixed,
		FixedPolicy: policy.ICOUNT,
		FastForward: 16384,
		Quanta:      64,
	}
}

// AllocationPolicies lists the thread-to-core allocation policies a
// multi-core config may name, in canonical order.
var AllocationPolicies = []string{"random", "symbiosis", "synpa"}

// ValidAllocation reports whether name is a known allocation policy
// ("" counts: it defaults to "random").
func ValidAllocation(name string) bool {
	if name == "" {
		return true
	}
	for _, p := range AllocationPolicies {
		if name == p {
			return true
		}
	}
	return false
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	if c.Programs == nil {
		if _, ok := trace.MixByName(c.MixName); !ok {
			return fmt.Errorf("core: unknown mix %q", c.MixName)
		}
		if c.Threads < 1 || c.Threads > 8 {
			return fmt.Errorf("core: Threads must be in 1..8, got %d", c.Threads)
		}
	}
	switch {
	case c.Cores < 0 || c.Cores > 8:
		return fmt.Errorf("core: Cores must be in 0..8, got %d", c.Cores)
	case c.Cores > 1 && !ValidAllocation(c.Allocation):
		return fmt.Errorf("core: unknown allocation policy %q (want one of %v)", c.Allocation, AllocationPolicies)
	case c.Cores > 1 && c.Programs == nil && c.Threads%c.Cores != 0:
		return fmt.Errorf("core: Threads (%d) must divide evenly across Cores (%d)", c.Threads, c.Cores)
	case c.Cores > 1 && c.Programs != nil && len(c.Programs)%c.Cores != 0:
		return fmt.Errorf("core: len(Programs) (%d) must divide evenly across Cores (%d)", len(c.Programs), c.Cores)
	case c.Cores <= 1 && c.Allocation != "":
		return fmt.Errorf("core: Allocation %q requires Cores > 1", c.Allocation)
	}
	if c.Quanta <= 0 {
		return fmt.Errorf("core: Quanta must be positive")
	}
	if c.FastForward < 0 {
		return fmt.Errorf("core: FastForward must be >= 0")
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.Mode == ModeADTS {
		if err := c.Detector.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is everything a run produces.
type Result struct {
	Mix       string
	Mode      Mode
	Threads   int
	Seed      uint64
	Policy    policy.Policy      // fixed mode: the policy
	Heuristic detector.Heuristic // ADTS mode
	Threshold float64            // ADTS mode

	Cycles    int64
	Committed uint64
	// AggregateIPC is committed instructions per cycle over the
	// measured window, the paper's throughput metric.
	AggregateIPC float64
	PerThreadIPC []float64

	// QuantumIPC is the per-quantum aggregate IPC series.
	QuantumIPC []float64
	// PolicyTimeline records the policy engaged at the END of each
	// quantum (switches apply mid-quantum, when the DT job finishes).
	PolicyTimeline []policy.Policy

	// Detector bookkeeping (zero-valued outside ADTS mode).
	Detector detector.Stats
	DT       pipeline.DTStats
	// KernelSteps is the measured detector-thread VM instruction count
	// (kernel-driven ADTS only).
	KernelSteps uint64

	// OracleSwitches counts oracle policy changes (oracle mode only).
	OracleSwitches uint64

	// Workload character over the measured window, per cycle.
	MispredRate   float64
	L1MissRate    float64
	LSQFullRate   float64
	CondBrRate    float64
	WrongPathFrac float64 // wrong-path fraction of all fetched instructions

	// Multi-core composition, filled by internal/multicore when the
	// config had Cores > 1. The omitempty tags keep single-core JSON —
	// and therefore result digests — byte-identical to prior releases.
	Cores      int       `json:"Cores,omitempty"`
	Allocation string    `json:"Allocation,omitempty"`
	PerCoreIPC []float64 `json:"PerCoreIPC,omitempty"`
	// Assignment[c] lists the mix thread indices allocated to core c.
	Assignment [][]int `json:"Assignment,omitempty"`

	// FairnessJain is Jain's fairness index over per-thread IPC:
	// 1 = perfectly even progress, 1/n = one thread hoarding the
	// machine. Throughput-greedy policies (ACCIPC, STALLCOUNT) buy IPC
	// with fairness; this makes the trade visible.
	FairnessJain float64
	// MinMaxRatio is min/max per-thread IPC, a starvation indicator.
	MinMaxRatio float64
}

// JainIndex computes Jain's fairness index (sum x)^2 / (n * sum x^2);
// internal/multicore reuses it to score system-wide fairness.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s, s2 float64
	for _, x := range xs {
		s += x
		s2 += x * x
	}
	if s2 == 0 {
		return 0
	}
	return s * s / (float64(len(xs)) * s2)
}

// MinMaxRatio returns min(xs)/max(xs), 0 when max is 0: a starvation
// indicator over per-thread IPCs.
func MinMaxRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == 0 {
		return 0
	}
	return lo / hi
}

// RunMany executes each configuration in order on pooled machines and
// returns the results. After the first run of a given machine geometry,
// subsequent runs reuse its shell, so a sweep pays machine construction
// once per distinct geometry instead of once per run; workloads that
// repeat within the batch — the shape of every policy/threshold sweep —
// additionally replay their instruction stream from the shared trace
// cache instead of re-deriving it per run. Results are identical to
// building and running each Simulator separately.
func RunMany(cfgs []Config) ([]Result, error) {
	type workload struct {
		mix     string
		threads int
		seed    uint64
	}
	reps := make(map[workload]int, len(cfgs))
	for _, cfg := range cfgs {
		if cfg.Programs == nil {
			reps[workload{cfg.MixName, cfg.Threads, cfg.Seed}]++
		}
	}
	out := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.Programs == nil && reps[workload{cfg.MixName, cfg.Threads, cfg.Seed}] > 1 {
			// Record roughly the run's cycle count per context, capped to
			// bound cache memory; threads that outrun the prefix fall back
			// to live generation with identical results. The quantum
			// mirrors Simulator.Run's default: sizing off a zero
			// Detector.Quantum would record a prefix far shorter than the
			// run it serves.
			quantum := cfg.Detector.Quantum
			if quantum <= 0 {
				quantum = 8192
			}
			per := cfg.FastForward + int64(cfg.Quanta)*quantum
			if per > 65536 {
				per = 65536
			}
			if per >= 1024 {
				if progs, err := trace.CachedPrograms(cfg.MixName, cfg.Threads, cfg.Seed, int(per)); err == nil {
					cfg.Programs = progs
				}
			}
		}
		sim, err := NewSimulator(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: RunMany config %d: %w", i, err)
		}
		out[i] = sim.Run()
		sim.Close()
	}
	return out, nil
}

// Simulator couples a machine with a scheduling regime.
type Simulator struct {
	cfg    Config
	m      *pipeline.Machine
	det    *detector.Detector
	kernel *dtvm.Runner
	orc    *oracle.Scheduler

	prevCum []counters.Counters

	// Stepping state (Start/StepQuantum/Finish). Run drives these; a
	// multi-core System drives them directly so it can barrier cores at
	// quantum boundaries.
	started        bool
	quantum        int64
	startCycle     int64
	startCommitted uint64
	startCum       []counters.Counters
	lastQ          detector.QuantumStats
	res            Result
}

// NewSimulator builds a simulator; the machine is constructed but no
// cycles run yet.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores > 1 {
		return nil, fmt.Errorf("core: a Simulator models one core; run Cores=%d configs through internal/multicore (or simrun.Run, which routes them)", cfg.Cores)
	}
	progs := cfg.Programs
	if progs == nil {
		mix, _ := trace.MixByName(cfg.MixName)
		var err error
		progs, err = mix.Programs(cfg.Threads, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	mc := cfg.Machine
	switch cfg.Mode {
	case ModeFixed:
		mc.InitialPolicy = cfg.FixedPolicy
	case ModeADTS:
		mc.InitialPolicy = cfg.Detector.InitialPolicy
	case ModeOracle:
		mc.InitialPolicy = policy.ICOUNT
	}
	s := &Simulator{
		cfg:     cfg,
		m:       pipeline.Acquire(mc, progs, cfg.Seed),
		prevCum: make([]counters.Counters, len(progs)),
	}
	if cfg.Mode == ModeADTS {
		if cfg.Kernel != nil {
			s.kernel = dtvm.NewRunner(cfg.Kernel)
			if _, err := s.kernel.OnQuantumEnd(detector.QuantumStats{
				Cycles: 1, PerThread: make([]detector.ThreadQuantum, len(progs)),
			}); err != nil {
				return nil, fmt.Errorf("core: detector kernel dry run failed: %w", err)
			}
			s.kernel = dtvm.NewRunner(cfg.Kernel) // reset after dry run
		} else {
			s.det = detector.New(cfg.Detector)
		}
	}
	if cfg.Mode == ModeOracle {
		cands := cfg.OracleCandidates
		if cands == nil {
			cands = oracle.DefaultCandidates()
		}
		s.orc = &oracle.Scheduler{Quantum: cfg.Detector.Quantum, Candidates: cands}
	}
	return s, nil
}

// Machine exposes the underlying pipeline for inspection and tests.
// It returns nil after Close.
func (s *Simulator) Machine() *pipeline.Machine { return s.m }

// Close returns the simulator's machines to the shell pool for reuse by
// later simulators of the same geometry. Optional — an unclosed
// simulator is simply garbage-collected — but batch drivers that close
// between runs skip machine construction entirely. The simulator must
// not be used after Close.
func (s *Simulator) Close() {
	if s.orc != nil {
		s.orc.Close()
	}
	if s.m != nil {
		pipeline.Release(s.m)
		s.m = nil
	}
}

// Detector exposes the ADTS detector (nil outside ADTS mode).
func (s *Simulator) Detector() *detector.Detector { return s.det }

// snapshotDelta returns per-thread counter deltas since the previous
// call and updates the snapshot.
func (s *Simulator) snapshotDelta() []counters.Counters {
	n := s.m.NumThreads()
	deltas := make([]counters.Counters, n)
	for i := 0; i < n; i++ {
		cum := s.m.State(i).Cum
		deltas[i] = cum.Sub(s.prevCum[i])
		s.prevCum[i] = cum
	}
	return deltas
}

// quantumStats aggregates per-thread deltas into the detector's view.
func (s *Simulator) quantumStats(deltas []counters.Counters, cycles int64) detector.QuantumStats {
	q := detector.QuantumStats{
		Cycles:    cycles,
		PerThread: make([]detector.ThreadQuantum, len(deltas)),
	}
	var misp, l1, lsq, cbr uint64
	for i, d := range deltas {
		q.Committed += d.Committed
		misp += d.Mispredicts
		l1 += d.L1Misses()
		lsq += d.LSQFull
		cbr += d.CondBranches
		q.PerThread[i] = detector.ThreadQuantum{
			Committed: d.Committed,
			PreIssue:  s.m.State(i).Live.PreIssue,
		}
	}
	fc := float64(cycles)
	q.IPC = float64(q.Committed) / fc
	q.MispredRate = float64(misp) / fc
	q.L1MissRate = float64(l1) / fc
	q.LSQFullRate = float64(lsq) / fc
	q.CondBrRate = float64(cbr) / fc
	return q
}

// Start runs fast-forward and takes the measurement baseline. It is
// idempotent: the first call does the work, later calls are no-ops.
// Run calls it implicitly; multi-core drivers call it directly so every
// core is warmed before the first synchronized quantum.
func (s *Simulator) Start() {
	if s.started {
		return
	}
	s.started = true
	s.quantum = s.cfg.Detector.Quantum
	if s.quantum <= 0 {
		s.quantum = 8192
	}

	s.m.Run(s.cfg.FastForward)
	// Measurement baseline.
	s.startCycle = s.m.Now()
	s.startCommitted = s.m.TotalCommitted()
	s.startCum = make([]counters.Counters, s.m.NumThreads())
	for i := range s.startCum {
		s.startCum[i] = s.m.State(i).Cum
		s.prevCum[i] = s.startCum[i]
	}

	s.res = Result{
		Mix:     s.cfg.MixName,
		Mode:    s.cfg.Mode,
		Threads: s.m.NumThreads(),
		Seed:    s.cfg.Seed,
		Policy:  s.cfg.FixedPolicy,
	}
	if s.cfg.Mode == ModeADTS {
		s.res.Heuristic = s.cfg.Detector.Heuristic
		s.res.Threshold = s.cfg.Detector.IPCThreshold
	}
}

// StepQuantum advances the machine one scheduling quantum — including
// the end-of-quantum detector/oracle action — and returns the quantum's
// aggregate IPC. Start must have been called. A full run is Start, then
// Quanta steps, then Finish; Run packages exactly that.
func (s *Simulator) StepQuantum() float64 {
	// STALLCOUNT keys on the running quantum's stalls.
	for i := 0; i < s.m.NumThreads(); i++ {
		s.m.State(i).QuantumStalls = 0
	}
	if s.cfg.Mode == ModeOracle {
		s.orc.Step(s.m)
	} else {
		s.m.Run(s.quantum)
	}
	deltas := s.snapshotDelta()
	qs := s.quantumStats(deltas, s.quantum)
	s.lastQ = qs
	s.res.QuantumIPC = append(s.res.QuantumIPC, qs.IPC)
	s.res.PolicyTimeline = append(s.res.PolicyTimeline, s.m.Policy())

	if s.cfg.Mode == ModeADTS {
		var dec detector.Decision
		if s.kernel != nil {
			var err error
			dec, err = s.kernel.OnQuantumEnd(qs)
			if err != nil {
				panic(fmt.Sprintf("core: detector kernel failed at quantum %d: %v", len(s.res.QuantumIPC)-1, err))
			}
		} else {
			dec = s.det.OnQuantumEnd(qs)
		}
		s.m.ScheduleDetectorJob(dec.Work, dec.NewPolicy, dec.Switch)
		for i, clog := range dec.Clogging {
			f := s.m.State(i).Flags
			f.Clogging = clog
			s.m.SetFlags(i, f)
		}
	}
	return qs.IPC
}

// LastQuantum returns the detector-view aggregate of the most recent
// StepQuantum — the same QuantumStats the detector saw. The offline
// trainer (cmd/adts-train) uses it to pair context keys with the next
// quantum's outcome; it is zero before the first step.
func (s *Simulator) LastQuantum() detector.QuantumStats {
	return s.lastQ
}

// Finish closes the measurement window and returns the collected
// result. The simulator may not be stepped further afterwards.
func (s *Simulator) Finish() Result {
	res := s.res
	res.Cycles = s.m.Now() - s.startCycle
	res.Committed = s.m.TotalCommitted() - s.startCommitted
	res.AggregateIPC = float64(res.Committed) / float64(res.Cycles)
	res.PerThreadIPC = make([]float64, s.m.NumThreads())
	var misp, l1, lsq, cbr, fetched, wrong uint64
	for i := 0; i < s.m.NumThreads(); i++ {
		d := s.m.State(i).Cum.Sub(s.startCum[i])
		res.PerThreadIPC[i] = float64(d.Committed) / float64(res.Cycles)
		misp += d.Mispredicts
		l1 += d.L1Misses()
		lsq += d.LSQFull
		cbr += d.CondBranches
		fetched += d.Fetched
		wrong += d.WrongFetched
	}
	fc := float64(res.Cycles)
	res.MispredRate = float64(misp) / fc
	res.L1MissRate = float64(l1) / fc
	res.LSQFullRate = float64(lsq) / fc
	res.CondBrRate = float64(cbr) / fc
	if fetched > 0 {
		res.WrongPathFrac = float64(wrong) / float64(fetched)
	}
	res.FairnessJain = JainIndex(res.PerThreadIPC)
	res.MinMaxRatio = MinMaxRatio(res.PerThreadIPC)
	if s.det != nil {
		res.Detector = s.det.Stats()
	}
	if s.kernel != nil {
		res.Detector.Switches = s.kernel.Switches
		res.KernelSteps = s.kernel.TotalSteps
	}
	res.DT = s.m.DTStats()
	if s.orc != nil {
		res.OracleSwitches = s.orc.Switches
	}
	return res
}

// Run executes fast-forward plus the measured quanta and returns the
// collected result.
func (s *Simulator) Run() Result {
	s.Start()
	for qi := 0; qi < s.cfg.Quanta; qi++ {
		s.StepQuantum()
	}
	return s.Finish()
}
