package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/detector"
	"repro/internal/dtvm"
	"repro/internal/policy"
	"repro/internal/trace"
)

func short(mix string) Config {
	cfg := DefaultConfig(mix)
	cfg.Quanta = 6
	cfg.FastForward = 4096
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSimulator(DefaultConfig("no-such-mix")); err == nil {
		t.Fatal("unknown mix accepted")
	}
	bad := DefaultConfig("kitchen-sink")
	bad.Threads = 0
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("zero threads accepted")
	}
	bad = DefaultConfig("kitchen-sink")
	bad.Quanta = 0
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("zero quanta accepted")
	}
	bad = DefaultConfig("kitchen-sink")
	bad.FastForward = -1
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("negative fast-forward accepted")
	}
	bad = DefaultConfig("kitchen-sink")
	bad.Mode = ModeADTS
	bad.Detector.Quantum = 0
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("invalid detector config accepted in ADTS mode")
	}
}

func TestResultConsistency(t *testing.T) {
	cfg := short("mixed-even-1")
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if len(res.QuantumIPC) != cfg.Quanta || len(res.PolicyTimeline) != cfg.Quanta {
		t.Fatalf("series lengths %d/%d, want %d", len(res.QuantumIPC), len(res.PolicyTimeline), cfg.Quanta)
	}
	if res.Cycles != int64(cfg.Quanta)*cfg.Detector.Quantum {
		t.Fatalf("cycles %d, want %d", res.Cycles, int64(cfg.Quanta)*cfg.Detector.Quantum)
	}
	if math.Abs(res.AggregateIPC-float64(res.Committed)/float64(res.Cycles)) > 1e-12 {
		t.Fatal("AggregateIPC inconsistent with Committed/Cycles")
	}
	// Per-thread IPCs must sum to the aggregate.
	sum := 0.0
	for _, v := range res.PerThreadIPC {
		sum += v
	}
	if math.Abs(sum-res.AggregateIPC) > 1e-9 {
		t.Fatalf("per-thread IPCs sum %.6f != aggregate %.6f", sum, res.AggregateIPC)
	}
	// Quantum IPCs must average to the aggregate.
	qsum := 0.0
	for _, v := range res.QuantumIPC {
		qsum += v
	}
	if math.Abs(qsum/float64(len(res.QuantumIPC))-res.AggregateIPC) > 1e-9 {
		t.Fatal("quantum IPC series inconsistent with aggregate")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, _ := NewSimulator(short("int-branchy"))
	b, _ := NewSimulator(short("int-branchy"))
	ra, rb := a.Run(), b.Run()
	if ra.AggregateIPC != rb.AggregateIPC || ra.Committed != rb.Committed {
		t.Fatal("same config produced different results")
	}
}

func TestSeedChangesResult(t *testing.T) {
	cfg := short("int-branchy")
	a, _ := NewSimulator(cfg)
	cfg.Seed = 999
	b, _ := NewSimulator(cfg)
	if a.Run().Committed == b.Run().Committed {
		t.Fatal("different seeds produced identical commit counts")
	}
}

func TestFixedModeKeepsPolicy(t *testing.T) {
	cfg := short("fp-stream")
	cfg.FixedPolicy = policy.MEMCOUNT
	sim, _ := NewSimulator(cfg)
	res := sim.Run()
	for _, p := range res.PolicyTimeline {
		if p != policy.MEMCOUNT {
			t.Fatalf("fixed mode drifted to %v", p)
		}
	}
}

func TestADTSSwitchesUnderPressure(t *testing.T) {
	cfg := short("int-memory") // IPC well below m=4: always low-throughput
	cfg.Quanta = 12
	cfg.Mode = ModeADTS
	cfg.Detector.Heuristic = detector.Type1
	cfg.Detector.IPCThreshold = 4
	sim, _ := NewSimulator(cfg)
	res := sim.Run()
	if res.Detector.Switches == 0 {
		t.Fatal("Type 1 under permanent low throughput never switched")
	}
	if res.Detector.LowQuanta == 0 {
		t.Fatal("no low-throughput quanta detected")
	}
	// The timeline must actually show a non-ICOUNT policy engaged.
	saw := false
	for _, p := range res.PolicyTimeline {
		if p != policy.ICOUNT {
			saw = true
		}
	}
	if !saw {
		t.Fatal("switches decided but never engaged on the machine")
	}
	if res.DT.JobsScheduled == 0 || res.DT.FetchSlotsUsed == 0 {
		t.Fatal("detector-thread cost model saw no work")
	}
}

func TestADTSHighThresholdQuiet(t *testing.T) {
	cfg := short("fp-compute") // IPC ~2: m=0 means never low
	cfg.Mode = ModeADTS
	cfg.Detector.IPCThreshold = 0
	sim, _ := NewSimulator(cfg)
	res := sim.Run()
	if res.Detector.Switches != 0 {
		t.Fatalf("threshold 0 still switched %d times", res.Detector.Switches)
	}
}

func TestOracleMode(t *testing.T) {
	cfg := short("mixed-lowipc")
	cfg.Mode = ModeOracle
	sim, _ := NewSimulator(cfg)
	res := sim.Run()
	if res.AggregateIPC <= 0 {
		t.Fatal("oracle produced no throughput")
	}
	if len(res.PolicyTimeline) != cfg.Quanta {
		t.Fatal("oracle timeline length wrong")
	}
}

func TestThreadCountRespected(t *testing.T) {
	cfg := short("kitchen-sink")
	cfg.Threads = 3
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Threads != 3 || len(res.PerThreadIPC) != 3 {
		t.Fatalf("threads %d / per-thread %d", res.Threads, len(res.PerThreadIPC))
	}
}

func TestModeString(t *testing.T) {
	if ModeFixed.String() != "fixed" || ModeADTS.String() != "adts" || ModeOracle.String() != "oracle" {
		t.Fatal("mode strings wrong")
	}
}

func TestFairnessMetrics(t *testing.T) {
	sim, err := NewSimulator(short("int-compute"))
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.FairnessJain <= 0 || res.FairnessJain > 1 {
		t.Fatalf("Jain index %v out of (0,1]", res.FairnessJain)
	}
	if res.MinMaxRatio < 0 || res.MinMaxRatio > 1 {
		t.Fatalf("min/max ratio %v out of [0,1]", res.MinMaxRatio)
	}
	// Jain over n threads is at least 1/n.
	if res.FairnessJain < 1.0/float64(res.Threads)-1e-9 {
		t.Fatalf("Jain index %v below 1/n", res.FairnessJain)
	}
}

func TestJainIndexEdges(t *testing.T) {
	if JainIndex([]float64{2, 2, 2, 2}) < 0.999 {
		t.Fatal("equal shares should give Jain ~1")
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if got < 0.24 || got > 0.26 {
		t.Fatalf("monopoly over 4 should give ~0.25, got %v", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Jain inputs")
	}
	if MinMaxRatio([]float64{1, 4}) != 0.25 || MinMaxRatio(nil) != 0 {
		t.Fatal("minMaxRatio edges")
	}
}

func TestKernelDrivenADTS(t *testing.T) {
	// The paper's programmability claim end-to-end: an assembled Type 1
	// kernel drives the same machine the functional detector does, and
	// its measured instruction count feeds the DT cost model.
	src := dtvm.Type1Source(4)
	prog, err := dtvm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := short("int-memory")
	cfg.Quanta = 12
	cfg.Mode = ModeADTS
	cfg.Kernel = prog
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Detector.Switches == 0 {
		t.Fatal("kernel never switched under permanent low throughput")
	}
	if res.KernelSteps == 0 {
		t.Fatal("no kernel work measured")
	}
	if res.DT.JobsScheduled == 0 {
		t.Fatal("kernel work did not reach the DT cost model")
	}
	saw := false
	for _, p := range res.PolicyTimeline {
		if p == policy.BRCOUNT {
			saw = true
		}
	}
	if !saw {
		t.Fatal("kernel switches never engaged on the machine")
	}
}

func TestKernelDryRunCatchesBrokenKernels(t *testing.T) {
	prog, err := dtvm.Assemble("spin:\njmp spin")
	if err != nil {
		t.Fatal(err)
	}
	cfg := short("int-memory")
	cfg.Mode = ModeADTS
	cfg.Kernel = prog
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("runaway kernel accepted")
	}
}

// TestRunManyMatchesIndividual pins the batch seam: a policy sweep over
// one workload through RunMany (pooled shells + cached traces) must
// produce exactly the results of independent Simulators.
func TestRunManyMatchesIndividual(t *testing.T) {
	trace.FlushTraceCache()
	defer trace.FlushTraceCache()

	var cfgs []Config
	for _, p := range []policy.Policy{policy.ICOUNT, policy.RR, policy.BRCOUNT} {
		cfg := DefaultConfig("kitchen-sink")
		cfg.Quanta = 4
		cfg.FixedPolicy = p
		cfgs = append(cfgs, cfg)
	}

	batch, err := RunMany(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		sim.Close()
		if batch[i].AggregateIPC != res.AggregateIPC || batch[i].Committed != res.Committed {
			t.Fatalf("config %d (%s): RunMany IPC=%v committed=%d, individual IPC=%v committed=%d",
				i, cfg.FixedPolicy, batch[i].AggregateIPC, batch[i].Committed, res.AggregateIPC, res.Committed)
		}
	}
}

// TestRunManyMixedRunLengths pins the trace-cache prefix seam: the
// cache is keyed on (mix, threads, seed) but the recorded prefix length
// is sized from each config's own FastForward/Quanta, so a batch can
// cache a SHORT workload's prefix first and then serve a LONG run of
// the same key. The cache must re-record the longer prefix (and replay
// past any prefix bit-identically) — every result must equal an
// independent, uncached Simulator's.
func TestRunManyMixedRunLengths(t *testing.T) {
	trace.FlushTraceCache()
	defer trace.FlushTraceCache()

	shortCfg := DefaultConfig("int-memory")
	shortCfg.Threads = 2
	shortCfg.FastForward = 0
	shortCfg.Quanta = 2 // per-thread prefix request: 16384 cycles

	longCfg := shortCfg
	longCfg.FastForward = 4096
	longCfg.Quanta = 6 // 53248 cycles: forces a prefix re-record

	// Same (mix, threads, seed) key throughout; short first so the
	// short prefix lands in the cache before the long run asks for
	// more, then short again to read back the regrown recording.
	cfgs := []Config{shortCfg, longCfg, shortCfg}
	batch, err := RunMany(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		sim.Close()
		if !reflect.DeepEqual(batch[i], res) {
			t.Fatalf("config %d (quanta=%d ff=%d): RunMany result diverged from individual run\nbatch: IPC=%v committed=%d\nindiv: IPC=%v committed=%d",
				i, cfg.Quanta, cfg.FastForward, batch[i].AggregateIPC, batch[i].Committed, res.AggregateIPC, res.Committed)
		}
	}
}

// TestRunManyDefaultQuantumPrefix guards the prefix-length computation
// itself: a config relying on the run loop's implicit 8192-cycle
// default quantum (Detector.Quantum == 0 in fixed mode) must size its
// recorded prefix from that same default, not from zero.
func TestRunManyDefaultQuantumPrefix(t *testing.T) {
	trace.FlushTraceCache()
	defer trace.FlushTraceCache()

	cfg := DefaultConfig("int-compute")
	cfg.Threads = 2
	cfg.FastForward = 0
	cfg.Quanta = 3
	cfg.Detector = detector.Config{} // fixed mode ignores it; quantum defaults to 8192

	batch, err := RunMany([]Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	sim.Close()
	for i := range batch {
		if !reflect.DeepEqual(batch[i], res) {
			t.Fatalf("run %d with default quantum diverged: batch IPC=%v, individual IPC=%v",
				i, batch[i].AggregateIPC, res.AggregateIPC)
		}
	}
}
