package core

import (
	"testing"

	"repro/internal/detector"
)

// TestSmokeFixedICOUNT runs a short 8-thread fixed-ICOUNT simulation and
// checks the machine produces plausible throughput and consistent state.
func TestSmokeFixedICOUNT(t *testing.T) {
	cfg := DefaultConfig("kitchen-sink")
	cfg.Quanta = 8
	cfg.FastForward = 4096
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	t.Logf("agg IPC %.3f per-thread %v", res.AggregateIPC, res.PerThreadIPC)
	t.Logf("mispred/cyc %.4f l1miss/cyc %.4f lsqfull/cyc %.4f condbr/cyc %.4f wrongfrac %.3f",
		res.MispredRate, res.L1MissRate, res.LSQFullRate, res.CondBrRate, res.WrongPathFrac)
	if res.AggregateIPC <= 0.1 {
		t.Fatalf("implausibly low aggregate IPC %.3f", res.AggregateIPC)
	}
	if res.AggregateIPC > 8 {
		t.Fatalf("aggregate IPC %.3f exceeds machine width", res.AggregateIPC)
	}
	if err := sim.Machine().CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after run: %v", err)
	}
}

// TestSmokeADTS runs a short adaptive simulation with every heuristic.
func TestSmokeADTS(t *testing.T) {
	for _, h := range detector.AllHeuristics() {
		cfg := DefaultConfig("int-memory")
		cfg.Mode = ModeADTS
		cfg.Detector.Heuristic = h
		cfg.Quanta = 12
		cfg.FastForward = 4096
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		t.Logf("%v: IPC %.3f switches %d benignP %.2f timeline %v",
			cfg.Detector.Heuristic, res.AggregateIPC, res.Detector.Switches,
			res.Detector.BenignProbability(), res.PolicyTimeline)
		if err := sim.Machine().CheckInvariants(); err != nil {
			t.Fatalf("invariants violated: %v", err)
		}
	}
}

// TestSmokeOracle checks the oracle mode runs and beats nothing silly.
func TestSmokeOracle(t *testing.T) {
	cfg := DefaultConfig("int-memory")
	cfg.Mode = ModeOracle
	cfg.Quanta = 6
	cfg.FastForward = 4096
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	t.Logf("oracle: IPC %.3f switches %d timeline %v", res.AggregateIPC, res.OracleSwitches, res.PolicyTimeline)
	if res.AggregateIPC <= 0 {
		t.Fatal("oracle produced zero throughput")
	}
}
