package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detector"
)

// Example runs a short adaptive simulation and prints whether the
// detector ever acted, demonstrating the three-line happy path.
func Example() {
	cfg := core.DefaultConfig("int-memory")
	cfg.Mode = core.ModeADTS
	cfg.Detector.Heuristic = detector.Type1
	cfg.Detector.IPCThreshold = 4 // memory mix runs below 4 IPC: always low
	cfg.Quanta = 4
	cfg.FastForward = 2048

	sim, err := core.NewSimulator(cfg)
	if err != nil {
		panic(err)
	}
	res := sim.Run()
	fmt.Println("quanta:", len(res.QuantumIPC))
	fmt.Println("low-throughput quanta detected:", res.Detector.LowQuanta == 4)
	fmt.Println("policy switches decided:", res.Detector.Switches > 0)
	// Output:
	// quanta: 4
	// low-throughput quanta detected: true
	// policy switches decided: true
}
