package multicore

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/trace"
)

// Profiling-pass budget: enough cycles for caches and predictors to
// express each thread's character, small enough that profiling stays a
// fraction of the measured run.
const (
	profileFastForward = 4096
	profileQuanta      = 4
)

// coreSeedStride decorrelates per-core wrong-path streams; the machine
// seed is a function of the core index only, never of thread labels, so
// relabeling threads relabels results instead of changing them.
const coreSeedStride = 0x9e3779b97f4a7c15

// Result is everything a multi-core run produces.
type Result struct {
	// System is the aggregate, original-thread-order view: the same
	// shape a single-core run reports, so every existing report,
	// digest, and cache path works unchanged on multi-core output. See
	// reduce for the aggregation rules.
	System core.Result `json:"system"`
	// PerCore are the full per-core results, index = core.
	PerCore []core.Result `json:"per_core"`
	// Assignment[c] lists the mix thread indices running on core c.
	Assignment [][]int `json:"assignment"`
	// Signatures are the profiling-pass counter signatures (empty for
	// allocators that do not profile, e.g. random).
	Signatures []Signature `json:"signatures,omitempty"`
}

// System drives N SMT cores under a shared allocator.
type System struct {
	cfg   core.Config
	alloc Allocator
	// progs is the pristine workload; every profiling run and core run
	// works on clones, so the originals are never advanced.
	progs []*trace.Program
}

// New validates the config (which must have Cores > 1) and prepares the
// workload. No cycles run yet.
func New(cfg core.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores < 2 {
		return nil, fmt.Errorf("multicore: config has Cores=%d; single-core configs run through core.NewSimulator", cfg.Cores)
	}
	alloc, err := NewAllocator(cfg.Allocation)
	if err != nil {
		return nil, err
	}
	progs := cfg.Programs
	if progs == nil {
		mix, _ := trace.MixByName(cfg.MixName)
		progs, err = mix.Programs(cfg.Threads, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	return &System{cfg: cfg, alloc: alloc, progs: progs}, nil
}

// perCoreConfig builds the single-core config for one core: the
// system's config with the core's program subset, a core-indexed seed,
// and the detector's fair share rescaled to the core's thread count.
func (s *System) perCoreConfig(c int, threads []int) core.Config {
	cfg := s.cfg
	cfg.Cores = 0
	cfg.Allocation = ""
	cfg.Programs = make([]*trace.Program, len(threads))
	for k, t := range threads {
		cfg.Programs[k] = s.progs[t].Clone()
	}
	cfg.Threads = len(threads)
	cfg.Seed = s.cfg.Seed + uint64(c)*coreSeedStride
	// Fair share is a per-thread slice of this core's pre-issue
	// resources, not of the whole system's.
	cfg.Detector.FairShare = float64(cfg.Machine.IFQSize+cfg.Machine.IntIQSize+cfg.Machine.FPIQSize) / float64(len(threads))
	return cfg
}

// Profile runs each thread alone on an otherwise-idle core and returns
// its counter signature: the profiling pass symbiosis-style allocators
// predict from. Solo runs execute in parallel; collection is by thread
// index, so the output is deterministic.
func (s *System) Profile() ([]Signature, error) {
	sigs := make([]Signature, len(s.progs))
	errs := make([]error, len(s.progs))
	var wg sync.WaitGroup
	for i := range s.progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := s.cfg
			cfg.Cores = 0
			cfg.Allocation = ""
			cfg.Programs = []*trace.Program{s.progs[i].Clone()}
			cfg.Threads = 1
			cfg.Mode = core.ModeFixed
			cfg.Kernel = nil
			cfg.FastForward = profileFastForward
			cfg.Quanta = profileQuanta
			cfg.Detector.FairShare = float64(cfg.Machine.IFQSize + cfg.Machine.IntIQSize + cfg.Machine.FPIQSize)
			sim, err := core.NewSimulator(cfg)
			if err != nil {
				errs[i] = fmt.Errorf("multicore: profiling thread %d: %w", i, err)
				return
			}
			res := sim.Run()
			sim.Close()
			sigs[i] = Signature{
				Thread:      i,
				App:         s.progs[i].Profile().Name,
				IPC:         res.AggregateIPC,
				L1MissRate:  res.L1MissRate,
				MispredRate: res.MispredRate,
				LSQFullRate: res.LSQFullRate,
				CondBrRate:  res.CondBrRate,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sigs, nil
}

// Run profiles (when the allocator needs it), allocates, and executes
// all cores to completion. Cores advance in parallel goroutines but
// synchronize at every quantum boundary; the per-quantum reduction
// folds core results in core-index order, so the output is
// byte-identical across repeat runs and GOMAXPROCS settings.
func (s *System) Run() (Result, error) {
	var sigs []Signature
	if s.alloc.NeedsSignatures() {
		var err error
		if sigs, err = s.Profile(); err != nil {
			return Result{}, err
		}
	} else {
		sigs = make([]Signature, len(s.progs))
		for i := range sigs {
			sigs[i] = Signature{Thread: i, App: s.progs[i].Profile().Name}
		}
	}
	assignment, err := s.alloc.Allocate(sigs, s.cfg.Cores, s.cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	res, err := s.RunWithAssignment(assignment)
	if err != nil {
		return Result{}, err
	}
	if s.alloc.NeedsSignatures() {
		res.Signatures = sigs
	}
	return res, nil
}

// RunWithAssignment executes the cores under an explicit thread-to-core
// partition (each thread index exactly once, len(progs)/Cores threads
// per core). Exposed for tests — permutation-invariance checks pin
// per-core results to the co-scheduled program set, not to thread
// labels — and for callers that bring their own allocator.
func (s *System) RunWithAssignment(assignment [][]int) (Result, error) {
	if err := s.checkAssignment(assignment); err != nil {
		return Result{}, err
	}
	sims := make([]*core.Simulator, len(assignment))
	for c, threads := range assignment {
		sim, err := core.NewSimulator(s.perCoreConfig(c, threads))
		if err != nil {
			return Result{}, fmt.Errorf("multicore: core %d: %w", c, err)
		}
		sims[c] = sim
	}

	// Fast-forward every core in parallel, then run the measured quanta
	// with a barrier at every quantum boundary. The barrier is what
	// makes the reduction per-quantum (and keeps the door open for
	// future quantum-granular reallocation) — correctness only needs
	// the per-core runs to be independent, which they are.
	parallelCores(len(sims), func(c int) { sims[c].Start() })
	quantumIPC := make([]float64, s.cfg.Quanta)
	perCoreQ := make([]float64, len(sims))
	for q := 0; q < s.cfg.Quanta; q++ {
		parallelCores(len(sims), func(c int) { perCoreQ[c] = sims[c].StepQuantum() })
		for _, ipc := range perCoreQ {
			quantumIPC[q] += ipc
		}
	}

	perCore := make([]core.Result, len(sims))
	for c, sim := range sims {
		perCore[c] = sim.Finish()
		sim.Close()
	}
	return Result{
		System:     s.reduce(perCore, assignment, quantumIPC),
		PerCore:    perCore,
		Assignment: assignment,
	}, nil
}

// checkAssignment verifies the partition shape: every thread exactly
// once, evenly across cores.
func (s *System) checkAssignment(assignment [][]int) error {
	if len(assignment) != s.cfg.Cores {
		return fmt.Errorf("multicore: assignment has %d cores, config says %d", len(assignment), s.cfg.Cores)
	}
	per := len(s.progs) / s.cfg.Cores
	seen := make([]bool, len(s.progs))
	for c, g := range assignment {
		if len(g) != per {
			return fmt.Errorf("multicore: core %d assigned %d threads, want %d", c, len(g), per)
		}
		for _, t := range g {
			if t < 0 || t >= len(s.progs) {
				return fmt.Errorf("multicore: core %d references thread %d (have %d)", c, t, len(s.progs))
			}
			if seen[t] {
				return fmt.Errorf("multicore: thread %d assigned twice", t)
			}
			seen[t] = true
		}
	}
	return nil
}

// reduce folds per-core results into the aggregate system view, always
// in core-index order:
//
//   - Cycles is the per-core measured window (identical across cores by
//     construction: same quanta, same quantum length);
//   - Committed, IPC, event rates, and detector/DT counters sum across
//     cores (rates are per system wall-cycle);
//   - WrongPathFrac is the mean across cores (the windows are equal);
//   - PerThreadIPC is reassembled in original mix-thread order via the
//     assignment, and the fairness figures are computed over it —
//     fairness is a system property, not a per-core one;
//   - QuantumIPC is the barrier-reduced series; PolicyTimeline is core
//     0's (a per-core series has no single system value).
func (s *System) reduce(perCore []core.Result, assignment [][]int, quantumIPC []float64) core.Result {
	sys := core.Result{
		Mix:        s.cfg.MixName,
		Mode:       s.cfg.Mode,
		Threads:    len(s.progs),
		Seed:       s.cfg.Seed,
		Policy:     perCore[0].Policy,
		Heuristic:  perCore[0].Heuristic,
		Threshold:  perCore[0].Threshold,
		Cores:      s.cfg.Cores,
		Allocation: s.alloc.Name(),
		Assignment: assignment,
		QuantumIPC: quantumIPC,
	}
	sys.PerThreadIPC = make([]float64, len(s.progs))
	sys.PerCoreIPC = make([]float64, len(perCore))
	for c, r := range perCore {
		if r.Cycles > sys.Cycles {
			sys.Cycles = r.Cycles
		}
		sys.Committed += r.Committed
		sys.PerCoreIPC[c] = r.AggregateIPC
		sys.MispredRate += r.MispredRate
		sys.L1MissRate += r.L1MissRate
		sys.LSQFullRate += r.LSQFullRate
		sys.CondBrRate += r.CondBrRate
		sys.WrongPathFrac += r.WrongPathFrac / float64(len(perCore))
		for k, t := range assignment[c] {
			sys.PerThreadIPC[t] = r.PerThreadIPC[k]
		}
		sys.Detector.Quanta += r.Detector.Quanta
		sys.Detector.LowQuanta += r.Detector.LowQuanta
		sys.Detector.Switches += r.Detector.Switches
		sys.Detector.Benign += r.Detector.Benign
		sys.Detector.Malignant += r.Detector.Malignant
		sys.Detector.GradientHolds += r.Detector.GradientHolds
		sys.Detector.Reversals += r.Detector.Reversals
		if r.Detector.PolicyQuanta != nil {
			sys.Detector.PolicyQuanta = detector.MergePolicyQuanta(sys.Detector.PolicyQuanta, r.Detector.PolicyQuanta)
		}
		sys.DT.FetchSlotsUsed += r.DT.FetchSlotsUsed
		sys.DT.IssueSlotsUsed += r.DT.IssueSlotsUsed
		sys.DT.JobsScheduled += r.DT.JobsScheduled
		sys.DT.JobsCompleted += r.DT.JobsCompleted
		sys.DT.JobsPreempted += r.DT.JobsPreempted
		sys.DT.JobCycles += r.DT.JobCycles
		sys.KernelSteps += r.KernelSteps
		sys.OracleSwitches += r.OracleSwitches
	}
	sys.AggregateIPC = float64(sys.Committed) / float64(sys.Cycles)
	sys.PolicyTimeline = perCore[0].PolicyTimeline
	sys.FairnessJain = core.JainIndex(sys.PerThreadIPC)
	sys.MinMaxRatio = core.MinMaxRatio(sys.PerThreadIPC)
	return sys
}

// Run is the one-call entry point: build the System for cfg, run it,
// return the full multi-core result.
func Run(cfg core.Config) (Result, error) {
	sys, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return sys.Run()
}

// RunConfig runs cfg and returns only the aggregate system view — the
// drop-in shape for callers that speak core.Result (simrun, the result
// cache, the fleet transport).
func RunConfig(cfg core.Config) (core.Result, error) {
	res, err := Run(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return res.System, nil
}

// parallelCores runs f(0..n-1) on n goroutines and waits. The work per
// call is a whole scheduling quantum (thousands of simulated cycles),
// so goroutine overhead is noise.
func parallelCores(n int, f func(c int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for c := 0; c < n; c++ {
		go func(c int) {
			defer wg.Done()
			f(c)
		}(c)
	}
	wg.Wait()
}
