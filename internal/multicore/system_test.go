package multicore

import (
	"encoding/json"
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// testConfig keeps the simulated budget small: the determinism suite
// runs every policy several times over.
func testConfig(policy string) core.Config {
	cfg := core.DefaultConfig("kitchen-sink")
	cfg.Threads = 4
	cfg.Quanta = 4
	cfg.FastForward = 2048
	cfg.Cores = 2
	cfg.Allocation = policy
	return cfg
}

// TestRunByteIdenticalAcrossRepeatsAndGOMAXPROCS is the determinism
// contract from the package doc: cores advance in parallel goroutines,
// but the JSON encoding of the full result — system view, per-core
// results, assignment, signatures — is byte-identical across repeat
// runs and across GOMAXPROCS settings.
func TestRunByteIdenticalAcrossRepeatsAndGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, policy := range core.AllocationPolicies {
		var want []byte
		for _, procs := range []int{1, 2, 8, 8} { // repeat 8 to cover same-setting reruns
			runtime.GOMAXPROCS(procs)
			res, err := Run(testConfig(policy))
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			raw, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = raw
				continue
			}
			if string(raw) != string(want) {
				t.Fatalf("%s: result differs at GOMAXPROCS=%d", policy, procs)
			}
		}
	}
}

// TestPermutationInvariance: relabeling threads (permuting the program
// slice and the assignment with it) must relabel the results, not
// change them. Per-core machine seeds are a function of the core index
// only, so a core running the same programs in the same order produces
// the same result regardless of what the threads are labeled.
func TestPermutationInvariance(t *testing.T) {
	cfg := testConfig("random")
	mix, _ := trace.MixByName(cfg.MixName)
	progs, err := mix.Programs(cfg.Threads, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}

	cfgA := cfg
	cfgA.Programs = progs
	sysA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := sysA.RunWithAssignment([][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}

	// Relabel: thread i of system B is thread perm[i] of system A. The
	// same programs land on the same cores in the same order.
	perm := []int{2, 3, 0, 1}
	progsB, err := mix.Programs(cfg.Threads, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfg
	cfgB.Programs = make([]*trace.Program, len(perm))
	for i, p := range perm {
		cfgB.Programs[i] = progsB[p]
	}
	sysB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sysB.RunWithAssignment([][]int{{2, 3}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}

	for c := range resA.PerCore {
		if !reflect.DeepEqual(resA.PerCore[c], resB.PerCore[c]) {
			t.Fatalf("core %d result changed under thread relabeling", c)
		}
	}
	// The system per-thread view is the same data under the new labels.
	for i, p := range perm {
		if resB.System.PerThreadIPC[i] != resA.System.PerThreadIPC[p] {
			t.Fatalf("PerThreadIPC[%d] = %v, want thread %d's %v",
				i, resB.System.PerThreadIPC[i], p, resA.System.PerThreadIPC[p])
		}
	}
	if resA.System.AggregateIPC != resB.System.AggregateIPC {
		t.Fatalf("aggregate IPC changed under relabeling: %v vs %v",
			resA.System.AggregateIPC, resB.System.AggregateIPC)
	}
}

// TestReduceInvariants pins the aggregation rules: committed counts
// sum, the quantum series is the sum of per-core quantum IPCs, the
// per-core IPC vector matches the per-core results, and the system
// per-thread view is a complete reassembly.
func TestReduceInvariants(t *testing.T) {
	res, err := Run(testConfig("synpa"))
	if err != nil {
		t.Fatal(err)
	}
	var committed uint64
	for _, r := range res.PerCore {
		committed += r.Committed
	}
	if res.System.Committed != committed {
		t.Fatalf("system committed %d != per-core sum %d", res.System.Committed, committed)
	}
	if got, want := len(res.System.PerCoreIPC), len(res.PerCore); got != want {
		t.Fatalf("PerCoreIPC has %d entries, want %d", got, want)
	}
	for c, r := range res.PerCore {
		if res.System.PerCoreIPC[c] != r.AggregateIPC {
			t.Fatalf("PerCoreIPC[%d] = %v, want %v", c, res.System.PerCoreIPC[c], r.AggregateIPC)
		}
	}
	for q, sum := range res.System.QuantumIPC {
		var want float64
		for _, r := range res.PerCore {
			want += r.QuantumIPC[q]
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("QuantumIPC[%d] = %v, want per-core sum %v", q, sum, want)
		}
	}
	for i, ipc := range res.System.PerThreadIPC {
		if ipc <= 0 {
			t.Fatalf("PerThreadIPC[%d] = %v: reassembly hole", i, ipc)
		}
	}
	if res.System.Cores != 2 || res.System.Allocation != "synpa" {
		t.Fatalf("system result not labeled: Cores=%d Allocation=%q",
			res.System.Cores, res.System.Allocation)
	}
}

// TestProfilingOnlyWhenNeeded: random must not pay the profiling pass
// (Signatures empty), the counter-driven policies must record it.
func TestProfilingOnlyWhenNeeded(t *testing.T) {
	res, err := Run(testConfig("random"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) != 0 {
		t.Fatalf("random allocation profiled anyway: %d signatures", len(res.Signatures))
	}
	res, err = Run(testConfig("symbiosis"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) != 4 {
		t.Fatalf("symbiosis recorded %d signatures, want 4", len(res.Signatures))
	}
	for i, s := range res.Signatures {
		if s.Thread != i || s.IPC <= 0 {
			t.Fatalf("signature %d malformed: %+v", i, s)
		}
	}
}

// TestSingleCoreConfigsRejected: the multi-core entry points refuse
// single-core configs instead of silently wrapping them, so the
// single-core path stays bit-for-bit the classic one.
func TestSingleCoreConfigsRejected(t *testing.T) {
	cfg := core.DefaultConfig("kitchen-sink")
	cfg.Quanta = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("Cores<=1 accepted by multicore.New")
	}
	cfg.Cores = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("Cores=1 accepted by multicore.New")
	}
}

// TestBadAssignmentsRejected covers the partition checker.
func TestBadAssignmentsRejected(t *testing.T) {
	sys, err := New(testConfig("random"))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][][]int{
		{{0, 1, 2, 3}},           // wrong core count
		{{0, 1}, {2, 2}},         // duplicate thread
		{{0, 1}, {2, 9}},         // out of range
		{{0, 1, 2}, {3}},         // uneven
		{{0, 1}, {2, 3}, {0, 1}}, // too many cores
	}
	for _, a := range bad {
		if _, err := sys.RunWithAssignment(a); err == nil {
			t.Fatalf("assignment %v accepted", a)
		}
	}
}
