package multicore

import (
	"reflect"
	"testing"
)

// sig builds a signature whose pressure class is unambiguous.
func sig(thread int, class PressureClass) Signature {
	s := Signature{Thread: thread, IPC: 2}
	switch class {
	case ClassMemory:
		s.L1MissRate = 0.2
		s.IPC = 0.5
	case ClassBranch:
		s.MispredRate = 0.01
		s.IPC = 1
	}
	return s
}

func TestSignatureClass(t *testing.T) {
	cases := []struct {
		name string
		s    Signature
		want PressureClass
	}{
		{"cache-resident, well-predicted", Signature{IPC: 3}, ClassCompute},
		{"L1-bound", Signature{L1MissRate: 0.1}, ClassMemory},
		{"LSQ-bound", Signature{LSQFullRate: 0.1}, ClassMemory},
		{"mispredict-bound", Signature{MispredRate: 0.01}, ClassBranch},
		{"branch-dense", Signature{CondBrRate: 0.05}, ClassBranch},
		{"memory wins over branch", Signature{L1MissRate: 0.1, MispredRate: 0.01}, ClassMemory},
	}
	for _, tc := range cases {
		if got := tc.s.Class(); got != tc.want {
			t.Errorf("%s: Class() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// checkPartition asserts out is a valid canonical partition of 0..n-1.
func checkPartition(t *testing.T, out [][]int, n, cores int) {
	t.Helper()
	if len(out) != cores {
		t.Fatalf("got %d cores, want %d", len(out), cores)
	}
	seen := make([]bool, n)
	for c, g := range out {
		if len(g) != n/cores {
			t.Fatalf("core %d has %d threads, want %d", c, len(g), n/cores)
		}
		for i, th := range g {
			if th < 0 || th >= n || seen[th] {
				t.Fatalf("core %d: bad/duplicate thread %d in %v", c, th, out)
			}
			seen[th] = true
			if i > 0 && g[i-1] >= th {
				t.Fatalf("core %d group %v not sorted ascending", c, g)
			}
		}
	}
}

func TestAllocatorsProduceValidPartitions(t *testing.T) {
	for _, name := range []string{"random", "symbiosis", "synpa"} {
		a, err := NewAllocator(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, geom := range []struct{ n, cores int }{{4, 2}, {8, 2}, {8, 4}, {6, 3}} {
			sigs := make([]Signature, geom.n)
			for i := range sigs {
				sigs[i] = sig(i, PressureClass(i%3))
			}
			out, err := a.Allocate(sigs, geom.cores, 7)
			if err != nil {
				t.Fatalf("%s %dx%d: %v", name, geom.n, geom.cores, err)
			}
			checkPartition(t, out, geom.n, geom.cores)
		}
	}
}

func TestAllocatorsAreDeterministic(t *testing.T) {
	sigs := make([]Signature, 8)
	for i := range sigs {
		sigs[i] = sig(i, PressureClass(i%3))
	}
	for _, name := range []string{"random", "symbiosis", "synpa"} {
		a, _ := NewAllocator(name)
		first, err := a.Allocate(sigs, 2, 42)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := a.Allocate(sigs, 2, 42)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%s: repeat allocation differs: %v vs %v", name, first, again)
			}
		}
	}
}

func TestRandomAllocatorSeedSensitivity(t *testing.T) {
	a, _ := NewAllocator("random")
	sigs := make([]Signature, 8)
	for i := range sigs {
		sigs[i] = Signature{Thread: i}
	}
	base, _ := a.Allocate(sigs, 2, 1)
	differs := false
	for seed := uint64(2); seed < 12; seed++ {
		out, _ := a.Allocate(sigs, 2, seed)
		if !reflect.DeepEqual(base, out) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("random allocation identical across 10 seeds; not actually seeded")
	}
}

// TestSymbiosisSnakeBalancesPressure: with four threads of strictly
// decreasing pressure, the snake deal must pair heaviest with lightest
// (ranks 0,3 together and 1,2 together), never stack the two heaviest.
func TestSymbiosisSnakeBalancesPressure(t *testing.T) {
	a, _ := NewAllocator("symbiosis")
	sigs := []Signature{
		{Thread: 0, L1MissRate: 0.40, IPC: 0.2}, // heaviest
		{Thread: 1, L1MissRate: 0.30, IPC: 0.5},
		{Thread: 2, L1MissRate: 0.20, IPC: 1.0},
		{Thread: 3, L1MissRate: 0.00, IPC: 3.0}, // lightest
	}
	out, err := a.Allocate(sigs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 3}, {1, 2}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("snake deal = %v, want %v", out, want)
	}
}

// TestSynpaSpreadsClasses: two memory-bound and two branch-bound
// threads on two cores must end up one of each per core, not a
// memory core and a branch core.
func TestSynpaSpreadsClasses(t *testing.T) {
	a, _ := NewAllocator("synpa")
	sigs := []Signature{
		sig(0, ClassMemory),
		sig(1, ClassMemory),
		sig(2, ClassBranch),
		sig(3, ClassBranch),
	}
	out, err := a.Allocate(sigs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, out, 4, 2)
	for c, g := range out {
		if sigs[g[0]].Class() == sigs[g[1]].Class() {
			t.Fatalf("core %d got two %v threads: %v", c, sigs[g[0]].Class(), out)
		}
	}
}

func TestAllocatorErrors(t *testing.T) {
	if _, err := NewAllocator("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	a, _ := NewAllocator("random")
	if _, err := a.Allocate(make([]Signature, 5), 2, 1); err == nil {
		t.Fatal("uneven partition accepted")
	}
	if _, err := a.Allocate(make([]Signature, 4), 1, 1); err == nil {
		t.Fatal("single core accepted")
	}
	if _, err := a.Allocate(nil, 2, 1); err == nil {
		t.Fatal("empty signature set accepted")
	}
}
