// Package multicore scales the single-SMT-core reproduction up one
// level: N cores — each with its own pipeline.Machine and (in ADTS
// mode) its own detector thread — run side by side under a shared
// thread-to-core allocator. Which threads get co-scheduled on which
// core is exactly the question the SYNPA line of work studies
// (PAPERS.md); the three policies here are the family that experiment
// compares (docs/multicore.md):
//
//   - random: a seeded uniform partition, the baseline every
//     allocation paper measures against;
//   - symbiosis: predicted symbiosis from per-thread counter
//     signatures collected in a profiling pass — threads are ranked by
//     resource pressure and dealt to cores in snake order, so each
//     core pairs resource-hungry threads with light ones;
//   - synpa: SYNPA-style pairing by dominant resource-pressure class
//     (memory / branch / compute), spreading same-class threads across
//     cores so no core is all pointer-chasers or all mispredictors.
//
// Determinism contract: System.Run output is byte-identical across
// repeat runs and GOMAXPROCS settings. Cores advance in parallel
// goroutines but synchronize at every quantum boundary, and the
// per-quantum reduction always folds results in core-index order.
package multicore

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Signature is one thread's counter profile from a solo profiling run:
// the per-thread "performance counters" an allocation policy predicts
// symbiosis from. Rates are events per cycle over the profiled window.
type Signature struct {
	Thread      int     `json:"thread"`
	App         string  `json:"app"`
	IPC         float64 `json:"ipc"`
	L1MissRate  float64 `json:"l1_miss_rate"`
	MispredRate float64 `json:"mispred_rate"`
	LSQFullRate float64 `json:"lsq_full_rate"`
	CondBrRate  float64 `json:"cond_br_rate"`
}

// PressureClass is the dominant bottleneck a signature exhibits.
type PressureClass int

const (
	// ClassCompute covers threads limited by ILP/function units:
	// cache-resident, well-predicted.
	ClassCompute PressureClass = iota
	// ClassMemory covers threads limited by cache misses or LSQ
	// pressure.
	ClassMemory
	// ClassBranch covers threads limited by mispredicted control flow.
	ClassBranch
)

func (c PressureClass) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassMemory:
		return "memory"
	case ClassBranch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Class buckets the signature by its dominant resource pressure. The
// thresholds are the detector's calibrated 8-thread condition rates
// (§4.3.2) scaled to a single thread's share.
func (s Signature) Class() PressureClass {
	const div = 8
	switch {
	case s.L1MissRate >= 0.19/div || s.LSQFullRate >= 0.45/div:
		return ClassMemory
	case s.MispredRate >= 0.02/div || s.CondBrRate >= 0.38/div:
		return ClassBranch
	default:
		return ClassCompute
	}
}

// pressure is a scalar resource-hunger score used by the symbiosis
// allocator: each component is normalized by the cohort maximum so no
// single counter's scale dominates. Higher = hungrier.
func pressure(s Signature, maxL1, maxMisp, maxLSQ, maxIPC float64) float64 {
	p := 0.0
	if maxL1 > 0 {
		p += 0.4 * s.L1MissRate / maxL1
	}
	if maxLSQ > 0 {
		p += 0.2 * s.LSQFullRate / maxLSQ
	}
	if maxMisp > 0 {
		p += 0.2 * s.MispredRate / maxMisp
	}
	if maxIPC > 0 {
		// Low solo IPC is itself a pressure signal (long-latency bound).
		p += 0.2 * (1 - s.IPC/maxIPC)
	}
	return p
}

// Allocator partitions threads across cores. Allocate returns, for each
// core, the mix thread indices assigned to it: a partition of
// 0..len(sigs)-1 into len(sigs)/cores-sized groups, each sorted
// ascending (the canonical within-core order). Implementations are pure
// functions of their inputs — same signatures, cores and seed, same
// partition — which is what makes multi-core runs deterministic.
type Allocator interface {
	Name() string
	// NeedsSignatures reports whether Allocate reads profiled counter
	// data; when false the System skips the profiling pass and hands
	// Allocate index-and-name-only signatures.
	NeedsSignatures() bool
	Allocate(sigs []Signature, cores int, seed uint64) ([][]int, error)
}

// NewAllocator returns the named policy; "" selects random.
func NewAllocator(name string) (Allocator, error) {
	switch name {
	case "", "random":
		return randomAllocator{}, nil
	case "symbiosis":
		return symbiosisAllocator{}, nil
	case "synpa":
		return synpaAllocator{}, nil
	}
	return nil, fmt.Errorf("multicore: unknown allocation policy %q", name)
}

// randomAllocator deals a seeded uniform permutation into cores.
type randomAllocator struct{}

func (randomAllocator) Name() string          { return "random" }
func (randomAllocator) NeedsSignatures() bool { return false }

func (randomAllocator) Allocate(sigs []Signature, cores int, seed uint64) ([][]int, error) {
	n, per, err := shape(sigs, cores)
	if err != nil {
		return nil, err
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	r := rng.New(seed ^ 0xc0e5c0e5c0e5c0e5)
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return chunk(idx, cores, per), nil
}

// symbiosisAllocator ranks threads by predicted resource pressure and
// deals them to cores in snake order, balancing total pressure and
// pairing hungry threads with light ones on every core.
type symbiosisAllocator struct{}

func (symbiosisAllocator) Name() string          { return "symbiosis" }
func (symbiosisAllocator) NeedsSignatures() bool { return true }

func (symbiosisAllocator) Allocate(sigs []Signature, cores int, seed uint64) ([][]int, error) {
	n, per, err := shape(sigs, cores)
	if err != nil {
		return nil, err
	}
	var maxL1, maxMisp, maxLSQ, maxIPC float64
	for _, s := range sigs {
		maxL1 = max(maxL1, s.L1MissRate)
		maxMisp = max(maxMisp, s.MispredRate)
		maxLSQ = max(maxLSQ, s.LSQFullRate)
		maxIPC = max(maxIPC, s.IPC)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa := pressure(sigs[order[a]], maxL1, maxMisp, maxLSQ, maxIPC)
		pb := pressure(sigs[order[b]], maxL1, maxMisp, maxLSQ, maxIPC)
		if pa != pb {
			return pa > pb
		}
		return order[a] < order[b]
	})
	out := make([][]int, cores)
	for rank, t := range order {
		c := snakeCore(rank, cores)
		out[c] = append(out[c], t)
	}
	return canonical(out, per)
}

// synpaAllocator classifies threads by dominant pressure class and
// spreads each class across cores round-robin, so complementary classes
// share a core and same-class threads collide as little as possible.
type synpaAllocator struct{}

func (synpaAllocator) Name() string          { return "synpa" }
func (synpaAllocator) NeedsSignatures() bool { return true }

func (synpaAllocator) Allocate(sigs []Signature, cores int, seed uint64) ([][]int, error) {
	n, per, err := shape(sigs, cores)
	if err != nil {
		return nil, err
	}
	_ = n
	// Threads grouped by class, each group in thread order.
	byClass := map[PressureClass][]int{}
	for i, s := range sigs {
		byClass[s.Class()] = append(byClass[s.Class()], i)
	}
	out := make([][]int, cores)
	// Deal class by class (memory first: the class whose collisions
	// hurt most), always to the least-loaded non-full core; ties go to
	// the lowest core index, so the result is deterministic.
	for _, cl := range []PressureClass{ClassMemory, ClassBranch, ClassCompute} {
		for _, t := range byClass[cl] {
			best := -1
			for c := 0; c < cores; c++ {
				if len(out[c]) >= per {
					continue
				}
				if best == -1 || len(out[c]) < len(out[best]) {
					best = c
				}
			}
			out[best] = append(out[best], t)
		}
	}
	return canonical(out, per)
}

// shape validates the (threads, cores) geometry and returns n and the
// per-core thread count.
func shape(sigs []Signature, cores int) (n, per int, err error) {
	n = len(sigs)
	if cores < 2 {
		return 0, 0, fmt.Errorf("multicore: need at least 2 cores, got %d", cores)
	}
	if n == 0 || n%cores != 0 {
		return 0, 0, fmt.Errorf("multicore: %d threads do not divide evenly across %d cores", n, cores)
	}
	return n, n / cores, nil
}

// chunk splits a permutation into per-core groups and canonicalizes
// each group's order.
func chunk(idx []int, cores, per int) [][]int {
	out := make([][]int, cores)
	for c := 0; c < cores; c++ {
		g := append([]int(nil), idx[c*per:(c+1)*per]...)
		sort.Ints(g)
		out[c] = g
	}
	return out
}

// canonical sorts every group ascending and checks the partition shape.
func canonical(out [][]int, per int) ([][]int, error) {
	for c := range out {
		if len(out[c]) != per {
			return nil, fmt.Errorf("multicore: core %d got %d threads, want %d", c, len(out[c]), per)
		}
		sort.Ints(out[c])
	}
	return out, nil
}

// snakeCore maps a pressure rank to a core in boustrophedon order:
// 0,1,..,C-1,C-1,..,1,0,0,1,.. so the heaviest and lightest threads
// land together.
func snakeCore(rank, cores int) int {
	lap := rank / cores
	pos := rank % cores
	if lap%2 == 1 {
		pos = cores - 1 - pos
	}
	return pos
}
