package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c             Class
		mem, ctrl, fp bool
	}{
		{Nop, false, false, false},
		{IntALU, false, false, false},
		{IntMult, false, false, false},
		{IntDiv, false, false, false},
		{FPAdd, false, false, true},
		{FPMult, false, false, true},
		{FPDiv, false, false, true},
		{Load, true, false, false},
		{Store, true, false, false},
		{Branch, false, true, false},
		{Jump, false, true, false},
		{Syscall, false, false, false},
	}
	for _, c := range cases {
		if c.c.IsMem() != c.mem || c.c.IsCtrl() != c.ctrl || c.c.IsFP() != c.fp {
			t.Errorf("%v predicates: mem=%t ctrl=%t fp=%t, want %t %t %t",
				c.c, c.c.IsMem(), c.c.IsCtrl(), c.c.IsFP(), c.mem, c.ctrl, c.fp)
		}
	}
}

func TestFUMapping(t *testing.T) {
	cases := map[Class]FUKind{
		IntALU:  FUIntALU,
		IntMult: FUIntMulDiv,
		IntDiv:  FUIntMulDiv,
		FPAdd:   FUFPAdd,
		FPMult:  FUFPMulDiv,
		FPDiv:   FUFPMulDiv,
		Load:    FUMemPort,
		Store:   FUMemPort,
		Branch:  FUIntALU,
		Jump:    FUIntALU,
		Nop:     FUIntALU,
		Syscall: FUIntALU,
	}
	for c, fu := range cases {
		if c.FU() != fu {
			t.Errorf("%v.FU() = %v, want %v", c, c.FU(), fu)
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	f := func(raw uint8) bool {
		c := Class(raw % uint8(NumClasses))
		return c.Latency() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyOrdering(t *testing.T) {
	if !(IntDiv.Latency() > IntMult.Latency() && IntMult.Latency() > IntALU.Latency()) {
		t.Fatal("integer latency ordering violated")
	}
	if !(FPDiv.Latency() > FPMult.Latency() && FPMult.Latency() >= FPAdd.Latency()) {
		t.Fatal("FP latency ordering violated")
	}
}

func TestPipelined(t *testing.T) {
	if IntDiv.Pipelined() || FPDiv.Pipelined() {
		t.Fatal("dividers must not be pipelined")
	}
	for _, c := range []Class{IntALU, IntMult, FPAdd, FPMult, Load, Store, Branch} {
		if !c.Pipelined() {
			t.Fatalf("%v should be pipelined", c)
		}
	}
}

func TestStrings(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || strings.Contains(s, "class(") {
			t.Errorf("Class(%d) has no name", c)
		}
	}
	for k := FUKind(0); k < NumFU; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "fu(") {
			t.Errorf("FUKind(%d) has no name", k)
		}
	}
	if Class(200).String() == "" || FUKind(200).String() == "" {
		t.Error("out-of-range values should still render")
	}
}

func TestInstString(t *testing.T) {
	mem := Inst{Seq: 1, PC: 0x10, Class: Load, Addr: 0x1000, Dep1: 2}
	if !strings.Contains(mem.String(), "addr=0x1000") {
		t.Errorf("mem inst string: %s", mem)
	}
	br := Inst{Seq: 2, PC: 0x11, Class: Branch, Taken: true, Target: 0x8}
	if !strings.Contains(br.String(), "taken=true") {
		t.Errorf("branch inst string: %s", br)
	}
	alu := Inst{Seq: 3, PC: 0x12, Class: IntALU, Dep1: 1, Dep2: 4}
	if !strings.Contains(alu.String(), "dep=(1,4)") {
		t.Errorf("alu inst string: %s", alu)
	}
}
