// Package isa defines the abstract instruction set of the trace-driven SMT
// simulator: dynamic instruction records, instruction classes, and the
// functional-unit classes and latencies they map onto.
//
// The simulator is trace-driven: programs are streams of Inst records
// produced by internal/trace. An Inst carries everything the timing model
// needs — class, dependency distances, effective address, branch outcome —
// and nothing it does not (no opcode encodings, no register values).
package isa

import "fmt"

// Class identifies the kind of a dynamic instruction.
type Class uint8

// Instruction classes. The mix of classes in a program stream is the main
// lever the workload generator uses to model application behaviour.
const (
	Nop Class = iota
	IntALU
	IntMult
	IntDiv
	FPAdd
	FPMult
	FPDiv
	Load
	Store
	Branch  // conditional branch
	Jump    // unconditional direct jump
	Syscall // system-call marker: drains the whole pipeline (paper §6)
	NumClasses
)

var classNames = [NumClasses]string{
	"nop", "ialu", "imult", "idiv", "fadd", "fmult", "fdiv",
	"load", "store", "branch", "jump", "syscall",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsCtrl reports whether the class redirects control flow.
func (c Class) IsCtrl() bool { return c == Branch || c == Jump }

// IsFP reports whether the class executes on the floating-point side
// (and therefore occupies the FP instruction queue).
func (c Class) IsFP() bool { return c == FPAdd || c == FPMult || c == FPDiv }

// FUKind identifies a functional-unit class.
type FUKind uint8

// Functional-unit classes, sized per the Tullsen et al. ICOUNT machine the
// paper configures SimpleSMT to match (6 integer ALUs, 2 int mul/div,
// 4 FP units, 4 load/store ports).
const (
	FUIntALU FUKind = iota
	FUIntMulDiv
	FUFPAdd
	FUFPMulDiv
	FUMemPort
	NumFU
)

var fuNames = [NumFU]string{"int-alu", "int-muldiv", "fp-add", "fp-muldiv", "mem-port"}

func (k FUKind) String() string {
	if int(k) < len(fuNames) {
		return fuNames[k]
	}
	return fmt.Sprintf("fu(%d)", uint8(k))
}

// FU returns the functional-unit class an instruction class issues to.
// Nop, Jump and Syscall use an integer ALU slot.
func (c Class) FU() FUKind {
	switch c {
	case IntMult, IntDiv:
		return FUIntMulDiv
	case FPAdd:
		return FUFPAdd
	case FPMult, FPDiv:
		return FUFPMulDiv
	case Load, Store:
		return FUMemPort
	default:
		return FUIntALU
	}
}

// Latency returns the execution latency in cycles of the class, excluding
// any memory-hierarchy latency (loads add the D-cache access on top).
// Values follow the SimpleScalar defaults the paper's simulator inherits.
func (c Class) Latency() int {
	switch c {
	case IntMult:
		return 3
	case IntDiv:
		return 20
	case FPAdd:
		return 2
	case FPMult:
		return 4
	case FPDiv:
		return 12
	case Load, Store:
		return 1 // address generation; cache latency is added separately
	default:
		return 1
	}
}

// Pipelined reports whether a functional unit of the class accepts a new
// instruction every cycle (true) or blocks until the current one finishes
// (false, for dividers).
func (c Class) Pipelined() bool {
	return c != IntDiv && c != FPDiv
}

// Inst is one dynamic instruction in a program stream.
//
// Dependencies are expressed as dynamic distances: Dep1/Dep2 name the
// producer as "the instruction Dep1 (Dep2) positions earlier in this
// thread's committed stream"; zero means no register dependency through
// that operand. This is equivalent to post-rename true dependencies and
// lets the pipeline resolve readiness without simulating register values.
type Inst struct {
	Seq    uint64 // per-thread dynamic sequence number, starting at 1
	PC     uint64 // instruction address (word-granular)
	Class  Class
	Dep1   uint32 // dynamic distance to first producer; 0 = none
	Dep2   uint32 // dynamic distance to second producer; 0 = none
	HasDst bool   // writes a register (allocates a rename register)
	Addr   uint64 // effective byte address for Load/Store
	Taken  bool   // actual outcome for Branch (Jump is always taken)
	Target uint64 // target PC for taken Branch/Jump
}

// String renders a compact human-readable form, for debugging and traces.
func (in Inst) String() string {
	switch {
	case in.Class.IsMem():
		return fmt.Sprintf("#%d pc=%#x %s addr=%#x dep=(%d,%d)",
			in.Seq, in.PC, in.Class, in.Addr, in.Dep1, in.Dep2)
	case in.Class.IsCtrl():
		return fmt.Sprintf("#%d pc=%#x %s taken=%t tgt=%#x",
			in.Seq, in.PC, in.Class, in.Taken, in.Target)
	default:
		return fmt.Sprintf("#%d pc=%#x %s dep=(%d,%d)",
			in.Seq, in.PC, in.Class, in.Dep1, in.Dep2)
	}
}
