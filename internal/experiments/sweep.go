package experiments

import (
	"context"
	"fmt"

	"repro/internal/detector"
	"repro/internal/policy"
	"repro/internal/stats"
)

// DefaultThresholds is the paper's IPC-threshold sweep (m = 1..5).
func DefaultThresholds() []float64 { return []float64{1, 2, 3, 4, 5} }

// Cell aggregates one (threshold, heuristic) point over all mixes and
// intervals.
type Cell struct {
	IPC       float64 // mean aggregate IPC (Figure 8's y-axis)
	Switches  float64 // mean switches per run (Figure 7 a/b)
	BenignP   float64 // pooled benign-switch probability (Figure 7 c/d)
	Benign    float64 // pooled benign switches per run
	Malignant float64 // pooled malignant switches per run
	LowQuanta float64 // mean low-throughput quanta per run
	PerMixIPC map[string]float64
}

// Sweep is the full threshold x heuristic grid plus the fixed-ICOUNT
// baseline, the data behind Figures 7 and 8.
type Sweep struct {
	Opts       Options
	Thresholds []float64
	Heuristics []detector.Heuristic
	// Cells is indexed [threshold][heuristic].
	Cells [][]Cell
	// BaselineIPC is fixed ICOUNT's mean IPC; BaselinePerMix the
	// per-mix means.
	BaselineIPC    float64
	BaselinePerMix map[string]float64
}

// RunSweep executes the full grid: (thresholds x heuristics x mixes x
// intervals) adaptive runs plus the fixed-ICOUNT baseline. Cancelling
// ctx drains in-flight runs, flushes them to the options' checkpoint
// (if any), and returns the context error.
func RunSweep(ctx context.Context, o Options, thresholds []float64, heuristics []detector.Heuristic) (*Sweep, error) {
	if thresholds == nil {
		thresholds = DefaultThresholds()
	}
	if heuristics == nil {
		heuristics = detector.AllHeuristics()
	}
	mixes := o.mixes()

	var jobs []stats.Job
	// Baseline jobs first.
	for _, mix := range mixes {
		for it := 0; it < o.Intervals; it++ {
			jobs = append(jobs, stats.Job{
				Name:   jobName("fixed", mix, "ICOUNT", it),
				Config: o.FixedConfig(mix, policy.ICOUNT, it),
			})
		}
	}
	// Grid jobs.
	for _, m := range thresholds {
		for _, h := range heuristics {
			for _, mix := range mixes {
				for it := 0; it < o.Intervals; it++ {
					jobs = append(jobs, stats.Job{
						Name:   jobName("adts", mix, fmt.Sprintf("%v/m%g", h, m), it),
						Config: o.ADTSConfig(mix, h, m, it),
					})
				}
			}
		}
	}

	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}

	s := &Sweep{Opts: o, Thresholds: thresholds, Heuristics: heuristics}
	nBase := len(mixes) * o.Intervals
	base := results[:nBase]
	s.BaselinePerMix, s.BaselineIPC = meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
		return base[mi*o.Intervals+it].AggregateIPC
	})

	grid := results[nBase:]
	per := len(mixes) * o.Intervals
	s.Cells = make([][]Cell, len(thresholds))
	for ti := range thresholds {
		s.Cells[ti] = make([]Cell, len(heuristics))
		for hi := range heuristics {
			block := grid[(ti*len(heuristics)+hi)*per : (ti*len(heuristics)+hi+1)*per]
			cell := &s.Cells[ti][hi]
			cell.PerMixIPC = make(map[string]float64, len(mixes))
			var ipcs, switches, lows []float64
			var ben, mal uint64
			for mi, mix := range mixes {
				var mixIPCs []float64
				for it := 0; it < o.Intervals; it++ {
					r := block[mi*o.Intervals+it]
					mixIPCs = append(mixIPCs, r.AggregateIPC)
					switches = append(switches, float64(r.Detector.Switches))
					lows = append(lows, float64(r.Detector.LowQuanta))
					ben += r.Detector.Benign
					mal += r.Detector.Malignant
				}
				mixMean := stats.Mean(mixIPCs)
				cell.PerMixIPC[mix] = mixMean
				ipcs = append(ipcs, mixMean)
			}
			cell.IPC = stats.Mean(ipcs)
			cell.Switches = stats.Mean(switches)
			cell.LowQuanta = stats.Mean(lows)
			runs := float64(len(block))
			cell.Benign = float64(ben) / runs
			cell.Malignant = float64(mal) / runs
			if ben+mal > 0 {
				cell.BenignP = float64(ben) / float64(ben+mal)
			}
		}
	}
	return s, nil
}

// Best returns the best (threshold, heuristic) cell by IPC.
func (s *Sweep) Best() (threshold float64, h detector.Heuristic, cell Cell) {
	bi, bj := 0, 0
	for ti := range s.Thresholds {
		for hi := range s.Heuristics {
			if s.Cells[ti][hi].IPC > s.Cells[bi][bj].IPC {
				bi, bj = ti, hi
			}
		}
	}
	return s.Thresholds[bi], s.Heuristics[bj], s.Cells[bi][bj]
}

// heuristicHeaders builds the column headers for the figure tables.
func (s *Sweep) heuristicHeaders(first string) []string {
	hdr := []string{first}
	for _, h := range s.Heuristics {
		hdr = append(hdr, h.String())
	}
	return hdr
}

func (s *Sweep) gridTable(title string, value func(Cell) string) *stats.Table {
	t := &stats.Table{Title: title, Header: s.heuristicHeaders("threshold m")}
	for ti, m := range s.Thresholds {
		row := []string{fmt.Sprintf("%g", m)}
		for hi := range s.Heuristics {
			row = append(row, value(s.Cells[ti][hi]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure7Switches renders Figure 7 a/b: switches per run by threshold
// and heuristic (the two paper panels are the two readings of this
// grid).
func (s *Sweep) Figure7Switches() *stats.Table {
	return s.gridTable("Figure 7a/7b — policy switches per run (rows: IPC threshold m; columns: heuristic)",
		func(c Cell) string { return fmt.Sprintf("%.1f", c.Switches) })
}

// Figure7Benign renders Figure 7 c/d: probability of benign switches.
func (s *Sweep) Figure7Benign() *stats.Table {
	return s.gridTable("Figure 7c/7d — probability of benign switches (rows: m; columns: heuristic)",
		func(c Cell) string { return stats.F(c.BenignP) })
}

// Figure8IPC renders Figure 8 a-d: mean aggregate IPC over all mixes.
func (s *Sweep) Figure8IPC() *stats.Table {
	t := s.gridTable("Figure 8 — aggregate IPC, average over all mixtures (rows: m; columns: heuristic)",
		func(c Cell) string { return stats.F(c.IPC) })
	row := []string{"fixed ICOUNT"}
	for range s.Heuristics {
		row = append(row, stats.F(s.BaselineIPC))
	}
	t.AddRow(row...)
	return t
}

// Figure8Improvement renders the same grid as improvement over fixed
// ICOUNT (the paper's headline reading).
func (s *Sweep) Figure8Improvement() *stats.Table {
	return s.gridTable("Figure 8 (derived) — improvement over fixed ICOUNT",
		func(c Cell) string { return stats.Pct(c.IPC/s.BaselineIPC - 1) })
}

// Figure8Chart renders Figure 8 as an ASCII line chart: one series per
// heuristic, IPC versus threshold, with the fixed-ICOUNT baseline.
func (s *Sweep) Figure8Chart() *stats.Chart {
	series := make(map[string][]float64, len(s.Heuristics)+1)
	ticks := make([]string, len(s.Thresholds))
	base := make([]float64, len(s.Thresholds))
	for ti, m := range s.Thresholds {
		ticks[ti] = fmt.Sprintf("m=%g", m)
		base[ti] = s.BaselineIPC
	}
	for hi, h := range s.Heuristics {
		vals := make([]float64, len(s.Thresholds))
		for ti := range s.Thresholds {
			vals[ti] = s.Cells[ti][hi].IPC
		}
		series[h.String()] = vals
	}
	series["fixed ICOUNT"] = base
	return &stats.Chart{
		Title:  "Figure 8 — aggregate IPC vs IPC threshold (average over all mixtures)",
		XLabel: "threshold",
		XTicks: ticks,
		Series: series,
	}
}

// Headline summarises the §6 result: the best configuration and its
// gain.
func (s *Sweep) Headline() string {
	m, h, cell := s.Best()
	return fmt.Sprintf("best configuration: %v at threshold m=%g — IPC %.3f vs fixed ICOUNT %.3f (%s); paper: Type 3 at m=2, up to ~25-30%%",
		h, m, cell.IPC, s.BaselineIPC, stats.Pct(cell.IPC/s.BaselineIPC-1))
}

// Similarity compares adaptive gains on homogeneous versus diverse
// mixes for a given cell, the §6 observation that similar-application
// mixtures benefit more.
func (s *Sweep) Similarity(threshold float64, h detector.Heuristic, homogeneous map[string]bool) (homoGain, diverseGain float64, err error) {
	ti, hi := -1, -1
	for i, m := range s.Thresholds {
		if m == threshold {
			ti = i
		}
	}
	for i, hh := range s.Heuristics {
		if hh == h {
			hi = i
		}
	}
	if ti < 0 || hi < 0 {
		return 0, 0, fmt.Errorf("experiments: cell (m=%g, %v) not in sweep", threshold, h)
	}
	var homo, div []float64
	for mix, ipc := range s.Cells[ti][hi].PerMixIPC {
		base := s.BaselinePerMix[mix]
		if base <= 0 {
			continue
		}
		gain := ipc/base - 1
		if homogeneous[mix] {
			homo = append(homo, gain)
		} else {
			div = append(div, gain)
		}
	}
	return stats.Mean(homo), stats.Mean(div), nil
}
