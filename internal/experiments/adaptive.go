package experiments

import (
	"context"
	"fmt"

	"repro/internal/detector"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// adaptiveThreshold is the IPC threshold every adaptive-study run
// uses: the paper's default m=2 (the setting the main Type 3 results
// are reported at), so learned selectors and static heuristics face
// the same low-throughput trigger.
const adaptiveThreshold = 2

// StaticHeuristics are the hand-built baselines the learned selectors
// must beat: the paper's strongest three (Type 3, its gradient-guarded
// refinement Type 3', and the history-buffered Type 4).
func StaticHeuristics() []detector.Heuristic {
	return []detector.Heuristic{detector.Type3, detector.Type3G, detector.Type4}
}

// AdaptiveHeuristics returns the full comparison set: the static
// baselines followed by the learned selectors (epsilon-greedy bandit,
// UCB1, offline-trained FSM).
func AdaptiveHeuristics() []detector.Heuristic {
	return append(StaticHeuristics(), detector.SelectorHeuristics()...)
}

// AdaptiveResult compares the learned selectors (bandit, ucb, learned
// FSM) against the paper's best static heuristics across the mix
// catalogue at every (thread count, core count) point of the grid.
type AdaptiveResult struct {
	Opts       Options
	Threads    []int
	Cores      []int
	Heuristics []detector.Heuristic
	// MeanIPC[ti][ci][hi] is the cross-mix mean aggregate IPC for
	// Threads[ti] × Cores[ci] under Heuristics[hi]; GeoIPC the
	// geometric mean of per-mix means; Switches the mean policy
	// switches per run (the selector-behaviour audit).
	MeanIPC  [][][]float64
	GeoIPC   [][][]float64
	Switches [][][]float64
	// PerMixIPC[ti][ci][hi][mix] is the per-mix mean aggregate IPC.
	PerMixIPC [][][]map[string]float64
}

// RunAdaptive runs every mix × interval under each heuristic in
// AdaptiveHeuristics at every (threads, cores) grid point. threads nil
// selects {4, 8}; cores nil selects {1, 2} (cores=2 splits the mix
// across two SMT cores with the random allocator, each core running
// its own independent detector — the PR 7 composition). The
// per-(threads, cores) Summary reports learned-vs-best-static deltas
// honestly, whichever way they fall.
func RunAdaptive(ctx context.Context, o Options, threads, cores []int) (*AdaptiveResult, error) {
	if threads == nil {
		threads = []int{4, 8}
	}
	if cores == nil {
		cores = []int{1, 2}
	}
	heuristics := AdaptiveHeuristics()
	mixes := o.mixes()
	per := len(mixes) * o.Intervals

	var jobs []stats.Job
	for _, th := range threads {
		for _, c := range cores {
			for _, h := range heuristics {
				for _, mix := range mixes {
					for it := 0; it < o.Intervals; it++ {
						on := o
						on.Threads = th
						cfg := on.ADTSConfig(mix, h, adaptiveThreshold, it)
						if c > 1 {
							cfg.Cores = c
							cfg.Allocation = "random"
						}
						jobs = append(jobs, stats.Job{
							Name:   jobName("adapt", mix, fmt.Sprintf("%v/t%d/c%d", h, th, c), it),
							Config: cfg,
						})
					}
				}
			}
		}
	}

	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	// The grid churns through four machine geometries (threads × cores
	// splits); drop the pooled shells afterwards, as the multi-core
	// study does.
	defer pipeline.DrainPools()

	res := &AdaptiveResult{Opts: o, Threads: threads, Cores: cores, Heuristics: heuristics}
	base := 0
	for range threads {
		meanT := make([][]float64, len(cores))
		geoT := make([][]float64, len(cores))
		swT := make([][]float64, len(cores))
		perMixT := make([][]map[string]float64, len(cores))
		for ci := range cores {
			meanT[ci] = make([]float64, len(heuristics))
			geoT[ci] = make([]float64, len(heuristics))
			swT[ci] = make([]float64, len(heuristics))
			perMixT[ci] = make([]map[string]float64, len(heuristics))
			for hi := range heuristics {
				block := results[base : base+per]
				base += per
				perMix, mean := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
					return block[mi*o.Intervals+it].AggregateIPC
				})
				var mixMeans []float64
				for _, mix := range mixes {
					mixMeans = append(mixMeans, perMix[mix])
				}
				_, sw := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
					return float64(block[mi*o.Intervals+it].Detector.Switches)
				})
				meanT[ci][hi] = mean
				geoT[ci][hi] = stats.GeoMean(mixMeans)
				swT[ci][hi] = sw
				perMixT[ci][hi] = perMix
			}
		}
		res.MeanIPC = append(res.MeanIPC, meanT)
		res.GeoIPC = append(res.GeoIPC, geoT)
		res.Switches = append(res.Switches, swT)
		res.PerMixIPC = append(res.PerMixIPC, perMixT)
	}
	return res, nil
}

// bestStatic returns the index and mean IPC of the best static
// heuristic at grid point (ti, ci).
func (r *AdaptiveResult) bestStatic(ti, ci int) (int, float64) {
	nStatic := len(StaticHeuristics())
	best, bestIPC := 0, r.MeanIPC[ti][ci][0]
	for hi := 1; hi < nStatic; hi++ {
		if ipc := r.MeanIPC[ti][ci][hi]; ipc > bestIPC {
			best, bestIPC = hi, ipc
		}
	}
	return best, bestIPC
}

// Tables renders one per-mix table per (threads, cores) grid point
// plus the summary.
func (r *AdaptiveResult) Tables() []*stats.Table {
	var out []*stats.Table
	mixes := r.Opts.mixes()
	header := []string{"mix"}
	for _, h := range r.Heuristics {
		header = append(header, h.String())
	}
	for ti, th := range r.Threads {
		for ci, c := range r.Cores {
			tb := &stats.Table{
				Title:  fmt.Sprintf("Learned selection — %d threads × %d core(s), aggregate IPC per mix (m=%g)", th, c, float64(adaptiveThreshold)),
				Header: header,
			}
			for _, mix := range mixes {
				cells := []string{mix}
				for hi := range r.Heuristics {
					cells = append(cells, stats.F(r.PerMixIPC[ti][ci][hi][mix]))
				}
				tb.AddRow(cells...)
			}
			mean := []string{"mean"}
			geo := []string{"geomean"}
			sw := []string{"switches/run"}
			for hi := range r.Heuristics {
				mean = append(mean, stats.F(r.MeanIPC[ti][ci][hi]))
				geo = append(geo, stats.F(r.GeoIPC[ti][ci][hi]))
				sw = append(sw, fmt.Sprintf("%.1f", r.Switches[ti][ci][hi]))
			}
			tb.AddRow(mean...)
			tb.AddRow(geo...)
			tb.AddRow(sw...)
			out = append(out, tb)
		}
	}
	out = append(out, r.Summary())
	return out
}

// Summary compares each learned selector's cross-mix mean IPC against
// the best static heuristic at every grid point. Positive deltas mean
// the selector won; negatives are reported just as plainly.
func (r *AdaptiveResult) Summary() *stats.Table {
	tb := &stats.Table{
		Title:  "Learned vs static summary — mean IPC, delta vs best of Type 3/3'/4",
		Header: []string{"threads", "cores", "heuristic", "mean IPC", "vs best static", "switches/run"},
	}
	nStatic := len(StaticHeuristics())
	for ti, th := range r.Threads {
		for ci, c := range r.Cores {
			bi, bIPC := r.bestStatic(ti, ci)
			for hi, h := range r.Heuristics {
				delta := "-"
				switch {
				case hi < nStatic && hi == bi:
					delta = "best static"
				case hi >= nStatic && bIPC > 0:
					delta = stats.Pct(r.MeanIPC[ti][ci][hi]/bIPC - 1)
				}
				tb.AddRow(fmt.Sprintf("%d", th), fmt.Sprintf("%d", c), h.String(),
					stats.F(r.MeanIPC[ti][ci][hi]), delta,
					fmt.Sprintf("%.1f", r.Switches[ti][ci][hi]))
			}
		}
	}
	return tb
}
