package experiments

import (
	"context"

	"repro/internal/policy"
	"repro/internal/stats"
)

// OracleResult compares fixed ICOUNT with per-quantum oracle scheduling,
// the upper bound the paper quotes (~30% headroom) from its prior study.
type OracleResult struct {
	Opts Options
	// PerMix maps mix -> [baseline IPC, oracle IPC].
	PerMix map[string][2]float64
	// BaselineIPC and OracleIPC are cross-mix means.
	BaselineIPC float64
	OracleIPC   float64
}

// RunOracle measures the oracle headroom over fixed ICOUNT.
func RunOracle(ctx context.Context, o Options) (*OracleResult, error) {
	mixes := o.mixes()
	var jobs []stats.Job
	for _, mix := range mixes {
		for it := 0; it < o.Intervals; it++ {
			jobs = append(jobs, stats.Job{
				Name:   jobName("fixed", mix, "ICOUNT", it),
				Config: o.FixedConfig(mix, policy.ICOUNT, it),
			})
		}
	}
	for _, mix := range mixes {
		for it := 0; it < o.Intervals; it++ {
			jobs = append(jobs, stats.Job{
				Name:   jobName("oracle", mix, "greedy", it),
				Config: o.OracleConfig(mix, it),
			})
		}
	}
	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	per := len(mixes) * o.Intervals
	base, orc := results[:per], results[per:]
	basePerMix, baseMean := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
		return base[mi*o.Intervals+it].AggregateIPC
	})
	orcPerMix, orcMean := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
		return orc[mi*o.Intervals+it].AggregateIPC
	})
	res := &OracleResult{
		Opts:        o,
		PerMix:      make(map[string][2]float64, len(mixes)),
		BaselineIPC: baseMean,
		OracleIPC:   orcMean,
	}
	for _, mix := range mixes {
		res.PerMix[mix] = [2]float64{basePerMix[mix], orcPerMix[mix]}
	}
	return res, nil
}

// EnvelopeResult is the post-hoc "envelope oracle": for each quantum,
// the maximum quantum IPC across independent fixed-policy runs of the
// same workload. Unlike the causal clone-based oracle, the envelope
// harvests run-to-run divergence — it answers "how good does
// per-quantum policy choice LOOK when read off separate fixed-policy
// traces", which is an easy and common way to overestimate headroom,
// and a plausible reading of how a ~30% bound could be obtained. The
// reproduction reports both so the gap itself is visible.
type EnvelopeResult struct {
	Opts     Options
	Policies []policy.Policy
	// PerMix maps mix -> [ICOUNT IPC, envelope IPC].
	PerMix      map[string][2]float64
	BaselineIPC float64
	EnvelopeIPC float64
}

// RunEnvelope measures the post-hoc envelope over the given policies
// (DefaultCandidates' three when pols is nil).
func RunEnvelope(ctx context.Context, o Options, pols []policy.Policy) (*EnvelopeResult, error) {
	if pols == nil {
		pols = []policy.Policy{policy.ICOUNT, policy.BRCOUNT, policy.L1MISSCOUNT}
	}
	mixes := o.mixes()
	var jobs []stats.Job
	for _, p := range pols {
		for _, mix := range mixes {
			for it := 0; it < o.Intervals; it++ {
				jobs = append(jobs, stats.Job{
					Name:   jobName("env", mix, p.String(), it),
					Config: o.FixedConfig(mix, p, it),
				})
			}
		}
	}
	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	per := len(mixes) * o.Intervals
	res := &EnvelopeResult{
		Opts:     o,
		Policies: pols,
		PerMix:   make(map[string][2]float64, len(mixes)),
	}
	var baseAll, envAll []float64
	for mi, mix := range mixes {
		var base, env []float64
		for it := 0; it < o.Intervals; it++ {
			// ICOUNT is pols[0] by construction of the default set;
			// find it explicitly to be safe.
			var icount []float64
			envSum := 0.0
			var n int
			for pi, p := range pols {
				series := results[pi*per+mi*o.Intervals+it].QuantumIPC
				if p == policy.ICOUNT {
					icount = series
				}
				if n == 0 {
					n = len(series)
				}
			}
			for q := 0; q < n; q++ {
				best := 0.0
				for pi := range pols {
					v := results[pi*per+mi*o.Intervals+it].QuantumIPC[q]
					if v > best {
						best = v
					}
				}
				envSum += best
			}
			env = append(env, envSum/float64(n))
			base = append(base, stats.Mean(icount))
		}
		res.PerMix[mix] = [2]float64{stats.Mean(base), stats.Mean(env)}
		baseAll = append(baseAll, stats.Mean(base))
		envAll = append(envAll, stats.Mean(env))
	}
	res.BaselineIPC = stats.Mean(baseAll)
	res.EnvelopeIPC = stats.Mean(envAll)
	return res, nil
}

// Headroom returns the mean envelope gain over fixed ICOUNT.
func (r *EnvelopeResult) Headroom() float64 {
	if r.BaselineIPC <= 0 {
		return 0
	}
	return r.EnvelopeIPC/r.BaselineIPC - 1
}

// Table renders the per-mix envelope comparison.
func (r *EnvelopeResult) Table() *stats.Table {
	tb := &stats.Table{
		Title:  "Post-hoc envelope bound (per-quantum max over fixed-policy runs)",
		Header: []string{"mix", "ICOUNT IPC", "envelope IPC", "apparent headroom"},
	}
	for _, mix := range r.Opts.mixes() {
		v := r.PerMix[mix]
		gain := 0.0
		if v[0] > 0 {
			gain = v[1]/v[0] - 1
		}
		tb.AddRow(mix, stats.F(v[0]), stats.F(v[1]), stats.Pct(gain))
	}
	tb.AddRow("MEAN", stats.F(r.BaselineIPC), stats.F(r.EnvelopeIPC), stats.Pct(r.Headroom()))
	return tb
}

// Headroom returns the mean oracle gain over fixed ICOUNT.
func (r *OracleResult) Headroom() float64 {
	if r.BaselineIPC <= 0 {
		return 0
	}
	return r.OracleIPC/r.BaselineIPC - 1
}

// Table renders the per-mix comparison.
func (r *OracleResult) Table() *stats.Table {
	tb := &stats.Table{
		Title:  "Oracle-scheduled upper bound vs fixed ICOUNT (paper cites ~30% headroom)",
		Header: []string{"mix", "ICOUNT IPC", "oracle IPC", "headroom"},
	}
	for _, mix := range r.Opts.mixes() {
		v := r.PerMix[mix]
		gain := 0.0
		if v[0] > 0 {
			gain = v[1]/v[0] - 1
		}
		tb.AddRow(mix, stats.F(v[0]), stats.F(v[1]), stats.Pct(gain))
	}
	tb.AddRow("MEAN", stats.F(r.BaselineIPC), stats.F(r.OracleIPC), stats.Pct(r.Headroom()))
	return tb
}
